package dido

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/proto"
)

// gatedBackend parks every Set on a gate so a test can hold a request
// in-flight for as long as it likes, and counts executions.
type gatedBackend struct {
	inner   Backend
	entered chan struct{} // signaled once per Set call, before blocking
	release chan struct{} // closed to let parked Sets proceed

	mu   sync.Mutex
	sets int
}

func (b *gatedBackend) Get(key []byte) ([]byte, bool) { return b.inner.Get(key) }
func (b *gatedBackend) Delete(key []byte) bool        { return b.inner.Delete(key) }
func (b *gatedBackend) Set(key, value []byte) error {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	<-b.release
	b.mu.Lock()
	b.sets++
	b.mu.Unlock()
	return b.inner.Set(key, value)
}
func (b *gatedBackend) setCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sets
}

// TestDuplicateWhileInFlightExecutesOnce pins the at-most-once hole the
// reply cache alone cannot close: a retry arriving while the original
// request is still executing finds no cached reply yet, and before in-flight
// tracking it was admitted as a second execution. The duplicate must be
// dropped, the SET must run once, and a later retry must be answered from
// the cache.
func TestDuplicateWhileInFlightExecutesOnce(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	gb := &gatedBackend{
		inner:   st,
		entered: make(chan struct{}, 8),
		release: make(chan struct{}),
	}
	srv := NewServer(gb)
	addr, errc := startServer(t, srv)
	defer srv.Close()

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame := proto.EncodeFrameV2(nil, 31337, []Query{{Op: OpSet, Key: []byte("dup"), Value: []byte("v")}})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	select {
	case <-gb.entered:
	case <-time.After(2 * time.Second):
		t.Fatal("original SET never reached the backend")
	}

	// Retry while the original is parked inside the backend. The server must
	// drop it rather than execute the SET a second time.
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().DupDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("duplicate was never observed/dropped")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(gb.release)
	buf := make([]byte, proto.MaxFrameBytes)
	readResp := func() []proto.Response {
		t.Helper()
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		n, err := conn.Read(buf)
		if err != nil {
			t.Fatal(err)
		}
		rs, id, _, err := proto.ParseResponseFrameID(buf[:n], nil)
		if err != nil || id != 31337 {
			t.Fatalf("response id %d err %v", id, err)
		}
		return rs
	}
	if rs := readResp(); len(rs) != 1 || rs[0].Status != proto.StatusOK {
		t.Fatalf("original response = %+v", rs)
	}

	// A retry after completion replays from the cache without re-execution.
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	if rs := readResp(); len(rs) != 1 || rs[0].Status != proto.StatusOK {
		t.Fatalf("replayed response = %+v", rs)
	}

	if n := gb.setCount(); n != 1 {
		t.Fatalf("SET executed %d times, want 1", n)
	}
	ss := srv.Stats()
	if ss.DupDropped != 1 {
		t.Fatalf("dup-dropped = %d, want 1", ss.DupDropped)
	}
	if ss.Replayed != 1 {
		t.Fatalf("replayed = %d, want 1", ss.Replayed)
	}
	srv.Close()
	waitServe(t, errc)
}

// TestAbortedFrameAllowsRetry checks that a tracked frame whose processing
// dies without producing a reply (here: a panicking backend) clears its
// in-flight marker, so a retry is admitted instead of dropped forever.
func TestAbortedFrameAllowsRetry(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	pb := &panicOnceBackend{inner: st}
	srv := NewServer(pb)
	addr, errc := startServer(t, srv)
	defer srv.Close()

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame := proto.EncodeFrameV2(nil, 90210, []Query{{Op: OpSet, Key: []byte("retry"), Value: []byte("v")}})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Panics == 0 {
		if time.Now().After(deadline) {
			t.Fatal("panicked frame never observed")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The first attempt died; its in-flight marker must be gone so the retry
	// executes (rather than being treated as a duplicate).
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, proto.MaxFrameBytes)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("retry after aborted frame got no reply: %v", err)
	}
	rs, id, _, err := proto.ParseResponseFrameID(buf[:n], nil)
	if err != nil || id != 90210 || len(rs) != 1 || rs[0].Status != proto.StatusOK {
		t.Fatalf("retry response = %+v id %d err %v", rs, id, err)
	}
	if v, ok := st.Get([]byte("retry")); !ok || string(v) != "v" {
		t.Fatalf("retried SET not applied: %q/%v", v, ok)
	}
	srv.Close()
	waitServe(t, errc)
}

// panicOnceBackend panics on the first Set and behaves normally after.
type panicOnceBackend struct {
	inner Backend
	mu    sync.Mutex
	calls int
}

func (b *panicOnceBackend) Get(key []byte) ([]byte, bool) { return b.inner.Get(key) }
func (b *panicOnceBackend) Delete(key []byte) bool        { return b.inner.Delete(key) }
func (b *panicOnceBackend) Set(key, value []byte) error {
	b.mu.Lock()
	b.calls++
	first := b.calls == 1
	b.mu.Unlock()
	if first {
		panic("injected")
	}
	return b.inner.Set(key, value)
}

// Costexplorer: ask the APU-aware cost model to rank every pipeline
// configuration for a chosen workload, printing the paper-style pipeline
// notation, the solved batch size, and the predicted throughput — a direct
// window into §IV's "finding the optimal pipeline configuration".
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/apu"
	"repro/internal/costmodel"
	"repro/internal/cuckoo"
	"repro/internal/task"
	"repro/internal/workload"
)

func main() {
	wl := flag.String("workload", "K16-G95-S", "standard workload name")
	top := flag.Int("top", 10, "how many configurations to print")
	latency := flag.Duration("latency", time.Millisecond, "average latency budget")
	flag.Parse()

	spec, ok := workload.SpecByName(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	prof := task.Profile{
		N:                8192,
		GetRatio:         spec.GetRatio,
		KeySize:          float64(spec.KeySize),
		ValueSize:        float64(spec.ValueSize),
		Skew:             spec.Skew,
		Population:       workload.PopulationForMemory(spec, 1908<<20),
		EvictionRate:     1,
		AvgInsertBuckets: 2,
		SearchProbes:     cuckoo.SearchProbesTheoretical(2),
		WireQueryBytes:   float64(spec.KeySize) + 12,
		RVInstr:          1800,
		SDInstr:          1800,
		RVUnitNanos:      650,
		SDUnitNanos:      650,
	}

	planner := costmodel.NewPlanner(apu.KaveriPlatform(), *latency/3)
	best, all := planner.Best(prof)

	sort.Slice(all, func(i, j int) bool {
		return all[i].ThroughputOPS > all[j].ThroughputOPS
	})

	fmt.Printf("workload %s on the Kaveri APU, latency budget %v\n", spec.Name, *latency)
	fmt.Printf("cache-hit portion P (Zipf analysis) = %.3f\n\n", planner.CacheHitPortion(prof))
	fmt.Printf("%-4s %-58s %8s %10s\n", "#", "pipeline", "batch", "pred MOPS")
	for i, p := range all {
		if i >= *top {
			break
		}
		marker := " "
		if p.Config == best.Config {
			marker = "*"
		}
		fmt.Printf("%-4d %-58s %8d %9.2f%s\n",
			i+1, p.Config.String(), p.Batch, p.ThroughputOPS/1e6, marker)
	}
	fmt.Printf("...\n%-4s %-58s %8d %9.2f\n", "last",
		all[len(all)-1].Config.String(), all[len(all)-1].Batch,
		all[len(all)-1].ThroughputOPS/1e6)
	fmt.Printf("\nbest/worst predicted ratio: %.1fx (Fig 10's error bars come from this spread)\n",
		best.ThroughputOPS/all[len(all)-1].ThroughputOPS)
}

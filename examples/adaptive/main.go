// Adaptive: run the simulated DIDO system against a workload that shifts
// between the paper's K8-G50-U and K16-G95-S (the Fig 20 experiment) and
// print each re-planned pipeline configuration as the adaptation loop reacts.
package main

import (
	"fmt"
	"time"

	idido "repro/internal/dido"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	opts := idido.DefaultOptions(16 << 20)
	opts.Seed = 7
	sys := idido.New(opts)

	specA, _ := workload.SpecByName("K8-G50-U")
	specB, _ := workload.SpecByName("K16-G95-S")
	genA := workload.NewGenerator(specA, 50000, 1)
	genB := workload.NewGenerator(specB, 50000, 2)
	sys.Warm(genA.KeyAt, 50000, specA.ValueSize)
	sys.Warm(genB.KeyAt, 50000, specB.ValueSize)

	fmt.Println("phase 1: write-heavy tiny objects (K8-G50-U)")
	res := sys.Run(genA, 30)
	report(res, sys)

	fmt.Println("\nphase 2: read-heavy skewed (K16-G95-S) — watch the pipeline change")
	res = sys.Run(genB, 30)
	report(res, sys)

	fmt.Println("\nphase 3: rapid alternation every ~3ms of work (Fig 20)")
	qps := res.ThroughputMOPS * 1e6
	phase := uint64(qps * 0.003)
	if phase < 4096 {
		phase = 4096
	}
	alt := workload.NewAlternator(genA, genB, phase)
	sys.Runner.TraceEvery = 300 * time.Microsecond
	res = sys.Run(alt, 60)
	for i, p := range res.Trace {
		if i%5 == 0 { // print a sparse trace
			fmt.Printf("  t=%6.2fms  %6.2f MOPS  %s\n",
				float64(p.At)/float64(time.Millisecond), p.Throughput/1e6, p.Config)
		}
	}
	fmt.Printf("total re-plans this run: %d\n", sys.Replans())
}

func report(res pipeline.Result, sys *idido.System) {
	fmt.Printf("  %.2f MOPS, latency %v, CPU %.0f%%, GPU %.0f%%\n",
		res.ThroughputMOPS, res.AvgLatency.Round(time.Microsecond),
		res.CPUUtilization*100, res.GPUUtilization*100)
	fmt.Printf("  pipeline: %s\n", sys.CurrentConfig())
}

// Quickstart: embed the key-value store, write and read a few objects, and
// watch eviction kick in when the arena fills.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// A deliberately tiny arena so eviction is observable.
	st := dido.NewStore(dido.StoreConfig{MemoryBytes: 4 << 20})

	// Basic operations.
	must(st.Set([]byte("user:1"), []byte(`{"name":"ada","plan":"pro"}`)))
	must(st.Set([]byte("user:2"), []byte(`{"name":"lin","plan":"free"}`)))

	if v, ok := st.Get([]byte("user:1")); ok {
		fmt.Printf("user:1 → %s\n", v)
	}
	st.Delete([]byte("user:2"))
	if _, ok := st.Get([]byte("user:2")); !ok {
		fmt.Println("user:2 deleted")
	}

	// Fill past the arena budget: the store evicts LRU objects per size
	// class instead of failing (the paper's MM task, §II-B).
	val := make([]byte, 1024)
	for i := 0; i < 8192; i++ {
		must(st.Set(fmt.Appendf(nil, "bulk:%05d", i), val))
	}
	s := st.Stats()
	fmt.Printf("after bulk load: live=%d evictions=%d index-load=%.2f\n",
		s.LiveObjects, s.Evictions, s.IndexLoadFactor)

	// Recent keys survive; the oldest were evicted.
	if _, ok := st.Get([]byte("bulk:08191")); !ok {
		panic("most recent key missing")
	}
	if _, ok := st.Get([]byte("bulk:00000")); ok {
		fmt.Println("note: oldest key survived (arena larger than load)")
	} else {
		fmt.Println("oldest key evicted, as expected under memory pressure")
	}
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

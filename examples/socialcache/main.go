// Socialcache: emulate the two Facebook Memcached workload classes the paper
// motivates with (§II-C1, citing Atikoglu et al., SIGMETRICS 2012):
//
//   - USR: user-account status — tiny 2-byte values, overwhelmingly GETs.
//   - ETC: general cache — wide value-size spread, mixed GET/SET.
//
// Both run against the real store through the UDP server/client pair,
// proving the full protocol path end-to-end in one process.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro"
)

func main() {
	st := dido.NewStore(dido.StoreConfig{MemoryBytes: 32 << 20})
	srv := dido.NewServer(st)
	go srv.Serve("127.0.0.1:0")
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	defer srv.Close()
	fmt.Printf("server on %s\n", srv.Addr())

	c, err := dido.Dial(srv.Addr().String())
	if err != nil {
		panic(err)
	}
	defer c.Close()

	runUSR(c)
	runETC(c)

	s := st.Stats()
	fmt.Printf("\nstore after both workloads: live=%d hits=%d misses=%d evictions=%d\n",
		s.LiveObjects, s.Hits, s.Misses, s.Evictions)
}

// runUSR emulates the USR pool: 2-byte status values, ~99% GET.
func runUSR(c *dido.Client) {
	fmt.Println("\n== USR: user-account status (2-byte values, 99% GET) ==")
	rng := rand.New(rand.NewSource(1))
	const users = 20000

	var batch []dido.Query
	for u := 0; u < users; u++ {
		batch = append(batch, dido.Query{
			Op:    dido.OpSet,
			Key:   fmt.Appendf(nil, "usr:%06d", u),
			Value: []byte{byte(rng.Intn(2)), 0},
		})
		if len(batch) == 256 {
			mustDo(c, batch)
			batch = batch[:0]
		}
	}
	mustDo(c, batch)

	start := time.Now()
	var ops, hits int
	for time.Since(start) < time.Second {
		qs := make([]dido.Query, 0, 256)
		for i := 0; i < 256; i++ {
			u := rng.Intn(users)
			if rng.Float64() < 0.99 {
				qs = append(qs, dido.Query{Op: dido.OpGet, Key: fmt.Appendf(nil, "usr:%06d", u)})
			} else {
				qs = append(qs, dido.Query{Op: dido.OpSet, Key: fmt.Appendf(nil, "usr:%06d", u), Value: []byte{1, 0}})
			}
		}
		resps := mustDo(c, qs)
		ops += len(qs)
		for i, r := range resps {
			if qs[i].Op == dido.OpGet && r.Status == dido.StatusOK {
				hits++
			}
		}
	}
	fmt.Printf("USR: %d ops in 1s (%.0f KOPS), hit rate %.3f\n",
		ops, float64(ops)/1000, float64(hits)/float64(ops))
}

// runETC emulates the ETC pool: value sizes spread from tens of bytes to
// ~10 KB (half under 1 KB, half 1-10 KB, per the paper's description).
func runETC(c *dido.Client) {
	fmt.Println("\n== ETC: general cache (wide value-size spread, 75% GET) ==")
	rng := rand.New(rand.NewSource(2))
	const objects = 4000

	valueSize := func() int {
		if rng.Float64() < 0.5 {
			return 30 + rng.Intn(970) // < 1 KB
		}
		return 1000 + rng.Intn(9000) // 1-10 KB
	}

	for o := 0; o < objects; o++ {
		val := make([]byte, valueSize())
		q := []dido.Query{{Op: dido.OpSet, Key: fmt.Appendf(nil, "etc:%05d", o), Value: val}}
		mustDo(c, q)
	}

	start := time.Now()
	var ops int
	var bytesMoved int
	for time.Since(start) < time.Second {
		qs := make([]dido.Query, 0, 16)
		for i := 0; i < 16; i++ {
			o := rng.Intn(objects)
			if rng.Float64() < 0.75 {
				qs = append(qs, dido.Query{Op: dido.OpGet, Key: fmt.Appendf(nil, "etc:%05d", o)})
			} else {
				qs = append(qs, dido.Query{Op: dido.OpSet, Key: fmt.Appendf(nil, "etc:%05d", o), Value: make([]byte, valueSize())})
			}
		}
		resps := mustDo(c, qs)
		ops += len(qs)
		for _, r := range resps {
			bytesMoved += len(r.Value)
		}
	}
	fmt.Printf("ETC: %d ops in 1s (%.0f KOPS), %.1f MB served\n",
		ops, float64(ops)/1000, float64(bytesMoved)/(1<<20))
}

func mustDo(c *dido.Client, qs []dido.Query) []dido.Response {
	if len(qs) == 0 {
		return nil
	}
	resps, err := c.Do(qs)
	if err != nil {
		panic(err)
	}
	return resps
}

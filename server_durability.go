package dido

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/proto"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/wal"
)

// This file is the durability tier's server wiring (DESIGN.md §5.13): startup
// recovery (snapshot + WAL replay, including the at-most-once reply cache),
// the WAL hooks on both serving paths, and the periodic snapshotter that
// truncates the log. Logging is redo-after-apply: an operation is executed
// first, its record appended after, and the client acked only once the record
// is durable per the sync policy — so every acked SET/DELETE survives kill -9,
// and a lost ack at worst makes the client retry an idempotent operation.

// RangeBackend is the optional Backend extension snapshots need: a walk over
// every live object. *Store implements it via the seqlock slab iterator;
// backends without it get a WAL-only durability tier (no snapshots, so the
// log is never truncated).
type RangeBackend interface {
	Range(fn func(key, value []byte) bool)
}

// DurabilityOptions configures the server's durability tier. The zero Dir
// disables durability entirely.
type DurabilityOptions struct {
	// Dir is the durability directory holding wal.log, wal.old and
	// snapshot.snap. Empty disables the tier.
	Dir string
	// Sync selects when WAL appends reach disk: wal.SyncBatch (default,
	// group commit before every ack), wal.SyncInterval (background flusher
	// every SyncInterval), or wal.SyncOff (the OS decides; Close still
	// syncs).
	Sync wal.SyncPolicy
	// SyncInterval is the wal.SyncInterval flusher period; default 10ms.
	SyncInterval time.Duration
	// SnapshotInterval is how often the snapshotter dumps the store and
	// truncates the WAL. 0 disables periodic snapshots (SnapshotNow still
	// works, and recovery replays the whole log).
	SnapshotInterval time.Duration
	// OpenFile overrides how WAL segments are opened — the hook the disk
	// fault injector (internal/faults.WrapFile) and the fsync-accounting
	// tests use. Nil means the real filesystem.
	OpenFile func(path string) (wal.File, error)
}

// durability bundles the server's durability state: the open WAL, the
// snapshot manager, and the recovery/drop accounting.
type durability struct {
	opts DurabilityOptions
	log  *wal.Log
	snap *snapshot.Manager // non-nil only when the backend supports Range

	snapStop chan struct{}
	snapDone chan struct{}

	// walDrops counts frames whose records could not be committed: the
	// response is dropped (no ack) so the client retries, preserving the
	// acked-implies-durable invariant at the cost of a retry.
	walDrops stats.Counter

	recoveryDuration  time.Duration
	recoveredEntries  int   // snapshot entries applied at startup
	recoveredRecords  int   // WAL records replayed at startup
	recoveredTornTail int64 // torn bytes truncated off the recovered wal.log
	recoveryDropped   int   // recovered SETs the backend rejected (e.g. arena too small)

	recBufs sync.Pool // *[]byte: pooled record-encoding buffers
}

// openDurability recovers the durable state into b and replies, then opens
// the WAL for appending and arms the snapshotter. Recovery order is
// snapshot.snap, then wal.old (present only when a crash interrupted the
// snapshot/truncate protocol), then the wal.log tail; SET/DELETE records are
// absolute and idempotent, so replaying an older segment over a newer
// snapshot converges on the same state.
func openDurability(b Backend, replies *replyCache, opts DurabilityOptions) (*durability, error) {
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durability: %w", err)
	}
	walPath, walOld, snapPath := snapshot.Paths(opts.Dir)
	d := &durability{opts: opts}
	d.recBufs.New = func() any { b := make([]byte, 0, 4096); return &b }

	start := time.Now()
	// A crash mid-snapshot can leave a side file; it was never renamed into
	// place, so it holds nothing recovery needs.
	os.Remove(filepath.Join(opts.Dir, snapshot.SnapTmp)) //nolint:errcheck

	// A Set can fail when the configured arena is smaller than the one the
	// durable state was written under; that silently turns a previously
	// acked, durable SET into a miss, so every rejection is counted and
	// surfaced through DurabilityStats and the startup log line.
	applyKV := func(key, value []byte) {
		if err := b.Set(key, value); err != nil {
			d.recoveryDropped++
		}
	}
	applyReply := func(addr string, id uint64, frames [][]byte) {
		if replies == nil {
			return
		}
		copied := make([][]byte, len(frames))
		for i, f := range frames {
			copied[i] = append([]byte(nil), f...)
		}
		replies.restore(addr, id, copied)
	}
	entries, err := snapshot.Load(snapPath, applyKV, applyReply)
	if err != nil {
		return nil, fmt.Errorf("durability: recover snapshot: %w", err)
	}
	d.recoveredEntries = entries

	h := wal.Handler{
		Set:    applyKV,
		Delete: func(key []byte) { b.Delete(key) },
		Reply: func(addr []byte, id uint64, frames [][]byte) {
			applyReply(string(addr), id, frames)
		},
	}
	// wal.old first: it predates the current segment (its snapshot never
	// completed), so wal.log must replay after it.
	if _, n, err := wal.ReplayFile(walOld, h); err != nil {
		return nil, fmt.Errorf("durability: recover %s: %w", walOld, err)
	} else {
		d.recoveredRecords += n
	}
	valid, n, err := wal.ReplayFile(walPath, h)
	if err != nil {
		return nil, fmt.Errorf("durability: recover %s: %w", walPath, err)
	}
	d.recoveredRecords += n
	// Truncate the torn tail (a record cut mid-write by the crash) so new
	// appends never land after garbage.
	if fi, serr := os.Stat(walPath); serr == nil && fi.Size() > valid {
		d.recoveredTornTail = fi.Size() - valid
		if terr := os.Truncate(walPath, valid); terr != nil {
			return nil, fmt.Errorf("durability: truncate torn tail: %w", terr)
		}
	}
	d.recoveryDuration = time.Since(start)

	d.log, err = wal.Open(walPath, wal.Options{
		Policy:   opts.Sync,
		Interval: opts.SyncInterval,
		OpenFile: opts.OpenFile,
	})
	if err != nil {
		return nil, fmt.Errorf("durability: %w", err)
	}

	if rb, ok := b.(RangeBackend); ok {
		d.snap = &snapshot.Manager{
			Dir: opts.Dir,
			Log: d.log,
			KV:  rb.Range,
		}
		if replies != nil {
			d.snap.Replies = replies.snapshotIter
		}
		if opts.SnapshotInterval > 0 {
			d.snapStop = make(chan struct{})
			d.snapDone = make(chan struct{})
			go func() {
				defer close(d.snapDone)
				d.snap.Run(opts.SnapshotInterval, d.snapStop)
			}()
		}
	}
	return d, nil
}

// close stops the snapshotter and closes the WAL; wal.Close fsyncs the tail
// under every sync policy, so a graceful shutdown never loses an acked write.
func (d *durability) close() error {
	if d.snapStop != nil {
		close(d.snapStop)
		<-d.snapDone
	}
	err := d.log.Close()
	if errors.Is(err, wal.ErrClosed) {
		return nil
	}
	return err
}

func (d *durability) getBuf() []byte {
	bp := d.recBufs.Get().(*[]byte)
	return (*bp)[:0]
}

func (d *durability) putBuf(b []byte) {
	if cap(b) > 1<<20 {
		return // oversized one-off: let it go rather than pinning the pool
	}
	d.recBufs.Put(&b)
}

// appendFrameRecords appends one executed frame's WAL records to dst: a SET
// or DELETE record per acknowledged write (in execution order), plus — when
// the frame is tracked for at-most-once and carried at least one write — a
// REPLY record binding the encoded response frames to (addr, reqID), so a
// retry after a crash replays the reply instead of re-executing. Returns the
// extended buffer and the number of records appended. resps[i] answers
// queries[i] on both serving paths.
func appendFrameRecords(dst []byte, queries []proto.Query, resps []proto.Response, akey string, reqID uint64, tracked bool, respFrames [][]byte) ([]byte, int) {
	n := 0
	writes := 0
	for i, q := range queries {
		if i >= len(resps) || resps[i].Status != proto.StatusOK {
			continue
		}
		switch q.Op {
		case proto.OpSet:
			dst = wal.AppendSet(dst, q.Key, q.Value)
			writes++
			n++
		case proto.OpDelete:
			dst = wal.AppendDelete(dst, q.Key)
			writes++
			n++
		}
	}
	if tracked && writes > 0 {
		dst = wal.AppendReply(dst, akey, reqID, respFrames)
		n++
	}
	return dst, n
}

// commitFrame logs one per-frame-path frame: encode its records, group-commit
// them, and report whether the frame may be acked. GET-only frames produce no
// records and are always ackable.
func (d *durability) commitFrame(queries []proto.Query, resps []proto.Response, akey string, reqID uint64, tracked bool, respFrames [][]byte) bool {
	buf := d.getBuf()
	buf, n := appendFrameRecords(buf, queries, resps, akey, reqID, tracked, respFrames)
	ok := true
	if n > 0 {
		if err := d.log.Commit(buf, n); err != nil {
			d.walDrops.Inc()
			ok = false
		}
	}
	d.putBuf(buf)
	return ok
}

// pipelineLogBatch is the pipeline's LG task: it encodes the whole batch's
// records and response frames and commits them in one group-commit call. On
// commit failure every write-bearing frame in the batch is marked so
// pipelineBatchDone drops its ack; GET-only frames carry no durability
// obligation and still answer. Runs on the batch's completing worker between
// WR and SD, so its measured cost feeds the LG term of the adaptation
// profile.
func (s *Server) pipelineLogBatch(lfs []*pipeline.LiveFrame) (records, bytes int) {
	d := s.dur
	buf := d.getBuf()
	for _, lf := range lfs {
		if lf.Err {
			continue
		}
		sl := lf.Ctx.(*liveSlot)
		f := sl.f
		// Encode here (not in batchDone) so the REPLY record holds exactly
		// the units the client will receive and the cache will retain.
		f.Units = f.R.Encode(f, lf.Resps)
		var n int
		buf, n = appendFrameRecords(buf, f.Queries, lf.Resps, f.AKey, f.ReqID, f.Tracked, f.Units)
		if n > 0 {
			sl.walRecords = true
			records += n
		}
	}
	bytes = len(buf)
	if records > 0 {
		if err := d.log.Commit(buf, records); err != nil {
			for _, lf := range lfs {
				if lf.Err {
					continue
				}
				if sl := lf.Ctx.(*liveSlot); sl.walRecords {
					sl.walFailed = true
					d.walDrops.Inc()
				}
			}
		}
	}
	d.putBuf(buf)
	return records, bytes
}

// SnapshotNow runs one snapshot/truncate cycle immediately. It returns an
// error when durability is off or the backend cannot be walked (no
// RangeBackend).
func (s *Server) SnapshotNow() error {
	if s.dur == nil {
		return errors.New("dido: durability not enabled")
	}
	if s.dur.snap == nil {
		return errors.New("dido: backend does not support snapshots (no Range)")
	}
	return s.dur.snap.SnapshotOnce()
}

// DurabilityStats is a snapshot of the durability tier's counters.
type DurabilityStats struct {
	// WAL is the write-ahead log's counters.
	WAL wal.Stats
	// Snapshots is the snapshot manager's counters (zero when the backend
	// cannot be walked).
	Snapshots snapshot.ManagerStats
	// DroppedAcks counts frames whose ack was dropped because their records
	// could not be committed; the client retries them.
	DroppedAcks uint64
	// RecoveredSnapshotEntries and RecoveredWALRecords describe what startup
	// recovery replayed; RecoveredTornBytes is the torn tail truncated away.
	RecoveredSnapshotEntries int
	RecoveredWALRecords      int
	RecoveredTornBytes       int64
	// RecoveryDroppedApplies counts recovered SETs the backend rejected
	// (e.g. the configured arena cannot hold the recovered state). Non-zero
	// means previously durable keys are missing from the live store.
	RecoveryDroppedApplies int
	// RecoveryDuration is how long startup recovery took.
	RecoveryDuration time.Duration
}

// DurabilityStats returns the durability tier's counters; ok is false when
// the server runs without durability.
func (s *Server) DurabilityStats() (DurabilityStats, bool) {
	if s.dur == nil {
		return DurabilityStats{}, false
	}
	ds := DurabilityStats{
		WAL:                      s.dur.log.Stats(),
		DroppedAcks:              s.dur.walDrops.Load(),
		RecoveredSnapshotEntries: s.dur.recoveredEntries,
		RecoveredWALRecords:      s.dur.recoveredRecords,
		RecoveredTornBytes:       s.dur.recoveredTornTail,
		RecoveryDroppedApplies:   s.dur.recoveryDropped,
		RecoveryDuration:         s.dur.recoveryDuration,
	}
	if s.dur.snap != nil {
		ds.Snapshots = s.dur.snap.Stats()
	}
	return ds, true
}

// restore inserts a recovered reply without an in-flight marker; recovery
// refills the at-most-once cache with it before serving starts.
func (rc *replyCache) restore(addr string, id uint64, frames [][]byte) {
	k := replyKey{addr, id}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if _, ok := rc.m[k]; ok {
		rc.m[k] = frames
		return
	}
	rc.m[k] = frames
	rc.fifo = append(rc.fifo, k)
	for len(rc.fifo) > rc.max {
		delete(rc.m, rc.fifo[0])
		rc.fifo = rc.fifo[1:]
	}
}

// snapshotIter walks the cached replies for the snapshotter. The map is
// copied under the lock and iterated outside it, so a slow snapshot write
// never stalls the serving path's cache operations; the frame slices are
// shared but immutable once cached.
func (rc *replyCache) snapshotIter(fn func(addr string, id uint64, frames [][]byte) bool) {
	type entry struct {
		k      replyKey
		frames [][]byte
	}
	rc.mu.Lock()
	all := make([]entry, 0, len(rc.m))
	for k, frames := range rc.m {
		all = append(all, entry{k, frames})
	}
	rc.mu.Unlock()
	for _, e := range all {
		if !fn(e.k.addr, e.k.id, e.frames) {
			return
		}
	}
}

package dido

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/frontend"
)

// startRESP starts the RESP frontend on a free port and waits for the bind.
func startRESP(t *testing.T, srv *Server) (string, chan error) {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- srv.ServeRESP("127.0.0.1:0") }()
	for i := 0; i < 500; i++ {
		if a := srv.RESPAddr(); a != nil {
			return a.String(), errc
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("RESP frontend never bound")
	return "", nil
}

// respPaths runs fn against a fresh server on the per-frame and the pipelined
// serving path, so every RESP behavior is pinned on both execution paths.
func respPaths(t *testing.T, fn func(t *testing.T, srv *Server, addr string)) {
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		// Deep alternating read/write pipelines seal into many small frames;
		// lift the per-conn queue cap so these tests exercise semantics, not
		// admission (TestServeRESPPerConnInFlight covers the cap).
		opts := ServerOptions{RESPConnInFlight: -1}
		if pipelined {
			name = "pipelined"
			opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
		}
		t.Run(name, func(t *testing.T) {
			st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
			srv := NewServerOpts(st, opts)
			addr, errc := startRESP(t, srv)
			defer srv.Close()
			fn(t, srv, addr)
			srv.Close()
			waitServe(t, errc)
		})
	}
}

func TestServeRESPBasic(t *testing.T) {
	respPaths(t, func(t *testing.T, srv *Server, addr string) {
		c, err := frontend.DialRESP(addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
		resps, err := c.Do([]Query{
			{Op: OpSet, Key: []byte("a"), Value: []byte("1")},
			{Op: OpSet, Key: []byte("b"), Value: []byte("two")},
			{Op: OpGet, Key: []byte("a")},
			{Op: OpGet, Key: []byte("nope")},
			{Op: OpDelete, Key: []byte("a")},
			{Op: OpGet, Key: []byte("a")},
		})
		if err != nil {
			t.Fatal(err)
		}
		wantStatus := []Status{StatusOK, StatusOK, StatusOK, StatusNotFound, StatusOK, StatusNotFound}
		for i, r := range resps {
			if r.Status != wantStatus[i] {
				t.Fatalf("resp %d: status %v, want %v (%+v)", i, r.Status, wantStatus[i], r)
			}
		}
		if string(resps[2].Value) != "1" {
			t.Fatalf("GET a = %q, want 1", resps[2].Value)
		}
		mg, err := c.MGet([]byte("b"), []byte("missing"))
		if err != nil {
			t.Fatal(err)
		}
		if mg[0].Status != StatusOK || string(mg[0].Value) != "two" || mg[1].Status != StatusNotFound {
			t.Fatalf("MGET: %+v", mg)
		}
		// Unknown commands and arity errors answer in-band.
		if v, err := c.Cmd([]byte("FLUSHALL")); err != nil || !bytes.Contains(v.Err(), []byte("unknown command")) {
			t.Fatalf("FLUSHALL: %v %q", err, v.Err())
		}
	})
}

// TestServeRESPPipelinedDuplicates writes a burst of pipelined commands with
// duplicate keys and duplicate whole commands in one TCP write; RESP has no
// request IDs, so every command must be executed and answered, in order.
func TestServeRESPPipelinedDuplicates(t *testing.T) {
	respPaths(t, func(t *testing.T, srv *Server, addr string) {
		c, err := frontend.DialRESP(addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		const n = 64
		qs := make([]Query, 0, 2*n)
		for i := 0; i < n; i++ {
			// Same key set twice with different values: reply order is the
			// only thing that makes the final value deterministic.
			qs = append(qs, Query{Op: OpSet, Key: []byte("dup"), Value: []byte(fmt.Sprintf("v%d", i))})
			qs = append(qs, Query{Op: OpGet, Key: []byte("dup")})
		}
		resps, err := c.Do(qs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			set, get := resps[2*i], resps[2*i+1]
			if set.Status != StatusOK {
				t.Fatalf("SET %d: %+v", i, set)
			}
			want := fmt.Sprintf("v%d", i)
			if get.Status != StatusOK || string(get.Value) != want {
				t.Fatalf("GET %d = %q (%v), want %q: in-order pipelining broken", i, get.Value, get.Status, want)
			}
		}
	})
}

// TestServeRESPFaultyConn drives the server through a stream fault injector on
// both serving paths, in two regimes. "torn" (stalls + 1-byte short reads)
// must be invisible: the parser reassembles commands across arbitrary read
// boundaries, so every batch must come back exactly right. "corrupt" adds bit
// flips to the server's reads; a flipped byte may poison the connection or
// even mangle a command into a different valid one, so the assertion there is
// robustness — no panics, and the server keeps serving new connections.
func TestServeRESPFaultyConn(t *testing.T) {
	regimes := []struct {
		name    string
		cfg     faults.StreamConfig
		corrupt bool
	}{
		{"torn", faults.StreamConfig{Seed: 7, StallRate: 0.05, Stall: time.Millisecond, ShortRate: 0.7}, false},
		{"corrupt", faults.StreamConfig{Seed: 11, StallRate: 0.05, Stall: time.Millisecond, ShortRate: 0.5, CorruptRate: 0.01}, true},
	}
	for _, pipelined := range []bool{false, true} {
		path := "per-frame"
		if pipelined {
			path = "pipelined"
		}
		for _, rg := range regimes {
			rg := rg
			t.Run(path+"/"+rg.name, func(t *testing.T) {
				opts := ServerOptions{
					WrapStreamConn: func(c net.Conn) net.Conn { return faults.WrapStream(c, rg.cfg) },
				}
				if pipelined {
					opts.Pipeline = &PipelineOptions{BatchInterval: 200 * time.Microsecond}
				}
				st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
				srv := NewServerOpts(st, opts)
				addr, errc := startRESP(t, srv)
				defer srv.Close()

				okBatches := 0
				var c *frontend.RESPClient
				rounds := 30
				for round := 0; round < rounds; round++ {
					if c == nil {
						var err error
						if c, err = frontend.DialRESP(addr, 5*time.Second); err != nil {
							t.Fatal(err)
						}
					}
					key := []byte(fmt.Sprintf("f%d", round))
					qs := []Query{
						{Op: OpSet, Key: key, Value: []byte("v")},
						{Op: OpGet, Key: key},
						{Op: OpGet, Key: key}, // duplicate pipelined command
					}
					resps, err := c.Do(qs)
					if err != nil {
						if !rg.corrupt {
							t.Fatalf("round %d: torn reads must not fail a batch: %v", round, err)
						}
						// Corruption legitimately poisons the connection (the
						// server replies -ERR Protocol error and closes, or a
						// command was mangled into garbage). Reconnect, go on.
						c.Close()
						c = nil
						continue
					}
					okBatches++
					if rg.corrupt {
						continue // mangled-but-valid commands make exact checks unsound
					}
					if resps[0].Status != StatusOK {
						t.Fatalf("round %d: SET not acked: %+v", round, resps[0])
					}
					for i := 1; i <= 2; i++ {
						if resps[i].Status != StatusOK || string(resps[i].Value) != "v" {
							t.Fatalf("round %d: GET %d = %+v, want v", round, i, resps[i])
						}
					}
				}
				if c != nil {
					c.Close()
				}
				if okBatches == 0 {
					t.Fatal("no batch survived the fault injector; rates too hot for a meaningful test")
				}
				if ss := srv.Stats(); ss.Panics != 0 {
					t.Fatalf("server panicked %d times under stream faults", ss.Panics)
				}
				// The server must still serve new connections; the wrapper
				// applies to them too, so tolerate a few corrupted attempts.
				alive := false
				for i := 0; i < 10 && !alive; i++ {
					cc, err := frontend.DialRESP(addr, 2*time.Second)
					if err == nil {
						alive = cc.Ping() == nil
						cc.Close()
					}
				}
				if !alive {
					t.Fatal("server unreachable after faulty traffic")
				}
				srv.Close()
				waitServe(t, errc)
			})
		}
	}
}

// TestServeRESPOversizedCommand regression-tests a remotely triggerable spin:
// a single command whose encoding exceeds the whole-command budget, with the
// buffered prefix ending at an arg boundary, used to parse as "incomplete"
// forever while the read buffer was already at its cap — an infinite
// zero-length-read loop at 100% CPU. The server must instead answer with a
// protocol error, close the connection, and keep serving others.
func TestServeRESPOversizedCommand(t *testing.T) {
	respPaths(t, func(t *testing.T, srv *Server, addr string) {
		// ~550 complete 2KB args of a declared 1024-arg MGET: > 1.09MB of
		// prefix, every byte of it ending on an arg boundary.
		payload := []byte("*1024\r\n$4\r\nMGET\r\n")
		arg := []byte("$2048\r\n" + strings.Repeat("k", 2048) + "\r\n")
		for len(payload) <= 1<<20+64<<10 {
			payload = append(payload, arg...)
		}
		nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
		if _, err := nc.Write(payload); err != nil {
			// The server may have already rejected and closed mid-write;
			// that's the behavior under test, not a failure.
			t.Logf("write cut short (server closed early): %v", err)
		}
		var reply bytes.Buffer
		buf := make([]byte, 4096)
		for {
			n, err := nc.Read(buf)
			reply.Write(buf[:n])
			if err != nil {
				break // EOF: the server closed the connection
			}
		}
		if !bytes.Contains(reply.Bytes(), []byte("Protocol error: command too large")) {
			t.Fatalf("reply %q, want a command-too-large protocol error", reply.String())
		}
		// The listener must still be healthy.
		c, err := frontend.DialRESP(addr, 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Ping(); err != nil {
			t.Fatalf("server unhealthy after oversized command: %v", err)
		}
	})
}

// TestServeRESPMaxConns pins connection-scale admission: with MaxConns=1 the
// second connection is told the budget is spent and closed at accept.
func TestServeRESPMaxConns(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	srv := NewServerOpts(st, ServerOptions{MaxConns: 1})
	addr, errc := startRESP(t, srv)
	defer srv.Close()

	c1, err := frontend.DialRESP(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}

	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	n, _ := nc.Read(buf)
	if !strings.Contains(string(buf[:n]), "max number of clients") {
		t.Fatalf("second conn got %q, want max-clients error", buf[:n])
	}
	if ss := srv.Stats(); ss.ConnsShed == 0 {
		t.Fatalf("ConnsShed not accounted: %+v", ss)
	}

	// Releasing the first connection frees the budget.
	c1.Close()
	var c2 *frontend.RESPClient
	for i := 0; i < 100; i++ {
		c2, err = frontend.DialRESP(addr, 2*time.Second)
		if err == nil && c2.Ping() == nil {
			break
		}
		if c2 != nil {
			c2.Close()
			c2 = nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c2 == nil {
		t.Fatal("budget never freed after first conn closed")
	}
	c2.Close()
	srv.Close()
	waitServe(t, errc)
}

// slowBackend delays GETs so a frame stays in flight long enough to pile a
// second one onto the same connection. Deliberately not embedding *Store:
// promotion would expose GetInto and bypass the delay.
type slowBackend struct {
	st    *Store
	delay time.Duration
}

func (b *slowBackend) Get(key []byte) ([]byte, bool) {
	time.Sleep(b.delay)
	return b.st.Get(key)
}
func (b *slowBackend) Set(key, value []byte) error { return b.st.Set(key, value) }
func (b *slowBackend) Delete(key []byte) bool      { return b.st.Delete(key) }

// TestServeRESPPerConnInFlight pins the per-connection frame cap: a second
// frame submitted while the first is executing is shed in-band with -BUSY and
// the connection stays usable.
func TestServeRESPPerConnInFlight(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	srv := NewServerOpts(&slowBackend{st: st, delay: 300 * time.Millisecond}, ServerOptions{RESPConnInFlight: 1})
	addr, errc := startRESP(t, srv)
	defer srv.Close()

	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("GET slow\r\n")); err != nil {
		t.Fatal(err)
	}
	// Let the first frame reach the backend, then submit a second one.
	time.Sleep(100 * time.Millisecond)
	if _, err := nc.Write([]byte("GET slow\r\n")); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	var got []byte
	buf := make([]byte, 512)
	for !bytes.Contains(got, []byte("-BUSY")) || !bytes.Contains(got, []byte("$-1")) {
		n, err := nc.Read(buf)
		if err != nil {
			t.Fatalf("read (have %q): %v", got, err)
		}
		got = append(got, buf[:n]...)
	}
	// In-order delivery: the executed frame's reply precedes the shed one.
	if bytes.Index(got, []byte("$-1")) > bytes.Index(got, []byte("-BUSY")) {
		t.Fatalf("replies out of order: %q", got)
	}
	// The connection survives shedding.
	if _, err := nc.Write([]byte("PING\r\n")); err != nil {
		t.Fatal(err)
	}
	for !bytes.Contains(got, []byte("+PONG")) {
		n, err := nc.Read(buf)
		if err != nil {
			t.Fatalf("read after busy (have %q): %v", got, err)
		}
		got = append(got, buf[:n]...)
	}
	srv.Close()
	waitServe(t, errc)
}

// TestServeRESPDurable pins commit-before-ack over RESP: every acked SET must
// be readable after a restart from the same durability directory.
func TestServeRESPDurable(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Server, string, chan error) {
		st := NewStore(StoreConfig{MemoryBytes: 8 << 20})
		srv, err := NewServerDurable(st, ServerOptions{Durability: &DurabilityOptions{Dir: dir}})
		if err != nil {
			t.Fatal(err)
		}
		addr, errc := startRESP(t, srv)
		return srv, addr, errc
	}

	srv, addr, errc := open()
	c, err := frontend.DialRESP(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	qs := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		qs = append(qs, Query{Op: OpSet, Key: []byte(fmt.Sprintf("d%d", i)), Value: []byte(fmt.Sprintf("val%d", i))})
	}
	resps, err := c.Do(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Status != StatusOK {
			t.Fatalf("SET %d not acked: %+v", i, r)
		}
	}
	c.Close()
	srv.Close()
	waitServe(t, errc)

	srv2, addr2, errc2 := open()
	defer srv2.Close()
	c2, err := frontend.DialRESP(addr2, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < n; i++ {
		qs2 := []Query{{Op: OpGet, Key: []byte(fmt.Sprintf("d%d", i))}}
		rs, err := c2.Do(qs2)
		if err != nil {
			t.Fatal(err)
		}
		if rs[0].Status != StatusOK || string(rs[0].Value) != fmt.Sprintf("val%d", i) {
			t.Fatalf("acked SET d%d lost across restart: %+v", i, rs[0])
		}
	}
	srv2.Close()
	waitServe(t, errc2)
}

// TestTextServerSharedGate pins that the memcached text frontend can share the
// core server's connection budget: with MaxConns=1 held by a RESP client, a
// text session is shed and the shed shows up in ServerStats.
func TestTextServerSharedGate(t *testing.T) {
	st := NewStore(StoreConfig{MemoryBytes: 4 << 20})
	srv := NewServerOpts(st, ServerOptions{MaxConns: 1})
	addr, errc := startRESP(t, srv)
	defer srv.Close()

	ts := NewTextServer(st)
	ts.Gate = srv.ConnGate()
	srv.AttachFrontendStats(ts)
	tErrc := make(chan error, 1)
	go func() { tErrc <- ts.Serve("127.0.0.1:0") }()
	for i := 0; ts.Addr() == nil && i < 500; i++ {
		time.Sleep(2 * time.Millisecond)
	}
	defer ts.Close()

	c, err := frontend.DialRESP(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	nc, err := net.DialTimeout("tcp", ts.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 256)
	n, _ := nc.Read(buf)
	if !strings.Contains(string(buf[:n]), "SERVER_ERROR busy") {
		t.Fatalf("text conn over shared budget got %q", buf[:n])
	}
	if ss := srv.Stats(); ss.ConnsShed == 0 {
		t.Fatalf("shared-gate shed missing from ServerStats: %+v", ss)
	}
	ts.Close()
	waitServe(t, tErrc)
	srv.Close()
	waitServe(t, errc)
}

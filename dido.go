// Package dido is a reproduction of "DIDO: Dynamic Pipelines for In-Memory
// Key-Value Stores on Coupled CPU-GPU Architectures" (Zhang, Hu, He, Hua —
// ICDE 2017).
//
// The package exposes two top-level facilities:
//
//   - Store: a real, embeddable, concurrent in-memory key-value store built
//     on the paper's substrate (cuckoo-hash index with short signatures,
//     slab arena with LRU eviction). Serve makes it a UDP server speaking
//     the batched binary protocol; Client talks to one.
//
//   - Sim: the full DIDO system — eight-task pipeline, workload profiler,
//     APU-aware cost model, dynamic pipeline partitioning, flexible index
//     operation assignment, work stealing — running on a calibrated
//     simulation of the AMD Kaveri APU (this machine has no such chip; see
//     DESIGN.md for the substitution argument). Experiments reproduces every
//     figure of the paper's evaluation.
//
// Quick start:
//
//	st := dido.NewStore(dido.StoreConfig{MemoryBytes: 64 << 20})
//	st.Set([]byte("user:42"), []byte(`{"name":"ada"}`))
//	v, ok := st.Get([]byte("user:42"))
//
// Simulation:
//
//	sys := dido.NewSim(dido.SimOptions{MemoryBytes: 32 << 20})
//	res := dido.RunWorkload(sys, "K16-G95-S", 50)
//	fmt.Printf("%.2f MOPS at %v avg latency\n", res.ThroughputMOPS, res.AvgLatency)
package dido

import (
	idido "repro/internal/dido"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// SimOptions configures a simulated DIDO system. It is an alias of the
// internal options type; construct it with composite literals and the
// helpers below.
type SimOptions = idido.Options

// SimSystem is a runnable simulated system (DIDO or a pinned baseline).
type SimSystem = idido.System

// SimResult is the aggregate outcome of a simulated run.
type SimResult = pipeline.Result

// PipelineConfig is one pipeline partitioning scheme.
type PipelineConfig = pipeline.Config

// DefaultSimOptions returns the paper's evaluation setup at the given arena
// size: Kaveri APU, kernel networking, 1000 µs latency budget.
func DefaultSimOptions(memBytes int64) SimOptions {
	return idido.DefaultOptions(memBytes)
}

// NewSim builds a simulated DIDO system.
func NewSim(opts SimOptions) *SimSystem {
	return idido.New(opts)
}

// MegaKVPipeline returns the baseline's static pipeline configuration
// ([RV,PP,MM]CPU → [IN]GPU → [KC,RD,WR,SD]CPU).
func MegaKVPipeline() PipelineConfig {
	return pipeline.MegaKV()
}

// Workloads returns the names of the paper's 24 standard workloads
// (e.g. "K16-G95-S": 16-byte keys, 95% GET, skewed popularity).
func Workloads() []string {
	specs := workload.StandardSpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// RunWorkload warms sys with the named standard workload's population and
// runs nBatches batches, returning aggregate metrics. It panics on an
// unknown workload name (see Workloads).
func RunWorkload(sys *SimSystem, name string, nBatches int) SimResult {
	spec, ok := workload.SpecByName(name)
	if !ok {
		panic("dido: unknown workload " + name)
	}
	pop := workload.PopulationForMemory(spec, sys.Options().MemoryBytes)
	gen := workload.NewGenerator(spec, pop, int64(sys.Options().Seed)+42)
	sys.Warm(gen.KeyAt, pop, spec.ValueSize)
	return sys.Run(gen, nBatches)
}

package dido

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/wal"
)

// TestDurableServerDiskSyncFaults puts the disk fault injector under the WAL
// with a 100% fsync failure rate: every commit fails, so the server must drop
// every ack (the client times out and would retry) rather than acknowledge a
// write that never became durable. The serve loop survives it all.
func TestDurableServerDiskSyncFaults(t *testing.T) {
	opts := durableOpts(t.TempDir(), false)
	disk := faults.DiskConfig{Seed: 7, SyncErr: 1.0}
	opts.Durability.OpenFile = func(path string) (wal.File, error) {
		f, err := wal.DefaultOpenFile(path)
		if err != nil {
			return nil, err
		}
		return faults.WrapFile(f, disk), nil
	}
	st := NewStore(StoreConfig{MemoryBytes: 16 << 20})
	srv, err := NewServerDurable(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	addr, errc := startServer(t, srv)
	defer srv.Close()
	c, err := DialOpts(addr, ClientOptions{Timeout: 100 * time.Millisecond, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set([]byte("k"), []byte("v")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("SET with a failing fsync must time out (no ack), got %v", err)
	}
	// GETs carry no durability obligation and still answer.
	if _, _, err := c.Get([]byte("absent")); err != nil {
		t.Fatalf("GET must still be served: %v", err)
	}
	ds, _ := srv.DurabilityStats()
	if ds.WAL.SyncErrs == 0 || ds.DroppedAcks == 0 {
		t.Fatalf("fault accounting: %+v", ds)
	}
	srv.Close()
	waitServe(t, errc)
}

// TestCrashServerHelper is the re-exec target of TestCrashRecoveryKill9: it
// runs a durable server until the parent kills the process. It skips unless
// spawned by the parent test.
func TestCrashServerHelper(t *testing.T) {
	if os.Getenv("DIDO_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestCrashRecoveryKill9")
	}
	dir := os.Getenv("DIDO_CRASH_DIR")
	st := NewStore(StoreConfig{MemoryBytes: 32 << 20})
	srv, err := NewServerDurable(st, durableOpts(dir, os.Getenv("DIDO_CRASH_PIPELINED") == "1"))
	if err != nil {
		fmt.Printf("HELPER_ERR %v\n", err)
		os.Exit(1)
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve("127.0.0.1:0") }()
	for srv.Addr() == nil {
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("ADDR %s\n", srv.Addr())
	<-errc // never: the parent kills this process with SIGKILL
}

// TestCrashRecoveryKill9 is the crash-recovery e2e: a child process serves a
// durable store under chaos load, the parent SIGKILLs it mid-load (no drain,
// no fsync-on-close — the crash the WAL exists for), recovers the directory
// into a fresh store, and verifies that every acknowledged SET survived. Runs
// on both serving paths.
func TestCrashRecoveryKill9(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("SIGKILL semantics are POSIX")
	}
	for _, pipelined := range []bool{false, true} {
		name := "per-frame"
		if pipelined {
			name = "pipelined"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=^TestCrashServerHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				"DIDO_CRASH_HELPER=1",
				"DIDO_CRASH_DIR="+dir,
				fmt.Sprintf("DIDO_CRASH_PIPELINED=%v", pipelined))
			stdout, err := cmd.StdoutPipe()
			if err != nil {
				t.Fatal(err)
			}
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			defer cmd.Process.Kill() //nolint:errcheck // double-kill is fine

			var addr string
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				if strings.HasPrefix(line, "HELPER_ERR") {
					t.Fatalf("helper: %s", line)
				}
				if strings.HasPrefix(line, "ADDR ") {
					addr = strings.TrimPrefix(line, "ADDR ")
					break
				}
			}
			if addr == "" {
				cmd.Wait() //nolint:errcheck
				t.Fatal("helper never published its address")
			}
			// Keep draining so the child never blocks on a full pipe.
			go io.Copy(io.Discard, stdout) //nolint:errcheck

			// Chaos load: several clients hammer unique, never-rewritten keys
			// so each acked key has exactly one possible value at recovery.
			var (
				mu    sync.Mutex
				acked []int
				stop  = make(chan struct{})
				wg    sync.WaitGroup
			)
			const setters = 3
			for g := 0; g < setters; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					c, err := DialOpts(addr, ClientOptions{Timeout: 150 * time.Millisecond, Retries: 2})
					if err != nil {
						return
					}
					defer c.Close()
					const batch = 16
					for next := g << 20; ; next += batch {
						select {
						case <-stop:
							return
						default:
						}
						qs := make([]Query, batch)
						for i := range qs {
							qs[i] = Query{Op: OpSet, Key: crashKey(next + i), Value: crashVal(next + i)}
						}
						if _, err := c.Do(qs); err != nil {
							return // killed mid-flight: unacked, not recorded
						}
						mu.Lock()
						for i := 0; i < batch; i++ {
							acked = append(acked, next+i)
						}
						mu.Unlock()
					}
				}(g)
			}
			time.Sleep(400 * time.Millisecond)
			if err := cmd.Process.Kill(); err != nil { // SIGKILL: no drain, no deferred fsync
				t.Fatal(err)
			}
			cmd.Wait() //nolint:errcheck // the kill is the expected exit
			close(stop)
			wg.Wait()

			mu.Lock()
			ackedKeys := append([]int(nil), acked...)
			mu.Unlock()
			if len(ackedKeys) == 0 {
				t.Fatal("no SETs were acked before the kill; load never ramped")
			}

			st := NewStore(StoreConfig{MemoryBytes: 32 << 20})
			srv, err := NewServerDurable(st, durableOpts(dir, false))
			if err != nil {
				t.Fatalf("recovery after kill -9: %v", err)
			}
			defer srv.Close()
			ds, _ := srv.DurabilityStats()
			lost := 0
			for _, k := range ackedKeys {
				if v, ok := st.Get(crashKey(k)); !ok || string(v) != string(crashVal(k)) {
					lost++
				}
			}
			if lost > 0 {
				t.Fatalf("kill -9 lost %d of %d acked SETs (recovery: %d records, torn %d bytes)",
					lost, len(ackedKeys), ds.RecoveredWALRecords, ds.RecoveredTornBytes)
			}
			t.Logf("%s: %d acked SETs survived kill -9 (%d WAL records replayed in %v, torn tail %d bytes)",
				name, len(ackedKeys), ds.RecoveredWALRecords, ds.RecoveryDuration, ds.RecoveredTornBytes)
		})
	}
}

func crashKey(i int) []byte { return []byte(fmt.Sprintf("crash-key-%08d", i)) }
func crashVal(i int) []byte {
	return []byte(fmt.Sprintf("crash-val-%08d-%s", i, strings.Repeat("y", 24)))
}

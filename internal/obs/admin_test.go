package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/pipeline"
)

// startAdmin binds an Admin on a loopback port and returns its base URL.
func startAdmin(t *testing.T, opts AdminOptions) string {
	t.Helper()
	a := NewAdmin(opts)
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatalf("start admin: %v", err)
	}
	t.Cleanup(func() { a.Close() })
	return "http://" + a.Addr().String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	ring := NewTraceRing(8)
	cfgOld := pipeline.Config{GPUDepth: 0}
	cfgNew := pipeline.Config{GPUDepth: 2, CPUCoresPre: 1}
	ring.Append(TraceEvent{
		When: time.Now(), Seq: 1, Replan: true,
		Old: cfgOld, New: cfgNew, OldTarget: 512, NewTarget: 1024,
		PredictedTmax: 80 * time.Microsecond,
		RealizedTmax:  95 * time.Microsecond,
		RealizedWall:  120 * time.Microsecond,
	})
	sl := NewSlowLog(time.Microsecond, 8, 1)
	sl.Observe(time.Millisecond, 2, 'g', []byte("slow"))

	base := startAdmin(t, AdminOptions{
		Collect: func(w *MetricsWriter) {
			w.Counter("dido_app_frames_total", "App frames.", 7)
		},
		Config:  func() any { return map[string]any{"pipeline": cfgNew.String()} },
		Trace:   ring,
		SlowLog: sl,
	})

	t.Run("metrics", func(t *testing.T) {
		code, body := get(t, base+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		for _, want := range []string{
			"dido_app_frames_total 7",
			"dido_trace_decisions_total 1",
			"dido_slowlog_over_threshold_total 1",
			"dido_slowlog_recorded_total 1",
			"dido_slowlog_latency_micros_count 1",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("missing %q in:\n%s", want, body)
			}
		}
	})

	t.Run("config", func(t *testing.T) {
		code, body := get(t, base+"/config")
		if code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("config not JSON: %v\n%s", err, body)
		}
		if v["pipeline"] != cfgNew.String() {
			t.Fatalf("config pipeline = %v, want %q", v["pipeline"], cfgNew.String())
		}
	})

	t.Run("trace", func(t *testing.T) {
		code, body := get(t, base+"/trace")
		if code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		var v struct {
			Total  uint64 `json:"total"`
			Cap    int    `json:"cap"`
			Events []struct {
				Seq       uint64 `json:"seq"`
				Replan    bool   `json:"replan"`
				Old       string `json:"old"`
				New       string `json:"new"`
				OldTarget int    `json:"old_target"`
				NewTarget int    `json:"new_target"`
			} `json:"events"`
		}
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("trace not JSON: %v\n%s", err, body)
		}
		if v.Total != 1 || v.Cap != 8 || len(v.Events) != 1 {
			t.Fatalf("trace dump = %+v", v)
		}
		e := v.Events[0]
		if !e.Replan || e.Seq != 1 || e.OldTarget != 512 || e.NewTarget != 1024 {
			t.Fatalf("event = %+v", e)
		}
		if e.Old != cfgOld.String() || e.New != cfgNew.String() {
			t.Fatalf("notation old=%q new=%q", e.Old, e.New)
		}
	})

	t.Run("slowlog", func(t *testing.T) {
		code, body := get(t, base+"/slowlog")
		if code != http.StatusOK {
			t.Fatalf("status = %d", code)
		}
		var v struct {
			Seen    uint64 `json:"over_threshold_total"`
			Entries []struct {
				Key       string  `json:"key"`
				LatencyUS float64 `json:"latency_micros"`
			} `json:"entries"`
		}
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("slowlog not JSON: %v\n%s", err, body)
		}
		if v.Seen != 1 || len(v.Entries) != 1 {
			t.Fatalf("slowlog dump = %+v", v)
		}
		if v.Entries[0].Key != "slow" || v.Entries[0].LatencyUS != 1000 {
			t.Fatalf("entry = %+v", v.Entries[0])
		}
	})

	t.Run("healthz", func(t *testing.T) {
		if code, body := get(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
			t.Fatalf("healthz = %d %q", code, body)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
			t.Fatalf("pprof index status = %d", code)
		}
	})
}

// TestAdminMissingSources: endpoints without a wired source 404 instead of
// panicking, and /metrics still serves whatever it has.
func TestAdminMissingSources(t *testing.T) {
	base := startAdmin(t, AdminOptions{})
	for _, ep := range []string{"/config", "/trace", "/slowlog"} {
		if code, _ := get(t, base+ep); code != http.StatusNotFound {
			t.Fatalf("%s status = %d, want 404", ep, code)
		}
	}
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status = %d", code)
	}
	if body != "" {
		t.Fatalf("empty admin /metrics = %q", body)
	}
}

// TestAdminMetricsContentType: scrapers negotiate on the version parameter.
func TestAdminMetricsContentType(t *testing.T) {
	base := startAdmin(t, AdminOptions{})
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
}

// TestAdminStartBadAddr: a bind failure surfaces synchronously.
func TestAdminStartBadAddr(t *testing.T) {
	a := NewAdmin(AdminOptions{})
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b := NewAdmin(AdminOptions{})
	if err := b.Start(fmt.Sprintf("%s", a.Addr())); err == nil {
		b.Close()
		t.Fatal("second bind on same port succeeded")
	}
}

package obs

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// slowKeyPrefixLen bounds how many key bytes a slow-log entry retains. The
// entry stores the prefix in a fixed array so recording never allocates —
// ring entries are laid out once at construction.
const slowKeyPrefixLen = 40

// SlowEntry is one recorded slow frame.
type SlowEntry struct {
	// When is the completion time; Latency the admission→response-send wall
	// time of the frame.
	When    time.Time
	Latency time.Duration
	// Queries is the frame's query count; Op and Key identify the frame's
	// first query (op code and key prefix) — enough to find the offender in
	// client logs without retaining the payload.
	Queries int
	Op      uint8
	keyLen  int
	key     [slowKeyPrefixLen]byte
	// Truncated reports that the key was longer than the retained prefix.
	Truncated bool
}

// Key returns the recorded key prefix.
func (e *SlowEntry) Key() []byte { return e.key[:e.keyLen] }

// SlowLog records frames whose serving latency exceeded a threshold. The
// fast path — every frame below the threshold — is one atomic load and a
// compare, with zero allocations (guarded by test); over-threshold frames
// are counted, sampled 1-in-every, and the sampled ones recorded into a
// bounded ring plus a latency histogram. All methods are safe for
// concurrent use.
type SlowLog struct {
	thresholdNanos atomic.Int64
	every          uint64        // sample stride over slow frames; 1 records all
	seen           atomic.Uint64 // over-threshold frames (drives sampling)
	recorded       stats.Counter
	hist           *stats.Histogram // recorded latencies, µs

	mu      sync.Mutex
	entries []SlowEntry // fixed capacity, allocated once
	next    int
	filled  int
}

// DefaultSlowLogSize is the default ring capacity.
const DefaultSlowLogSize = 256

// NewSlowLog returns a log recording frames slower than threshold, keeping
// the last capacity sampled entries (capacity <= 0 means DefaultSlowLogSize),
// recording one of every sampleEvery over-threshold frames (<= 1 records
// all).
func NewSlowLog(threshold time.Duration, capacity, sampleEvery int) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogSize
	}
	if sampleEvery < 1 {
		sampleEvery = 1
	}
	l := &SlowLog{
		every:   uint64(sampleEvery),
		entries: make([]SlowEntry, capacity),
		hist:    stats.NewHistogram(stats.LatencyBoundsMicros()...),
	}
	l.thresholdNanos.Store(int64(threshold))
	return l
}

// Threshold returns the current latency threshold.
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.thresholdNanos.Load())
}

// SetThreshold installs a new latency threshold (operators tune it at
// runtime through the admin endpoint without restarting the server).
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.thresholdNanos.Store(int64(d))
}

// Observe books one completed frame. Below the threshold it returns after a
// single atomic compare without allocating — this is the serving hot path.
// Over the threshold the frame is counted and, when sampled, recorded.
func (l *SlowLog) Observe(lat time.Duration, queries int, op uint8, key []byte) {
	if int64(lat) < l.thresholdNanos.Load() {
		return
	}
	n := l.seen.Add(1)
	if l.every > 1 && (n-1)%l.every != 0 {
		return
	}
	l.record(lat, queries, op, key)
}

// record copies the frame's identifying prefix into the ring; the entry
// storage is pre-allocated, so recording is allocation-free too.
func (l *SlowLog) record(lat time.Duration, queries int, op uint8, key []byte) {
	l.recorded.Inc()
	l.hist.Observe(float64(lat) / float64(time.Microsecond))
	l.mu.Lock()
	e := &l.entries[l.next]
	e.When = time.Now()
	e.Latency = lat
	e.Queries = queries
	e.Op = op
	e.keyLen = copy(e.key[:], key)
	e.Truncated = len(key) > slowKeyPrefixLen
	l.next = (l.next + 1) % len(l.entries)
	if l.filled < len(l.entries) {
		l.filled++
	}
	l.mu.Unlock()
}

// Seen returns how many frames exceeded the threshold; Recorded how many of
// those were sampled into the ring. Both are monotonic.
func (l *SlowLog) Seen() uint64 { return l.seen.Load() }

// Recorded returns how many entries were sampled into the ring.
func (l *SlowLog) Recorded() uint64 { return l.recorded.Load() }

// LatencyExport returns a consistent snapshot of the recorded-latency
// histogram (µs).
func (l *SlowLog) LatencyExport() stats.HistogramSnapshot { return l.hist.Export() }

// Snapshot returns the retained entries, oldest first.
func (l *SlowLog) Snapshot() []SlowEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, l.filled)
	start := l.next - l.filled
	if start < 0 {
		start += len(l.entries)
	}
	for i := 0; i < l.filled; i++ {
		out = append(out, l.entries[(start+i)%len(l.entries)])
	}
	return out
}

// Package obs is the serving path's observability surface: a Prometheus
// text-exposition writer over the internal/stats primitives, a bounded
// reconfiguration trace ring fed by the cost-model controller, a sampled
// slow-query log with an allocation-free fast path, and the HTTP admin
// server that exposes all of it (/metrics, /config, /trace, /slowlog,
// /debug/pprof).
//
// The package is deliberately pull-based: nothing here sits on the serving
// hot path except the slow-query threshold compare and the per-batch trace
// append, both O(1) and allocation-free. Everything else is paid at scrape
// time.
package obs

import (
	"bytes"
	"fmt"
	"strconv"

	"repro/internal/stats"
)

// MetricsWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4). It is not safe for concurrent use; the admin server
// builds a fresh writer per scrape.
//
// Name and label conventions (pinned by the golden test):
//
//   - every metric is prefixed "dido_"
//   - monotonic counters end in "_total"
//   - durations are exported in base units named into the metric
//     ("_micros", "_nanos") rather than converted, matching the paper's
//     microsecond-scale latency vocabulary used across the repo
//   - HELP/TYPE headers are emitted once per metric name, before its first
//     sample, regardless of how many label sets follow
type MetricsWriter struct {
	buf   bytes.Buffer
	typed map[string]bool
}

// NewMetricsWriter returns an empty writer.
func NewMetricsWriter() *MetricsWriter {
	return &MetricsWriter{typed: make(map[string]bool)}
}

// header emits the # HELP / # TYPE preamble once per metric name.
func (w *MetricsWriter) header(name, help, typ string) {
	if w.typed[name] {
		return
	}
	w.typed[name] = true
	fmt.Fprintf(&w.buf, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// fmtFloat renders a sample value the way Prometheus expects (shortest
// round-trippable representation; +Inf/-Inf/NaN spelled out).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Counter emits one unlabelled counter sample.
func (w *MetricsWriter) Counter(name, help string, v uint64) {
	w.header(name, help, "counter")
	fmt.Fprintf(&w.buf, "%s %d\n", name, v)
}

// CounterL emits one labelled counter sample. labels is the raw inner label
// list, e.g. `stage="1"`.
func (w *MetricsWriter) CounterL(name, help, labels string, v uint64) {
	w.header(name, help, "counter")
	fmt.Fprintf(&w.buf, "%s{%s} %d\n", name, labels, v)
}

// Gauge emits one unlabelled gauge sample.
func (w *MetricsWriter) Gauge(name, help string, v float64) {
	w.header(name, help, "gauge")
	fmt.Fprintf(&w.buf, "%s %s\n", name, fmtFloat(v))
}

// GaugeL emits one labelled gauge sample.
func (w *MetricsWriter) GaugeL(name, help, labels string, v float64) {
	w.header(name, help, "gauge")
	fmt.Fprintf(&w.buf, "%s{%s} %s\n", name, labels, fmtFloat(v))
}

// Histogram emits a full Prometheus histogram (cumulative le buckets,
// _sum, _count) from a consistent stats snapshot. labels may be empty.
func (w *MetricsWriter) Histogram(name, help, labels string, s stats.HistogramSnapshot) {
	w.header(name, help, "histogram")
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		le := "+Inf"
		if i < len(s.Bounds) {
			le = fmtFloat(s.Bounds[i])
		}
		if labels != "" {
			fmt.Fprintf(&w.buf, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
		} else {
			fmt.Fprintf(&w.buf, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
	}
	w.suffixed(name, "_sum", labels, fmtFloat(s.Sum))
	w.suffixed(name, "_count", labels, strconv.FormatUint(s.N, 10))
}

// Summary emits a Prometheus summary (quantile samples, _sum, _count) from a
// consistent stats snapshot; quantiles are computed from the same snapshot so
// they agree with the count and sum next to them. labels may be empty.
func (w *MetricsWriter) Summary(name, help, labels string, s stats.HistogramSnapshot, qs ...float64) {
	w.header(name, help, "summary")
	for _, q := range qs {
		qv := fmtFloat(s.Quantile(q))
		if labels != "" {
			fmt.Fprintf(&w.buf, "%s{%s,quantile=%q} %s\n", name, labels, fmtFloat(q), qv)
		} else {
			fmt.Fprintf(&w.buf, "%s{quantile=%q} %s\n", name, fmtFloat(q), qv)
		}
	}
	w.suffixed(name, "_sum", labels, fmtFloat(s.Sum))
	w.suffixed(name, "_count", labels, strconv.FormatUint(s.N, 10))
}

// suffixed emits a _sum/_count style sample with optional labels.
func (w *MetricsWriter) suffixed(name, suffix, labels, val string) {
	if labels != "" {
		fmt.Fprintf(&w.buf, "%s%s{%s} %s\n", name, suffix, labels, val)
	} else {
		fmt.Fprintf(&w.buf, "%s%s %s\n", name, suffix, val)
	}
}

// Bytes returns the rendered exposition.
func (w *MetricsWriter) Bytes() []byte { return w.buf.Bytes() }

// String returns the rendered exposition as a string.
func (w *MetricsWriter) String() string { return w.buf.String() }

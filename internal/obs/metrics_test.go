package obs

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestMetricsWriterGolden pins the exact exposition bytes for every sample
// kind. The Prometheus text format is a wire contract — scrapers parse it
// byte-by-byte — so format drift (header order, float rendering, label
// quoting) must fail loudly, not silently re-shape dashboards.
func TestMetricsWriterGolden(t *testing.T) {
	h := stats.NewHistogram(10, 20)
	for _, v := range []float64{5, 15, 15, 25} {
		h.Observe(v)
	}
	snap := h.Export()

	w := NewMetricsWriter()
	w.Counter("dido_frames_total", "Frames served.", 42)
	w.CounterL("dido_stage_batches_total", "Batches per stage.", `stage="1"`, 7)
	w.CounterL("dido_stage_batches_total", "Batches per stage.", `stage="2"`, 9)
	w.Gauge("dido_inflight", "Frames in flight.", 3)
	w.GaugeL("dido_cores", "Cores per stage.", `stage="1"`, 2.5)
	w.Histogram("dido_lat_micros", "Latency histogram.", "", snap)
	w.Summary("dido_stage_micros", "Stage time summary.", `stage="1"`, snap, 0.5, 0.99)

	want := strings.Join([]string{
		`# HELP dido_frames_total Frames served.`,
		`# TYPE dido_frames_total counter`,
		`dido_frames_total 42`,
		`# HELP dido_stage_batches_total Batches per stage.`,
		`# TYPE dido_stage_batches_total counter`,
		`dido_stage_batches_total{stage="1"} 7`,
		`dido_stage_batches_total{stage="2"} 9`,
		`# HELP dido_inflight Frames in flight.`,
		`# TYPE dido_inflight gauge`,
		`dido_inflight 3`,
		`# HELP dido_cores Cores per stage.`,
		`# TYPE dido_cores gauge`,
		`dido_cores{stage="1"} 2.5`,
		`# HELP dido_lat_micros Latency histogram.`,
		`# TYPE dido_lat_micros histogram`,
		`dido_lat_micros_bucket{le="10"} 1`,
		`dido_lat_micros_bucket{le="20"} 3`,
		`dido_lat_micros_bucket{le="+Inf"} 4`,
		`dido_lat_micros_sum 60`,
		`dido_lat_micros_count 4`,
		`# HELP dido_stage_micros Stage time summary.`,
		`# TYPE dido_stage_micros summary`,
		`dido_stage_micros{stage="1",quantile="0.5"} ` + quantileStr(snap, 0.5),
		`dido_stage_micros{stage="1",quantile="0.99"} ` + quantileStr(snap, 0.99),
		`dido_stage_micros_sum{stage="1"} 60`,
		`dido_stage_micros_count{stage="1"} 4`,
	}, "\n") + "\n"

	if got := w.String(); got != want {
		t.Fatalf("exposition drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func quantileStr(s stats.HistogramSnapshot, q float64) string {
	return fmtFloat(s.Quantile(q))
}

// TestMetricsWriterHeaderOncePerName: a metric emitted under several label
// sets gets exactly one HELP/TYPE pair.
func TestMetricsWriterHeaderOncePerName(t *testing.T) {
	w := NewMetricsWriter()
	for i := 0; i < 3; i++ {
		w.CounterL("dido_x_total", "X.", `k="v"`, uint64(i))
	}
	if got := strings.Count(w.String(), "# TYPE dido_x_total"); got != 1 {
		t.Fatalf("TYPE header emitted %d times, want 1", got)
	}
}

// TestMetricsWriterEmptyHistogram: an empty snapshot still renders a complete
// histogram (all-zero cumulative buckets, zero sum/count) rather than nothing
// — scrapers treat a missing series as a restart.
func TestMetricsWriterEmptyHistogram(t *testing.T) {
	h := stats.NewHistogram(1, 2)
	w := NewMetricsWriter()
	w.Histogram("dido_empty", "Empty.", "", h.Export())
	out := w.String()
	for _, line := range []string{
		`dido_empty_bucket{le="+Inf"} 0`,
		`dido_empty_sum 0`,
		`dido_empty_count 0`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSlowLogRecordsOverThreshold(t *testing.T) {
	l := NewSlowLog(time.Millisecond, 8, 1)
	l.Observe(500*time.Microsecond, 1, 'g', []byte("fast"))
	if l.Seen() != 0 || l.Recorded() != 0 {
		t.Fatalf("fast frame was counted: seen=%d recorded=%d", l.Seen(), l.Recorded())
	}
	l.Observe(2*time.Millisecond, 3, 'g', []byte("slow-key"))
	if l.Seen() != 1 || l.Recorded() != 1 {
		t.Fatalf("slow frame not counted: seen=%d recorded=%d", l.Seen(), l.Recorded())
	}
	snap := l.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot has %d entries, want 1", len(snap))
	}
	e := snap[0]
	if e.Latency != 2*time.Millisecond || e.Queries != 3 || e.Op != 'g' {
		t.Fatalf("entry = %+v", e)
	}
	if !bytes.Equal(e.Key(), []byte("slow-key")) || e.Truncated {
		t.Fatalf("key = %q truncated=%v", e.Key(), e.Truncated)
	}
	if s := l.LatencyExport(); s.N != 1 {
		t.Fatalf("latency histogram N = %d, want 1", s.N)
	}
}

func TestSlowLogKeyTruncation(t *testing.T) {
	l := NewSlowLog(0, 4, 1)
	long := strings.Repeat("k", slowKeyPrefixLen+10)
	l.Observe(time.Second, 1, 's', []byte(long))
	e := l.Snapshot()[0]
	if !e.Truncated {
		t.Fatal("long key not flagged truncated")
	}
	if got := string(e.Key()); got != long[:slowKeyPrefixLen] {
		t.Fatalf("key prefix = %q", got)
	}
}

func TestSlowLogSampling(t *testing.T) {
	l := NewSlowLog(0, 64, 4) // record 1 of every 4 slow frames
	for i := 0; i < 40; i++ {
		l.Observe(time.Millisecond, 1, 'g', []byte("k"))
	}
	if got := l.Seen(); got != 40 {
		t.Fatalf("seen = %d, want 40", got)
	}
	if got := l.Recorded(); got != 10 {
		t.Fatalf("recorded = %d, want 10 (1-in-4 of 40)", got)
	}
}

func TestSlowLogRingWraps(t *testing.T) {
	l := NewSlowLog(0, 4, 1)
	for i := 0; i < 10; i++ {
		l.Observe(time.Duration(i+1)*time.Millisecond, i, 'g', []byte("k"))
	}
	snap := l.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d entries, want 4", len(snap))
	}
	// Oldest-first window over the last 4 observes: queries 6,7,8,9.
	for i, e := range snap {
		if want := 6 + i; e.Queries != want {
			t.Fatalf("snapshot[%d].Queries = %d, want %d", i, e.Queries, want)
		}
	}
}

func TestSlowLogSetThreshold(t *testing.T) {
	l := NewSlowLog(time.Hour, 4, 1)
	l.Observe(time.Second, 1, 'g', []byte("k"))
	if l.Seen() != 0 {
		t.Fatal("frame under threshold was counted")
	}
	l.SetThreshold(time.Millisecond)
	if got := l.Threshold(); got != time.Millisecond {
		t.Fatalf("threshold = %v", got)
	}
	l.Observe(time.Second, 1, 'g', []byte("k"))
	if l.Seen() != 1 {
		t.Fatal("frame over lowered threshold not counted")
	}
}

// TestSlowLogFastPathNoAlloc pins the zero-allocation guarantee for both the
// below-threshold path (every frame pays this) and the recording path (the
// ring entries are pre-allocated).
func TestSlowLogFastPathNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	l := NewSlowLog(time.Hour, 16, 1)
	key := []byte("some-representative-key-bytes")
	if avg := testing.AllocsPerRun(1000, func() {
		l.Observe(time.Microsecond, 8, 'g', key)
	}); avg != 0 {
		t.Fatalf("below-threshold Observe allocates %.1f/op, want 0", avg)
	}
	l.SetThreshold(0)
	if avg := testing.AllocsPerRun(1000, func() {
		l.Observe(time.Millisecond, 8, 'g', key)
	}); avg != 0 {
		t.Fatalf("recording Observe allocates %.1f/op, want 0", avg)
	}
}

// TestSlowLogConcurrent hammers Observe from parallel writers against
// snapshot readers; under -race this pins the locking, and the monotonic
// counters must come out exact.
func TestSlowLogConcurrent(t *testing.T) {
	l := NewSlowLog(time.Microsecond, 32, 2)
	const writers, per = 4, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := []byte("concurrent-key")
			for j := 0; j < per; j++ {
				l.Observe(time.Millisecond, 1, 'g', key)
			}
		}()
	}
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			l.Snapshot()
			l.LatencyExport()
			l.Seen()
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := l.Seen(); got != writers*per {
		t.Fatalf("seen = %d, want %d", got, writers*per)
	}
	if got := l.Recorded(); got != writers*per/2 {
		t.Fatalf("recorded = %d, want %d (1-in-2)", got, writers*per/2)
	}
}

package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// AdminOptions wires the observability sources into an Admin server. Every
// field is optional; missing sources simply leave their endpoint empty.
type AdminOptions struct {
	// Collect appends application metrics to the per-scrape writer; the
	// admin adds its own (trace / slow-log) metrics after it.
	Collect func(*MetricsWriter)
	// Config returns the /config payload, rendered as JSON per request so
	// it reflects the live (possibly re-planned) configuration.
	Config func() any
	// Trace is the controller decision ring dumped at /trace.
	Trace *TraceRing
	// SlowLog is dumped at /slowlog.
	SlowLog *SlowLog
}

// Admin is the HTTP observability endpoint: Prometheus metrics, live config,
// the reconfiguration trace, the slow-query log, and pprof. It serves
// read-only snapshots — scraping never blocks the serving path beyond the
// individual counter loads.
type Admin struct {
	opts AdminOptions
	srv  *http.Server

	mu sync.Mutex
	ln net.Listener
}

// NewAdmin returns an admin server over the given sources. Call Start to
// bind it.
func NewAdmin(opts AdminOptions) *Admin {
	a := &Admin{opts: opts}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/config", a.handleConfig)
	mux.HandleFunc("/trace", a.handleTrace)
	mux.HandleFunc("/slowlog", a.handleSlowlog)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return a
}

// Start binds addr (e.g. ":9090", "127.0.0.1:0") and serves in a background
// goroutine until Close. The bind itself is synchronous so the caller can
// report the real address (Addr) immediately.
func (a *Admin) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.ln = ln
	a.mu.Unlock()
	go a.srv.Serve(ln) //nolint:errcheck // ErrServerClosed after Close
	return nil
}

// Addr returns the bound address, or nil before Start.
func (a *Admin) Addr() net.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// Close stops the listener. In-flight scrapes are abandoned (they are
// read-only snapshots; nothing needs draining).
func (a *Admin) Close() error {
	return a.srv.Close()
}

// handleMetrics renders the full exposition: application sources first, then
// the admin's own trace / slow-log meters.
func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	mw := NewMetricsWriter()
	if a.opts.Collect != nil {
		a.opts.Collect(mw)
	}
	if a.opts.Trace != nil {
		mw.Counter("dido_trace_decisions_total",
			"Controller decisions appended to the reconfiguration trace ring.",
			a.opts.Trace.Total())
	}
	if a.opts.SlowLog != nil {
		mw.Counter("dido_slowlog_over_threshold_total",
			"Frames whose serving latency exceeded the slow-query threshold.",
			a.opts.SlowLog.Seen())
		mw.Counter("dido_slowlog_recorded_total",
			"Over-threshold frames sampled into the slow-query ring.",
			a.opts.SlowLog.Recorded())
		mw.Gauge("dido_slowlog_threshold_micros",
			"Current slow-query latency threshold in microseconds.",
			float64(a.opts.SlowLog.Threshold())/float64(time.Microsecond))
		mw.Histogram("dido_slowlog_latency_micros",
			"Serving latency of recorded slow frames in microseconds.",
			"", a.opts.SlowLog.LatencyExport())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(mw.Bytes())
}

func (a *Admin) handleConfig(w http.ResponseWriter, _ *http.Request) {
	if a.opts.Config == nil {
		http.Error(w, "no config source", http.StatusNotFound)
		return
	}
	writeJSON(w, a.opts.Config())
}

// traceEventView is the /trace wire form: the raw structured event plus the
// paper's pipeline notation for both configs, so a human can read the
// old→new transition without decoding stage assignments by hand.
type traceEventView struct {
	TraceEvent
	OldNotation string `json:"old"`
	NewNotation string `json:"new"`
}

func (a *Admin) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if a.opts.Trace == nil {
		http.Error(w, "no trace ring", http.StatusNotFound)
		return
	}
	events := a.opts.Trace.Snapshot()
	views := make([]traceEventView, len(events))
	for i, e := range events {
		views[i] = traceEventView{
			TraceEvent:  e,
			OldNotation: e.Old.String(),
			NewNotation: e.New.String(),
		}
	}
	writeJSON(w, struct {
		Total  uint64           `json:"total"`
		Cap    int              `json:"cap"`
		Events []traceEventView `json:"events"`
	}{a.opts.Trace.Total(), a.opts.Trace.Cap(), views})
}

// slowEntryView is the /slowlog wire form.
type slowEntryView struct {
	When      time.Time `json:"when"`
	LatencyUS float64   `json:"latency_micros"`
	Queries   int       `json:"queries"`
	Op        uint8     `json:"op"`
	Key       string    `json:"key"`
	Truncated bool      `json:"truncated,omitempty"`
}

func (a *Admin) handleSlowlog(w http.ResponseWriter, _ *http.Request) {
	if a.opts.SlowLog == nil {
		http.Error(w, "no slow-query log", http.StatusNotFound)
		return
	}
	entries := a.opts.SlowLog.Snapshot()
	views := make([]slowEntryView, len(entries))
	for i := range entries {
		e := &entries[i]
		views[i] = slowEntryView{
			When:      e.When,
			LatencyUS: float64(e.Latency) / float64(time.Microsecond),
			Queries:   e.Queries,
			Op:        e.Op,
			Key:       string(e.Key()),
			Truncated: e.Truncated,
		}
	}
	writeJSON(w, struct {
		Seen           uint64          `json:"over_threshold_total"`
		Recorded       uint64          `json:"recorded_total"`
		ThresholdUS    float64         `json:"threshold_micros"`
		Entries        []slowEntryView `json:"entries"`
	}{
		a.opts.SlowLog.Seen(),
		a.opts.SlowLog.Recorded(),
		float64(a.opts.SlowLog.Threshold()) / float64(time.Microsecond),
		views,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

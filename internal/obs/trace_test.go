package obs

import (
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
)

func TestTraceRingWrap(t *testing.T) {
	r := NewTraceRing(4)
	if got := len(r.Snapshot()); got != 0 {
		t.Fatalf("empty ring snapshot has %d events", got)
	}
	for i := 0; i < 10; i++ {
		r.Append(TraceEvent{Seq: uint64(i)})
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("total = %d, want 10", got)
	}
	if got := r.Cap(); got != 4 {
		t.Fatalf("cap = %d, want 4", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d events, want 4", len(snap))
	}
	// Oldest-first window over the last 4 appends: seqs 6,7,8,9.
	for i, e := range snap {
		if want := uint64(6 + i); e.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestTraceRingPartialFill(t *testing.T) {
	r := NewTraceRing(8)
	for i := 0; i < 3; i++ {
		r.Append(TraceEvent{Seq: uint64(i)})
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d events, want 3", len(snap))
	}
	for i, e := range snap {
		if e.Seq != uint64(i) {
			t.Fatalf("snapshot[%d].Seq = %d, want %d", i, e.Seq, i)
		}
	}
}

func TestTraceRingDefaultSize(t *testing.T) {
	if got := NewTraceRing(0).Cap(); got != DefaultTraceRingSize {
		t.Fatalf("default cap = %d, want %d", got, DefaultTraceRingSize)
	}
}

// TestTraceRingConcurrent hammers Append against Snapshot/Total; run under
// -race this pins the ring's locking, and the final total must be exact.
func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(16)
	cfg := pipeline.Config{GPUDepth: 2}
	const writers, per = 4, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				r.Append(TraceEvent{
					When: time.Now(), New: cfg, Old: cfg, Replan: j%10 == 0,
				})
			}
		}()
	}
	var rg sync.WaitGroup
	for k := 0; k < 2; k++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if got := len(r.Snapshot()); got > 16 {
					t.Errorf("snapshot longer than cap: %d", got)
					return
				}
				r.Total()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	if got := r.Total(); got != writers*per {
		t.Fatalf("total = %d, want %d", got, writers*per)
	}
}

// TestTraceAppendNoAlloc: the per-batch-boundary append must not allocate —
// it runs inside the pipeline's completion path on every batch.
func TestTraceAppendNoAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	r := NewTraceRing(8)
	e := TraceEvent{When: time.Now(), New: pipeline.Config{GPUDepth: 2}}
	if avg := testing.AllocsPerRun(100, func() { r.Append(e) }); avg != 0 {
		t.Fatalf("Append allocates %.1f/op, want 0", avg)
	}
}

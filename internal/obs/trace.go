package obs

import (
	"sync"
	"time"

	"repro/internal/pipeline"
	"repro/internal/task"
)

// TraceEvent is one batch-boundary decision of the cost-model controller:
// what it measured on the completed batch, whether it re-planned, and the
// (config, batch target) pair it installed for future seals. The decision
// stream is what makes online adaptation auditable — "the controller picked
// the right config" is only a checkable claim when every pick is recorded
// next to the profile that drove it.
type TraceEvent struct {
	// When is the wall-clock decision time; Seq is the completed batch's
	// pipeline sequence number.
	When time.Time `json:"when"`
	Seq  uint64    `json:"seq"`
	// Replan reports whether the cost model installed a new plan (the
	// profiler's 10% trigger fired and the search found one); a false event
	// is a "keep" decision — the config stands, only the feedback batch
	// sizer may have moved the target.
	Replan bool `json:"replan"`
	// Old/New are the configs before and after the decision; OldTarget /
	// NewTarget the batch-size targets.
	Old       pipeline.Config `json:"old_config"`
	New       pipeline.Config `json:"new_config"`
	OldTarget int             `json:"old_target"`
	NewTarget int             `json:"new_target"`
	// Profile is the measured workload profile the decision was based on.
	Profile task.Profile `json:"profile"`
	// PredictedTmax is the planner's predicted bottleneck stage time for the
	// installed plan (zero before the first replan); RealizedTmax is the
	// completed batch's measured bottleneck stage time, and RealizedWall its
	// seal→completion wall latency. Predicted vs. realized is the cost
	// model's report card.
	PredictedTmax time.Duration `json:"predicted_tmax_nanos"`
	RealizedTmax  time.Duration `json:"realized_tmax_nanos"`
	RealizedWall  time.Duration `json:"realized_wall_nanos"`
}

// TraceRing is a bounded in-memory ring of controller decisions. Append is
// O(1), allocation-free and safe for concurrent use; when the ring is full
// the oldest event is overwritten. Snapshot copies the retained window.
type TraceRing struct {
	mu     sync.Mutex
	events []TraceEvent // fixed capacity, allocated once
	next   int          // ring position of the next append
	total  uint64       // appends ever, monotonic
}

// DefaultTraceRingSize retains enough decisions to cover minutes of serving
// at typical batch cadences without unbounded growth.
const DefaultTraceRingSize = 1024

// NewTraceRing returns a ring retaining the last n events (n <= 0 means
// DefaultTraceRingSize).
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = DefaultTraceRingSize
	}
	return &TraceRing{events: make([]TraceEvent, n)}
}

// Append records one decision, overwriting the oldest when full.
func (r *TraceRing) Append(e TraceEvent) {
	r.mu.Lock()
	r.events[r.next] = e
	r.next = (r.next + 1) % len(r.events)
	r.total++
	r.mu.Unlock()
}

// Total returns how many decisions were ever appended (monotonic; events
// beyond the ring capacity have been overwritten).
func (r *TraceRing) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Cap returns the ring capacity.
func (r *TraceRing) Cap() int { return len(r.events) }

// Snapshot returns the retained events, oldest first.
func (r *TraceRing) Snapshot() []TraceEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.events)
	retained := n
	if r.total < uint64(n) {
		retained = int(r.total)
	}
	out := make([]TraceEvent, 0, retained)
	start := r.next - retained
	if start < 0 {
		start += n
	}
	for i := 0; i < retained; i++ {
		out = append(out, r.events[(start+i)%n])
	}
	return out
}

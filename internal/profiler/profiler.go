// Package profiler implements DIDO's workload profiler (paper §III-A): a few
// per-batch counters (GET/SET ratio, average key and value size), an online
// Zipf-skewness estimator fed by the store's per-object access counters
// (§IV-B), and the adaptation trigger — re-planning happens only when a
// workload counter moves more than 10% against the profile the current plan
// was built from.
package profiler

import (
	"math"

	"repro/internal/store"
	"repro/internal/task"
	"repro/internal/zipf"
)

// ChangeThreshold is the paper's upper limit for counter alteration before a
// re-plan is triggered ("In our implementation, the upper limit ... is set to
// 10%").
const ChangeThreshold = 0.10

// Profiler accumulates per-batch workload characteristics and decides when
// the pipeline should be re-planned.
type Profiler struct {
	store *store.Store
	// SampleBatches is how many batches pass between skewness samplings.
	SampleBatches int

	// base is the profile the current plan was derived from.
	base    task.Profile
	hasBase bool

	batchesSinceSample int
	skew               float64
}

// New returns a profiler over s.
func New(s *store.Store) *Profiler {
	return &Profiler{store: s, SampleBatches: 8}
}

// Skew returns the latest skewness estimate.
func (p *Profiler) Skew() float64 { return p.skew }

// Observe ingests the measured profile of an executed batch, returning the
// profile enriched with the skewness estimate and whether the workload has
// changed enough (>10% on any tracked counter) to warrant re-planning.
func (p *Profiler) Observe(measured task.Profile) (task.Profile, bool) {
	p.batchesSinceSample++
	if p.batchesSinceSample >= p.SampleBatches {
		p.batchesSinceSample = 0
		p.sampleSkew()
	}
	measured.Skew = p.skew

	if !p.hasBase {
		p.base = measured
		p.hasBase = true
		return measured, true
	}
	if p.changed(measured) {
		p.base = measured
		return measured, true
	}
	return measured, false
}

// changed applies the 10% rule to the tracked counters.
func (p *Profiler) changed(m task.Profile) bool {
	return relChange(p.base.GetRatio, m.GetRatio) > ChangeThreshold ||
		relChange(p.base.KeySize, m.KeySize) > ChangeThreshold ||
		relChange(p.base.ValueSize, m.ValueSize) > ChangeThreshold ||
		relChange(p.base.EvictionRate, m.EvictionRate) > ChangeThreshold ||
		math.Abs(p.base.Skew-m.Skew) > ChangeThreshold
}

// relChange returns |a-b| relative to max(|a|, |b|, ε).
func relChange(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den < 1e-9 {
		return 0
	}
	return math.Abs(a-b) / den
}

// sampleSkew advances the store's sampling interval and re-estimates the
// Zipf exponent from the collected access frequencies (§IV-B: counter +
// timestamp per object, frequencies of the previous interval).
func (p *Profiler) sampleSkew() {
	const maxSamples = 4096
	counts := p.store.AdvanceSampleInterval(maxSamples)
	if len(counts) < 16 {
		return // not enough signal; keep the previous estimate
	}
	freqs := make([]float64, len(counts))
	for i, c := range counts {
		freqs[i] = float64(c)
	}
	live := uint64(p.store.StatsSnapshot().LiveObjects)
	if live < 16 {
		return
	}
	est := zipf.EstimateZipfS(freqs, live)
	// Smooth: workloads shift abruptly but estimates are noisy.
	if p.skew == 0 {
		p.skew = est
	} else {
		p.skew = 0.5*p.skew + 0.5*est
	}
	// Snap near-YCSB estimates to suppress drift in steady state.
	if math.Abs(p.skew) < 0.05 {
		p.skew = 0
	}
}

// Reset forgets the baseline so the next Observe always triggers re-planning
// (used after explicit reconfiguration).
func (p *Profiler) Reset() {
	p.hasBase = false
}

package profiler

import (
	"fmt"
	"testing"

	"repro/internal/store"
	"repro/internal/task"
	"repro/internal/workload"
	"repro/internal/zipf"
)

func newStore() *store.Store {
	return store.New(store.Config{MemoryBytes: 8 << 20, IndexEntries: 100000, Seed: 3})
}

func prof(get, key, val float64) task.Profile {
	return task.Profile{N: 1000, GetRatio: get, KeySize: key, ValueSize: val, EvictionRate: 1}
}

func TestFirstObserveTriggers(t *testing.T) {
	p := New(newStore())
	_, replan := p.Observe(prof(0.95, 16, 64))
	if !replan {
		t.Fatal("first observation must trigger planning")
	}
}

func TestSmallDriftDoesNotTrigger(t *testing.T) {
	p := New(newStore())
	p.Observe(prof(0.95, 16, 64))
	// 5% drift on GET ratio: below the 10% threshold.
	_, replan := p.Observe(prof(0.92, 16, 64))
	if replan {
		t.Fatal("5% drift should not re-plan (paper: 10% upper limit)")
	}
}

func TestLargeChangeTriggers(t *testing.T) {
	cases := []task.Profile{
		prof(0.5, 16, 64),   // GET ratio swing
		prof(0.95, 32, 64),  // key size
		prof(0.95, 16, 512), // value size
	}
	for i, c := range cases {
		p := New(newStore())
		p.Observe(prof(0.95, 16, 64))
		_, replan := p.Observe(c)
		if !replan {
			t.Fatalf("case %d: >10%% change did not trigger", i)
		}
	}
}

func TestBaselineUpdatesOnTrigger(t *testing.T) {
	p := New(newStore())
	p.Observe(prof(0.95, 16, 64))
	p.Observe(prof(0.5, 16, 64)) // triggers, becomes new baseline
	// Small drift from the NEW baseline must not trigger.
	_, replan := p.Observe(prof(0.52, 16, 64))
	if replan {
		t.Fatal("baseline did not advance on trigger")
	}
}

func TestEvictionRateChangeTriggers(t *testing.T) {
	p := New(newStore())
	base := prof(0.95, 16, 64)
	base.EvictionRate = 0
	p.Observe(base)
	next := base
	next.EvictionRate = 1
	if _, replan := p.Observe(next); !replan {
		t.Fatal("eviction-rate emergence should trigger")
	}
}

func TestResetForcesReplan(t *testing.T) {
	p := New(newStore())
	p.Observe(prof(0.95, 16, 64))
	p.Reset()
	if _, replan := p.Observe(prof(0.95, 16, 64)); !replan {
		t.Fatal("Reset should force the next observation to trigger")
	}
}

func TestSkewEstimationFromStore(t *testing.T) {
	st := newStore()
	p := New(st)
	p.SampleBatches = 1

	spec, _ := workload.SpecByName("K16-G100-S")
	gen := workload.NewGenerator(spec, 20000, 7)
	// Populate and drive a skewed GET stream so access counters accumulate.
	for i := uint64(1); i <= 20000; i++ {
		st.Set(gen.KeyAt(i, nil), make([]byte, 64))
	}
	zg := zipf.NewGenerator(20000, workload.ZipfYCSB, 9)
	for round := 0; round < 4; round++ {
		for i := 0; i < 30000; i++ {
			st.Get(gen.KeyAt(zg.Next(), nil))
		}
		p.Observe(prof(1, 16, 64))
	}
	if p.Skew() < 0.4 {
		t.Fatalf("estimated skew = %v, want near 0.99 workload to read clearly skewed", p.Skew())
	}
}

func TestUniformWorkloadReadsLowSkew(t *testing.T) {
	st := newStore()
	p := New(st)
	p.SampleBatches = 1
	spec, _ := workload.SpecByName("K16-G100-U")
	gen := workload.NewGenerator(spec, 5000, 7)
	for i := uint64(1); i <= 5000; i++ {
		st.Set(gen.KeyAt(i, nil), make([]byte, 64))
	}
	zg := zipf.NewGenerator(5000, 0, 9)
	for round := 0; round < 4; round++ {
		for i := 0; i < 20000; i++ {
			st.Get(gen.KeyAt(zg.Next(), nil))
		}
		p.Observe(prof(1, 16, 64))
	}
	if p.Skew() > 0.4 {
		t.Fatalf("uniform workload estimated skew = %v, want low", p.Skew())
	}
}

func TestSkewChangeTriggersReplan(t *testing.T) {
	p := New(newStore())
	base := prof(0.95, 16, 64)
	p.Observe(base)
	p.skew = 0.99 // simulate the sampler's discovery of skew
	if _, replan := p.Observe(base); !replan {
		t.Fatal("skew discovery should trigger re-planning")
	}
}

func TestRelChange(t *testing.T) {
	if relChange(0, 0) != 0 {
		t.Fatal("0/0 change should be 0")
	}
	if got := relChange(100, 90); got < 0.099 || got > 0.101 {
		t.Fatalf("relChange(100,90) = %v", got)
	}
	if relChange(0, 5) != 1 {
		t.Fatal("appearance from zero should be full change")
	}
}

func TestObserveManyBatchesStable(t *testing.T) {
	// A long steady stream triggers exactly once (the first batch).
	p := New(newStore())
	triggers := 0
	for i := 0; i < 100; i++ {
		jitter := 0.002 * float64(i%3)
		if _, replan := p.Observe(prof(0.95+jitter, 16, 64)); replan {
			triggers++
		}
	}
	if triggers != 1 {
		t.Fatalf("steady workload triggered %d times, want 1", triggers)
	}
	_ = fmt.Sprint(triggers)
}

// Package wal implements the durability tier's group-commit write-ahead log
// (DESIGN.md §5.13). Records are framed individually with a length + CRC32
// header so recovery can always identify the longest valid prefix of a torn
// log; commits are redo-after-apply (the serving path logs an operation after
// executing it and acks only once the record is durable per the sync policy).
//
// The log is fed from the WR stage of both serving paths: the per-frame path
// commits one frame's records at a time, the batched pipeline commits a whole
// batch in one Commit call (the LG task). Group commit falls out of the sync
// protocol: concurrent committers pile up behind one leader's fsync and
// return as soon as the synced offset covers their bytes.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Record framing: [u32 payload length][u32 CRC32-IEEE of payload][payload].
// Payload: a type byte followed by type-specific fields, all little-endian.
const (
	recSet    byte = 1 // u32 keyLen, u32 valLen, key, value
	recDelete byte = 2 // u32 keyLen, key
	recReply  byte = 3 // u16 addrLen, addr, u64 reqID, u16 nFrames, then per frame u32 len + bytes

	headerSize = 8

	// MaxRecordBytes bounds a single record during replay; a length field
	// beyond it is treated as corruption. The encoder never produces records
	// this large (keys/values are capped well below by the protocol).
	MaxRecordBytes = 16 << 20
)

// File is the write handle the log appends to. It is an interface so the
// faults package can wrap it with a disk fault injector.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// SyncPolicy selects when appended records are fsynced.
type SyncPolicy int

const (
	// SyncBatch (default) fsyncs before Commit returns: group commit, no
	// acked write is ever lost to a crash.
	SyncBatch SyncPolicy = iota
	// SyncInterval fsyncs from a background flusher every Options.Interval;
	// Commit returns after the write. Bounded loss window, higher throughput.
	SyncInterval
	// SyncOff never fsyncs during serving (Close/Rotate still do). The OS
	// decides when bytes reach disk.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// Options configures Open.
type Options struct {
	Policy   SyncPolicy
	Interval time.Duration // SyncInterval flusher period; default 10ms
	// OpenFile opens the append handle for a segment path. Defaults to
	// O_CREATE|O_WRONLY|O_APPEND on the real filesystem; tests and the
	// --fault-disk-* flags substitute instrumented or faulty handles.
	OpenFile func(path string) (File, error)
}

// DefaultOpenFile is the real-filesystem append opener.
func DefaultOpenFile(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ErrClosed is returned by Commit after Close.
var ErrClosed = errors.New("wal: closed")

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	Records     uint64 // records committed
	Bytes       uint64 // framed bytes committed
	Syncs       uint64 // fsyncs issued (group commit: typically ≪ Commits)
	SyncErrs    uint64
	WriteErrs   uint64 // zero-progress write failures
	ShortWrites uint64 // partial writes that were retried to completion
	Rotations   uint64
}

// Log is an append-only segment with two-stage group commit: Commit stages
// records into an in-memory buffer under a short mutex (pure memcpy, no
// syscalls), then waits for a flush leader to write the whole convoy to the
// file with one write(2) — and, under SyncBatch, for a sync leader to fsync
// it with one fsync. Commit never returns success before its bytes are at
// least in the kernel (page cache), so an acked write under every policy
// survives a process crash; the policy only decides whether the ack also
// waits for the disk.
type Log struct {
	path string
	opts Options

	// Lock order where several are held: syncMu, then flushMu, then mu.

	// mu guards the staging buffer and the logical append cursor.
	mu     sync.Mutex
	buf    []byte // staged records not yet written to the file
	spare  []byte // recycled staging storage for the next convoy
	staged uint64 // logical bytes appended over the log's lifetime
	err    error  // sticky: set when the file tail may hold a torn record
	closed bool

	// flushMu serializes file writes (and segment swap during Rotate);
	// flushed is the logical offset known to be in the kernel.
	flushMu sync.Mutex
	f       File
	flushed atomic.Uint64

	syncMu sync.Mutex
	synced atomic.Uint64 // logical bytes known durable

	records, bytes, syncs, syncErrs, writeErrs, shortWrites, rotations stats.Counter
	fsyncMicros                                                       *stats.Histogram

	stop    chan struct{}
	flushWG sync.WaitGroup
}

// Open opens (creating if absent) the segment at path for appending. The
// caller is responsible for having truncated a recovered segment to its valid
// prefix first (ReplayFile reports it) so new records never land after a torn
// tail.
func Open(path string, opts Options) (*Log, error) {
	if opts.OpenFile == nil {
		opts.OpenFile = DefaultOpenFile
	}
	if opts.Interval <= 0 {
		opts.Interval = 10 * time.Millisecond
	}
	f, err := opts.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	l := &Log{path: path, opts: opts, f: f, fsyncMicros: stats.NewHistogram(stats.LatencyBoundsMicros()...)}
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.flushWG.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

func (l *Log) flushLoop() {
	defer l.flushWG.Done()
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.Sync() //nolint:errcheck // surfaced via SyncErrs
		}
	}
}

// Commit appends the pre-framed records in p (built with AppendSet /
// AppendDelete / AppendReply) and makes them durable per the sync policy.
// records is how many framed records p holds, for accounting. Under
// SyncBatch, Commit returns only once the bytes are fsynced; under the other
// policies, once they are written to the kernel. Either wait is led by
// whichever committer reaches the leader lock first, on behalf of everyone
// staged behind it — one write(2) and at most one fsync per convoy, not per
// commit. A non-nil error means the records must not be acked (the caller
// drops the reply; the client's retry re-executes). Note the staging
// consequence: a commit that failed on a clean zero-progress write error may
// still reach the file through a later convoy's flush — harmless, because
// its ack was dropped and replay is idempotent.
func (l *Log) Commit(p []byte, records int) error {
	if len(p) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	if l.buf == nil && l.spare != nil {
		l.buf, l.spare = l.spare[:0], nil
	}
	l.buf = append(l.buf, p...)
	l.staged += uint64(len(p))
	target := l.staged
	l.mu.Unlock()
	l.records.Add(uint64(records))
	l.bytes.Add(uint64(len(p)))
	if l.opts.Policy == SyncBatch {
		return l.syncTo(target)
	}
	return l.flushTo(target)
}

// Sync flushes and fsyncs everything staged so far, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	target := l.staged
	l.mu.Unlock()
	return l.syncTo(target)
}

// flushTo blocks until the kernel-written offset covers target. Whichever
// committer wins flushMu writes the entire staged convoy with one write(2);
// the rest observe the advanced offset and return without a syscall.
func (l *Log) flushTo(target uint64) error {
	if l.flushed.Load() >= target {
		return nil
	}
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	return l.flushLocked(target)
}

// flushLocked drains the staging buffer into the file. Caller holds flushMu.
func (l *Log) flushLocked(target uint64) error {
	if l.flushed.Load() >= target {
		return nil
	}
	l.mu.Lock()
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return err
	}
	take := l.buf
	l.buf = nil
	end := l.staged
	l.mu.Unlock()
	if len(take) == 0 {
		return nil
	}
	rem := take
	for len(rem) > 0 {
		n, err := l.f.Write(rem)
		if n > 0 {
			rem = rem[n:]
		}
		if err != nil {
			if n <= 0 {
				l.writeErrs.Inc()
				werr := fmt.Errorf("wal: write: %w", err)
				l.mu.Lock()
				if len(rem) < len(take) {
					// Partial progress stopped mid-convoy: the tail may be
					// torn mid-record and further appends would land after
					// garbage, so the log fails sticky.
					l.err = werr
				} else {
					// Clean zero-progress failure: the file is still at a
					// record boundary. Restage the convoy (appends that
					// arrived meanwhile keep their order behind it) so the
					// next flush leader retries it.
					l.buf = append(take, l.buf...)
				}
				l.mu.Unlock()
				return werr
			}
			l.shortWrites.Inc() // partial write with progress: retry remainder
		}
	}
	l.flushed.Store(end)
	l.mu.Lock()
	if l.buf == nil && cap(take) <= 1<<20 {
		l.spare = take[:0] // recycle the convoy's storage
	}
	l.mu.Unlock()
	return nil
}

// syncTo blocks until the durable offset covers target. Whichever committer
// wins syncMu flushes the staged convoy and fsyncs on behalf of everyone
// queued behind it (group commit); the rest observe the advanced offset and
// return without an fsync of their own.
func (l *Log) syncTo(target uint64) error {
	if l.synced.Load() >= target {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	if l.synced.Load() >= target {
		return nil
	}
	l.flushMu.Lock()
	if err := l.flushLocked(target); err != nil {
		l.flushMu.Unlock()
		return err
	}
	f := l.f
	w := l.flushed.Load()
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	l.flushMu.Unlock()
	if closed {
		return ErrClosed
	}
	start := time.Now()
	err := f.Sync()
	l.fsyncMicros.Observe(float64(time.Since(start).Microseconds()))
	if err != nil {
		l.syncErrs.Inc()
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.syncs.Inc()
	if w > l.synced.Load() {
		l.synced.Store(w)
	}
	return nil
}

// Rotate makes the current segment immutable: fsyncs and closes it, renames
// it to oldPath, and starts a fresh segment at the log's path. Commits block
// for the duration. The caller owns oldPath afterwards (the snapshotter
// deletes it once a snapshot covering it is durable — WAL truncation).
func (l *Log) Rotate(oldPath string) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	// Drain every staged byte into the old segment before sealing it.
	if err := l.flushLocked(^uint64(0)); err != nil && !errors.Is(err, ErrClosed) {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		l.syncErrs.Inc()
		return fmt.Errorf("wal: rotate fsync: %w", err)
	}
	l.synced.Store(l.flushed.Load())
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	if err := os.Rename(l.path, oldPath); err != nil {
		// The old handle is gone; reopen the same segment so the log stays
		// usable (appends continue at the tail).
		f, oerr := l.opts.OpenFile(l.path)
		if oerr != nil {
			l.err = oerr
			return fmt.Errorf("wal: rotate rename: %w (reopen: %v)", err, oerr)
		}
		l.f = f
		return fmt.Errorf("wal: rotate rename: %w", err)
	}
	syncDir(filepath.Dir(l.path))
	f, err := l.opts.OpenFile(l.path)
	if err != nil {
		l.err = fmt.Errorf("wal: rotate reopen: %w", err)
		return l.err
	}
	l.f = f
	l.rotations.Inc()
	return nil
}

// Close fsyncs the tail (all policies — a clean shutdown never loses acked
// writes) and closes the segment. Further Commits fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()
	if l.stop != nil {
		close(l.stop)
		l.flushWG.Wait()
	}
	err := l.Sync()
	l.syncMu.Lock()
	l.flushMu.Lock()
	l.mu.Lock()
	l.closed = true
	if l.err == nil {
		l.err = ErrClosed
	}
	cerr := l.f.Close()
	l.mu.Unlock()
	l.flushMu.Unlock()
	l.syncMu.Unlock()
	if err == nil {
		err = cerr
	}
	return err
}

// Stats returns a snapshot of the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Records:     l.records.Load(),
		Bytes:       l.bytes.Load(),
		Syncs:       l.syncs.Load(),
		SyncErrs:    l.syncErrs.Load(),
		WriteErrs:   l.writeErrs.Load(),
		ShortWrites: l.shortWrites.Load(),
		Rotations:   l.rotations.Load(),
	}
}

// FsyncHistogram exposes the fsync latency distribution (microseconds).
func (l *Log) FsyncHistogram() *stats.Histogram { return l.fsyncMicros }

// syncDir fsyncs a directory so a rename within it is durable. Errors are
// ignored: not all filesystems support directory fsync, and the rename itself
// already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck
	d.Close()
}

// --- record encoding ---

// beginRecord reserves the frame header; endRecord back-fills length + CRC.
func beginRecord(dst []byte) ([]byte, int) {
	start := len(dst)
	return append(dst, 0, 0, 0, 0, 0, 0, 0, 0), start
}

func endRecord(dst []byte, start int) []byte {
	payload := dst[start+headerSize:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// AppendSet appends a framed SET record to dst.
func AppendSet(dst, key, value []byte) []byte {
	dst, start := beginRecord(dst)
	dst = append(dst, recSet)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(value)))
	dst = append(dst, key...)
	dst = append(dst, value...)
	return endRecord(dst, start)
}

// AppendDelete appends a framed DELETE record to dst.
func AppendDelete(dst, key []byte) []byte {
	dst, start := beginRecord(dst)
	dst = append(dst, recDelete)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(key)))
	dst = append(dst, key...)
	return endRecord(dst, start)
}

// AppendReply appends a framed REPLY record: the at-most-once reply cache
// entry for a write-bearing frame (client address, request id, encoded
// response frames), so retried requests stay exactly-once across a crash.
func AppendReply(dst []byte, addr string, id uint64, frames [][]byte) []byte {
	dst, start := beginRecord(dst)
	dst = append(dst, recReply)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(addr)))
	dst = append(dst, addr...)
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(frames)))
	for _, f := range frames {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f)))
		dst = append(dst, f...)
	}
	return endRecord(dst, start)
}

// --- replay ---

// Handler receives decoded records during replay. Slices are views into the
// replayed buffer and must not be retained. Nil callbacks skip that record
// type.
type Handler struct {
	Set    func(key, value []byte)
	Delete func(key []byte)
	Reply  func(addr []byte, id uint64, frames [][]byte)
}

// Replay scans data record by record, invoking the handler for each valid
// record, and stops at the first torn, truncated or corrupt one. It returns
// the byte length of the longest valid prefix and the number of records in
// it. Replay never panics on arbitrary input.
func Replay(data []byte, h Handler) (valid, records int) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) < headerSize {
			return off, records
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n < 1 || n > MaxRecordBytes || headerSize+n > len(rest) {
			return off, records
		}
		payload := rest[headerSize : headerSize+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:]) {
			return off, records
		}
		if !decodePayload(payload, h) {
			// CRC-valid but undecodable (unknown type or malformed fields):
			// written by something else; stop here rather than guess.
			return off, records
		}
		off += headerSize + n
		records++
	}
}

func decodePayload(p []byte, h Handler) bool {
	switch p[0] {
	case recSet:
		if len(p) < 9 {
			return false
		}
		kl := int(binary.LittleEndian.Uint32(p[1:]))
		vl := int(binary.LittleEndian.Uint32(p[5:]))
		if kl < 0 || vl < 0 || kl+vl != len(p)-9 {
			return false
		}
		if h.Set != nil {
			h.Set(p[9:9+kl], p[9+kl:])
		}
	case recDelete:
		if len(p) < 5 {
			return false
		}
		kl := int(binary.LittleEndian.Uint32(p[1:]))
		if kl != len(p)-5 {
			return false
		}
		if h.Delete != nil {
			h.Delete(p[5:])
		}
	case recReply:
		if len(p) < 3 {
			return false
		}
		al := int(binary.LittleEndian.Uint16(p[1:]))
		off := 3 + al
		if off+10 > len(p) {
			return false
		}
		addr := p[3:off]
		id := binary.LittleEndian.Uint64(p[off:])
		nf := int(binary.LittleEndian.Uint16(p[off+8:]))
		off += 10
		frames := make([][]byte, 0, nf)
		for i := 0; i < nf; i++ {
			if off+4 > len(p) {
				return false
			}
			fl := int(binary.LittleEndian.Uint32(p[off:]))
			off += 4
			if fl < 0 || off+fl > len(p) {
				return false
			}
			frames = append(frames, p[off:off+fl])
			off += fl
		}
		if off != len(p) {
			return false
		}
		if h.Reply != nil {
			h.Reply(addr, id, frames)
		}
	default:
		return false
	}
	return true
}

// ReplayFile replays the segment at path. A missing file is an empty log, not
// an error. It returns the valid prefix length in bytes (the offset the
// caller should truncate to before reopening for append) and the record
// count.
func ReplayFile(path string, h Handler) (validSize int64, records int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	v, n := Replay(data, h)
	return int64(v), n, nil
}

package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collect gathers replayed records for assertions.
type collect struct {
	sets    [][2][]byte
	dels    [][]byte
	replies []replayedReply
}

type replayedReply struct {
	addr   string
	id     uint64
	frames [][]byte
}

func (c *collect) handler() Handler {
	return Handler{
		Set: func(k, v []byte) {
			c.sets = append(c.sets, [2][]byte{append([]byte(nil), k...), append([]byte(nil), v...)})
		},
		Delete: func(k []byte) { c.dels = append(c.dels, append([]byte(nil), k...)) },
		Reply: func(addr []byte, id uint64, frames [][]byte) {
			r := replayedReply{addr: string(addr), id: id}
			for _, f := range frames {
				r.frames = append(r.frames, append([]byte(nil), f...))
			}
			c.replies = append(c.replies, r)
		},
	}
}

func sampleBatch() ([]byte, int) {
	var buf []byte
	buf = AppendSet(buf, []byte("key1"), []byte("value-one"))
	buf = AppendSet(buf, []byte("key2"), bytes.Repeat([]byte("x"), 300))
	buf = AppendDelete(buf, []byte("key1"))
	buf = AppendReply(buf, "10.0.0.1:5311", 42, [][]byte{[]byte("frameA"), []byte("frameB")})
	return buf, 4
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, err := Open(path, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	buf, n := sampleBatch()
	if err := l.Commit(buf, n); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Records != 4 || st.Bytes != uint64(len(buf)) || st.Syncs == 0 {
		t.Fatalf("stats after commit: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(buf, n); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v", err)
	}

	var c collect
	valid, recs, err := ReplayFile(path, c.handler())
	if err != nil || recs != 4 {
		t.Fatalf("replay: valid=%d recs=%d err=%v", valid, recs, err)
	}
	if fi, _ := os.Stat(path); fi.Size() != valid {
		t.Fatalf("valid prefix %d != file size %d", valid, fi.Size())
	}
	if len(c.sets) != 2 || string(c.sets[0][0]) != "key1" || string(c.sets[0][1]) != "value-one" {
		t.Fatalf("sets: %v", c.sets)
	}
	if len(c.dels) != 1 || string(c.dels[0]) != "key1" {
		t.Fatalf("dels: %v", c.dels)
	}
	if len(c.replies) != 1 || c.replies[0].addr != "10.0.0.1:5311" || c.replies[0].id != 42 ||
		len(c.replies[0].frames) != 2 || string(c.replies[0].frames[1]) != "frameB" {
		t.Fatalf("replies: %+v", c.replies)
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	valid, recs, err := ReplayFile(filepath.Join(t.TempDir(), "nope.log"), Handler{})
	if valid != 0 || recs != 0 || err != nil {
		t.Fatalf("missing file: %d %d %v", valid, recs, err)
	}
}

// TestTornTailRecoversPrefix chops the log at every possible byte boundary:
// replay must recover exactly the records whose frames fit, never error or
// panic, and report a valid prefix that re-replays identically.
func TestTornTailRecoversPrefix(t *testing.T) {
	buf, _ := sampleBatch()
	// Record boundaries for expected-count computation.
	var bounds []int
	off := 0
	for off < len(buf) {
		n := int(uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24)
		off += headerSize + n
		bounds = append(bounds, off)
	}
	for cut := 0; cut <= len(buf); cut++ {
		want := 0
		for _, b := range bounds {
			if b <= cut {
				want++
			}
		}
		var c collect
		valid, recs := Replay(buf[:cut], c.handler())
		if recs != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, recs, want)
		}
		if valid > cut {
			t.Fatalf("cut=%d: valid prefix %d beyond input", cut, valid)
		}
		if v2, r2 := Replay(buf[:valid], Handler{}); v2 != valid || r2 != recs {
			t.Fatalf("cut=%d: prefix not stable: %d/%d vs %d/%d", cut, valid, recs, v2, r2)
		}
	}
}

// TestCorruptMiddleStopsReplay flips one byte in the second record: replay
// keeps the first record and stops.
func TestCorruptMiddleStopsReplay(t *testing.T) {
	var buf []byte
	buf = AppendSet(buf, []byte("a"), []byte("1"))
	first := len(buf)
	buf = AppendSet(buf, []byte("b"), []byte("2"))
	buf = AppendSet(buf, []byte("c"), []byte("3"))
	buf[first+headerSize] ^= 0xff
	var c collect
	valid, recs := Replay(buf, c.handler())
	if recs != 1 || valid != first {
		t.Fatalf("corrupt middle: valid=%d recs=%d (first record ends at %d)", valid, recs, first)
	}
}

// countingFile counts writes and syncs and records the size covered by the
// last sync, standing in for a real file.
type countingFile struct {
	mu       sync.Mutex
	buf      bytes.Buffer
	syncs    int
	syncedAt int
	maxWrite  int           // when >0, writes at most this many bytes per call
	syncDelay time.Duration // artificial fsync latency
	// writeErrs > 0: the next writeErrs calls fail with zero progress.
	writeErrs int
	// tornWrite: the next call persists 3 bytes (short write), every call
	// after that fails with zero progress — a torn record.
	tornWrite bool
}

func (f *countingFile) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tornWrite {
		f.tornWrite = false
		f.writeErrs = 1 << 30
		n := 3
		if n > len(p) {
			n = len(p)
		}
		f.buf.Write(p[:n])
		return n, io.ErrShortWrite
	}
	if f.writeErrs > 0 {
		f.writeErrs--
		return 0, errors.New("injected write error")
	}
	n := len(p)
	if f.maxWrite > 0 && n > f.maxWrite {
		n = f.maxWrite
		f.buf.Write(p[:n])
		return n, io.ErrShortWrite
	}
	f.buf.Write(p)
	return n, nil
}

func (f *countingFile) Sync() error {
	f.mu.Lock()
	d := f.syncDelay
	f.mu.Unlock()
	if d > 0 {
		time.Sleep(d) // a real fsync takes time; lets committers pile up
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	f.syncedAt = f.buf.Len()
	return nil
}

func (f *countingFile) Close() error { return nil }

func openCounting(t *testing.T, policy SyncPolicy, interval time.Duration) (*Log, *countingFile) {
	t.Helper()
	cf := &countingFile{}
	l, err := Open(filepath.Join(t.TempDir(), "wal.log"), Options{
		Policy:   policy,
		Interval: interval,
		OpenFile: func(string) (File, error) { return cf, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, cf
}

// TestGroupCommit runs many concurrent committers under SyncBatch: every
// record must be durable on return, yet the fsync count stays well below the
// commit count because committers share the leader's fsync.
func TestGroupCommit(t *testing.T) {
	l, cf := openCounting(t, SyncBatch, 0)
	cf.syncDelay = 200 * time.Microsecond
	const goroutines = 8
	const commits = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < commits; i++ {
				rec := AppendSet(nil, []byte(fmt.Sprintf("g%d-%d", g, i)), []byte("v"))
				if err := l.Commit(rec, 1); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cf.mu.Lock()
	data := append([]byte(nil), cf.buf.Bytes()...)
	syncs := cf.syncs
	syncedAt := cf.syncedAt
	cf.mu.Unlock()
	valid, recs := Replay(data, Handler{})
	if recs != goroutines*commits || valid != len(data) {
		t.Fatalf("replayed %d/%d records, valid %d/%d bytes", recs, goroutines*commits, valid, len(data))
	}
	if syncedAt != len(data) {
		t.Fatalf("close left %d of %d bytes unsynced", len(data)-syncedAt, len(data))
	}
	if syncs >= goroutines*commits {
		t.Fatalf("no group commit: %d fsyncs for %d commits", syncs, goroutines*commits)
	}
}

// TestShortWriteRetried: a file that persists at most 3 bytes per call (with
// io.ErrShortWrite) still commits whole records via the retry loop.
func TestShortWriteRetried(t *testing.T) {
	l, cf := openCounting(t, SyncBatch, 0)
	rec := AppendSet(nil, []byte("short"), []byte("write-retry-value"))
	cf.maxWrite = 3
	if err := l.Commit(rec, 1); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.ShortWrites == 0 {
		t.Fatal("short writes not counted")
	}
	if _, recs := Replay(cf.buf.Bytes(), Handler{}); recs != 1 {
		t.Fatalf("record not intact after short writes: %d", recs)
	}
}

// TestZeroProgressWriteRetryable: a write failure with no bytes written
// leaves the file at a record boundary; the commit fails (its ack is
// dropped) but the log stays usable. The failed commit's record stays
// staged, so the next convoy's flush persists it alongside the new record —
// harmless, because the unacked client retries an idempotent operation.
func TestZeroProgressWriteRetryable(t *testing.T) {
	l, cf := openCounting(t, SyncBatch, 0)
	rec := AppendSet(nil, []byte("k"), []byte("v"))
	cf.writeErrs = 1
	if err := l.Commit(rec, 1); err == nil {
		t.Fatal("commit succeeded through injected write error")
	}
	if err := l.Commit(rec, 1); err != nil {
		t.Fatalf("clean zero-progress failure should be retryable: %v", err)
	}
	if _, recs := Replay(cf.buf.Bytes(), Handler{}); recs != 2 {
		t.Fatalf("want both records (failed commit restaged + retry) after retry, got %d", recs)
	}
}

// TestTornWriteSticky: progress then a zero-progress failure mid-record tears
// the tail; the log must refuse further commits rather than append after
// garbage.
func TestTornWriteSticky(t *testing.T) {
	l, cf := openCounting(t, SyncBatch, 0)
	if err := l.Commit(AppendSet(nil, []byte("ok"), []byte("1")), 1); err != nil {
		t.Fatal(err)
	}
	cf.mu.Lock()
	cf.tornWrite = true
	cf.mu.Unlock()
	rec := AppendSet(nil, []byte("torn"), []byte("record"))
	if err := l.Commit(rec, 1); err == nil {
		t.Fatal("commit succeeded through torn write")
	}
	cf.mu.Lock()
	cf.writeErrs = 0 // underlying file "recovers"...
	cf.mu.Unlock()
	if err := l.Commit(rec, 1); err == nil {
		t.Fatal("log accepted a commit after a torn tail")
	}
	if st := l.Stats(); st.WriteErrs == 0 {
		t.Fatal("write error not counted")
	}
	// The already-persisted prefix (first record + 3 torn bytes) still
	// replays to exactly the intact record.
	cf.mu.Lock()
	data := append([]byte(nil), cf.buf.Bytes()...)
	cf.mu.Unlock()
	if _, recs := Replay(data, Handler{}); recs != 1 {
		t.Fatalf("want 1 intact record before the tear, got %d", recs)
	}
}

func TestIntervalSync(t *testing.T) {
	l, cf := openCounting(t, SyncInterval, time.Millisecond)
	rec := AppendSet(nil, []byte("iv"), []byte("v"))
	if err := l.Commit(rec, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		cf.mu.Lock()
		done := cf.syncedAt == cf.buf.Len() && cf.syncs > 0
		cf.mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("interval flusher never synced the tail")
		}
		time.Sleep(time.Millisecond)
	}
	l.Close()
}

// TestSyncOffCloseSyncsTail: with fsync disabled during serving, Close still
// makes the tail durable (the graceful-drain guarantee).
func TestSyncOffCloseSyncsTail(t *testing.T) {
	l, cf := openCounting(t, SyncOff, 0)
	rec := AppendSet(nil, []byte("off"), []byte("v"))
	if err := l.Commit(rec, 1); err != nil {
		t.Fatal(err)
	}
	cf.mu.Lock()
	if cf.syncs != 0 {
		cf.mu.Unlock()
		t.Fatal("SyncOff fsynced during serving")
	}
	cf.mu.Unlock()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	cf.mu.Lock()
	defer cf.mu.Unlock()
	if cf.syncs == 0 || cf.syncedAt != cf.buf.Len() {
		t.Fatalf("close did not sync the tail: syncs=%d syncedAt=%d len=%d", cf.syncs, cf.syncedAt, cf.buf.Len())
	}
}

func TestRotate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	old := filepath.Join(dir, "wal.old")
	l, err := Open(path, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(AppendSet(nil, []byte("before"), []byte("1")), 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(old); err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(AppendSet(nil, []byte("after"), []byte("2")), 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	var co, cn collect
	if _, recs, _ := ReplayFile(old, co.handler()); recs != 1 || string(co.sets[0][0]) != "before" {
		t.Fatalf("old segment: %d records %v", recs, co.sets)
	}
	if _, recs, _ := ReplayFile(path, cn.handler()); recs != 1 || string(cn.sets[0][0]) != "after" {
		t.Fatalf("new segment: %d records %v", recs, cn.sets)
	}
	if st := l.Stats(); st.Rotations != 1 {
		t.Fatalf("rotations = %d", st.Rotations)
	}
}

// TestRotateUnderCommits rotates while committers run; every committed record
// must land in exactly one of the two segments.
func TestRotateUnderCommits(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	old := filepath.Join(dir, "wal.old")
	l, err := Open(path, Options{Policy: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := l.Commit(AppendSet(nil, []byte(fmt.Sprintf("k%03d", i)), []byte("v")), 1); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
		}
	}()
	time.Sleep(time.Millisecond)
	if err := l.Rotate(old); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	h := Handler{Set: func(k, _ []byte) { seen[string(k)]++ }}
	ReplayFile(old, h)  //nolint:errcheck
	ReplayFile(path, h) //nolint:errcheck
	if len(seen) != n {
		t.Fatalf("recovered %d/%d keys across segments", len(seen), n)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %s appears %d times", k, c)
		}
	}
}

package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes (the corpus seeds are valid logs, which
// the fuzzer mutates and truncates) through Replay. Invariants: never panic,
// valid prefix within bounds, and the reported prefix is stable — replaying
// it again yields the same byte offset and record count, and appending
// arbitrary garbage after a valid prefix never loses records from it.
func FuzzWALReplay(f *testing.F) {
	var seed []byte
	seed = AppendSet(seed, []byte("key1"), []byte("value-one"))
	seed = AppendDelete(seed, []byte("key1"))
	seed = AppendReply(seed, "127.0.0.1:9999", 7, [][]byte{[]byte("fr1"), []byte("fr2")})
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Exercise every decode path; handlers re-check slice bounds.
		h := Handler{
			Set: func(k, v []byte) {
				_ = append([]byte(nil), k...)
				_ = append([]byte(nil), v...)
			},
			Delete: func(k []byte) { _ = len(k) },
			Reply: func(addr []byte, id uint64, frames [][]byte) {
				total := len(addr)
				for _, fr := range frames {
					total += len(fr)
				}
				if total > len(data) {
					t.Fatalf("reply decoded %d bytes from a %d-byte input", total, len(data))
				}
			},
		}
		valid, records := Replay(data, h)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid prefix %d out of range [0,%d]", valid, len(data))
		}
		if records < 0 || (records > 0 && valid == 0) {
			t.Fatalf("inconsistent result: valid=%d records=%d", valid, records)
		}
		v2, r2 := Replay(data[:valid], Handler{})
		if v2 != valid || r2 != records {
			t.Fatalf("prefix not stable: (%d,%d) vs (%d,%d)", valid, records, v2, r2)
		}
		// Garbage appended after a valid prefix must keep the prefix intact.
		garbage := append(append([]byte(nil), data[:valid]...), 0xde, 0xad, 0xbe, 0xef)
		v3, r3 := Replay(garbage, Handler{})
		if v3 < valid || r3 < records {
			t.Fatalf("appended garbage lost records: (%d,%d) vs (%d,%d)", v3, r3, valid, records)
		}
	})
}

package task

import (
	"math"
	"testing"
)

func testProfile() Profile {
	return Profile{
		N:                10000,
		GetRatio:         0.95,
		KeySize:          16,
		ValueSize:        64,
		Population:       1 << 20,
		EvictionRate:     1,
		AvgInsertBuckets: 2,
		SearchProbes:     1.5,
		WireQueryBytes:   30,
		RVInstr:          1800,
		SDInstr:          1800,
	}
}

func TestTaskStrings(t *testing.T) {
	want := map[ID]string{
		RV: "RV", PP: "PP", MM: "MM",
		INSearch: "IN.S", INInsert: "IN.I", INDelete: "IN.D",
		KC: "KC", RD: "RD", SC: "SC", WR: "WR", LG: "LG", SD: "SD",
	}
	for id, s := range want {
		if id.String() != s {
			t.Fatalf("%d.String() = %s, want %s", id, id.String(), s)
		}
	}
	if ID(99).String() != "task(99)" {
		t.Fatal("unknown task string")
	}
}

func TestAllOrderAndCount(t *testing.T) {
	all := All()
	if len(all) != NumTasks || NumTasks != 12 {
		t.Fatalf("NumTasks = %d, tasks = %d", NumTasks, len(all))
	}
	if all[0] != RV || all[len(all)-1] != SD {
		t.Fatal("pipeline order wrong at endpoints")
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatal("All() not in pipeline order")
		}
	}
}

func TestAffinityPartners(t *testing.T) {
	if p, ok := AffinityPartner(RD); !ok || p != KC {
		t.Fatal("RD's partner should be KC (paper §III-B1)")
	}
	if p, ok := AffinityPartner(WR); !ok || p != RD {
		t.Fatal("WR's partner should be RD")
	}
	for _, id := range []ID{RV, PP, MM, INSearch, INInsert, INDelete, KC, SC, SD} {
		if _, ok := AffinityPartner(id); ok {
			t.Fatalf("%v should have no affinity partner", id)
		}
	}
}

func TestCoverage(t *testing.T) {
	p := testProfile()
	if Coverage(RV, p) != 1 || Coverage(PP, p) != 1 || Coverage(SD, p) != 1 {
		t.Fatal("packet-path tasks cover all queries")
	}
	if got := Coverage(INSearch, p); got != 0.95 {
		t.Fatalf("Search coverage = %v", got)
	}
	if got := Coverage(INInsert, p); got != 0.05000000000000004 && (got < 0.049 || got > 0.051) {
		t.Fatalf("Insert coverage = %v", got)
	}
	// Delete coverage = setRatio × evictionRate.
	p.EvictionRate = 0.5
	if got := Coverage(INDelete, p); got < 0.024 || got > 0.026 {
		t.Fatalf("Delete coverage = %v", got)
	}
	if got := Coverage(ID(99), p); got != 0 {
		t.Fatal("unknown task coverage should be 0")
	}
}

func TestDemandQueriesScaleWithCoverage(t *testing.T) {
	p := testProfile()
	dSearch := ForTask(INSearch, p, Placement{})
	dInsert := ForTask(INInsert, p, Placement{})
	if dSearch.Queries != 9500 || dInsert.Queries != 500 {
		t.Fatalf("queries = %d / %d, want 9500 / 500", dSearch.Queries, dInsert.Queries)
	}
}

func TestRDAffinityReducesMemoryAccesses(t *testing.T) {
	p := testProfile()
	apart := ForTask(RD, p, Placement{WithAffinityPartner: false, OnCPU: true})
	together := ForTask(RD, p, Placement{WithAffinityPartner: true, OnCPU: true})
	if together.MemAccesses >= apart.MemAccesses {
		t.Fatalf("co-located RD should have fewer random accesses: %v vs %v",
			together.MemAccesses, apart.MemAccesses)
	}
	if together.MemAccesses != 0 {
		t.Fatalf("co-located RD random accesses = %v, want 0 (object in cache)", together.MemAccesses)
	}
	// Total touched lines are conserved (they just become cache accesses).
	if together.CacheAccesses <= apart.CacheAccesses {
		t.Fatal("co-located RD should convert memory accesses into cache accesses")
	}
}

func TestWRSeparationDoublesStreaming(t *testing.T) {
	p := testProfile()
	apart := ForTask(WR, p, Placement{WithAffinityPartner: false})
	together := ForTask(WR, p, Placement{WithAffinityPartner: true})
	if apart.SeqBytes <= together.SeqBytes {
		t.Fatal("separated WR must stream the staging buffer too (paper §III-A)")
	}
}

func TestKeyPopularityCachePortion(t *testing.T) {
	p := testProfile()
	p.CacheHitPortion = 0.6
	cpu := ForTask(KC, p, Placement{OnCPU: true})
	gpu := ForTask(KC, p, Placement{OnCPU: false})
	if cpu.MemAccesses >= gpu.MemAccesses {
		t.Fatal("CPU cache-hit portion should cut random accesses")
	}
	if got := cpu.MemAccesses; got < 0.39 || got > 0.41 {
		t.Fatalf("CPU KC random accesses = %v, want 0.4", got)
	}
	// Conservation: what left MemAccesses arrived in CacheAccesses.
	totalCPU := cpu.MemAccesses + cpu.CacheAccesses
	totalGPU := gpu.MemAccesses + gpu.CacheAccesses
	if diff := totalCPU - totalGPU; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("access conservation violated: %v vs %v", totalCPU, totalGPU)
	}
}

func TestHotHitPortionCutsSearchAccesses(t *testing.T) {
	p := testProfile()
	p.HotHitPortion = 0.5
	cpu := ForTask(INSearch, p, Placement{OnCPU: true})
	base := ForTask(INSearch, testProfile(), Placement{OnCPU: true})
	if cpu.MemAccesses >= base.MemAccesses {
		t.Fatal("hot-hit portion should cut IN(Search) random accesses on the CPU")
	}
	if want := base.MemAccesses * 0.5; math.Abs(cpu.MemAccesses-want) > 1e-9 {
		t.Fatalf("IN(Search) random accesses = %v, want %v", cpu.MemAccesses, want)
	}
	// Conservation: the skipped probes became cache accesses, not free work.
	if diff := (cpu.MemAccesses + cpu.CacheAccesses) - (base.MemAccesses + base.CacheAccesses); math.Abs(diff) > 1e-9 {
		t.Fatalf("access conservation violated by %v", diff)
	}
	// GPU-stage IN still probes: the side table lives in CPU cache.
	gpu := ForTask(INSearch, p, Placement{OnCPU: false})
	if gpu.MemAccesses != base.MemAccesses {
		t.Fatalf("GPU IN(Search) accesses moved: %v, want %v", gpu.MemAccesses, base.MemAccesses)
	}
	// Other CPU tasks are untouched (KC/RD savings belong to CacheHitPortion).
	kc := ForTask(KC, p, Placement{OnCPU: true})
	kcBase := ForTask(KC, testProfile(), Placement{OnCPU: true})
	if kc.MemAccesses != kcBase.MemAccesses {
		t.Fatal("HotHitPortion must not double-count into KC")
	}
}

func TestSearchVsUpdateCosts(t *testing.T) {
	// Insert touches more buckets than Search (displacement), Delete equals
	// Search probes — matches §IV-B.
	p := testProfile()
	s := ForTask(INSearch, p, Placement{})
	i := ForTask(INInsert, p, Placement{})
	del := ForTask(INDelete, p, Placement{})
	if i.MemAccesses <= s.MemAccesses {
		t.Fatal("Insert should touch more buckets than Search")
	}
	if del.MemAccesses != s.MemAccesses {
		t.Fatal("Delete probes should equal Search probes")
	}
}

func TestLargerObjectsCostMore(t *testing.T) {
	small := testProfile()
	big := testProfile()
	big.KeySize, big.ValueSize = 128, 1024
	dS := ForTask(RD, small, Placement{OnCPU: true})
	dB := ForTask(RD, big, Placement{OnCPU: true})
	if dB.CacheAccesses <= dS.CacheAccesses {
		t.Fatal("bigger objects must touch more lines")
	}
	wS := ForTask(WR, small, Placement{})
	wB := ForTask(WR, big, Placement{})
	if wB.SeqBytes <= wS.SeqBytes {
		t.Fatal("bigger values must stream more bytes")
	}
}

func TestObjectLines(t *testing.T) {
	if objectLines(0) != 0 {
		t.Fatal("zero bytes → zero lines")
	}
	if objectLines(1) != 1.015625 && objectLines(1) < 1 { // (1+63)/64 = 1
		t.Fatalf("1 byte → %v lines", objectLines(1))
	}
	if objectLines(64) != (64.0+63.0)/64.0 {
		t.Fatalf("64 bytes → %v", objectLines(64))
	}
	if objectLines(128) <= objectLines(64) {
		t.Fatal("lines must grow with size")
	}
}

func TestScanCoverage(t *testing.T) {
	p := testProfile()
	// No scans: SC covers nothing and the write split is untouched — the
	// pre-SCAN planner behavior is bit-identical at ScanRatio 0.
	if got := Coverage(SC, p); got != 0 {
		t.Fatalf("SC coverage without scans = %v", got)
	}
	base := Coverage(INInsert, p)
	p.ScanRatio = 0.10
	p.GetRatio = 0.85
	if got := Coverage(SC, p); got != 0.10 {
		t.Fatalf("SC coverage = %v, want 0.10", got)
	}
	// Writes are 1 − gets − scans: same 5% as before the scan mix shifted.
	if got := Coverage(INInsert, p); math.Abs(got-base) > 1e-9 {
		t.Fatalf("Insert coverage = %v, want %v", got, base)
	}
	// Degenerate profiles must not go negative.
	p.GetRatio, p.ScanRatio = 0.9, 0.2
	if got := Coverage(MM, p); got != 0 {
		t.Fatalf("MM coverage clamped = %v", got)
	}
}

func TestScanDemandIsBandwidthBound(t *testing.T) {
	p := testProfile()
	p.GetRatio, p.ScanRatio = 0.80, 0.15
	p.ScanEntries, p.ScanEntryBytes = 64, 86
	sc := ForTask(SC, p, Placement{OnCPU: true})
	if sc.Queries != 1500 {
		t.Fatalf("SC queries = %d, want 1500", sc.Queries)
	}
	// The defining property of the new regime: SC streams far more bytes
	// than any point task — its cost is a sequential-bandwidth term, not a
	// random-probe term.
	get := ForTask(RD, p, Placement{OnCPU: true})
	if sc.SeqBytes <= 10*get.SeqBytes {
		t.Fatalf("scan SeqBytes = %v, not bandwidth-dominated vs RD's %v", sc.SeqBytes, get.SeqBytes)
	}
	if sc.SeqBytes < 2*p.ScanEntries*p.ScanEntryBytes {
		t.Fatalf("scan SeqBytes = %v, want ≥ %v", sc.SeqBytes, 2*p.ScanEntries*p.ScanEntryBytes)
	}
	// Random accesses stay logarithmic-plus-linear in entries, far below the
	// stream term's line count: the opposite shape of a cuckoo probe.
	if sc.MemAccesses >= sc.SeqBytes/lineBytes {
		t.Fatalf("scan random accesses %v should sit below streamed lines %v",
			sc.MemAccesses, sc.SeqBytes/lineBytes)
	}
	// Bigger ranges stream more.
	p2 := p
	p2.ScanEntries = 256
	if sc2 := ForTask(SC, p2, Placement{OnCPU: true}); sc2.SeqBytes <= sc.SeqBytes {
		t.Fatal("more entries must stream more bytes")
	}
	// The merge serializes on a GPU wave.
	if sc.GPUSerialFrac <= 0 {
		t.Fatal("SC must carry a GPU serialization penalty")
	}
	// Scan result bytes ride the response path too: WR and SD both grow.
	noScan := p
	noScan.ScanRatio, noScan.ScanEntries, noScan.ScanEntryBytes = 0, 0, 0
	if ForTask(WR, p, Placement{}).SeqBytes <= ForTask(WR, noScan, Placement{}).SeqBytes {
		t.Fatal("WR must stream the scan result share")
	}
	if ForTask(SD, p, Placement{}).SeqBytes <= ForTask(SD, noScan, Placement{}).SeqBytes {
		t.Fatal("SD must stream the scan result share")
	}
}

func TestRVSDUseProfiledUnitCosts(t *testing.T) {
	p := testProfile()
	rv := ForTask(RV, p, Placement{})
	sd := ForTask(SD, p, Placement{})
	if rv.Instr != p.RVInstr || sd.Instr != p.SDInstr {
		t.Fatal("RV/SD must use the profiled unit costs (§IV-B)")
	}
}

// Package task defines the fine-grained task decomposition of key-value
// query processing (paper §III-A): the eight tasks RV, PP, MM, IN, KC, RD,
// WR, SD, with IN further split into independently placeable Search, Insert
// and Delete operations (§III-B2). This codebase adds two tasks beyond the
// paper's set: LG (write-ahead logging, durability tier) and SC (ordered-
// index range scans, a sequential-bandwidth-bound profile the planner can
// place independently of the random-access point probes).
//
// For each task the package computes its per-batch resource demands
// (instructions, random memory accesses, cache accesses, sequential bytes)
// from a workload profile. These demand counts are shared facts used by both
// the ground-truth APU simulator and DIDO's closed-form cost model — the two
// then price the same demands differently (see DESIGN.md §2, honesty rule).
package task

import "fmt"

// ID identifies one assignable task.
type ID int

// The assignable tasks, in pipeline order. INSearch/INInsert/INDelete jointly
// form the paper's IN task but are separately placeable.
const (
	RV ID = iota // receive packets
	PP           // packet processing: UDP + query parsing
	MM           // memory management: allocation + eviction
	INSearch
	INInsert
	INDelete
	KC           // key comparison
	RD           // read key-value object
	SC           // ordered-index range scan: snapshot + merge + value copies
	WR           // write response packet
	LG           // append write-ahead log records (durability tier)
	SD           // send responses
	NumTasks int = iota
)

// String implements fmt.Stringer using the paper's abbreviations.
func (id ID) String() string {
	switch id {
	case RV:
		return "RV"
	case PP:
		return "PP"
	case MM:
		return "MM"
	case INSearch:
		return "IN.S"
	case INInsert:
		return "IN.I"
	case INDelete:
		return "IN.D"
	case KC:
		return "KC"
	case RD:
		return "RD"
	case SC:
		return "SC"
	case WR:
		return "WR"
	case LG:
		return "LG"
	case SD:
		return "SD"
	default:
		return fmt.Sprintf("task(%d)", int(id))
	}
}

// All returns every task in pipeline order.
func All() []ID {
	return []ID{RV, PP, MM, INSearch, INInsert, INDelete, KC, RD, SC, WR, LG, SD}
}

// AffinityPartner returns the upstream task whose co-location in the same
// pipeline stage makes this task substantially cheaper (paper §III-B1 "task
// affinity"): KC fetches the object into cache, making a co-located RD nearly
// free; RD leaves the value in cache for a co-located WR.
func AffinityPartner(id ID) (ID, bool) {
	switch id {
	case RD:
		return KC, true
	case WR:
		return RD, true
	default:
		return 0, false
	}
}

// Profile captures the workload characteristics the demand model needs. The
// workload profiler measures these per batch (paper §III-A: "GET/SET ratio
// and average key-value size ... implemented with only a few counters").
type Profile struct {
	// N is the batch size in queries.
	N int
	// GetRatio is the fraction of GETs.
	GetRatio float64
	// KeySize and ValueSize are average object sizes in bytes.
	KeySize, ValueSize float64
	// Skew is the estimated Zipf exponent of key popularity.
	Skew float64
	// Population is the number of live objects.
	Population uint64
	// EvictionRate is evictions per SET (≈1 at steady-state full memory,
	// §II-C2).
	EvictionRate float64
	// AvgInsertBuckets is the measured average buckets touched per cuckoo
	// Insert (§IV-B).
	AvgInsertBuckets float64
	// SearchProbes is the analytic probe count per Search (1.5 for 2-way
	// cuckoo).
	SearchProbes float64
	// WireQueryBytes is the average encoded query size on the wire.
	WireQueryBytes float64
	// RVInstr, SDInstr and RVUnitNanos, SDUnitNanos come from the network
	// cost profile (netsim); RV/SD are estimated by unit-cost profiling
	// (§IV-B), not Eq 1.
	RVInstr, SDInstr         float64
	RVUnitNanos, SDUnitNanos float64
	// CacheHitPortion is P: the portion of object accesses served by the
	// CPU cache thanks to key-popularity skew (§IV-B). The cost model
	// computes it analytically from Zipf; the simulator measures it with a
	// real LRU cache.
	CacheHitPortion float64
	// LGRecordsPerQuery, LGSeqBytes and LGUnitNanos describe the durability
	// tier's logging task (LG): WAL records appended per query (0 when no
	// WAL is attached, which zeroes LG's coverage everywhere), average
	// framed bytes per record, and the measured per-record cost of the
	// group-commit append (unit-cost profiled like RV/SD, since most of LG
	// is syscall + fsync time no instruction model can see).
	LGRecordsPerQuery, LGSeqBytes, LGUnitNanos float64
	// HotHitPortion is the measured fraction of GETs served by the store's
	// hot-key side table (store.Config.HotKeys): those GETs skip the cuckoo
	// probe entirely, so their IN(Search) random accesses collapse to a
	// cache-resident table lookup. Measured, like AvgInsertBuckets (the
	// model cannot derive it: it depends on the table size, sampling and
	// invalidation churn, not just skew). 0 when the table is disabled.
	HotHitPortion float64
	// ScanRatio is the fraction of queries that are ordered-index range
	// scans (SC); GetRatio counts point GETs only, so writes are
	// 1 − GetRatio − ScanRatio. ScanEntries is the average entry count one
	// scan returns and ScanEntryBytes the average encoded bytes per
	// returned entry — together they make SC's demand dominated by a
	// sequential-bandwidth term (ScanEntries × ScanEntryBytes streamed per
	// scan), the opposite shape of a cuckoo point probe's random accesses.
	ScanRatio, ScanEntries, ScanEntryBytes float64
}

// Coverage returns the fraction of the batch a task applies to: index
// updates apply to SETs (and their evictions), object reads to GETs, the
// packet path to everything.
func Coverage(id ID, p Profile) float64 {
	set := 1 - p.GetRatio - p.ScanRatio
	if set < 0 {
		set = 0
	}
	switch id {
	case RV, PP, SD:
		return 1
	case MM:
		return set
	case INSearch:
		return p.GetRatio
	case INInsert:
		return set
	case INDelete:
		return set * p.EvictionRate
	case KC, RD:
		return p.GetRatio
	case SC:
		return p.ScanRatio
	case WR:
		return 1 // every query gets a response; value-bearing only for GETs
	case LG:
		// Durability: only write-bearing frames produce WAL records (SET/DEL
		// ops plus one REPLY record per tracked frame). Zero without a WAL.
		return p.LGRecordsPerQuery
	default:
		return 0
	}
}

// Demand gives the per-covered-query resource demands of one task.
type Demand struct {
	// Queries is the number of queries in the batch this task processes.
	Queries int
	// Instr is instructions per covered query.
	Instr float64
	// MemAccesses is random (cache-missing) memory accesses per query.
	MemAccesses float64
	// CacheAccesses is cache-served accesses per query.
	CacheAccesses float64
	// SeqBytes is sequentially streamed bytes per query.
	SeqBytes float64
	// GPUSerialFrac is the fraction of the task's memory work that
	// serializes on a GPU (CAS contention + wave divergence); nonzero only
	// for the index update operations (paper Fig 6's mechanism).
	GPUSerialFrac float64
}

// Placement describes the context that modulates a task's demands.
type Placement struct {
	// WithAffinityPartner is true when the task shares a stage with its
	// affinity partner (AffinityPartner), so its object access is served
	// from cache.
	WithAffinityPartner bool
	// OnCPU is true when the task runs on the CPU — the key-popularity
	// cache-hit portion applies only there (the GPU L2 is too small to hold
	// a hot set, §IV-B models CPU caching of frequent objects).
	OnCPU bool
}

// lineBytes is the cache-line granularity the demand model assumes. Both
// devices of the Kaveri use 64-byte lines.
const lineBytes = 64

// objectLines returns how many cache lines an object of size b spans.
func objectLines(b float64) float64 {
	if b <= 0 {
		return 0
	}
	return (b + lineBytes - 1) / lineBytes
}

// ForTask computes the demand of task id for a batch with profile p under
// placement pl. The instruction constants approximate the per-query code
// footprint of each stage in the reference implementation; the memory-access
// counts follow §IV-B.
func ForTask(id ID, p Profile, pl Placement) Demand {
	cover := Coverage(id, p)
	d := Demand{Queries: int(float64(p.N)*cover + 0.5)}
	objBytes := p.KeySize + p.ValueSize
	switch id {
	case RV:
		d.Instr = p.RVInstr
		d.SeqBytes = p.WireQueryBytes
	case PP:
		// Parse op and lengths from the (already resident) frame; a few
		// dozen instructions per query with a streaming touch of the bytes.
		d.Instr = 30 + p.KeySize/16
		d.SeqBytes = p.WireQueryBytes
		d.CacheAccesses = 0.25
	case MM:
		// Allocation: freelist pop + header write + key/value copy into the
		// chunk; eviction bookkeeping on the victim.
		d.Instr = 250
		d.MemAccesses = 1.5 + p.EvictionRate
		d.SeqBytes = objBytes
	case INSearch:
		d.Instr = 90
		d.MemAccesses = p.SearchProbes
	case INInsert:
		d.Instr = 140
		d.MemAccesses = p.AvgInsertBuckets
		// Inserts CAS into buckets and may walk displacement paths; on a
		// GPU the wave stalls on its slowest lane and contended CAS
		// serializes (§II-C2 / Fig 6).
		d.GPUSerialFrac = 0.20
	case INDelete:
		d.Instr = 100
		d.MemAccesses = p.SearchProbes
		d.GPUSerialFrac = 0.20
	case KC:
		// Fetch the object header+key (one random access) and compare.
		d.Instr = 40 + p.KeySize/8
		d.MemAccesses = 1
		d.CacheAccesses = objectLines(p.KeySize)
	case RD:
		// Read the whole object. With KC co-located the object is already
		// cached (task affinity, §III-B1); otherwise pay the random access.
		d.Instr = 30 + objBytes/16
		if pl.WithAffinityPartner {
			d.CacheAccesses = objectLines(objBytes)
		} else {
			d.MemAccesses = 1
			d.CacheAccesses = objectLines(objBytes) - 1
		}
	case SC:
		// Ordered range scan: one snapshot load, a root-to-leaf descent per
		// shard tree (random accesses ∝ log₂ population), then a sequential
		// merge that touches one tree node per returned entry and streams the
		// entry's key+value bytes through the seqlock read into the result
		// block. The stream term dominates for any realistic entry count —
		// scans are bandwidth-bound where probes are latency-bound, which is
		// exactly the regime split the planner exploits when placing SC.
		scanBytes := p.ScanEntries * p.ScanEntryBytes
		d.Instr = 200 + 25*p.ScanEntries + scanBytes/16
		depth := 1.0
		for n := p.Population; n > 1; n >>= 1 {
			depth++
		}
		d.MemAccesses = depth + p.ScanEntries // descent + one node hop per entry
		d.CacheAccesses = 2 * p.ScanEntries   // iterator stack + entry header writes
		d.SeqBytes = 2 * scanBytes            // slab value read + result-block write
		// The N-way merge advances one entry at a time: a GPU wave's lanes
		// serialize on the shared cursor (same mechanism as Fig 6's CAS).
		d.GPUSerialFrac = 0.35
	case WR:
		// Build the response. GETs carry the value: read it (from cache if
		// RD co-located, else from the staging buffer sequentially) and
		// stream it into the response frame. Scan result blocks (already
		// assembled by SC in the response arena) are streamed once more into
		// the frame.
		valueShare := p.GetRatio * p.ValueSize
		scanShare := p.ScanRatio * p.ScanEntries * p.ScanEntryBytes
		d.Instr = 120 + (valueShare+scanShare)/16
		if pl.WithAffinityPartner {
			d.CacheAccesses = objectLines(valueShare)
			d.SeqBytes = valueShare + scanShare // response write only
		} else {
			d.SeqBytes = 2*valueShare + scanShare // staging read + response write
		}
	case LG:
		// Encode + CRC one WAL record and stream it into the commit buffer.
		// The dominant cost (write syscall + shared fsync) is measured, not
		// modeled: the cost model prices LG from LGUnitNanos like RV/SD.
		d.Instr = 150 + p.LGSeqBytes/16
		d.SeqBytes = p.LGSeqBytes
	case SD:
		d.Instr = p.SDInstr
		d.SeqBytes = p.GetRatio*p.ValueSize + p.ScanRatio*p.ScanEntries*p.ScanEntryBytes + 16
	}
	// Key-popularity: on the CPU a portion P of random object accesses hit
	// the cache (§IV-B). Applies to object-touching tasks only.
	if pl.OnCPU && (id == KC || id == RD) && p.CacheHitPortion > 0 {
		hit := p.CacheHitPortion
		moved := d.MemAccesses * hit
		d.MemAccesses -= moved
		d.CacheAccesses += moved
	}
	// Hot-key fast path: the measured portion H of GETs is served from the
	// cache-resident side table before the cuckoo probe, turning their
	// IN(Search) bucket walks into cache accesses. CPU only — the table
	// lives in the serving cores' cache, a GPU-stage IN would still probe.
	// Applied to IN(Search) alone: KC/RD savings for those GETs are already
	// covered by CacheHitPortion (hot keys are exactly the ones the LRU term
	// counts), so pricing them here too would double-count.
	if pl.OnCPU && id == INSearch && p.HotHitPortion > 0 {
		hit := p.HotHitPortion
		if hit > 1 {
			hit = 1
		}
		moved := d.MemAccesses * hit
		d.MemAccesses -= moved
		d.CacheAccesses += moved
	}
	// On the GPU, object bytes never fit its small L2 across a wavefront's
	// 64 lanes: line-granularity "cache" accesses of the object tasks are
	// really random memory accesses there. This is why reading large
	// key-value objects on the GPU loses (§V-C: the CPU prefetches large
	// objects well, so DIDO keeps Mega-KV's shape for K32/K128).
	if !pl.OnCPU && (id == KC || id == RD || id == WR) {
		d.MemAccesses += d.CacheAccesses
		d.CacheAccesses = 0
	}
	return d
}

package costmodel

import (
	"testing"
	"time"

	"repro/internal/apu"
	"repro/internal/task"
)

func sizerPlanner() *Planner {
	return NewPlanner(apu.KaveriPlatform(), 200*time.Microsecond)
}

// A 1-CPU host must gate every extra reader off: a second reader would just
// time-slice against the pipeline it feeds.
func TestSizeReadersSingleCoreGatesOff(t *testing.T) {
	pl := sizerPlanner()
	if got := pl.SizeReaders(DefaultIngestProfile(), 1, 8); got != 1 {
		t.Fatalf("SizeReaders(hostCores=1) = %d, want 1", got)
	}
	if got := pl.SizeReaders(DefaultIngestProfile(), 2, 8); got != 1 {
		t.Fatalf("SizeReaders(hostCores=2) = %d, want 1 (cap hostCores-1)", got)
	}
}

// The request is an upper bound: sizing never opens more queues than asked,
// and never more than hostCores-1.
func TestSizeReadersRespectsBounds(t *testing.T) {
	pl := sizerPlanner()
	prof := DefaultIngestProfile()
	for _, req := range []int{1, 2, 4, 8} {
		got := pl.SizeReaders(prof, 16, req)
		if got < 1 || got > req {
			t.Fatalf("SizeReaders(req=%d) = %d, out of [1,%d]", req, got, req)
		}
	}
	if got := pl.SizeReaders(prof, 4, 8); got > 3 {
		t.Fatalf("SizeReaders(hostCores=4, req=8) = %d, want ≤ 3", got)
	}
	if got := pl.SizeReaders(prof, 16, 0); got != 1 {
		t.Fatalf("SizeReaders(req=0) = %d, want 1", got)
	}
}

// Under the ingest-saturated profile on a multi-core host the model must
// actually want more than one reader — otherwise -adapt would silently turn
// -net-queues into a no-op everywhere and the sharded tier would be dead
// code under adaptation.
func TestSizeReadersScalesUpWhenIngestBound(t *testing.T) {
	pl := sizerPlanner()
	got := pl.SizeReaders(DefaultIngestProfile(), 16, 4)
	if got < 2 {
		t.Fatalf("SizeReaders(ingest-bound, hostCores=16, req=4) = %d, want ≥ 2", got)
	}
	// And it must leave the planner's RVReaders untouched (pure search).
	if pl.RVReaders != 0 {
		t.Fatalf("SizeReaders left RVReaders = %d, want 0", pl.RVReaders)
	}
}

// The pricing term itself: with RVReaders set, predicted RV time shrinks and
// whole-pipeline predicted throughput does not get worse.
func TestRVReadersReducesPredictedRVTime(t *testing.T) {
	pl := sizerPlanner()
	prof := DefaultIngestProfile()
	base, _ := pl.Best(prof)
	pl.RVReaders = 4
	sharded, _ := pl.Best(prof)
	if sharded.ThroughputOPS < base.ThroughputOPS {
		t.Fatalf("RVReaders=4 predicted %.0f ops, worse than single-reader %.0f",
			sharded.ThroughputOPS, base.ThroughputOPS)
	}
	// Direct task check: price RV at batch 4096 in both modes.
	cfg := base.Config
	pl.RVReaders = 1
	t1 := pl.taskTime(task.RV, prof, cfg, 4096)
	pl.RVReaders = 4
	t4 := pl.taskTime(task.RV, prof, cfg, 4096)
	if t4 >= t1 {
		t.Fatalf("RV time with 4 readers (%v) not below single reader (%v)", t4, t1)
	}
}

package costmodel

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/profiler"
	"repro/internal/task"
)

// Controller closes the paper's adaptation loop over the *live* serving
// pipeline: it implements pipeline.ConfigProvider by feeding each completed
// batch's measured profile through the workload profiler and, when the
// profiler's 10% change trigger fires, re-running the cost-model search to
// install a new (config, batch size) pair at the next batch boundary. It is
// the live analogue of internal/dido.System.NextConfig, consuming profiles
// measured on real hardware instead of the simulator's.
//
// Unlike the simulated loop, the controller never layers work-stealing onto
// the chosen shape: the live stage workers do not implement stealing, so
// advertising a stolen-batch size the executor cannot deliver would be
// dishonest. The searched space is pipeline shapes and index assignments
// only.
type Controller struct {
	Planner  *Planner
	Profiler *profiler.Profiler
	Sizer    *pipeline.BatchSizer
	// Trace, when set, receives one event per batch-boundary decision —
	// replans and keeps alike — making the adaptation loop auditable from
	// the admin endpoint (/trace). Appending is O(1) and allocation-free,
	// so tracing is safe to leave on in production.
	Trace *obs.TraceRing

	mu       sync.Mutex
	cfg      pipeline.Config
	replans  uint64
	lastPred Prediction // most recent installed plan; Tmax is its prediction
}

// NewController returns a controller starting at initial. A nil sizer gets
// one derived from the planner's interval and batch bounds.
func NewController(pl *Planner, prof *profiler.Profiler, initial pipeline.Config, sizer *pipeline.BatchSizer) *Controller {
	if sizer == nil {
		sizer = &pipeline.BatchSizer{Interval: pl.Interval, Min: pl.MinBatch, Max: pl.MaxBatch}
		sizer.Set(pipeline.DefaultInitialBatch)
	}
	return &Controller{Planner: pl, Profiler: prof, Sizer: sizer, cfg: initial}
}

// keep filters the searched space to what the live executor can run: no
// work-stealing variants (see type comment).
func (c *Controller) keep(cfg pipeline.Config) bool { return !cfg.WorkStealing }

// NextConfig implements pipeline.ConfigProvider. The live runner serializes
// calls (one per batch boundary), so the only concurrency to guard is the
// accessor methods.
func (c *Controller) NextConfig(prev *pipeline.Batch) (pipeline.Config, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev == nil {
		return c.cfg, c.Sizer.Current()
	}
	oldCfg, oldTarget := c.cfg, c.Sizer.Current()
	measured, replan := c.Profiler.Observe(prev.Profile)
	replanned := false
	var target int
	if replan {
		best, _ := c.Planner.BestFiltered(c.plannerProfile(measured), c.keep)
		if best.ThroughputOPS > 0 {
			c.cfg = best.Config
			c.Sizer.Set(best.Batch)
			c.replans++
			c.lastPred = best
			replanned = true
			target = c.Sizer.Current()
		}
	}
	if !replanned {
		// Between replans the batch size follows the shared feedback
		// controller, nudging measured Tmax toward the scheduling interval.
		target = c.Sizer.Observe(prev)
	}
	if c.Trace != nil {
		c.Trace.Append(obs.TraceEvent{
			When:          time.Now(),
			Seq:           prev.Seq,
			Replan:        replanned,
			Old:           oldCfg,
			New:           c.cfg,
			OldTarget:     oldTarget,
			NewTarget:     target,
			Profile:       measured,
			PredictedTmax: c.lastPred.Tmax,
			RealizedTmax:  prev.Times.Tmax,
			RealizedWall:  prev.Wall,
		})
	}
	return c.cfg, target
}

// plannerProfile strips measurements the cost model must derive analytically
// (same honesty rule as the simulated loop: the planner computes the
// cache-hit portion from Zipf's law, it does not get told).
func (c *Controller) plannerProfile(p task.Profile) task.Profile {
	p.CacheHitPortion = 0
	return p
}

// Replans returns how many times the loop installed a re-planned config.
func (c *Controller) Replans() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replans
}

// CurrentConfig returns the config the controller last handed out.
func (c *Controller) CurrentConfig() pipeline.Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}

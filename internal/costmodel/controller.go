package costmodel

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/profiler"
	"repro/internal/task"
)

// Controller closes the paper's adaptation loop over the *live* serving
// pipeline: it implements pipeline.ConfigProvider by feeding each completed
// batch's measured profile through the workload profiler and, when the
// profiler's 10% change trigger fires, re-running the cost-model search to
// install a new (config, batch size) pair at the next batch boundary. It is
// the live analogue of internal/dido.System.NextConfig, consuming profiles
// measured on real hardware instead of the simulator's.
//
// Work stealing is layered on as a separate, gated decision rather than
// searched with the shapes: the base search runs over non-stealing configs,
// and when AllowStealing is set (the live workers implement chunked
// stealing, LiveOptions.Steal) the winner's stealing variant is priced with
// Eq 3 and adopted only when the predicted bottleneck improvement — realized
// as Eq 4 throughput at the interval-solved batch size — clears
// StealThreshold.
// The threshold keeps flat workloads honest — when stages are balanced,
// stealing's predicted gain is ~0 and the claim-index overhead would be pure
// cost, so the controller gates it off.
type Controller struct {
	Planner  *Planner
	Profiler *profiler.Profiler
	Sizer    *pipeline.BatchSizer
	// AllowStealing advertises that the executor implements work stealing
	// (chunk-granular claim/help on the live path); without it the searched
	// space is pipeline shapes and index assignments only, because
	// advertising a stolen-batch size the executor cannot deliver would be
	// dishonest.
	AllowStealing bool
	// StealThreshold is the minimum fractional Tmax improvement Eq 3 must
	// predict before WorkStealing is turned on; ≤ 0 means
	// DefaultStealBenefitThreshold.
	StealThreshold float64
	// Trace, when set, receives one event per batch-boundary decision —
	// replans and keeps alike — making the adaptation loop auditable from
	// the admin endpoint (/trace). Appending is O(1) and allocation-free,
	// so tracing is safe to leave on in production.
	Trace *obs.TraceRing

	mu       sync.Mutex
	cfg      pipeline.Config
	replans  uint64
	lastPred Prediction // most recent installed plan; Tmax is its prediction
}

// NewController returns a controller starting at initial. A nil sizer gets
// one derived from the planner's interval and batch bounds.
func NewController(pl *Planner, prof *profiler.Profiler, initial pipeline.Config, sizer *pipeline.BatchSizer) *Controller {
	if sizer == nil {
		sizer = &pipeline.BatchSizer{Interval: pl.Interval, Min: pl.MinBatch, Max: pl.MaxBatch}
		sizer.Set(pipeline.DefaultInitialBatch)
	}
	return &Controller{Planner: pl, Profiler: prof, Sizer: sizer, cfg: initial}
}

// DefaultStealBenefitThreshold is the fractional predicted-Tmax improvement
// work stealing must clear before the controller enables it (5%: below that
// the chunk claim overhead and lost wide-search pipelining eat the gain).
const DefaultStealBenefitThreshold = 0.05

// keep filters the base search to non-stealing variants; stealing is layered
// on afterwards as an explicitly gated decision (see maybeSteal).
func (c *Controller) keep(cfg pipeline.Config) bool { return !cfg.WorkStealing }

// maybeSteal prices best's work-stealing variant (Eq 3 via applyStealing
// inside the planner's stage times) and returns it when the predicted
// benefit clears the threshold; otherwise best stands and stealing stays
// off. Because EvaluateConfig solves the batch size so Tmax sits at the
// scheduling interval, a lower bottleneck time surfaces as a larger solved
// batch at the same Tmax — i.e. as Eq 4 throughput — so that is what the
// gate compares. On balanced stages (flat workloads) Eq 3 moves nothing and
// the gain is exactly 0: stealing gates itself off.
func (c *Controller) maybeSteal(best Prediction, prof task.Profile) Prediction {
	if !c.AllowStealing || best.Config.GPUDepth == 0 || best.ThroughputOPS <= 0 {
		return best // single-stage configs have no second group to steal from
	}
	ws := best.Config
	ws.WorkStealing = true
	wsPred := c.Planner.EvaluateConfig(ws, prof)
	thr := c.StealThreshold
	if thr <= 0 {
		thr = DefaultStealBenefitThreshold
	}
	if wsPred.ThroughputOPS >= best.ThroughputOPS*(1+thr) {
		return wsPred
	}
	return best
}

// NextConfig implements pipeline.ConfigProvider. The live runner serializes
// calls (one per batch boundary), so the only concurrency to guard is the
// accessor methods.
func (c *Controller) NextConfig(prev *pipeline.Batch) (pipeline.Config, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev == nil {
		return c.cfg, c.Sizer.Current()
	}
	oldCfg, oldTarget := c.cfg, c.Sizer.Current()
	measured, replan := c.Profiler.Observe(prev.Profile)
	replanned := false
	var target int
	if replan {
		pp := c.plannerProfile(measured)
		best, _ := c.Planner.BestFiltered(pp, c.keep)
		best = c.maybeSteal(best, pp)
		if best.ThroughputOPS > 0 {
			c.cfg = best.Config
			c.Sizer.Set(best.Batch)
			c.replans++
			c.lastPred = best
			replanned = true
			target = c.Sizer.Current()
		}
	}
	if !replanned {
		// Between replans the batch size follows the shared feedback
		// controller, nudging measured Tmax toward the scheduling interval.
		target = c.Sizer.Observe(prev)
	}
	if c.Trace != nil {
		c.Trace.Append(obs.TraceEvent{
			When:          time.Now(),
			Seq:           prev.Seq,
			Replan:        replanned,
			Old:           oldCfg,
			New:           c.cfg,
			OldTarget:     oldTarget,
			NewTarget:     target,
			Profile:       measured,
			PredictedTmax: c.lastPred.Tmax,
			RealizedTmax:  prev.Times.Tmax,
			RealizedWall:  prev.Wall,
		})
	}
	return c.cfg, target
}

// plannerProfile strips measurements the cost model must derive analytically
// (same honesty rule as the simulated loop: the planner computes the
// cache-hit portion from Zipf's law, it does not get told).
func (c *Controller) plannerProfile(p task.Profile) task.Profile {
	p.CacheHitPortion = 0
	return p
}

// Replans returns how many times the loop installed a re-planned config.
func (c *Controller) Replans() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.replans
}

// CurrentConfig returns the config the controller last handed out.
func (c *Controller) CurrentConfig() pipeline.Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cfg
}

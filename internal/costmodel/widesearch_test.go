package costmodel

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/task"
)

// TestINSearchMLPGate: the batched-search term must be off by default (planner
// predictions unchanged) and must never touch other tasks or sub-threshold
// batch sizes.
func TestINSearchMLPGate(t *testing.T) {
	pl := newPlanner()
	if d := pl.inSearchMemDiv(task.INSearch, 4096); d != 1 {
		t.Fatalf("default planner divisor = %v, want 1 (term must be opt-in)", d)
	}
	pl.INSearchMLP = DefaultINSearchMLP
	if d := pl.inSearchMemDiv(task.KC, 4096); d != 1 {
		t.Fatalf("KC divisor = %v, want 1 (term is IN(Search)-only)", d)
	}
	if d := pl.inSearchMemDiv(task.INSearch, pipeline.DefaultWideMinGets-1); d != 1 {
		t.Fatalf("sub-threshold divisor = %v, want 1", d)
	}
	if d := pl.inSearchMemDiv(task.INSearch, pipeline.DefaultWideMinGets); d != 1 {
		t.Fatalf("divisor at threshold = %v, want 1 (ramp starts there)", d)
	}
	mid := pl.inSearchMemDiv(task.INSearch, 4*pipeline.DefaultWideMinGets)
	if mid <= 1 || mid >= DefaultINSearchMLP {
		t.Fatalf("mid-ramp divisor = %v, want in (1, %d)", mid, DefaultINSearchMLP)
	}
	full := pl.inSearchMemDiv(task.INSearch, 16*pipeline.DefaultWideMinGets)
	if full != DefaultINSearchMLP {
		t.Fatalf("full-ramp divisor = %v, want %d", full, DefaultINSearchMLP)
	}
	if d := pl.inSearchMemDiv(task.INSearch, 1<<20); d != DefaultINSearchMLP {
		t.Fatalf("huge-batch divisor = %v, want capped at %d", d, DefaultINSearchMLP)
	}
}

// TestINSearchMLPRaisesCPUSearchThroughput: with the term on, a GET-heavy
// workload's best plan must predict at least as much throughput as without it
// — the wide executor only removes modeled latency — and a CPU-search config
// specifically must get strictly faster at large batch sizes.
func TestINSearchMLPRaisesCPUSearchThroughput(t *testing.T) {
	prof := profileFor(16, 64, 0.95, 0.99)
	base := newPlanner()
	wide := newPlanner()
	wide.INSearchMLP = DefaultINSearchMLP

	cpuCfg := pipeline.Config{GPUDepth: 0} // IN(Search) on the CPU stage
	pBase := base.EvaluateConfig(cpuCfg, prof)
	pWide := wide.EvaluateConfig(cpuCfg, prof)
	if pWide.ThroughputOPS <= pBase.ThroughputOPS {
		t.Fatalf("CPU-search config: wide %v ops/s not above scalar %v ops/s",
			pWide.ThroughputOPS, pBase.ThroughputOPS)
	}

	bestBase, _ := searchShapes(base, prof)
	bestWide, _ := searchShapes(wide, prof)
	if bestWide.ThroughputOPS < bestBase.ThroughputOPS {
		t.Fatalf("best plan regressed: wide %v < scalar %v",
			bestWide.ThroughputOPS, bestBase.ThroughputOPS)
	}
}

package costmodel

import (
	"testing"
	"time"

	"repro/internal/apu"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/profiler"
	"repro/internal/store"
	"repro/internal/task"
)

func newTestController() *Controller {
	pl := NewPlanner(apu.KaveriPlatform(), 333*time.Microsecond)
	st := store.New(store.Config{MemoryBytes: 4 << 20, IndexEntries: 10000, Seed: 1})
	return NewController(pl, profiler.New(st), pipeline.DefaultLiveConfig(), nil)
}

func measuredBatch(getRatio float64) *pipeline.Batch {
	b := &pipeline.Batch{}
	b.Profile = task.Profile{
		N:                1024,
		GetRatio:         getRatio,
		KeySize:          16,
		ValueSize:        64,
		Population:       100000,
		AvgInsertBuckets: 2,
		SearchProbes:     1.5,
		WireQueryBytes:   24,
		RVUnitNanos:      200,
		SDUnitNanos:      300,
	}
	b.Times.Tmax = 200 * time.Microsecond
	return b
}

func TestControllerFirstBatchReplans(t *testing.T) {
	c := newTestController()
	cfg0, n0 := c.NextConfig(nil)
	if cfg0 != pipeline.DefaultLiveConfig() || n0 < 1 {
		t.Fatalf("initial NextConfig = %v/%d", cfg0, n0)
	}
	cfg1, n1 := c.NextConfig(measuredBatch(0.95))
	if c.Replans() != 1 {
		t.Fatalf("Replans = %d, want 1 (first profile always replans)", c.Replans())
	}
	if n1 < 1 {
		t.Fatalf("batch size %d", n1)
	}
	if cfg1.WorkStealing {
		t.Fatal("live controller must not install work-stealing configs")
	}
	if cfg1 != c.CurrentConfig() {
		t.Fatal("CurrentConfig disagrees with NextConfig")
	}
}

func TestControllerStableWorkloadNoReplan(t *testing.T) {
	c := newTestController()
	c.NextConfig(nil)
	c.NextConfig(measuredBatch(0.95))
	base := c.Replans()
	for i := 0; i < 10; i++ {
		c.NextConfig(measuredBatch(0.95))
	}
	if c.Replans() != base {
		t.Fatalf("Replans moved %d → %d on a stable workload", base, c.Replans())
	}
	// Between replans, batch size follows the Tmax feedback: a batch far
	// under the interval grows the target.
	before := c.Sizer.Current()
	fast := measuredBatch(0.95)
	fast.Times.Tmax = 50 * time.Microsecond
	_, n := c.NextConfig(fast)
	if n <= before && before < c.Planner.MaxBatch {
		t.Fatalf("feedback sizing: %d → %d, want growth", before, n)
	}
}

func TestControllerTraceRecordsEveryDecision(t *testing.T) {
	c := newTestController()
	c.Trace = obs.NewTraceRing(16)
	c.NextConfig(nil) // initial handout: no completed batch, no event
	if got := c.Trace.Total(); got != 0 {
		t.Fatalf("initial NextConfig traced %d events, want 0", got)
	}

	// First measured batch always replans (profiler baseline).
	b := measuredBatch(0.95)
	b.Seq = 7
	b.Wall = 250 * time.Microsecond
	cfg1, n1 := c.NextConfig(b)
	// A stable follow-up is a "keep" decision — still traced.
	c.NextConfig(measuredBatch(0.95))

	if got := c.Trace.Total(); got != 2 {
		t.Fatalf("traced %d events over 2 decisions", got)
	}
	ev := c.Trace.Snapshot()
	first, second := ev[0], ev[1]

	if !first.Replan {
		t.Fatal("first measured batch must trace as a replan")
	}
	if first.Seq != 7 {
		t.Fatalf("Seq = %d, want 7", first.Seq)
	}
	if first.Old != pipeline.DefaultLiveConfig() {
		t.Fatalf("old config = %v, want the initial config", first.Old)
	}
	if first.New != cfg1 || first.NewTarget != n1 {
		t.Fatalf("new (%v, %d) disagrees with NextConfig (%v, %d)",
			first.New, first.NewTarget, cfg1, n1)
	}
	if first.Profile.GetRatio != 0.95 {
		t.Fatalf("profile not recorded: %+v", first.Profile)
	}
	if first.RealizedTmax != 200*time.Microsecond || first.RealizedWall != 250*time.Microsecond {
		t.Fatalf("realized tmax=%v wall=%v", first.RealizedTmax, first.RealizedWall)
	}
	if first.PredictedTmax <= 0 {
		t.Fatal("replan event missing the planner's predicted Tmax")
	}
	if first.When.IsZero() {
		t.Fatal("event not timestamped")
	}

	if second.Replan {
		t.Fatal("stable workload decision traced as a replan")
	}
	if second.Old != second.New {
		t.Fatalf("keep decision changed config: %v → %v", second.Old, second.New)
	}
	// The keep decision still reports the standing plan's prediction.
	if second.PredictedTmax != first.PredictedTmax {
		t.Fatalf("keep event prediction %v != standing plan %v",
			second.PredictedTmax, first.PredictedTmax)
	}
}

func TestControllerWorkloadShiftReplans(t *testing.T) {
	c := newTestController()
	c.NextConfig(nil)
	c.NextConfig(measuredBatch(0.95))
	base := c.Replans()
	// >10% move on the GET ratio must re-trigger the planner (the paper's
	// adaptation threshold).
	c.NextConfig(measuredBatch(0.50))
	if c.Replans() != base+1 {
		t.Fatalf("Replans = %d after workload shift, want %d", c.Replans(), base+1)
	}
}

// TestControllerStealGating pins maybeSteal's decision table: off without
// AllowStealing, off for single-stage winners, off when the predicted gain
// misses the threshold (balanced stages predict exactly 0, the flat-workload
// case), on when Eq 3's predicted rebalance clears it.
func TestControllerStealGating(t *testing.T) {
	c := newTestController()
	// A write-heavy large-ish-value profile makes the post-GPU stage the
	// predicted bottleneck with an idle-ish helper: Eq 3 predicts a strong
	// gain for the winner's stealing variant.
	imbalanced := c.plannerProfile(task.Profile{
		N: 8192, GetRatio: 0.5, KeySize: 16, ValueSize: 64, Skew: 0.99,
		Population: 1 << 20, EvictionRate: 1, AvgInsertBuckets: 2,
		SearchProbes: 1.5, WireQueryBytes: 28,
		RVInstr: 15, SDInstr: 15, RVUnitNanos: 4, SDUnitNanos: 4,
	})
	best, _ := c.Planner.BestFiltered(imbalanced, c.keep)
	if best.Config.GPUDepth == 0 {
		t.Skip("winner is single-stage on this platform; gating has nothing to steal across")
	}
	ws := best.Config
	ws.WorkStealing = true
	gain := c.Planner.EvaluateConfig(ws, imbalanced).ThroughputOPS/best.ThroughputOPS - 1
	if gain < 0.10 {
		t.Fatalf("fixture lost its point: predicted steal gain %.3f, want >= 0.10", gain)
	}

	if got := c.maybeSteal(best, imbalanced); got.Config.WorkStealing {
		t.Fatal("stealing adopted without AllowStealing")
	}
	c.AllowStealing = true
	got := c.maybeSteal(best, imbalanced)
	if !got.Config.WorkStealing {
		t.Fatalf("stealing not adopted despite %.1f%% predicted gain", gain*100)
	}
	if got.ThroughputOPS < best.ThroughputOPS {
		t.Fatal("adopted prediction is worse than the base")
	}

	// An unreachable threshold keeps it off no matter the gain.
	c.StealThreshold = gain * 2
	if got := c.maybeSteal(best, imbalanced); got.Config.WorkStealing {
		t.Fatal("stealing adopted past an unreachable threshold")
	}
	c.StealThreshold = 0

	// Balanced stages (read-heavy small KV, no skew): Eq 3 moves nothing,
	// predicted gain is 0, stealing stays off — the flat/uniform case.
	flat := c.plannerProfile(task.Profile{
		N: 8192, GetRatio: 0.95, KeySize: 16, ValueSize: 64,
		Population: 1 << 20, EvictionRate: 1, AvgInsertBuckets: 2,
		SearchProbes: 1.5, WireQueryBytes: 28,
		RVInstr: 15, SDInstr: 15, RVUnitNanos: 4, SDUnitNanos: 4,
	})
	fbest, _ := c.Planner.BestFiltered(flat, c.keep)
	if got := c.maybeSteal(fbest, flat); got.Config.WorkStealing {
		t.Fatal("stealing adopted on a balanced (flat) plan")
	}

	// Single-stage winner: nothing to steal across.
	solo := fbest
	solo.Config = pipeline.Config{GPUDepth: 0}
	if got := c.maybeSteal(solo, flat); got.Config.WorkStealing {
		t.Fatal("stealing adopted on a single-stage config")
	}
}

// TestControllerStealEndToEnd drives NextConfig with a replanning profile and
// asserts the installed config only ever carries WorkStealing together with
// a multi-stage shape, and never without AllowStealing.
func TestControllerStealEndToEnd(t *testing.T) {
	c := newTestController()
	c.AllowStealing = true
	c.NextConfig(nil)
	b := measuredBatch(0.5)
	b.Profile.Skew = 0.99
	cfg, n := c.NextConfig(b)
	if n < 1 {
		t.Fatalf("batch size %d", n)
	}
	if cfg.WorkStealing && cfg.GPUDepth == 0 {
		t.Fatalf("installed stealing on a single-stage shape: %v", cfg)
	}
	if c.CurrentConfig() != cfg {
		t.Fatal("CurrentConfig disagrees with NextConfig")
	}
}

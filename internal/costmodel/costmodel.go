// Package costmodel implements DIDO's APU-aware cost model (paper §IV): the
// closed-form equations that estimate per-stage execution time for any
// pipeline configuration, and the exhaustive configuration search that picks
// the throughput-optimal plan.
//
// Equations (Table I notation):
//
//	Eq 1:  T^XPU_F  = N × (I^XPU_F / IPC^XPU + N^M_F·L^XPU_M + N^C_F·L^XPU_C)
//	Eq 2:  T^XPU_A  = Σ_F T^XPU_F × µ^XPU_{NC,NG}
//	Eq 3:  T^WS_A   = T^CPU_B + T^CPU_A (T^GPU_A − T^CPU_B) / (T^CPU_A + T^GPU_A)
//	Eq 4:  S = N / Tmax, with N chosen so Tmax ≤ I (periodic scheduling)
//
// This is the *planner*, deliberately simpler than the ground-truth simulator
// in internal/apu + internal/pipeline: it prices sequential streams at cache
// latency (perfect prefetch), ignores bandwidth saturation floors, computes
// the key-popularity cache-hit portion P analytically from Zipf's law instead
// of simulating an LRU, and reads µ from the calibrated interference table.
// Those simplifications are why its predictions carry a Fig 9-style error
// against the simulator.
package costmodel

import (
	"math"
	"time"

	"repro/internal/apu"
	"repro/internal/pipeline"
	"repro/internal/task"
	"repro/internal/zipf"
)

// Planner evaluates configurations for a platform.
type Planner struct {
	Platform apu.Platform
	// Mu is the calibrated interference table (§IV-A microbenchmark).
	Mu *apu.InterferenceTable
	// Interval is the periodic-scheduling bound I on per-stage time.
	Interval time.Duration
	// MinBatch/MaxBatch clamp the solved batch size.
	MinBatch, MaxBatch int
	// INSearchMLP, when > 1, models the wide batched IN(Search) executor: the
	// wave-structured SearchBatch keeps several independent bucket-line misses
	// in flight per core, so the task's random-access latency divides by an
	// effective memory-level-parallelism factor that ramps from 1 at the wide
	// path's engagement threshold up to INSearchMLP at large batches. Zero (or
	// ≤ 1) leaves the scalar single-miss-at-a-time pricing — the default, so
	// planners for the simulator's scalar executor are unchanged. The live
	// server sets DefaultINSearchMLP when the wide path is enabled.
	INSearchMLP float64
	// RVReaders, when ≥ 1, models the live ingestion tier: RV and PP run on
	// one reader goroutine per SO_REUSEPORT queue rather than on their
	// stage's worker group, so their time divides by the reader count
	// (capped by physical cores) regardless of the stage's core
	// assignment — 1 prices the single-socket frontend honestly, N > 1 the
	// sharded tier. 0 (the default) keeps stage-group pricing, which is
	// what the simulator's executor actually does with RV/PP.
	RVReaders int

	// phpCache memoizes CacheHitPortion per workload shape: the Zipf
	// harmonic sums are the single most expensive part of evaluating the
	// whole configuration space, and every task of every config shares them.
	phpCache map[phpKey]float64
}

type phpKey struct {
	pop            uint64
	keySz, valSz   float64
	skew, cacheKiB float64
}

// DefaultINSearchMLP is the effective memory-level parallelism the wide
// batched search reaches at large batches: out-of-order cores sustain a
// handful of independent cache misses in flight (~4 across common cores once
// address-generation and load-buffer limits are paid), which is also about
// the speedup the batched-probe hash-join literature reports for
// software-pipelined probes.
const DefaultINSearchMLP = 4

// inSearchMemDiv returns the divisor applied to a CPU task's random-access
// latency term: >1 only for IN(Search) when the batched executor is modeled
// (INSearchMLP set) and the batch is wide enough to engage it. The ramp is
// logarithmic in batch size — each doubling past the engagement threshold
// buys a deeper steady-state miss pipeline — reaching full INSearchMLP four
// octaves in (n ≥ 16× the threshold, i.e. 512 at the default).
func (pl *Planner) inSearchMemDiv(id task.ID, n int) float64 {
	m := pl.INSearchMLP
	if m <= 1 || id != task.INSearch || n < pipeline.DefaultWideMinGets {
		return 1
	}
	ramp := math.Log2(float64(n)/float64(pipeline.DefaultWideMinGets)) / 4
	if ramp > 1 {
		ramp = 1
	}
	return 1 + (m-1)*ramp
}

// NewPlanner returns a planner with the µ table calibrated against a
// noise-free model of p.
func NewPlanner(p apu.Platform, interval time.Duration) *Planner {
	model := apu.NewModel(p, 0, 1)
	return &Planner{
		Platform: p,
		Mu:       apu.CalibrateInterference(model, 16),
		Interval: interval,
		MinBatch: 64,
		MaxBatch: 1 << 17,
	}
}

// Prediction is the cost model's estimate for one configuration.
type Prediction struct {
	Config pipeline.Config
	// Batch is the solved batch size N with Tmax ≤ I.
	Batch int
	// StageTimes are the predicted per-stage durations at Batch.
	StageTimes [3]time.Duration
	// Tmax is the predicted bottleneck time.
	Tmax time.Duration
	// ThroughputOPS is Eq 4's S = N / Tmax in queries/sec.
	ThroughputOPS float64
}

// CacheHitPortion computes P analytically (§IV-B "key popularity"): the
// cache holds the n' most popular objects; under Zipf's law the portion of
// accesses they absorb is Σ_{i≤n'} f_i / Σ_j f_j.
func (pl *Planner) CacheHitPortion(prof task.Profile) float64 {
	if prof.Skew <= 0 || prof.Population == 0 {
		return 0
	}
	objBytes := prof.KeySize + prof.ValueSize + 32
	if objBytes <= 0 {
		return 0
	}
	key := phpKey{
		pop: prof.Population, keySz: prof.KeySize, valSz: prof.ValueSize,
		skew: prof.Skew, cacheKiB: float64(pl.Platform.CPU.CacheBytes) / 1024,
	}
	if v, ok := pl.phpCache[key]; ok {
		return v
	}
	cached := uint64(float64(pl.Platform.CPU.CacheBytes) / objBytes)
	v := zipf.TopPortion(prof.Population, cached, prof.Skew)
	if pl.phpCache == nil {
		pl.phpCache = make(map[phpKey]float64)
	}
	pl.phpCache[key] = v
	return v
}

// taskTime prices one task by Eq 1 on the given device.
func (pl *Planner) taskTime(id task.ID, prof task.Profile, cfg pipeline.Config, n int) time.Duration {
	stage := cfg.StageOf(id)
	dev := stage.Device()
	place := cfg.Placement(id)
	if place.OnCPU {
		place.WithAffinityPartner = cfg.Placement(id).WithAffinityPartner
	}
	p := prof
	p.N = n
	p.CacheHitPortion = 0
	if place.OnCPU {
		p.CacheHitPortion = pl.CacheHitPortion(prof)
	}
	d := task.ForTask(id, p, place)
	if d.Queries == 0 {
		return 0
	}

	// RV, SD and LG are estimated from profiled unit costs (§IV-B) plus the
	// frame bytes they stream through the memory system. LG (the durability
	// tier's WAL append) joins this branch because its dominant cost —
	// write syscall plus the amortized share of a group-commit fsync — is
	// only knowable by measurement; the live pipeline times the commit at
	// each batch boundary and feeds LGUnitNanos back through the profile.
	if id == task.RV || id == task.SD || id == task.LG {
		spec := pl.Platform.CPU
		cores := cfg.CoresFor(stage, spec.Cores)
		if cores < 1 {
			cores = 1
		}
		if id == task.RV {
			cores = pl.readerCores(cores)
		}
		unit := p.RVUnitNanos
		switch id {
		case task.SD:
			unit = p.SDUnitNanos
		case task.LG:
			unit = p.LGUnitNanos
		}
		seqLine := spec.PrefetchHitRate*spec.CacheLatency.Seconds() +
			(1-spec.PrefetchHitRate)*spec.MemLatency.Seconds()
		per := unit*1e-9 + d.SeqBytes/float64(spec.CacheLineBytes)*seqLine
		return time.Duration(per * float64(d.Queries) / float64(cores) * float64(time.Second))
	}

	if dev == apu.CPU {
		spec := pl.Platform.CPU
		cores := cfg.CoresFor(stage, spec.Cores)
		if cores < 1 {
			cores = 1
		}
		if id == task.PP {
			// Parse runs on the ingestion readers (one per queue), like RV.
			cores = pl.readerCores(cores)
		}
		// Sequential lines are served at the prefetcher's measured hit mix
		// (a calibrated constant, like the paper's microbenchmarked unit
		// costs).
		seqLine := spec.PrefetchHitRate*spec.CacheLatency.Seconds() +
			(1-spec.PrefetchHitRate)*spec.MemLatency.Seconds()
		per := d.Instr/spec.IPC*spec.CycleTime().Seconds() +
			d.MemAccesses*spec.MemLatency.Seconds()/pl.inSearchMemDiv(id, n) +
			d.CacheAccesses*spec.CacheLatency.Seconds() +
			d.SeqBytes/float64(spec.CacheLineBytes)*seqLine
		return time.Duration(per * float64(d.Queries) / float64(cores) * float64(time.Second))
	}

	spec := pl.Platform.GPU
	width := spec.LanesPerCore
	waves := (d.Queries + width - 1) / width
	wavesPerCU := (waves + spec.Cores - 1) / spec.Cores
	resident := wavesPerCU
	if resident > spec.MaxWavesInFlight {
		resident = spec.MaxWavesInFlight
	}
	if resident < 1 {
		resident = 1
	}
	randLat := spec.MemLatency.Seconds() / float64(resident)
	// The memory system's random line rate bounds effective access latency
	// across the GPU's whole lane population (shared with the simulator's
	// floor; it is linear in N so Eq 1's form is preserved).
	if rps := pl.Platform.Memory.GPURandomAccessesPerSec; rps > 0 {
		lanes := float64(cusOrCores(spec, wavesPerCU))
		if perAccess := lanes / rps; perAccess > randLat {
			randLat = perAccess
		}
	}
	perWave := d.Instr/spec.IPC*spec.CycleTime().Seconds() +
		d.MemAccesses*randLat +
		d.CacheAccesses*spec.CacheLatency.Seconds() +
		d.SeqBytes/float64(spec.CacheLineBytes)*spec.MemLatency.Seconds()/float64(resident)
	// CAS/divergence serialization of update kernels (Fig 6's mechanism).
	serial := d.GPUSerialFrac * d.MemAccesses * float64(d.Queries) * spec.MemLatency.Seconds()
	return time.Duration((float64(wavesPerCU)*perWave + serial + spec.KernelLaunch.Seconds()) * float64(time.Second))
}

// readerCores is the parallelism RV and PP actually run at: the ingestion
// reader count when the tier is sharded (each REUSEPORT queue drives its own
// RV+PP goroutine), capped by physical cores; otherwise the stage's core
// assignment, unchanged.
func (pl *Planner) readerCores(stageCores int) int {
	if pl.RVReaders < 1 {
		return stageCores
	}
	if pl.RVReaders > pl.Platform.CPU.Cores {
		return pl.Platform.CPU.Cores
	}
	return pl.RVReaders
}

// bytesTouched estimates the memory traffic of one task for bandwidth
// accounting.
func (pl *Planner) bytesTouched(id task.ID, prof task.Profile, cfg pipeline.Config, n int) float64 {
	p := prof
	p.N = n
	place := cfg.Placement(id)
	if place.OnCPU {
		p.CacheHitPortion = pl.CacheHitPortion(prof)
	}
	d := task.ForTask(id, p, place)
	line := float64(pl.Platform.CPU.CacheLineBytes)
	return (d.MemAccesses*line + d.SeqBytes) * float64(d.Queries)
}

// stageTimes prices all three stages at batch size n, applying Eq 2's µ via
// a busy-overlap-weighted fixed point: each device sees the other's
// instantaneous bandwidth (bytes over busy time, GPU atomics weighted by
// the shared AtomicInterferenceWeight) scaled by the overlap fraction.
func (pl *Planner) stageTimes(cfg pipeline.Config, prof task.Profile, n int) [3]time.Duration {
	var base [3]time.Duration
	var bytes [3]float64
	var gpuAtomics float64
	for s := pipeline.StageCPUPre; s <= pipeline.StageCPUPost; s++ {
		for _, id := range cfg.Tasks(s) {
			base[s] += pl.taskTime(id, prof, cfg, n)
			bytes[s] += pl.bytesTouched(id, prof, cfg, n)
			if s == pipeline.StageGPU {
				p := prof
				p.N = n
				if d := task.ForTask(id, p, cfg.Placement(id)); d.GPUSerialFrac > 0 {
					gpuAtomics += d.MemAccesses * float64(d.Queries)
				}
			}
		}
	}
	out := base
	for iter := 0; iter < 2; iter++ {
		tmax := maxDur(out[:])
		if tmax <= 0 {
			break
		}
		gpuBusy := out[pipeline.StageGPU]
		cpuBusy := out[pipeline.StageCPUPre] + out[pipeline.StageCPUPost]
		var gpuInstBW, cpuInstBW float64
		if gpuBusy > 0 {
			gpuInstBW = bytes[pipeline.StageGPU] / gpuBusy.Seconds()
		}
		if cpuBusy > 0 {
			cpuInstBW = (bytes[pipeline.StageCPUPre] + bytes[pipeline.StageCPUPost]) / cpuBusy.Seconds()
		}
		overlapOnCPU := clampFrac(float64(gpuBusy) / float64(tmax))
		overlapOnGPU := clampFrac(float64(cpuBusy) / float64(tmax))
		muCPU := 1 + (pl.Mu.Lookup(apu.CPU, cpuInstBW, gpuInstBW)-1)*overlapOnCPU
		muCPU += atomicDisruption(gpuAtomics, tmax)
		muGPU := 1 + (pl.Mu.Lookup(apu.GPU, cpuInstBW, gpuInstBW)-1)*overlapOnGPU
		out[pipeline.StageCPUPre] = time.Duration(float64(base[pipeline.StageCPUPre]) * muCPU)
		out[pipeline.StageCPUPost] = time.Duration(float64(base[pipeline.StageCPUPost]) * muCPU)
		out[pipeline.StageGPU] = time.Duration(float64(base[pipeline.StageGPU]) * muGPU)
	}
	if cfg.WorkStealing {
		pl.applyStealing(cfg, prof, n, &out)
	}
	return out
}

// atomicDisruption converts GPU atomic counts into the additive CPU-side µ
// term (shared constant with the simulator).
func atomicDisruption(atomics float64, tmax time.Duration) float64 {
	if atomics <= 0 || tmax <= 0 {
		return 0
	}
	rate := atomics / tmax.Seconds()
	const maxAtomicRate = 3.1e6 // bounded by the GPU's own CAS serialization
	if rate > maxAtomicRate {
		rate = maxAtomicRate
	}
	return rate * pipeline.AtomicDisruptionNanos * 1e-9
}

func clampFrac(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// applyStealing applies Eq 3 to the bottleneck stage. T^CPU_A (the
// bottleneck's stealable work priced on the helper) and T^CPU_B (the helper's
// own load) follow the paper's formulation; only stealable tasks move.
func (pl *Planner) applyStealing(cfg pipeline.Config, prof task.Profile, n int, out *[3]time.Duration) {
	if cfg.GPUDepth == 0 {
		return
	}
	bi := pipeline.StageCPUPre
	for s := pipeline.StageGPU; s <= pipeline.StageCPUPost; s++ {
		if out[s] > out[bi] {
			bi = s
		}
	}
	bDev := bi.Device()
	helperDev := apu.CPU
	if bDev == apu.CPU {
		helperDev = apu.GPU
	}
	var helperBusy time.Duration
	var helperStage pipeline.Stage
	found := false
	for s := pipeline.StageCPUPre; s <= pipeline.StageCPUPost; s++ {
		if s.Device() == helperDev && len(cfg.Tasks(s)) > 0 {
			helperBusy += out[s]
			if !found {
				helperStage = s
				found = true
			}
		}
	}
	if !found && helperDev == apu.GPU {
		return // no GPU presence to steal with
	}
	if helperBusy >= out[bi] {
		return
	}
	// Price the bottleneck's stealable work on both devices.
	var ownSteal, pinned, helperSteal time.Duration
	cfgOther := cfg // same placement flags; device pricing differs via taskTime's stage
	for _, id := range cfg.Tasks(bi) {
		tOwn := pl.taskTime(id, prof, cfg, n)
		if !stealable(id, helperDev) {
			pinned += tOwn
			continue
		}
		ownSteal += tOwn
		helperSteal += pl.taskTimeOnDevice(id, prof, cfgOther, n, helperDev)
	}
	if ownSteal <= 0 {
		return
	}
	// Eq 3 generalized: the stealable pool is divisible work the owner chews
	// from time `pinned` and the helper from time helperBusy; both finish at
	// the closed-form completion time t. (With pinned = 0 this reduces
	// exactly to the paper's T^WS_A = T^CPU_B + T^CPU_A(T^GPU_A − T^CPU_B) /
	// (T^CPU_A + T^GPU_A).)
	t := closeForm(pinned, ownSteal, helperBusy, helperSteal)
	if t < out[bi] {
		stolenShare := 0.0
		if helperSteal > 0 && t > helperBusy {
			stolenShare = float64(t-helperBusy) / float64(helperSteal)
		}
		out[bi] = t
		if found {
			out[helperStage] += time.Duration(stolenShare * float64(helperSteal))
		}
	}
}

// closeForm solves for the completion time t of a divisible stealable pool:
// the owner works on it from time `pinned` at rate 1/ownDur, the helper from
// time helperReady at rate 1/helperDur. Durations are the full-pool times.
func closeForm(pinned, ownDur, helperReady, helperDur time.Duration) time.Duration {
	if helperDur <= 0 {
		return pinned + ownDur
	}
	po, pr := float64(pinned), float64(helperReady)
	co, ch := float64(ownDur), float64(helperDur)
	// fraction done by owner by time t: (t-po)/co; by helper: (t-pr)/ch.
	// (t-po)/co + (t-pr)/ch = 1  →  t = (1 + po/co + pr/ch) / (1/co + 1/ch)
	t := (1 + po/co + pr/ch) / (1/co + 1/ch)
	// If the helper would start after the owner already finished, no steal.
	if t < pr {
		t = po + co
	}
	if t > po+co {
		t = po + co
	}
	return time.Duration(t)
}

// taskTimeOnDevice prices task id as if it ran on dev (for stealing).
func (pl *Planner) taskTimeOnDevice(id task.ID, prof task.Profile, cfg pipeline.Config, n int, dev apu.Kind) time.Duration {
	// Build a config where the task's stage maps to dev by flipping GPUDepth
	// boundaries is awkward; price directly instead.
	p := prof
	p.N = n
	place := cfg.Placement(id)
	place.OnCPU = dev == apu.CPU
	if place.OnCPU {
		p.CacheHitPortion = pl.CacheHitPortion(prof)
	} else {
		p.CacheHitPortion = 0
	}
	d := task.ForTask(id, p, place)
	if d.Queries == 0 {
		return 0
	}
	if dev == apu.CPU {
		spec := pl.Platform.CPU
		// Stealing CPUs use the less-loaded stage's cores; approximate with
		// half the cores.
		cores := spec.Cores / 2
		if cores < 1 {
			cores = 1
		}
		seqLine := spec.PrefetchHitRate*spec.CacheLatency.Seconds() +
			(1-spec.PrefetchHitRate)*spec.MemLatency.Seconds()
		per := d.Instr/spec.IPC*spec.CycleTime().Seconds() +
			d.MemAccesses*spec.MemLatency.Seconds()/pl.inSearchMemDiv(id, n) +
			d.CacheAccesses*spec.CacheLatency.Seconds() +
			d.SeqBytes/float64(spec.CacheLineBytes)*seqLine
		return time.Duration(per * float64(d.Queries) / float64(cores) * float64(time.Second))
	}
	spec := pl.Platform.GPU
	width := spec.LanesPerCore
	waves := (d.Queries + width - 1) / width
	wavesPerCU := (waves + spec.Cores - 1) / spec.Cores
	resident := min(wavesPerCU, spec.MaxWavesInFlight)
	if resident < 1 {
		resident = 1
	}
	randLat := spec.MemLatency.Seconds() / float64(resident)
	// The memory system's random line rate bounds effective access latency
	// across the GPU's whole lane population (shared with the simulator's
	// floor; it is linear in N so Eq 1's form is preserved).
	if rps := pl.Platform.Memory.GPURandomAccessesPerSec; rps > 0 {
		lanes := float64(cusOrCores(spec, wavesPerCU))
		if perAccess := lanes / rps; perAccess > randLat {
			randLat = perAccess
		}
	}
	perWave := d.Instr/spec.IPC*spec.CycleTime().Seconds() +
		d.MemAccesses*randLat +
		d.CacheAccesses*spec.CacheLatency.Seconds() +
		d.SeqBytes/float64(spec.CacheLineBytes)*spec.MemLatency.Seconds()/float64(resident)
	// CAS/divergence serialization of update kernels (Fig 6's mechanism).
	serial := d.GPUSerialFrac * d.MemAccesses * float64(d.Queries) * spec.MemLatency.Seconds()
	return time.Duration((float64(wavesPerCU)*perWave + serial + spec.KernelLaunch.Seconds()) * float64(time.Second))
}

// cusOrCores returns how many lanes concurrently issue per wave step: the
// wavefront width times the CUs that are actually occupied.
func cusOrCores(spec apu.DeviceSpec, wavesPerCU int) int {
	cus := spec.Cores
	if wavesPerCU == 0 {
		cus = 1
	}
	return cus * spec.LanesPerCore
}

func stealable(id task.ID, helperDev apu.Kind) bool {
	switch id {
	case task.INSearch, task.INInsert, task.INDelete, task.KC, task.RD:
		return true
	case task.WR:
		// Response building stays off the GPU (NIC-adjacent buffers).
		return helperDev == apu.CPU
	default:
		return false
	}
}

// EvaluateConfig solves the batch size for cfg under the latency interval and
// returns the prediction (Eq 4).
func (pl *Planner) EvaluateConfig(cfg pipeline.Config, prof task.Profile) Prediction {
	// Stage times are ≈ affine in N; fit from two probes, solve Tmax(N) = I.
	n1, n2 := 1024, 4096
	t1 := pl.stageTimes(cfg, prof, n1)
	t2 := pl.stageTimes(cfg, prof, n2)
	best := pl.MaxBatch
	for s := 0; s < 3; s++ {
		slope := float64(t2[s]-t1[s]) / float64(n2-n1)
		if slope <= 0 {
			continue
		}
		intercept := float64(t1[s]) - slope*float64(n1)
		nCap := int((float64(pl.Interval) - intercept) / slope)
		if nCap < best {
			best = nCap
		}
	}
	if best < pl.MinBatch {
		best = pl.MinBatch
	}
	if best > pl.MaxBatch {
		best = pl.MaxBatch
	}
	times := pl.stageTimes(cfg, prof, best)
	p := Prediction{Config: cfg, Batch: best, StageTimes: times, Tmax: maxDur(times[:])}
	if p.Tmax > 0 {
		p.ThroughputOPS = float64(best) / p.Tmax.Seconds()
	}
	return p
}

// Best searches the entire configuration space (§IV-B) and returns the
// highest-throughput prediction plus every evaluated candidate (for the
// Fig 10 best/worst comparison).
func (pl *Planner) Best(prof task.Profile) (Prediction, []Prediction) {
	return pl.BestFiltered(prof, nil)
}

// BestFiltered is Best restricted to configurations accepted by keep (nil
// keeps everything). The ablation experiments use filters to switch off
// individual DIDO techniques: e.g. pinning the pipeline shape to Mega-KV's
// isolates flexible index assignment (Fig 13), forcing index ops to the GPU
// isolates dynamic partitioning (Fig 14).
func (pl *Planner) BestFiltered(prof task.Profile, keep func(pipeline.Config) bool) (Prediction, []Prediction) {
	configs := pipeline.Enumerate(pl.Platform.CPU.Cores)
	preds := make([]Prediction, 0, len(configs))
	var best Prediction
	for _, cfg := range configs {
		if keep != nil && !keep(cfg) {
			continue
		}
		p := pl.EvaluateConfig(cfg, prof)
		preds = append(preds, p)
		if p.ThroughputOPS > best.ThroughputOPS {
			best = p
		}
	}
	return best, preds
}

func maxDur(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package costmodel

import (
	"testing"
	"time"

	"repro/internal/apu"
	"repro/internal/pipeline"
	"repro/internal/task"
)

func newPlanner() *Planner {
	return NewPlanner(apu.KaveriPlatform(), 300*time.Microsecond)
}

func profileFor(keySize, valSize float64, getRatio, skew float64) task.Profile {
	return task.Profile{
		N:                8192,
		GetRatio:         getRatio,
		KeySize:          keySize,
		ValueSize:        valSize,
		Skew:             skew,
		Population:       1 << 20,
		EvictionRate:     1,
		AvgInsertBuckets: 2,
		SearchProbes:     1.5,
		WireQueryBytes:   keySize + 12,
		RVInstr:          15,
		SDInstr:          15,
		RVUnitNanos:      4,
		SDUnitNanos:      4,
	}
}

// searchShapes mirrors DIDO's planning discipline: the shape search excludes
// work-stealing variants (stealing is layered on afterwards, §V-D3).
func searchShapes(pl *Planner, prof task.Profile) (Prediction, []Prediction) {
	return pl.BestFiltered(prof, func(c pipeline.Config) bool { return !c.WorkStealing })
}

func TestCacheHitPortion(t *testing.T) {
	pl := newPlanner()
	uniform := profileFor(16, 64, 0.95, 0)
	if got := pl.CacheHitPortion(uniform); got != 0 {
		t.Fatalf("uniform P = %v, want 0", got)
	}
	skewed := profileFor(16, 64, 0.95, 0.99)
	p := pl.CacheHitPortion(skewed)
	if p <= 0.1 || p >= 1 {
		t.Fatalf("skewed P = %v, want in (0.1, 1)", p)
	}
	// Bigger objects → fewer cached → smaller P.
	big := profileFor(128, 1024, 0.95, 0.99)
	if pb := pl.CacheHitPortion(big); pb >= p {
		t.Fatalf("large-object P %v should be < small-object P %v", pb, p)
	}
	// Degenerate population.
	empty := skewed
	empty.Population = 0
	if pl.CacheHitPortion(empty) != 0 {
		t.Fatal("zero population should give P=0")
	}
}

func TestEvaluateConfigSolvesBatchWithinInterval(t *testing.T) {
	pl := newPlanner()
	prof := profileFor(16, 64, 0.95, 0)
	pred := pl.EvaluateConfig(pipeline.MegaKV(), prof)
	if pred.Batch < pl.MinBatch || pred.Batch > pl.MaxBatch {
		t.Fatalf("batch = %d outside clamps", pred.Batch)
	}
	if pred.Tmax <= 0 || pred.ThroughputOPS <= 0 {
		t.Fatalf("prediction = %+v", pred)
	}
	// The solved batch should put Tmax within ~25% of the interval (affine
	// fit error) unless clamped.
	if pred.Batch > pl.MinBatch && pred.Batch < pl.MaxBatch {
		ratio := float64(pred.Tmax) / float64(pl.Interval)
		if ratio < 0.5 || ratio > 1.5 {
			t.Fatalf("solved Tmax %v far from interval %v", pred.Tmax, pl.Interval)
		}
	}
}

func TestSmallerIntervalSmallerBatch(t *testing.T) {
	// Fig 19's mechanism: tighter latency → smaller batches → less GPU
	// efficiency.
	prof := profileFor(16, 64, 0.95, 0)
	plBig := NewPlanner(apu.KaveriPlatform(), 333*time.Microsecond)
	plSmall := NewPlanner(apu.KaveriPlatform(), 200*time.Microsecond)
	pBig := plBig.EvaluateConfig(pipeline.MegaKV(), prof)
	pSmall := plSmall.EvaluateConfig(pipeline.MegaKV(), prof)
	if pSmall.Batch >= pBig.Batch {
		t.Fatalf("smaller interval should solve smaller batch: %d vs %d", pSmall.Batch, pBig.Batch)
	}
}

func TestBestPrefersCPUIndexUpdatesForReadHeavy(t *testing.T) {
	// The paper's headline planning decision: for 95% GET workloads the
	// optimal config assigns Insert and Delete to the CPU (§V-C).
	pl := newPlanner()
	prof := profileFor(16, 64, 0.95, 0)
	best, all := searchShapes(pl, prof)
	if len(all) == 0 || len(all) >= len(pipeline.Enumerate(4)) {
		t.Fatalf("evaluated %d configs", len(all))
	}
	if best.Config.GPUDepth == 0 {
		t.Fatal("best config should use the GPU for a read-heavy workload")
	}
	if best.Config.InsertOn != apu.CPU || best.Config.DeleteOn != apu.CPU {
		t.Fatalf("best config should put index updates on the CPU: %v", best.Config)
	}
}

func TestBestDeepensGPUChainForSmallKV(t *testing.T) {
	// For small key-value read-heavy workloads the paper's DIDO moves KC and
	// RD onto the GPU ([IN,KC,RD]GPU, §V-C "Impact of Key-Value Size").
	pl := newPlanner()
	prof := profileFor(8, 8, 0.95, 0)
	best, _ := searchShapes(pl, prof)
	if best.Config.GPUDepth < 2 {
		t.Fatalf("small-KV best config should deepen the GPU chain: %v", best.Config)
	}
}

func TestBestShallowForLargeKV(t *testing.T) {
	// For large key-value workloads DIDO keeps Mega-KV's shape for "almost
	// all" of them (§V-C): the CPU prefetches large objects well, so moving
	// RD to the GPU gains little. In our model the shallow and deep shapes
	// are a near-tie for K128 — assert the paper's shallow choice is within
	// 5% of the argmax (instead of forcing the argmax itself), and that the
	// big-gap deep shapes (WR on GPU) clearly lose.
	pl := newPlanner()
	prof := profileFor(128, 1024, 0.95, 0)
	best, all := searchShapes(pl, prof)
	shallowBest := 0.0
	deepestWorst := best.ThroughputOPS
	for _, p := range all {
		if p.Config.GPUDepth <= 1 && p.ThroughputOPS > shallowBest {
			shallowBest = p.ThroughputOPS
		}
		if p.Config.GPUDepth == 4 && p.ThroughputOPS < deepestWorst {
			deepestWorst = p.ThroughputOPS
		}
	}
	if shallowBest < 0.95*best.ThroughputOPS {
		t.Fatalf("shallow shape (%v OPS) should be near-optimal for K128 (best %v OPS)",
			shallowBest, best.ThroughputOPS)
	}
	if deepestWorst > 0.8*best.ThroughputOPS {
		t.Fatalf("full-depth GPU shape should clearly lose on K128: %v vs best %v",
			deepestWorst, best.ThroughputOPS)
	}
}

func TestStealingNeverHurtsPrediction(t *testing.T) {
	pl := newPlanner()
	for _, prof := range []task.Profile{
		profileFor(8, 8, 1, 0),
		profileFor(16, 64, 0.95, 0.99),
		profileFor(128, 1024, 0.5, 0),
	} {
		for _, depth := range []int{1, 3} {
			base := pipeline.Config{GPUDepth: depth, InsertOn: apu.CPU, DeleteOn: apu.CPU, CPUCoresPre: 2}
			ws := base
			ws.WorkStealing = true
			pb := pl.EvaluateConfig(base, prof)
			pw := pl.EvaluateConfig(ws, prof)
			if pw.ThroughputOPS < pb.ThroughputOPS*0.95 {
				t.Fatalf("stealing hurt prediction: %v vs %v (depth %d)", pw.ThroughputOPS, pb.ThroughputOPS, depth)
			}
		}
	}
}

func TestPredictionsDifferAcrossConfigs(t *testing.T) {
	// Fig 10's error bars: the config space spans a wide throughput range —
	// a poor configuration can be an order of magnitude slower.
	pl := newPlanner()
	prof := profileFor(16, 64, 0.95, 0)
	best, all := pl.Best(prof)
	worst := best
	for _, p := range all {
		if p.ThroughputOPS > 0 && p.ThroughputOPS < worst.ThroughputOPS {
			worst = p
		}
	}
	if best.ThroughputOPS/worst.ThroughputOPS < 2 {
		t.Fatalf("config space too flat: best %v worst %v", best.ThroughputOPS, worst.ThroughputOPS)
	}
}

func TestCloseForm(t *testing.T) {
	// Helper never ready before owner finishes → owner does it all.
	if got := closeForm(0, 100, 200, 100); got != 100 {
		t.Fatalf("no-help case = %v", got)
	}
	// Zero-cost helper → clamp to owner-only time at most.
	if got := closeForm(0, 100, 0, 0); got != 100 {
		t.Fatalf("zero helper = %v", got)
	}
	// Symmetric helpers starting together halve the time.
	if got := closeForm(0, 100, 0, 100); got != 50 {
		t.Fatalf("symmetric = %v, want 50", got)
	}
	// Paper Eq 3 equivalence: pinned=0, owner=GPU(T_A^GPU), helper ready at
	// T_B^CPU with rate T_A^CPU. T = (1 + tB/tACPU)/(1/tAGPU + 1/tACPU).
	tAGPU, tACPU, tB := 300.0, 600.0, 100.0
	want := (1 + tB/tACPU) / (1/tAGPU + 1/tACPU)
	got := closeForm(0, time.Duration(tAGPU), time.Duration(tB), time.Duration(tACPU))
	if diff := float64(got) - want; diff > 1 || diff < -1 {
		t.Fatalf("Eq3 form = %v, want %v", got, want)
	}
}

func TestPlannerDeterminism(t *testing.T) {
	prof := profileFor(32, 256, 0.95, 0.99)
	p1, _ := newPlanner().Best(prof)
	p2, _ := newPlanner().Best(prof)
	if p1.Config != p2.Config || p1.Batch != p2.Batch {
		t.Fatal("planner not deterministic")
	}
}

func TestWriteHeavyFavorsCPUIndexUpdates(t *testing.T) {
	// Fig 13's setting: pin the pipeline to Mega-KV's shape and compare
	// index-update placements. At 50% GET the CPU placement should win
	// modestly (paper: +10%), at 95% GET strongly (paper: +56%) — even
	// though stage 1 becomes the bottleneck once it hosts the updates
	// (§V-D1).
	pl := newPlanner()
	for _, tc := range []struct {
		getRatio float64
		minGain  float64
	}{
		// At 50% GET the planner rates the two placements near-neutral (the
		// paper measures +10% on ground truth); at 95% GET the gain is large.
		{0.5, 0.95},
		{0.95, 1.15},
	} {
		prof := profileFor(16, 64, tc.getRatio, 0)
		gpuUpd := pipeline.Config{GPUDepth: 1, InsertOn: apu.GPU, DeleteOn: apu.GPU, CPUCoresPre: 2}
		cpuUpd := pipeline.Config{GPUDepth: 1, InsertOn: apu.CPU, DeleteOn: apu.CPU, CPUCoresPre: 2}
		pg := pl.EvaluateConfig(gpuUpd, prof)
		pc := pl.EvaluateConfig(cpuUpd, prof)
		gain := pc.ThroughputOPS / pg.ThroughputOPS
		if gain < tc.minGain {
			t.Fatalf("G%.0f: CPU updates gain %.3fx, want >= %.2fx", tc.getRatio*100, gain, tc.minGain)
		}
	}
}

package costmodel

import "repro/internal/task"

// Reader-parallelism sizing: how many SO_REUSEPORT ingestion queues the
// server should actually open. Unlike every other placement decision the
// controller makes, this one cannot be revisited per batch — the kernel
// keeps hashing datagrams to every REUSEPORT socket whether or not anyone
// reads it, so a queue parked after the fact would strand its flows. The
// count is therefore sized once, at startup, by the same cost model that
// places every other task: price the pipeline at k readers and keep adding
// one while predicted throughput still improves by a real margin.

// DefaultReaderBenefitThreshold is the minimum predicted throughput gain
// (fractional) an additional ingestion reader must buy before it is opened
// — the same 5% bar maybeSteal applies before adopting a work-stealing
// variant, for the same reason: model error around a flat optimum should
// not flap a structural decision.
const DefaultReaderBenefitThreshold = 0.05

// DefaultIngestProfile is the workload shape SizeReaders prices before any
// measurement exists: the standard small-key read-heavy mix, with the
// receive/send path assumed saturated (unit costs at the high end of what
// the live profiler measures for per-frame socket work). That is the only
// regime where extra ingestion queues can pay for themselves — if the model
// gates readers off even here, they would never help.
func DefaultIngestProfile() task.Profile {
	return task.Profile{
		GetRatio:         0.95,
		KeySize:          16,
		ValueSize:        64,
		Population:       1 << 20,
		EvictionRate:     1,
		SearchProbes:     1.5,
		AvgInsertBuckets: 1.5,
		WireQueryBytes:   32,
		RVInstr:          15,
		SDInstr:          15,
		RVUnitNanos:      500,
		SDUnitNanos:      120,
	}
}

// SizeReaders picks the effective ingestion reader (queue) count for a host
// with hostCores schedulable CPUs and a requested maximum of maxQueues.
// Readers beyond hostCores−1 cannot run beside a single stage worker and
// are refused outright (a 1-CPU host always gets 1 — the reader would just
// time-slice against the pipeline it feeds). Within that cap, the planner
// prices the whole pipeline at k and k+1 readers (RV/PP divided by the
// reader count, everything else as usual) and stops at the first step that
// fails the benefit threshold. The planner's RVReaders field is restored on
// return; the caller assigns the chosen count itself.
func (pl *Planner) SizeReaders(prof task.Profile, hostCores, maxQueues int) int {
	if maxQueues < 1 {
		maxQueues = 1
	}
	if limit := hostCores - 1; maxQueues > limit {
		maxQueues = limit
	}
	if maxQueues <= 1 {
		return 1
	}
	saved := pl.RVReaders
	defer func() { pl.RVReaders = saved }()
	throughput := func(k int) float64 {
		pl.RVReaders = k
		best, _ := pl.Best(prof)
		return best.ThroughputOPS
	}
	k := 1
	cur := throughput(1)
	for k < maxQueues {
		next := throughput(k + 1)
		if next < cur*(1+DefaultReaderBenefitThreshold) {
			break
		}
		cur = next
		k++
	}
	return k
}

package apu

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestKaveriPlatformShape(t *testing.T) {
	p := KaveriPlatform()
	if p.CPU.Cores != 4 || p.GPU.Cores != 8 || p.GPU.LanesPerCore != 64 {
		t.Fatalf("Kaveri core counts wrong: %+v", p)
	}
	if p.CPU.ClockHz != 3.7e9 || p.GPU.ClockHz != 720e6 {
		t.Fatal("Kaveri clocks wrong")
	}
	if p.Memory.TotalBytes != 1908<<20 {
		t.Fatal("shared memory size should be 1908 MB per paper §V-A")
	}
	if p.GPU.WavefrontWidth() != 64 || p.CPU.WavefrontWidth() != 1 {
		t.Fatal("wavefront widths wrong")
	}
	if p.GPU.TotalLanes() != 512 {
		t.Fatalf("GPU lanes = %d, want 512", p.GPU.TotalLanes())
	}
}

func TestCycleTime(t *testing.T) {
	d := DeviceSpec{ClockHz: 1e9}
	if got := d.CycleTime(); got != time.Nanosecond {
		t.Fatalf("cycle = %v, want 1ns", got)
	}
}

func TestCPUTimeScalesWithBatch(t *testing.T) {
	m := NewModel(KaveriPlatform(), 0, 1)
	w := Work{N: 1000, InstrPerQuery: 100, MemAccessesPerQuery: 2}
	t1 := m.TaskTime(CPU, w, 0)
	w.N = 2000
	t2 := m.TaskTime(CPU, w, 0)
	ratio := float64(t2) / float64(t1)
	if math.Abs(ratio-2) > 0.01 {
		t.Fatalf("CPU time should scale linearly with N: ratio %v", ratio)
	}
}

func TestCPUParallelismSpeedsUp(t *testing.T) {
	m := NewModel(KaveriPlatform(), 0, 1)
	w := Work{N: 1000, InstrPerQuery: 100, MemAccessesPerQuery: 2, Parallelism: 1}
	t1 := m.TaskTime(CPU, w, 0)
	w.Parallelism = 4
	t4 := m.TaskTime(CPU, w, 0)
	if float64(t1)/float64(t4) < 3.9 {
		t.Fatalf("4 cores should be ~4x faster: %v vs %v", t1, t4)
	}
	// Parallelism beyond device cores clamps.
	w.Parallelism = 100
	tBig := m.TaskTime(CPU, w, 0)
	if tBig != t4 {
		t.Fatalf("overclaimed parallelism should clamp: %v vs %v", tBig, t4)
	}
}

func TestGPUSmallBatchInefficiency(t *testing.T) {
	// Fig 6's mechanism: per-op cost on tiny batches far exceeds large ones.
	m := NewModel(KaveriPlatform(), 0, 1)
	w := Work{InstrPerQuery: 50, MemAccessesPerQuery: 3}
	w.N = 64
	perOpSmall := m.TaskTime(GPU, w, 0).Seconds() / 64
	w.N = 40960
	perOpBig := m.TaskTime(GPU, w, 0).Seconds() / 40960
	if perOpSmall < 5*perOpBig {
		t.Fatalf("small batch per-op %v should be >>5x large-batch %v", perOpSmall, perOpBig)
	}
	// And the efficiency helper agrees.
	w.N = 64
	effSmall := m.GPUEfficiency(w)
	w.N = 40960
	effBig := m.GPUEfficiency(w)
	if effSmall >= effBig {
		t.Fatalf("efficiency should grow with batch: %v vs %v", effSmall, effBig)
	}
	if effBig < 0.5 || effBig > 1 {
		t.Fatalf("large-batch efficiency = %v, want near 1", effBig)
	}
}

func TestGPULatencyHidingBeatsCPUOnRandomAccessAtScale(t *testing.T) {
	// The premise of Mega-KV: index operations (random-access heavy, light
	// compute) run faster on the GPU for large batches.
	m := NewModel(KaveriPlatform(), 0, 1)
	w := Work{N: 20000, InstrPerQuery: 60, MemAccessesPerQuery: 1.5}
	cpu := m.TaskTime(CPU, w, 0)
	gpu := m.TaskTime(GPU, w, 0)
	if gpu >= cpu {
		t.Fatalf("GPU (%v) should beat CPU (%v) on large random-access batches", gpu, cpu)
	}
}

func TestCPUBeatsGPUOnTinyBatches(t *testing.T) {
	m := NewModel(KaveriPlatform(), 0, 1)
	w := Work{N: 100, InstrPerQuery: 60, MemAccessesPerQuery: 1.5}
	cpu := m.TaskTime(CPU, w, 0)
	gpu := m.TaskTime(GPU, w, 0)
	if cpu >= gpu {
		t.Fatalf("CPU (%v) should beat GPU (%v) on tiny batches", cpu, gpu)
	}
}

func TestZeroWork(t *testing.T) {
	m := NewModel(KaveriPlatform(), 0, 1)
	if m.TaskTime(CPU, Work{}, 0) != 0 || m.TaskTime(GPU, Work{}, 0) != 0 {
		t.Fatal("zero work should take zero time")
	}
	if m.BandwidthDemand(CPU, Work{}) != 0 {
		t.Fatal("zero work should demand zero bandwidth")
	}
	if m.GPUEfficiency(Work{}) != 0 {
		t.Fatal("zero work efficiency should be 0")
	}
}

func TestInterferenceSlowsDown(t *testing.T) {
	m := NewModel(KaveriPlatform(), 0, 1)
	w := Work{N: 5000, InstrPerQuery: 100, MemAccessesPerQuery: 2}
	alone := m.TaskTime(CPU, w, 0)
	contended := m.TaskTime(CPU, w, 10e9)
	if contended <= alone {
		t.Fatalf("interference should slow the CPU: %v vs %v", contended, alone)
	}
}

func TestMuProperties(t *testing.T) {
	m := NewModel(KaveriPlatform(), 0, 1)
	if mu := m.Mu(CPU, 1e9, 0); mu != 1 {
		t.Fatalf("µ with idle other device = %v, want 1", mu)
	}
	// GPU hurts CPU more than CPU hurts GPU (paper cites [14]).
	muCPU := m.Mu(CPU, 5e9, 5e9)
	muGPU := m.Mu(GPU, 5e9, 5e9)
	if muCPU <= muGPU {
		t.Fatalf("µ asymmetry wrong: CPU %v should exceed GPU %v", muCPU, muGPU)
	}
	// Saturation kicks in past peak bandwidth.
	peak := m.Platform.Memory.BandwidthBytesPerSec
	if m.Mu(CPU, peak, peak) <= m.Mu(CPU, peak/4, peak/4) {
		t.Fatal("saturation should increase µ")
	}
	// Monotone in other-device traffic.
	f := func(a, b uint32) bool {
		bw1 := float64(a%100) * 1e8
		bw2 := bw1 + float64(b%100)*1e8
		return m.Mu(CPU, 1e9, bw2) >= m.Mu(CPU, 1e9, bw1)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseIsBoundedAndReproducible(t *testing.T) {
	w := Work{N: 1000, InstrPerQuery: 100, MemAccessesPerQuery: 2}
	base := NewModel(KaveriPlatform(), 0, 7).TaskTime(CPU, w, 0)
	m1 := NewModel(KaveriPlatform(), 0.05, 7)
	m2 := NewModel(KaveriPlatform(), 0.05, 7)
	for i := 0; i < 100; i++ {
		d1 := m1.TaskTime(CPU, w, 0)
		d2 := m2.TaskTime(CPU, w, 0)
		if d1 != d2 {
			t.Fatal("same-seed models disagree")
		}
		rel := math.Abs(float64(d1)-float64(base)) / float64(base)
		if rel > 0.051 {
			t.Fatalf("noise %v exceeds amplitude", rel)
		}
	}
}

func TestSequentialCheaperThanRandomOnCPU(t *testing.T) {
	m := NewModel(KaveriPlatform(), 0, 1)
	const bytes = 1024
	seq := Work{N: 1000, SeqBytesPerQuery: bytes}
	lines := float64(bytes) / 64
	rnd := Work{N: 1000, MemAccessesPerQuery: lines}
	ts := m.TaskTime(CPU, seq, 0)
	tr := m.TaskTime(CPU, rnd, 0)
	if float64(tr)/float64(ts) < 2 {
		t.Fatalf("sequential read should be much cheaper: seq %v rnd %v", ts, tr)
	}
}

func TestCalibrateInterferenceTable(t *testing.T) {
	m := NewModel(KaveriPlatform(), 0, 1)
	tbl := CalibrateInterference(m, 8)
	if len(tbl.Demands) != 8 {
		t.Fatalf("levels = %d", len(tbl.Demands))
	}
	// Exact grid points round-trip (no interpolation error at nodes).
	for i, cbw := range tbl.Demands {
		for j, gbw := range tbl.Demands {
			want := m.Mu(CPU, cbw, gbw)
			got := tbl.Lookup(CPU, cbw, gbw)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("node (%d,%d): lookup %v want %v", i, j, got, want)
			}
		}
	}
	// Interpolated points stay close to the model.
	for _, cbw := range []float64{1.3e9, 7.7e9, 15e9} {
		for _, gbw := range []float64{0.9e9, 9e9, 19e9} {
			want := m.Mu(CPU, cbw, gbw)
			got := tbl.Lookup(CPU, cbw, gbw)
			if math.Abs(got-want)/want > 0.05 {
				t.Fatalf("interp (%g,%g): lookup %v want %v", cbw, gbw, got, want)
			}
		}
	}
	// Clamping beyond the grid.
	top := tbl.Demands[len(tbl.Demands)-1]
	if tbl.Lookup(GPU, 10*top, 10*top) != tbl.Lookup(GPU, top, top) {
		t.Fatal("out-of-grid lookup should clamp")
	}
	if tbl.String() == "" {
		t.Fatal("empty String()")
	}
	// Degenerate calibration level count is raised to 2.
	if tbl2 := CalibrateInterference(m, 1); len(tbl2.Demands) != 2 {
		t.Fatal("levels floor not applied")
	}
}

func TestLRUCacheBasics(t *testing.T) {
	c := NewLRUCache(100)
	if c.Access(1, 40) {
		t.Fatal("first access should miss")
	}
	if !c.Access(1, 40) {
		t.Fatal("second access should hit")
	}
	c.Access(2, 40)
	c.Access(3, 40) // evicts 1 (LRU after 1 was most recently used? order: 1 hit, 2, 3)
	if c.UsedBytes() > 100 {
		t.Fatalf("capacity exceeded: %d", c.UsedBytes())
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if c.HitRate() <= 0 || c.HitRate() >= 1 {
		t.Fatalf("hit rate = %v", c.HitRate())
	}
}

func TestLRUCacheEvictionOrder(t *testing.T) {
	c := NewLRUCache(100)
	c.Access(1, 40)
	c.Access(2, 40)
	c.Access(1, 40) // 1 now MRU
	c.Access(3, 40) // must evict 2
	if !c.Contains(1) || c.Contains(2) || !c.Contains(3) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestLRUCacheOversizeObject(t *testing.T) {
	c := NewLRUCache(100)
	if c.Access(1, 500) {
		t.Fatal("oversize access should miss")
	}
	if c.Len() != 0 {
		t.Fatal("oversize object must not be cached")
	}
}

func TestLRUCacheResize(t *testing.T) {
	c := NewLRUCache(100)
	c.Access(1, 10)
	c.Access(2, 10)
	// Overwrite object 1 with a bigger value; hit, accounting adjusts.
	if !c.Access(1, 90) {
		t.Fatal("resized access should still hit")
	}
	if c.UsedBytes() > 100 {
		t.Fatalf("resize overflowed capacity: %d", c.UsedBytes())
	}
	if !c.Contains(1) {
		t.Fatal("resized (MRU) object should survive eviction")
	}
}

func TestLRUCacheInvalidate(t *testing.T) {
	c := NewLRUCache(100)
	c.Access(1, 10)
	c.Invalidate(1)
	c.Invalidate(42) // no-op
	if c.Contains(1) || c.UsedBytes() != 0 {
		t.Fatal("invalidate failed")
	}
	c.ResetStats()
	if c.HitRate() != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestLRUCacheNeverOverflowsProperty(t *testing.T) {
	f := func(keys []uint8, sizes []uint8) bool {
		c := NewLRUCache(256)
		for i, k := range keys {
			size := int64(17)
			if i < len(sizes) {
				size = int64(sizes[i])%100 + 1
			}
			c.Access(uint64(k), size)
			if c.UsedBytes() > 256 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeCapacityCache(t *testing.T) {
	c := NewLRUCache(-5)
	if c.Access(1, 1) {
		t.Fatal("zero-capacity cache should always miss")
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache should stay empty")
	}
}

func TestDiscretePlatformSanity(t *testing.T) {
	p := DiscretePlatform()
	k := KaveriPlatform()
	if p.PriceUSD != 25*k.PriceUSD {
		t.Fatal("paper §V-E: discrete processors cost 25x the APU")
	}
	if p.TDPWatts <= k.TDPWatts {
		t.Fatal("discrete TDP should exceed APU TDP")
	}
	// Discrete GPU should crush the APU GPU on a big random-access batch.
	md := NewModel(p, 0, 1)
	mk := NewModel(k, 0, 1)
	w := Work{N: 100000, InstrPerQuery: 60, MemAccessesPerQuery: 1.5}
	if md.TaskTime(GPU, w, 0) >= mk.TaskTime(GPU, w, 0) {
		t.Fatal("discrete GPU should be faster than APU GPU")
	}
}

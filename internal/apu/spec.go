// Package apu models a coupled CPU-GPU chip (an AMD Kaveri A10-7850K APU by
// default): the two processors, their caches, the shared memory system, and
// the CPU↔GPU interference that arises when both issue memory traffic at
// once.
//
// This package is the reproduction's substitute for the physical APU the DIDO
// paper runs on (see DESIGN.md §2). It is the *ground truth* timing model used
// by the pipeline simulator. DIDO's planner deliberately does NOT use this
// package; it uses the closed-form cost model in internal/costmodel, so that
// the planner's predictions can disagree with "reality" the way the paper's
// cost model disagrees with its hardware (Fig 9).
//
// The model captures the architectural mechanisms the paper's results hinge
// on:
//
//   - CPU: few fast cores, large L2, hardware prefetching of sequential
//     accesses, memory-latency bound on random accesses.
//   - GPU: many slow lanes grouped into 64-wide wavefronts, deep
//     latency-hiding when occupancy is high, terrible efficiency on small
//     batches (idle lanes + fixed kernel-launch overhead) — the effect behind
//     Fig 6.
//   - Shared memory: a single DDR3 bandwidth pool; concurrent traffic from
//     both devices slows each down (µ factor, paper Eq 2), with the GPU
//     hurting the CPU more than vice versa.
package apu

import (
	"fmt"
	"time"
)

// Kind distinguishes the two processor types of a coupled architecture.
type Kind int

const (
	// CPU is a latency-oriented processor.
	CPU Kind = iota
	// GPU is a throughput-oriented processor.
	GPU
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DeviceSpec describes one processor of the coupled chip.
type DeviceSpec struct {
	Name string
	Kind Kind

	// Cores is the number of CPU cores, or compute units for a GPU.
	Cores int
	// LanesPerCore is 1 for CPUs; the wavefront width (shaders per CU) for
	// GPUs. The Kaveri GPU has 64 shaders per CU.
	LanesPerCore int
	// ClockHz is the core clock.
	ClockHz float64
	// IPC is the theoretical peak instructions per cycle per core (per lane
	// for GPUs), as used by the paper's Eq 1.
	IPC float64

	// CacheBytes is the last-level cache available to this device.
	CacheBytes int64
	// CacheLineBytes is the cache line size.
	CacheLineBytes int
	// CacheLatency is the latency of one L2 cache access.
	CacheLatency time.Duration
	// MemLatency is the latency of one random access to shared memory.
	MemLatency time.Duration

	// For GPUs only: latency hiding and batch behaviour.

	// MaxWavesInFlight is how many wavefronts a compute unit can interleave
	// to hide memory latency. Effective random-access latency divides by the
	// number of resident waves (up to this limit).
	MaxWavesInFlight int
	// KernelLaunch is the fixed cost of launching one kernel (batch).
	KernelLaunch time.Duration

	// For CPUs only: sequential prefetch efficiency. When an access stream is
	// sequential, this fraction of would-be memory accesses are served at
	// cache latency instead (hardware prefetcher hit rate).
	PrefetchHitRate float64
}

// WavefrontWidth returns the SIMT width of the device (1 for CPUs).
func (d *DeviceSpec) WavefrontWidth() int {
	if d.Kind == CPU {
		return 1
	}
	return d.LanesPerCore
}

// TotalLanes returns Cores × LanesPerCore.
func (d *DeviceSpec) TotalLanes() int { return d.Cores * d.LanesPerCore }

// CycleTime returns the duration of one clock cycle.
func (d *DeviceSpec) CycleTime() time.Duration {
	return time.Duration(float64(time.Second) / d.ClockHz)
}

// MemorySpec describes the shared memory system of the coupled chip.
type MemorySpec struct {
	// TotalBytes is the memory usable for key-value data. The Kaveri
	// evaluation platform exposes 1908 MB of CPU/GPU shared allocations
	// (paper §V-A).
	TotalBytes int64
	// BandwidthBytesPerSec is the peak shared bandwidth (dual-channel
	// DDR3-1333 ≈ 21.3 GB/s).
	BandwidthBytesPerSec float64
	// GPURandomAccessesPerSec caps the rate at which the memory system
	// serves *random* line-granularity accesses from the GPU's massively
	// parallel request stream (DRAM row misses dominate; effective random
	// throughput is a small fraction of streaming bandwidth). This floor is
	// what bounds the GPU index-operation stage at scale — the paper's
	// Fig 4 Index Operation stage (≈174 µs for a K8 batch) is governed by
	// it, not by compute.
	GPURandomAccessesPerSec float64
}

// Platform is a complete coupled CPU-GPU chip description.
type Platform struct {
	CPU    DeviceSpec
	GPU    DeviceSpec
	Memory MemorySpec
	// PriceUSD and TDPWatts parameterize the price-performance (Fig 17) and
	// energy-efficiency (Fig 18) experiments.
	PriceUSD float64
	TDPWatts float64
}

// KaveriPlatform returns the AMD A10-7850K configuration used throughout the
// paper's evaluation: 4 CPU cores @ 3.7 GHz, 8 GPU compute units × 64 shaders
// @ 720 MHz, shared DDR3-1333, 95 W TDP. The APU's 2014 launch price was
// ~173 USD; the paper states the discrete platform's processors cost 25× the
// APU's.
func KaveriPlatform() Platform {
	return Platform{
		CPU: DeviceSpec{
			Name:            "Kaveri-CPU(Steamroller x4)",
			Kind:            CPU,
			Cores:           4,
			LanesPerCore:    1,
			ClockHz:         3.7e9,
			IPC:             2, // sustained, not marketing peak
			CacheBytes:      4 << 20,
			CacheLineBytes:  64,
			CacheLatency:    8 * time.Nanosecond,
			MemLatency:      85 * time.Nanosecond,
			PrefetchHitRate: 0.85,
		},
		GPU: DeviceSpec{
			Name:             "Kaveri-GPU(GCN 8CU)",
			Kind:             GPU,
			Cores:            8,
			LanesPerCore:     64,
			ClockHz:          720e6,
			IPC:              1,
			CacheBytes:       512 << 10,
			CacheLineBytes:   64,
			CacheLatency:     40 * time.Nanosecond,
			MemLatency:       320 * time.Nanosecond,
			MaxWavesInFlight: 10,
			KernelLaunch:     8 * time.Microsecond,
		},
		Memory: MemorySpec{
			TotalBytes:              1908 << 20,
			BandwidthBytesPerSec:    21.3e9,
			GPURandomAccessesPerSec: 200e6, // DDR3 random-line service rate
		},
		PriceUSD: 173,
		TDPWatts: 95,
	}
}

// DiscretePlatform returns a discrete CPU-GPU configuration approximating the
// Mega-KV paper's testbed (2× Intel E5-2650v2 + 2× NVIDIA GTX 780) for the
// cross-architecture comparisons of Figs 16-18. PCIe transfer costs are
// modeled separately by the megakv package's discrete mode.
func DiscretePlatform() Platform {
	return Platform{
		CPU: DeviceSpec{
			Name:            "E5-2650v2 x2",
			Kind:            CPU,
			Cores:           16,
			LanesPerCore:    1,
			ClockHz:         2.6e9,
			IPC:             2.5,
			CacheBytes:      40 << 20,
			CacheLineBytes:  64,
			CacheLatency:    12 * time.Nanosecond,
			MemLatency:      90 * time.Nanosecond,
			PrefetchHitRate: 0.9,
		},
		GPU: DeviceSpec{
			Name:             "GTX780 x2",
			Kind:             GPU,
			Cores:            24, // 12 SMX x2
			LanesPerCore:     192,
			ClockHz:          863e6,
			IPC:              1,
			CacheBytes:       3 << 20,
			CacheLineBytes:   128,
			CacheLatency:     30 * time.Nanosecond,
			MemLatency:       250 * time.Nanosecond,
			MaxWavesInFlight: 16,
			KernelLaunch:     5 * time.Microsecond,
		},
		Memory: MemorySpec{
			TotalBytes:              64 << 30,
			BandwidthBytesPerSec:    2 * 288e9, // GDDR5 per card
			GPURandomAccessesPerSec: 1.4e9,     // GDDR5, many channels/banks
		},
		// Paper §V-E: the discrete platform's processors cost 25× the APU.
		PriceUSD: 25 * 173,
		// TDP: 2×95 W CPUs + 2×250 W GPUs.
		TDPWatts: 2*95 + 2*250,
	}
}

package apu

import (
	"math"
	"time"
)

// Work describes the per-query resource demands of one task executed over a
// batch. The fields mirror the paper's cost-model notation (Table I): I^XPU_F
// instructions, N^M_F random memory accesses, N^C_F cache accesses — plus
// SeqBytes, which the simulator uses to model hardware prefetching of
// sequential streams (the RD/WR separation effect in §III-A).
type Work struct {
	// N is the number of queries in the batch.
	N int
	// InstrPerQuery is the instruction count per query on this device.
	InstrPerQuery float64
	// MemAccessesPerQuery is the number of random (cache-missing) memory
	// accesses per query.
	MemAccessesPerQuery float64
	// CacheAccessesPerQuery is the number of accesses served by the L2 cache
	// per query.
	CacheAccessesPerQuery float64
	// SeqBytesPerQuery is the number of bytes streamed sequentially per query
	// (prefetchable on CPUs, coalesced on GPUs).
	SeqBytesPerQuery float64
	// GPUSerialFrac is the fraction of the task's memory work that
	// serializes across the whole GPU (atomic compare-exchange contention
	// and wavefront divergence on update paths). Zero for uniform,
	// conflict-free kernels. It is what makes small Insert/Delete kernels
	// consume a disproportionate share of GPU time (paper Fig 6).
	GPUSerialFrac float64
	// Parallelism is the number of cores (CPU) or compute units (GPU)
	// assigned to the task. Zero means "all of the device".
	Parallelism int
}

// bytesTouched returns the total bytes this work moves through the memory
// system, used for bandwidth accounting.
func (w Work) bytesTouched(lineBytes int) float64 {
	perQuery := (w.MemAccessesPerQuery)*float64(lineBytes) + w.SeqBytesPerQuery
	return perQuery * float64(w.N)
}

// Model is the ground-truth timing engine for one coupled platform. It is
// deliberately richer than the planner's closed-form cost model: it includes
// GPU kernel-launch overhead, wavefront occupancy, bandwidth capping,
// prefetching, and deterministic noise, so the planner's predictions carry a
// realistic error (paper Fig 9).
//
// Model is not safe for concurrent use; the discrete-event simulator is
// single-threaded.
type Model struct {
	Platform Platform
	// Noise is the relative amplitude of multiplicative timing noise
	// (e.g. 0.03 for ±3%). Zero disables noise.
	Noise float64

	rng rng
}

// NewModel returns a timing model over p with noise amplitude noise, seeded
// deterministically by seed.
func NewModel(p Platform, noise float64, seed uint64) *Model {
	return &Model{Platform: p, Noise: noise, rng: newRNG(seed)}
}

// device returns the spec for kind.
func (m *Model) device(kind Kind) *DeviceSpec {
	if kind == CPU {
		return &m.Platform.CPU
	}
	return &m.Platform.GPU
}

// TaskTime returns the time for work w on device kind, given the concurrent
// memory-bandwidth demand of the *other* device in bytes/sec (0 when the
// other device is idle). The returned duration includes interference slowdown
// and noise.
func (m *Model) TaskTime(kind Kind, w Work, otherBW float64) time.Duration {
	base := m.baseTime(kind, w)
	if base <= 0 {
		return 0
	}
	myBW := w.bytesTouched(m.device(kind).CacheLineBytes) / base.Seconds()
	mu := m.Mu(kind, myBW, otherBW)
	d := time.Duration(float64(base) * mu)
	if m.Noise > 0 {
		d = time.Duration(float64(d) * (1 + m.Noise*(2*m.rng.float64()-1)))
	}
	return d
}

// BandwidthDemand returns the memory bandwidth (bytes/sec) work w generates
// on device kind when executed in isolation. The pipeline simulator feeds
// each stage's demand to the other stages' TaskTime as otherBW.
func (m *Model) BandwidthDemand(kind Kind, w Work) float64 {
	base := m.baseTime(kind, w)
	if base <= 0 {
		return 0
	}
	return w.bytesTouched(m.device(kind).CacheLineBytes) / base.Seconds()
}

// BytesTouched returns the total bytes work w moves through the shared
// memory system on device kind (random accesses at line granularity plus
// sequential streams), used for bandwidth and interference accounting.
func (m *Model) BytesTouched(kind Kind, w Work) float64 {
	return w.bytesTouched(m.device(kind).CacheLineBytes)
}

// baseTime is the isolated (no-interference, no-noise) execution time.
func (m *Model) baseTime(kind Kind, w Work) time.Duration {
	if w.N <= 0 {
		return 0
	}
	if kind == CPU {
		return m.cpuTime(w)
	}
	return m.gpuTime(w)
}

func (m *Model) cpuTime(w Work) time.Duration {
	d := &m.Platform.CPU
	cores := w.Parallelism
	if cores <= 0 || cores > d.Cores {
		cores = d.Cores
	}
	cycle := d.CycleTime().Seconds()
	instr := w.InstrPerQuery / d.IPC * cycle
	random := w.MemAccessesPerQuery * d.MemLatency.Seconds()
	cache := w.CacheAccessesPerQuery * d.CacheLatency.Seconds()
	// Sequential bytes: prefetcher serves PrefetchHitRate of the lines at
	// cache latency, the rest at memory latency, floored by raw bandwidth.
	lines := w.SeqBytesPerQuery / float64(d.CacheLineBytes)
	seqLat := lines * (d.PrefetchHitRate*d.CacheLatency.Seconds() +
		(1-d.PrefetchHitRate)*d.MemLatency.Seconds())
	seqBW := w.SeqBytesPerQuery / m.Platform.Memory.BandwidthBytesPerSec
	seq := math.Max(seqLat, seqBW)

	perQuery := instr + random + cache + seq
	total := perQuery * float64(w.N) / float64(cores)
	return time.Duration(total * float64(time.Second))
}

func (m *Model) gpuTime(w Work) time.Duration {
	d := &m.Platform.GPU
	cus := w.Parallelism
	if cus <= 0 || cus > d.Cores {
		cus = d.Cores
	}
	width := d.LanesPerCore
	waves := (w.N + width - 1) / width
	wavesPerCU := (waves + cus - 1) / cus
	resident := wavesPerCU
	if resident > d.MaxWavesInFlight {
		resident = d.MaxWavesInFlight
	}
	if resident < 1 {
		resident = 1
	}
	cycle := d.CycleTime().Seconds()
	// Per wave, lanes run in lockstep: one "query's worth" of instructions
	// per lane, memory accesses overlapping across resident waves.
	instr := w.InstrPerQuery / d.IPC * cycle
	random := w.MemAccessesPerQuery * d.MemLatency.Seconds() / float64(resident)
	cache := w.CacheAccessesPerQuery * d.CacheLatency.Seconds()
	// Sequential bytes: each lane streams its own object, so the accesses
	// are scattered at line granularity across the wave — no coalescing
	// bonus, only wave-level latency overlap.
	lines := w.SeqBytesPerQuery / float64(d.CacheLineBytes)
	seq := lines * d.MemLatency.Seconds() / float64(resident)
	perWave := instr + random + cache + seq
	compute := perWave * float64(wavesPerCU)
	// Bandwidth floors across the whole batch: streaming bytes against peak
	// bandwidth, and random accesses against the DRAM's random line rate —
	// the GPU's latency hiding cannot exceed what the memory system serves.
	bw := w.bytesTouched(d.CacheLineBytes) / m.Platform.Memory.BandwidthBytesPerSec
	total := math.Max(compute, bw)
	if rps := m.Platform.Memory.GPURandomAccessesPerSec; rps > 0 {
		randFloor := w.MemAccessesPerQuery * float64(w.N) / rps
		total = math.Max(total, randFloor)
	}
	// CAS/divergence serialization (update kernels): a fraction of the
	// memory work runs at single-stream latency regardless of occupancy.
	if w.GPUSerialFrac > 0 {
		total += w.GPUSerialFrac * w.MemAccessesPerQuery * float64(w.N) * d.MemLatency.Seconds()
	}
	total += d.KernelLaunch.Seconds()
	return time.Duration(total * float64(time.Second))
}

// Mu returns the interference slowdown factor µ for device kind generating
// myBW bytes/sec while the other device generates otherBW bytes/sec. µ ≥ 1.
//
// Two mechanisms: (1) queueing pressure — any concurrent traffic from the
// other device inflates this device's effective memory latency, with GPUs
// hurting CPUs far more than the reverse (Kayiran et al., MICRO-47, cited as
// [14] by the paper); (2) saturation — when combined demand exceeds peak
// bandwidth, both devices slow proportionally.
func (m *Model) Mu(kind Kind, myBW, otherBW float64) float64 {
	peak := m.Platform.Memory.BandwidthBytesPerSec
	if peak <= 0 {
		return 1
	}
	var alpha float64
	switch kind {
	case CPU:
		alpha = 0.9 // GPU traffic hits CPU latency hard
	default:
		alpha = 0.35 // CPU traffic hits GPU mildly (latency already hidden)
	}
	mu := 1 + alpha*otherBW/peak
	if total := myBW + otherBW; total > peak {
		mu *= total / peak
	}
	return mu
}

// GPUEfficiency returns the fraction of peak GPU throughput achieved at batch
// size n, relative to an infinitely large batch with the same per-query work.
// It is the quantity behind Fig 6: small batches strand lanes and pay the
// kernel launch without amortization.
func (m *Model) GPUEfficiency(w Work) float64 {
	if w.N <= 0 {
		return 0
	}
	small := m.gpuTime(w)
	big := w
	const refN = 1 << 16
	big.N = refN
	ref := m.gpuTime(big)
	perOpSmall := small.Seconds() / float64(w.N)
	perOpBig := ref.Seconds() / float64(refN)
	if perOpSmall <= 0 {
		return 1
	}
	e := perOpBig / perOpSmall
	if e > 1 {
		e = 1
	}
	return e
}

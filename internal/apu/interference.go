package apu

import "fmt"

// InterferenceTable is the tabulated µ factor produced by the calibration
// microbenchmark, indexed by (CPU bandwidth demand, GPU bandwidth demand)
// buckets. The paper measures µ^XPU_{NC,NG} by generating N_C memory accesses
// on the CPU and N_G on the GPU and timing both (§IV-A); we do the equivalent
// against the ground-truth Model. DIDO's planner looks µ up here (with
// bilinear interpolation) instead of calling the Model directly, preserving
// the measured-table indirection of the real system.
type InterferenceTable struct {
	// Demands are the bandwidth bucket edges in bytes/sec, ascending,
	// shared by both axes.
	Demands []float64
	// CPUMu[i][j] is µ for the CPU when the CPU demands Demands[i] and the
	// GPU demands Demands[j]. GPUMu is indexed the same way (CPU first).
	CPUMu [][]float64
	GPUMu [][]float64
}

// CalibrateInterference runs the µ microbenchmark against model: for every
// pair of demand levels it asks the model for the slowdown each device
// experiences. levels chooses the grid resolution.
func CalibrateInterference(model *Model, levels int) *InterferenceTable {
	if levels < 2 {
		levels = 2
	}
	peak := model.Platform.Memory.BandwidthBytesPerSec
	t := &InterferenceTable{
		Demands: make([]float64, levels),
		CPUMu:   make([][]float64, levels),
		GPUMu:   make([][]float64, levels),
	}
	for i := 0; i < levels; i++ {
		// Grid from 0 to 1.2× peak so saturation is represented.
		t.Demands[i] = 1.2 * peak * float64(i) / float64(levels-1)
	}
	for i := 0; i < levels; i++ {
		t.CPUMu[i] = make([]float64, levels)
		t.GPUMu[i] = make([]float64, levels)
		for j := 0; j < levels; j++ {
			cpuBW, gpuBW := t.Demands[i], t.Demands[j]
			t.CPUMu[i][j] = model.Mu(CPU, cpuBW, gpuBW)
			t.GPUMu[i][j] = model.Mu(GPU, gpuBW, cpuBW)
		}
	}
	return t
}

// Lookup returns the interpolated µ for device kind when the CPU demands
// cpuBW and the GPU demands gpuBW (bytes/sec). Demands beyond the grid are
// clamped to the outermost bucket.
func (t *InterferenceTable) Lookup(kind Kind, cpuBW, gpuBW float64) float64 {
	var grid [][]float64
	if kind == CPU {
		grid = t.CPUMu
	} else {
		grid = t.GPUMu
	}
	i, fi := t.locate(cpuBW)
	j, fj := t.locate(gpuBW)
	v00 := grid[i][j]
	v01 := grid[i][min(j+1, len(t.Demands)-1)]
	v10 := grid[min(i+1, len(t.Demands)-1)][j]
	v11 := grid[min(i+1, len(t.Demands)-1)][min(j+1, len(t.Demands)-1)]
	return v00*(1-fi)*(1-fj) + v10*fi*(1-fj) + v01*(1-fi)*fj + v11*fi*fj
}

// locate returns the lower bucket index and the fractional position of demand
// within [Demands[i], Demands[i+1]].
func (t *InterferenceTable) locate(demand float64) (int, float64) {
	n := len(t.Demands)
	if demand <= t.Demands[0] {
		return 0, 0
	}
	if demand >= t.Demands[n-1] {
		return n - 1, 0
	}
	for i := 0; i < n-1; i++ {
		if demand < t.Demands[i+1] {
			span := t.Demands[i+1] - t.Demands[i]
			return i, (demand - t.Demands[i]) / span
		}
	}
	return n - 1, 0
}

// String summarizes the table dimensions.
func (t *InterferenceTable) String() string {
	return fmt.Sprintf("InterferenceTable(%d levels, peak-relative 0..1.2)", len(t.Demands))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package apu

import "container/list"

// LRUCache simulates a device's last-level cache at object granularity: the
// pipeline simulator asks it whether a key-value object read would hit. It
// accounts capacity in bytes so that large values displace more of the cache,
// reproducing the paper's observation that skewed workloads keep the hot set
// cached and relieve memory-bandwidth contention (§V-C "Impact of Key
// Popularity").
//
// LRUCache is not safe for concurrent use.
type LRUCache struct {
	capacity int64
	used     int64
	order    *list.List // front = most recently used
	items    map[uint64]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key  uint64
	size int64
}

// NewLRUCache returns a cache with the given byte capacity.
func NewLRUCache(capacity int64) *LRUCache {
	if capacity < 0 {
		capacity = 0
	}
	return &LRUCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[uint64]*list.Element),
	}
}

// Access simulates touching object key of the given size. It returns true on
// a hit. On a miss the object is inserted, evicting least-recently-used
// entries as needed. Objects larger than the whole cache are never cached.
func (c *LRUCache) Access(key uint64, size int64) bool {
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		// Size may have changed (value overwritten); adjust accounting.
		ent := el.Value.(*cacheEntry)
		if ent.size != size {
			c.used += size - ent.size
			ent.size = size
			c.evictOverflow()
		}
		return true
	}
	c.misses++
	if size > c.capacity {
		return false
	}
	el := c.order.PushFront(&cacheEntry{key: key, size: size})
	c.items[key] = el
	c.used += size
	c.evictOverflow()
	return false
}

// Contains reports whether key is cached, without updating recency or stats.
func (c *LRUCache) Contains(key uint64) bool {
	_, ok := c.items[key]
	return ok
}

// Invalidate removes key from the cache (e.g. the object was deleted).
func (c *LRUCache) Invalidate(key uint64) {
	if el, ok := c.items[key]; ok {
		c.removeElement(el)
	}
}

func (c *LRUCache) evictOverflow() {
	for c.used > c.capacity {
		back := c.order.Back()
		if back == nil {
			return
		}
		c.removeElement(back)
	}
}

func (c *LRUCache) removeElement(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.items, ent.key)
	c.used -= ent.size
}

// Len returns the number of cached objects.
func (c *LRUCache) Len() int { return c.order.Len() }

// UsedBytes returns the bytes currently cached.
func (c *LRUCache) UsedBytes() int64 { return c.used }

// HitRate returns hits/(hits+misses), or 0 before any access.
func (c *LRUCache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// ResetStats zeroes the hit/miss counters without evicting anything.
func (c *LRUCache) ResetStats() {
	c.hits, c.misses = 0, 0
}

package apu

// rng is a tiny deterministic xorshift64* generator. The timing model needs
// reproducible noise without pulling math/rand state that tests elsewhere
// might share.
type rng struct {
	state uint64
}

func newRNG(seed uint64) rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return rng{state: seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// float64 returns a uniform value in [0, 1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

package proto

import (
	"bytes"
	"errors"
	"testing"
)

func TestV2FrameRoundTrip(t *testing.T) {
	queries := []Query{
		{Op: OpSet, Key: []byte("alpha"), Value: []byte("one")},
		{Op: OpGet, Key: []byte("beta")},
		{Op: OpDelete, Key: []byte("gamma")},
	}
	frame := EncodeFrameV2(nil, 0xDEADBEEFCAFE, queries)

	count, id, v2, err := FrameHeader(frame)
	if err != nil || !v2 || count != 3 || id != 0xDEADBEEFCAFE {
		t.Fatalf("header = %d, %x, %v, %v", count, id, v2, err)
	}

	got, gotID, err := ParseFrameID(frame, nil)
	if err != nil || gotID != 0xDEADBEEFCAFE {
		t.Fatalf("parse = id %x, %v", gotID, err)
	}
	if len(got) != 3 || string(got[0].Value) != "one" || string(got[2].Key) != "gamma" {
		t.Fatalf("queries = %+v", got)
	}

	// The version-agnostic parser accepts v2 too.
	got2, err := ParseFrame(frame, nil)
	if err != nil || len(got2) != 3 {
		t.Fatalf("ParseFrame(v2) = %d, %v", len(got2), err)
	}
}

func TestV1FrameReportsZeroID(t *testing.T) {
	frame := EncodeFrame(nil, []Query{{Op: OpGet, Key: []byte("k")}})
	qs, id, err := ParseFrameID(frame, nil)
	if err != nil || id != 0 || len(qs) != 1 {
		t.Fatalf("v1 parse = %d queries, id %d, %v", len(qs), id, err)
	}
	count, id, v2, err := FrameHeader(frame)
	if err != nil || v2 || count != 1 || id != 0 {
		t.Fatalf("v1 header = %d, %d, %v, %v", count, id, v2, err)
	}
}

func TestV2ChecksumDetectsCorruption(t *testing.T) {
	frame := EncodeFrameV2(nil, 42, []Query{{Op: OpSet, Key: []byte("key"), Value: []byte("value")}})
	for i := headerLenV2; i < len(frame); i++ {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x40
		if _, _, _, err := FrameHeader(bad); !errors.Is(err, ErrBadChecksum) {
			t.Fatalf("flip at %d: err = %v, want ErrBadChecksum", i, err)
		}
		if _, _, err := ParseFrameID(bad, nil); !errors.Is(err, ErrBadChecksum) {
			t.Fatalf("flip at %d: parse err = %v, want ErrBadChecksum", i, err)
		}
	}
}

func TestV2ResponseFrameRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, Value: []byte("hello")},
		{Status: StatusNotFound},
		{Status: StatusBusy},
	}
	frame := EncodeResponseFrameV2(nil, 77, 129, resps)
	got, id, off, err := ParseResponseFrameID(frame, nil)
	if err != nil || id != 77 || off != 129 {
		t.Fatalf("parse = id %d, off %d, %v", id, off, err)
	}
	if len(got) != 3 || !bytes.Equal(got[0].Value, []byte("hello")) || got[2].Status != StatusBusy {
		t.Fatalf("resps = %+v", got)
	}
	// The version-agnostic parser accepts v2 responses too.
	got2, err := ParseResponseFrame(frame, nil)
	if err != nil || len(got2) != 3 {
		t.Fatalf("ParseResponseFrame(v2) = %d, %v", len(got2), err)
	}
}

func TestV2ResponseChecksumDetectsCorruption(t *testing.T) {
	frame := EncodeResponseFrameV2(nil, 7, 0, []Response{{Status: StatusOK, Value: []byte("v")}})
	bad := append([]byte(nil), frame...)
	bad[len(bad)-1] ^= 1
	if _, _, _, err := ParseResponseFrameID(bad, nil); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestFrameHeaderRejectsLyingCount(t *testing.T) {
	// A header claiming more queries than the payload can possibly hold must
	// be rejected, so the count of a valid header is safe to size replies by.
	frame := EncodeFrame(nil, []Query{{Op: OpGet, Key: []byte("k")}})
	frame[4] = 0xFF
	frame[5] = 0xFF
	if _, _, _, err := FrameHeader(frame); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestTruncatedV2Frames(t *testing.T) {
	frame := EncodeFrameV2(nil, 9, []Query{{Op: OpSet, Key: []byte("kk"), Value: []byte("vv")}})
	for n := 0; n < len(frame); n++ {
		if _, _, err := ParseFrameID(frame[:n], nil); err == nil {
			t.Fatalf("truncation to %d bytes parsed cleanly", n)
		}
	}
	resp := EncodeResponseFrameV2(nil, 9, 0, []Response{{Status: StatusOK, Value: []byte("vv")}})
	for n := 0; n < len(resp); n++ {
		if _, _, _, err := ParseResponseFrameID(resp[:n], nil); err == nil {
			t.Fatalf("response truncation to %d bytes parsed cleanly", n)
		}
	}
}

package proto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if OpGet.String() != "GET" || OpSet.String() != "SET" || OpDelete.String() != "DELETE" {
		t.Fatal("op strings wrong")
	}
	if Op(99).String() != "Op(99)" {
		t.Fatal("unknown op string wrong")
	}
}

func TestQueryRoundTrip(t *testing.T) {
	in := []Query{
		{Op: OpGet, Key: []byte("user:1000")},
		{Op: OpSet, Key: []byte("user:1001"), Value: []byte("profile-data")},
		{Op: OpDelete, Key: []byte("user:1002")},
		{Op: OpSet, Key: []byte("empty-value-key")},
	}
	frame := EncodeFrame(nil, in)
	out, err := ParseFrame(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("parsed %d queries, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Op != in[i].Op || !bytes.Equal(out[i].Key, in[i].Key) || !bytes.Equal(out[i].Value, in[i].Value) {
			t.Fatalf("query %d mismatch: %+v vs %+v", i, out[i], in[i])
		}
	}
}

func TestEmptyFrame(t *testing.T) {
	frame := EncodeFrame(nil, nil)
	out, err := ParseFrame(frame, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty frame: %v %v", out, err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseFrame([]byte{1, 2}, nil); err != ErrTruncated {
		t.Fatalf("short frame err = %v", err)
	}
	if _, err := ParseFrame([]byte("XXXX\x01\x00"), nil); err != ErrBadMagic {
		t.Fatalf("bad magic err = %v", err)
	}
	// Valid header claiming one query but no body.
	frame := EncodeFrame(nil, nil)
	frame[4] = 1
	if _, err := ParseFrame(frame, nil); err != ErrTruncated {
		t.Fatalf("truncated query err = %v", err)
	}
	// Bad op byte.
	frame = EncodeFrame(nil, []Query{{Op: OpGet, Key: []byte("k")}})
	frame[6] = 77
	if _, err := ParseFrame(frame, nil); err != ErrBadOp {
		t.Fatalf("bad op err = %v", err)
	}
	// Key length pointing past the end.
	frame = EncodeFrame(nil, []Query{{Op: OpGet, Key: []byte("k")}})
	frame[7] = 0xFF
	if _, err := ParseFrame(frame, nil); err != ErrTruncated {
		t.Fatalf("overlong key err = %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	in := []Response{
		{Status: StatusOK, Value: []byte("value-bytes")},
		{Status: StatusNotFound},
		{Status: StatusError},
	}
	frame := EncodeResponseFrame(nil, in)
	out, err := ParseResponseFrame(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("parsed %d responses", len(out))
	}
	for i := range in {
		if out[i].Status != in[i].Status || !bytes.Equal(out[i].Value, in[i].Value) {
			t.Fatalf("response %d mismatch", i)
		}
	}
}

func TestResponseParseErrors(t *testing.T) {
	if _, err := ParseResponseFrame([]byte{1}, nil); err != ErrTruncated {
		t.Fatal("short response frame")
	}
	if _, err := ParseResponseFrame([]byte("YYYY\x00\x00"), nil); err != ErrBadMagic {
		t.Fatal("bad response magic")
	}
	frame := EncodeResponseFrame(nil, nil)
	frame[4] = 1
	if _, err := ParseResponseFrame(frame, nil); err != ErrTruncated {
		t.Fatal("truncated response")
	}
}

func TestEncodedQueryLen(t *testing.T) {
	q := Query{Op: OpSet, Key: []byte("abc"), Value: []byte("defgh")}
	if got := EncodedQueryLen(q); got != 7+3+5 {
		t.Fatalf("len = %d", got)
	}
	frame := EncodeFrame(nil, []Query{q})
	if len(frame) != 6+EncodedQueryLen(q) {
		t.Fatal("frame length disagrees with EncodedQueryLen")
	}
}

func TestTooManyQueriesPanics(t *testing.T) {
	qs := make([]Query, 0x10000)
	for i := range qs {
		qs[i] = Query{Op: OpGet, Key: []byte("k")}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodeFrame(nil, qs)
}

func TestTooManyResponsesPanics(t *testing.T) {
	rs := make([]Response, 0x10000)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EncodeResponseFrame(nil, rs)
}

func TestRoundTripProperty(t *testing.T) {
	f := func(keys [][]byte, vals [][]byte, ops []byte) bool {
		var in []Query
		for i, k := range keys {
			if len(k) == 0 {
				k = []byte("x")
			}
			if len(k) > 1000 {
				k = k[:1000]
			}
			op := OpGet
			if len(ops) > 0 {
				op = Op(ops[i%len(ops)]%3 + 1)
			}
			q := Query{Op: op, Key: k}
			if q.Op == OpSet && i < len(vals) {
				v := vals[i]
				if len(v) > 1000 {
					v = v[:1000]
				}
				q.Value = v
			}
			in = append(in, q)
		}
		if len(in) > 1000 {
			in = in[:1000]
		}
		frame := EncodeFrame(nil, in)
		out, err := ParseFrame(frame, nil)
		if err != nil || len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i].Op != in[i].Op || !bytes.Equal(out[i].Key, in[i].Key) {
				return false
			}
			// Empty and nil values are equivalent on the wire.
			if len(out[i].Value) != len(in[i].Value) {
				return false
			}
			if len(in[i].Value) > 0 && !bytes.Equal(out[i].Value, in[i].Value) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

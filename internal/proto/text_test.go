package proto

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// mapBackend is an in-memory TextBackend for protocol tests.
type mapBackend struct {
	m       map[string][]byte
	failSet bool
}

func newMapBackend() *mapBackend { return &mapBackend{m: map[string][]byte{}} }

func (b *mapBackend) Get(key []byte) ([]byte, bool) {
	v, ok := b.m[string(key)]
	return v, ok
}

func (b *mapBackend) Set(key, value []byte) error {
	if b.failSet {
		return fmt.Errorf("simulated allocator failure")
	}
	b.m[string(key)] = append([]byte(nil), value...)
	return nil
}

func (b *mapBackend) Delete(key []byte) bool {
	_, ok := b.m[string(key)]
	delete(b.m, string(key))
	return ok
}

// runSession feeds script to a TextSession and returns everything written
// back.
func runSession(t *testing.T, backend TextBackend, script string) string {
	t.Helper()
	var out bytes.Buffer
	rw := struct {
		io.Reader
		io.Writer
	}{strings.NewReader(script), &out}
	if err := TextSession(rw, backend); err != nil {
		t.Fatalf("session error: %v", err)
	}
	return out.String()
}

func TestTextSetGetDelete(t *testing.T) {
	b := newMapBackend()
	out := runSession(t, b,
		"set greeting 0 0 5\r\nhello\r\n"+
			"get greeting\r\n"+
			"delete greeting\r\n"+
			"get greeting\r\n"+
			"quit\r\n")
	want := "STORED\r\n" +
		"VALUE greeting 0 5\r\nhello\r\nEND\r\n" +
		"DELETED\r\n" +
		"END\r\n"
	if out != want {
		t.Fatalf("out = %q\nwant %q", out, want)
	}
}

func TestTextMultiGet(t *testing.T) {
	b := newMapBackend()
	b.m["a"] = []byte("1")
	b.m["c"] = []byte("3")
	out := runSession(t, b, "get a b c\r\n")
	if !strings.Contains(out, "VALUE a 0 1") || !strings.Contains(out, "VALUE c 0 1") {
		t.Fatalf("multi-get missing values: %q", out)
	}
	if strings.Contains(out, "VALUE b") {
		t.Fatal("missing key returned a VALUE")
	}
	if !strings.HasSuffix(out, "END\r\n") {
		t.Fatal("no END terminator")
	}
}

func TestTextAddReplaceSemantics(t *testing.T) {
	b := newMapBackend()
	out := runSession(t, b,
		"add k 0 0 1\r\nx\r\n"+ // stored
			"add k 0 0 1\r\ny\r\n"+ // exists → NOT_STORED
			"replace k 0 0 1\r\nz\r\n"+ // exists → stored
			"replace missing 0 0 1\r\nw\r\n") // absent → NOT_STORED
	want := "STORED\r\nNOT_STORED\r\nSTORED\r\nNOT_STORED\r\n"
	if out != want {
		t.Fatalf("out = %q", out)
	}
	if string(b.m["k"]) != "z" {
		t.Fatalf("final value = %q", b.m["k"])
	}
}

func TestTextNoreply(t *testing.T) {
	b := newMapBackend()
	out := runSession(t, b,
		"set k 0 0 1 noreply\r\nv\r\n"+
			"delete k noreply\r\n"+
			"version\r\n")
	if strings.Contains(out, "STORED") || strings.Contains(out, "DELETED") {
		t.Fatalf("noreply commands replied: %q", out)
	}
	if !strings.Contains(out, "VERSION") {
		t.Fatal("version missing")
	}
}

func TestTextDeleteNotFound(t *testing.T) {
	out := runSession(t, newMapBackend(), "delete nothing\r\n")
	if out != "NOT_FOUND\r\n" {
		t.Fatalf("out = %q", out)
	}
}

func TestTextErrors(t *testing.T) {
	b := newMapBackend()
	out := runSession(t, b,
		"bogus\r\n"+
			"get\r\n"+
			"set k 0 0\r\n"+
			"set k 0 0 notanumber\r\nxx\r\n")
	if !strings.Contains(out, "ERROR\r\n") {
		t.Fatal("unknown command not rejected")
	}
	if strings.Count(out, "CLIENT_ERROR") < 2 {
		t.Fatalf("malformed commands not rejected: %q", out)
	}
}

func TestTextBadDataChunk(t *testing.T) {
	// Data not terminated by \r\n → CLIENT_ERROR, session continues.
	b := newMapBackend()
	out := runSession(t, b, "set k 0 0 2\r\nabXX") // "ab" then junk instead of \r\n
	if !strings.Contains(out, "CLIENT_ERROR bad data chunk") {
		t.Fatalf("out = %q", out)
	}
}

func TestTextServerErrorOnFailedSet(t *testing.T) {
	b := newMapBackend()
	b.failSet = true
	out := runSession(t, b, "set k 0 0 1\r\nx\r\n")
	if !strings.Contains(out, "SERVER_ERROR") {
		t.Fatalf("out = %q", out)
	}
}

func TestTextBinaryValueRoundTrip(t *testing.T) {
	b := newMapBackend()
	val := []byte{0, 1, 2, '\r', '\n', 255, 'x'}
	script := fmt.Sprintf("set bin 0 0 %d\r\n%s\r\nget bin\r\n", len(val), val)
	out := runSession(t, b, script)
	if !strings.Contains(out, fmt.Sprintf("VALUE bin 0 %d", len(val))) {
		t.Fatalf("binary value not served: %q", out)
	}
	if !bytes.Contains([]byte(out), val) {
		t.Fatal("binary payload corrupted")
	}
}

func TestTextOverTCPPipe(t *testing.T) {
	// Full duplex over a real connection pair.
	client, server := net.Pipe()
	defer client.Close()
	b := newMapBackend()
	done := make(chan error, 1)
	go func() { done <- TextSession(server, b) }()

	cw := bufio.NewWriter(client)
	cr := bufio.NewReader(client)
	fmt.Fprintf(cw, "set k 0 0 5\r\nhello\r\n")
	cw.Flush()
	line, _ := cr.ReadString('\n')
	if strings.TrimSpace(line) != "STORED" {
		t.Fatalf("set reply = %q", line)
	}
	fmt.Fprintf(cw, "quit\r\n")
	cw.Flush()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("session err: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("session did not quit")
	}
}

func TestTextLongKeySkippedOnGet(t *testing.T) {
	b := newMapBackend()
	long := strings.Repeat("k", 300)
	out := runSession(t, b, "get "+long+"\r\n")
	if out != "END\r\n" {
		t.Fatalf("out = %q", out)
	}
	// Overlong key on set → CLIENT_ERROR.
	out = runSession(t, b, "set "+long+" 0 0 1\r\nx\r\n")
	if !strings.Contains(out, "CLIENT_ERROR key too long") {
		t.Fatalf("out = %q", out)
	}
}

// Package proto implements the wire protocol of the key-value store: a
// compact binary format carrying batched queries in a single datagram, the
// way the paper's evaluation batches "queries and their responses in an
// Ethernet frame as many as possible" (§V-A).
//
// Frame layout:
//
//	[0:4)  magic "DKV1"
//	[4:6)  query count (little endian)
//	then per query:
//	  [1B op] [2B key length] [4B value length] [key bytes] [value bytes]
//
// GET and DELETE queries carry a zero value length. Responses use the same
// frame header with per-query records:
//
//	[1B status] [4B value length] [value bytes]
//
// Version 2 ("DKV2") extends the header for fault-tolerant serving. A query
// frame carries a request ID so retries can be deduplicated server-side and
// responses matched to requests, plus a payload checksum so corrupted
// datagrams are dropped rather than misparsed:
//
//	[0:4)   magic "DKV2"
//	[4:6)   query count (little endian)
//	[6:14)  request ID (little endian uint64)
//	[14:18) CRC-32 (IEEE) of the payload after the header
//
// A v2 response frame additionally carries the batch offset of its first
// response, so response sets split across datagrams survive reordering:
//
//	[0:4)   magic "DKV2"
//	[4:6)   response count
//	[6:14)  request ID
//	[14:16) offset of the first response within the request batch
//	[16:20) CRC-32 (IEEE) of the payload after the header
//
// Both versions are accepted by the parsers; v1 frames report request ID 0
// and offset 0.
//
// Parsing is zero-copy: returned key/value slices alias the input buffer.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Op identifies a query type.
type Op byte

// Query operations. GET/SET/DELETE are the full client interface of an IMKV
// (paper §II-B); SCAN is the ordered-index range read (see scan.go for its
// argument and result encodings). Servers without an ordered index answer
// SCAN with StatusError; pre-SCAN servers reject the whole frame (ErrBadOp),
// which the v2 retry machinery surfaces as a timeout rather than corruption.
const (
	OpGet Op = iota + 1
	OpSet
	OpDelete
	OpScan
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDelete:
		return "DELETE"
	case OpScan:
		return "SCAN"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// Status is a per-query response code.
type Status byte

// Response statuses.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusError
	// StatusBusy reports that the server shed the frame under overload
	// (admission control); the client should back off and retry.
	StatusBusy
)

// Query is one parsed key-value query.
type Query struct {
	Op    Op
	Key   []byte
	Value []byte
}

// Response is one per-query result.
type Response struct {
	Status Status
	Value  []byte
}

var (
	magic   = [4]byte{'D', 'K', 'V', '1'}
	magicV2 = [4]byte{'D', 'K', 'V', '2'}
)

// Frame header: magic + uint16 count.
const headerLen = 6

// V2 query frame header: magic + uint16 count + uint64 reqID + uint32 crc.
const headerLenV2 = 18

// V2 response frame header: magic + uint16 count + uint64 reqID +
// uint16 offset + uint32 crc.
const respHeaderLenV2 = 20

// queryHeaderLen is op + keyLen + valLen.
const queryHeaderLen = 7

// respHeaderLen is status + valLen.
const respHeaderLen = 5

// MaxFrameBytes is the largest frame this implementation emits; it matches a
// jumbo UDP datagram.
const MaxFrameBytes = 64 << 10

// Errors returned by the parser.
var (
	ErrBadMagic    = errors.New("proto: bad frame magic")
	ErrTruncated   = errors.New("proto: truncated frame")
	ErrBadOp       = errors.New("proto: unknown query op")
	ErrBadChecksum = errors.New("proto: bad frame checksum")
)

// AppendQuery encodes q onto dst and returns the extended slice.
func AppendQuery(dst []byte, q Query) []byte {
	dst = append(dst, byte(q.Op))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(q.Key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(q.Value)))
	dst = append(dst, q.Key...)
	dst = append(dst, q.Value...)
	return dst
}

// EncodedQueryLen returns the wire size of q.
func EncodedQueryLen(q Query) int {
	return queryHeaderLen + len(q.Key) + len(q.Value)
}

// EncodeFrame builds a frame holding queries. It panics if the batch exceeds
// 65535 queries (the count field's range); callers split batches first.
func EncodeFrame(dst []byte, queries []Query) []byte {
	if len(queries) > 0xFFFF {
		panic("proto: too many queries for one frame")
	}
	dst = append(dst, magic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(queries)))
	for _, q := range queries {
		dst = AppendQuery(dst, q)
	}
	return dst
}

// EncodeFrameV2 builds a v2 frame holding queries, stamped with the given
// request ID and a payload checksum. It panics if the batch exceeds 65535
// queries; callers split batches first.
func EncodeFrameV2(dst []byte, reqID uint64, queries []Query) []byte {
	if len(queries) > 0xFFFF {
		panic("proto: too many queries for one frame")
	}
	base := len(dst)
	dst = append(dst, magicV2[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(queries)))
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = append(dst, 0, 0, 0, 0) // checksum placeholder
	for _, q := range queries {
		dst = AppendQuery(dst, q)
	}
	sum := crc32.ChecksumIEEE(dst[base+headerLenV2:])
	binary.LittleEndian.PutUint32(dst[base+14:base+18], sum)
	return dst
}

// FrameHeader decodes just the header of a query frame (either version): the
// query count, the request ID (0 for v1) and whether the frame is v2. For v2
// frames the payload checksum is verified, so a positive result means the
// frame is authentic end to end; for both versions the count is checked
// against the payload size, so the count of a valid header can be trusted
// for sizing a reply. This is the cheap pre-parse the server's admission
// control uses to shed a frame without decoding its queries.
func FrameHeader(frame []byte) (count int, reqID uint64, v2 bool, err error) {
	if len(frame) < headerLen {
		return 0, 0, false, ErrTruncated
	}
	switch [4]byte(frame[:4]) {
	case magic:
		count = int(binary.LittleEndian.Uint16(frame[4:6]))
		if len(frame)-headerLen < count*queryHeaderLen {
			return 0, 0, false, ErrTruncated
		}
		return count, 0, false, nil
	case magicV2:
		if len(frame) < headerLenV2 {
			return 0, 0, false, ErrTruncated
		}
		count = int(binary.LittleEndian.Uint16(frame[4:6]))
		reqID = binary.LittleEndian.Uint64(frame[6:14])
		sum := binary.LittleEndian.Uint32(frame[14:18])
		if crc32.ChecksumIEEE(frame[headerLenV2:]) != sum {
			return 0, 0, false, ErrBadChecksum
		}
		if len(frame)-headerLenV2 < count*queryHeaderLen {
			return 0, 0, false, ErrTruncated
		}
		return count, reqID, true, nil
	default:
		return 0, 0, false, ErrBadMagic
	}
}

// ParseFrame decodes all queries in frame (either version), appending to
// dst. Key and value slices alias frame.
func ParseFrame(frame []byte, dst []Query) ([]Query, error) {
	dst, _, err := ParseFrameID(frame, dst)
	return dst, err
}

// ParseFrameID decodes all queries in frame (either version), appending to
// dst, and returns the frame's request ID (0 for v1 frames). Key and value
// slices alias frame. V2 checksums are verified before any query is parsed.
func ParseFrameID(frame []byte, dst []Query) ([]Query, uint64, error) {
	count, reqID, v2, err := FrameHeader(frame)
	if err != nil {
		return dst, 0, err
	}
	off := headerLen
	if v2 {
		off = headerLenV2
	}
	dst, err = parseQueries(frame, off, count, dst)
	return dst, reqID, err
}

// parseQueries decodes count query records starting at off.
func parseQueries(frame []byte, off, count int, dst []Query) ([]Query, error) {
	for i := 0; i < count; i++ {
		if len(frame)-off < queryHeaderLen {
			return dst, ErrTruncated
		}
		op := Op(frame[off])
		if op != OpGet && op != OpSet && op != OpDelete && op != OpScan {
			return dst, ErrBadOp
		}
		keyLen := int(binary.LittleEndian.Uint16(frame[off+1 : off+3]))
		valLen := int(binary.LittleEndian.Uint32(frame[off+3 : off+7]))
		off += queryHeaderLen
		if len(frame)-off < keyLen+valLen {
			return dst, ErrTruncated
		}
		q := Query{
			Op:  op,
			Key: frame[off : off+keyLen],
		}
		off += keyLen
		if valLen > 0 {
			q.Value = frame[off : off+valLen]
			off += valLen
		}
		dst = append(dst, q)
	}
	return dst, nil
}

// AppendResponse encodes r onto dst.
func AppendResponse(dst []byte, r Response) []byte {
	dst = append(dst, byte(r.Status))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Value)))
	dst = append(dst, r.Value...)
	return dst
}

// EncodeResponseFrame builds a response frame.
func EncodeResponseFrame(dst []byte, resps []Response) []byte {
	if len(resps) > 0xFFFF {
		panic("proto: too many responses for one frame")
	}
	dst = append(dst, magic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(resps)))
	for _, r := range resps {
		dst = AppendResponse(dst, r)
	}
	return dst
}

// EncodeResponseFrameV2 builds a v2 response frame echoing the request ID,
// carrying the batch offset of its first response and a payload checksum.
func EncodeResponseFrameV2(dst []byte, reqID uint64, offset int, resps []Response) []byte {
	if len(resps) > 0xFFFF {
		panic("proto: too many responses for one frame")
	}
	if offset < 0 || offset > 0xFFFF {
		panic("proto: response offset out of range")
	}
	base := len(dst)
	dst = append(dst, magicV2[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(resps)))
	dst = binary.LittleEndian.AppendUint64(dst, reqID)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(offset))
	dst = append(dst, 0, 0, 0, 0) // checksum placeholder
	for _, r := range resps {
		dst = AppendResponse(dst, r)
	}
	sum := crc32.ChecksumIEEE(dst[base+respHeaderLenV2:])
	binary.LittleEndian.PutUint32(dst[base+16:base+20], sum)
	return dst
}

// ParseResponseFrame decodes a response frame (either version), appending to
// dst. Value slices alias frame.
func ParseResponseFrame(frame []byte, dst []Response) ([]Response, error) {
	dst, _, _, err := ParseResponseFrameID(frame, dst)
	return dst, err
}

// ParseResponseFrameID decodes a response frame (either version), appending
// to dst, and returns the echoed request ID and the batch offset of the
// frame's first response (both 0 for v1 frames). Value slices alias frame.
// V2 checksums are verified before any response is parsed.
func ParseResponseFrameID(frame []byte, dst []Response) ([]Response, uint64, int, error) {
	if len(frame) < headerLen {
		return dst, 0, 0, ErrTruncated
	}
	var (
		count, off, offset int
		reqID              uint64
	)
	switch [4]byte(frame[:4]) {
	case magic:
		count = int(binary.LittleEndian.Uint16(frame[4:6]))
		off = headerLen
	case magicV2:
		if len(frame) < respHeaderLenV2 {
			return dst, 0, 0, ErrTruncated
		}
		count = int(binary.LittleEndian.Uint16(frame[4:6]))
		reqID = binary.LittleEndian.Uint64(frame[6:14])
		offset = int(binary.LittleEndian.Uint16(frame[14:16]))
		sum := binary.LittleEndian.Uint32(frame[16:20])
		if crc32.ChecksumIEEE(frame[respHeaderLenV2:]) != sum {
			return dst, 0, 0, ErrBadChecksum
		}
		off = respHeaderLenV2
	default:
		return dst, 0, 0, ErrBadMagic
	}
	for i := 0; i < count; i++ {
		if len(frame)-off < respHeaderLen {
			return dst, 0, 0, ErrTruncated
		}
		status := Status(frame[off])
		valLen := int(binary.LittleEndian.Uint32(frame[off+1 : off+5]))
		off += respHeaderLen
		if len(frame)-off < valLen {
			return dst, 0, 0, ErrTruncated
		}
		r := Response{Status: status}
		if valLen > 0 {
			r.Value = frame[off : off+valLen]
			off += valLen
		}
		dst = append(dst, r)
	}
	return dst, reqID, offset, nil
}

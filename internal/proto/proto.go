// Package proto implements the wire protocol of the key-value store: a
// compact binary format carrying batched queries in a single datagram, the
// way the paper's evaluation batches "queries and their responses in an
// Ethernet frame as many as possible" (§V-A).
//
// Frame layout:
//
//	[0:4)  magic "DKV1"
//	[4:6)  query count (little endian)
//	then per query:
//	  [1B op] [2B key length] [4B value length] [key bytes] [value bytes]
//
// GET and DELETE queries carry a zero value length. Responses use the same
// frame header with per-query records:
//
//	[1B status] [4B value length] [value bytes]
//
// Parsing is zero-copy: returned key/value slices alias the input buffer.
package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Op identifies a query type.
type Op byte

// Query operations. The three types are the full client interface of an IMKV
// (paper §II-B).
const (
	OpGet Op = iota + 1
	OpSet
	OpDelete
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpGet:
		return "GET"
	case OpSet:
		return "SET"
	case OpDelete:
		return "DELETE"
	default:
		return fmt.Sprintf("Op(%d)", byte(o))
	}
}

// Status is a per-query response code.
type Status byte

// Response statuses.
const (
	StatusOK Status = iota + 1
	StatusNotFound
	StatusError
)

// Query is one parsed key-value query.
type Query struct {
	Op    Op
	Key   []byte
	Value []byte
}

// Response is one per-query result.
type Response struct {
	Status Status
	Value  []byte
}

var magic = [4]byte{'D', 'K', 'V', '1'}

// Frame header: magic + uint16 count.
const headerLen = 6

// queryHeaderLen is op + keyLen + valLen.
const queryHeaderLen = 7

// respHeaderLen is status + valLen.
const respHeaderLen = 5

// MaxFrameBytes is the largest frame this implementation emits; it matches a
// jumbo UDP datagram.
const MaxFrameBytes = 64 << 10

// Errors returned by the parser.
var (
	ErrBadMagic  = errors.New("proto: bad frame magic")
	ErrTruncated = errors.New("proto: truncated frame")
	ErrBadOp     = errors.New("proto: unknown query op")
)

// AppendQuery encodes q onto dst and returns the extended slice.
func AppendQuery(dst []byte, q Query) []byte {
	dst = append(dst, byte(q.Op))
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(q.Key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(q.Value)))
	dst = append(dst, q.Key...)
	dst = append(dst, q.Value...)
	return dst
}

// EncodedQueryLen returns the wire size of q.
func EncodedQueryLen(q Query) int {
	return queryHeaderLen + len(q.Key) + len(q.Value)
}

// EncodeFrame builds a frame holding queries. It panics if the batch exceeds
// 65535 queries (the count field's range); callers split batches first.
func EncodeFrame(dst []byte, queries []Query) []byte {
	if len(queries) > 0xFFFF {
		panic("proto: too many queries for one frame")
	}
	dst = append(dst, magic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(queries)))
	for _, q := range queries {
		dst = AppendQuery(dst, q)
	}
	return dst
}

// ParseFrame decodes all queries in frame, appending to dst. Key and value
// slices alias frame.
func ParseFrame(frame []byte, dst []Query) ([]Query, error) {
	if len(frame) < headerLen {
		return dst, ErrTruncated
	}
	if [4]byte(frame[:4]) != magic {
		return dst, ErrBadMagic
	}
	count := int(binary.LittleEndian.Uint16(frame[4:6]))
	off := headerLen
	for i := 0; i < count; i++ {
		if len(frame)-off < queryHeaderLen {
			return dst, ErrTruncated
		}
		op := Op(frame[off])
		if op != OpGet && op != OpSet && op != OpDelete {
			return dst, ErrBadOp
		}
		keyLen := int(binary.LittleEndian.Uint16(frame[off+1 : off+3]))
		valLen := int(binary.LittleEndian.Uint32(frame[off+3 : off+7]))
		off += queryHeaderLen
		if len(frame)-off < keyLen+valLen {
			return dst, ErrTruncated
		}
		q := Query{
			Op:  op,
			Key: frame[off : off+keyLen],
		}
		off += keyLen
		if valLen > 0 {
			q.Value = frame[off : off+valLen]
			off += valLen
		}
		dst = append(dst, q)
	}
	return dst, nil
}

// AppendResponse encodes r onto dst.
func AppendResponse(dst []byte, r Response) []byte {
	dst = append(dst, byte(r.Status))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(r.Value)))
	dst = append(dst, r.Value...)
	return dst
}

// EncodeResponseFrame builds a response frame.
func EncodeResponseFrame(dst []byte, resps []Response) []byte {
	if len(resps) > 0xFFFF {
		panic("proto: too many responses for one frame")
	}
	dst = append(dst, magic[:]...)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(resps)))
	for _, r := range resps {
		dst = AppendResponse(dst, r)
	}
	return dst
}

// ParseResponseFrame decodes a response frame, appending to dst. Value slices
// alias frame.
func ParseResponseFrame(frame []byte, dst []Response) ([]Response, error) {
	if len(frame) < headerLen {
		return dst, ErrTruncated
	}
	if [4]byte(frame[:4]) != magic {
		return dst, ErrBadMagic
	}
	count := int(binary.LittleEndian.Uint16(frame[4:6]))
	off := headerLen
	for i := 0; i < count; i++ {
		if len(frame)-off < respHeaderLen {
			return dst, ErrTruncated
		}
		status := Status(frame[off])
		valLen := int(binary.LittleEndian.Uint32(frame[off+1 : off+5]))
		off += respHeaderLen
		if len(frame)-off < valLen {
			return dst, ErrTruncated
		}
		r := Response{Status: status}
		if valLen > 0 {
			r.Value = frame[off : off+valLen]
			off += valLen
		}
		dst = append(dst, r)
	}
	return dst, nil
}

package proto

import (
	"encoding/binary"
	"errors"
)

// SCAN wire encoding. A SCAN query reuses the ordinary query record: Key
// carries the range start (inclusive; empty = smallest key), and Value
// carries the scan argument block:
//
//	[0:4) limit (little endian uint32; 0 = server default)
//	[4:)  range end key bytes (exclusive; empty = unbounded)
//
// A successful SCAN response's Value is a result block:
//
//	[0:4) entry count (little endian uint32)
//	then per entry: [2B key length] [4B value length] [key bytes] [value bytes]
//
// Servers clamp the limit to MaxScanLimit and additionally stop a scan when
// the result block reaches MaxScanResultBytes, so one SCAN response always
// fits a frame; clients paginate by re-issuing with start = last returned
// key + one zero byte (the smallest strictly-greater key).

const (
	// scanArgHeaderLen is the fixed prefix of a SCAN query's Value.
	scanArgHeaderLen = 4
	// ScanResultHeaderLen is the fixed prefix of a SCAN response's Value.
	ScanResultHeaderLen = 4
	// scanEntryHeaderLen is keyLen + valLen.
	scanEntryHeaderLen = 6

	// DefaultScanLimit is applied when a SCAN carries limit 0.
	DefaultScanLimit = 64
	// MaxScanLimit caps the per-SCAN entry count regardless of the request.
	MaxScanLimit = 1024
	// MaxScanResultBytes caps one SCAN's result block so the response frame
	// stays well inside MaxFrameBytes even with headers around it.
	MaxScanResultBytes = 32 << 10
)

// Errors returned by the scan decoders.
var (
	ErrBadScanArg    = errors.New("proto: truncated scan argument")
	ErrBadScanResult = errors.New("proto: malformed scan result")
)

// AppendScanArg encodes a SCAN argument block (the query's Value) onto dst.
func AppendScanArg(dst []byte, limit uint32, end []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, limit)
	return append(dst, end...)
}

// ScanQuery builds the full SCAN query for [start, end) with the given
// limit. The returned query's Value is freshly allocated.
func ScanQuery(start, end []byte, limit int) Query {
	if limit < 0 {
		limit = 0
	}
	return Query{
		Op:    OpScan,
		Key:   start,
		Value: AppendScanArg(make([]byte, 0, scanArgHeaderLen+len(end)), uint32(limit), end),
	}
}

// ParseScanArg decodes a SCAN query's Value. The returned end slice aliases
// v; an empty end means unbounded. The limit is clamped into
// [1, MaxScanLimit] (0 becomes DefaultScanLimit).
func ParseScanArg(v []byte) (limit int, end []byte, err error) {
	if len(v) < scanArgHeaderLen {
		return 0, nil, ErrBadScanArg
	}
	limit = int(binary.LittleEndian.Uint32(v[:4]))
	if limit == 0 {
		limit = DefaultScanLimit
	}
	if limit > MaxScanLimit {
		limit = MaxScanLimit
	}
	return limit, v[scanArgHeaderLen:], nil
}

// BeginScanResult appends a result-block header with a zero entry count and
// returns the extended slice plus the header's offset, for patching by
// FinishScanResult once the entries are appended.
func BeginScanResult(dst []byte) ([]byte, int) {
	mark := len(dst)
	return append(dst, 0, 0, 0, 0), mark
}

// AppendScanEntry appends one key/value entry to a result block under
// construction.
func AppendScanEntry(dst, key, val []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(key)))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(val)))
	dst = append(dst, key...)
	return append(dst, val...)
}

// FinishScanResult patches the entry count written by BeginScanResult.
func FinishScanResult(dst []byte, mark, count int) {
	binary.LittleEndian.PutUint32(dst[mark:mark+4], uint32(count))
}

// DecodeScanResult walks a SCAN response's result block, calling fn for each
// entry (slices alias v) until fn returns false. It returns the block's
// entry count and an error if the block is truncated or over-counts.
func DecodeScanResult(v []byte, fn func(key, val []byte) bool) (int, error) {
	if len(v) < ScanResultHeaderLen {
		return 0, ErrBadScanResult
	}
	count := int(binary.LittleEndian.Uint32(v[:4]))
	off := ScanResultHeaderLen
	for i := 0; i < count; i++ {
		if len(v)-off < scanEntryHeaderLen {
			return 0, ErrBadScanResult
		}
		keyLen := int(binary.LittleEndian.Uint16(v[off : off+2]))
		valLen := int(binary.LittleEndian.Uint32(v[off+2 : off+6]))
		off += scanEntryHeaderLen
		if len(v)-off < keyLen+valLen {
			return 0, ErrBadScanResult
		}
		key := v[off : off+keyLen]
		val := v[off+keyLen : off+keyLen+valLen]
		off += keyLen + valLen
		if fn != nil && !fn(key, val) {
			return count, nil
		}
	}
	return count, nil
}

// ScanEntry is one decoded SCAN result entry.
type ScanEntry struct {
	Key, Value []byte
}

// ParseScanResult decodes a full result block into a slice (copies nothing:
// entries alias v).
func ParseScanResult(v []byte) ([]ScanEntry, error) {
	var out []ScanEntry
	_, err := DecodeScanResult(v, func(k, val []byte) bool {
		out = append(out, ScanEntry{Key: k, Value: val})
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

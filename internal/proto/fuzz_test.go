package proto

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns valid frames of both versions plus truncations, giving
// the fuzzer structured starting points.
func queryFrameSeeds() [][]byte {
	queries := []Query{
		{Op: OpSet, Key: []byte("alpha"), Value: []byte("one")},
		{Op: OpGet, Key: []byte("beta")},
		{Op: OpDelete, Key: bytes.Repeat([]byte("k"), 300)},
	}
	v1 := EncodeFrame(nil, queries)
	v2 := EncodeFrameV2(nil, 0x1122334455667788, queries)
	return [][]byte{
		v1, v2,
		v1[:len(v1)/2], v2[:len(v2)/2],
		v1[:5], v2[:17],
		EncodeFrame(nil, nil),
		EncodeFrameV2(nil, 1, nil),
		[]byte("DKV1"), []byte("DKV2"), []byte("XXXX"), {},
	}
}

func FuzzParseFrame(f *testing.F) {
	for _, seed := range queryFrameSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		// Must never panic; on success every key/value must alias the frame.
		qs, id, err := ParseFrameID(frame, nil)
		if err != nil {
			return
		}
		qs2, err2 := ParseFrame(frame, nil)
		if err2 != nil || len(qs2) != len(qs) {
			t.Fatalf("ParseFrame and ParseFrameID disagree: %d/%v vs %d", len(qs2), err2, len(qs))
		}
		for _, q := range qs {
			if len(q.Key) > len(frame) || len(q.Value) > len(frame) {
				t.Fatalf("query slice longer than frame: %d/%d", len(q.Key), len(q.Value))
			}
		}
		// Re-encoding the parsed queries must reparse to the same queries.
		var again []byte
		if _, _, v2, _ := FrameHeader(frame); v2 {
			again = EncodeFrameV2(nil, id, qs)
		} else {
			again = EncodeFrame(nil, qs)
		}
		qs3, id3, err := ParseFrameID(again, nil)
		if err != nil || id3 != id || len(qs3) != len(qs) {
			t.Fatalf("re-encode mismatch: %d queries id %d err %v", len(qs3), id3, err)
		}
		for i := range qs {
			if !bytes.Equal(qs[i].Key, qs3[i].Key) || !bytes.Equal(qs[i].Value, qs3[i].Value) || qs[i].Op != qs3[i].Op {
				t.Fatalf("query %d mutated across re-encode", i)
			}
		}
	})
}

func respFrameSeeds() [][]byte {
	resps := []Response{
		{Status: StatusOK, Value: []byte("value")},
		{Status: StatusNotFound},
		{Status: StatusError},
		{Status: StatusBusy},
		{Status: StatusOK, Value: bytes.Repeat([]byte("v"), 500)},
	}
	v1 := EncodeResponseFrame(nil, resps)
	v2 := EncodeResponseFrameV2(nil, 0x55AA, 3, resps)
	return [][]byte{
		v1, v2,
		v1[:len(v1)/2], v2[:len(v2)/2],
		v1[:5], v2[:19],
		EncodeResponseFrame(nil, nil),
		EncodeResponseFrameV2(nil, 1, 0, nil),
		[]byte("DKV1"), []byte("DKV2"), {},
	}
}

func FuzzParseResponseFrame(f *testing.F) {
	for _, seed := range respFrameSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		rs, id, off, err := ParseResponseFrameID(frame, nil)
		if err != nil {
			return
		}
		rs2, err2 := ParseResponseFrame(frame, nil)
		if err2 != nil || len(rs2) != len(rs) {
			t.Fatalf("ParseResponseFrame and ParseResponseFrameID disagree")
		}
		for _, r := range rs {
			if len(r.Value) > len(frame) {
				t.Fatalf("value slice longer than frame: %d", len(r.Value))
			}
		}
		if off < 0 || off > 0xFFFF {
			t.Fatalf("offset out of range: %d", off)
		}
		// Round trip through the matching encoder.
		var again []byte
		if len(frame) >= 4 && frame[3] == '2' {
			again = EncodeResponseFrameV2(nil, id, off, rs)
		} else {
			again = EncodeResponseFrame(nil, rs)
		}
		rs3, id3, off3, err := ParseResponseFrameID(again, nil)
		if err != nil || id3 != id || off3 != off || len(rs3) != len(rs) {
			t.Fatalf("re-encode mismatch: %d resps id %d off %d err %v", len(rs3), id3, off3, err)
		}
		for i := range rs {
			if rs[i].Status != rs3[i].Status || !bytes.Equal(rs[i].Value, rs3[i].Value) {
				t.Fatalf("response %d mutated across re-encode", i)
			}
		}
	})
}

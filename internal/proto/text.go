package proto

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// This file implements a memcached-compatible ASCII protocol subset (get /
// gets / set / add / replace / delete / version / verbosity / quit), so the
// real store can serve stock memcached clients over TCP. The paper's systems
// speak memcached semantics (§II-B); the binary frame format elsewhere in
// this package is the batched UDP transport used by the evaluation.

// TextBackend is the storage interface the text protocol drives.
type TextBackend interface {
	Get(key []byte) ([]byte, bool)
	Set(key, value []byte) error
	Delete(key []byte) bool
}

// TextError values reported to clients.
var (
	errTooLong  = errors.New("proto/text: line too long")
	errBadBytes = errors.New("proto/text: bad byte count")
)

// maxTextKeyLen mirrors memcached's 250-byte key limit.
const maxTextKeyLen = 250

// maxTextValueLen bounds a single text-protocol value.
const maxTextValueLen = 8 << 20

// TextSession serves the memcached ASCII protocol on one connection until
// EOF, "quit", or a fatal protocol error. It returns nil on clean shutdown.
func TextSession(rw io.ReadWriter, backend TextBackend) error {
	r := bufio.NewReaderSize(rw, 64<<10)
	w := bufio.NewWriterSize(rw, 64<<10)
	for {
		line, err := readTextLine(r)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		if len(line) == 0 {
			continue
		}
		quit, err := dispatchTextCommand(line, r, w, backend)
		if err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		if quit {
			return nil
		}
	}
}

// readTextLine reads one \r\n- or \n-terminated line, without the terminator.
func readTextLine(r *bufio.Reader) ([]byte, error) {
	line, err := r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		return nil, errTooLong
	}
	if err != nil {
		return nil, err
	}
	line = bytes.TrimRight(line, "\r\n")
	return line, nil
}

// dispatchTextCommand handles one request line. It reports whether the
// session should close.
func dispatchTextCommand(line []byte, r *bufio.Reader, w *bufio.Writer, backend TextBackend) (bool, error) {
	fields := bytes.Fields(line)
	cmd := string(fields[0])
	switch cmd {
	case "get", "gets":
		if len(fields) < 2 {
			return false, clientError(w, "get requires a key")
		}
		for _, key := range fields[1:] {
			if len(key) > maxTextKeyLen {
				continue
			}
			if v, ok := backend.Get(key); ok {
				fmt.Fprintf(w, "VALUE %s 0 %d\r\n", key, len(v))
				w.Write(v)
				w.WriteString("\r\n")
			}
		}
		w.WriteString("END\r\n")
	case "set", "add", "replace":
		// <cmd> <key> <flags> <exptime> <bytes> [noreply]
		if len(fields) < 5 {
			return false, clientError(w, cmd+" requires key flags exptime bytes")
		}
		key := fields[1]
		nbytes, err := strconv.Atoi(string(fields[4]))
		if err != nil || nbytes < 0 || nbytes > maxTextValueLen {
			return false, clientError(w, errBadBytes.Error())
		}
		noreply := len(fields) >= 6 && string(fields[5]) == "noreply"
		value := make([]byte, nbytes+2)
		if _, err := io.ReadFull(r, value); err != nil {
			return false, err
		}
		if !bytes.HasSuffix(value, []byte("\r\n")) {
			return false, clientError(w, "bad data chunk")
		}
		value = value[:nbytes]
		if len(key) > maxTextKeyLen {
			return false, clientError(w, "key too long")
		}
		_, exists := backend.Get(key)
		switch cmd {
		case "add":
			if exists {
				reply(w, noreply, "NOT_STORED\r\n")
				return false, nil
			}
		case "replace":
			if !exists {
				reply(w, noreply, "NOT_STORED\r\n")
				return false, nil
			}
		}
		if err := backend.Set(key, value); err != nil {
			reply(w, noreply, "SERVER_ERROR out of memory storing object\r\n")
			return false, nil
		}
		reply(w, noreply, "STORED\r\n")
	case "delete":
		if len(fields) < 2 {
			return false, clientError(w, "delete requires a key")
		}
		noreply := len(fields) >= 3 && string(fields[2]) == "noreply"
		if backend.Delete(fields[1]) {
			reply(w, noreply, "DELETED\r\n")
		} else {
			reply(w, noreply, "NOT_FOUND\r\n")
		}
	case "version":
		w.WriteString("VERSION dido-repro 1.0\r\n")
	case "verbosity":
		w.WriteString("OK\r\n")
	case "quit":
		return true, nil
	default:
		w.WriteString("ERROR\r\n")
	}
	return false, nil
}

func reply(w *bufio.Writer, noreply bool, msg string) {
	if !noreply {
		w.WriteString(msg)
	}
}

func clientError(w *bufio.Writer, msg string) error {
	fmt.Fprintf(w, "CLIENT_ERROR %s\r\n", msg)
	return nil
}

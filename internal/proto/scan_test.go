package proto

import (
	"bytes"
	"testing"
)

func TestScanArgRoundTrip(t *testing.T) {
	q := ScanQuery([]byte("aaa"), []byte("zzz"), 17)
	if q.Op != OpScan || string(q.Key) != "aaa" {
		t.Fatalf("ScanQuery built %+v", q)
	}
	limit, end, err := ParseScanArg(q.Value)
	if err != nil || limit != 17 || string(end) != "zzz" {
		t.Fatalf("ParseScanArg = %d/%q/%v", limit, end, err)
	}
	// Zero limit takes the server default; oversized limits clamp.
	if l, _, _ := ParseScanArg(AppendScanArg(nil, 0, nil)); l != DefaultScanLimit {
		t.Fatalf("zero limit -> %d, want %d", l, DefaultScanLimit)
	}
	if l, _, _ := ParseScanArg(AppendScanArg(nil, 1<<30, nil)); l != MaxScanLimit {
		t.Fatalf("huge limit -> %d, want %d", l, MaxScanLimit)
	}
	// Unbounded end is empty.
	if _, end, _ := ParseScanArg(AppendScanArg(nil, 5, nil)); len(end) != 0 {
		t.Fatalf("unbounded end = %q", end)
	}
	if _, _, err := ParseScanArg([]byte{1, 2}); err != ErrBadScanArg {
		t.Fatalf("truncated arg err = %v", err)
	}
	// A SCAN query survives the ordinary frame round trip.
	frame := EncodeFrameV2(nil, 42, []Query{q})
	qs, id, err := ParseFrameID(frame, nil)
	if err != nil || id != 42 || len(qs) != 1 || qs[0].Op != OpScan {
		t.Fatalf("frame round trip: %v %d %+v", err, id, qs)
	}
}

func TestScanResultRoundTrip(t *testing.T) {
	dst, mark := BeginScanResult(nil)
	dst = AppendScanEntry(dst, []byte("k1"), []byte("v1"))
	dst = AppendScanEntry(dst, []byte("k2"), nil) // empty value is legal
	dst = AppendScanEntry(dst, []byte("k3"), bytes.Repeat([]byte("x"), 300))
	FinishScanResult(dst, mark, 3)

	entries, err := ParseScanResult(dst)
	if err != nil || len(entries) != 3 {
		t.Fatalf("ParseScanResult = %d entries, err %v", len(entries), err)
	}
	if string(entries[0].Key) != "k1" || string(entries[0].Value) != "v1" {
		t.Fatalf("entry 0 = %q/%q", entries[0].Key, entries[0].Value)
	}
	if string(entries[1].Key) != "k2" || len(entries[1].Value) != 0 {
		t.Fatalf("entry 1 = %q/%q", entries[1].Key, entries[1].Value)
	}
	if len(entries[2].Value) != 300 {
		t.Fatalf("entry 2 value len = %d", len(entries[2].Value))
	}

	// Early stop is clean.
	n := 0
	if _, err := DecodeScanResult(dst, func(k, v []byte) bool { n++; return false }); err != nil || n != 1 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}

	// Truncations and over-counts must error, not over-read.
	for cut := 0; cut < len(dst); cut++ {
		if cut >= ScanResultHeaderLen {
			if _, err := DecodeScanResult(dst[:cut], nil); err == nil {
				// A cut can still be valid only if it lands exactly after a
				// whole number of entries AND the count matches — it cannot
				// here since the count says 3.
				t.Fatalf("truncation at %d parsed cleanly", cut)
			}
		}
	}
	lying := append([]byte(nil), dst...)
	FinishScanResult(lying, mark, 4)
	if _, err := DecodeScanResult(lying, nil); err != ErrBadScanResult {
		t.Fatalf("over-count err = %v", err)
	}
}

func TestOpScanString(t *testing.T) {
	if OpScan.String() != "SCAN" {
		t.Fatalf("OpScan.String() = %q", OpScan.String())
	}
}

// FuzzScanOpcode covers the SCAN-bearing wire surface end to end: arbitrary
// bytes must never panic or over-read — whether treated as a whole DKV frame
// holding SCAN queries, as a raw scan argument block, or as a scan result
// block — and every decoded slice must alias the input.
func FuzzScanOpcode(f *testing.F) {
	f.Add(EncodeFrameV2(nil, 7, []Query{ScanQuery([]byte("a"), []byte("q"), 10)}))
	f.Add(EncodeFrame(nil, []Query{ScanQuery(nil, nil, 0)}))
	f.Add(EncodeFrameV2(nil, 9, []Query{
		{Op: OpSet, Key: []byte("k"), Value: []byte("v")},
		ScanQuery([]byte("k"), nil, 3),
	}))
	res, mark := BeginScanResult(nil)
	res = AppendScanEntry(res, []byte("k"), []byte("v"))
	FinishScanResult(res, mark, 1)
	f.Add(res)
	f.Add(AppendScanArg(nil, 5, []byte("end")))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// As a frame: SCAN queries that survive parsing get their argument
		// block decoded like the server would.
		if qs, _, err := ParseFrameID(data, nil); err == nil {
			for _, q := range qs {
				if q.Op != OpScan {
					continue
				}
				limit, end, err := ParseScanArg(q.Value)
				if err != nil {
					continue
				}
				if limit < 1 || limit > MaxScanLimit {
					t.Fatalf("limit out of range: %d", limit)
				}
				if len(end) > len(data) {
					t.Fatalf("end slice outlives frame: %d > %d", len(end), len(data))
				}
			}
		}
		// As a raw scan argument block.
		if limit, end, err := ParseScanArg(data); err == nil {
			if limit < 1 || limit > MaxScanLimit || len(end) > len(data) {
				t.Fatalf("arg decode out of bounds: %d %d", limit, len(end))
			}
		}
		// As a scan result block: every entry must alias data.
		n := 0
		count, err := DecodeScanResult(data, func(k, v []byte) bool {
			if len(k) > len(data) || len(v) > len(data) {
				t.Fatalf("entry slice longer than input")
			}
			n++
			return true
		})
		if err == nil && n != count {
			t.Fatalf("count %d but visited %d", count, n)
		}
	})
}

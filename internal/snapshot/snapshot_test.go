package snapshot

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/wal"
)

func kvIterOf(m map[string]string) KVIter {
	return func(fn func(key, value []byte) bool) {
		for k, v := range m {
			if !fn([]byte(k), []byte(v)) {
				return
			}
		}
	}
}

type replyEntry struct {
	addr   string
	id     uint64
	frames [][]byte
}

func replyIterOf(rs []replyEntry) ReplyIter {
	return func(fn func(addr string, id uint64, frames [][]byte) bool) {
		for _, r := range rs {
			if !fn(r.addr, r.id, r.frames) {
				return
			}
		}
	}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapFile)
	kvs := map[string]string{}
	for i := 0; i < 300; i++ {
		kvs[fmt.Sprintf("key-%03d", i)] = fmt.Sprintf("val-%03d", i)
	}
	replies := []replyEntry{
		{addr: "10.1.2.3:4444", id: 9, frames: [][]byte{[]byte("fA"), []byte("fB")}},
		{addr: "10.1.2.4:5555", id: 11, frames: [][]byte{[]byte("x")}},
	}
	bytes, entries, err := Write(path, kvIterOf(kvs), replyIterOf(replies))
	if err != nil {
		t.Fatal(err)
	}
	if entries != len(kvs)+len(replies) {
		t.Fatalf("wrote %d entries, want %d", entries, len(kvs)+len(replies))
	}
	if fi, _ := os.Stat(path); fi.Size() != bytes {
		t.Fatalf("reported %d bytes, file is %d", bytes, fi.Size())
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("side file left behind")
	}

	gotKV := map[string]string{}
	var gotReplies []replyEntry
	n, err := Load(path,
		func(k, v []byte) { gotKV[string(k)] = string(v) },
		func(addr string, id uint64, frames [][]byte) {
			r := replyEntry{addr: addr, id: id}
			for _, f := range frames {
				r.frames = append(r.frames, append([]byte(nil), f...))
			}
			gotReplies = append(gotReplies, r)
		})
	if err != nil || n != entries {
		t.Fatalf("load: n=%d err=%v", n, err)
	}
	if len(gotKV) != len(kvs) {
		t.Fatalf("loaded %d kvs, want %d", len(gotKV), len(kvs))
	}
	for k, v := range kvs {
		if gotKV[k] != v {
			t.Fatalf("key %s: loaded %q want %q", k, gotKV[k], v)
		}
	}
	if len(gotReplies) != 2 || gotReplies[0].addr != "10.1.2.3:4444" ||
		gotReplies[0].id != 9 || string(gotReplies[0].frames[1]) != "fB" {
		t.Fatalf("replies: %+v", gotReplies)
	}
}

func TestLoadMissingIsEmpty(t *testing.T) {
	n, err := Load(filepath.Join(t.TempDir(), "none.snap"), nil, nil)
	if n != 0 || err != nil {
		t.Fatalf("missing snapshot: %d %v", n, err)
	}
}

// TestLoadRejectsCorruption flips every byte position in turn; Load must
// return ErrCorrupt (or load the intact file when the flip is undone) and
// never panic or apply from a damaged file.
func TestLoadRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, SnapFile)
	if _, _, err := Write(path, kvIterOf(map[string]string{"k1": "v1", "k2": "v2"}), nil); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(orig); i++ {
		bad := append([]byte(nil), orig...)
		bad[i] ^= 0x5a
		badPath := filepath.Join(dir, "bad.snap")
		if err := os.WriteFile(badPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(badPath, func(k, v []byte) {}, nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at %d: err=%v, want ErrCorrupt", i, err)
		}
	}
	// Truncations too.
	for cut := 0; cut < len(orig); cut += 3 {
		badPath := filepath.Join(dir, "cut.snap")
		if err := os.WriteFile(badPath, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(badPath, func(k, v []byte) {}, nil); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: err=%v, want ErrCorrupt", cut, err)
		}
	}
}

// TestManagerProtocol runs SnapshotOnce against a real WAL and checks the
// rotate → dump → rename → truncate sequence end to end.
func TestManagerProtocol(t *testing.T) {
	dir := t.TempDir()
	walPath, walOld, snapPath := Paths(dir)
	l, err := wal.Open(walPath, wal.Options{Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	state := map[string]string{"a": "1", "b": "2"}
	if err := l.Commit(wal.AppendSet(nil, []byte("a"), []byte("1")), 1); err != nil {
		t.Fatal(err)
	}
	m := &Manager{Dir: dir, Log: l, KV: kvIterOf(state)}
	if err := m.SnapshotOnce(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walOld); !os.IsNotExist(err) {
		t.Fatal("wal.old not truncated after successful snapshot")
	}
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != 0 {
		t.Fatalf("fresh wal.log: %v size=%v", err, fi)
	}
	n, err := Load(snapPath, func(k, v []byte) {
		if state[string(k)] != string(v) {
			t.Errorf("snapshot holds %q=%q", k, v)
		}
	}, nil)
	if err != nil || n != len(state) {
		t.Fatalf("load: %d %v", n, err)
	}
	st := m.Stats()
	if st.Snapshots != 1 || st.LastUnix == 0 || st.LastEntries != int64(len(state)) {
		t.Fatalf("manager stats: %+v", st)
	}
	// Writes after the snapshot land in the fresh segment.
	if err := l.Commit(wal.AppendSet(nil, []byte("c"), []byte("3")), 1); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if fi, _ := os.Stat(walPath); fi.Size() == 0 {
		t.Fatal("post-snapshot write missing from fresh wal.log")
	}
}

// TestFailedSnapshotNeverClobbersWALOld pins the crash-safety invariant of
// the snapshot/truncate protocol: once a cycle has rotated wal.log to wal.old
// and then failed to write its snapshot, wal.old is the only durable copy of
// those records, and later cycles must not rotate over it. The snapshot write
// is forced to fail by squatting a non-empty directory on snapshot.snap.tmp.
func TestFailedSnapshotNeverClobbersWALOld(t *testing.T) {
	dir := t.TempDir()
	walPath, walOld, snapPath := Paths(dir)
	l, err := wal.Open(walPath, wal.Options{Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	state := map[string]string{"a": "1"}
	if err := l.Commit(wal.AppendSet(nil, []byte("a"), []byte("1")), 1); err != nil {
		t.Fatal(err)
	}
	m := &Manager{Dir: dir, Log: l, KV: kvIterOf(state)}

	// Block the snapshot side file so Write fails after the rotate.
	blocker := snapPath + ".tmp"
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(blocker, "occupied"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotOnce(); err == nil {
		t.Fatal("snapshot succeeded despite blocked side file")
	}
	retained, err := os.ReadFile(walOld)
	if err != nil || len(retained) == 0 {
		t.Fatalf("failed cycle did not retain wal.old: %v (%d bytes)", err, len(retained))
	}

	// New writes land in the fresh wal.log; a second failing cycle must leave
	// the retained wal.old byte-identical, not rename the new segment over it.
	state["b"] = "2"
	if err := l.Commit(wal.AppendSet(nil, []byte("b"), []byte("2")), 1); err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotOnce(); err == nil {
		t.Fatal("snapshot succeeded despite blocked side file")
	}
	after, err := os.ReadFile(walOld)
	if err != nil {
		t.Fatalf("second failed cycle lost wal.old: %v", err)
	}
	if !bytes.Equal(retained, after) {
		t.Fatalf("second failed cycle clobbered wal.old: %d bytes -> %d bytes", len(retained), len(after))
	}
	if st := m.Stats(); st.Errors != 2 || st.Snapshots != 0 {
		t.Fatalf("manager stats after two failures: %+v", st)
	}

	// Unblock: the next cycle skips the rotate (wal.old still pending), dumps
	// the live store — which already contains wal.old's records, WAL being
	// redo-after-apply — and truncates by deleting wal.old.
	if err := os.RemoveAll(blocker); err != nil {
		t.Fatal(err)
	}
	if err := m.SnapshotOnce(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(walOld); !os.IsNotExist(err) {
		t.Fatal("wal.old not truncated after successful snapshot")
	}
	got := map[string]string{}
	if _, err := Load(snapPath, func(k, v []byte) { got[string(k)] = string(v) }, nil); err != nil {
		t.Fatal(err)
	}
	if got["a"] != "1" || got["b"] != "2" {
		t.Fatalf("snapshot missing retained-segment state: %+v", got)
	}
	// The cycle that inherited a pending wal.old must not have rotated; the
	// next clean cycle truncates wal.log as usual.
	if err := m.SnapshotOnce(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(walPath); err != nil || fi.Size() != 0 {
		t.Fatalf("clean cycle did not rotate wal.log: %v size=%v", err, fi)
	}
}

// TestSnapshotOnceSerializes hammers SnapshotOnce from concurrent goroutines
// (the periodic Run goroutine racing an operator's SnapshotNow); the cycles
// must serialize so the resulting snapshot always loads intact.
func TestSnapshotOnceSerializes(t *testing.T) {
	dir := t.TempDir()
	walPath, _, snapPath := Paths(dir)
	l, err := wal.Open(walPath, wal.Options{Policy: wal.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	kvs := map[string]string{}
	for i := 0; i < 200; i++ {
		kvs[fmt.Sprintf("key-%03d", i)] = fmt.Sprintf("val-%03d", i)
	}
	m := &Manager{Dir: dir, Log: l, KV: kvIterOf(kvs)}

	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.SnapshotOnce(); err != nil {
				t.Errorf("concurrent snapshot: %v", err)
			}
		}()
	}
	wg.Wait()
	n, err := Load(snapPath, func(k, v []byte) {
		if kvs[string(k)] != string(v) {
			t.Errorf("snapshot holds %q=%q", k, v)
		}
	}, nil)
	if err != nil || n != len(kvs) {
		t.Fatalf("load after concurrent snapshots: n=%d err=%v", n, err)
	}
	if st := m.Stats(); st.Snapshots != callers || st.Errors != 0 {
		t.Fatalf("manager stats: %+v", st)
	}
}

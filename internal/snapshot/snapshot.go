// Package snapshot implements the durability tier's immutable on-disk
// snapshots (DESIGN.md §5.13). A snapshot is a flat, sequentially-parseable
// dump of the store's live objects plus the at-most-once reply cache, written
// side-file-then-rename so a crash mid-write never damages the previous
// snapshot, and CRC-sealed so recovery can tell a good snapshot from a
// damaged one. The format is mmap-friendly: one contiguous byte stream whose
// entries are parsed by slicing, so loading is a single sequential read with
// zero per-entry copies until the store itself copies the object in.
//
// The Manager coordinates the snapshot/truncate protocol with the WAL:
// rotate the log (wal.log → wal.old), walk the live store into snapshot.tmp,
// fsync + rename to snapshot.snap, fsync the directory, then delete wal.old —
// the WAL truncation. Recovery order is snapshot.snap, then wal.old (present
// only if a crash interrupted the protocol), then the wal.log tail; SET/DEL
// records are absolute and idempotent, so replaying an older segment over a
// newer snapshot converges.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/wal"
)

// File layout: magic, then tagged entries, then an end tag, an entry count,
// and a CRC32-IEEE over everything before the CRC itself.
const (
	tagEnd   byte = 0
	tagKV    byte = 1 // u32 keyLen, u32 valLen, key, value
	tagReply byte = 2 // u16 addrLen, addr, u64 reqID, u16 nFrames, per frame u32 len + bytes
)

var magic = []byte("DIDOSNP1")

// Standard file names inside a durability directory.
const (
	WALFile  = "wal.log"
	WALOld   = "wal.old"
	SnapFile = "snapshot.snap"
	SnapTmp  = SnapFile + ".tmp"
)

// Paths returns the durability file paths inside dir.
func Paths(dir string) (walPath, walOld, snapPath string) {
	return filepath.Join(dir, WALFile), filepath.Join(dir, WALOld), filepath.Join(dir, SnapFile)
}

// ErrCorrupt is returned by Load for a snapshot that fails its CRC or frame
// checks. Since snapshots are only ever renamed into place after a full
// fsync, a corrupt snapshot means the storage lied — recovery surfaces it
// rather than silently serving partial state.
var ErrCorrupt = errors.New("snapshot: corrupt")

// KVIter walks live key-value objects; the callback's slices may be reused.
type KVIter func(fn func(key, value []byte) bool)

// ReplyIter walks at-most-once reply-cache entries.
type ReplyIter func(fn func(addr string, id uint64, frames [][]byte) bool)

// crcWriter tees everything written through a running CRC.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	c.n += int64(len(p))
	return c.w.Write(p)
}

// Write dumps kv and replies to path using the side-file-then-rename
// protocol: everything goes to path+".tmp" first, is fsynced, renamed over
// path, and the directory fsynced. Either the old snapshot or the complete
// new one survives a crash at any point. Returns the snapshot size in bytes
// and the number of entries written.
func Write(path string, kv KVIter, replies ReplyIter) (int64, int, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, 0, err
	}
	defer os.Remove(tmp) // no-op after the rename succeeds

	cw := &crcWriter{w: bufio.NewWriterSize(f, 1<<20)}
	var werr error
	put := func(p []byte) {
		if werr == nil {
			_, werr = cw.Write(p)
		}
	}
	var scratch [10]byte
	entries := 0

	put(magic)
	if kv != nil {
		kv(func(key, value []byte) bool {
			scratch[0] = tagKV
			binary.LittleEndian.PutUint32(scratch[1:], uint32(len(key)))
			put(scratch[:5])
			binary.LittleEndian.PutUint32(scratch[:4], uint32(len(value)))
			put(scratch[:4])
			put(key)
			put(value)
			entries++
			return werr == nil
		})
	}
	if replies != nil {
		replies(func(addr string, id uint64, frames [][]byte) bool {
			scratch[0] = tagReply
			binary.LittleEndian.PutUint16(scratch[1:], uint16(len(addr)))
			put(scratch[:3])
			put([]byte(addr))
			binary.LittleEndian.PutUint64(scratch[:8], id)
			put(scratch[:8])
			binary.LittleEndian.PutUint16(scratch[:2], uint16(len(frames)))
			put(scratch[:2])
			for _, fr := range frames {
				binary.LittleEndian.PutUint32(scratch[:4], uint32(len(fr)))
				put(scratch[:4])
				put(fr)
			}
			entries++
			return werr == nil
		})
	}
	put([]byte{tagEnd})
	binary.LittleEndian.PutUint64(scratch[:8], uint64(entries))
	put(scratch[:8])
	// Seal: CRC over everything written so far.
	binary.LittleEndian.PutUint32(scratch[:4], cw.crc)
	put(scratch[:4])

	if werr == nil {
		werr = cw.w.Flush()
	}
	if werr == nil {
		werr = f.Sync()
	}
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		return 0, 0, fmt.Errorf("snapshot: write %s: %w", tmp, werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, 0, fmt.Errorf("snapshot: rename: %w", err)
	}
	syncDir(filepath.Dir(path))
	return cw.n, entries, nil
}

// Load reads the snapshot at path, verifying its CRC before applying a single
// entry, and invokes the callbacks for every entry. The slices passed to the
// callbacks alias the loaded buffer and must be copied if retained (the store
// copies on Set). A missing file is an empty snapshot, not an error; a
// damaged one returns ErrCorrupt.
func Load(path string, applyKV func(key, value []byte), applyReply func(addr string, id uint64, frames [][]byte)) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	// Minimum: magic + end tag + count + crc.
	if len(data) < len(magic)+1+8+4 {
		return 0, fmt.Errorf("%w: %s truncated (%d bytes)", ErrCorrupt, path, len(data))
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return 0, fmt.Errorf("%w: %s CRC mismatch", ErrCorrupt, path)
	}
	if string(data[:len(magic)]) != string(magic) {
		return 0, fmt.Errorf("%w: %s bad magic", ErrCorrupt, path)
	}
	wantEntries := binary.LittleEndian.Uint64(data[len(data)-12 : len(data)-4])

	off := len(magic)
	entries := 0
	p := data
	fail := func(what string) (int, error) {
		return entries, fmt.Errorf("%w: %s bad %s at offset %d", ErrCorrupt, path, what, off)
	}
	for {
		if off >= len(p)-12 {
			return fail("entry stream")
		}
		tag := p[off]
		off++
		switch tag {
		case tagEnd:
			if entries != int(wantEntries) {
				return fail("entry count")
			}
			if off != len(p)-12 {
				return fail("end position")
			}
			return entries, nil
		case tagKV:
			if off+8 > len(p)-12 {
				return fail("kv header")
			}
			kl := int(binary.LittleEndian.Uint32(p[off:]))
			vl := int(binary.LittleEndian.Uint32(p[off+4:]))
			off += 8
			if kl < 0 || vl < 0 || off+kl+vl > len(p)-12 {
				return fail("kv lengths")
			}
			if applyKV != nil {
				applyKV(p[off:off+kl], p[off+kl:off+kl+vl])
			}
			off += kl + vl
			entries++
		case tagReply:
			if off+2 > len(p)-12 {
				return fail("reply header")
			}
			al := int(binary.LittleEndian.Uint16(p[off:]))
			off += 2
			if off+al+10 > len(p)-12 {
				return fail("reply addr")
			}
			addr := string(p[off : off+al])
			off += al
			id := binary.LittleEndian.Uint64(p[off:])
			nf := int(binary.LittleEndian.Uint16(p[off+8:]))
			off += 10
			frames := make([][]byte, 0, nf)
			for i := 0; i < nf; i++ {
				if off+4 > len(p)-12 {
					return fail("reply frame header")
				}
				fl := int(binary.LittleEndian.Uint32(p[off:]))
				off += 4
				if fl < 0 || off+fl > len(p)-12 {
					return fail("reply frame")
				}
				frames = append(frames, p[off:off+fl])
				off += fl
			}
			if applyReply != nil {
				applyReply(addr, id, frames)
			}
			entries++
		default:
			return fail("tag")
		}
	}
}

// Manager runs the snapshot/truncate protocol against a live store and WAL.
type Manager struct {
	// Dir holds wal.log / wal.old / snapshot.snap.
	Dir string
	// Log is the WAL to rotate and truncate around snapshots.
	Log *wal.Log
	// KV and Replies walk the live state to dump.
	KV      KVIter
	Replies ReplyIter

	// mu serializes snapshot cycles: the periodic Run goroutine and an
	// operator's SnapshotNow must never interleave, or they would write the
	// same snapshot.tmp through independent fds and double-rotate the WAL.
	mu sync.Mutex

	snapshots, errs stats.Counter
	lastUnix        atomic.Int64
	lastBytes       atomic.Int64
	lastEntries     atomic.Int64
}

// ManagerStats is a snapshot of the Manager's counters.
type ManagerStats struct {
	Snapshots   uint64
	Errors      uint64
	LastUnix    int64 // completion time of the newest snapshot (0 = none yet)
	LastBytes   int64
	LastEntries int64
}

// Stats returns the manager's counters.
func (m *Manager) Stats() ManagerStats {
	return ManagerStats{
		Snapshots:   m.snapshots.Load(),
		Errors:      m.errs.Load(),
		LastUnix:    m.lastUnix.Load(),
		LastBytes:   m.lastBytes.Load(),
		LastEntries: m.lastEntries.Load(),
	}
}

// SnapshotOnce executes one full snapshot/truncate cycle:
//
//  1. rotate the WAL — wal.log becomes the immutable wal.old, a fresh
//     wal.log starts; every write from here on is in the new segment,
//  2. dump the live store (racing writers are fine: anything the walk
//     misses is in the new wal.log, anything it double-sees is idempotent),
//  3. rename the dump into place (the previous snapshot stays intact until
//     this instant),
//  4. delete wal.old — the WAL truncation; recovery now needs only the new
//     snapshot plus the new wal.log tail.
//
// Concurrent calls (the periodic Run goroutine vs. an operator's
// SnapshotNow) serialize on m.mu.
func (m *Manager) SnapshotOnce() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, walOld, snapPath := Paths(m.Dir)
	// A leftover wal.old means a prior cycle rotated but its snapshot never
	// completed — that segment is then the only durable copy of its acked
	// records, and rotating over it would destroy them. Skip the rotate: the
	// live store already holds everything in wal.old (the WAL is
	// redo-after-apply, records are appended only after the operation
	// executed), so the dump below captures it and the Remove afterwards
	// still truncates correctly. wal.log just keeps growing until a cycle
	// that starts clean rotates it.
	if _, err := os.Stat(walOld); errors.Is(err, fs.ErrNotExist) {
		if err := m.Log.Rotate(walOld); err != nil {
			m.errs.Inc()
			return err
		}
	} else if err != nil {
		m.errs.Inc()
		return err
	}
	bytes, entries, err := Write(snapPath, m.KV, m.Replies)
	if err != nil {
		// wal.old stays; recovery replays it over the previous snapshot.
		m.errs.Inc()
		return err
	}
	if err := os.Remove(walOld); err != nil && !errors.Is(err, fs.ErrNotExist) {
		m.errs.Inc()
		return err
	}
	m.snapshots.Inc()
	m.lastUnix.Store(time.Now().Unix())
	m.lastBytes.Store(bytes)
	m.lastEntries.Store(int64(entries))
	return nil
}

// Run snapshots every interval until stop is closed. Errors are counted and
// retried at the next tick (the WAL keeps everything in the meantime).
func (m *Manager) Run(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			m.SnapshotOnce() //nolint:errcheck // counted in Stats().Errors
		}
	}
}

func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() //nolint:errcheck
	d.Close()
}

// Package cuckoo implements the index data structure of the DIDO / Mega-KV
// design: a set-associative cuckoo hash table storing compact key signatures
// and opaque value locations (paper §II-B, §IV-B; Mega-KV [1]; partial-key
// cuckoo hashing per MemC3 [6]).
//
// Layout. The table is an array of buckets, each with 8 slots. A slot packs a
// 16-bit key signature and a 48-bit location handle into one uint64, accessed
// atomically — this mirrors the GPU-friendly flat layout of Mega-KV and lets
// the CPU and the (simulated) GPU operate on the same structure with
// fine-grained atomics, exactly the concurrency discipline the paper
// describes in §III-B2: compare-exchange for Insert/Delete, atomic loads for
// Search.
//
// Because signatures are short, Search returns *candidate* locations; the
// caller must compare the full key stored at each location (the pipeline's KC
// task) to reject false positives.
package cuckoo

import (
	"fmt"
	"sync/atomic"

	"repro/internal/stats"
)

// SlotsPerBucket is the bucket associativity. Mega-KV uses wide buckets so a
// GPU wavefront can probe all slots of a bucket in lockstep.
const SlotsPerBucket = 8

// Location is an opaque reference to a stored object (a slab handle in this
// system). The zero Location is reserved to mean "empty slot"; valid
// locations are 1 .. 2^48-1.
type Location uint64

// maxLocation is the largest representable location (48 bits).
const maxLocation = 1<<48 - 1

// entry packing: [16-bit signature | 48-bit location].
func pack(sig uint16, loc Location) uint64 {
	return uint64(sig)<<48 | uint64(loc)
}

func unpack(e uint64) (uint16, Location) {
	return uint16(e >> 48), Location(e & maxLocation)
}

// Table is a concurrent cuckoo hash index. All methods are safe for
// concurrent use.
type Table struct {
	buckets []bucket
	mask    uint64
	seed    uint64

	// muts advances on every successful Insert or Delete; readers use it to
	// detect overwrites that raced their search (see Version).
	muts atomic.Uint64

	// Operation statistics, used by the cost model to estimate per-operation
	// memory accesses at runtime (paper §IV-B measures the average number of
	// accessed buckets for Insert online).
	searches      stats.Counter
	inserts       stats.Counter
	deletes       stats.Counter
	insertBuckets stats.Counter // total buckets touched by Insert ops
	failedInserts stats.Counter
	kicks         stats.Counter
}

type bucket struct {
	slots [SlotsPerBucket]atomic.Uint64
}

// New returns a table with at least minBuckets buckets (rounded up to a power
// of two) hashing with the given seed. Capacity is buckets × SlotsPerBucket
// entries; cuckoo tables sustain ~90%+ load factor at associativity 8.
func New(minBuckets int, seed uint64) *Table {
	if minBuckets < 1 {
		minBuckets = 1
	}
	n := 1
	for n < minBuckets {
		n <<= 1
	}
	return &Table{
		buckets: make([]bucket, n),
		mask:    uint64(n - 1),
		seed:    seed,
	}
}

// NewForCapacity returns a table sized for n entries at the given target load
// factor (0 < load ≤ 1).
func NewForCapacity(n int, load float64, seed uint64) *Table {
	if load <= 0 || load > 1 {
		panic("cuckoo: load factor must be in (0, 1]")
	}
	slots := float64(n) / load
	return New(int(slots/SlotsPerBucket)+1, seed)
}

// Buckets returns the number of buckets.
func (t *Table) Buckets() int { return len(t.buckets) }

// Capacity returns the total number of slots.
func (t *Table) Capacity() int { return len(t.buckets) * SlotsPerBucket }

// Seed returns the hash seed the table was built with, for callers that
// precompute Hash values to feed SearchBufHash or SearchBatch.
func (t *Table) Seed() uint64 { return t.seed }

// hash derives the primary bucket index and the 16-bit signature for key.
// The alternate bucket is sig-derived (partial-key cuckoo hashing), so an
// entry can be displaced without access to the full key.
func (t *Table) hash(key []byte) (uint64, uint16) {
	return t.split(hash64(key, t.seed))
}

// split derives the bucket index (low bits) and signature (top 16 bits) from
// a precomputed Hash(key, seed). Bits between the two are unused, so callers
// may route on them (the sharded store uses bits 40..43) without correlating
// with bucket placement.
func (t *Table) split(h uint64) (uint64, uint16) {
	sig := uint16(h >> 48)
	if sig == 0 {
		sig = 1 // avoid all-zero entries for valid locations
	}
	return h & t.mask, sig
}

// altBucket returns the partner bucket for (b, sig).
func (t *Table) altBucket(b uint64, sig uint16) uint64 {
	// Multiply by an odd constant to spread the signature, as in MemC3.
	return (b ^ (uint64(sig) * 0xc6a4a7935bd1e995)) & t.mask
}

// Search returns all candidate locations whose signature matches key,
// appending to dst (which may be nil). It also reports the number of buckets
// probed. Multiple candidates are possible (signature collisions, or a
// transient duplicate during displacement); callers must verify with a full
// key comparison.
func (t *Table) Search(key []byte, dst []Location) ([]Location, int) {
	var buf [MaxCandidates]Location
	n, probed := t.SearchBuf(key, &buf)
	return append(dst, buf[:n]...), probed
}

// MaxCandidates is the most locations a single Search can yield: both home
// buckets full of colliding signatures.
const MaxCandidates = 2 * SlotsPerBucket

// SearchBuf is Search into a caller-provided fixed buffer, returning the
// candidate count and buckets probed. Because buf is a pointer to a
// fixed-size array rather than a returned slice, a stack-allocated buffer
// does not escape — this is the zero-allocation GET path.
func (t *Table) SearchBuf(key []byte, buf *[MaxCandidates]Location) (n, probed int) {
	return t.SearchBufHash(hash64(key, t.seed), buf)
}

// SearchBufHash is SearchBuf for callers that already computed
// Hash(key, t seed) — e.g. for shard routing — saving a second key hash on
// the GET hot path.
func (t *Table) SearchBufHash(h uint64, buf *[MaxCandidates]Location) (n, probed int) {
	b1, sig := t.split(h)
	probed = 1
	n = t.scanBucketInto(b1, sig, buf, 0)
	b2 := t.altBucket(b1, sig)
	if b2 != b1 {
		probed++
		n = t.scanBucketInto(b2, sig, buf, n)
	}
	t.searches.Inc()
	return n, probed
}

func (t *Table) scanBucketInto(b uint64, sig uint16, buf *[MaxCandidates]Location, n int) int {
	bk := &t.buckets[b]
	for i := range bk.slots {
		e := bk.slots[i].Load()
		if e == 0 {
			continue
		}
		s, loc := unpack(e)
		if s == sig {
			buf[n] = loc
			n++
		}
	}
	return n
}

// Insert adds (key → loc). It returns false if the table could not place the
// entry within the displacement bound (effectively full). Inserting the same
// key twice yields two candidates on Search; the store layer is responsible
// for deleting stale index entries when overwriting.
//
// Displacement uses a BFS over eviction paths (as in MemC3): the path to an
// empty slot is found first, then entries are moved backwards along it, so no
// entry is ever left homeless even when Insert ultimately fails.
func (t *Table) Insert(key []byte, loc Location) bool {
	if loc == 0 || loc > maxLocation {
		panic(fmt.Sprintf("cuckoo: invalid location %d", loc))
	}
	b1, sig := t.hash(key)
	t.inserts.Inc()
	touched := 2
	defer func() { t.insertBuckets.Add(uint64(touched)) }()

	b2 := t.altBucket(b1, sig)
	for attempt := 0; attempt < 4; attempt++ {
		if t.tryPlace(b1, sig, loc) || t.tryPlace(b2, sig, loc) {
			t.muts.Add(1)
			return true
		}
		moved, ok := t.bfsInsert(b1, b2, sig, loc)
		touched += moved
		if ok {
			t.muts.Add(1)
			return true
		}
	}
	t.failedInserts.Inc()
	return false
}

// pathNode is one step of a BFS eviction path.
type pathNode struct {
	bucket uint64
	slot   int // slot within parent's bucket whose eviction leads here
	parent int32
}

// bfsInsert searches breadth-first for a chain of displacements ending at a
// bucket with an empty slot, then executes the chain backwards with CAS
// moves. It returns the number of buckets it touched and whether the insert
// landed. Concurrent mutations can invalidate the found path; callers retry.
func (t *Table) bfsInsert(b1, b2 uint64, sig uint16, loc Location) (int, bool) {
	const maxNodes = 512
	nodes := make([]pathNode, 0, 64)
	nodes = append(nodes,
		pathNode{bucket: b1, parent: -1},
		pathNode{bucket: b2, parent: -1})
	for i := 0; i < len(nodes) && len(nodes) < maxNodes; i++ {
		b := nodes[i].bucket
		for s := 0; s < SlotsPerBucket; s++ {
			e := t.buckets[b].slots[s].Load()
			if e == 0 {
				// Found an empty slot; walk the path backwards.
				return len(nodes), t.executePath(nodes, int32(i), s, b1, b2, sig, loc)
			}
			esig, _ := unpack(e)
			nodes = append(nodes, pathNode{
				bucket: t.altBucket(b, esig),
				slot:   s,
				parent: int32(i),
			})
			if len(nodes) >= maxNodes {
				break
			}
		}
	}
	return len(nodes), false
}

// executePath moves entries backwards along the BFS path so that a slot in
// one of the two home buckets frees up, then places (sig, loc) there. endIdx
// is the node whose bucket holds the empty slot emptySlot.
func (t *Table) executePath(nodes []pathNode, endIdx int32, emptySlot int, b1, b2 uint64, sig uint16, loc Location) bool {
	// Reconstruct the chain root→end.
	var chain []int32
	for i := endIdx; i != -1; i = nodes[i].parent {
		chain = append(chain, i)
	}
	// chain[len-1] is the root (one of the home buckets); walk from the end
	// bucket back toward the root, moving each victim into the freed slot.
	freeBucket, freeSlot := nodes[endIdx].bucket, emptySlot
	for c := 0; c+1 < len(chain); c++ {
		cur := nodes[chain[c]]
		parent := nodes[chain[c+1]]
		victim := &t.buckets[parent.bucket].slots[cur.slot]
		e := victim.Load()
		if e == 0 {
			// Victim vanished; its slot is now the free slot.
			freeBucket, freeSlot = parent.bucket, cur.slot
			continue
		}
		esig, _ := unpack(e)
		if t.altBucket(parent.bucket, esig) != freeBucket {
			return false // entry changed under us; retry from scratch
		}
		if !t.buckets[freeBucket].slots[freeSlot].CompareAndSwap(0, e) {
			return false
		}
		t.kicks.Inc()
		if !victim.CompareAndSwap(e, 0) {
			// Someone deleted/changed the victim concurrently after we copied
			// it; undo the copy to avoid a duplicate and retry.
			t.buckets[freeBucket].slots[freeSlot].CompareAndSwap(e, 0)
			return false
		}
		freeBucket, freeSlot = parent.bucket, cur.slot
	}
	if freeBucket != b1 && freeBucket != b2 {
		return false
	}
	return t.buckets[freeBucket].slots[freeSlot].CompareAndSwap(0, pack(sig, loc))
}

// tryPlace CASes (sig, loc) into any empty slot of bucket b.
func (t *Table) tryPlace(b uint64, sig uint16, loc Location) bool {
	bk := &t.buckets[b]
	for i := range bk.slots {
		if bk.slots[i].Load() == 0 {
			if bk.slots[i].CompareAndSwap(0, pack(sig, loc)) {
				return true
			}
		}
	}
	return false
}

// Delete removes the entry (key → loc). It returns false if no such entry
// exists. Both the signature and the exact location must match, so deleting
// one of two colliding keys never removes the other.
func (t *Table) Delete(key []byte, loc Location) bool {
	b1, sig := t.hash(key)
	t.deletes.Inc()
	want := pack(sig, loc)
	if t.clearEntry(b1, want) {
		t.muts.Add(1)
		return true
	}
	b2 := t.altBucket(b1, sig)
	if b2 != b1 && t.clearEntry(b2, want) {
		t.muts.Add(1)
		return true
	}
	return false
}

// Version returns a counter that advances on every successful Insert or
// Delete. A searcher that found no live match can compare the version from
// before its probe: unchanged means the miss is genuine; changed means a
// concurrent overwrite may have hidden the key mid-probe and the search
// should be retried.
func (t *Table) Version() uint64 { return t.muts.Load() }

func (t *Table) clearEntry(b uint64, want uint64) bool {
	bk := &t.buckets[b]
	for i := range bk.slots {
		if bk.slots[i].Load() == want {
			if bk.slots[i].CompareAndSwap(want, 0) {
				return true
			}
		}
	}
	return false
}

// Len counts occupied slots (O(buckets); intended for tests and stats).
func (t *Table) Len() int {
	var n int
	for i := range t.buckets {
		for j := range t.buckets[i].slots {
			if t.buckets[i].slots[j].Load() != 0 {
				n++
			}
		}
	}
	return n
}

// LoadFactor returns Len()/Capacity().
func (t *Table) LoadFactor() float64 {
	return float64(t.Len()) / float64(t.Capacity())
}

// Stats is a snapshot of the table's operation counters.
type Stats struct {
	Searches, Inserts, Deletes uint64
	FailedInserts, Kicks       uint64
	// AvgInsertBuckets is the average number of buckets touched per Insert,
	// the quantity the DIDO cost model tracks at runtime (§IV-B).
	AvgInsertBuckets float64
}

// StatsSnapshot returns current counters.
func (t *Table) StatsSnapshot() Stats {
	ins := t.inserts.Load()
	s := Stats{
		Searches:      t.searches.Load(),
		Inserts:       ins,
		Deletes:       t.deletes.Load(),
		FailedInserts: t.failedInserts.Load(),
		Kicks:         t.kicks.Load(),
	}
	if ins > 0 {
		s.AvgInsertBuckets = float64(t.insertBuckets.Load()) / float64(ins)
	}
	return s
}

// SearchProbesTheoretical returns the paper's analytic expected probe count
// for an n-function cuckoo search: (Σ_{i=1..n} i)/n. With the 2-bucket layout
// used here that is 1.5.
func SearchProbesTheoretical(nHash int) float64 {
	var sum int
	for i := 1; i <= nHash; i++ {
		sum += i
	}
	return float64(sum) / float64(nHash)
}

// Hash exposes the table's hash function for callers that need a consistent
// key hash outside a table — the store uses it to route keys to shards.
func Hash(key []byte, seed uint64) uint64 { return hash64(key, seed) }

// hash64 is a fast 64-bit hash (FNV-1a with a 64-bit avalanche finisher). It
// is deterministic across runs for reproducible experiments.
func hash64(key []byte, seed uint64) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := offset ^ seed
	for _, b := range key {
		h ^= uint64(b)
		h *= prime
	}
	// splitmix64-style finisher for avalanche.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	if h == 0 {
		h = 1
	}
	return h
}

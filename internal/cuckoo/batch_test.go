package cuckoo

import (
	"fmt"
	"sync"
	"testing"
)

// collectBatch runs SearchBatch over keys and returns per-key candidate
// slices (aliasing the arena).
func collectBatch(tbl *Table, keys [][]byte, sc *SearchScratch) [][]Location {
	hashes := make([]uint64, len(keys))
	for i, k := range keys {
		hashes[i] = Hash(k, tbl.Seed())
	}
	cands := make([]Location, len(keys)*MaxCandidates)
	counts := make([]int32, len(keys))
	tbl.SearchBatch(hashes, sc, cands, counts)
	out := make([][]Location, len(keys))
	for i := range keys {
		out[i] = cands[i*MaxCandidates : i*MaxCandidates+int(counts[i])]
	}
	return out
}

func sameCands(a []Location, b []Location) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSearchBatchMatchesSearchBuf checks, on a quiescent table, that the wide
// wave search returns exactly the same candidate sets in exactly the same
// order as the scalar per-key probe — present keys, absent keys, and batch
// sizes spanning the wave-width range.
func TestSearchBatchMatchesSearchBuf(t *testing.T) {
	tbl := New(1024, 7)
	for i := 1; i <= 3000; i++ {
		if !tbl.Insert(key(i), Location(i)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	var sc SearchScratch
	for _, n := range []int{1, 2, 8, 32, 128, 512} {
		keys := make([][]byte, n)
		for i := range keys {
			// Mix hits (1..3000) and guaranteed misses (>3000).
			keys[i] = key(1 + (i*2711)%4000)
		}
		got := collectBatch(tbl, keys, &sc)
		for i, k := range keys {
			var buf [MaxCandidates]Location
			nb, _ := tbl.SearchBuf(k, &buf)
			if !sameCands(got[i], buf[:nb]) {
				t.Fatalf("n=%d key %d: batch %v != scalar %v", n, i, got[i], buf[:nb])
			}
		}
	}
}

func TestSearchBatchEmpty(t *testing.T) {
	tbl := New(64, 1)
	var sc SearchScratch
	if probed := tbl.SearchBatch(nil, &sc, nil, nil); probed != 0 {
		t.Fatalf("empty batch probed %d", probed)
	}
}

// TestSearchBatchUnderChurn compares the wide and scalar searches while a
// writer churns inserts and deletes. A batch is not a snapshot, so results
// are only comparable when no mutation overlapped either search: the test
// brackets both with Version() and retries the window until it gets enough
// clean comparisons, then stops the churn and requires a final exact pass.
func TestSearchBatchUnderChurn(t *testing.T) {
	tbl := New(2048, 13)
	for i := 1; i <= 4000; i++ {
		tbl.Insert(key(i), Location(i))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		j := 4001
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.Insert(key(j), Location(j))
			tbl.Delete(key(j-4000+1), Location(j-4000+1))
			j++
		}
	}()

	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = key(1 + (i*97)%5000)
	}
	var sc SearchScratch
	clean := 0
	for tries := 0; tries < 20000 && clean < 20; tries++ {
		v1 := tbl.Version()
		got := collectBatch(tbl, keys, &sc)
		want := make([][]Location, len(keys))
		bufs := make([][MaxCandidates]Location, len(keys))
		for i, k := range keys {
			nb, _ := tbl.SearchBuf(k, &bufs[i])
			want[i] = bufs[i][:nb]
		}
		if tbl.Version() != v1 {
			continue // a mutation raced one of the searches; not comparable
		}
		clean++
		for i := range keys {
			if !sameCands(got[i], want[i]) {
				t.Fatalf("stable window, key %d: batch %v != scalar %v", i, got[i], want[i])
			}
		}
	}
	close(stop)
	wg.Wait()
	// Always verifiable once quiescent.
	got := collectBatch(tbl, keys, &sc)
	for i, k := range keys {
		var buf [MaxCandidates]Location
		nb, _ := tbl.SearchBuf(k, &buf)
		if !sameCands(got[i], buf[:nb]) {
			t.Fatalf("quiescent key %d: batch %v != scalar %v", i, got[i], buf[:nb])
		}
	}
	if clean == 0 {
		t.Log("no version-stable window observed; only the quiescent check ran")
	}
}

// FuzzSearchBatchMatchesSearchBuf drives an arbitrary insert/delete history,
// then asserts the wide search agrees with the scalar search for every probe
// key — including keys the history deleted or never inserted.
func FuzzSearchBatchMatchesSearchBuf(f *testing.F) {
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{0x80, 0x41, 0x00, 0xff, 7, 7, 7})
	f.Fuzz(func(t *testing.T, ops []byte) {
		tbl := New(64, 99)
		for _, b := range ops {
			k := key(int(b % 64))
			if b&0x80 == 0 {
				tbl.Insert(k, Location(b%64)+1)
			} else {
				tbl.Delete(k, Location(b%64)+1)
			}
		}
		keys := make([][]byte, 64)
		for i := range keys {
			keys[i] = key(i)
		}
		var sc SearchScratch
		got := collectBatch(tbl, keys, &sc)
		for i, k := range keys {
			var buf [MaxCandidates]Location
			nb, _ := tbl.SearchBuf(k, &buf)
			if !sameCands(got[i], buf[:nb]) {
				t.Fatalf("key %d: batch %v != scalar %v", i, got[i], buf[:nb])
			}
		}
	})
}

func BenchmarkTableSearchBatch(b *testing.B) {
	tbl := New(1<<14, 3)
	for i := 1; i <= 80000; i++ {
		tbl.Insert(key(i), Location(i))
	}
	for _, n := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			hashes := make([]uint64, n)
			for i := range hashes {
				hashes[i] = Hash(key(1+i*131%80000), tbl.Seed())
			}
			cands := make([]Location, n*MaxCandidates)
			counts := make([]int32, n)
			var sc SearchScratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += n {
				tbl.SearchBatch(hashes, &sc, cands, counts)
			}
		})
	}
}

package cuckoo

// Wide batched search — the table's GPU-shaped operator (paper §V, Fig 6).
//
// A GPU runs IN(Search) over a wide batch by giving every lane one key and
// letting the memory system overlap all the lanes' bucket fetches. The CPU
// analogue is software pipelining: instead of finishing one key's probe
// (hash → bucket 1 → bucket 2) before starting the next — a chain of
// dependent cache misses — SearchBatch sweeps the whole batch in waves:
//
//	wave 1: split every key's hash into (bucket, signature)
//	wave 2: scan every key's primary bucket
//	wave 3: scan every key's alternate bucket
//
// Within a wave the iterations carry no data dependencies, so an
// out-of-order core keeps many independent bucket-line misses in flight at
// once (the batched-probe design of the coupled-architecture hash-join
// literature). Output uses a fixed stride per key — the flat, GPU-friendly
// result layout — so no per-key compaction serializes the waves.
//
// Concurrency: each slot is still read with a single atomic load, exactly
// like SearchBuf. A batch is not a snapshot — entries may move between a
// key's two buckets (displacement) while the wave sweep is in flight, which
// can hide a live key from one probe. Callers that must distinguish a
// genuine miss therefore bracket the whole batch with Version(): one
// amortized check per wave sweep instead of one per key (see the store's
// batched GET).

// SearchScratch holds SearchBatch's per-wave working arrays so steady-state
// batches allocate nothing. The zero value is ready to use; one scratch may
// be reused across batches (and across tables) but not concurrently.
type SearchScratch struct {
	b1, b2 []uint64
	sig    []uint16
}

// grow sizes the wave arrays for n keys.
func (sc *SearchScratch) grow(n int) {
	if cap(sc.b1) < n {
		sc.b1 = make([]uint64, n)
		sc.b2 = make([]uint64, n)
		sc.sig = make([]uint16, n)
	}
	sc.b1 = sc.b1[:n]
	sc.b2 = sc.b2[:n]
	sc.sig = sc.sig[:n]
}

// SearchBatch probes the table for len(hashes) precomputed key hashes (see
// Hash) in three software-pipelined waves. Key i's candidate locations are
// written to cands[i*MaxCandidates : i*MaxCandidates+counts[i]] — candidate
// order per key matches SearchBufHash exactly (primary bucket slots in
// order, then alternate bucket slots). cands must have length ≥
// len(hashes)*MaxCandidates and counts length ≥ len(hashes). It returns the
// total number of buckets probed.
//
// Like SearchBuf, the results are candidates: the caller verifies each with
// a full key comparison (the KC task).
func (t *Table) SearchBatch(hashes []uint64, sc *SearchScratch, cands []Location, counts []int32) (probed int) {
	n := len(hashes)
	if n == 0 {
		return 0
	}
	sc.grow(n)
	b1, b2, sigs := sc.b1, sc.b2, sc.sig
	// Wave 1 — hash split: pure arithmetic, no memory traffic. Materializing
	// every key's home buckets up front is what lets the scan waves issue
	// only independent loads.
	for i, h := range hashes {
		b, sig := t.split(h)
		b1[i], sigs[i] = b, sig
		b2[i] = t.altBucket(b, sig)
	}
	probed = n
	// Wave 2 — primary buckets. Each iteration touches one 64-byte bucket
	// line chosen by an already-computed index; misses from different keys
	// overlap in the core's load buffers instead of serializing.
	for i := 0; i < n; i++ {
		counts[i] = int32(t.scanBucketStride(b1[i], sigs[i], cands, i*MaxCandidates, 0))
	}
	// Wave 3 — alternate buckets, appended after each key's primary matches.
	for i := 0; i < n; i++ {
		if b2[i] == b1[i] {
			continue
		}
		probed++
		counts[i] = int32(t.scanBucketStride(b2[i], sigs[i], cands, i*MaxCandidates, int(counts[i])))
	}
	t.searches.Add(uint64(n))
	return probed
}

// scanBucketStride is scanBucketInto writing into a stride region of a
// shared arena: matches land at cands[base+n:], returning the new per-key
// count.
func (t *Table) scanBucketStride(b uint64, sig uint16, cands []Location, base, n int) int {
	bk := &t.buckets[b]
	for i := range bk.slots {
		e := bk.slots[i].Load()
		if e == 0 {
			continue
		}
		s, loc := unpack(e)
		if s == sig {
			cands[base+n] = loc
			n++
		}
	}
	return n
}

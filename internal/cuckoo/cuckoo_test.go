package cuckoo

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func key(i int) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

func TestNewRoundsToPowerOfTwo(t *testing.T) {
	tbl := New(100, 1)
	if tbl.Buckets() != 128 {
		t.Fatalf("buckets = %d, want 128", tbl.Buckets())
	}
	if tbl.Capacity() != 128*SlotsPerBucket {
		t.Fatalf("capacity = %d", tbl.Capacity())
	}
	if New(0, 1).Buckets() != 1 {
		t.Fatal("min buckets should clamp to 1")
	}
}

func TestNewForCapacity(t *testing.T) {
	tbl := NewForCapacity(10000, 0.9, 1)
	if tbl.Capacity() < 10000 {
		t.Fatalf("capacity %d < requested 10000", tbl.Capacity())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad load factor")
		}
	}()
	NewForCapacity(10, 0, 1)
}

func TestInsertSearchDelete(t *testing.T) {
	tbl := New(1024, 42)
	for i := 1; i <= 1000; i++ {
		if !tbl.Insert(key(i), Location(i)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if got := tbl.Len(); got != 1000 {
		t.Fatalf("len = %d, want 1000", got)
	}
	for i := 1; i <= 1000; i++ {
		cands, probed := tbl.Search(key(i), nil)
		if probed < 1 || probed > 2 {
			t.Fatalf("probed %d buckets", probed)
		}
		found := false
		for _, c := range cands {
			if c == Location(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %d not found; candidates %v", i, cands)
		}
	}
	for i := 1; i <= 1000; i++ {
		if !tbl.Delete(key(i), Location(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if got := tbl.Len(); got != 0 {
		t.Fatalf("len after deletes = %d", got)
	}
}

func TestSearchMissingKey(t *testing.T) {
	tbl := New(64, 1)
	tbl.Insert(key(1), 1)
	cands, _ := tbl.Search(key(999999), nil)
	for _, c := range cands {
		if c == 1 {
			// A signature collision giving a candidate is legal, but the
			// candidate must be rejectable by key comparison; just make sure
			// we did not somehow return a "confirmed" hit structure.
			t.Log("signature collision (acceptable)")
		}
	}
}

func TestDeleteWrongLocation(t *testing.T) {
	tbl := New(64, 1)
	tbl.Insert(key(1), 7)
	if tbl.Delete(key(1), 8) {
		t.Fatal("delete with wrong location must fail")
	}
	if !tbl.Delete(key(1), 7) {
		t.Fatal("delete with right location must succeed")
	}
	if tbl.Delete(key(1), 7) {
		t.Fatal("double delete must fail")
	}
}

func TestInsertInvalidLocationPanics(t *testing.T) {
	tbl := New(64, 1)
	for _, loc := range []Location{0, maxLocation + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Insert(loc=%d) did not panic", loc)
				}
			}()
			tbl.Insert(key(1), loc)
		}()
	}
}

func TestHighLoadFactor(t *testing.T) {
	// Associativity-8 cuckoo tables should comfortably exceed 90% load.
	tbl := New(512, 7) // 4096 slots
	n := 0
	for i := 1; i <= 4096; i++ {
		if !tbl.Insert(key(i), Location(i)) {
			break
		}
		n++
	}
	if lf := float64(n) / 4096; lf < 0.9 {
		t.Fatalf("achieved load factor %.3f < 0.9 (inserted %d)", lf, n)
	}
	// All inserted keys must still be findable after the displacements.
	for i := 1; i <= n; i++ {
		cands, _ := tbl.Search(key(i), nil)
		found := false
		for _, c := range cands {
			if c == Location(i) {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %d lost after displacement", i)
		}
	}
}

func TestFullTableInsertFails(t *testing.T) {
	tbl := New(1, 7) // single bucket pair collapses: 8 slots
	n := 0
	for i := 1; i <= 100; i++ {
		if tbl.Insert(key(i), Location(i)) {
			n++
		}
	}
	if n > SlotsPerBucket {
		t.Fatalf("single-bucket table accepted %d > %d entries", n, SlotsPerBucket)
	}
	st := tbl.StatsSnapshot()
	if st.FailedInserts == 0 {
		t.Fatal("expected failed inserts on a full table")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(sig uint16, locBits uint64) bool {
		loc := Location(locBits & maxLocation)
		s, l := unpack(pack(sig, loc))
		return s == sig && l == loc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatsSnapshot(t *testing.T) {
	tbl := New(1024, 3)
	for i := 1; i <= 100; i++ {
		tbl.Insert(key(i), Location(i))
	}
	tbl.Search(key(1), nil)
	tbl.Delete(key(1), 1)
	st := tbl.StatsSnapshot()
	if st.Inserts != 100 || st.Searches != 1 || st.Deletes != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgInsertBuckets < 1 {
		t.Fatalf("avg insert buckets = %v, want >= 1", st.AvgInsertBuckets)
	}
}

func TestSearchProbesTheoretical(t *testing.T) {
	if got := SearchProbesTheoretical(2); got != 1.5 {
		t.Fatalf("2-function probes = %v, want 1.5 (paper §IV-B)", got)
	}
	if got := SearchProbesTheoretical(3); got != 2 {
		t.Fatalf("3-function probes = %v, want 2", got)
	}
}

func TestLoadFactor(t *testing.T) {
	tbl := New(64, 1)
	if tbl.LoadFactor() != 0 {
		t.Fatal("empty table load factor should be 0")
	}
	tbl.Insert(key(1), 1)
	if lf := tbl.LoadFactor(); lf <= 0 || lf > 1 {
		t.Fatalf("load factor = %v", lf)
	}
}

func TestHashDeterminism(t *testing.T) {
	a := hash64([]byte("hello"), 42)
	b := hash64([]byte("hello"), 42)
	if a != b {
		t.Fatal("hash not deterministic")
	}
	if hash64([]byte("hello"), 42) == hash64([]byte("hello"), 43) {
		t.Fatal("seed ignored")
	}
	if hash64([]byte("hello"), 42) == hash64([]byte("hellp"), 42) {
		t.Fatal("suspicious collision on 1-byte difference")
	}
}

func TestConcurrentInsertSearch(t *testing.T) {
	tbl := New(8192, 11)
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := w*perWorker + i + 1
				if !tbl.Insert(key(id), Location(id)) {
					t.Errorf("insert %d failed", id)
					return
				}
				cands, _ := tbl.Search(key(id), nil)
				found := false
				for _, c := range cands {
					if c == Location(id) {
						found = true
					}
				}
				if !found {
					t.Errorf("key %d not visible to its own inserter", id)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := tbl.Len(); got != workers*perWorker {
		t.Fatalf("len = %d, want %d", got, workers*perWorker)
	}
}

func TestConcurrentDeleteDisjoint(t *testing.T) {
	tbl := New(8192, 13)
	const n = 8000
	for i := 1; i <= n; i++ {
		if !tbl.Insert(key(i), Location(i)) {
			t.Fatalf("setup insert %d failed", i)
		}
	}
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w + 1; i <= n; i += workers {
				if !tbl.Delete(key(i), Location(i)) {
					t.Errorf("delete %d failed", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := tbl.Len(); got != 0 {
		t.Fatalf("len = %d after all deletes", got)
	}
}

func TestInsertDeleteChurnProperty(t *testing.T) {
	// Property: after any interleaving of insert/delete pairs, every live key
	// is findable and every deleted key's (key, loc) pair is gone.
	f := func(ops []uint16) bool {
		tbl := New(2048, 99)
		live := map[int]bool{}
		for _, op := range ops {
			id := int(op%500) + 1
			if live[id] {
				if !tbl.Delete(key(id), Location(id)) {
					return false
				}
				live[id] = false
			} else {
				if !tbl.Insert(key(id), Location(id)) {
					return false
				}
				live[id] = true
			}
		}
		for id, alive := range live {
			cands, _ := tbl.Search(key(id), nil)
			found := false
			for _, c := range cands {
				if c == Location(id) {
					found = true
				}
			}
			if found != alive {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	// Keep the table at a steady ~50% load regardless of b.N by deleting
	// the entry inserted window-size iterations earlier.
	tbl := New(1<<17, 1) // ~1M slots
	const window = 1 << 19
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Insert(key(i+1), Location(uint64(i)%maxLocation+1))
		if i >= window {
			old := i - window
			tbl.Delete(key(old+1), Location(uint64(old)%maxLocation+1))
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	tbl := New(1<<16, 1)
	for i := 1; i <= 100000; i++ {
		tbl.Insert(key(i), Location(i))
	}
	var buf []Location
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, _ = tbl.Search(key(i%100000+1), buf[:0])
	}
	_ = fmt.Sprint(len(buf))
}

// Package slab implements the memory manager of the key-value store (the MM
// task of the DIDO pipeline): a slab-class allocator over a bounded arena
// with per-class LRU eviction, in the style of memcached and Mega-KV.
//
// Objects live in fixed-size chunks grouped into classes of geometrically
// increasing chunk size. When the arena budget is exhausted and a class has
// no free chunk, the least-recently-used object of that class is evicted and
// its chunk reused — this is exactly the behaviour behind the paper's
// observation (§II-C2) that a SET under memory pressure generates one Insert
// *and* one Delete index operation (for the new and the evicted object).
//
// Each object header carries an access counter and a sampling timestamp; the
// workload profiler uses them to estimate key-popularity skewness at runtime
// (paper §IV-B) without maintaining global frequency tables.
package slab

import (
	"errors"
	"fmt"
	"sync"
)

// Handle references an allocated object. Handles are never zero, so they can
// be stored directly as cuckoo-table locations.
type Handle uint64

// NoHandle is the zero Handle, returned when no object is referenced.
const NoHandle Handle = 0

const (
	classShift = 40
	indexMask  = 1<<classShift - 1
)

func makeHandle(class int, index uint64) Handle {
	return Handle(uint64(class)<<classShift|index) + 1
}

func (h Handle) split() (class int, index uint64) {
	v := uint64(h) - 1
	return int(v >> classShift), v & indexMask
}

// Config parameterizes an Allocator.
type Config struct {
	// TotalBytes is the arena budget across all classes. The paper's
	// evaluation platform has 1908 MB of CPU/GPU-shared memory.
	TotalBytes int64
	// SlabBytes is the allocation granularity when a class grows.
	SlabBytes int
	// MinChunk is the smallest chunk size (and the first class).
	MinChunk int
	// MaxChunk is the largest storable object (header+key+value).
	MaxChunk int
	// Growth is the chunk-size ratio between adjacent classes.
	Growth float64
}

// DefaultConfig returns a memcached-like configuration with the given arena
// budget.
func DefaultConfig(totalBytes int64) Config {
	return Config{
		TotalBytes: totalBytes,
		SlabBytes:  1 << 20,
		MinChunk:   64,
		MaxChunk:   16 << 10,
		Growth:     2.0,
	}
}

// header layout inside each chunk: keyLen(2) valLen(4) — access counter and
// timestamp live in the metadata array, not the arena, to keep arena writes
// contiguous.
const headerBytes = 6

// ErrTooLarge is returned when key+value exceed the largest chunk class.
var ErrTooLarge = errors.New("slab: object exceeds maximum chunk size")

// ErrNoMemory is returned when the arena is exhausted and the class has
// nothing to evict (should only happen with pathological configs).
var ErrNoMemory = errors.New("slab: out of memory and nothing evictable")

// Evicted describes an object that was evicted to satisfy an allocation.
type Evicted struct {
	// Key is a copy of the evicted object's key; the store uses it to remove
	// the stale index entry (the Delete op of paper §II-C2).
	Key []byte
	// Handle is the evicted object's old handle (now reused).
	Handle Handle
}

type chunkMeta struct {
	prev, next int32
	keyLen     uint16
	valLen     uint32
	access     uint32
	stamp      uint32
	live       bool
}

type class struct {
	mu        sync.Mutex
	chunkSize int
	slabs     [][]byte
	meta      []chunkMeta
	free      []uint64 // free chunk indices
	lruHead   int32    // most recently used; -1 when empty
	lruTail   int32    // least recently used
	live      int
	evictions uint64
}

// Allocator is a slab allocator with per-class LRU eviction. It is safe for
// concurrent use; each class has its own lock.
type Allocator struct {
	cfg     Config
	classes []*class

	budgetMu  sync.Mutex
	allocated int64 // arena bytes handed to classes
}

// NewAllocator returns an allocator for cfg. It panics on nonsensical
// configurations (zero budget, chunk bounds out of order).
func NewAllocator(cfg Config) *Allocator {
	if cfg.TotalBytes <= 0 || cfg.MinChunk <= headerBytes ||
		cfg.MaxChunk < cfg.MinChunk || cfg.Growth <= 1 || cfg.SlabBytes < cfg.MaxChunk {
		panic(fmt.Sprintf("slab: invalid config %+v", cfg))
	}
	a := &Allocator{cfg: cfg}
	for size := cfg.MinChunk; ; {
		a.classes = append(a.classes, &class{chunkSize: size, lruHead: -1, lruTail: -1})
		if size >= cfg.MaxChunk {
			break
		}
		next := int(float64(size) * cfg.Growth)
		if next <= size {
			next = size + 1
		}
		if next > cfg.MaxChunk {
			next = cfg.MaxChunk
		}
		size = next
	}
	return a
}

// Classes returns the number of slab classes.
func (a *Allocator) Classes() int { return len(a.classes) }

// ChunkSize returns the chunk size of class c.
func (a *Allocator) ChunkSize(c int) int { return a.classes[c].chunkSize }

// classFor returns the smallest class whose chunks fit total bytes.
func (a *Allocator) classFor(total int) (int, error) {
	for i, c := range a.classes {
		if c.chunkSize >= total {
			return i, nil
		}
	}
	return 0, ErrTooLarge
}

// Alloc allocates a chunk for an object with the given key and value sizes
// and writes the object into it. If the allocation evicted a live object, the
// returned Evicted describes it. now is the profiler's sampling timestamp for
// the new object's metadata.
func (a *Allocator) Alloc(key, value []byte, now uint32) (Handle, *Evicted, error) {
	total := headerBytes + len(key) + len(value)
	ci, err := a.classFor(total)
	if err != nil {
		return NoHandle, nil, err
	}
	c := a.classes[ci]
	c.mu.Lock()
	defer c.mu.Unlock()

	idx, ev, err := a.obtainChunk(ci, c)
	if err != nil {
		return NoHandle, nil, err
	}
	a.writeObject(c, idx, key, value, now)
	c.lruPushFront(idx)
	c.live++
	return makeHandle(ci, idx), ev, nil
}

// obtainChunk returns a free chunk index in class c, growing the class or
// evicting the LRU object as needed. Caller holds c.mu.
func (a *Allocator) obtainChunk(ci int, c *class) (uint64, *Evicted, error) {
	if n := len(c.free); n > 0 {
		idx := c.free[n-1]
		c.free = c.free[:n-1]
		return idx, nil, nil
	}
	if a.tryGrow(c) {
		n := len(c.free)
		idx := c.free[n-1]
		c.free = c.free[:n-1]
		return idx, nil, nil
	}
	// Evict the least recently used object of this class.
	victim := c.lruTail
	if victim < 0 {
		return 0, nil, ErrNoMemory
	}
	idx := uint64(victim)
	m := &c.meta[idx]
	evKey := make([]byte, m.keyLen)
	copy(evKey, a.chunkBytes(c, idx)[headerBytes:headerBytes+int(m.keyLen)])
	ev := &Evicted{Key: evKey, Handle: makeHandle(ci, idx)}
	c.lruRemove(int32(idx))
	m.live = false
	c.live--
	c.evictions++
	return idx, ev, nil
}

// tryGrow adds one slab to class c if the arena budget allows. Caller holds
// c.mu; the budget has its own lock so classes can grow concurrently.
func (a *Allocator) tryGrow(c *class) bool {
	a.budgetMu.Lock()
	if a.allocated+int64(a.cfg.SlabBytes) > a.cfg.TotalBytes {
		a.budgetMu.Unlock()
		return false
	}
	a.allocated += int64(a.cfg.SlabBytes)
	a.budgetMu.Unlock()

	slab := make([]byte, a.cfg.SlabBytes)
	base := uint64(len(c.slabs)) * uint64(a.cfg.SlabBytes/c.chunkSize)
	c.slabs = append(c.slabs, slab)
	chunks := a.cfg.SlabBytes / c.chunkSize
	for i := chunks - 1; i >= 0; i-- {
		c.free = append(c.free, base+uint64(i))
	}
	grown := make([]chunkMeta, int(base)+chunks)
	copy(grown, c.meta)
	for i := len(c.meta); i < len(grown); i++ {
		grown[i] = chunkMeta{prev: -1, next: -1}
	}
	c.meta = grown
	return true
}

func (a *Allocator) chunkBytes(c *class, idx uint64) []byte {
	perSlab := uint64(a.cfg.SlabBytes / c.chunkSize)
	slab := c.slabs[idx/perSlab]
	off := (idx % perSlab) * uint64(c.chunkSize)
	return slab[off : off+uint64(c.chunkSize)]
}

func (a *Allocator) writeObject(c *class, idx uint64, key, value []byte, now uint32) {
	b := a.chunkBytes(c, idx)
	b[0] = byte(len(key))
	b[1] = byte(len(key) >> 8)
	b[2] = byte(len(value))
	b[3] = byte(len(value) >> 8)
	b[4] = byte(len(value) >> 16)
	b[5] = byte(len(value) >> 24)
	copy(b[headerBytes:], key)
	copy(b[headerBytes+len(key):], value)
	m := &c.meta[idx]
	m.keyLen = uint16(len(key))
	m.valLen = uint32(len(value))
	m.access = 1
	m.stamp = now
	m.live = true
}

// Object returns the key and value stored at h. The returned slices alias the
// arena and are valid until the object is freed or evicted; callers that need
// stability must copy. ok is false if h is not live.
func (a *Allocator) Object(h Handle) (key, value []byte, ok bool) {
	if h == NoHandle {
		return nil, nil, false
	}
	ci, idx := h.split()
	if ci >= len(a.classes) {
		return nil, nil, false
	}
	c := a.classes[ci]
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx >= uint64(len(c.meta)) || !c.meta[idx].live {
		return nil, nil, false
	}
	m := &c.meta[idx]
	b := a.chunkBytes(c, idx)
	key = b[headerBytes : headerBytes+int(m.keyLen)]
	value = b[headerBytes+int(m.keyLen) : headerBytes+int(m.keyLen)+int(m.valLen)]
	return key, value, true
}

// Touch marks h as accessed at sampling timestamp now: it bumps the object to
// the front of its class LRU and updates the access counter per the paper's
// sampling scheme — reset to 1 when a new sampling interval begins, else
// incremented.
func (a *Allocator) Touch(h Handle, now uint32) {
	if h == NoHandle {
		return
	}
	ci, idx := h.split()
	if ci >= len(a.classes) {
		return
	}
	c := a.classes[ci]
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx >= uint64(len(c.meta)) || !c.meta[idx].live {
		return
	}
	m := &c.meta[idx]
	if m.stamp != now {
		m.stamp = now
		m.access = 1
	} else {
		m.access++
	}
	c.lruRemove(int32(idx))
	c.lruPushFront(idx)
}

// AccessCount returns the access counter and sampling timestamp of h.
func (a *Allocator) AccessCount(h Handle) (count, stamp uint32, ok bool) {
	if h == NoHandle {
		return 0, 0, false
	}
	ci, idx := h.split()
	if ci >= len(a.classes) {
		return 0, 0, false
	}
	c := a.classes[ci]
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx >= uint64(len(c.meta)) || !c.meta[idx].live {
		return 0, 0, false
	}
	return c.meta[idx].access, c.meta[idx].stamp, true
}

// Free releases h back to its class's free list. Freeing a dead handle is a
// no-op (the object may have been concurrently evicted).
func (a *Allocator) Free(h Handle) {
	if h == NoHandle {
		return
	}
	ci, idx := h.split()
	if ci >= len(a.classes) {
		return
	}
	c := a.classes[ci]
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx >= uint64(len(c.meta)) || !c.meta[idx].live {
		return
	}
	c.lruRemove(int32(idx))
	c.meta[idx].live = false
	c.live--
	c.free = append(c.free, idx)
}

// CollectAccessCounts returns the access counters of up to limit live objects
// whose sampling timestamp equals stamp — i.e. the objects touched during the
// current sampling interval. The workload profiler feeds these frequencies to
// the skewness estimator (paper §IV-B). limit <= 0 means no limit.
func (a *Allocator) CollectAccessCounts(stamp uint32, limit int) []uint32 {
	var out []uint32
	for _, c := range a.classes {
		c.mu.Lock()
		for i := range c.meta {
			m := &c.meta[i]
			if m.live && m.stamp == stamp {
				out = append(out, m.access)
				if limit > 0 && len(out) >= limit {
					c.mu.Unlock()
					return out
				}
			}
		}
		c.mu.Unlock()
	}
	return out
}

// Stats summarizes allocator state.
type Stats struct {
	LiveObjects    int
	ArenaBytes     int64
	AllocatedBytes int64
	Evictions      uint64
}

// StatsSnapshot returns current allocator statistics.
func (a *Allocator) StatsSnapshot() Stats {
	s := Stats{ArenaBytes: a.cfg.TotalBytes}
	a.budgetMu.Lock()
	s.AllocatedBytes = a.allocated
	a.budgetMu.Unlock()
	for _, c := range a.classes {
		c.mu.Lock()
		s.LiveObjects += c.live
		s.Evictions += c.evictions
		c.mu.Unlock()
	}
	return s
}

// lru list operations; caller holds the class lock.

func (c *class) lruPushFront(idx uint64) {
	m := &c.meta[idx]
	m.prev = -1
	m.next = c.lruHead
	if c.lruHead >= 0 {
		c.meta[c.lruHead].prev = int32(idx)
	}
	c.lruHead = int32(idx)
	if c.lruTail < 0 {
		c.lruTail = int32(idx)
	}
}

func (c *class) lruRemove(idx int32) {
	m := &c.meta[idx]
	if m.prev >= 0 {
		c.meta[m.prev].next = m.next
	} else if c.lruHead == idx {
		c.lruHead = m.next
	}
	if m.next >= 0 {
		c.meta[m.next].prev = m.prev
	} else if c.lruTail == idx {
		c.lruTail = m.prev
	}
	m.prev, m.next = -1, -1
}

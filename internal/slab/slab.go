// Package slab implements the memory manager of the key-value store (the MM
// task of the DIDO pipeline): a slab-class allocator over a bounded arena
// with per-class LRU eviction, in the style of memcached and Mega-KV.
//
// Objects live in fixed-size chunks grouped into classes of geometrically
// increasing chunk size. When the arena budget is exhausted and a class has
// no free chunk, the least-recently-used object of that class is evicted and
// its chunk reused — this is exactly the behaviour behind the paper's
// observation (§II-C2) that a SET under memory pressure generates one Insert
// *and* one Delete index operation (for the new and the evicted object).
//
// Reads are lock-free and safe against concurrent eviction: every chunk
// carries a seqlock version word (odd while dead or being written, even while
// live and stable). Readers copy-then-validate — load the version, copy the
// bytes, reload the version, retry on change — the per-item versioning scheme
// of MICA that Mega-KV [1] sidesteps with an append-only log. The arena is an
// array of atomic 64-bit words (not plain bytes) so a torn read that the
// seqlock will discard is still a well-defined data-race-free load.
//
// Each object header carries an access counter and a sampling timestamp; the
// workload profiler uses them to estimate key-popularity skewness at runtime
// (paper §IV-B) without maintaining global frequency tables.
package slab

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Handle references an allocated object. Handles are never zero, so they can
// be stored directly as cuckoo-table locations.
type Handle uint64

// NoHandle is the zero Handle, returned when no object is referenced.
const NoHandle Handle = 0

const (
	classShift = 40
	indexMask  = 1<<classShift - 1
)

// MaxClasses bounds the class count so a Handle always fits in 44 bits
// (class<<40 | index, classes 0..15), leaving bits 44..47 of a 48-bit cuckoo
// location free for the store's shard id.
const MaxClasses = 16

func makeHandle(class int, index uint64) Handle {
	return Handle(uint64(class)<<classShift|index) + 1
}

func (h Handle) split() (class int, index uint64) {
	v := uint64(h) - 1
	return int(v >> classShift), v & indexMask
}

// Config parameterizes an Allocator.
type Config struct {
	// TotalBytes is the arena budget across all classes. The paper's
	// evaluation platform has 1908 MB of CPU/GPU-shared memory.
	TotalBytes int64
	// SlabBytes is the allocation granularity when a class grows.
	SlabBytes int
	// MinChunk is the smallest chunk size (and the first class).
	MinChunk int
	// MaxChunk is the largest storable object (header+key+value).
	MaxChunk int
	// Growth is the chunk-size ratio between adjacent classes.
	Growth float64
}

// DefaultConfig returns a memcached-like configuration with the given arena
// budget.
func DefaultConfig(totalBytes int64) Config {
	return Config{
		TotalBytes: totalBytes,
		SlabBytes:  1 << 20,
		MinChunk:   64,
		MaxChunk:   16 << 10,
		Growth:     2.0,
	}
}

// Chunk layout, in 64-bit words:
//
//	word 0: seqlock version — odd: dead or being written, even: live+stable
//	word 1: keyLen (16 bits) | valLen<<16 (32 bits)
//	word 2+: key bytes then value bytes, packed little-endian
//
// The access counter and timestamp live in the metadata array, not the arena,
// so the hot read path never invalidates reader cache lines.
const (
	headerBytes = 16
	headerWords = headerBytes / 8
	lenWord     = 1
)

// ErrTooLarge is returned when key+value exceed the largest chunk class.
var ErrTooLarge = errors.New("slab: object exceeds maximum chunk size")

// ErrNoMemory is returned when the arena is exhausted and the class has
// nothing to evict (should only happen with pathological configs).
var ErrNoMemory = errors.New("slab: out of memory and nothing evictable")

// Evicted describes an object that was evicted to satisfy an allocation.
type Evicted struct {
	// Key is a copy of the evicted object's key; the store uses it to remove
	// the stale index entry (the Delete op of paper §II-C2).
	Key []byte
	// Handle is the evicted object's old handle (now reused).
	Handle Handle
}

type chunkMeta struct {
	prev, next int32
	keyLen     uint16
	valLen     uint32
	access     uint32
	stamp      uint32
	live       bool
}

type class struct {
	mu        sync.Mutex
	chunkSize int // bytes; always a multiple of 8
	perSlab   int // chunks per slab
	meta      []chunkMeta
	free      []uint64 // free chunk indices
	lruHead   int32    // most recently used; -1 when empty
	lruTail   int32    // least recently used
	live      int
	evictions uint64

	// arena is the snapshot of this class's slabs that lock-free readers
	// navigate. The outer slice is copied on growth and republished
	// atomically; the inner word arrays are allocated once and never move, so
	// a reader holding a stale snapshot still sees every chunk that existed
	// when it resolved its handle.
	arena atomic.Pointer[[][]atomic.Uint64]
}

// Allocator is a slab allocator with per-class LRU eviction. Mutations take a
// per-class lock; reads (Object, ReadInto, MatchKey, ReadIfMatch) are
// lock-free seqlock copies. It is safe for concurrent use.
type Allocator struct {
	cfg     Config
	classes []*class

	budgetMu  sync.Mutex
	allocated int64 // arena bytes handed to classes
}

// NewAllocator returns an allocator for cfg. It panics on nonsensical
// configurations (zero budget, chunk bounds out of order, or a class ladder
// longer than MaxClasses). Chunk sizes are rounded up to multiples of 8 so
// every chunk is an integral number of atomic words.
func NewAllocator(cfg Config) *Allocator {
	if cfg.TotalBytes <= 0 || cfg.MinChunk <= headerBytes ||
		cfg.MaxChunk < cfg.MinChunk || cfg.Growth <= 1 || cfg.SlabBytes < cfg.MaxChunk {
		panic(fmt.Sprintf("slab: invalid config %+v", cfg))
	}
	a := &Allocator{cfg: cfg}
	maxChunk := roundUp8(cfg.MaxChunk)
	for size := roundUp8(cfg.MinChunk); ; {
		c := &class{chunkSize: size, perSlab: cfg.SlabBytes / size, lruHead: -1, lruTail: -1}
		a.classes = append(a.classes, c)
		if size >= maxChunk {
			break
		}
		next := roundUp8(int(float64(size) * cfg.Growth))
		if next <= size {
			next = size + 8
		}
		if next > maxChunk {
			next = maxChunk
		}
		size = next
	}
	if len(a.classes) > MaxClasses {
		panic(fmt.Sprintf("slab: config %+v yields %d classes, max %d (Growth too small)",
			cfg, len(a.classes), MaxClasses))
	}
	return a
}

func roundUp8(n int) int { return (n + 7) &^ 7 }

// Classes returns the number of slab classes.
func (a *Allocator) Classes() int { return len(a.classes) }

// ChunkSize returns the chunk size of class c.
func (a *Allocator) ChunkSize(c int) int { return a.classes[c].chunkSize }

// classFor returns the smallest class whose chunks fit total bytes.
func (a *Allocator) classFor(total int) (int, error) {
	for i, c := range a.classes {
		if c.chunkSize >= total {
			return i, nil
		}
	}
	return 0, ErrTooLarge
}

// chunkWords returns chunk idx's word slice (version word included) from the
// given arena snapshot, or nil when idx is beyond the snapshot.
func (c *class) chunkWords(arena [][]atomic.Uint64, idx uint64) []atomic.Uint64 {
	si := idx / uint64(c.perSlab)
	if si >= uint64(len(arena)) {
		return nil
	}
	cw := c.chunkSize / 8
	base := (idx % uint64(c.perSlab)) * uint64(cw)
	return arena[si][base : base+uint64(cw)]
}

// lockedWords resolves chunk idx for a caller holding c.mu.
func (c *class) lockedWords(idx uint64) []atomic.Uint64 {
	p := c.arena.Load()
	if p == nil {
		return nil
	}
	return c.chunkWords(*p, idx)
}

// snapshot resolves h to its class and chunk words without locking. ok is
// false when h is malformed or beyond any chunk this allocator ever created.
func (a *Allocator) snapshot(h Handle) (*class, []atomic.Uint64, bool) {
	if h == NoHandle {
		return nil, nil, false
	}
	ci, idx := h.split()
	if ci >= len(a.classes) {
		return nil, nil, false
	}
	c := a.classes[ci]
	p := a.classes[ci].arena.Load()
	if p == nil {
		return nil, nil, false
	}
	w := c.chunkWords(*p, idx)
	if w == nil {
		return nil, nil, false
	}
	return c, w, true
}

// Alloc allocates a chunk for an object with the given key and value sizes
// and writes the object into it. If the allocation evicted a live object, the
// returned Evicted describes it. now is the profiler's sampling timestamp for
// the new object's metadata.
func (a *Allocator) Alloc(key, value []byte, now uint32) (Handle, *Evicted, error) {
	total := headerBytes + len(key) + len(value)
	ci, err := a.classFor(total)
	if err != nil {
		return NoHandle, nil, err
	}
	c := a.classes[ci]
	c.mu.Lock()
	defer c.mu.Unlock()

	idx, ev, err := a.obtainChunk(ci, c)
	if err != nil {
		return NoHandle, nil, err
	}
	c.writeObject(idx, key, value, now)
	c.lruPushFront(idx)
	c.live++
	return makeHandle(ci, idx), ev, nil
}

// obtainChunk returns a free chunk index in class c, growing the class or
// evicting the LRU object as needed. The returned chunk's version word is
// odd (dead), so concurrent readers already reject it. Caller holds c.mu.
func (a *Allocator) obtainChunk(ci int, c *class) (uint64, *Evicted, error) {
	if n := len(c.free); n > 0 {
		idx := c.free[n-1]
		c.free = c.free[:n-1]
		return idx, nil, nil
	}
	if a.tryGrow(c) {
		n := len(c.free)
		idx := c.free[n-1]
		c.free = c.free[:n-1]
		return idx, nil, nil
	}
	// Evict the least recently used object of this class.
	victim := c.lruTail
	if victim < 0 {
		return 0, nil, ErrNoMemory
	}
	idx := uint64(victim)
	m := &c.meta[idx]
	w := c.lockedWords(idx)
	evKey := appendChunkBytes(make([]byte, 0, m.keyLen), w, headerBytes, int(m.keyLen))
	ev := &Evicted{Key: evKey, Handle: makeHandle(ci, idx)}
	c.lruRemove(int32(idx))
	w[0].Add(1) // even → odd: readers see the object die before its bytes churn
	m.live = false
	c.live--
	c.evictions++
	return idx, ev, nil
}

// tryGrow adds one slab to class c if the arena budget allows. Caller holds
// c.mu; the budget has its own lock so classes can grow concurrently.
func (a *Allocator) tryGrow(c *class) bool {
	a.budgetMu.Lock()
	if a.allocated+int64(a.cfg.SlabBytes) > a.cfg.TotalBytes {
		a.budgetMu.Unlock()
		return false
	}
	a.allocated += int64(a.cfg.SlabBytes)
	a.budgetMu.Unlock()

	chunkWords := c.chunkSize / 8
	slab := make([]atomic.Uint64, c.perSlab*chunkWords)
	// Fresh chunks start dead (odd version) before the slab is published.
	for i := 0; i < c.perSlab; i++ {
		slab[i*chunkWords].Store(1)
	}
	var old [][]atomic.Uint64
	if p := c.arena.Load(); p != nil {
		old = *p
	}
	grown := make([][]atomic.Uint64, len(old)+1)
	copy(grown, old)
	grown[len(old)] = slab
	c.arena.Store(&grown)

	base := uint64(len(old)) * uint64(c.perSlab)
	for i := c.perSlab - 1; i >= 0; i-- {
		c.free = append(c.free, base+uint64(i))
	}
	metaGrown := make([]chunkMeta, int(base)+c.perSlab)
	copy(metaGrown, c.meta)
	for i := len(c.meta); i < len(metaGrown); i++ {
		metaGrown[i] = chunkMeta{prev: -1, next: -1}
	}
	c.meta = metaGrown
	return true
}

// writeObject fills chunk idx (whose version word must be odd — dead) and
// publishes it live. Caller holds c.mu.
func (c *class) writeObject(idx uint64, key, value []byte, now uint32) {
	w := c.lockedWords(idx)
	seq := w[0].Load() // odd: readers reject the chunk while we write
	w[lenWord].Store(uint64(uint16(len(key))) | uint64(uint32(len(value)))<<16)
	storeChunkBytes(w, key, value)
	w[0].Store(seq + 1) // odd → even: object becomes visible
	m := &c.meta[idx]
	m.keyLen = uint16(len(key))
	m.valLen = uint32(len(value))
	m.access = 1
	m.stamp = now
	m.live = true
}

// storeChunkBytes packs key then value into the data words (word 2+),
// little-endian, via atomic stores so concurrent seqlock readers never race.
func storeChunkBytes(w []atomic.Uint64, key, value []byte) {
	wi := headerWords
	var cur uint64
	var shift uint
	put := func(bs []byte) {
		for _, b := range bs {
			cur |= uint64(b) << shift
			shift += 8
			if shift == 64 {
				w[wi].Store(cur)
				wi++
				cur, shift = 0, 0
			}
		}
	}
	put(key)
	put(value)
	if shift > 0 {
		w[wi].Store(cur)
	}
}

// appendChunkBytes appends n bytes starting at byte offset off of the chunk
// to dst, loading whole words atomically.
func appendChunkBytes(dst []byte, w []atomic.Uint64, off, n int) []byte {
	var tmp [8]byte
	end := off + n
	for pos := off; pos < end; {
		wi := pos >> 3
		binary.LittleEndian.PutUint64(tmp[:], w[wi].Load())
		lo := pos & 7
		hi := 8
		if wordEnd := (wi + 1) << 3; wordEnd > end {
			hi = 8 - (wordEnd - end)
		}
		dst = append(dst, tmp[lo:hi]...)
		pos += hi - lo
	}
	return dst
}

// chunkBytesEqual reports whether the n=len(want) bytes at byte offset off of
// the chunk equal want, loading whole words atomically.
func chunkBytesEqual(w []atomic.Uint64, off int, want []byte) bool {
	var tmp [8]byte
	i := 0
	for i < len(want) {
		pos := off + i
		wi := pos >> 3
		binary.LittleEndian.PutUint64(tmp[:], w[wi].Load())
		lo := pos & 7
		n := 8 - lo
		if rem := len(want) - i; n > rem {
			n = rem
		}
		if !bytes.Equal(tmp[lo:lo+n], want[i:i+n]) {
			return false
		}
		i += n
	}
	return true
}

// loadLens reads and sanity-checks the length word. A torn read can yield
// garbage lengths; callers only act on them under seqlock validation, but the
// bounds check here keeps even a torn read inside the chunk.
func loadLens(w []atomic.Uint64, chunkSize int) (keyLen, valLen int, ok bool) {
	lw := w[lenWord].Load()
	keyLen = int(lw & 0xffff)
	valLen = int((lw >> 16) & 0xffffffff)
	return keyLen, valLen, headerBytes+keyLen+valLen <= chunkSize
}

// Object returns copies of the key and value stored at h, or ok=false if h is
// not live. It is lock-free: the copy is validated against the chunk's
// seqlock version and retried if a writer intervened.
func (a *Allocator) Object(h Handle) (key, value []byte, ok bool) {
	c, w, ok := a.snapshot(h)
	if !ok {
		return nil, nil, false
	}
	for {
		s1 := w[0].Load()
		if s1&1 != 0 {
			return nil, nil, false
		}
		kl, vl, valid := loadLens(w, c.chunkSize)
		if valid {
			key = appendChunkBytes(key[:0], w, headerBytes, kl)
			value = appendChunkBytes(value[:0], w, headerBytes+kl, vl)
		}
		if w[0].Load() == s1 {
			if !valid {
				return nil, nil, false
			}
			return key, value, true
		}
	}
}

// ReadInto appends the value stored at h to dst, returning the extended
// slice. It is lock-free (seqlock copy-then-validate); ok is false when h is
// not live, in which case dst is returned unchanged. This is the RD task's
// real contract: the returned bytes are a stable copy, not an arena alias.
func (a *Allocator) ReadInto(h Handle, dst []byte) ([]byte, bool) {
	c, w, ok := a.snapshot(h)
	if !ok {
		return dst, false
	}
	mark := len(dst)
	for {
		s1 := w[0].Load()
		if s1&1 != 0 {
			return dst[:mark], false
		}
		kl, vl, valid := loadLens(w, c.chunkSize)
		if valid {
			dst = appendChunkBytes(dst[:mark], w, headerBytes+kl, vl)
		}
		if w[0].Load() == s1 {
			if !valid {
				return dst[:mark], false
			}
			return dst, true
		}
	}
}

// MatchKey reports whether h is live and stores exactly key (the KC task).
// It is lock-free and allocation-free.
func (a *Allocator) MatchKey(h Handle, key []byte) bool {
	c, w, ok := a.snapshot(h)
	if !ok {
		return false
	}
	for {
		s1 := w[0].Load()
		if s1&1 != 0 {
			return false
		}
		kl, _, valid := loadLens(w, c.chunkSize)
		match := valid && kl == len(key) && chunkBytesEqual(w, headerBytes, key)
		if w[0].Load() == s1 {
			return match
		}
	}
}

// ReadIfMatch appends the value at h to dst iff h is live and stores exactly
// key, under a single seqlock validation spanning both the compare and the
// copy (the fused KC+RD fast path of a GET). On a miss dst is returned
// unchanged.
func (a *Allocator) ReadIfMatch(h Handle, key, dst []byte) ([]byte, bool) {
	c, w, ok := a.snapshot(h)
	if !ok {
		return dst, false
	}
	mark := len(dst)
	for {
		s1 := w[0].Load()
		if s1&1 != 0 {
			return dst[:mark], false
		}
		kl, vl, valid := loadLens(w, c.chunkSize)
		match := valid && kl == len(key) && chunkBytesEqual(w, headerBytes, key)
		if match {
			dst = appendChunkBytes(dst[:mark], w, headerBytes+kl, vl)
		}
		if w[0].Load() == s1 {
			if !match {
				return dst[:mark], false
			}
			return dst, true
		}
	}
}

// Touch marks h as accessed at sampling timestamp now: it bumps the object to
// the front of its class LRU and updates the access counter per the paper's
// sampling scheme — reset to 1 when a new sampling interval begins, else
// incremented.
func (a *Allocator) Touch(h Handle, now uint32) {
	if h == NoHandle {
		return
	}
	ci, idx := h.split()
	if ci >= len(a.classes) {
		return
	}
	c := a.classes[ci]
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx >= uint64(len(c.meta)) || !c.meta[idx].live {
		return
	}
	m := &c.meta[idx]
	if m.stamp != now {
		m.stamp = now
		m.access = 1
	} else {
		m.access++
	}
	c.lruRemove(int32(idx))
	c.lruPushFront(idx)
}

// AccessCount returns the access counter and sampling timestamp of h.
func (a *Allocator) AccessCount(h Handle) (count, stamp uint32, ok bool) {
	if h == NoHandle {
		return 0, 0, false
	}
	ci, idx := h.split()
	if ci >= len(a.classes) {
		return 0, 0, false
	}
	c := a.classes[ci]
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx >= uint64(len(c.meta)) || !c.meta[idx].live {
		return 0, 0, false
	}
	return c.meta[idx].access, c.meta[idx].stamp, true
}

// Free releases h back to its class's free list. Freeing a dead handle is a
// no-op (the object may have been concurrently evicted).
func (a *Allocator) Free(h Handle) {
	if h == NoHandle {
		return
	}
	ci, idx := h.split()
	if ci >= len(a.classes) {
		return
	}
	c := a.classes[ci]
	c.mu.Lock()
	defer c.mu.Unlock()
	if idx >= uint64(len(c.meta)) || !c.meta[idx].live {
		return
	}
	c.lruRemove(int32(idx))
	c.lockedWords(idx)[0].Add(1) // even → odd: kill in-flight readers
	c.meta[idx].live = false
	c.live--
	c.free = append(c.free, idx)
}

// CollectAccessCounts returns the access counters of up to limit live objects
// whose sampling timestamp equals stamp — i.e. the objects touched during the
// current sampling interval. The workload profiler feeds these frequencies to
// the skewness estimator (paper §IV-B). limit <= 0 means no limit.
func (a *Allocator) CollectAccessCounts(stamp uint32, limit int) []uint32 {
	var out []uint32
	for _, c := range a.classes {
		c.mu.Lock()
		for i := range c.meta {
			m := &c.meta[i]
			if m.live && m.stamp == stamp {
				out = append(out, m.access)
				if limit > 0 && len(out) >= limit {
					c.mu.Unlock()
					return out
				}
			}
		}
		c.mu.Unlock()
	}
	return out
}

// Stats summarizes allocator state.
type Stats struct {
	LiveObjects    int
	ArenaBytes     int64
	AllocatedBytes int64
	Evictions      uint64
}

// Range iterates every live object in the arena, calling fn(key, value) for
// each; it stops early and returns false if fn returns false. The walk is
// lock-free: it snapshots each class's arena pointer and copies chunks under
// the per-chunk seqlock (copy-then-validate, like Object), so it runs
// concurrently with writers without blocking them. The iteration is a
// point-in-time-ish scan, not a consistent cut: an object written while the
// walk passes its chunk may or may not be observed — the snapshotter that
// uses Range pairs it with WAL replay, whose absolute SET/DEL records make
// the combination converge regardless. The key/value slices are reused
// between calls; fn must not retain them.
func (a *Allocator) Range(fn func(key, value []byte) bool) bool {
	var kbuf, vbuf []byte
	for _, c := range a.classes {
		p := c.arena.Load()
		if p == nil {
			continue
		}
		arena := *p
		nChunks := uint64(len(arena)) * uint64(c.perSlab)
		for idx := uint64(0); idx < nChunks; idx++ {
			w := c.chunkWords(arena, idx)
			for {
				s1 := w[0].Load()
				if s1&1 != 0 {
					break // dead or mid-write; skip
				}
				kl, vl, valid := loadLens(w, c.chunkSize)
				if valid {
					kbuf = appendChunkBytes(kbuf[:0], w, headerBytes, kl)
					vbuf = appendChunkBytes(vbuf[:0], w, headerBytes+kl, vl)
				}
				if w[0].Load() == s1 {
					if valid && !fn(kbuf, vbuf) {
						return false
					}
					break
				}
			}
		}
	}
	return true
}

// StatsSnapshot returns current allocator statistics.
func (a *Allocator) StatsSnapshot() Stats {
	s := Stats{ArenaBytes: a.cfg.TotalBytes}
	a.budgetMu.Lock()
	s.AllocatedBytes = a.allocated
	a.budgetMu.Unlock()
	for _, c := range a.classes {
		c.mu.Lock()
		s.LiveObjects += c.live
		s.Evictions += c.evictions
		c.mu.Unlock()
	}
	return s
}

// lru list operations; caller holds the class lock.

func (c *class) lruPushFront(idx uint64) {
	m := &c.meta[idx]
	m.prev = -1
	m.next = c.lruHead
	if c.lruHead >= 0 {
		c.meta[c.lruHead].prev = int32(idx)
	}
	c.lruHead = int32(idx)
	if c.lruTail < 0 {
		c.lruTail = int32(idx)
	}
}

func (c *class) lruRemove(idx int32) {
	m := &c.meta[idx]
	if m.prev >= 0 {
		c.meta[m.prev].next = m.next
	} else if c.lruHead == idx {
		c.lruHead = m.next
	}
	if m.next >= 0 {
		c.meta[m.next].prev = m.prev
	} else if c.lruTail == idx {
		c.lruTail = m.prev
	}
	m.prev, m.next = -1, -1
}

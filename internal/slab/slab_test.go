package slab

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func smallConfig() Config {
	return Config{
		TotalBytes: 64 << 10, // one 64KB slab budget
		SlabBytes:  32 << 10,
		MinChunk:   64,
		MaxChunk:   1024,
		Growth:     2.0,
	}
}

func TestNewAllocatorValidation(t *testing.T) {
	bad := []Config{
		{},
		{TotalBytes: 1 << 20, SlabBytes: 1 << 20, MinChunk: 4, MaxChunk: 1024, Growth: 2},  // MinChunk <= header
		{TotalBytes: 1 << 20, SlabBytes: 1 << 20, MinChunk: 128, MaxChunk: 64, Growth: 2},  // bounds reversed
		{TotalBytes: 1 << 20, SlabBytes: 1 << 20, MinChunk: 64, MaxChunk: 1024, Growth: 1}, // growth <= 1
		{TotalBytes: 1 << 20, SlabBytes: 512, MinChunk: 64, MaxChunk: 1024, Growth: 2},     // slab < max chunk
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d did not panic: %+v", i, cfg)
				}
			}()
			NewAllocator(cfg)
		}()
	}
}

func TestClassLayout(t *testing.T) {
	a := NewAllocator(smallConfig())
	if a.Classes() < 4 {
		t.Fatalf("classes = %d, want >= 4 (64..1024 at x2)", a.Classes())
	}
	if a.ChunkSize(0) != 64 {
		t.Fatalf("first class = %d", a.ChunkSize(0))
	}
	if a.ChunkSize(a.Classes()-1) != 1024 {
		t.Fatalf("last class = %d", a.ChunkSize(a.Classes()-1))
	}
	for i := 1; i < a.Classes(); i++ {
		if a.ChunkSize(i) <= a.ChunkSize(i-1) {
			t.Fatal("class sizes not increasing")
		}
	}
}

func TestAllocObjectRoundTrip(t *testing.T) {
	a := NewAllocator(smallConfig())
	key := []byte("hello")
	val := []byte("world-value")
	h, ev, err := a.Alloc(key, val, 1)
	if err != nil || ev != nil {
		t.Fatalf("alloc: h=%v ev=%v err=%v", h, ev, err)
	}
	if h == NoHandle {
		t.Fatal("zero handle returned")
	}
	k, v, ok := a.Object(h)
	if !ok || !bytes.Equal(k, key) || !bytes.Equal(v, val) {
		t.Fatalf("object = %q/%q ok=%v", k, v, ok)
	}
}

func TestObjectDeadHandle(t *testing.T) {
	a := NewAllocator(smallConfig())
	if _, _, ok := a.Object(NoHandle); ok {
		t.Fatal("NoHandle should not resolve")
	}
	if _, _, ok := a.Object(Handle(1)); ok {
		t.Fatal("never-allocated handle should not resolve")
	}
	h, _, _ := a.Alloc([]byte("k"), []byte("v"), 1)
	a.Free(h)
	if _, _, ok := a.Object(h); ok {
		t.Fatal("freed handle should not resolve")
	}
	a.Free(h) // double free is a no-op
}

func TestTooLarge(t *testing.T) {
	a := NewAllocator(smallConfig())
	_, _, err := a.Alloc(make([]byte, 10), make([]byte, 2000), 1)
	if err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestEvictionLRUOrder(t *testing.T) {
	cfg := Config{
		TotalBytes: 32 << 10, // exactly one slab
		SlabBytes:  32 << 10,
		MinChunk:   1024,
		MaxChunk:   1024,
		Growth:     2,
	}
	a := NewAllocator(cfg) // 32 chunks of 1KB, single class
	var handles []Handle
	for i := 0; i < 32; i++ {
		h, ev, err := a.Alloc([]byte(fmt.Sprintf("key-%02d", i)), make([]byte, 500), 1)
		if err != nil || ev != nil {
			t.Fatalf("alloc %d: ev=%v err=%v", i, ev, err)
		}
		handles = append(handles, h)
	}
	// Touch key-00 so key-01 becomes LRU.
	a.Touch(handles[0], 2)
	h, ev, err := a.Alloc([]byte("key-new"), make([]byte, 500), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ev == nil {
		t.Fatal("expected an eviction at capacity")
	}
	if string(ev.Key) != "key-01" {
		t.Fatalf("evicted %q, want key-01 (LRU)", ev.Key)
	}
	if ev.Handle != handles[1] {
		t.Fatal("evicted handle mismatch")
	}
	// The evicted chunk was reused for the new object.
	if h != handles[1] {
		t.Fatalf("new handle %v should reuse evicted chunk %v", h, handles[1])
	}
	k, _, ok := a.Object(h)
	if !ok || string(k) != "key-new" {
		t.Fatalf("reused chunk holds %q", k)
	}
	st := a.StatsSnapshot()
	if st.Evictions != 1 || st.LiveObjects != 32 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFreeThenReuseNoEviction(t *testing.T) {
	cfg := Config{TotalBytes: 32 << 10, SlabBytes: 32 << 10, MinChunk: 1024, MaxChunk: 1024, Growth: 2}
	a := NewAllocator(cfg)
	var handles []Handle
	for i := 0; i < 32; i++ {
		h, _, _ := a.Alloc([]byte{byte(i)}, nil, 1)
		handles = append(handles, h)
	}
	a.Free(handles[7])
	_, ev, err := a.Alloc([]byte("x"), nil, 1)
	if err != nil || ev != nil {
		t.Fatalf("free list should satisfy alloc: ev=%v err=%v", ev, err)
	}
}

func TestTouchAccessCounterSampling(t *testing.T) {
	a := NewAllocator(smallConfig())
	h, _, _ := a.Alloc([]byte("k"), []byte("v"), 10)
	if n, stamp, ok := a.AccessCount(h); !ok || n != 1 || stamp != 10 {
		t.Fatalf("initial count = %d stamp=%d ok=%v", n, stamp, ok)
	}
	a.Touch(h, 10)
	a.Touch(h, 10)
	if n, _, _ := a.AccessCount(h); n != 3 {
		t.Fatalf("count = %d, want 3", n)
	}
	// New sampling interval resets the counter (paper §IV-B).
	a.Touch(h, 11)
	if n, stamp, _ := a.AccessCount(h); n != 1 || stamp != 11 {
		t.Fatalf("after new interval: count=%d stamp=%d, want 1/11", n, stamp)
	}
	// Dead handles.
	if _, _, ok := a.AccessCount(NoHandle); ok {
		t.Fatal("NoHandle AccessCount should fail")
	}
	a.Touch(NoHandle, 1) // no-op, must not panic
}

func TestMultipleClassesIndependentEviction(t *testing.T) {
	cfg := Config{TotalBytes: 64 << 10, SlabBytes: 32 << 10, MinChunk: 256, MaxChunk: 1024, Growth: 4}
	a := NewAllocator(cfg) // classes: 256, 1024
	// The big class takes the first slab...
	if _, ev, err := a.Alloc([]byte("b0"), make([]byte, 900), 1); err != nil || ev != nil {
		t.Fatalf("big alloc: ev=%v err=%v", ev, err)
	}
	// ...and the small class takes the second (128 chunks), exhausting the budget.
	for i := 0; i < 128; i++ {
		if _, ev, err := a.Alloc([]byte{byte(i), byte(i >> 8)}, make([]byte, 100), 1); err != nil || ev != nil {
			t.Fatalf("small alloc %d: ev=%v err=%v", i, ev, err)
		}
	}
	// Next small alloc must evict from the small class only.
	_, ev, err := a.Alloc([]byte("s"), make([]byte, 100), 1)
	if err != nil || ev == nil {
		t.Fatalf("expected small-class eviction, ev=%v err=%v", ev, err)
	}
	// Big class still has free chunks in its own slab: no eviction.
	_, ev2, err := a.Alloc([]byte("b1"), make([]byte, 900), 1)
	if err != nil || ev2 != nil {
		t.Fatalf("big alloc should not evict: ev=%v err=%v", ev2, err)
	}
}

func TestStatsSnapshot(t *testing.T) {
	a := NewAllocator(smallConfig())
	a.Alloc([]byte("k"), []byte("v"), 1)
	st := a.StatsSnapshot()
	if st.LiveObjects != 1 || st.AllocatedBytes == 0 || st.ArenaBytes != 64<<10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHandleSplitRoundTrip(t *testing.T) {
	f := func(class uint8, idx uint32) bool {
		h := makeHandle(int(class), uint64(idx))
		c, i := h.split()
		return c == int(class) && i == uint64(idx) && h != NoHandle
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAllocFreeTouch(t *testing.T) {
	cfg := Config{TotalBytes: 1 << 20, SlabBytes: 64 << 10, MinChunk: 128, MaxChunk: 512, Growth: 2}
	a := NewAllocator(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var mine []Handle
			for i := 0; i < 500; i++ {
				key := []byte(fmt.Sprintf("w%d-%d", w, i))
				h, _, err := a.Alloc(key, make([]byte, 64), uint32(i))
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				mine = append(mine, h)
				a.Touch(h, uint32(i))
				if i%3 == 0 {
					a.Free(mine[len(mine)/2])
				}
			}
		}()
	}
	wg.Wait()
	st := a.StatsSnapshot()
	if st.LiveObjects < 0 {
		t.Fatalf("negative live objects: %+v", st)
	}
}

func TestEvictionChurnProperty(t *testing.T) {
	// Property: under arbitrary alloc sequences the allocator never exceeds
	// its arena budget and every returned handle resolves until evicted/freed.
	f := func(sizes []uint16) bool {
		cfg := Config{TotalBytes: 64 << 10, SlabBytes: 16 << 10, MinChunk: 64, MaxChunk: 4096, Growth: 2}
		a := NewAllocator(cfg)
		for i, s := range sizes {
			val := make([]byte, int(s)%3000)
			key := []byte(fmt.Sprintf("key-%d", i))
			h, _, err := a.Alloc(key, val, 1)
			if err == ErrTooLarge || err == ErrNoMemory {
				// ErrNoMemory is legal: a class can be budget-starved before
				// it owns any slab to evict from.
				continue
			}
			if err != nil {
				return false
			}
			k, v, ok := a.Object(h)
			if !ok || !bytes.Equal(k, key) || len(v) != len(val) {
				return false
			}
			if st := a.StatsSnapshot(); st.AllocatedBytes > st.ArenaBytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocEvictCycle(b *testing.B) {
	cfg := Config{TotalBytes: 1 << 20, SlabBytes: 1 << 20, MinChunk: 128, MaxChunk: 128 << 2, Growth: 2}
	a := NewAllocator(cfg)
	val := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte{byte(i), byte(i >> 8), byte(i >> 16)}
		a.Alloc(key, val, uint32(i))
	}
}

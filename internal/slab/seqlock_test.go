package slab

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// seqCfg is a one-class arena small enough to force constant chunk reuse.
func seqCfg() Config {
	return Config{TotalBytes: 4 << 10, SlabBytes: 4 << 10, MinChunk: 256, MaxChunk: 256, Growth: 2}
}

func TestReadIntoAppends(t *testing.T) {
	a := NewAllocator(DefaultConfig(1 << 20))
	h, _, err := a.Alloc([]byte("k"), []byte("value"), 1)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("pre:")
	out, ok := a.ReadInto(h, prefix)
	if !ok || string(out) != "pre:value" {
		t.Fatalf("ReadInto = %q/%v", out, ok)
	}
	if out, ok = a.ReadInto(Handle(999), prefix); ok || !bytes.Equal(out, prefix) {
		t.Fatalf("dead-handle ReadInto = %q/%v, want unchanged dst", out, ok)
	}
}

func TestMatchKeyAndReadIfMatch(t *testing.T) {
	a := NewAllocator(DefaultConfig(1 << 20))
	h, _, err := a.Alloc([]byte("alpha"), []byte("one"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !a.MatchKey(h, []byte("alpha")) {
		t.Fatal("MatchKey should match the stored key")
	}
	if a.MatchKey(h, []byte("alphb")) || a.MatchKey(h, []byte("alph")) {
		t.Fatal("MatchKey matched a different key")
	}
	if v, ok := a.ReadIfMatch(h, []byte("alpha"), nil); !ok || string(v) != "one" {
		t.Fatalf("ReadIfMatch = %q/%v", v, ok)
	}
	if _, ok := a.ReadIfMatch(h, []byte("beta"), nil); ok {
		t.Fatal("ReadIfMatch hit on the wrong key")
	}
	a.Free(h)
	if a.MatchKey(h, []byte("alpha")) {
		t.Fatal("MatchKey matched a freed chunk")
	}
	if _, ok := a.ReadIfMatch(h, []byte("alpha"), nil); ok {
		t.Fatal("ReadIfMatch hit a freed chunk")
	}
}

// TestSeqlockReadDuringReuse is the tentpole regression: readers hold
// handles while writers free and reuse the same chunks. Every successful
// read must return a self-consistent (key, value) pair — values encode
// their key, so a read that mixes bytes from two generations is caught.
// Under -race this also proves the word-based arena is data-race-free.
func TestSeqlockReadDuringReuse(t *testing.T) {
	a := NewAllocator(seqCfg())
	const (
		workers = 4
		slots   = 8 // 4KB / 256B = 16 chunks; churn across half
		iters   = 5000
	)
	var mu sync.Mutex
	handles := make([]Handle, slots)
	keys := make([][]byte, slots)
	for i := range handles {
		k := []byte(fmt.Sprintf("key-%02d", i))
		h, _, err := a.Alloc(k, bytes.Repeat([]byte{byte(i)}, 64), 1)
		if err != nil {
			t.Fatal(err)
		}
		handles[i], keys[i] = h, k
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]byte, 0, 256)
			for i := 0; i < iters; i++ {
				s := (w + i) % slots
				mu.Lock()
				h, k := handles[s], keys[s]
				mu.Unlock()
				if i%3 == 0 && w == 0 {
					// Writer lane: retire and reallocate the slot.
					gen := byte(i)
					nk := []byte(fmt.Sprintf("key-%02d", s))
					a.Free(h)
					nh, _, err := a.Alloc(nk, bytes.Repeat([]byte{gen}, 64), 1)
					if err != nil {
						t.Errorf("realloc: %v", err)
						return
					}
					mu.Lock()
					handles[s], keys[s] = nh, nk
					mu.Unlock()
					continue
				}
				key, val, ok := a.Object(h)
				if !ok {
					continue // freed under us: a miss, never a tear
				}
				if !bytes.Equal(key, k) && !bytes.HasPrefix(key, []byte("key-")) {
					t.Errorf("torn key %q", key)
					return
				}
				for j := 1; j < len(val); j++ {
					if val[j] != val[0] {
						t.Errorf("torn value: bytes %#x and %#x in one read", val[0], val[j])
						return
					}
				}
				if out, ok := a.ReadIfMatch(h, k, dst[:0]); ok {
					for j := 1; j < len(out); j++ {
						if out[j] != out[0] {
							t.Errorf("torn ReadIfMatch: %#x vs %#x", out[0], out[j])
							return
						}
					}
					dst = out[:0]
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkReadIfMatch measures the seqlock read with a reused buffer — the
// store's GET inner loop. Must be 0 allocs/op.
func BenchmarkReadIfMatch(b *testing.B) {
	a := NewAllocator(DefaultConfig(16 << 20))
	key := []byte("bench-key")
	h, _, err := a.Alloc(key, bytes.Repeat([]byte{7}, 100), 1)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, ok := a.ReadIfMatch(h, key, dst[:0])
		if !ok {
			b.Fatal("miss")
		}
		dst = out[:0]
	}
}

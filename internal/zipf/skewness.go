package zipf

import "math"

// SampleSkewness computes the adjusted Fisher–Pearson standardized moment
// coefficient G1 from Joanes & Gill (1998), the estimator the DIDO paper cites
// for runtime skewness estimation ([17] in the paper). It returns 0 for fewer
// than 3 samples or zero variance.
func SampleSkewness(samples []float64) float64 {
	n := float64(len(samples))
	if n < 3 {
		return 0
	}
	var mean float64
	for _, v := range samples {
		mean += v
	}
	mean /= n
	var m2, m3 float64
	for _, v := range samples {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// EstimateZipfS maps an observed access-frequency skewness back to a Zipf
// exponent. The profiler samples per-object access counters over an interval
// (paper §IV-B); the frequency distribution of a Zipf(s) workload has a
// skewness that grows monotonically with s, so a bisection over the forward
// model inverts it.
//
// freqs are the access counts of the objects touched during the sampling
// interval. nObjects is the total population size. The returned s is clamped
// to [0, 1.5], the range relevant for IMKV workloads (YCSB uses 0.99).
func EstimateZipfS(freqs []float64, nObjects uint64) float64 {
	if len(freqs) < 3 || nObjects < 3 {
		return 0
	}
	observed := SampleSkewness(freqs)
	if observed <= 0 {
		return 0
	}
	// Forward model: theoretical skewness of the frequency-of-access
	// distribution over the touched set under Zipf(s). We match the sampling
	// process: frequencies of the most popular len(freqs) objects (sampling
	// is popularity-biased, so the touched set concentrates on top ranks).
	k := uint64(len(freqs))
	if k > nObjects {
		k = nObjects
	}
	model := func(s float64) float64 {
		// Normalize by the harmonic sum once per candidate s; calling
		// Frequency per rank would recompute it k times per bisection step.
		h := HarmonicGeneralized(nObjects, s)
		fs := make([]float64, k)
		total := float64(len(freqs))
		for i := uint64(0); i < k; i++ {
			fs[i] = math.Pow(float64(i+1), -s) / h * total
		}
		return SampleSkewness(fs)
	}
	lo, hi := 0.0, 1.5
	if observed >= model(hi) {
		return hi
	}
	for iter := 0; iter < 40; iter++ {
		mid := (lo + hi) / 2
		if model(mid) < observed {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

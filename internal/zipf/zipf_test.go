package zipf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewGeneratorValidation(t *testing.T) {
	for _, tc := range []struct {
		n uint64
		s float64
	}{{0, 0.99}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGenerator(%d, %v) did not panic", tc.n, tc.s)
				}
			}()
			NewGenerator(tc.n, tc.s, 1)
		}()
	}
}

func TestGeneratorRange(t *testing.T) {
	for _, s := range []float64{0, 0.5, 0.99, 1.0, 1.2} {
		g := NewGenerator(1000, s, 42)
		for i := 0; i < 10000; i++ {
			k := g.Next()
			if k < 1 || k > 1000 {
				t.Fatalf("s=%v: rank %d out of [1,1000]", s, k)
			}
		}
	}
}

func TestGeneratorSingleton(t *testing.T) {
	g := NewGenerator(1, 0.99, 7)
	for i := 0; i < 100; i++ {
		if k := g.Next(); k != 1 {
			t.Fatalf("n=1 generator returned %d", k)
		}
	}
}

func TestUniformIsRoughlyUniform(t *testing.T) {
	g := NewGenerator(10, 0, 1)
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[g.Next()-1]++
	}
	for i, c := range counts {
		frac := float64(c) / draws
		if frac < 0.08 || frac > 0.12 {
			t.Fatalf("rank %d frequency %.3f far from 0.1", i+1, frac)
		}
	}
}

func TestZipfSkewConcentratesOnHead(t *testing.T) {
	g := NewGenerator(100000, 0.99, 1)
	const draws = 200000
	var head int
	for i := 0; i < draws; i++ {
		if g.Next() <= 1000 { // top 1%
			head++
		}
	}
	frac := float64(head) / draws
	// Analytic portion for top 1% of 100k at s=0.99 is ~0.66.
	want := TopPortion(100000, 1000, 0.99)
	if math.Abs(frac-want) > 0.05 {
		t.Fatalf("head fraction %.3f, analytic %.3f", frac, want)
	}
}

func TestZipfEmpiricalMatchesAnalyticFrequency(t *testing.T) {
	const n, draws = 50, 300000
	for _, s := range []float64{0.5, 0.99, 1.3} {
		g := NewGenerator(n, s, 9)
		counts := make([]float64, n)
		for i := 0; i < draws; i++ {
			counts[g.Next()-1]++
		}
		for _, k := range []uint64{1, 2, 5, 10} {
			emp := counts[k-1] / draws
			ana := Frequency(n, k, s)
			if math.Abs(emp-ana) > 0.25*ana+0.005 {
				t.Fatalf("s=%v rank=%d: empirical %.4f vs analytic %.4f", s, k, emp, ana)
			}
		}
	}
}

func TestHarmonicGeneralizedKnownValues(t *testing.T) {
	// H_{3,1} = 1 + 1/2 + 1/3
	if got, want := HarmonicGeneralized(3, 1), 1.0+0.5+1.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("H(3,1) = %v, want %v", got, want)
	}
	// H_{4,0} = 4
	if got := HarmonicGeneralized(4, 0); math.Abs(got-4) > 1e-12 {
		t.Fatalf("H(4,0) = %v, want 4", got)
	}
	// s=2 converges to pi^2/6 for large n
	if got := HarmonicGeneralized(1000000, 2); math.Abs(got-math.Pi*math.Pi/6) > 1e-5 {
		t.Fatalf("H(1e6,2) = %v, want ~pi^2/6", got)
	}
}

func TestHarmonicLargeNApproximation(t *testing.T) {
	// Above the exact-summation threshold the Euler-Maclaurin tail must
	// agree with brute-force summation to well under 0.1%.
	for _, n := range []uint64{harmonicExactMax + 1, harmonicExactMax + 1000, 100000} {
		for _, s := range []float64{0.5, 0.99, 1.0, 1.3} {
			var exact float64
			for k := uint64(1); k <= n; k++ {
				exact += math.Pow(float64(k), -s)
			}
			got := HarmonicGeneralized(n, s)
			if rel := math.Abs(got-exact) / exact; rel > 1e-3 {
				t.Fatalf("n=%d s=%v: approx %v vs exact %v (rel %v)", n, s, got, exact, rel)
			}
			if got <= HarmonicGeneralized(n-1, s) {
				t.Fatalf("n=%d s=%v: H not increasing", n, s)
			}
		}
	}
}

func TestTopPortionProperties(t *testing.T) {
	if got := TopPortion(100, 0, 0.99); got != 0 {
		t.Fatalf("TopPortion(top=0) = %v, want 0", got)
	}
	if got := TopPortion(100, 100, 0.99); got != 1 {
		t.Fatalf("TopPortion(top=n) = %v, want 1", got)
	}
	if got := TopPortion(100, 150, 0.99); got != 1 {
		t.Fatalf("TopPortion(top>n) = %v, want 1", got)
	}
	if got := TopPortion(0, 10, 0.99); got != 0 {
		t.Fatalf("TopPortion(n=0) = %v, want 0", got)
	}
	// Uniform special case.
	if got := TopPortion(200, 50, 0); got != 0.25 {
		t.Fatalf("uniform TopPortion = %v, want 0.25", got)
	}
	// Monotone in top and in s.
	f := func(a, b uint16, s8 uint8) bool {
		n := uint64(a)%5000 + 100
		top1 := uint64(b) % n
		top2 := top1 + (n-top1)/2
		s := float64(s8) / 200.0 // [0, 1.275]
		p1, p2 := TopPortion(n, top1, s), TopPortion(n, top2, s)
		if p2 < p1-1e-12 {
			return false
		}
		// Higher skew concentrates more mass on the same head (for top<n, top>0).
		if top1 > 0 && top1 < n {
			if TopPortion(n, top1, s+0.2) < TopPortion(n, top1, s)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencySumsToOne(t *testing.T) {
	const n = 500
	for _, s := range []float64{0, 0.7, 0.99, 1.4} {
		var sum float64
		for k := uint64(1); k <= n; k++ {
			sum += Frequency(n, k, s)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("s=%v: frequencies sum to %v", s, sum)
		}
	}
	if Frequency(10, 0, 1) != 0 || Frequency(10, 11, 1) != 0 {
		t.Fatal("out-of-range rank should have frequency 0")
	}
}

func TestSampleSkewness(t *testing.T) {
	if got := SampleSkewness([]float64{1, 2}); got != 0 {
		t.Fatalf("skewness of 2 samples = %v, want 0", got)
	}
	if got := SampleSkewness([]float64{5, 5, 5, 5}); got != 0 {
		t.Fatalf("skewness of constant = %v, want 0", got)
	}
	// Symmetric → ~0.
	if got := SampleSkewness([]float64{1, 2, 3, 4, 5}); math.Abs(got) > 1e-9 {
		t.Fatalf("skewness of symmetric = %v, want 0", got)
	}
	// Right-tailed → positive.
	if got := SampleSkewness([]float64{1, 1, 1, 1, 10}); got <= 0 {
		t.Fatalf("right-tailed skewness = %v, want > 0", got)
	}
	// Left-tailed → negative.
	if got := SampleSkewness([]float64{10, 10, 10, 10, 1}); got >= 0 {
		t.Fatalf("left-tailed skewness = %v, want < 0", got)
	}
}

func TestEstimateZipfSRecovers(t *testing.T) {
	// Build the exact frequency profile a Zipf(s) workload induces and check
	// the estimator inverts it reasonably.
	const n = 100000
	for _, s := range []float64{0.6, 0.99, 1.2} {
		var freqs []float64
		const touched = 2000
		const accesses = 1e6
		for k := uint64(1); k <= touched; k++ {
			freqs = append(freqs, Frequency(n, k, s)*accesses)
		}
		got := EstimateZipfS(freqs, n)
		if math.Abs(got-s) > 0.15 {
			t.Fatalf("EstimateZipfS for s=%v returned %v", s, got)
		}
	}
}

func TestEstimateZipfSDegenerate(t *testing.T) {
	if got := EstimateZipfS(nil, 100); got != 0 {
		t.Fatalf("nil freqs → %v, want 0", got)
	}
	if got := EstimateZipfS([]float64{3, 3, 3, 3}, 100); got != 0 {
		t.Fatalf("uniform freqs → %v, want 0", got)
	}
}

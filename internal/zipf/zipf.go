// Package zipf implements the Zipfian machinery used throughout the DIDO
// reproduction:
//
//   - a fast Zipf(s) sampler over ranks 1..n (rejection-inversion, the same
//     family of method as math/rand's Zipf but with an explicit seed and a
//     convenient rank-frequency API);
//   - analytic access-frequency portions used by the cost model ("what portion
//     of accesses hit the n' most popular objects", paper §IV-B);
//   - sample-skewness computation (Joanes & Gill, "Comparing measures of
//     sample skewness and kurtosis", 1998), which the paper's workload
//     profiler uses to estimate the workload's Zipf skew at runtime.
//
// The DIDO paper uses skewness 0.99 for its skewed workloads, matching YCSB.
package zipf

import (
	"math"
	"math/rand"
)

// Generator draws ranks in [1, N] following a Zipf distribution with exponent
// s: P(rank=k) ∝ 1/k^s. It is not safe for concurrent use; create one per
// goroutine.
type Generator struct {
	n   uint64
	s   float64
	rng *rand.Rand
	z   *rand.Zipf // used for s > 1 where rand.Zipf applies directly
	// For 0 < s <= 1 rand.Zipf is unusable (it requires s > 1), so we use
	// inverse-CDF over a precomputed table when n is small, or the
	// approximation by Gray et al. (quantile inversion on the generalized
	// harmonic CDF) otherwise.
	cdf []float64
}

// cdfTableMax bounds the memory used by the exact inverse-CDF table.
const cdfTableMax = 1 << 22

// NewGenerator returns a Zipf(s) generator over ranks 1..n seeded with seed.
// s must be >= 0 (s == 0 degenerates to uniform); n must be >= 1.
func NewGenerator(n uint64, s float64, seed int64) *Generator {
	if n < 1 {
		panic("zipf: n must be >= 1")
	}
	if s < 0 {
		panic("zipf: s must be >= 0")
	}
	g := &Generator{n: n, s: s, rng: rand.New(rand.NewSource(seed))}
	switch {
	case s > 1:
		// rand.Zipf draws from [0, imax] with P(k) ∝ (k+q)^(-s); q=1 gives
		// P(k) ∝ (k+1)^(-s), i.e. ranks shifted by one.
		g.z = rand.NewZipf(g.rng, s, 1, n-1)
	case s == 0:
		// uniform; nothing to precompute
	case n <= cdfTableMax:
		g.cdf = make([]float64, n)
		var sum float64
		for k := uint64(1); k <= n; k++ {
			sum += math.Pow(float64(k), -s)
			g.cdf[k-1] = sum
		}
		for k := range g.cdf {
			g.cdf[k] /= sum
		}
	}
	return g
}

// N returns the rank-space size.
func (g *Generator) N() uint64 { return g.n }

// S returns the exponent.
func (g *Generator) S() float64 { return g.s }

// Next draws a rank in [1, n].
func (g *Generator) Next() uint64 {
	switch {
	case g.s == 0:
		return 1 + uint64(g.rng.Int63n(int64(g.n)))
	case g.z != nil:
		return g.z.Uint64() + 1
	case g.cdf != nil:
		u := g.rng.Float64()
		lo, hi := 0, len(g.cdf)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if g.cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return uint64(lo) + 1
	default:
		// Large n with 0 < s <= 1: continuous quantile inversion on the
		// generalized harmonic integral — accurate to O(1/n) in frequency.
		u := g.rng.Float64()
		return g.quantileApprox(u)
	}
}

// quantileApprox inverts the continuous approximation of the Zipf CDF:
// F(x) ≈ (x^(1-s) - 1) / (n^(1-s) - 1) for s != 1, F(x) ≈ ln(x)/ln(n) for s=1.
func (g *Generator) quantileApprox(u float64) uint64 {
	n := float64(g.n)
	var x float64
	if math.Abs(g.s-1) < 1e-9 {
		x = math.Exp(u * math.Log(n))
	} else {
		e := 1 - g.s
		x = math.Pow(u*(math.Pow(n, e)-1)+1, 1/e)
	}
	k := uint64(x)
	if k < 1 {
		k = 1
	}
	if k > g.n {
		k = g.n
	}
	return k
}

// harmonicExactMax bounds the exact-summation head of HarmonicGeneralized;
// beyond it an Euler–Maclaurin tail takes over. Keeping the head small
// matters: the cost model evaluates H over multi-million-object populations
// inside its configuration search.
const harmonicExactMax = 1 << 12

// HarmonicGeneralized returns H_{n,s} = Σ_{k=1..n} k^(-s). Small n is summed
// exactly; large n uses an exact head plus an Euler–Maclaurin tail
// (∫ x^-s dx with the trapezoidal endpoint correction), accurate to well
// under 0.01% for the skews IMKV workloads use.
func HarmonicGeneralized(n uint64, s float64) float64 {
	if n <= harmonicExactMax {
		var sum float64
		for k := uint64(1); k <= n; k++ {
			sum += math.Pow(float64(k), -s)
		}
		return sum
	}
	var sum float64
	for k := uint64(1); k <= harmonicExactMax; k++ {
		sum += math.Pow(float64(k), -s)
	}
	a, b := float64(harmonicExactMax), float64(n)
	if math.Abs(s-1) < 1e-9 {
		sum += math.Log(b) - math.Log(a)
	} else {
		e := 1 - s
		sum += (math.Pow(b, e) - math.Pow(a, e)) / e
	}
	// Endpoint correction: Σ_{a+1..b} f ≈ ∫_a^b f + (f(b)-f(a))/2.
	sum += (math.Pow(b, -s) - math.Pow(a, -s)) / 2
	return sum
}

// TopPortion returns P = Σ_{i=1..top} f_i / Σ_{j=1..n} f_j: the portion of
// accesses that land on the `top` most popular of n objects under Zipf(s).
// This is the quantity the DIDO cost model uses to estimate how many random
// memory accesses become cache hits (paper §IV-B, "key popularity").
func TopPortion(n, top uint64, s float64) float64 {
	if n == 0 || top == 0 {
		return 0
	}
	if top >= n {
		return 1
	}
	if s == 0 {
		return float64(top) / float64(n)
	}
	return HarmonicGeneralized(top, s) / HarmonicGeneralized(n, s)
}

// Frequency returns the normalized access frequency of rank k under Zipf(s)
// over n objects.
func Frequency(n, k uint64, s float64) float64 {
	if k < 1 || k > n {
		return 0
	}
	return math.Pow(float64(k), -s) / HarmonicGeneralized(n, s)
}

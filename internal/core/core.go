// Package core is the paper's primary contribution — the DIDO system: an
// in-memory key-value store with dynamic pipeline executions on coupled
// CPU-GPU architectures (Zhang et al., ICDE 2017).
//
// The implementation lives in the sibling packages and is assembled by
// internal/dido; this package re-exports the assembled system under the
// repository's canonical "core" path:
//
//	internal/pipeline  — the eight-task dynamic pipeline (§III)
//	internal/costmodel — the APU-aware cost model, Eq 1-4 (§IV)
//	internal/profiler  — the workload profiler and 10% trigger (§III-A)
//	internal/dido      — the adaptation loop closing the three together
//
// Use New (or the module root's public facade) to build a system.
package core

import idido "repro/internal/dido"

// System is the assembled DIDO system (see internal/dido).
type System = idido.System

// Options configures a System.
type Options = idido.Options

// New builds a DIDO system from opts.
func New(opts Options) *System { return idido.New(opts) }

// DefaultOptions returns the paper's evaluation setup at the given arena
// size.
func DefaultOptions(memBytes int64) Options { return idido.DefaultOptions(memBytes) }

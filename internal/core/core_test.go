package core

import "testing"

func TestCoreFacadeBuildsSystem(t *testing.T) {
	sys := New(DefaultOptions(4 << 20))
	if sys == nil || sys.Store == nil || sys.Planner == nil {
		t.Fatal("core facade produced an incomplete system")
	}
	if sys.CurrentConfig().GPUDepth != 1 {
		t.Fatal("initial configuration should be Mega-KV's shape")
	}
}

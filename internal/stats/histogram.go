package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Histogram is a fixed-boundary histogram. Boundaries are upper bounds of the
// buckets; a final implicit +Inf bucket catches the rest. It is safe for
// concurrent use.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
	min    float64
	max    float64
}

// NewHistogram returns a histogram with the given ascending upper bounds.
// NewHistogram panics if bounds are not strictly ascending.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds: b,
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// LatencyBoundsMicros returns a sensible default bucket layout for
// microsecond-scale latencies (1 µs .. ~4 s, roughly ×2 per bucket).
func LatencyBoundsMicros() []float64 {
	var b []float64
	for v := 1.0; v <= 4_194_304; v *= 2 {
		b = append(b, v)
	}
	return b
}

// UnitCostBoundsNanos returns a bucket layout for nanosecond-scale per-unit
// costs (1 ns .. ~4 ms, roughly ×2 per bucket) — the range measured per-task
// unit costs live in on the live serving pipeline.
func UnitCostBoundsNanos() []float64 {
	var b []float64
	for v := 1.0; v <= 4_194_304; v *= 2 {
		b = append(b, v)
	}
	return b
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Mean returns the mean of all samples, or 0 if none.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observed sample, or 0 if none.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed sample, or 0 if none.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) using linear
// interpolation inside the owning bucket. The estimate is exact at bucket
// boundaries and within one bucket width otherwise.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

// Quantiles estimates several quantiles under one lock, so all values
// describe the same sample set even while other goroutines keep observing.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, q := range qs {
		out[i] = h.quantileLocked(q)
	}
	return out
}

func (h *Histogram) quantileLocked(q float64) float64 {
	return quantileFrom(h.bounds, h.counts, h.n, h.min, h.max, q)
}

// quantileFrom estimates the q-quantile from raw bucket state; shared by the
// live histogram (under its lock) and exported snapshots (lock-free).
func quantileFrom(bounds []float64, counts []uint64, n uint64, min, max, q float64) float64 {
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return min
	}
	if q >= 1 {
		return max
	}
	target := q * float64(n)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < target {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := max
		if i < len(bounds) {
			hi = bounds[i]
		}
		if hi < lo { // +Inf bucket with max below previous bound (cannot happen, but be safe)
			hi = lo
		}
		if c == 0 {
			return lo
		}
		frac := (target - prev) / float64(c)
		return lo + frac*(hi-lo)
	}
	return max
}

// Reset clears all samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum = 0
	h.n = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// Snapshot returns a copy of bucket counts (including the +Inf bucket).
func (h *Histogram) Snapshot() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]uint64, len(h.counts))
	copy(out, h.counts)
	return out
}

// HistogramSnapshot is a consistent copy of a histogram's full state, taken
// under one lock acquisition so bounds, counts, sum and count all describe
// the same sample set. It is the exposition surface: quantiles computed from
// a snapshot agree with the bucket counts exported next to them.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has len(Bounds)+1 entries,
	// the last being the +Inf bucket.
	Bounds []float64
	Counts []uint64
	Sum    float64
	N      uint64
	Min    float64 // +Inf when N == 0
	Max    float64 // -Inf when N == 0
}

// Export returns a consistent snapshot of the histogram.
func (h *Histogram) Export() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: make([]float64, len(h.bounds)),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum,
		N:      h.n,
		Min:    h.min,
		Max:    h.max,
	}
	copy(s.Bounds, h.bounds)
	copy(s.Counts, h.counts)
	return s
}

// Quantile estimates the q-quantile from the snapshot, with the same
// interpolation (and the same answers) as Histogram.Quantile at the moment
// the snapshot was taken.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	return quantileFrom(s.Bounds, s.Counts, s.N, s.Min, s.Max, q)
}

// String renders a compact summary.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "n=%d mean=%.4g p50=%.4g p99=%.4g max=%.4g",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
	return sb.String()
}

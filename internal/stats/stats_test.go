package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if got := c.Load(); got != 0 {
		t.Fatalf("new counter = %d, want 0", got)
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if got := c.Reset(); got != 42 {
		t.Fatalf("reset returned %d, want 42", got)
	}
	if got := c.Load(); got != 0 {
		t.Fatalf("after reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestFloatGauge(t *testing.T) {
	var g FloatGauge
	g.Set(3.25)
	if got := g.Load(); got != 3.25 {
		t.Fatalf("float gauge = %v, want 3.25", got)
	}
}

func TestMeanAccumulator(t *testing.T) {
	var m MeanAccumulator
	if m.Mean() != 0 {
		t.Fatal("empty accumulator mean should be 0")
	}
	for _, v := range []float64{1, 2, 3, 4} {
		m.Observe(v)
	}
	if got := m.Mean(); got != 2.5 {
		t.Fatalf("mean = %v, want 2.5", got)
	}
	m.Reset()
	if m.Count != 0 || m.Sum != 0 {
		t.Fatal("reset did not clear accumulator")
	}
}

func TestHistogramBoundsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	NewHistogram(1, 1)
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for _, v := range []float64{5, 15, 25, 35, 15} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Mean(); got != 19 {
		t.Fatalf("mean = %v, want 19", got)
	}
	if got := h.Min(); got != 5 {
		t.Fatalf("min = %v, want 5", got)
	}
	if got := h.Max(); got != 35 {
		t.Fatalf("max = %v, want 35", got)
	}
	snap := h.Snapshot()
	want := []uint64{1, 2, 1, 1}
	for i := range want {
		if snap[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d", i, snap[i], want[i])
		}
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8, 16, 32)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%32) + 0.5)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev-1e-9 {
			t.Fatalf("quantile not monotone at q=%.2f: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram(1, 2)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(1.5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear histogram")
	}
}

func TestLatencyBoundsMicrosAscending(t *testing.T) {
	b := LatencyBoundsMicros()
	if len(b) == 0 {
		t.Fatal("no bounds")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d", i)
		}
	}
}

func TestQuantilePropertyWithinRange(t *testing.T) {
	f := func(samples []uint8) bool {
		if len(samples) == 0 {
			return true
		}
		bounds := []float64{32, 64, 128, 192}
		h := NewHistogram(bounds...)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range samples {
			v := float64(s)
			h.Observe(v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		// Quantile estimates are exact only to bucket granularity: they may
		// undershoot the true min down to the lower edge of min's bucket and
		// overshoot the true max up to the upper edge of max's bucket.
		loEdge := 0.0
		for _, b := range bounds {
			if b < lo {
				loEdge = b
			}
		}
		hiEdge := hi // +Inf bucket interpolates toward the observed max
		for i := len(bounds) - 1; i >= 0; i-- {
			if bounds[i] >= hi {
				hiEdge = bounds[i]
			}
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			v := h.Quantile(q)
			if v < loEdge-1e-9 || v > hiEdge+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramExportConsistent(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for _, v := range []float64{5, 15, 25, 35, 15} {
		h.Observe(v)
	}
	s := h.Export()
	if s.N != 5 || s.Sum != 95 || s.Min != 5 || s.Max != 35 {
		t.Fatalf("export = %+v", s)
	}
	wantCounts := []uint64{1, 2, 1, 1}
	for i := range wantCounts {
		if s.Counts[i] != wantCounts[i] {
			t.Fatalf("bucket %d = %d, want %d", i, s.Counts[i], wantCounts[i])
		}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got, want := s.Quantile(q), h.Quantile(q); got != want {
			t.Fatalf("snapshot quantile(%v) = %v, live = %v", q, got, want)
		}
	}
	// Mutating the snapshot must not touch the histogram (it's a copy).
	s.Counts[0] = 99
	if h.Snapshot()[0] != 1 {
		t.Fatal("Export aliases the live bucket array")
	}
}

// TestConcurrentWritersAndSnapshots hammers every concurrent-safe primitive
// with parallel writers while readers take snapshots; run under -race this
// pins that the snapshot paths (Load, Rate, Export, Quantiles) are safe
// against concurrent updates, and that counters remain exact.
func TestConcurrentWritersAndSnapshots(t *testing.T) {
	var c Counter
	var g Gauge
	var fg FloatGauge
	m := NewRateMeter(time.Millisecond, 8)
	h := NewHistogram(LatencyBoundsMicros()...)

	const writers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				fg.Set(float64(j))
				m.Mark(time.Duration(id*per+j)*time.Microsecond, 1)
				h.Observe(float64(j % 512))
			}
		}(i)
	}

	// Snapshot readers: every accessor a scraper would touch.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastN uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				if v := c.Load(); v > writers*per {
					t.Errorf("counter overshot: %d", v)
					return
				}
				g.Load()
				fg.Load()
				m.Rate(time.Duration(writers*per) * time.Microsecond)
				s := h.Export()
				if s.N < lastN {
					t.Errorf("histogram count went backwards: %d → %d", lastN, s.N)
					return
				}
				lastN = s.N
				s.Quantile(0.99)
				h.Quantiles(0.5, 0.99, 0.999)
			}
		}()
	}

	// Writers finish, then stop the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	go func() {
		for {
			if c.Load() == writers*per {
				close(stop)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	<-done

	if got := c.Load(); got != writers*per {
		t.Fatalf("counter = %d, want %d", got, writers*per)
	}
	if got := h.Count(); got != writers*per {
		t.Fatalf("histogram count = %d, want %d", got, writers*per)
	}
}

func TestRateMeter(t *testing.T) {
	m := NewRateMeter(100*time.Millisecond, 10) // 1s window
	m.Mark(0, 100)
	m.Mark(500*time.Millisecond, 100)
	if got := m.Rate(900 * time.Millisecond); got != 200 {
		t.Fatalf("rate = %v, want 200", got)
	}
	// After the window slides past the first mark, only the second remains.
	if got := m.Rate(1100 * time.Millisecond); got != 100 {
		t.Fatalf("rate after slide = %v, want 100", got)
	}
}

func TestRateMeterPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRateMeter(0, 1)
}

func TestThroughputAndMOPS(t *testing.T) {
	if got := Throughput(1000, time.Second); got != 1000 {
		t.Fatalf("throughput = %v, want 1000", got)
	}
	if got := Throughput(1000, 0); got != 0 {
		t.Fatalf("zero-duration throughput = %v, want 0", got)
	}
	if got := MOPS(2_000_000, time.Second); got != 2 {
		t.Fatalf("MOPS = %v, want 2", got)
	}
}

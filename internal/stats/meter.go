package stats

import (
	"sync"
	"time"
)

// RateMeter measures an event rate over a sliding window of fixed-size time
// slots. It is driven by an external clock (simulated or wall time) passed to
// Mark, so the same meter works in both execution modes.
type RateMeter struct {
	mu       sync.Mutex
	slot     time.Duration
	nslots   int
	counts   []uint64
	slotBase int64 // index of the slot at ring position 0
}

// NewRateMeter returns a meter with nslots slots of width slot each.
func NewRateMeter(slot time.Duration, nslots int) *RateMeter {
	if slot <= 0 || nslots <= 0 {
		panic("stats: RateMeter requires positive slot and nslots")
	}
	return &RateMeter{slot: slot, nslots: nslots, counts: make([]uint64, nslots), slotBase: -1}
}

// Mark records n events at time now.
func (m *RateMeter) Mark(now time.Duration, n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := int64(now / m.slot)
	m.advance(idx)
	m.counts[idx%int64(m.nslots)] += n
}

// advance rolls the ring forward to include slot idx, zeroing skipped slots.
func (m *RateMeter) advance(idx int64) {
	if m.slotBase < 0 {
		m.slotBase = idx
		return
	}
	for s := m.slotBase + 1; s <= idx; s++ {
		m.counts[s%int64(m.nslots)] = 0
	}
	if idx > m.slotBase {
		m.slotBase = idx
	}
}

// Rate returns events/second over the whole window ending at now.
func (m *RateMeter) Rate(now time.Duration) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := int64(now / m.slot)
	m.advance(idx)
	var total uint64
	for _, c := range m.counts {
		total += c
	}
	window := time.Duration(m.nslots) * m.slot
	return float64(total) / window.Seconds()
}

// Throughput converts an operation count and elapsed simulated/real duration
// into operations per second. It returns 0 for non-positive durations.
func Throughput(ops uint64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}

// MOPS converts an operation count and duration to millions of ops per second,
// the unit used throughout the DIDO paper's evaluation.
func MOPS(ops uint64, elapsed time.Duration) float64 {
	return Throughput(ops, elapsed) / 1e6
}

// Package stats provides lightweight metric primitives used across the DIDO
// reproduction: monotonic counters, gauges, fixed-bucket histograms, rate
// meters and small numeric helpers.
//
// All types are safe for concurrent use unless documented otherwise. The
// package deliberately avoids any external dependency so that it can be used
// from both the real (wall-clock) store path and the simulated path.
package stats

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta to the counter.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset sets the counter back to zero and returns the previous value.
func (c *Counter) Reset() uint64 { return c.v.Swap(0) }

// Gauge is a settable 64-bit value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// FloatGauge is a settable float64 value, stored atomically.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (g *FloatGauge) Load() float64 { return math.Float64frombits(g.bits.Load()) }

// MeanAccumulator accumulates a running sum/count pair. It is not safe for
// concurrent use; each pipeline stage owns its own accumulator.
type MeanAccumulator struct {
	Sum   float64
	Count uint64
}

// Observe adds one sample.
func (m *MeanAccumulator) Observe(v float64) {
	m.Sum += v
	m.Count++
}

// Mean returns the mean of all observed samples, or 0 if none.
func (m *MeanAccumulator) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum / float64(m.Count)
}

// Reset clears the accumulator.
func (m *MeanAccumulator) Reset() {
	m.Sum = 0
	m.Count = 0
}

// String implements fmt.Stringer.
func (m *MeanAccumulator) String() string {
	return fmt.Sprintf("mean=%.4g n=%d", m.Mean(), m.Count)
}

package bench

import (
	"time"

	"repro/internal/dido"
	"repro/internal/pipeline"
	"repro/internal/task"
	"repro/internal/workload"
)

// Fig9 reproduces the cost-model error rate: for every one of the 24
// workloads, run DIDO and compare its measured throughput against the cost
// model's prediction for the configuration it chose. Error rate =
// (T_DIDO − T_Model)/T_DIDO (paper: max 14.2%, average |error| 7.7%).
func Fig9(sc Scale) []*Table {
	t := &Table{
		ID:      "fig9",
		Title:   "Cost model error rate per workload (%)",
		Columns: []string{"ErrorPct"},
		Notes:   []string{"paper: max 14.2%, average 7.7%"},
	}
	for _, name := range sortedSpecNames() {
		spec, _ := workload.SpecByName(name)
		sys := dido.New(buildOpts(sc, time.Millisecond))
		gen := prepare(sys, spec, sc)
		res := measure(sys, gen, sc)

		// Predict throughput for the configuration DIDO settled on, from
		// the planner's own profile view.
		cfg := sys.CurrentConfig()
		prof := lastProfile(sys, gen)
		pred := sys.Planner.EvaluateConfig(cfg, prof)
		// Compare steady-state rates: the prediction is N/Tmax (Eq 4), so the
		// measurement is the realized batch size over the realized bottleneck
		// stage time — free of pipeline-fill amortization over a short run.
		bottleneck := res.StageMean[0]
		for _, d := range res.StageMean {
			if d > bottleneck {
				bottleneck = d
			}
		}
		if bottleneck <= 0 || res.AvgBatch <= 0 {
			continue
		}
		measured := res.AvgBatch / bottleneck.Seconds()
		errPct := (measured - pred.ThroughputOPS) / measured * 100
		t.Add(name, errPct)
	}
	var sumAbs, maxAbs float64
	for _, r := range t.Rows {
		a := abs(r.Values[0])
		sumAbs += a
		if a > maxAbs {
			maxAbs = a
		}
	}
	if len(t.Rows) > 0 {
		t.Notes = append(t.Notes,
			"measured mean |error| = "+fmtF(sumAbs/float64(len(t.Rows)))+"%, max |error| = "+fmtF(maxAbs)+"%")
	}
	return []*Table{t}
}

// fig10Workloads are the seven workloads where the paper's DIDO picked a
// different plan than the ground-truth optimum (§V-B).
func fig10Workloads() []string {
	return []string{
		"K16-G50-U", "K32-G95-U", "K32-G100-S", "K32-G50-S",
		"K128-G95-U", "K128-G95-S", "K128-G50-S",
	}
}

// Fig10 compares DIDO's throughput with the ground-truth best and worst
// configurations found by exhaustively *running* a pruned configuration space
// (paper: optimal configs average only 6.6% above DIDO; a poor config can be
// an order of magnitude slower).
func Fig10(sc Scale) []*Table {
	t := &Table{
		ID:      "fig10",
		Title:   "DIDO vs optimal/worst configuration (normalized to DIDO)",
		Columns: []string{"DIDO", "Best", "Worst"},
		Notes: []string{
			"paper: optimal ≈1.066× DIDO on average; worst configs can be ~10× slower",
			"ground truth sweep uses the pruned config space (work stealing off, split=2) for tractability",
		},
	}
	probe := sc
	probe.Batches = maxInt(6, sc.Batches/4)
	probe.WarmBatches = 2
	for _, name := range fig10Workloads() {
		spec, _ := workload.SpecByName(name)

		sys := dido.New(buildOpts(sc, time.Millisecond))
		gen := prepare(sys, spec, sc)
		didoRes := measure(sys, gen, sc)
		if didoRes.ThroughputMOPS <= 0 {
			continue
		}

		best, worst := didoRes.ThroughputMOPS, didoRes.ThroughputMOPS
		for _, cfg := range prunedConfigs() {
			cfg := cfg
			opts := buildOpts(probe, time.Millisecond)
			opts.StaticConfig = &cfg
			res := runWorkload(opts, dido.New, spec, probe)
			if res.ThroughputMOPS <= 0 {
				continue
			}
			if res.ThroughputMOPS > best {
				best = res.ThroughputMOPS
			}
			if res.ThroughputMOPS < worst {
				worst = res.ThroughputMOPS
			}
		}
		t.Add(name, 1.0, best/didoRes.ThroughputMOPS, worst/didoRes.ThroughputMOPS)
	}
	return []*Table{t}
}

// prunedConfigs is the ground-truth sweep space for Fig 10: every pipeline
// shape and index assignment, with stealing off and the balanced core split.
func prunedConfigs() []pipeline.Config {
	var out []pipeline.Config
	for _, c := range pipeline.Enumerate(4) {
		if c.WorkStealing {
			continue
		}
		if c.GPUDepth > 0 && c.CPUCoresPre != 2 {
			continue
		}
		out = append(out, c)
	}
	return out
}

// lastProfile re-derives the planner-facing profile from a fresh batch so the
// prediction uses the same inputs the adaptation loop saw.
func lastProfile(sys *dido.System, gen *workload.Generator) task.Profile {
	b := &pipeline.Batch{Queries: gen.Batch(4096), Config: sys.CurrentConfig()}
	sys.Exec.ExecuteBatch(b)
	prof := b.Profile
	prof.Skew = sys.Profiler.Skew()
	prof.CacheHitPortion = 0 // planner derives P analytically
	return prof
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fmtF(v float64) string {
	// two decimal places, zero-padded
	n := int(v*100 + 0.5)
	frac := n % 100
	pad := ""
	if frac < 10 {
		pad = "0"
	}
	return itoa(n/100) + "." + pad + itoa(frac)
}

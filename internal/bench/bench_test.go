package bench

import (
	"bytes"
	"strings"
	"testing"
)

// quick returns the cheapest scale that still exhibits the paper's shapes.
func quick() Scale { return QuickScale() }

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	want := []string{
		"fig4", "fig5", "fig6", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21",
		"abl-steal", "abl-mugrid", "abl-cuckoo", "abl-latency", "abl-planner",
	}
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, id := range want {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Run == nil || reg[i].Title == "" {
			t.Fatalf("registry entry %s incomplete", id)
		}
	}
	if _, ok := ByID("FIG11"); !ok {
		t.Fatal("ByID should be case-insensitive")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("bogus id resolved")
	}
}

func TestTablePrinting(t *testing.T) {
	tab := &Table{ID: "t", Title: "Test", Columns: []string{"A", "B"}}
	tab.Add("row1", 1.5, 2.5)
	tab.Add("row2", 3, 4)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"t", "Test", "A", "B", "row1", "1.5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if tab.Mean(0) != 2.25 {
		t.Fatalf("mean = %v", tab.Mean(0))
	}
	if tab.Mean(5) != 0 {
		t.Fatal("out-of-range mean should be 0")
	}
}

func TestFig4Shape(t *testing.T) {
	tabs := Fig4(quick())
	tab := tabs[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("fig4 rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		np, idx, rs := r.Values[0], r.Values[1], r.Values[2]
		if np <= 0 || idx <= 0 || rs <= 0 {
			t.Fatalf("%s: nonpositive stage time %v", r.Label, r.Values)
		}
		// Fig 4's shape: Read&Send dominates network processing everywhere.
		if rs <= np {
			t.Fatalf("%s: Read&Send (%v) should exceed NetworkProc (%v)", r.Label, rs, np)
		}
	}
	// Index stage time shrinks from K8 to K128 (smaller batches).
	if tab.Rows[0].Values[1] <= tab.Rows[3].Values[1] {
		t.Fatalf("index stage should shrink with KV size: %v vs %v",
			tab.Rows[0].Values[1], tab.Rows[3].Values[1])
	}
}

func TestFig5Shape(t *testing.T) {
	tab := Fig5(quick())[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// GPU utilization falls with key-value size; large-KV util is low.
	first := tab.Rows[0].Values[0]
	last := tab.Rows[3].Values[0]
	if last >= first {
		t.Fatalf("GPU util should fall with KV size: %v → %v", first, last)
	}
	if last > 0.4 {
		t.Fatalf("K128 GPU util = %v, want severe underutilization", last)
	}
}

func TestFig6Shape(t *testing.T) {
	tab := Fig6(quick())[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		sum := r.Values[0] + r.Values[1] + r.Values[2]
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("%s: shares sum to %v", r.Label, sum)
		}
		// The paper's finding: 5% of ops (updates) eat a disproportionate
		// share of GPU time — well above their 5% op share.
		if r.Values[3] < 0.15 {
			t.Fatalf("%s: update share %v too small to reproduce Fig 6", r.Label, r.Values[3])
		}
	}
}

func TestFig11Shape(t *testing.T) {
	sc := quick()
	tab := Fig11(sc)[0]
	if len(tab.Rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(tab.Rows))
	}
	var below float64
	for _, r := range tab.Rows {
		if r.Values[2] < 0.95 {
			below++
		}
	}
	// DIDO should win or tie essentially everywhere.
	if below > 3 {
		t.Fatalf("DIDO lost on %v of 24 workloads", below)
	}
	if tab.Mean(2) < 1.1 {
		t.Fatalf("mean speedup = %v, want clearly > 1", tab.Mean(2))
	}
}

func TestFig20Trace(t *testing.T) {
	tab := Fig20(quick())[0]
	if len(tab.Rows) < 5 {
		t.Fatalf("trace too short: %d points", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		if r.Values[1] <= 0 {
			t.Fatalf("nonpositive throughput in trace at %v", r.Values[0])
		}
	}
}

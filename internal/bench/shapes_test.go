package bench

import (
	"strings"
	"testing"
)

// Shape tests for the remaining figures: each asserts the qualitative
// finding the paper reports, at quick scale.

func TestFig9ErrorBand(t *testing.T) {
	tab := Fig9(quick())[0]
	if len(tab.Rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(tab.Rows))
	}
	var sumAbs, maxAbs float64
	for _, r := range tab.Rows {
		a := abs(r.Values[0])
		sumAbs += a
		if a > maxAbs {
			maxAbs = a
		}
	}
	mean := sumAbs / float64(len(tab.Rows))
	// Paper: avg 7.7%, max 14.2%. Accept the same order of magnitude; the
	// model must be neither suspiciously exact nor useless.
	if mean > 15 {
		t.Fatalf("mean |error| = %.1f%%, cost model too inaccurate", mean)
	}
	if maxAbs < 0.5 {
		t.Fatalf("max |error| = %.2f%%, suspiciously exact (planner peeking at ground truth?)", maxAbs)
	}
}

func TestFig10DIDONearOptimal(t *testing.T) {
	tab := Fig10(quick())[0]
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		best, worst := r.Values[1], r.Values[2]
		// Paper: optimal only ~6.6% above DIDO on average; worst much lower.
		if best > 1.6 {
			t.Fatalf("%s: best config %.2fx DIDO — adaptation picked a poor plan", r.Label, best)
		}
		if worst > best {
			t.Fatalf("%s: worst (%v) above best (%v)", r.Label, worst, best)
		}
	}
	meanBest := tab.Mean(1)
	if meanBest > 1.35 {
		t.Fatalf("mean optimality gap %.2fx too large (paper: 1.066x)", meanBest)
	}
}

func TestFig12DIDOLiftsUtilization(t *testing.T) {
	tab := Fig12(quick())[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var didoBetterGPU int
	for _, r := range tab.Rows {
		didoGPU, megaGPU := r.Values[0], r.Values[1]
		if didoGPU >= megaGPU {
			didoBetterGPU++
		}
	}
	if didoBetterGPU < 3 {
		t.Fatalf("DIDO improved GPU utilization on only %d/4 workloads", didoBetterGPU)
	}
}

func TestFig13Shape(t *testing.T) {
	tab := Fig13(quick())[0]
	if len(tab.Rows) != 16 {
		t.Fatalf("rows = %d, want 16 (G95+G50)", len(tab.Rows))
	}
	var g95, g50 []float64
	for _, r := range tab.Rows {
		if strings.Contains(r.Label, "G95") {
			g95 = append(g95, r.Values[2])
		} else {
			g50 = append(g50, r.Values[2])
		}
	}
	if mean(g95) <= mean(g50) {
		t.Fatalf("index assignment should help G95 (%v) more than G50 (%v) — paper: +56%% vs +10%%",
			mean(g95), mean(g50))
	}
	if mean(g95) < 1.05 {
		t.Fatalf("G95 mean speedup %.3f too small", mean(g95))
	}
	// G50 may be near-neutral but must not collapse.
	if mean(g50) < 0.9 {
		t.Fatalf("G50 mean speedup %.3f — flexible assignment hurt badly", mean(g50))
	}
}

func TestFig14Shape(t *testing.T) {
	tab := Fig14(quick())[0]
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tab.Rows))
	}
	if m := tab.Mean(2); m < 1.1 {
		t.Fatalf("dynamic pipeline mean speedup %.3f, want clearly > 1 (paper: +69%%)", m)
	}
}

func TestFig15Shape(t *testing.T) {
	tab := Fig15(quick())[0]
	if len(tab.Rows) != 24 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	losses := 0
	for _, r := range tab.Rows {
		if r.Values[2] < 0.9 {
			losses++
		}
	}
	if losses > 4 {
		t.Fatalf("work stealing lost >10%% on %d/24 workloads", losses)
	}
	// Gains shrink with key-value size (paper: K8 +28% → K128 +6%).
	var k8s, k128s []float64
	for _, r := range tab.Rows {
		if strings.HasPrefix(r.Label, "K8-") {
			k8s = append(k8s, r.Values[2])
		}
		if strings.HasPrefix(r.Label, "K128-") {
			k128s = append(k128s, r.Values[2])
		}
	}
	if mean(k8s) < mean(k128s)-0.05 {
		t.Fatalf("stealing gain should not grow with KV size: K8 %v vs K128 %v", mean(k8s), mean(k128s))
	}
}

func TestFig16DiscreteDominates(t *testing.T) {
	tab := Fig16(quick())[0]
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		discrete, coupled, dido := r.Values[0], r.Values[1], r.Values[2]
		if discrete <= dido {
			t.Fatalf("%s: discrete (%v) should beat DIDO (%v) on absolute MOPS", r.Label, discrete, dido)
		}
		if dido <= coupled*0.95 {
			t.Fatalf("%s: DIDO (%v) should not lose to Mega-KV coupled (%v)", r.Label, dido, coupled)
		}
	}
}

func TestFig17DIDOWinsPricePerformance(t *testing.T) {
	tab := Fig17(quick())[0]
	wins := 0
	for _, r := range tab.Rows {
		if r.Values[3] > 1 {
			wins++
		}
	}
	// Paper: DIDO wins on all 12; allow an outlier or two at quick scale.
	if wins < 9 {
		t.Fatalf("DIDO won price-performance on only %d/12 workloads", wins)
	}
}

func TestFig18EnergyRows(t *testing.T) {
	tab := Fig18(quick())[0]
	if len(tab.Rows) != 12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		for c, v := range r.Values {
			if v <= 0 {
				t.Fatalf("%s col %d: nonpositive efficiency", r.Label, c)
			}
		}
	}
}

func TestFig19PositiveImprovements(t *testing.T) {
	tab := Fig19(quick())[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var sum float64
	var n int
	for _, r := range tab.Rows {
		for _, v := range r.Values {
			sum += v
			n++
		}
	}
	if sum/float64(n) < 0 {
		t.Fatalf("mean improvement %.1f%% negative across budgets", sum/float64(n))
	}
}

func TestFig21SpeedupGrowsWithCycle(t *testing.T) {
	tab := Fig21(quick())[0]
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	short := tab.Rows[0].Values[1]
	long := tab.Rows[len(tab.Rows)-1].Values[1]
	if long < short-0.1 {
		t.Fatalf("speedup should not shrink with cycle length: %v → %v (paper: 1.58 → 1.79)", short, long)
	}
	if long < 1 {
		t.Fatalf("long-cycle speedup %v < 1", long)
	}
}

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

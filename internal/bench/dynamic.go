package bench

import (
	"time"

	"repro/internal/dido"
	"repro/internal/megakv"
	"repro/internal/workload"
)

// fig19Workloads are the four representative workloads of the latency study.
func fig19Workloads() []string {
	return []string{"K8-G50-U", "K16-G100-S", "K32-G95-S", "K32-G50-U"}
}

// Fig19 reproduces the latency-budget sweep: DIDO's improvement over Mega-KV
// (Coupled) with the average system latency capped at 600/800/1000 µs.
// Paper: +27% / +26% / +20% average — tighter budgets shrink batches, which
// hurts the GPU-heavy baseline more.
func Fig19(sc Scale) []*Table {
	t := &Table{
		ID:      "fig19",
		Title:   "DIDO improvement over Mega-KV (Coupled) at latency budgets (%)",
		Columns: []string{"600us", "800us", "1000us"},
		Notes:   []string{"paper: averages 27% / 26% / 20%"},
	}
	budgets := []time.Duration{600 * time.Microsecond, 800 * time.Microsecond, 1000 * time.Microsecond}
	for _, name := range fig19Workloads() {
		spec, _ := workload.SpecByName(name)
		vals := make([]float64, 0, len(budgets))
		for _, budget := range budgets {
			mega := runWorkload(buildOpts(sc, budget), megakv.NewCoupled, spec, sc)
			didoRes := runWorkload(buildOpts(sc, budget), dido.New, spec, sc)
			imp := 0.0
			if mega.ThroughputMOPS > 0 {
				imp = (didoRes.ThroughputMOPS/mega.ThroughputMOPS - 1) * 100
			}
			vals = append(vals, imp)
		}
		t.Add(name, vals...)
	}
	return []*Table{t}
}

// fig20Pair builds the alternating workload of the adaptation experiments:
// K8-G50-U ↔ K16-G95-S (Figs 20-21).
func fig20Pair(sc Scale, seed int64) (*workload.Generator, *workload.Generator) {
	sa, _ := workload.SpecByName("K8-G50-U")
	sb, _ := workload.SpecByName("K16-G95-S")
	popA := workload.PopulationForMemory(sa, sc.MemBytes/2)
	popB := workload.PopulationForMemory(sb, sc.MemBytes/2)
	return workload.NewGenerator(sa, popA, seed), workload.NewGenerator(sb, popB, seed+1)
}

// Fig20 reproduces the adaptation trace: the workload alternates every 3 ms
// and DIDO's throughput dips at each switch, recovering within ~1 ms as the
// profiler triggers a re-plan.
func Fig20(sc Scale) []*Table {
	t := &Table{
		ID:      "fig20",
		Title:   "DIDO throughput trace under K8-G50-U ↔ K16-G95-S alternation (MOPS)",
		Columns: []string{"Time_ms", "MOPS"},
		Notes: []string{
			"paper: throughput dips after each 3ms phase switch and recovers within ~1ms",
		},
	}
	sys := dido.New(buildOpts(sc, time.Millisecond))
	genA, genB := fig20Pair(sc, int64(sc.Seed)+7)
	sys.Warm(genA.KeyAt, genA.Population(), genA.Spec.ValueSize)
	sys.Warm(genB.KeyAt, genB.Population(), genB.Spec.ValueSize)

	// Phase length in queries ≈ 3ms of processing at the converged rate;
	// estimate from a warm-up run, then trace.
	warm := sys.Run(genA, sc.WarmBatches+4)
	qps := warm.ThroughputMOPS * 1e6
	if qps <= 0 {
		qps = 1e6
	}
	phase := uint64(qps * 0.003) // 3 ms worth of queries
	if phase < 4096 {
		phase = 4096
	}
	alt := workload.NewAlternator(genA, genB, phase)

	sys.Runner.TraceEvery = 300 * time.Microsecond // paper samples every 0.3 ms
	defer func() { sys.Runner.TraceEvery = 0 }()
	res := sys.Run(alt, sc.Batches*4)
	for _, p := range res.Trace {
		t.Add(fmtF(float64(p.At)/float64(time.Millisecond)),
			float64(p.At)/float64(time.Millisecond), p.Throughput/1e6)
	}
	t.Notes = append(t.Notes, "re-plans during trace: "+itoa(int(sys.Replans())))
	return []*Table{t}
}

// Fig21 reproduces the fluctuation stress test: DIDO's speedup over Mega-KV
// (Coupled) as the alternation cycle grows from 2 ms to 256 ms (paper: 1.58
// at 2 ms rising to ~1.79 beyond 64 ms — re-planning cost amortizes away).
func Fig21(sc Scale) []*Table {
	t := &Table{
		ID:      "fig21",
		Title:   "DIDO speedup over Mega-KV (Coupled) vs alternation cycle",
		Columns: []string{"Cycle_ms", "Speedup"},
		Notes:   []string{"paper: 1.58 at 2ms rising to 1.79 at >=64ms"},
	}
	cycles := []float64{2, 4, 8, 16, 32, 64, 128, 256}
	for _, cycleMs := range cycles {
		speedup := runFig21Cycle(sc, cycleMs)
		t.Add(fmtF(cycleMs), cycleMs, speedup)
	}
	return []*Table{t}
}

// runFig21Cycle measures one alternation-cycle point.
func runFig21Cycle(sc Scale, cycleMs float64) float64 {
	run := func(build func(dido.Options) *dido.System) float64 {
		opts := buildOpts(sc, time.Millisecond)
		sys := build(opts)
		genA, genB := fig20Pair(sc, int64(sc.Seed)+13)
		sys.Warm(genA.KeyAt, genA.Population(), genA.Spec.ValueSize)
		sys.Warm(genB.KeyAt, genB.Population(), genB.Spec.ValueSize)
		sys.Planner.MaxBatch = sc.MaxBatch

		warm := sys.Run(genA, sc.WarmBatches)
		qps := warm.ThroughputMOPS * 1e6
		if qps <= 0 {
			qps = 1e6
		}
		phase := uint64(qps * cycleMs / 1000)
		if phase < 1024 {
			phase = 1024
		}
		alt := workload.NewAlternator(genA, genB, phase)
		// Run enough batches to span several cycles, bounded for the long
		// cycles (their per-cycle adaptation cost amortizes anyway).
		batches := sc.Batches * 3
		res := sys.Run(alt, batches)
		return res.ThroughputMOPS
	}
	mega := run(megakv.NewCoupled)
	d := run(dido.New)
	if mega <= 0 {
		return 0
	}
	return d / mega
}

// Package bench regenerates every measured table and figure of the DIDO
// paper's evaluation (§V). Each experiment is a function returning a Table
// whose rows mirror the paper's series; cmd/dido-bench prints them and
// EXPERIMENTS.md records paper-vs-measured values.
//
// The experiments run against the simulated APU at a reduced memory scale
// (the shape of every result is scale-free; DESIGN.md §4 lists the expected
// shapes). Scale controls arena size and run length so the full suite
// finishes in minutes on a laptop.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/dido"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// Scale bounds experiment cost.
type Scale struct {
	// MemBytes is the key-value arena per system (the paper uses 1908 MB;
	// experiments shrink it — results are ratio-shaped, not absolute).
	MemBytes int64
	// Batches is the measured batch count per run.
	Batches int
	// WarmBatches run before measurement to reach steady state.
	WarmBatches int
	// MaxBatch clamps batch sizing.
	MaxBatch int
	// Seed drives all randomness.
	Seed uint64
}

// DefaultScale is the standard experiment scale.
func DefaultScale() Scale {
	return Scale{
		MemBytes:    8 << 20,
		Batches:     30,
		WarmBatches: 6,
		MaxBatch:    1 << 15,
		Seed:        1,
	}
}

// QuickScale is a fast smoke-test scale for unit tests and -short runs.
func QuickScale() Scale {
	return Scale{
		MemBytes:    4 << 20,
		Batches:     10,
		WarmBatches: 3,
		MaxBatch:    1 << 13,
		Seed:        1,
	}
}

// Table is one reproduced figure or table.
type Table struct {
	ID      string // e.g. "fig11"
	Title   string
	Columns []string
	Rows    []Row
	// Notes records methodology details (scaling, substitutions).
	Notes []string
}

// Row is one labeled series point.
type Row struct {
	Label  string
	Values []float64
}

// Add appends a row.
func (t *Table) Add(label string, values ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Values: values})
}

// Mean returns the mean of column c across rows (NaN-free: rows lacking the
// column are skipped).
func (t *Table) Mean(c int) float64 {
	var sum float64
	var n int
	for _, r := range t.Rows {
		if c < len(r.Values) {
			sum += r.Values[c]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	labelW := 8
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	fmt.Fprintf(w, "%-*s", labelW+2, "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%14s", c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", labelW+2, r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(w, "%14.4g", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered figure reproduction.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) []*Table
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig4", "Execution time of Mega-KV pipeline stages on the coupled architecture", Fig4},
		{"fig5", "GPU utilization of Mega-KV on the coupled architecture", Fig5},
		{"fig6", "Ratio of GPU execution time of index operations", Fig6},
		{"fig9", "Error rate of the cost model across the 24 workloads", Fig9},
		{"fig10", "DIDO vs the optimal configuration (7 mismatch workloads)", Fig10},
		{"fig11", "Throughput improvement of DIDO over Mega-KV (Coupled)", Fig11},
		{"fig12", "CPU and GPU utilization: DIDO vs Mega-KV (Coupled)", Fig12},
		{"fig13", "Speedup from flexible index operation assignment", Fig13},
		{"fig14", "Speedup from dynamic pipeline partitioning", Fig14},
		{"fig15", "Speedup from work stealing", Fig15},
		{"fig16", "Throughput: Mega-KV (Discrete/Coupled) vs DIDO", Fig16},
		{"fig17", "Price-performance ratio", Fig17},
		{"fig18", "Energy efficiency", Fig18},
		{"fig19", "DIDO improvement under different latency budgets", Fig19},
		{"fig20", "Throughput trace under a dynamically changing workload", Fig20},
		{"fig21", "Speedup vs workload alternation cycle", Fig21},
		// Design-choice ablations beyond the paper (DESIGN.md §5).
		{"abl-steal", "ABLATION: work-stealing chunk granularity", AblStealGranularity},
		{"abl-mugrid", "ABLATION: interference-table resolution", AblMuGrid},
		{"abl-cuckoo", "ABLATION: cuckoo insert cost vs load factor", AblCuckooProbes},
		{"abl-latency", "ABLATION: latency percentiles DIDO vs Mega-KV", AblLatencyPercentiles},
		{"abl-planner", "ABLATION: planner batch-solve accuracy", AblPlannerProbes},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- shared run helpers ----

// buildOpts returns DIDO options at the experiment scale. Device caches are
// scaled with the arena so that the cache:data ratio matches the paper's
// platform (4 MB L2 against a 1908 MB arena) — otherwise a shrunken arena
// would fit mostly in cache and erase the random-access bottleneck the whole
// evaluation is about.
func buildOpts(sc Scale, latency time.Duration) dido.Options {
	o := dido.DefaultOptions(sc.MemBytes)
	o.LatencyBudget = latency
	o.Seed = sc.Seed
	o.Noise = 0.03
	ratio := float64(sc.MemBytes) / float64(o.Platform.Memory.TotalBytes)
	scaleCache := func(b int64) int64 {
		s := int64(float64(b) * ratio)
		if s < 8<<10 {
			s = 8 << 10
		}
		return s
	}
	o.Platform.CPU.CacheBytes = scaleCache(o.Platform.CPU.CacheBytes)
	o.Platform.GPU.CacheBytes = scaleCache(o.Platform.GPU.CacheBytes)
	return o
}

// prepare builds a generator sized to the system's arena and warms the store
// to steady state (full arena, eviction active — §V-A stores as many objects
// as fit).
func prepare(sys *dido.System, spec workload.Spec, sc Scale) *workload.Generator {
	pop := workload.PopulationForMemory(spec, sc.MemBytes)
	gen := workload.NewGenerator(spec, pop, int64(sc.Seed)+42)
	sys.Warm(gen.KeyAt, pop, spec.ValueSize)
	sys.Planner.MaxBatch = sc.MaxBatch
	// Warm-up batches settle the feedback controller and the cache.
	if sc.WarmBatches > 0 {
		sys.Run(gen, sc.WarmBatches)
	}
	return gen
}

// measure runs the measured phase.
func measure(sys *dido.System, gen *workload.Generator, sc Scale) pipeline.Result {
	return sys.Run(gen, sc.Batches)
}

// runWorkload builds, warms and measures one system on one workload.
func runWorkload(opts dido.Options, build func(dido.Options) *dido.System, spec workload.Spec, sc Scale) pipeline.Result {
	sys := build(opts)
	gen := prepare(sys, spec, sc)
	return measure(sys, gen, sc)
}

// specsByNames resolves paper workload names, panicking on typos (these are
// compile-time constants in the experiment code).
func specsByNames(names ...string) []workload.Spec {
	out := make([]workload.Spec, len(names))
	for i, n := range names {
		s, ok := workload.SpecByName(n)
		if !ok {
			panic("bench: unknown workload " + n)
		}
		out[i] = s
	}
	return out
}

// sortedSpecNames returns the 24 standard workloads' names in paper order.
func sortedSpecNames() []string {
	specs := workload.StandardSpecs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// ensure deterministic map-free ordering helpers are available.
var _ = sort.Strings

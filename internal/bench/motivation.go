package bench

import (
	"time"

	"repro/internal/apu"
	"repro/internal/dido"
	"repro/internal/megakv"
	"repro/internal/task"
	"repro/internal/workload"
)

// fig4Datasets are the motivation experiment's four data sets (§II-C1): note
// the 32-byte-key set uses a 512-byte value here, unlike the benchmark's 256.
func fig4Datasets() []workload.Spec {
	return []workload.Spec{
		workload.NewSpec(8, 8, 0.95, workload.ZipfYCSB),
		workload.NewSpec(16, 64, 0.95, workload.ZipfYCSB),
		workload.NewSpec(32, 512, 0.95, workload.ZipfYCSB),
		workload.NewSpec(128, 1024, 0.95, workload.ZipfYCSB),
	}
}

// Fig4 reproduces the per-stage execution times of Mega-KV (Coupled) with
// the 300 µs periodic scheduling cap: Network Processing stays light, Read &
// Send Value pins at the cap, and Index Operation shrinks as objects grow
// (paper: 25-42 µs / 174→97 µs / ≈300 µs).
func Fig4(sc Scale) []*Table {
	t := &Table{
		ID:      "fig4",
		Title:   "Mega-KV (Coupled) stage execution time, 95% GET zipf(0.99), µs",
		Columns: []string{"NetworkProc_us", "IndexOp_us", "ReadSend_us"},
		Notes: []string{
			"paper: NP 25-42µs; Index 174µs (K8) dropping to 97µs (K128); Read&Send = 300µs cap",
		},
	}
	for _, spec := range fig4Datasets() {
		opts := buildOpts(sc, 900*time.Microsecond) // 3 stages × 300 µs
		res := runWorkload(opts, megakv.NewCoupled, spec, sc)
		t.Add(spec.Name,
			us(res.StageMean[0]), us(res.StageMean[1]), us(res.StageMean[2]))
	}
	return []*Table{t}
}

// Fig5 reproduces Mega-KV's GPU utilization on the same four workloads
// (paper: up to 51% on small KV, down to 12% on large).
func Fig5(sc Scale) []*Table {
	t := &Table{
		ID:      "fig5",
		Title:   "Mega-KV (Coupled) GPU utilization",
		Columns: []string{"GPUUtil"},
		Notes:   []string{"paper: 51% at K8 falling to 12% at K128"},
	}
	for _, spec := range fig4Datasets() {
		opts := buildOpts(sc, 900*time.Microsecond)
		res := runWorkload(opts, megakv.NewCoupled, spec, sc)
		t.Add(spec.Name, res.GPUUtilization)
	}
	return []*Table{t}
}

// Fig6 reproduces the normalized GPU execution time of Search, Insert and
// Delete kernels as the update batch grows from 1000 to 5000 (with 19×
// searches, the 95:5 ratio): the 5% updates eat 35-56% of GPU time because
// small kernels strand the GPU's lanes.
func Fig6(sc Scale) []*Table {
	t := &Table{
		ID:      "fig6",
		Title:   "Normalized GPU execution time of index operations (95% GET batch)",
		Columns: []string{"Search", "Insert", "Delete", "UpdateShare"},
		Notes: []string{
			"paper: Insert 26.8% and Delete 20.4% of GPU time on average (35-56% combined)",
		},
	}
	model := apu.NewModel(apu.KaveriPlatform(), 0, sc.Seed)
	prof := task.Profile{
		GetRatio:         0.95,
		KeySize:          16,
		ValueSize:        64,
		EvictionRate:     1,
		AvgInsertBuckets: 2,
		SearchProbes:     1.5,
	}
	for _, updates := range []int{1000, 2000, 3000, 4000, 5000} {
		searches := 19 * updates
		mk := func(id task.ID, n int) time.Duration {
			d := task.ForTask(id, withN(prof, n*20), task.Placement{})
			w := apu.Work{
				N:                     n,
				InstrPerQuery:         d.Instr,
				MemAccessesPerQuery:   d.MemAccesses,
				CacheAccessesPerQuery: d.CacheAccesses,
				SeqBytesPerQuery:      d.SeqBytes,
				GPUSerialFrac:         d.GPUSerialFrac,
			}
			return model.TaskTime(apu.GPU, w, 0)
		}
		ts := mk(task.INSearch, searches)
		ti := mk(task.INInsert, updates)
		td := mk(task.INDelete, updates)
		total := ts + ti + td
		t.Add(
			itoa(updates),
			ts.Seconds()/total.Seconds(),
			ti.Seconds()/total.Seconds(),
			td.Seconds()/total.Seconds(),
			(ti+td).Seconds()/total.Seconds(),
		)
	}
	return []*Table{t}
}

func withN(p task.Profile, n int) task.Profile {
	p.N = n
	return p
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

var _ = dido.Options{}

package bench

import "testing"

func TestAblStealGranularityShape(t *testing.T) {
	tab := AblStealGranularity(quick())[0]
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// 64 should be at or near the optimum: no chunk size may beat it by
	// more than ~10% (the paper's §III-B3 granularity claim).
	var at64 float64
	for _, r := range tab.Rows {
		if r.Label == "64" {
			at64 = r.Values[1]
		}
	}
	if at64 <= 0 {
		t.Fatal("missing 64-chunk row")
	}
	var tailRisk bool
	for _, r := range tab.Rows {
		if r.Values[1] < at64*0.95 {
			t.Fatalf("chunk %s beats 64 by >5%%: %v vs %v", r.Label, r.Values[1], at64)
		}
		if r.Values[0] > 64 && r.Values[1] > at64*1.1 {
			tailRisk = true
		}
	}
	// Sub-wavefront chunks strand GPU lanes: strictly much worse.
	if tab.Rows[0].Values[1] < at64*1.5 {
		t.Fatalf("sub-wavefront chunk should be >=1.5x worse: %v vs %v",
			tab.Rows[0].Values[1], at64)
	}
	// And at least one larger granularity shows tail-stranding risk, the
	// reason to stop at the wavefront width.
	if !tailRisk {
		t.Fatal("no large-chunk tail-stranding observed; sweep uninformative")
	}
}

func TestAblMuGridErrorShrinks(t *testing.T) {
	tab := AblMuGrid(quick())[0]
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	first := tab.Rows[0].Values[1]
	last := tab.Rows[len(tab.Rows)-1].Values[1]
	if last >= first {
		t.Fatalf("finer grid should shrink max error: %v → %v", first, last)
	}
	if last > 5 {
		t.Fatalf("32-level grid max error %v%% too large", last)
	}
}

func TestAblCuckooProbesShape(t *testing.T) {
	tab := AblCuckooProbes(quick())[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	lowLoad := tab.Rows[0].Values[1]
	highLoad := tab.Rows[len(tab.Rows)-1].Values[1]
	if lowLoad < 1.5 || lowLoad > 2.5 {
		t.Fatalf("low-load insert buckets = %v, want ~2", lowLoad)
	}
	if highLoad < lowLoad {
		t.Fatal("insert cost should not fall with load factor")
	}
	// Amortized O(1) holds through the store's operating range (the index is
	// sized for 0.85 load); the blowup beyond 0.9 is the finding this
	// ablation reports.
	var at08 float64
	for _, r := range tab.Rows {
		if r.Values[0] == 0.8 {
			at08 = r.Values[1]
		}
	}
	if at08 > 8 {
		t.Fatalf("insert buckets at 0.8 load = %v, want amortized O(1)", at08)
	}
	if highLoad < 2*at08 {
		t.Fatalf("expected visible displacement blowup past 0.9 load: %v vs %v", highLoad, at08)
	}
}

func TestAblPlannerProbesNearInterval(t *testing.T) {
	tab := AblPlannerProbes(quick())[0]
	for _, r := range tab.Rows {
		ratio := r.Values[1]
		if ratio < 0.4 || ratio > 1.6 {
			t.Fatalf("%s: Tmax/interval = %v, affine solve badly off", r.Label, ratio)
		}
	}
}

func TestAblLatencyPercentilesOrdered(t *testing.T) {
	tab := AblLatencyPercentiles(quick())[0]
	for _, r := range tab.Rows {
		avg, p50, p99 := r.Values[0], r.Values[1], r.Values[2]
		if p99 < p50 {
			t.Fatalf("%s: p99 %v < p50 %v", r.Label, p99, p50)
		}
		if avg <= 0 {
			t.Fatalf("%s: no latency measured", r.Label)
		}
	}
}

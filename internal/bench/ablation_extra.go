package bench

import (
	"time"

	"repro/internal/apu"
	"repro/internal/costmodel"
	"repro/internal/cuckoo"
	"repro/internal/dido"
	"repro/internal/pipeline"
	"repro/internal/task"
	"repro/internal/workload"
)

// The "abl*" experiments are not paper figures; they are the design-choice
// ablations DESIGN.md §5 calls out, probing decisions the paper fixes
// without evaluation: the 64-query work-stealing granularity (§III-B3
// asserts 64 is best), the µ calibration grid resolution, and the cuckoo
// search-cost assumption the cost model uses (§IV-B).

// AblStealGranularity sweeps the work-stealing chunk size around the paper's
// choice of 64 on a simulated imbalanced batch, measuring the makespan of
// chunk-granular co-processing (smaller chunks balance better but pay more
// claims; larger chunks strand the tail).
func AblStealGranularity(sc Scale) []*Table {
	t := &Table{
		ID:      "abl-steal",
		Title:   "Work-stealing chunk-size ablation (simulated makespan, lower is better)",
		Columns: []string{"Chunk", "Makespan_us", "VsChunk64"},
		Notes: []string{
			"paper §III-B3 fixes the granularity at the 64-lane wavefront width",
			"finding: 64 is the smallest safe granularity — sub-wavefront chunks strand GPU lanes (≈3x worse); larger chunks are flat on average but risk tail-stranding (see 512)",
		},
	}
	const n = 4096
	// Per-chunk times on the two devices, plus a fixed claim overhead per
	// chunk (atomic tag update + cache-line ping-pong). The GPU schedules
	// whole 64-lane wavefronts: a chunk smaller than a wavefront still
	// occupies a full wave, which is why sub-wavefront granularity wastes
	// GPU lanes — the effect that puts the paper's optimum at 64.
	const gpuPerQuery = 25.0  // ns
	const cpuPerQuery = 60.0  // ns
	const claimOverhead = 150 // ns per claim
	makespan := func(chunk int) float64 {
		chunks := (n + chunk - 1) / chunk
		var tGPU, tCPU float64
		for c := 0; c < chunks; c++ {
			qs := chunk
			if c == chunks-1 {
				qs = n - c*chunk
			}
			waveQs := ((qs + 63) / 64) * 64 // wavefront rounding
			gCost := float64(waveQs)*gpuPerQuery + claimOverhead
			cCost := float64(qs)*cpuPerQuery + claimOverhead
			// Claim-when-free: whichever device is idle first grabs the next
			// chunk — no lookahead, exactly like the tag array. Large chunks
			// let a slow device strand the other at the tail.
			if tGPU <= tCPU {
				tGPU += gCost
			} else {
				tCPU += cCost
			}
		}
		if tGPU > tCPU {
			return tGPU / 1000
		}
		return tCPU / 1000
	}
	base := makespan(64)
	for _, chunk := range []int{8, 16, 32, 64, 128, 256, 512, 1024} {
		m := makespan(chunk)
		t.Add(itoa(chunk), float64(chunk), m, m/base)
	}
	return []*Table{t}
}

// AblMuGrid sweeps the interference-table resolution, reporting the maximum
// lookup error against the continuous model across a probe grid — how coarse
// can the paper's µ microbenchmark table be before the cost model suffers?
func AblMuGrid(sc Scale) []*Table {
	t := &Table{
		ID:      "abl-mugrid",
		Title:   "Interference-table resolution vs lookup error",
		Columns: []string{"Levels", "MaxErrPct", "MeanErrPct"},
	}
	model := apu.NewModel(apu.KaveriPlatform(), 0, sc.Seed)
	peak := model.Platform.Memory.BandwidthBytesPerSec
	probes := []float64{0.03, 0.11, 0.23, 0.37, 0.52, 0.68, 0.81, 0.97, 1.13}
	for _, levels := range []int{2, 4, 8, 16, 32} {
		tbl := apu.CalibrateInterference(model, levels)
		var maxErr, sumErr float64
		var count int
		for _, fc := range probes {
			for _, fg := range probes {
				cbw, gbw := fc*peak, fg*peak
				for _, kind := range []apu.Kind{apu.CPU, apu.GPU} {
					var want float64
					if kind == apu.CPU {
						want = model.Mu(apu.CPU, cbw, gbw)
					} else {
						want = model.Mu(apu.GPU, gbw, cbw)
					}
					got := tbl.Lookup(kind, cbw, gbw)
					err := abs(got-want) / want * 100
					sumErr += err
					count++
					if err > maxErr {
						maxErr = err
					}
				}
			}
		}
		t.Add(itoa(levels), float64(levels), maxErr, sumErr/float64(count))
	}
	return []*Table{t}
}

// AblCuckooProbes measures the real cuckoo table's probe behaviour against
// the cost model's analytic assumptions (§IV-B: Search ≈ 1.5 buckets, Insert
// amortized O(1)), across load factors.
func AblCuckooProbes(sc Scale) []*Table {
	t := &Table{
		ID:      "abl-cuckoo",
		Title:   "Cuckoo index: measured insert cost vs load factor (analytic search = 1.5)",
		Columns: []string{"LoadFactor", "AvgInsertBuckets", "FailedInserts"},
	}
	tbl := cuckoo.New(1<<13, sc.Seed) // 65536 slots
	capTotal := tbl.Capacity()
	spec, _ := workload.SpecByName("K16-G100-U")
	gen := workload.NewGenerator(spec, uint64(capTotal), int64(sc.Seed))
	prev := cuckoo.Stats{}
	inserted := 0
	for _, target := range []float64{0.25, 0.5, 0.7, 0.8, 0.9, 0.95} {
		want := int(target * float64(capTotal))
		for inserted < want {
			inserted++
			tbl.Insert(gen.KeyAt(uint64(inserted), nil), cuckoo.Location(inserted))
		}
		st := tbl.StatsSnapshot()
		dIns := st.Inserts - prev.Inserts
		avg := 0.0
		if dIns > 0 {
			avg = (st.AvgInsertBuckets*float64(st.Inserts) - prev.AvgInsertBuckets*float64(prev.Inserts)) / float64(dIns)
		}
		t.Add(fmtF(target), target, avg, float64(st.FailedInserts))
		prev = st
	}
	return []*Table{t}
}

// AblLatencyPercentiles reports batch latency percentiles for DIDO vs the
// static baseline — the paper only bounds the mean (§V-A); this probes the
// tail the periodic scheduler produces.
func AblLatencyPercentiles(sc Scale) []*Table {
	t := &Table{
		ID:      "abl-latency",
		Title:   "Batch latency percentiles at the 1000µs budget (µs)",
		Columns: []string{"Avg", "P50", "P99"},
	}
	spec, _ := workload.SpecByName("K16-G95-S")
	for _, sys := range []struct {
		name  string
		build func(dido.Options) *dido.System
	}{
		{"DIDO", dido.New},
		{"MegaKV", func(o dido.Options) *dido.System {
			cfg := pipeline.MegaKV()
			o.StaticConfig = &cfg
			return dido.New(o)
		}},
	} {
		res := runWorkload(buildOpts(sc, time.Millisecond), sys.build, spec, sc)
		t.Add(sys.name, us(res.AvgLatency), us(res.P50Latency), us(res.P99Latency))
	}
	return []*Table{t}
}

// AblPlannerProbes verifies the planner's affine-fit batch solving: the
// solved N's realized Tmax should sit near the interval across workloads.
func AblPlannerProbes(sc Scale) []*Table {
	t := &Table{
		ID:      "abl-planner",
		Title:   "Planner batch solving: realized Tmax / interval per workload",
		Columns: []string{"Batch", "TmaxOverInterval"},
	}
	pl := costmodel.NewPlanner(apu.KaveriPlatform(), 300*time.Microsecond)
	for _, name := range []string{"K8-G95-U", "K16-G95-S", "K32-G50-U", "K128-G100-S"} {
		spec, _ := workload.SpecByName(name)
		prof := task.Profile{
			N: 8192, GetRatio: spec.GetRatio, KeySize: float64(spec.KeySize),
			ValueSize: float64(spec.ValueSize), Skew: spec.Skew,
			Population: 1 << 20, EvictionRate: 1, AvgInsertBuckets: 2,
			SearchProbes: 1.5, WireQueryBytes: float64(spec.KeySize) + 12,
			RVInstr: 15, SDInstr: 15, RVUnitNanos: 4, SDUnitNanos: 4,
		}
		pred := pl.EvaluateConfig(pipeline.MegaKV(), prof)
		t.Add(name, float64(pred.Batch), pred.Tmax.Seconds()/pl.Interval.Seconds())
	}
	return []*Table{t}
}

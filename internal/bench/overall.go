package bench

import (
	"time"

	"repro/internal/dido"
	"repro/internal/megakv"
	"repro/internal/workload"
)

// Fig11 reproduces the headline comparison: DIDO's throughput speedup over
// Mega-KV (Coupled) across all 24 workloads (paper: up to 3.0×, average
// 1.81×; gains shrink with key-value size and are largest at 95% GET).
func Fig11(sc Scale) []*Table {
	t := &Table{
		ID:      "fig11",
		Title:   "DIDO speedup over Mega-KV (Coupled), 24 workloads",
		Columns: []string{"MegaKV_MOPS", "DIDO_MOPS", "Speedup"},
		Notes: []string{
			"paper: avg 1.81x, max 3.0x; K8/K16 improvements >> K32/K128; G95 > G100 > G50",
		},
	}
	for _, name := range sortedSpecNames() {
		spec, _ := workload.SpecByName(name)
		mega := runWorkload(buildOpts(sc, time.Millisecond), megakv.NewCoupled, spec, sc)
		didoRes := runWorkload(buildOpts(sc, time.Millisecond), dido.New, spec, sc)
		if mega.ThroughputMOPS <= 0 {
			continue
		}
		t.Add(name, mega.ThroughputMOPS, didoRes.ThroughputMOPS,
			didoRes.ThroughputMOPS/mega.ThroughputMOPS)
	}
	t.Notes = append(t.Notes, "measured mean speedup = "+fmtF(t.Mean(2))+"x")
	return []*Table{t}
}

// fig12Workloads are the four utilization workloads (K*-G95-S, matching the
// Fig 5 motivation set but from the benchmark matrix).
func fig12Workloads() []string {
	return []string{"K8-G95-S", "K16-G95-S", "K32-G95-S", "K128-G95-S"}
}

// Fig12 reproduces the utilization comparison: DIDO lifts GPU utilization to
// 57-89% (1.8× Mega-KV's) and CPU utilization by ~43% on average.
func Fig12(sc Scale) []*Table {
	t := &Table{
		ID:    "fig12",
		Title: "CPU and GPU utilization: DIDO vs Mega-KV (Coupled)",
		Columns: []string{
			"DIDO_GPU", "MegaKV_GPU", "DIDO_CPU", "MegaKV_CPU",
		},
		Notes: []string{
			"paper: DIDO GPU util 57-89% (1.8x Mega-KV); DIDO CPU util up to 79%",
		},
	}
	for _, name := range fig12Workloads() {
		spec, _ := workload.SpecByName(name)
		mega := runWorkload(buildOpts(sc, time.Millisecond), megakv.NewCoupled, spec, sc)
		didoRes := runWorkload(buildOpts(sc, time.Millisecond), dido.New, spec, sc)
		t.Add(name,
			didoRes.GPUUtilization, mega.GPUUtilization,
			didoRes.CPUUtilization, mega.CPUUtilization)
	}
	return []*Table{t}
}

package bench

import (
	"time"

	"repro/internal/dido"
	"repro/internal/megakv"
	"repro/internal/workload"
)

// Fig13 isolates flexible index operation assignment: the pipeline shape is
// pinned to Mega-KV's ([RV,PP,MM]CPU→[IN]GPU→[KC,RD,WR,SD]CPU, stealing off)
// and only the Insert/Delete placement may vary; the baseline forces all
// index ops to the GPU. Paper: +37% average over 14 of 16 workloads (95%
// GET: +56%; 50% GET: +10%).
func Fig13(sc Scale) []*Table {
	t := &Table{
		ID:      "fig13",
		Title:   "Speedup from flexible index operation assignment (pipeline pinned)",
		Columns: []string{"Baseline_MOPS", "Flexible_MOPS", "Speedup"},
		Notes: []string{
			"paper: avg +37%; ~+56% on 95% GET, ~+10% on 50% GET",
		},
	}
	var names []string
	for _, n := range sortedSpecNames() {
		spec, _ := workload.SpecByName(n)
		if spec.GetRatio == 0.95 || spec.GetRatio == 0.5 {
			names = append(names, n)
		}
	}
	for _, name := range names {
		spec, _ := workload.SpecByName(name)

		base := runWorkload(buildOpts(sc, time.Millisecond), megakv.NewCoupled, spec, sc)

		opts := buildOpts(sc, time.Millisecond)
		opts.DisableDynamicPipeline = true
		opts.DisableWorkStealing = true
		flex := runWorkload(opts, dido.New, spec, sc)

		if base.ThroughputMOPS <= 0 {
			continue
		}
		t.Add(name, base.ThroughputMOPS, flex.ThroughputMOPS,
			flex.ThroughputMOPS/base.ThroughputMOPS)
	}
	t.Notes = append(t.Notes, "measured mean speedup = "+fmtF(t.Mean(2))+"x")
	return []*Table{t}
}

// fig14Workloads are the nine read-intensive workloads for which the paper's
// DIDO picks a different pipeline shape than Mega-KV (§V-D2).
func fig14Workloads() []string {
	return []string{
		"K8-G100-U", "K8-G100-S", "K8-G95-U", "K8-G95-S",
		"K16-G100-U", "K16-G100-S", "K16-G95-U", "K16-G95-S",
		"K32-G100-S",
	}
}

// Fig14 isolates dynamic pipeline partitioning: with index assignment
// already flexible (and stealing off in both arms), free the pipeline shape
// and compare against the pinned Mega-KV shape. Paper: +69% average on the
// nine workloads.
func Fig14(sc Scale) []*Table {
	t := &Table{
		ID:      "fig14",
		Title:   "Speedup from dynamic pipeline partitioning (on top of flexible index ops)",
		Columns: []string{"Pinned_MOPS", "Dynamic_MOPS", "Speedup"},
		Notes:   []string{"paper: avg +69% on these nine read-intensive workloads"},
	}
	for _, name := range fig14Workloads() {
		spec, _ := workload.SpecByName(name)

		pinnedOpts := buildOpts(sc, time.Millisecond)
		pinnedOpts.DisableDynamicPipeline = true
		pinnedOpts.DisableWorkStealing = true
		pinned := runWorkload(pinnedOpts, dido.New, spec, sc)

		dynOpts := buildOpts(sc, time.Millisecond)
		dynOpts.DisableWorkStealing = true
		dyn := runWorkload(dynOpts, dido.New, spec, sc)

		if pinned.ThroughputMOPS <= 0 {
			continue
		}
		t.Add(name, pinned.ThroughputMOPS, dyn.ThroughputMOPS,
			dyn.ThroughputMOPS/pinned.ThroughputMOPS)
	}
	t.Notes = append(t.Notes, "measured mean speedup = "+fmtF(t.Mean(2))+"x")
	return []*Table{t}
}

// Fig15 isolates work stealing: full DIDO vs DIDO with stealing removed from
// the search space, across all 24 workloads. Paper: +15.7% average, larger
// on small key-value sizes (K8 +28%, K16 +16%, K32 +12%, K128 +6%).
func Fig15(sc Scale) []*Table {
	t := &Table{
		ID:      "fig15",
		Title:   "Speedup from work stealing (full DIDO vs no-stealing DIDO)",
		Columns: []string{"NoSteal_MOPS", "Steal_MOPS", "Speedup"},
		Notes: []string{
			"paper: avg +15.7%; K8 +28%, K16 +16%, K32 +12%, K128 +6%",
		},
	}
	for _, name := range sortedSpecNames() {
		spec, _ := workload.SpecByName(name)

		noOpts := buildOpts(sc, time.Millisecond)
		noOpts.DisableWorkStealing = true
		noSteal := runWorkload(noOpts, dido.New, spec, sc)

		full := runWorkload(buildOpts(sc, time.Millisecond), dido.New, spec, sc)

		if noSteal.ThroughputMOPS <= 0 {
			continue
		}
		t.Add(name, noSteal.ThroughputMOPS, full.ThroughputMOPS,
			full.ThroughputMOPS/noSteal.ThroughputMOPS)
	}
	t.Notes = append(t.Notes, "measured mean speedup = "+fmtF(t.Mean(2))+"x")
	return []*Table{t}
}

package bench

import (
	"time"

	"repro/internal/apu"
	"repro/internal/dido"
	"repro/internal/megakv"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

// fig16Workloads are the twelve workloads common to DIDO's and Mega-KV's
// published evaluations (§V-E): K8/K16/K128 × G100/G95 × U/S.
func fig16Workloads() []string {
	return []string{
		"K8-G100-U", "K8-G95-U", "K8-G100-S", "K8-G95-S",
		"K16-G100-U", "K16-G95-U", "K16-G100-S", "K16-G95-S",
		"K128-G100-U", "K128-G95-U", "K128-G100-S", "K128-G95-S",
	}
}

// fig16Nets mirrors the paper's methodology: 8-byte-key workloads include
// network I/O (Mega-KV (Discrete) with DPDK, the APU systems with kernel
// networking); all other workloads read packets from local memory.
func fig16Nets(spec workload.Spec) (apuNet, discreteNet netsim.CostProfile) {
	if spec.KeySize == 8 {
		return netsim.KernelNetworking(), netsim.DPDKNetworking()
	}
	return netsim.NoNetworking(), netsim.NoNetworking()
}

// fig16Run measures the three systems on one workload.
func fig16Run(spec workload.Spec, sc Scale) (discrete, coupled, didoRes pipeline.Result) {
	apuNet, dNet := fig16Nets(spec)

	oD := buildOpts(sc, time.Millisecond)
	oD.Net = dNet
	discrete = runWorkload(oD, megakv.NewDiscrete, spec, sc)

	oC := buildOpts(sc, time.Millisecond)
	oC.Net = apuNet
	coupled = runWorkload(oC, megakv.NewCoupled, spec, sc)

	oA := buildOpts(sc, time.Millisecond)
	oA.Net = apuNet
	didoRes = runWorkload(oA, dido.New, spec, sc)
	return discrete, coupled, didoRes
}

// Fig16 reproduces the absolute throughput comparison (paper: Mega-KV
// (Discrete) is 5.8-23.6× DIDO on raw MOPS thanks to far bigger hardware;
// DIDO still beats Mega-KV (Coupled) everywhere).
func Fig16(sc Scale) []*Table {
	t := &Table{
		ID:      "fig16",
		Title:   "Throughput (MOPS): Mega-KV (Discrete), Mega-KV (Coupled), DIDO",
		Columns: []string{"MegaKV_Discrete", "MegaKV_Coupled", "DIDO", "Discrete_over_DIDO"},
		Notes: []string{
			"paper: discrete wins 5.8-23.6x on absolute MOPS; the contribution is the coupled techniques, not absolute speed",
			"K8 rows include network I/O (DPDK for discrete, kernel for APU); other rows omit it, per §V-E",
		},
	}
	for _, name := range fig16Workloads() {
		spec, _ := workload.SpecByName(name)
		d, c, a := fig16Run(spec, sc)
		ratio := 0.0
		if a.ThroughputMOPS > 0 {
			ratio = d.ThroughputMOPS / a.ThroughputMOPS
		}
		t.Add(name, d.ThroughputMOPS, c.ThroughputMOPS, a.ThroughputMOPS, ratio)
	}
	return []*Table{t}
}

// Fig17 reproduces the price-performance comparison (paper: the discrete
// platform's processors cost 25× the APU, so DIDO wins by 1.1-4.3×).
func Fig17(sc Scale) []*Table {
	t := &Table{
		ID:      "fig17",
		Title:   "Price-performance ratio (KOPS/USD)",
		Columns: []string{"MegaKV_Discrete", "MegaKV_Coupled", "DIDO", "DIDO_over_Discrete"},
		Notes:   []string{"paper: DIDO beats Mega-KV (Discrete) by 1.1-4.3x on all 12 workloads"},
	}
	kaveri := apu.KaveriPlatform()
	discretePlat := apu.DiscretePlatform()
	for _, name := range fig16Workloads() {
		spec, _ := workload.SpecByName(name)
		d, c, a := fig16Run(spec, sc)
		dv := kops(d) / discretePlat.PriceUSD
		cv := kops(c) / kaveri.PriceUSD
		av := kops(a) / kaveri.PriceUSD
		ratio := 0.0
		if dv > 0 {
			ratio = av / dv
		}
		t.Add(name, dv, cv, av, ratio)
	}
	return []*Table{t}
}

// Fig18 reproduces the energy-efficiency comparison using the platforms'
// TDPs (paper: inconclusive — discrete wins on K8/K128, DIDO on K16).
func Fig18(sc Scale) []*Table {
	t := &Table{
		ID:      "fig18",
		Title:   "Energy efficiency (KOPS/Watt, TDP back-of-envelope)",
		Columns: []string{"MegaKV_Discrete", "MegaKV_Coupled", "DIDO"},
		Notes: []string{
			"paper: inconclusive overall — discrete ahead on 8B/128B keys, DIDO ahead on 16B keys",
			"TDPs: APU 95W; discrete 2x95W CPU + 2x250W GPU (§V-E)",
		},
	}
	kaveri := apu.KaveriPlatform()
	discretePlat := apu.DiscretePlatform()
	for _, name := range fig16Workloads() {
		spec, _ := workload.SpecByName(name)
		d, c, a := fig16Run(spec, sc)
		t.Add(name,
			kops(d)/discretePlat.TDPWatts,
			kops(c)/kaveri.TDPWatts,
			kops(a)/kaveri.TDPWatts)
	}
	return []*Table{t}
}

// kops converts a result to thousands of ops/sec.
func kops(r pipeline.Result) float64 { return r.ThroughputMOPS * 1000 }

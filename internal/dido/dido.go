// Package dido assembles the full DIDO system (paper Fig 7): the query
// processing pipeline, the workload profiler, and the APU-aware cost model,
// closed into the adaptation loop of §III-A — profile each batch, and when
// the workload moves more than the trigger threshold, search the
// configuration space and install the best pipeline for subsequent batches.
//
// The same machinery, with adaptation switched off and the configuration
// pinned, is the Mega-KV baseline (see internal/megakv).
package dido

import (
	"time"

	"repro/internal/apu"
	"repro/internal/costmodel"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/profiler"
	"repro/internal/store"
	"repro/internal/task"
)

// Options configures a System.
type Options struct {
	// Platform defaults to the Kaveri APU.
	Platform apu.Platform
	// MemoryBytes is the store's arena budget.
	MemoryBytes int64
	// IndexEntries sizes the cuckoo index.
	IndexEntries int
	// Net is the network cost profile (kernel, DPDK, none).
	Net netsim.CostProfile
	// LatencyBudget is the average end-to-end latency bound; the periodic
	// scheduling interval is derived from it (budget / pipeline depth).
	LatencyBudget time.Duration
	// Noise is the timing-model noise amplitude (ground truth only).
	Noise float64
	// Seed drives all deterministic randomness.
	Seed uint64

	// Ablation switches (default: everything on, as in DIDO proper).

	// DisableDynamicPipeline pins the pipeline shape (GPU depth and core
	// split) to Mega-KV's; index assignment may still vary.
	DisableDynamicPipeline bool
	// DisableIndexAssignment forces all three index operations to the GPU,
	// as in Mega-KV.
	DisableIndexAssignment bool
	// DisableWorkStealing removes stealing configs from the search space.
	DisableWorkStealing bool
	// StaticConfig, when non-nil, disables adaptation entirely and runs the
	// given configuration forever (the Mega-KV baseline).
	StaticConfig *pipeline.Config
}

// DefaultOptions returns options matching the paper's evaluation setup:
// Kaveri APU, 1908 MB arena (scaled by memBytes), kernel networking, 1000 µs
// latency budget.
func DefaultOptions(memBytes int64) Options {
	return Options{
		Platform:      apu.KaveriPlatform(),
		MemoryBytes:   memBytes,
		Net:           netsim.KernelNetworking(),
		LatencyBudget: 1000 * time.Microsecond,
		Noise:         0.03,
		Seed:          1,
	}
}

// System is a runnable DIDO instance.
type System struct {
	Store    *store.Store
	Exec     *pipeline.Executor
	Planner  *costmodel.Planner
	Profiler *profiler.Profiler
	Runner   *pipeline.Runner

	opts Options

	cfg     pipeline.Config
	sizer   pipeline.BatchSizer
	replans uint64
}

// New builds a System from opts.
func New(opts Options) *System {
	if opts.Platform.CPU.Cores == 0 {
		opts.Platform = apu.KaveriPlatform()
	}
	if opts.MemoryBytes <= 0 {
		opts.MemoryBytes = 256 << 20
	}
	if opts.Net.Name == "" {
		opts.Net = netsim.KernelNetworking()
	}
	if opts.LatencyBudget <= 0 {
		opts.LatencyBudget = 1000 * time.Microsecond
	}
	st := store.New(store.Config{
		MemoryBytes:  opts.MemoryBytes,
		IndexEntries: opts.IndexEntries,
		Seed:         opts.Seed,
	})
	model := apu.NewModel(opts.Platform, opts.Noise, opts.Seed)
	exec := pipeline.NewExecutor(model, st, opts.Net)
	interval := opts.LatencyBudget / 3 // three-stage pipeline depth
	planner := costmodel.NewPlanner(opts.Platform, interval)
	s := &System{
		Store:    st,
		Exec:     exec,
		Planner:  planner,
		Profiler: profiler.New(st),
		Runner:   &pipeline.Runner{Exec: exec},
		opts:     opts,
		cfg:      pipeline.MegaKV(),
		sizer:    pipeline.BatchSizer{Interval: interval, Min: planner.MinBatch, Max: planner.MaxBatch},
	}
	s.sizer.Set(pipeline.DefaultInitialBatch)
	if opts.StaticConfig != nil {
		s.cfg = *opts.StaticConfig
	}
	return s
}

// Options returns the options the system was built with.
func (s *System) Options() Options { return s.opts }

// Replans returns how many times the adaptation loop installed a new config.
func (s *System) Replans() uint64 { return s.replans }

// CurrentConfig returns the configuration in effect for the next batch.
func (s *System) CurrentConfig() pipeline.Config { return s.cfg }

// keep implements the ablation filters over the configuration space. The
// shape search always excludes work-stealing variants: the paper layers
// stealing on top of the chosen partitioning at runtime (§V-D3), so the
// searched space is pipeline shapes and index assignments only.
func (s *System) keep(cfg pipeline.Config) bool {
	if cfg.WorkStealing {
		return false
	}
	mega := pipeline.MegaKV()
	if s.opts.DisableDynamicPipeline {
		if cfg.GPUDepth != mega.GPUDepth || cfg.CPUCoresPre != mega.CPUCoresPre {
			return false
		}
	}
	if s.opts.DisableIndexAssignment {
		if cfg.GPUDepth == 0 {
			return false
		}
		if cfg.InsertOn != apu.GPU || cfg.DeleteOn != apu.GPU {
			return false
		}
	}
	return true
}

// NextConfig implements pipeline.ConfigProvider: the adaptation loop.
func (s *System) NextConfig(prev *pipeline.Batch) (pipeline.Config, int) {
	if prev == nil {
		return s.cfg, s.sizer.Current()
	}
	if s.opts.StaticConfig != nil {
		// Baseline mode: static config, feedback-sized batches.
		return s.cfg, s.sizer.Observe(prev)
	}
	measured, replan := s.Profiler.Observe(prev.Profile)
	if replan {
		best, _ := s.Planner.BestFiltered(s.plannerProfile(measured), s.keep)
		if best.ThroughputOPS > 0 {
			cfg := best.Config
			batch := best.Batch
			if !s.opts.DisableWorkStealing && cfg.GPUDepth > 0 {
				// Stealing is layered on the chosen shape at runtime; re-price
				// to get the batch size Eq 3 supports.
				cfg.WorkStealing = true
				withWS := s.Planner.EvaluateConfig(cfg, s.plannerProfile(measured))
				if withWS.ThroughputOPS >= best.ThroughputOPS {
					batch = withWS.Batch
				} else {
					cfg.WorkStealing = false
				}
			}
			s.cfg = cfg
			s.sizer.Set(batch)
			s.replans++
			return s.cfg, s.sizer.Current()
		}
	}
	// Between replans the size follows the shared feedback controller,
	// nudging Tmax toward the scheduling interval.
	return s.cfg, s.sizer.Observe(prev)
}

// plannerProfile strips ground-truth-only measurements before handing the
// profile to the cost model: the planner must derive the cache-hit portion
// analytically, not read the simulator's LRU (DESIGN.md honesty rule).
func (s *System) plannerProfile(p task.Profile) task.Profile {
	p.CacheHitPortion = 0
	return p
}

// Run drives nBatches from src through the system and returns the aggregate
// result.
func (s *System) Run(src pipeline.Source, nBatches int) pipeline.Result {
	return s.Runner.Run(src, s, nBatches)
}

// Warm pre-populates the store with n objects from keys produced by keyAt,
// value size valueBytes — the experiments fill the arena before measuring,
// like the paper loading its data sets (§V-A).
func (s *System) Warm(keyAt func(rank uint64, dst []byte) []byte, n uint64, valueBytes int) {
	val := make([]byte, valueBytes)
	var buf []byte
	for i := uint64(1); i <= n; i++ {
		buf = keyAt(i, buf)
		s.Store.Set(buf, val)
	}
}

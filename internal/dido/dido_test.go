package dido

import (
	"testing"
	"time"

	"repro/internal/apu"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func newSystem(t *testing.T, opts Options) *System {
	t.Helper()
	return New(opts)
}

func smallOpts() Options {
	o := DefaultOptions(16 << 20)
	o.Noise = 0 // determinism in tests
	o.IndexEntries = 200000
	return o
}

func warmFor(s *System, gen *workload.Generator, n uint64) {
	s.Warm(gen.KeyAt, n, gen.Spec.ValueSize)
}

func TestDefaults(t *testing.T) {
	s := New(Options{})
	if s.Store == nil || s.Planner == nil || s.Exec == nil {
		t.Fatal("incomplete system from zero options")
	}
	if s.CurrentConfig().GPUDepth != 1 {
		t.Fatal("initial config should be Mega-KV's shape")
	}
	if s.Options().LatencyBudget != 1000*time.Microsecond {
		t.Fatal("default latency budget should be 1000µs (paper §V-A)")
	}
}

func TestDIDOAdaptsAndBeatsStaticBaseline(t *testing.T) {
	// The headline result (Fig 11): DIDO's adapted pipeline outperforms the
	// static Mega-KV config on the same substrate, here on K16-G95-U.
	spec, _ := workload.SpecByName("K16-G95-U")

	mega := pipeline.MegaKV()
	optsA := smallOpts()
	optsA.StaticConfig = &mega
	baseline := newSystem(t, optsA)
	genA := workload.NewGenerator(spec, 50000, 11)
	warmFor(baseline, genA, 30000)
	resBase := baseline.Run(genA, 40)

	optsB := smallOpts()
	didoSys := newSystem(t, optsB)
	genB := workload.NewGenerator(spec, 50000, 11)
	warmFor(didoSys, genB, 30000)
	resDIDO := didoSys.Run(genB, 40)

	if resDIDO.ThroughputMOPS <= resBase.ThroughputMOPS {
		t.Fatalf("DIDO (%.3f MOPS) should beat Mega-KV (Coupled) (%.3f MOPS)",
			resDIDO.ThroughputMOPS, resBase.ThroughputMOPS)
	}
	if didoSys.Replans() == 0 {
		t.Fatal("DIDO never re-planned")
	}
	// The chosen config should differ from Mega-KV's (index ops on CPU at
	// 95% GET, per §V-C).
	cfg := didoSys.CurrentConfig()
	if cfg.InsertOn != apu.CPU || cfg.DeleteOn != apu.CPU {
		t.Fatalf("DIDO config %v should assign index updates to the CPU", cfg)
	}
}

func TestStaticConfigNeverReplans(t *testing.T) {
	spec, _ := workload.SpecByName("K16-G95-U")
	mega := pipeline.MegaKV()
	opts := smallOpts()
	opts.StaticConfig = &mega
	s := newSystem(t, opts)
	gen := workload.NewGenerator(spec, 50000, 11)
	warmFor(s, gen, 20000)
	s.Run(gen, 30)
	if s.Replans() != 0 {
		t.Fatalf("static system re-planned %d times", s.Replans())
	}
	if s.CurrentConfig() != mega {
		t.Fatal("static config drifted")
	}
}

func TestAdaptationStabilizes(t *testing.T) {
	// On a steady workload the 10% trigger should keep re-planning rare:
	// one initial plan plus possibly a couple as the store/cache warms.
	spec, _ := workload.SpecByName("K32-G95-U")
	opts := smallOpts()
	s := newSystem(t, opts)
	gen := workload.NewGenerator(spec, 40000, 13)
	warmFor(s, gen, 25000)
	s.Run(gen, 60)
	if s.Replans() > 10 {
		t.Fatalf("steady workload re-planned %d times; trigger too jumpy", s.Replans())
	}
}

func TestAblationFiltersRespected(t *testing.T) {
	spec, _ := workload.SpecByName("K8-G95-U")
	// Index assignment disabled: chosen config must keep index ops on GPU.
	opts := smallOpts()
	opts.DisableIndexAssignment = true
	s := newSystem(t, opts)
	gen := workload.NewGenerator(spec, 50000, 17)
	warmFor(s, gen, 30000)
	s.Run(gen, 20)
	cfg := s.CurrentConfig()
	if cfg.InsertOn != apu.GPU || cfg.DeleteOn != apu.GPU {
		t.Fatalf("ablation violated: %v", cfg)
	}

	// Dynamic pipeline disabled: shape pinned to Mega-KV's.
	opts2 := smallOpts()
	opts2.DisableDynamicPipeline = true
	s2 := newSystem(t, opts2)
	gen2 := workload.NewGenerator(spec, 50000, 17)
	warmFor(s2, gen2, 30000)
	s2.Run(gen2, 20)
	cfg2 := s2.CurrentConfig()
	if cfg2.GPUDepth != 1 || cfg2.CPUCoresPre != 2 {
		t.Fatalf("pipeline shape not pinned: %v", cfg2)
	}

	// Work stealing disabled.
	opts3 := smallOpts()
	opts3.DisableWorkStealing = true
	s3 := newSystem(t, opts3)
	gen3 := workload.NewGenerator(spec, 50000, 17)
	warmFor(s3, gen3, 30000)
	s3.Run(gen3, 20)
	if s3.CurrentConfig().WorkStealing {
		t.Fatal("work stealing not disabled")
	}
}

func TestDynamicWorkloadTriggersReplan(t *testing.T) {
	// Fig 20's mechanism: alternating K8-G50-U ↔ K16-G95-S re-plans at
	// phase boundaries.
	sa, _ := workload.SpecByName("K8-G50-U")
	sb, _ := workload.SpecByName("K16-G95-S")
	opts := smallOpts()
	s := newSystem(t, opts)
	genA := workload.NewGenerator(sa, 30000, 21)
	genB := workload.NewGenerator(sb, 30000, 22)
	warmFor(s, genA, 15000)
	warmFor(s, genB, 15000)
	alt := workload.NewAlternator(genA, genB, 40000)
	s.Run(alt, 60)
	if s.Replans() < 2 {
		t.Fatalf("alternating workload re-planned only %d times", s.Replans())
	}
}

func TestGetsActuallyServed(t *testing.T) {
	spec, _ := workload.SpecByName("K16-G95-U")
	s := newSystem(t, smallOpts())
	gen := workload.NewGenerator(spec, 20000, 31)
	warmFor(s, gen, 20000)
	res := s.Run(gen, 20)
	total := res.Hits + res.Misses
	if total == 0 {
		t.Fatal("no GETs processed")
	}
	hitRate := float64(res.Hits) / float64(total)
	if hitRate < 0.95 {
		t.Fatalf("hit rate = %.3f on a fully warmed population", hitRate)
	}
}

func TestNetworkProfilePropagates(t *testing.T) {
	opts := smallOpts()
	opts.Net = netsim.DPDKNetworking()
	s := newSystem(t, opts)
	if s.Exec.Net.Name != "dpdk" {
		t.Fatal("net profile not propagated")
	}
}

package sim

import "time"

// Resource models a serially-occupied resource (a processor, a link) in the
// discrete-event world: requests queue FIFO and each holds the resource for a
// caller-specified service time. Acquire returns immediately with the time at
// which the request will complete; callers schedule follow-up work at that
// time. This busy-until bookkeeping is how the pipeline simulator models the
// CPU and GPU being occupied by stages.
type Resource struct {
	eng       *Engine
	busyUntil time.Duration
	busyTotal time.Duration
	services  uint64
}

// NewResource returns a resource bound to engine.
func NewResource(eng *Engine) *Resource {
	return &Resource{eng: eng}
}

// Acquire reserves the resource for service starting no earlier than now and
// returns the completion time. Zero and negative service times are allowed
// (negative is clamped to zero) so callers can model free operations.
func (r *Resource) Acquire(service time.Duration) time.Duration {
	if service < 0 {
		service = 0
	}
	start := r.eng.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + service
	r.busyTotal += service
	r.services++
	return r.busyUntil
}

// AcquireAt is like Acquire but the service cannot start before earliest.
func (r *Resource) AcquireAt(earliest time.Duration, service time.Duration) time.Duration {
	if service < 0 {
		service = 0
	}
	start := r.eng.Now()
	if earliest > start {
		start = earliest
	}
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + service
	r.busyTotal += service
	r.services++
	return r.busyUntil
}

// BusyUntil returns the time at which all accepted work completes.
func (r *Resource) BusyUntil() time.Duration { return r.busyUntil }

// BusyTotal returns the cumulative service time accepted.
func (r *Resource) BusyTotal() time.Duration { return r.busyTotal }

// Services returns the number of Acquire calls.
func (r *Resource) Services() uint64 { return r.services }

// Utilization returns busyTotal / elapsed for a measurement window of length
// elapsed, clamped to [0, 1]. Zero elapsed yields 0.
func (r *Resource) Utilization(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := float64(r.busyTotal) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// ResetStats clears the accumulated busy time and service count without
// affecting the busy-until horizon.
func (r *Resource) ResetStats() {
	r.busyTotal = 0
	r.services = 0
}

// Package sim provides a small discrete-event simulation kernel: a virtual
// clock, an event queue, and simple resources. The DIDO experiments run the
// key-value pipeline against this kernel so that a laptop without an AMD
// Kaveri APU can still reproduce the paper's timing behaviour; the actual
// key-value operations execute for real, only time is virtual.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Event is a scheduled callback.
type Event struct {
	at    time.Duration
	seq   uint64 // tie-break: FIFO among same-time events
	fn    func()
	index int // heap index, -1 when popped/cancelled
}

// Cancelled reports whether the event has been cancelled or already fired.
func (e *Event) Cancelled() bool { return e.index == -1 }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use: all events run on the caller's goroutine inside Run/Step.
type Engine struct {
	now   time.Duration
	queue eventQueue
	seq   uint64
	fired uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return e.queue.Len() }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: that is always a logic error in a discrete-event model.
func (e *Engine) At(at time.Duration, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run delay after the current time.
func (e *Engine) After(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		panic("sim: negative delay")
	}
	return e.At(e.now+delay, fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired or cancelled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index == -1 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step fires the next event, advancing the clock to its time. It returns
// false when the queue is empty.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run fires events until the queue is empty or the clock passes until
// (events at exactly `until` still fire). It returns the number of events
// fired during this call.
func (e *Engine) Run(until time.Duration) uint64 {
	start := e.fired
	for e.queue.Len() > 0 && e.queue[0].at <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
	return e.fired - start
}

// RunAll fires events until the queue is empty. maxEvents guards against
// runaway self-scheduling loops; RunAll panics if exceeded.
func (e *Engine) RunAll(maxEvents uint64) uint64 {
	start := e.fired
	for e.queue.Len() > 0 {
		if e.fired-start >= maxEvents {
			panic(fmt.Sprintf("sim: RunAll exceeded %d events", maxEvents))
		}
		e.Step()
	}
	return e.fired - start
}

package sim

import (
	"testing"
	"time"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*time.Microsecond, func() { order = append(order, 3) })
	e.At(10*time.Microsecond, func() { order = append(order, 1) })
	e.At(20*time.Microsecond, func() { order = append(order, 2) })
	e.RunAll(100)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30*time.Microsecond {
		t.Fatalf("now = %v, want 30µs", e.Now())
	}
}

func TestEngineFIFOAmongEqualTimes(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Microsecond, func() { order = append(order, i) })
	}
	e.RunAll(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events not FIFO: %v", order)
		}
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(time.Millisecond, func() {})
	e.RunAll(10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(time.Microsecond, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	e.After(-time.Second, func() {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.After(time.Millisecond, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
	e.RunAll(10)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("event should report cancelled")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		d := d * time.Millisecond
		e.At(d, func() { fired = append(fired, d) })
	}
	n := e.Run(3 * time.Millisecond)
	if n != 3 {
		t.Fatalf("fired %d events, want 3 (boundary inclusive)", n)
	}
	if e.Now() != 3*time.Millisecond {
		t.Fatalf("now = %v, want 3ms", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	// Run to a time past all events: clock advances to `until`.
	e.Run(10 * time.Millisecond)
	if e.Now() != 10*time.Millisecond {
		t.Fatalf("now = %v, want 10ms", e.Now())
	}
}

func TestEngineSelfScheduling(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(time.Microsecond, tick)
		}
	}
	e.After(0, tick)
	e.RunAll(100)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Fired() != 5 {
		t.Fatalf("fired = %d, want 5", e.Fired())
	}
}

func TestRunAllGuard(t *testing.T) {
	e := NewEngine()
	var loop func()
	loop = func() { e.After(time.Microsecond, loop) }
	e.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected runaway guard panic")
		}
	}()
	e.RunAll(50)
}

func TestResourceSerialization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	t1 := r.Acquire(10 * time.Microsecond)
	t2 := r.Acquire(5 * time.Microsecond)
	if t1 != 10*time.Microsecond {
		t.Fatalf("t1 = %v", t1)
	}
	if t2 != 15*time.Microsecond {
		t.Fatalf("t2 = %v, want 15µs (queued behind t1)", t2)
	}
	if r.BusyTotal() != 15*time.Microsecond {
		t.Fatalf("busyTotal = %v", r.BusyTotal())
	}
	if r.Services() != 2 {
		t.Fatalf("services = %d", r.Services())
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	r.Acquire(time.Microsecond)
	// Advance clock past the busy horizon; next acquire starts at now.
	e.At(10*time.Microsecond, func() {
		done := r.Acquire(2 * time.Microsecond)
		if done != 12*time.Microsecond {
			t.Errorf("done = %v, want 12µs", done)
		}
	})
	e.RunAll(10)
	if got := r.Utilization(12 * time.Microsecond); got != 3.0/12.0 {
		t.Fatalf("utilization = %v, want 0.25", got)
	}
}

func TestResourceAcquireAt(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	done := r.AcquireAt(5*time.Microsecond, 3*time.Microsecond)
	if done != 8*time.Microsecond {
		t.Fatalf("done = %v, want 8µs", done)
	}
	// Second request must queue behind even though earliest is earlier.
	done2 := r.AcquireAt(time.Microsecond, time.Microsecond)
	if done2 != 9*time.Microsecond {
		t.Fatalf("done2 = %v, want 9µs", done2)
	}
}

func TestResourceNegativeServiceClamped(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	if done := r.Acquire(-time.Second); done != 0 {
		t.Fatalf("done = %v, want 0", done)
	}
}

func TestResourceUtilizationBounds(t *testing.T) {
	e := NewEngine()
	r := NewResource(e)
	r.Acquire(10 * time.Microsecond)
	if got := r.Utilization(0); got != 0 {
		t.Fatalf("zero-window utilization = %v", got)
	}
	if got := r.Utilization(5 * time.Microsecond); got != 1 {
		t.Fatalf("over-busy utilization = %v, want clamped to 1", got)
	}
	r.ResetStats()
	if r.BusyTotal() != 0 || r.Services() != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

// Package integration ties the substrates together the way the real system
// does: the SIMT gang executor driving actual index operations on the real
// store with CPU workers stealing from the same tag array, the full query
// path through the wire protocol, and the adaptation loop over a live
// workload. These tests are about cross-module correctness, not timing.
package integration

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/cuckoo"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/store"
	"repro/internal/workload"
)

func key(i int) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, uint64(i))
	return b
}

// TestGPUGangSearchesRealStore runs the IN.Search kernel over a real batch on
// the wavefront executor, exactly as the GPU stage does: every GET must find
// its object via Search → KC → RD performed inside the kernel.
func TestGPUGangSearchesRealStore(t *testing.T) {
	st := store.New(store.Config{MemoryBytes: 16 << 20, IndexEntries: 100000, Seed: 5})
	const n = 8192
	for i := 0; i < n; i++ {
		if _, _, err := st.Set(key(i), []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	exec := gpu.NewExecutor(8)
	var found atomic.Int64
	exec.Run(n, func(i int) {
		// Per-lane scratch: no sharing between lanes.
		cands := st.IndexSearch(key(i), nil)
		for _, loc := range cands {
			if st.KeyCompare(loc, key(i)) {
				if v, ok := st.ReadValue(loc); ok && len(v) > 0 {
					found.Add(1)
				}
				break
			}
		}
	})
	if got := found.Load(); got != n {
		t.Fatalf("found %d of %d objects via GPU gang", got, n)
	}
}

// TestWorkStealingCoRunOnStore is the paper's §III-B3 in miniature: the CPU
// and the GPU gang process one batch of real GETs through the shared tag
// array; every query is answered exactly once.
func TestWorkStealingCoRunOnStore(t *testing.T) {
	st := store.New(store.Config{MemoryBytes: 16 << 20, IndexEntries: 100000, Seed: 6})
	const n = 4096
	for i := 0; i < n; i++ {
		st.Set(key(i), []byte("v"))
	}
	answered := make([]atomic.Int32, n)
	gpuDone, cpuDone := gpu.CoRun(n, 4, 2, func(i int) {
		cands := st.IndexSearch(key(i), nil)
		for _, loc := range cands {
			if st.KeyCompare(loc, key(i)) {
				answered[i].Add(1)
				break
			}
		}
	})
	if gpuDone+cpuDone != n {
		t.Fatalf("co-run covered %d+%d of %d", gpuDone, cpuDone, n)
	}
	for i := range answered {
		if answered[i].Load() != 1 {
			t.Fatalf("query %d answered %d times", i, answered[i].Load())
		}
	}
}

// TestConcurrentIndexUpdatesFromBothSides mixes GPU-gang inserts with
// CPU-side deletes on the shared cuckoo index — the coupled architecture's
// concurrency discipline (atomic CAS both sides).
func TestConcurrentIndexUpdatesFromBothSides(t *testing.T) {
	tbl := cuckoo.New(1<<14, 9)
	const n = 4096
	// GPU gang inserts even keys; CPU inserts odd keys concurrently.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 1; i < n; i += 2 {
			if !tbl.Insert(key(i), cuckoo.Location(i)) {
				t.Errorf("cpu insert %d failed", i)
				return
			}
		}
	}()
	exec := gpu.NewExecutor(4)
	exec.Run(n/2, func(j int) {
		i := 2 * (j + 1)
		if !tbl.Insert(key(i), cuckoo.Location(i)) {
			t.Errorf("gpu insert %d failed", i)
		}
	})
	<-done
	// Everything findable.
	for i := 1; i <= n; i++ {
		if i == n { // key(n) == 2*(n/2) inserted; key range check
			break
		}
		cands, _ := tbl.Search(key(i), nil)
		ok := false
		for _, c := range cands {
			if c == cuckoo.Location(i) {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("key %d missing after concurrent inserts", i)
		}
	}
}

// TestFullWirePathThroughLoopback drives encoded frames through the loopback
// link into store processing and back — the RV→…→SD path without sockets.
func TestFullWirePathThroughLoopback(t *testing.T) {
	st := store.New(store.Config{MemoryBytes: 8 << 20, IndexEntries: 50000, Seed: 8})
	link := netsim.NewLoopback(0)

	// Client side: batch SETs then GETs.
	var b netsim.Batcher
	for i := 0; i < 500; i++ {
		b.Add(proto.Query{Op: proto.OpSet, Key: key(i), Value: []byte(fmt.Sprintf("v%d", i))})
	}
	for i := 0; i < 500; i++ {
		b.Add(proto.Query{Op: proto.OpGet, Key: key(i)})
	}
	for _, f := range b.Frames() {
		if !link.ClientSend(f) {
			t.Fatal("send failed")
		}
	}

	// Server side: parse → execute → respond.
	for _, frame := range link.ServerRecv(0) {
		queries, err := proto.ParseFrame(frame, nil)
		if err != nil {
			t.Fatal(err)
		}
		var resps []proto.Response
		for _, q := range queries {
			switch q.Op {
			case proto.OpSet:
				if _, _, err := st.Set(q.Key, q.Value); err != nil {
					resps = append(resps, proto.Response{Status: proto.StatusError})
				} else {
					resps = append(resps, proto.Response{Status: proto.StatusOK})
				}
			case proto.OpGet:
				if v, ok := st.Get(q.Key); ok {
					resps = append(resps, proto.Response{Status: proto.StatusOK, Value: v})
				} else {
					resps = append(resps, proto.Response{Status: proto.StatusNotFound})
				}
			}
		}
		link.ServerSend(proto.EncodeResponseFrame(nil, resps))
	}

	// Client side: every GET hit with the right payload.
	var gets int
	for _, frame := range link.ClientRecv(0) {
		resps, err := proto.ParseResponseFrame(frame, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range resps {
			if len(r.Value) > 0 {
				gets++
				if r.Status != proto.StatusOK {
					t.Fatal("GET with value but bad status")
				}
			}
		}
	}
	if gets != 500 {
		t.Fatalf("answered GETs = %d, want 500", gets)
	}
}

// TestWorkloadDrivesStoreToSteadyState checks the §II-C2 invariant end to
// end: once the arena is full, every SET produces exactly one insert and at
// least one delete (eviction or overwrite), keeping live-object count flat.
func TestWorkloadDrivesStoreToSteadyState(t *testing.T) {
	st := store.New(store.Config{MemoryBytes: 2 << 20, IndexEntries: 100000, Seed: 10})
	spec, _ := workload.SpecByName("K16-G50-U")
	gen := workload.NewGenerator(spec, 1<<20, 11)

	// Drive until full.
	for i := 0; i < 60000; i++ {
		q := gen.Next(false)
		if q.Op == proto.OpSet {
			st.Set(q.Key, q.Value)
		}
	}
	liveBefore := st.StatsSnapshot().LiveObjects
	evBefore := st.StatsSnapshot().Evictions
	for i := 0; i < 10000; i++ {
		q := gen.Next(false)
		if q.Op == proto.OpSet {
			st.Set(q.Key, q.Value)
		}
	}
	after := st.StatsSnapshot()
	if after.Evictions == evBefore {
		t.Fatal("no evictions at steady state")
	}
	drift := after.LiveObjects - liveBefore
	if drift < -100 || drift > 100 {
		t.Fatalf("live objects drifted by %d at steady state", drift)
	}
}

// Package gpu provides a SIMT-style executor that stands in for the APU's
// integrated GPU (see DESIGN.md §2). Work is executed in 64-lane wavefronts
// by a gang of goroutines, one per compute unit, so that the execution
// *semantics* of the paper's OpenCL kernels — lockstep chunks, whole-wavefront
// scheduling, idle lanes on ragged batches — are real even though the silicon
// is not.
//
// The package also implements the paper's work-stealing substrate (§III-B3):
// a tag array over a batch of queries, where each tag guards one
// wavefront-sized chunk of 64 queries and is claimed with an atomic
// compare-exchange by whichever processor (CPU or GPU worker) gets there
// first.
package gpu

import (
	"sync"
	"sync/atomic"
)

// WavefrontWidth is the number of lanes that execute in lockstep; 64 on AMD
// GCN hardware, and the work-stealing granularity the paper chooses.
const WavefrontWidth = 64

// Executor runs kernels over index ranges in wavefront chunks using a fixed
// gang of worker goroutines (one per simulated compute unit). It is safe for
// concurrent use by one submitter at a time per Run call; multiple Run calls
// may not overlap.
type Executor struct {
	cus int
}

// NewExecutor returns an executor with the given number of compute units.
func NewExecutor(computeUnits int) *Executor {
	if computeUnits < 1 {
		computeUnits = 1
	}
	return &Executor{cus: computeUnits}
}

// ComputeUnits returns the gang size.
func (e *Executor) ComputeUnits() int { return e.cus }

// Run executes kernel(i) for every i in [0, n) in wavefront-sized chunks
// distributed dynamically across compute units. It blocks until all lanes
// complete.
func (e *Executor) Run(n int, kernel func(i int)) {
	if n <= 0 {
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	workers := e.cus
	chunks := (n + WavefrontWidth - 1) / WavefrontWidth
	if workers > chunks {
		workers = chunks
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				start := c * WavefrontWidth
				end := start + WavefrontWidth
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					kernel(i)
				}
			}
		}()
	}
	wg.Wait()
}

// TagArray coordinates work stealing over one batch: tag i guards queries
// [64·i, 64·(i+1)) (paper §III-B3). Both the CPU-side and GPU-side workers
// claim chunks with ClaimNext; the atomic swap guarantees each chunk is
// processed exactly once.
type TagArray struct {
	tags  []atomic.Uint32
	n     int
	chunk int
}

// Tag states.
const (
	tagFree uint32 = iota
	tagClaimed
)

// NewTagArray returns a tag array covering n queries at the paper's
// wavefront-width granularity (64 queries per chunk).
func NewTagArray(n int) *TagArray {
	return NewTagArrayChunked(n, WavefrontWidth)
}

// NewTagArrayChunked returns a tag array with an explicit chunk size. The
// paper argues 64 (the wavefront width) is the best granularity; the
// work-stealing ablation bench sweeps this parameter to check.
func NewTagArrayChunked(n, chunk int) *TagArray {
	if n < 0 {
		n = 0
	}
	if chunk < 1 {
		chunk = 1
	}
	chunks := (n + chunk - 1) / chunk
	return &TagArray{tags: make([]atomic.Uint32, chunks), n: n, chunk: chunk}
}

// Chunks returns the number of chunks guarded by the array.
func (t *TagArray) Chunks() int { return len(t.tags) }

// Claim attempts to claim chunk c, reporting success.
func (t *TagArray) Claim(c int) bool {
	if c < 0 || c >= len(t.tags) {
		return false
	}
	return t.tags[c].CompareAndSwap(tagFree, tagClaimed)
}

// ClaimNext claims the next free chunk scanning from the given direction.
// fromEnd=false scans 0→N (the GPU's natural order); fromEnd=true scans N→0,
// which the CPU uses so the two processors meet in the middle and conflict
// only on the last contended chunk. It returns the query range and false when
// nothing is left.
func (t *TagArray) ClaimNext(fromEnd bool) (start, end int, ok bool) {
	n := len(t.tags)
	if fromEnd {
		for c := n - 1; c >= 0; c-- {
			if t.Claim(c) {
				return t.rangeOf(c), t.rangeEnd(c), true
			}
		}
	} else {
		for c := 0; c < n; c++ {
			if t.Claim(c) {
				return t.rangeOf(c), t.rangeEnd(c), true
			}
		}
	}
	return 0, 0, false
}

func (t *TagArray) rangeOf(c int) int { return c * t.chunk }
func (t *TagArray) rangeEnd(c int) int {
	end := (c + 1) * t.chunk
	if end > t.n {
		end = t.n
	}
	return end
}

// Remaining counts unclaimed chunks.
func (t *TagArray) Remaining() int {
	var n int
	for i := range t.tags {
		if t.tags[i].Load() == tagFree {
			n++
		}
	}
	return n
}

// CoRun processes all n queries with a GPU gang and an optional set of CPU
// workers stealing from the same tag array. It returns the number of queries
// processed by each side. This is the execution core of the paper's work
// stealing: both sides grab 64-query sets, marked via atomics, until the
// batch drains.
func CoRun(n int, gpuCUs, cpuWorkers int, kernel func(i int)) (gpuDone, cpuDone int) {
	return CoRunChunked(n, WavefrontWidth, gpuCUs, cpuWorkers, kernel)
}

// CoRunChunked is CoRun with an explicit stealing granularity.
func CoRunChunked(n, chunk int, gpuCUs, cpuWorkers int, kernel func(i int)) (gpuDone, cpuDone int) {
	tags := NewTagArrayChunked(n, chunk)
	var gpuCount, cpuCount atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < gpuCUs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start, end, ok := tags.ClaimNext(false)
				if !ok {
					return
				}
				for i := start; i < end; i++ {
					kernel(i)
				}
				gpuCount.Add(int64(end - start))
			}
		}()
	}
	for w := 0; w < cpuWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				start, end, ok := tags.ClaimNext(true)
				if !ok {
					return
				}
				for i := start; i < end; i++ {
					kernel(i)
				}
				cpuCount.Add(int64(end - start))
			}
		}()
	}
	wg.Wait()
	return int(gpuCount.Load()), int(cpuCount.Load())
}

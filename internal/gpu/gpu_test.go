package gpu

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestExecutorCoversAllIndices(t *testing.T) {
	e := NewExecutor(4)
	for _, n := range []int{0, 1, 63, 64, 65, 1000, 4096} {
		seen := make([]atomic.Int32, max(n, 1))
		e.Run(n, func(i int) { seen[i].Add(1) })
		for i := 0; i < n; i++ {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, got)
			}
		}
	}
}

func TestExecutorMinimumOneCU(t *testing.T) {
	e := NewExecutor(0)
	if e.ComputeUnits() != 1 {
		t.Fatalf("CUs = %d, want 1", e.ComputeUnits())
	}
	var count atomic.Int32
	e.Run(10, func(i int) { count.Add(1) })
	if count.Load() != 10 {
		t.Fatal("single-CU run incomplete")
	}
}

func TestTagArrayChunks(t *testing.T) {
	for _, tc := range []struct{ n, chunks int }{
		{0, 0}, {1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}, {-5, 0},
	} {
		ta := NewTagArray(tc.n)
		if got := ta.Chunks(); got != tc.chunks {
			t.Fatalf("n=%d: chunks = %d, want %d", tc.n, got, tc.chunks)
		}
	}
}

func TestTagArrayClaimOnce(t *testing.T) {
	ta := NewTagArray(256)
	if !ta.Claim(0) {
		t.Fatal("first claim failed")
	}
	if ta.Claim(0) {
		t.Fatal("double claim succeeded")
	}
	if ta.Claim(-1) || ta.Claim(99) {
		t.Fatal("out-of-range claim succeeded")
	}
	if got := ta.Remaining(); got != 3 {
		t.Fatalf("remaining = %d, want 3", got)
	}
}

func TestClaimNextDirections(t *testing.T) {
	ta := NewTagArray(192) // 3 chunks
	s, e, ok := ta.ClaimNext(false)
	if !ok || s != 0 || e != 64 {
		t.Fatalf("forward claim = [%d,%d) ok=%v", s, e, ok)
	}
	s, e, ok = ta.ClaimNext(true)
	if !ok || s != 128 || e != 192 {
		t.Fatalf("backward claim = [%d,%d) ok=%v", s, e, ok)
	}
	s, e, ok = ta.ClaimNext(false)
	if !ok || s != 64 || e != 128 {
		t.Fatalf("middle claim = [%d,%d) ok=%v", s, e, ok)
	}
	if _, _, ok := ta.ClaimNext(false); ok {
		t.Fatal("claim on drained array succeeded")
	}
}

func TestClaimNextRaggedTail(t *testing.T) {
	ta := NewTagArray(100) // chunks: [0,64), [64,100)
	_, _, _ = ta.ClaimNext(false)
	s, e, ok := ta.ClaimNext(false)
	if !ok || s != 64 || e != 100 {
		t.Fatalf("tail chunk = [%d,%d) ok=%v", s, e, ok)
	}
}

func TestCoRunProcessesExactlyOnce(t *testing.T) {
	const n = 10000
	seen := make([]atomic.Int32, n)
	gpuDone, cpuDone := CoRun(n, 4, 2, func(i int) { seen[i].Add(1) })
	if gpuDone+cpuDone != n {
		t.Fatalf("done = %d + %d != %d", gpuDone, cpuDone, n)
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d executed %d times", i, seen[i].Load())
		}
	}
	if gpuDone == 0 || cpuDone == 0 {
		t.Logf("one side did all the work (gpu=%d cpu=%d); acceptable but unusual", gpuDone, cpuDone)
	}
}

func TestCoRunGPUOnly(t *testing.T) {
	const n = 1000
	var count atomic.Int32
	gpuDone, cpuDone := CoRun(n, 2, 0, func(i int) { count.Add(1) })
	if gpuDone != n || cpuDone != 0 || count.Load() != n {
		t.Fatalf("gpu=%d cpu=%d count=%d", gpuDone, cpuDone, count.Load())
	}
}

func TestCoRunProperty(t *testing.T) {
	f := func(n16 uint16, cus, cpus uint8) bool {
		n := int(n16) % 2000
		g := int(cus)%4 + 1
		c := int(cpus) % 3
		seen := make([]atomic.Int32, max(n, 1))
		gd, cd := CoRun(n, g, c, func(i int) { seen[i].Add(1) })
		if gd+cd != n {
			return false
		}
		for i := 0; i < n; i++ {
			if seen[i].Load() != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package faults

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// fakeConn is an in-memory net.PacketConn: writes are recorded, reads pop
// from a queue.
type fakeConn struct {
	mu     sync.Mutex
	rx     [][]byte // packets delivered to ReadFrom
	tx     [][]byte // packets captured from WriteTo
	closed bool
}

type fakeAddr struct{}

func (fakeAddr) Network() string { return "fake" }
func (fakeAddr) String() string  { return "fake" }

// timeoutErr stands in for a read deadline firing on an empty queue.
type timeoutErr struct{}

func (timeoutErr) Error() string   { return "fake: timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

func (f *fakeConn) ReadFrom(b []byte) (int, net.Addr, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.rx) == 0 {
		return 0, nil, timeoutErr{}
	}
	p := f.rx[0]
	f.rx = f.rx[1:]
	return copy(b, p), fakeAddr{}, nil
}

func (f *fakeConn) WriteTo(b []byte, _ net.Addr) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tx = append(f.tx, append([]byte(nil), b...))
	return len(b), nil
}

func (f *fakeConn) Close() error                     { f.mu.Lock(); f.closed = true; f.mu.Unlock(); return nil }
func (f *fakeConn) LocalAddr() net.Addr              { return fakeAddr{} }
func (f *fakeConn) SetDeadline(time.Time) error      { return nil }
func (f *fakeConn) SetReadDeadline(time.Time) error  { return nil }
func (f *fakeConn) SetWriteDeadline(time.Time) error { return nil }

func (f *fakeConn) sent() [][]byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([][]byte, len(f.tx))
	copy(out, f.tx)
	return out
}

func TestPassthroughWhenInactive(t *testing.T) {
	fc := &fakeConn{rx: [][]byte{[]byte("hello")}}
	c := Wrap(fc, Config{Seed: 1})
	buf := make([]byte, 64)
	n, _, err := c.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	if _, err := c.WriteTo([]byte("world"), fakeAddr{}); err != nil {
		t.Fatal(err)
	}
	if got := fc.sent(); len(got) != 1 || string(got[0]) != "world" {
		t.Fatalf("sent = %q", got)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("stats = %+v, want zero", s)
	}
}

func TestOutboundDropAll(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 7, Outbound: Profile{Drop: 1}})
	for i := 0; i < 10; i++ {
		n, err := c.WriteTo([]byte("x"), fakeAddr{})
		if err != nil || n != 1 {
			t.Fatalf("write = %d, %v", n, err)
		}
	}
	if got := fc.sent(); len(got) != 0 {
		t.Fatalf("%d packets leaked through a 100%% drop", len(got))
	}
	if s := c.Stats(); s.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", s.Dropped)
	}
}

func TestOutboundDuplicateAll(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 7, Outbound: Profile{Dup: 1}})
	c.WriteTo([]byte("a"), fakeAddr{})
	if got := fc.sent(); len(got) != 2 {
		t.Fatalf("sent %d packets, want 2", len(got))
	}
}

func TestOutboundReorderSwapsPairs(t *testing.T) {
	fc := &fakeConn{}
	c := Wrap(fc, Config{Seed: 7, Outbound: Profile{Reorder: 1}})
	c.WriteTo([]byte("a"), fakeAddr{})
	c.WriteTo([]byte("b"), fakeAddr{})
	got := fc.sent()
	if len(got) != 2 || string(got[0]) != "b" || string(got[1]) != "a" {
		t.Fatalf("sent = %q, want [b a]", got)
	}
}

func TestInboundDropThenTimeout(t *testing.T) {
	fc := &fakeConn{rx: [][]byte{[]byte("a"), []byte("b")}}
	c := Wrap(fc, Config{Seed: 7, Inbound: Profile{Drop: 1}})
	buf := make([]byte, 16)
	_, _, err := c.ReadFrom(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want timeout after dropping everything", err)
	}
	if s := c.Stats(); s.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", s.Dropped)
	}
}

func TestInboundDuplicate(t *testing.T) {
	fc := &fakeConn{rx: [][]byte{[]byte("a")}}
	c := Wrap(fc, Config{Seed: 7, Inbound: Profile{Dup: 1}})
	buf := make([]byte, 16)
	n, _, err := c.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "a" {
		t.Fatalf("first read = %q, %v", buf[:n], err)
	}
	n, _, err = c.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "a" {
		t.Fatalf("dup read = %q, %v", buf[:n], err)
	}
}

func TestInboundReorderFlushedOnTimeout(t *testing.T) {
	// With one packet and reorder=1 the packet is held awaiting a successor;
	// the read error (timeout) must flush it rather than lose it.
	fc := &fakeConn{rx: [][]byte{[]byte("a")}}
	c := Wrap(fc, Config{Seed: 7, Inbound: Profile{Reorder: 1}})
	buf := make([]byte, 16)
	n, _, err := c.ReadFrom(buf)
	if err != nil || string(buf[:n]) != "a" {
		t.Fatalf("read = %q, %v (held packet lost)", buf[:n], err)
	}
}

func TestInboundCorrupt(t *testing.T) {
	payload := []byte("aaaaaaaaaaaaaaaa")
	fc := &fakeConn{rx: [][]byte{append([]byte(nil), payload...)}}
	c := Wrap(fc, Config{Seed: 7, Inbound: Profile{Corrupt: 1}})
	buf := make([]byte, 32)
	n, _, err := c.ReadFrom(buf)
	if err != nil || n != len(payload) {
		t.Fatalf("read = %d, %v", n, err)
	}
	if string(buf[:n]) == string(payload) {
		t.Fatal("packet not corrupted at rate 1")
	}
	if s := c.Stats(); s.Corrupted != 1 {
		t.Fatalf("corrupted = %d, want 1", s.Corrupted)
	}
}

func TestDeterministicSequence(t *testing.T) {
	run := func() Stats {
		fc := &fakeConn{}
		c := Wrap(fc, Config{Seed: 42, Outbound: Profile{Drop: 0.3, Dup: 0.2, Reorder: 0.2, Corrupt: 0.1}})
		for i := 0; i < 200; i++ {
			c.WriteTo([]byte{byte(i)}, fakeAddr{})
		}
		return c.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Dropped == 0 || a.Duplicated == 0 || a.Reordered == 0 || a.Corrupted == 0 {
		t.Fatalf("expected every fault type at these rates: %+v", a)
	}
}

type memBackend struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (b *memBackend) Get(key []byte) ([]byte, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.m[string(key)]
	return v, ok
}

func (b *memBackend) Set(key, value []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[string(key)] = append([]byte(nil), value...)
	return nil
}

func (b *memBackend) Delete(key []byte) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, ok := b.m[string(key)]
	delete(b.m, string(key))
	return ok
}

func TestFaultyBackendInjectsErrors(t *testing.T) {
	fb := WrapBackend(&memBackend{m: map[string][]byte{}}, BackendConfig{Seed: 1, ErrRate: 1})
	if err := fb.Set([]byte("k"), []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if fb.InjectedErrors() != 1 {
		t.Fatalf("injected = %d", fb.InjectedErrors())
	}
	if _, ok := fb.Get([]byte("k")); ok {
		t.Fatal("failed Set stored a value")
	}
}

func TestFaultyBackendStalls(t *testing.T) {
	fb := WrapBackend(&memBackend{m: map[string][]byte{}}, BackendConfig{Seed: 1, StallRate: 1, Stall: 10 * time.Millisecond})
	start := time.Now()
	fb.Get([]byte("k"))
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("stall lasted only %v", d)
	}
	if fb.Stalls() != 1 {
		t.Fatalf("stalls = %d", fb.Stalls())
	}
}

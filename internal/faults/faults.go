// Package faults provides a deterministic, seedable fault injector for the
// real (non-simulated) serving path: a net.PacketConn wrapper that drops,
// duplicates, reorders, corrupts and delays datagrams with configurable
// per-direction rates, and a store wrapper that injects errors and stalls.
//
// The injector exists so the fault-tolerance machinery (request IDs, retries,
// admission control) can be exercised both in tests and from the command-line
// binaries (`--fault-*` flags on dido-server and dido-loadgen) without a real
// lossy network. All randomness comes from a single seed, so a failing run
// reproduces exactly.
package faults

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/stats"
)

// Profile gives the fault rates of one traffic direction. All rates are
// probabilities in [0, 1] applied independently per datagram.
type Profile struct {
	// Drop discards the datagram.
	Drop float64
	// Dup delivers the datagram twice.
	Dup float64
	// Reorder holds the datagram back until after the next one.
	Reorder float64
	// Corrupt flips one to three random payload bytes.
	Corrupt float64
	// Delay sleeps Delay ± DelayJitter before delivering.
	Delay       time.Duration
	DelayJitter time.Duration
}

// active reports whether the profile injects anything at all.
func (p Profile) active() bool {
	return p.Drop > 0 || p.Dup > 0 || p.Reorder > 0 || p.Corrupt > 0 || p.Delay > 0
}

// Config configures a Conn. Inbound applies to datagrams read from the
// wrapped conn, Outbound to datagrams written to it.
type Config struct {
	Seed     int64
	Inbound  Profile
	Outbound Profile
}

// Symmetric returns a Config applying p in both directions.
func Symmetric(seed int64, p Profile) Config {
	return Config{Seed: seed, Inbound: p, Outbound: p}
}

// Stats is a snapshot of injected-fault counts, summed over both directions.
type Stats struct {
	Dropped, Duplicated, Reordered, Corrupted, Delayed uint64
}

// packet is a buffered datagram (inbound only; outbound writes through).
type packet struct {
	data []byte
	addr net.Addr
}

// side is the per-direction injector state. Each direction owns its own RNG
// so inbound and outbound fault sequences are independently deterministic.
type side struct {
	mu      sync.Mutex
	rng     *rand.Rand
	profile Profile

	pending []packet // datagrams ready for delivery ahead of the socket
	held    *packet  // datagram being reordered past its successor

	dropped, duplicated, reordered, corrupted, delayed stats.Counter
}

// Conn wraps a net.PacketConn (in practice a *net.UDPConn) and injects the
// configured faults. It implements net.PacketConn, and additionally Read and
// Write when the wrapped conn does (a connected UDP socket), so it can stand
// in on both the server and the client side. Reads and writes are each
// serialized internally; the wrapper is safe for concurrent use wherever the
// wrapped conn is.
type Conn struct {
	pc net.PacketConn
	rw io.ReadWriter // non-nil when pc supports connected Read/Write

	in, out side
}

// Wrap returns c behind a fault injector configured by cfg.
func Wrap(c net.PacketConn, cfg Config) *Conn {
	fc := &Conn{pc: c}
	if rw, ok := c.(io.ReadWriter); ok {
		fc.rw = rw
	}
	fc.in = side{rng: rand.New(rand.NewSource(cfg.Seed)), profile: cfg.Inbound}
	fc.out = side{rng: rand.New(rand.NewSource(cfg.Seed + 1)), profile: cfg.Outbound}
	return fc
}

// Stats returns the total injected-fault counts.
func (c *Conn) Stats() Stats {
	var s Stats
	for _, d := range []*side{&c.in, &c.out} {
		s.Dropped += d.dropped.Load()
		s.Duplicated += d.duplicated.Load()
		s.Reordered += d.reordered.Load()
		s.Corrupted += d.corrupted.Load()
		s.Delayed += d.delayed.Load()
	}
	return s
}

// corrupt flips 1-3 bytes of b in place using the side's RNG (caller holds
// the lock).
func (d *side) corrupt(b []byte) {
	if len(b) == 0 {
		return
	}
	n := 1 + d.rng.Intn(3)
	for i := 0; i < n; i++ {
		b[d.rng.Intn(len(b))] ^= byte(1 + d.rng.Intn(255))
	}
	d.corrupted.Inc()
}

// delayFor returns the configured delay with jitter (caller holds the lock),
// or 0 when no delay is configured.
func (d *side) delayFor() time.Duration {
	p := d.profile
	if p.Delay <= 0 {
		return 0
	}
	dl := p.Delay
	if p.DelayJitter > 0 {
		dl += time.Duration(d.rng.Int63n(int64(2*p.DelayJitter))) - p.DelayJitter
	}
	if dl < 0 {
		dl = 0
	}
	d.delayed.Inc()
	return dl
}

// ReadFrom implements net.PacketConn with inbound faults applied.
func (c *Conn) ReadFrom(b []byte) (int, net.Addr, error) {
	return c.recv(b, func(buf []byte) (int, net.Addr, error) {
		return c.pc.ReadFrom(buf)
	})
}

// Read reads from a connected wrapped conn with inbound faults applied.
func (c *Conn) Read(b []byte) (int, error) {
	if c.rw == nil {
		return 0, errors.New("faults: wrapped conn does not support Read")
	}
	n, _, err := c.recv(b, func(buf []byte) (int, net.Addr, error) {
		n, err := c.rw.Read(buf)
		return n, nil, err
	})
	return n, err
}

// recv applies the inbound fault pipeline around one underlying read.
func (c *Conn) recv(b []byte, read func([]byte) (int, net.Addr, error)) (int, net.Addr, error) {
	d := &c.in
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.profile.active() {
		// Fast path: no buffering, read straight through.
		d.mu.Unlock()
		n, addr, err := read(b)
		d.mu.Lock()
		return n, addr, err
	}
	scratch := make([]byte, len(b))
	for {
		if len(d.pending) > 0 {
			p := d.pending[0]
			d.pending = d.pending[1:]
			return c.deliver(d, b, p)
		}
		d.mu.Unlock()
		n, addr, err := read(scratch)
		d.mu.Lock()
		if err != nil {
			// Flush a reordered datagram rather than losing it: the
			// successor it was waiting for may never come (timeout, close).
			if d.held != nil {
				p := *d.held
				d.held = nil
				return c.deliver(d, b, p)
			}
			return 0, nil, err
		}
		p := packet{data: append([]byte(nil), scratch[:n]...), addr: addr}
		if d.rng.Float64() < d.profile.Drop {
			d.dropped.Inc()
			continue
		}
		if d.rng.Float64() < d.profile.Dup {
			d.duplicated.Inc()
			d.pending = append(d.pending, packet{data: append([]byte(nil), p.data...), addr: p.addr})
		}
		if d.held == nil && d.rng.Float64() < d.profile.Reorder {
			d.reordered.Inc()
			held := p
			d.held = &held
			continue
		}
		if d.held != nil {
			held := *d.held
			d.held = nil
			d.pending = append(d.pending, held)
		}
		return c.deliver(d, b, p)
	}
}

// deliver finishes one inbound datagram: corruption, delay, copy-out.
// Caller holds d.mu; the delay sleep happens with the lock held, modeling a
// serialized slow link.
func (c *Conn) deliver(d *side, b []byte, p packet) (int, net.Addr, error) {
	if d.rng.Float64() < d.profile.Corrupt {
		d.corrupt(p.data)
	}
	if dl := d.delayFor(); dl > 0 {
		time.Sleep(dl)
	}
	return copy(b, p.data), p.addr, nil
}

// WriteTo implements net.PacketConn with outbound faults applied.
func (c *Conn) WriteTo(b []byte, addr net.Addr) (int, error) {
	return c.send(b, func(p []byte) (int, error) {
		return c.pc.WriteTo(p, addr)
	})
}

// Write writes to a connected wrapped conn with outbound faults applied.
func (c *Conn) Write(b []byte) (int, error) {
	if c.rw == nil {
		return 0, errors.New("faults: wrapped conn does not support Write")
	}
	return c.send(b, c.rw.Write)
}

// send applies the outbound fault pipeline around one underlying write. The
// datagram's reported size is always len(b): a dropped or held write still
// "succeeds" from the caller's point of view, as it would on a real network.
func (c *Conn) send(b []byte, write func([]byte) (int, error)) (int, error) {
	d := &c.out
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.profile.active() {
		return write(b)
	}
	if d.rng.Float64() < d.profile.Drop {
		d.dropped.Inc()
		return len(b), nil
	}
	if dl := d.delayFor(); dl > 0 {
		time.Sleep(dl)
	}
	if d.held == nil && d.rng.Float64() < d.profile.Reorder {
		d.reordered.Inc()
		d.held = &packet{data: append([]byte(nil), b...)}
		return len(b), nil
	}
	if err := d.writeOne(b, write); err != nil {
		return 0, err
	}
	if d.held != nil {
		held := d.held
		d.held = nil
		if err := d.writeOne(held.data, write); err != nil {
			return 0, err
		}
	}
	return len(b), nil
}

// writeOne emits one datagram, applying corruption and duplication.
func (d *side) writeOne(b []byte, write func([]byte) (int, error)) error {
	out := b
	if d.rng.Float64() < d.profile.Corrupt {
		out = append([]byte(nil), b...)
		d.corrupt(out)
	}
	if _, err := write(out); err != nil {
		return err
	}
	if d.rng.Float64() < d.profile.Dup {
		d.duplicated.Inc()
		if _, err := write(out); err != nil {
			return err
		}
	}
	return nil
}

// Close closes the wrapped conn. Held (reordered) datagrams are discarded,
// as a failing link would.
func (c *Conn) Close() error { return c.pc.Close() }

// LocalAddr returns the wrapped conn's local address.
func (c *Conn) LocalAddr() net.Addr { return c.pc.LocalAddr() }

// SetDeadline delegates to the wrapped conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.pc.SetDeadline(t) }

// SetReadDeadline delegates to the wrapped conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.pc.SetReadDeadline(t) }

// SetWriteDeadline delegates to the wrapped conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.pc.SetWriteDeadline(t) }

// Backend is the store surface the server serves; it matches dido.Store
// structurally so either side can be wrapped without an import cycle.
type Backend interface {
	Get(key []byte) ([]byte, bool)
	Set(key, value []byte) error
	Delete(key []byte) bool
}

// ErrInjected is the error FaultyBackend returns from failed Sets.
var ErrInjected = errors.New("faults: injected store error")

// BackendConfig configures store-level fault injection.
type BackendConfig struct {
	Seed int64
	// ErrRate makes Set fail with ErrInjected.
	ErrRate float64
	// StallRate makes any operation sleep Stall first, modeling a stalled
	// allocator or a page fault storm.
	StallRate float64
	Stall     time.Duration
}

// FaultyBackend wraps a Backend with injected errors and stalls. It is safe
// for concurrent use when the wrapped backend is.
type FaultyBackend struct {
	inner Backend
	cfg   BackendConfig

	mu  sync.Mutex
	rng *rand.Rand

	errs, stalls stats.Counter
}

// WrapBackend returns b behind a fault injector configured by cfg.
func WrapBackend(b Backend, cfg BackendConfig) *FaultyBackend {
	return &FaultyBackend{inner: b, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// roll draws the stall and error decisions for one operation.
func (f *FaultyBackend) roll() (stall bool, fail bool) {
	f.mu.Lock()
	stall = f.cfg.StallRate > 0 && f.rng.Float64() < f.cfg.StallRate
	fail = f.cfg.ErrRate > 0 && f.rng.Float64() < f.cfg.ErrRate
	f.mu.Unlock()
	if stall {
		f.stalls.Inc()
		time.Sleep(f.cfg.Stall)
	}
	return stall, fail
}

// Get delegates to the wrapped backend, possibly stalling first.
func (f *FaultyBackend) Get(key []byte) ([]byte, bool) {
	f.roll()
	return f.inner.Get(key)
}

// Set delegates to the wrapped backend, possibly stalling or failing.
func (f *FaultyBackend) Set(key, value []byte) error {
	if _, fail := f.roll(); fail {
		f.errs.Inc()
		return ErrInjected
	}
	return f.inner.Set(key, value)
}

// Delete delegates to the wrapped backend, possibly stalling first.
func (f *FaultyBackend) Delete(key []byte) bool {
	f.roll()
	return f.inner.Delete(key)
}

// InjectedErrors returns the number of Sets failed by injection.
func (f *FaultyBackend) InjectedErrors() uint64 { return f.errs.Load() }

// Stalls returns the number of injected stalls.
func (f *FaultyBackend) Stalls() uint64 { return f.stalls.Load() }

package faults

import (
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/stats"
)

// Stream fault injection: the TCP analogue of the datagram Conn wrapper.
// Streams cannot drop or reorder without breaking the transport itself, so
// the interesting faults are different — stalls (a slowloris client that
// stops draining its receive window, or trickles its request), short reads
// (commands torn across arbitrary chunk boundaries, which a correct parser
// must reassemble), and corruption (garbage bytes that must produce an
// in-band protocol error, not a crash or desync).

// StreamConfig configures a StreamConn. All rates are probabilities in
// [0, 1] applied independently per Read/Write call.
type StreamConfig struct {
	Seed int64
	// StallRate makes a read or write sleep Stall first — on the server side
	// this models a slowloris peer; keep Stall under the server's write
	// timeout unless tearing the connection down is the point.
	StallRate float64
	Stall     time.Duration
	// ShortRate truncates a read to a 1-byte trickle, tearing commands
	// across reads.
	ShortRate float64
	// CorruptRate flips one to three bytes of a read chunk.
	CorruptRate float64
}

func (c StreamConfig) active() bool {
	return (c.StallRate > 0 && c.Stall > 0) || c.ShortRate > 0 || c.CorruptRate > 0
}

// StreamConn wraps a net.Conn with injected stream faults. Reads and writes
// are each internally serialized; the wrapper is safe for concurrent use
// wherever the wrapped conn is.
type StreamConn struct {
	net.Conn

	mu  sync.Mutex
	rng *rand.Rand
	cfg StreamConfig

	stalls, shortReads, corrupted stats.Counter
}

// WrapStream returns c behind a stream fault injector configured by cfg.
func WrapStream(c net.Conn, cfg StreamConfig) *StreamConn {
	return &StreamConn{Conn: c, rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// StreamStats is a snapshot of injected stream-fault counts.
type StreamStats struct {
	Stalls, ShortReads, Corrupted uint64
}

// Stats returns the total injected-fault counts.
func (c *StreamConn) Stats() StreamStats {
	return StreamStats{
		Stalls:     c.stalls.Load(),
		ShortReads: c.shortReads.Load(),
		Corrupted:  c.corrupted.Load(),
	}
}

// roll draws one fault decision set. The sleep happens outside the lock so
// concurrent reads and writes stall independently.
func (c *StreamConn) roll(read bool) (short, corrupt bool) {
	c.mu.Lock()
	stall := c.cfg.StallRate > 0 && c.cfg.Stall > 0 && c.rng.Float64() < c.cfg.StallRate
	if read {
		short = c.cfg.ShortRate > 0 && c.rng.Float64() < c.cfg.ShortRate
		corrupt = c.cfg.CorruptRate > 0 && c.rng.Float64() < c.cfg.CorruptRate
	}
	c.mu.Unlock()
	if stall {
		c.stalls.Inc()
		time.Sleep(c.cfg.Stall)
	}
	return short, corrupt
}

// Read reads from the wrapped conn with stalls, short reads and corruption
// applied. A short read delivers exactly one byte of whatever arrived —
// stream semantics keep this correct, it just tears framing apart.
func (c *StreamConn) Read(b []byte) (int, error) {
	if !c.cfg.active() {
		return c.Conn.Read(b)
	}
	short, corrupt := c.roll(true)
	if short && len(b) > 1 {
		c.shortReads.Inc()
		b = b[:1]
	}
	n, err := c.Conn.Read(b)
	if corrupt && n > 0 {
		c.mu.Lock()
		flips := 1 + c.rng.Intn(3)
		for i := 0; i < flips; i++ {
			b[c.rng.Intn(n)] ^= byte(1 + c.rng.Intn(255))
		}
		c.mu.Unlock()
		c.corrupted.Inc()
	}
	return n, err
}

// Write writes to the wrapped conn, possibly stalling first. Written bytes
// are never altered or dropped: a TCP peer's kernel would not corrupt
// acknowledged data, and tearing the reply stream is the WriteTimeout's job.
func (c *StreamConn) Write(b []byte) (int, error) {
	if !c.cfg.active() {
		return c.Conn.Write(b)
	}
	c.roll(false)
	return c.Conn.Write(b)
}

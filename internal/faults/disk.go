package faults

import (
	"io"
	"math/rand"
	"sync"
	"time"

	"repro/internal/stats"
)

// This file is the filesystem half of the fault injector: a wrapper around
// the WAL's append handle that injects the failure modes a real disk (or a
// crash mid-write) produces — short writes, outright write errors, fsync
// errors, delayed syncs, and a torn final record on close. It mirrors the
// packet-level Conn wrapper: seeded, deterministic, counting everything it
// does. The interface is structural (wal.File satisfies FileLike and
// *DiskFile satisfies wal.File) so neither package imports the other.

// FileLike is the write-handle surface DiskFile wraps. *os.File and wal.File
// both satisfy it.
type FileLike interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// DiskConfig enables the individual disk fault modes; all probabilities are
// per-call in [0,1].
type DiskConfig struct {
	// Seed makes the injected faults reproducible; 0 seeds from a fixed
	// constant.
	Seed int64
	// ShortWrite is the probability a write persists only a strict prefix
	// (at least one byte) and returns io.ErrShortWrite. A correct logger
	// retries the remainder.
	ShortWrite float64
	// WriteErr is the probability a write fails outright with ErrInjected
	// and zero progress.
	WriteErr float64
	// SyncErr is the probability Sync reports ErrInjected without syncing.
	SyncErr float64
	// SyncDelay is added to every Sync call (a slow disk).
	SyncDelay time.Duration
	// TornTail, when > 0, makes Close truncate up to TornTail bytes off the
	// file's tail (a torn last record, as a crash mid-write leaves behind).
	// Requires the wrapped handle to implement Truncate(int64) error.
	TornTail int
}

// DiskStats counts the faults a DiskFile injected.
type DiskStats struct {
	ShortWrites uint64
	WriteErrs   uint64
	SyncErrs    uint64
	Syncs       uint64
	TornBytes   uint64
}

// DiskFile wraps a write handle with fault injection per cfg.
type DiskFile struct {
	f   FileLike
	cfg DiskConfig

	mu   sync.Mutex
	rng  *rand.Rand
	size int64 // bytes successfully written (for TornTail truncation)

	shortWrites, writeErrs, syncErrs, syncs, tornBytes stats.Counter
}

// WrapFile wraps f with the disk fault injector. With a zero config it is a
// transparent pass-through.
func WrapFile(f FileLike, cfg DiskConfig) *DiskFile {
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x0d15c
	}
	return &DiskFile{f: f, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

func (d *DiskFile) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.WriteErr > 0 && d.rng.Float64() < d.cfg.WriteErr {
		d.writeErrs.Inc()
		return 0, ErrInjected
	}
	if d.cfg.ShortWrite > 0 && len(p) > 1 && d.rng.Float64() < d.cfg.ShortWrite {
		n := 1 + d.rng.Intn(len(p)-1)
		n, err := d.f.Write(p[:n])
		d.size += int64(n)
		d.shortWrites.Inc()
		if err != nil {
			return n, err
		}
		return n, io.ErrShortWrite
	}
	n, err := d.f.Write(p)
	d.size += int64(n)
	return n, err
}

func (d *DiskFile) Sync() error {
	d.mu.Lock()
	delay := d.cfg.SyncDelay
	fail := d.cfg.SyncErr > 0 && d.rng.Float64() < d.cfg.SyncErr
	d.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		d.syncErrs.Inc()
		return ErrInjected
	}
	d.syncs.Inc()
	return d.f.Sync()
}

// Close closes the handle; with TornTail configured and a truncatable
// underlying file, it first tears 1..TornTail bytes off the tail, simulating
// the torn final record a crash leaves behind.
func (d *DiskFile) Close() error {
	d.mu.Lock()
	tear := 0
	if d.cfg.TornTail > 0 {
		tear = 1 + d.rng.Intn(d.cfg.TornTail)
		if int64(tear) > d.size {
			tear = int(d.size)
		}
	}
	size := d.size
	d.mu.Unlock()
	if tear > 0 {
		if tr, ok := d.f.(interface{ Truncate(int64) error }); ok {
			if err := tr.Truncate(size - int64(tear)); err == nil {
				d.tornBytes.Add(uint64(tear))
			}
		}
	}
	return d.f.Close()
}

// DiskStats returns a snapshot of the injected-fault counters.
func (d *DiskFile) DiskStats() DiskStats {
	return DiskStats{
		ShortWrites: d.shortWrites.Load(),
		WriteErrs:   d.writeErrs.Load(),
		SyncErrs:    d.syncErrs.Load(),
		Syncs:       d.syncs.Load(),
		TornBytes:   d.tornBytes.Load(),
	}
}

// Enabled reports whether any disk fault mode is configured — callers skip
// wrapping entirely otherwise.
func (c DiskConfig) Enabled() bool {
	return c.ShortWrite > 0 || c.WriteErr > 0 || c.SyncErr > 0 || c.SyncDelay > 0 || c.TornTail > 0
}

// REUSEPORT listen helpers: the multi-queue ingestion tier opens N sockets
// bound to one address and lets the kernel hash flows (4-tuples) across
// them, one socket per reader goroutine. They live here with the rest of
// the kernel-socket plumbing; the TCP variant serves the stream frontends'
// sharded accept loops.

package udpbatch

import (
	"context"
	"net"
)

// MaxQueues clamps a requested ingestion queue count to what the platform
// can shard one address across: n where SO_REUSEPORT exists (Linux), 1
// elsewhere. Values below 1 mean "unsharded" and also yield 1.
func MaxQueues(n int) int {
	if n < 1 || !reusePortOK {
		return 1
	}
	return n
}

// ListenUDPQueues opens queues UDP sockets bound to the same addr with
// SO_REUSEPORT so the kernel spreads incoming flows across them — one
// socket per ingestion queue, each safe for its own single reader (the
// Receiver contract). queues ≤ 1, or any value on a platform without
// SO_REUSEPORT, falls back to the plain single-socket listen. With a ":0"
// addr the first socket picks the port and the rest bind to it.
//
// Note the queue count is fixed here, at socket-open time: the kernel keeps
// hashing datagrams to every REUSEPORT socket whether or not anyone reads
// it, so a queue without a live reader would strand its share of traffic.
func ListenUDPQueues(addr string, queues int) ([]*net.UDPConn, error) {
	queues = MaxQueues(queues)
	if queues == 1 {
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			return nil, err
		}
		c, err := net.ListenUDP("udp", ua)
		if err != nil {
			return nil, err
		}
		return []*net.UDPConn{c}, nil
	}
	lc := net.ListenConfig{Control: reusePortControl}
	conns := make([]*net.UDPConn, 0, queues)
	bind := addr
	for i := 0; i < queues; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", bind)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		uc := pc.(*net.UDPConn)
		conns = append(conns, uc)
		if i == 0 {
			bind = uc.LocalAddr().String()
		}
	}
	return conns, nil
}

// ListenTCPQueues is ListenUDPQueues for stream listeners: queues accept
// sockets on one address, each handed its own share of incoming connections
// by the kernel, so accept readiness is sharded like datagram flows.
func ListenTCPQueues(addr string, queues int) ([]net.Listener, error) {
	queues = MaxQueues(queues)
	if queues == 1 {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, err
		}
		return []net.Listener{ln}, nil
	}
	lc := net.ListenConfig{Control: reusePortControl}
	lns := make([]net.Listener, 0, queues)
	bind := addr
	for i := 0; i < queues; i++ {
		ln, err := lc.Listen(context.Background(), "tcp", bind)
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, err
		}
		lns = append(lns, ln)
		if i == 0 {
			bind = ln.Addr().String()
		}
	}
	return lns, nil
}

// Package udpbatch amortizes UDP send syscalls: a Sender transmits a slice
// of datagrams in one kernel crossing where the platform supports it (Linux
// sendmmsg), falling back to per-datagram WriteTo elsewhere — the WR/SD
// counterpart of batching queries into frames (paper §V-A): once responses
// are produced batch-at-a-time, the syscall boundary is the next per-frame
// cost worth amortizing.
//
// Sends are best-effort, matching UDP semantics: the caller gets no
// per-datagram delivery signal, and a datagram the kernel refuses is simply
// dropped (clients retry).
package udpbatch

import (
	"net"
	"sync"
)

// Message is one datagram to transmit.
type Message struct {
	Buf  []byte
	Addr net.Addr
}

// Sender sends batches of datagrams over one packet conn. It is safe for
// concurrent use; the batched path serializes on an internal scratch lock
// (concurrent Send calls are rare — one per completed pipeline batch).
type Sender struct {
	pc net.PacketConn

	mu      sync.Mutex
	scratch sendScratch // platform-specific sendmmsg staging (empty elsewhere)
	batched bool        // platform path available for pc
}

// NewSender returns a Sender over pc. The batched path engages only when pc
// is a real *net.UDPConn (a wrapped conn — e.g. the fault injector — must see
// every datagram, so it gets the WriteTo fallback).
func NewSender(pc net.PacketConn) *Sender {
	s := &Sender{pc: pc}
	if uc, ok := pc.(*net.UDPConn); ok {
		s.batched = s.scratch.init(uc)
	}
	return s
}

// Send transmits every message, best-effort. Buffers are not retained.
func (s *Sender) Send(msgs []Message) {
	if len(msgs) == 0 {
		return
	}
	if s.batched && len(msgs) > 1 {
		s.mu.Lock()
		rest := s.scratch.send(msgs)
		s.mu.Unlock()
		// rest holds messages the batched path could not take (unconvertible
		// address, hard syscall error): deliver them the portable way.
		msgs = rest
	}
	for i := range msgs {
		s.pc.WriteTo(msgs[i].Buf, msgs[i].Addr) //nolint:errcheck // best-effort UDP
	}
}

// Receiver drains batches of datagrams from one packet conn in one kernel
// crossing where possible (Linux recvmmsg) — the RV-side counterpart of
// Sender. It is meant for a single reader goroutine and is not safe for
// concurrent use.
type Receiver struct {
	pc      net.PacketConn
	scratch recvScratch
	batched bool
}

// NewReceiver returns a Receiver over pc. Like the Sender, the batched path
// engages only for a real *net.UDPConn; a wrapped conn keeps seeing every
// datagram through its own ReadFrom.
func NewReceiver(pc net.PacketConn) *Receiver {
	r := &Receiver{pc: pc}
	if uc, ok := pc.(*net.UDPConn); ok {
		r.batched = r.scratch.init(uc)
	}
	return r
}

// Recv fills up to len(bufs) datagrams: it blocks until at least one
// arrives (honoring the conn's read deadline), then takes whatever else the
// socket already holds without blocking. sizes[i] and addrs[i] describe the
// datagram in bufs[i]. Returns the number of datagrams received.
func (r *Receiver) Recv(bufs [][]byte, addrs []net.Addr, sizes []int) (int, error) {
	if r.batched && len(bufs) > 1 {
		return r.scratch.recv(bufs, addrs, sizes)
	}
	n, a, err := r.pc.ReadFrom(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0], addrs[0] = n, a
	return 1, nil
}

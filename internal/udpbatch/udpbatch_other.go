//go:build !linux || !(amd64 || arm64)

package udpbatch

import "net"

// sendScratch is a stub off Linux: the batched path never engages and every
// send goes through the portable WriteTo loop.
type sendScratch struct{}

func (sc *sendScratch) init(*net.UDPConn) bool { return false }

func (sc *sendScratch) send(msgs []Message) []Message { return msgs }

// recvScratch is likewise a stub: Recv always uses the single-datagram
// ReadFrom path.
type recvScratch struct{}

func (sc *recvScratch) init(*net.UDPConn) bool { return false }

func (sc *recvScratch) recv([][]byte, []net.Addr, []int) (int, error) {
	panic("udpbatch: recvScratch.recv on unsupported platform")
}

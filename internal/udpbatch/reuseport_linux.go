//go:build linux

package udpbatch

import "syscall"

const reusePortOK = true

// soReusePort is SO_REUSEPORT (Linux ≥ 3.9); the syscall package does not
// export it on every linux arch, so spell out the value.
const soReusePort = 0xf

func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return serr
}

package udpbatch

import (
	"net"
	"testing"
	"time"
)

func TestMaxQueuesClamp(t *testing.T) {
	if got := MaxQueues(0); got != 1 {
		t.Fatalf("MaxQueues(0) = %d, want 1", got)
	}
	if got := MaxQueues(-3); got != 1 {
		t.Fatalf("MaxQueues(-3) = %d, want 1", got)
	}
	want := 1
	if reusePortOK {
		want = 8
	}
	if got := MaxQueues(8); got != want {
		t.Fatalf("MaxQueues(8) = %d, want %d", got, want)
	}
}

func TestListenUDPQueuesSamePort(t *testing.T) {
	conns, err := ListenUDPQueues("127.0.0.1:0", 4)
	if err != nil {
		t.Fatalf("ListenUDPQueues: %v", err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	if want := MaxQueues(4); len(conns) != want {
		t.Fatalf("got %d conns, want %d", len(conns), want)
	}
	addr := conns[0].LocalAddr().String()
	for i, c := range conns {
		if got := c.LocalAddr().String(); got != addr {
			t.Fatalf("conn %d bound to %s, want %s", i, got, addr)
		}
	}
}

// TestListenUDPQueuesSpread proves the kernel actually hashes distinct
// source 4-tuples across the REUSEPORT sockets: many source sockets send
// one datagram each, and at least two queues must receive something.
func TestListenUDPQueuesSpread(t *testing.T) {
	conns, err := ListenUDPQueues("127.0.0.1:0", 4)
	if err != nil {
		t.Fatalf("ListenUDPQueues: %v", err)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	if len(conns) == 1 {
		t.Skip("no SO_REUSEPORT on this platform")
	}
	dst := conns[0].LocalAddr().String()
	for i := 0; i < 64; i++ {
		src, err := net.Dial("udp", dst)
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		if _, err := src.Write([]byte{byte(i)}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		src.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	buf := make([]byte, 16)
	got := make([]int, len(conns))
	total := 0
	for qi, c := range conns {
		c.SetReadDeadline(deadline)
		for {
			if _, _, err := c.ReadFrom(buf); err != nil {
				break
			}
			got[qi]++
			total++
			if total == 64 {
				break
			}
			// Drain what is already queued without waiting long for more.
			c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
		}
	}
	active := 0
	for _, n := range got {
		if n > 0 {
			active++
		}
	}
	if active < 2 {
		t.Fatalf("kernel did not spread flows: per-queue counts %v", got)
	}
}

func TestListenTCPQueuesSamePort(t *testing.T) {
	lns, err := ListenTCPQueues("127.0.0.1:0", 3)
	if err != nil {
		t.Fatalf("ListenTCPQueues: %v", err)
	}
	defer func() {
		for _, l := range lns {
			l.Close()
		}
	}()
	if want := MaxQueues(3); len(lns) != want {
		t.Fatalf("got %d listeners, want %d", len(lns), want)
	}
	addr := lns[0].Addr().String()
	for i, l := range lns {
		if got := l.Addr().String(); got != addr {
			t.Fatalf("listener %d bound to %s, want %s", i, got, addr)
		}
	}
	// A connect must land on exactly one listener and be acceptable there.
	done := make(chan struct{})
	go func() {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
		}
		close(done)
	}()
	accepted := make(chan net.Conn, len(lns))
	for _, l := range lns {
		go func(l net.Listener) {
			if c, err := l.Accept(); err == nil {
				accepted <- c
			}
		}(l)
	}
	select {
	case c := <-accepted:
		c.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("no listener accepted the connection")
	}
	<-done
}

//go:build !linux

package udpbatch

import "syscall"

const reusePortOK = false

// reusePortControl is never installed on platforms without SO_REUSEPORT
// (MaxQueues clamps to 1 first); it exists so reuseport.go compiles.
func reusePortControl(network, address string, c syscall.RawConn) error {
	return nil
}

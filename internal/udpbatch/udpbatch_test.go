package udpbatch

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"
)

// TestSenderDelivers sends a batch of distinct datagrams (enough to span
// multiple sendmmsg chunks) from one UDP socket to another and checks every
// payload arrives intact.
func TestSenderDelivers(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	const n = sendChunk + 17 // force a second chunk on the batched path
	raddr := recv.LocalAddr().(*net.UDPAddr)
	msgs := make([]Message, n)
	for i := range msgs {
		msgs[i] = Message{Buf: []byte(fmt.Sprintf("msg-%03d", i)), Addr: raddr}
	}
	NewSender(send).Send(msgs)

	got := make(map[string]bool, n)
	buf := make([]byte, 64)
	recv.SetReadDeadline(time.Now().Add(2 * time.Second))
	for len(got) < n {
		m, _, err := recv.ReadFrom(buf)
		if err != nil {
			t.Fatalf("received %d/%d datagrams, then: %v", len(got), n, err)
		}
		got[string(buf[:m])] = true
	}
	for i := 0; i < n; i++ {
		if !got[fmt.Sprintf("msg-%03d", i)] {
			t.Fatalf("datagram %d missing", i)
		}
	}
}

// TestSenderFallback drives Send through a non-UDPConn PacketConn (the
// wrapped-socket case, e.g. the fault injector) and checks delivery via the
// portable path.
func TestSenderFallback(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	s := NewSender(wrapped{send})
	if s.batched {
		t.Fatal("wrapped conn must not take the batched path")
	}
	raddr := recv.LocalAddr()
	s.Send([]Message{{Buf: []byte("a"), Addr: raddr}, {Buf: []byte("b"), Addr: raddr}})

	buf := make([]byte, 16)
	recv.SetReadDeadline(time.Now().Add(2 * time.Second))
	seen := map[string]bool{}
	for len(seen) < 2 {
		m, _, err := recv.ReadFrom(buf)
		if err != nil {
			t.Fatalf("received %d/2, then: %v", len(seen), err)
		}
		seen[string(buf[:m])] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("wrong payloads: %v", seen)
	}
}

// wrapped hides the *net.UDPConn type, like the fault injector's conn wrapper.
type wrapped struct{ net.PacketConn }

// TestReceiverDrains sends a burst of datagrams and checks the Receiver
// returns every payload with the right size and a usable source address,
// across however many Recv calls the kernel needs.
func TestReceiverDrains(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()
	send, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()

	const n = 37 // more than one recv burst
	raddr := recv.LocalAddr().(*net.UDPAddr)
	for i := 0; i < n; i++ {
		if _, err := send.WriteTo([]byte(fmt.Sprintf("msg-%03d", i)), raddr); err != nil {
			t.Fatal(err)
		}
	}

	r := NewReceiver(recv)
	bufs := make([][]byte, 8)
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	addrs := make([]net.Addr, len(bufs))
	sizes := make([]int, len(bufs))
	got := make(map[string]bool, n)
	recv.SetReadDeadline(time.Now().Add(2 * time.Second))
	for len(got) < n {
		k, err := r.Recv(bufs, addrs, sizes)
		if err != nil {
			t.Fatalf("received %d/%d datagrams, then: %v", len(got), n, err)
		}
		want := send.LocalAddr().(*net.UDPAddr)
		for i := 0; i < k; i++ {
			if ua, ok := addrs[i].(*net.UDPAddr); !ok || ua.Port != want.Port || !ua.IP.Equal(want.IP) {
				t.Fatalf("datagram %d: source %v, want %v", i, addrs[i], want)
			}
			got[string(bufs[i][:sizes[i]])] = true
		}
	}
	for i := 0; i < n; i++ {
		if !got[fmt.Sprintf("msg-%03d", i)] {
			t.Fatalf("datagram %d missing", i)
		}
	}
}

// TestReceiverDeadline checks Recv surfaces the read deadline as a timeout
// (the serve loop relies on this to poll its shutdown flag).
func TestReceiverDeadline(t *testing.T) {
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	r := NewReceiver(recv)
	bufs := [][]byte{make([]byte, 64), make([]byte, 64)}
	recv.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	_, err = r.Recv(bufs, make([]net.Addr, 2), make([]int, 2))
	var ne net.Error
	if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
}

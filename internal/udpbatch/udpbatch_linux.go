//go:build linux && (amd64 || arm64)

package udpbatch

import (
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors the kernel's struct mmsghdr (msghdr + sent-length out
// parameter, padded to 8 bytes).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte
}

// sendChunk bounds one sendmmsg call; the kernel caps vlen at UIO_MAXIOV
// (1024) anyway, and smaller chunks keep the staging arrays modest.
const sendChunk = 128

// sysSendmmsg is the sendmmsg syscall number (absent from the stdlib syscall
// tables on linux/amd64, hence spelled out per architecture here).
var sysSendmmsg = func() uintptr {
	if runtime.GOARCH == "arm64" {
		return 269
	}
	return 307 // amd64
}()

type sendScratch struct {
	rc   syscall.RawConn
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sa4  []syscall.RawSockaddrInet4
	sa6  []syscall.RawSockaddrInet6
}

func (sc *sendScratch) init(uc *net.UDPConn) bool {
	rc, err := uc.SyscallConn()
	if err != nil {
		return false
	}
	sc.rc = rc
	sc.hdrs = make([]mmsghdr, sendChunk)
	sc.iovs = make([]syscall.Iovec, sendChunk)
	sc.sa4 = make([]syscall.RawSockaddrInet4, sendChunk)
	sc.sa6 = make([]syscall.RawSockaddrInet6, sendChunk)
	return true
}

// send transmits msgs via sendmmsg in chunks and returns the messages it
// could not handle (unconvertible address, or everything left after a hard
// syscall error); the caller falls back to WriteTo for those.
func (sc *sendScratch) send(msgs []Message) []Message {
	var rest []Message
	for len(msgs) > 0 {
		// Stage up to one chunk.
		n := 0
		for n < sendChunk && len(msgs) > 0 {
			m := &msgs[0]
			msgs = msgs[1:]
			ua, ok := m.Addr.(*net.UDPAddr)
			if !ok || len(m.Buf) == 0 {
				rest = append(rest, *m)
				continue
			}
			ap := ua.AddrPort()
			addr := ap.Addr()
			h := &sc.hdrs[n]
			h.hdr = syscall.Msghdr{}
			h.n = 0
			iov := &sc.iovs[n]
			iov.Base = &m.Buf[0]
			iov.SetLen(len(m.Buf))
			h.hdr.Iov = iov
			h.hdr.Iovlen = 1
			port := ap.Port()
			switch {
			case addr.Is4() || addr.Is4In6():
				sa := &sc.sa4[n]
				sa.Family = syscall.AF_INET
				sa.Port = port<<8 | port>>8 // network byte order
				sa.Addr = addr.Unmap().As4()
				h.hdr.Name = (*byte)(unsafe.Pointer(sa))
				h.hdr.Namelen = syscall.SizeofSockaddrInet4
			default:
				sa := &sc.sa6[n]
				sa.Family = syscall.AF_INET6
				sa.Port = port<<8 | port>>8
				sa.Addr = addr.As16()
				sa.Scope_id = 0
				h.hdr.Name = (*byte)(unsafe.Pointer(sa))
				h.hdr.Namelen = syscall.SizeofSockaddrInet6
			}
			n++
		}
		if n == 0 {
			continue
		}
		sent := 0
		hardErr := false
		err := sc.rc.Write(func(fd uintptr) bool {
			for sent < n {
				r, _, errno := syscall.Syscall6(sysSendmmsg, fd,
					uintptr(unsafe.Pointer(&sc.hdrs[sent])), uintptr(n-sent), 0, 0, 0)
				switch errno {
				case 0:
					sent += int(r)
				case syscall.EINTR:
					// retry
				case syscall.EAGAIN:
					return false // wait for writability, then be called again
				default:
					hardErr = true
					return true
				}
			}
			return true
		})
		if err != nil || hardErr {
			// Datagrams already handed to the kernel are gone either way;
			// everything not yet sent goes to the portable path.
			for i := sent; i < n; i++ {
				rest = append(rest, iovMessage(&sc.hdrs[i], sc))
			}
			rest = append(rest, msgs...)
			runtime.KeepAlive(msgs)
			return rest
		}
	}
	runtime.KeepAlive(msgs)
	return rest
}

// recvChunk bounds one recvmmsg call. The reader drains whatever the socket
// holds; sixteen frames per crossing already amortizes the syscall well past
// the batch sizes the pipeline sees.
const recvChunk = 16

// sysRecvmmsg is the recvmmsg syscall number (spelled out per architecture
// for the same reason as sysSendmmsg).
var sysRecvmmsg = func() uintptr {
	if runtime.GOARCH == "arm64" {
		return 243
	}
	return 299 // amd64
}()

type recvScratch struct {
	rc    syscall.RawConn
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	names []syscall.RawSockaddrInet6 // large enough for v4 and v6 sources
}

func (sc *recvScratch) init(uc *net.UDPConn) bool {
	rc, err := uc.SyscallConn()
	if err != nil {
		return false
	}
	sc.rc = rc
	sc.hdrs = make([]mmsghdr, recvChunk)
	sc.iovs = make([]syscall.Iovec, recvChunk)
	sc.names = make([]syscall.RawSockaddrInet6, recvChunk)
	return true
}

// recv blocks until the socket is readable (rc.Read honors the conn's read
// deadline), then takes up to len(bufs) datagrams in one recvmmsg call. The
// socket is non-blocking, so the kernel returns as soon as the queue is
// empty rather than waiting to fill the whole vector.
func (sc *recvScratch) recv(bufs [][]byte, addrs []net.Addr, sizes []int) (int, error) {
	n := len(bufs)
	if n > recvChunk {
		n = recvChunk
	}
	for i := 0; i < n; i++ {
		iov := &sc.iovs[i]
		iov.Base = &bufs[i][0]
		iov.SetLen(len(bufs[i]))
		h := &sc.hdrs[i]
		h.hdr = syscall.Msghdr{}
		h.n = 0
		h.hdr.Iov = iov
		h.hdr.Iovlen = 1
		h.hdr.Name = (*byte)(unsafe.Pointer(&sc.names[i]))
		h.hdr.Namelen = syscall.SizeofSockaddrInet6
	}
	got := 0
	var hardErr error
	err := sc.rc.Read(func(fd uintptr) bool {
		for {
			r, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&sc.hdrs[0])), uintptr(n), 0, 0, 0)
			switch errno {
			case 0:
				got = int(r)
				return true
			case syscall.EINTR:
				// retry
			case syscall.EAGAIN:
				return false // wait for readability, then be called again
			default:
				hardErr = errno
				return true
			}
		}
	})
	if err != nil {
		return 0, err // includes deadline expiry on the conn
	}
	if hardErr != nil {
		return 0, hardErr
	}
	for i := 0; i < got; i++ {
		sizes[i] = int(sc.hdrs[i].n)
		addrs[i] = sourceAddr(&sc.names[i])
	}
	runtime.KeepAlive(bufs)
	return got, nil
}

// sourceAddr converts a kernel-filled sockaddr into a *net.UDPAddr, copying
// the IP out of the scratch array (the caller keeps the addr past the next
// recv).
func sourceAddr(sa6 *syscall.RawSockaddrInet6) net.Addr {
	switch sa6.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa6))
		return &net.UDPAddr{IP: append(net.IP(nil), sa.Addr[:]...), Port: int(sa.Port<<8 | sa.Port>>8)}
	case syscall.AF_INET6:
		return &net.UDPAddr{IP: append(net.IP(nil), sa6.Addr[:]...), Port: int(sa6.Port<<8 | sa6.Port>>8)}
	}
	return nil
}

// iovMessage reconstructs the Message staged in h (buffer plus address) so a
// failed chunk can be retried via the portable path.
func iovMessage(h *mmsghdr, sc *sendScratch) Message {
	buf := unsafe.Slice(h.hdr.Iov.Base, h.hdr.Iov.Len)
	var addr net.Addr
	switch h.hdr.Namelen {
	case syscall.SizeofSockaddrInet4:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(h.hdr.Name))
		// Copy the IP out of the scratch array: the caller uses the Message
		// after the scratch lock is released.
		addr = &net.UDPAddr{IP: append(net.IP(nil), sa.Addr[:]...), Port: int(sa.Port<<8 | sa.Port>>8)}
	case syscall.SizeofSockaddrInet6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(h.hdr.Name))
		addr = &net.UDPAddr{IP: append(net.IP(nil), sa.Addr[:]...), Port: int(sa.Port<<8 | sa.Port>>8)}
	}
	return Message{Buf: buf, Addr: addr}
}

package pipeline

// Chunk-granular work stealing for the live serving path — the paper's
// §III-B3 brought from the discrete-event simulator (exec.go's steal loop)
// to the real stage worker groups.
//
// A sealed batch whose Config has WorkStealing set does not execute its
// stealable stage phases as one fixed-assignment loop. Instead the owning
// stage worker shards the phase into fixed-size chunks (frame-aligned runs
// of ~StealChunkQueries queries) behind an atomic claim index — the live
// analog of the simulator's per-chunk tag array: a chunk is executed by
// whichever worker wins its claim.Add, exactly once. The owner publishes the
// run on a board, wakes idle workers, and claims chunks itself; workers that
// finish their own stage's batch (or sit blocked on an empty queue) pull the
// remaining chunks from the published — i.e. bottleneck — stage. WR is never
// chunked: it stays pinned to its NIC-adjacent group, mirroring the
// simulator's stealableOn rule, and SD/LG follow it.
//
// Chunks partition the batch on frame boundaries, so concurrent chunk
// executors never share a frame: response slots, Err flags and candidate
// spans are index-disjoint, and each chunk appends values into its own arena
// (liveBatch.chunkVals). Accounting is accumulated chunk-locally and merged
// under a mutex once per chunk. Whether stealing is worth turning on at all
// is the cost model's call (Eq 3 via costmodel.Controller.AllowStealing);
// this file only honors the sealed per-batch decision.
//
// Cross-frame ordering note: the fixed path applies a batch's writes in
// frame submission order; chunked writes apply frame-order within a chunk
// but concurrently across chunks. Per-client (per-frame) ordering is
// preserved — a frame never spans chunks — while cross-client ordering
// inside one batch becomes what it already is on the wire: concurrent.

import (
	"sync/atomic"
	"time"

	"repro/internal/cuckoo"
	"repro/internal/gpu"
	"repro/internal/proto"
	"repro/internal/task"
)

// StealChunkQueries is the steal granularity in queries — the paper's
// 64-query chunks, shared with the simulator via gpu.WavefrontWidth.
const StealChunkQueries = gpu.WavefrontWidth

// stealMinQueries is the smallest batch worth chunking: below two chunks
// there is nothing to share and the claim index is pure overhead.
const stealMinQueries = 2 * StealChunkQueries

// stealPhase identifies which phase of a batch's stage work a stealRun
// covers. Only index and object phases are stealable (IN.Search, IN.Insert,
// IN.Delete, the fused KC+RD) — the same set exec.go's stealableOn admits
// for a CPU helper.
type stealPhase int

const (
	phaseWrites    stealPhase = iota // fused IN.Insert + IN.Delete pass
	phaseSets                        // IN.Insert only
	phaseDeletes                     // IN.Delete only
	phaseSearch                      // scalar IN.Search
	phaseReads                       // scalar fused KC+RD
	phaseWideReads                   // wide fused KC+RD over the gathered GETs
)

// stealRun is one phase of one batch executing cooperatively: the claim
// index hands out chunks, done counts completions, and the last finisher
// closes finished so the owner can move to the next phase knowing every
// chunk's effects are visible (the close/recv edge orders them).
type stealRun struct {
	b       *liveBatch
	phase   stealPhase
	nchunks int32

	claim atomic.Int32 // next unclaimed chunk — the tag array analog
	done  atomic.Int32

	stolenChunks  atomic.Int32 // chunks executed by a non-owner worker
	stolenQueries atomic.Int64

	finished chan struct{}
}

// stealEligible reports whether b's stage work should execute chunked: the
// runner implements stealing, the batch's sealed config asked for it, and
// the batch is big enough to shard.
func (r *LiveRunner) stealEligible(b *liveBatch) bool {
	return r.opts.Steal && b.b.Config.WorkStealing && b.nq >= stealMinQueries
}

// buildFrameChunks partitions the batch's frames into contiguous runs of at
// least StealChunkQueries queries (the last chunk takes the remainder) and
// returns the chunk count. Built once per batch; every frame-geometry phase
// shares the boundaries.
func (b *liveBatch) buildFrameChunks() int {
	if len(b.chunkF) > 0 {
		return len(b.chunkF) - 1
	}
	b.chunkF = append(b.chunkF, 0)
	qs := 0
	for fi := range b.frames {
		lo, hi := b.frameRange(fi)
		qs += hi - lo
		if qs >= StealChunkQueries && fi+1 < len(b.frames) {
			b.chunkF = append(b.chunkF, int32(fi+1))
			qs = 0
		}
	}
	b.chunkF = append(b.chunkF, int32(len(b.frames)))
	return len(b.chunkF) - 1
}

// buildWideChunks partitions the gathered GET vector (getKeys/getQ) into
// frame-aligned runs of ~StealChunkQueries GETs, recording both the gather
// index boundaries (wchunkJ, what the wide store calls consume) and the
// frame boundaries (wchunkF, what the per-chunk scalar panic fallback
// consumes). Frame alignment is what keeps a frame's Err flag single-writer.
func (b *liveBatch) buildWideChunks() int {
	if len(b.wchunkJ) > 0 {
		return len(b.wchunkJ) - 1
	}
	b.wchunkJ = append(b.wchunkJ, 0)
	b.wchunkF = append(b.wchunkF, 0)
	fi, cnt := 0, 0
	for j := 0; j < len(b.getQ); j++ {
		// Frame of gather entry j (getQ ascends, so fi only walks forward).
		for fi+1 < len(b.frameOff) && b.getQ[j] >= b.frameOff[fi+1] {
			fi++
		}
		if cnt >= StealChunkQueries && int(b.wchunkF[len(b.wchunkF)-1]) != fi &&
			b.getQ[j] == b.frameOff[fi] {
			// First GET of a new frame with a full chunk accumulated: cut here.
			b.wchunkJ = append(b.wchunkJ, int32(j))
			b.wchunkF = append(b.wchunkF, int32(fi))
			cnt = 0
		}
		cnt++
	}
	b.wchunkJ = append(b.wchunkJ, int32(len(b.getQ)))
	b.wchunkF = append(b.wchunkF, int32(len(b.frames)))
	return len(b.wchunkJ) - 1
}

// ensureChunkVals guarantees one reusable value arena per chunk.
func (b *liveBatch) ensureChunkVals(n int) {
	for len(b.chunkVals) < n {
		b.chunkVals = append(b.chunkVals, nil)
	}
}

// chunkStats accumulates one chunk's accounting locally so the shared batch
// is touched exactly once per chunk (under statsMu), not per query.
type chunkStats struct {
	gets, sets, dels, setErrs     int
	keyBytes, valBytes, wireBytes int
	hits, misses                  int
	taskNanos                     [task.NumTasks]int64
	taskUnits                     [task.NumTasks]int64
}

func (b *liveBatch) mergeChunk(cs *chunkStats) {
	b.statsMu.Lock()
	defer b.statsMu.Unlock()
	b.gets += cs.gets
	b.sets += cs.sets
	b.dels += cs.dels
	b.setErrs += cs.setErrs
	b.keyBytes += cs.keyBytes
	b.valBytes += cs.valBytes
	b.wireBytes += cs.wireBytes
	b.b.Hits += cs.hits
	b.b.Misses += cs.misses
	for id := range cs.taskNanos {
		b.taskNanos[id] += cs.taskNanos[id]
		b.taskUnits[id] += cs.taskUnits[id]
	}
}

// runChunked executes one phase of b cooperatively. The owner publishes the
// run (unless another run already holds the board — then it simply keeps
// every chunk for itself), wakes idle workers, claims chunks until the index
// is exhausted, and waits for stragglers before returning: the next phase
// must observe every chunk's writes.
func (r *LiveRunner) runChunked(b *liveBatch, phase stealPhase, nchunks int) {
	run := &stealRun{b: b, phase: phase, nchunks: int32(nchunks), finished: make(chan struct{})}
	published := r.stealBoard.CompareAndSwap(nil, run)
	if published {
		for i := 0; i < cap(r.stealWake); i++ {
			select {
			case r.stealWake <- struct{}{}:
			default:
			}
		}
	}
	for {
		ci := run.claim.Add(1) - 1
		if ci >= run.nchunks {
			break
		}
		r.runChunk(run, ci, false)
	}
	if published {
		r.stealBoard.CompareAndSwap(run, nil)
	}
	<-run.finished
	b.chunkedPhases++
	if sc := run.stolenChunks.Load(); sc > 0 {
		b.stolenChunks += int(sc)
		b.stolenQueries += int(run.stolenQueries.Load())
	}
}

// helpSteal lets a worker with no work of its own execute chunks from the
// published run. Own work always wins: the helper re-checks its queue
// between chunks and returns as soon as a batch is waiting there.
func (r *LiveRunner) helpSteal(si int) {
	for {
		run := r.stealBoard.Load()
		if run == nil || len(r.ch[si]) > 0 {
			return
		}
		ci := run.claim.Add(1) - 1
		if ci >= run.nchunks {
			return
		}
		r.runChunk(run, ci, true)
	}
}

// runChunk executes chunk ci of run and books completion; the worker that
// finishes the last chunk releases the owner.
func (r *LiveRunner) runChunk(run *stealRun, ci int32, stolen bool) {
	b := run.b
	var nq int
	switch run.phase {
	case phaseWideReads:
		nq = r.chunkWideReads(b, int(ci))
	case phaseSearch:
		nq = r.chunkSearch(b, int(b.chunkF[ci]), int(b.chunkF[ci+1]))
	case phaseReads:
		nq = r.chunkScalarReads(b, int(ci), int(b.chunkF[ci]), int(b.chunkF[ci+1]))
	default: // phaseWrites / phaseSets / phaseDeletes
		nq = r.chunkWrites(b, run.phase, int(b.chunkF[ci]), int(b.chunkF[ci+1]))
	}
	if stolen {
		run.stolenChunks.Add(1)
		run.stolenQueries.Add(int64(nq))
	}
	if run.done.Add(1) == run.nchunks {
		close(run.finished)
	}
}

// ---- MaybeChunked phase dispatchers -------------------------------------

// runWritesMaybeChunked routes the write phase: chunked under a stealing
// batch, otherwise the fixed-assignment pass for the given phase kind.
func (r *LiveRunner) runWritesMaybeChunked(b *liveBatch, phase stealPhase) {
	if r.stealEligible(b) {
		if n := b.buildFrameChunks(); n >= 2 {
			r.runChunked(b, phase, n)
			return
		}
	}
	switch phase {
	case phaseSets:
		r.runSets(b)
	case phaseDeletes:
		r.runDeletes(b)
	default:
		r.runWrites(b)
	}
}

// runSearchMaybeChunked routes IN.Search. The chunked variant is the scalar
// per-key probe over a fixed-stride candidate arena (global offsets, so the
// later read stage consumes candLo/candHi unchanged); it trades the wide
// SearchBatch's software pipelining for multi-worker parallelism, which is
// the better exchange exactly when stealing was predicted to pay — the
// bottleneck stage has idle helpers, not spare memory-level parallelism.
func (r *LiveRunner) runSearchMaybeChunked(b *liveBatch) {
	if r.stealEligible(b) {
		if n := b.buildFrameChunks(); n >= 2 {
			b.searched = true
			b.candLo = sizeI32(b.candLo, b.nq)
			b.candHi = sizeI32(b.candHi, b.nq)
			b.cands = sizeLoc(b.cands, b.nq*cuckoo.MaxCandidates)
			r.runChunked(b, phaseSearch, n)
			return
		}
	}
	r.runSearch(b)
}

// runReadsMaybeChunked routes the fused KC+RD phase: wide chunks when the
// batch qualifies for the wide path (each chunk is one batched store call
// over its slice of the gathered GET vector), scalar chunks otherwise.
func (r *LiveRunner) runReadsMaybeChunked(b *liveBatch) {
	if !r.stealEligible(b) {
		r.runReads(b)
		return
	}
	if r.wideEligible(b) {
		if n := b.buildWideChunks(); n >= 2 {
			ng := len(b.getQ)
			b.vlo = sizeI32(b.vlo, ng)
			b.vhi = sizeI32(b.vhi, ng)
			if b.searched {
				b.glo = sizeI32(b.glo, ng)
				b.ghi = sizeI32(b.ghi, ng)
			}
			b.ensureChunkVals(n)
			r.runChunked(b, phaseWideReads, n)
			r.wideBatches.Inc()
			return
		}
		r.runReads(b) // one wide call: runReads' own wide path covers it
		return
	}
	if n := b.buildFrameChunks(); n >= 2 {
		b.ensureChunkVals(n)
		r.runChunked(b, phaseReads, n)
		return
	}
	r.runReads(b)
}

// ---- chunk executors ----------------------------------------------------

// chunkWrites is the chunk-granular runWrites/runSets/runDeletes: identical
// per-query work over frames [flo, fhi), accounting merged once at the end.
func (r *LiveRunner) chunkWrites(b *liveBatch, phase stealPhase, flo, fhi int) int {
	start := r.taskStart()
	var cs chunkStats
	r.eachFrameRange(b, flo, fhi, func(fi int, f *LiveFrame) {
		lo := int(b.frameOff[fi])
		for i := range f.Queries {
			q := &f.Queries[i]
			switch {
			case q.Op == proto.OpSet && phase != phaseDeletes:
				cs.sets++
				cs.keyBytes += len(q.Key)
				cs.valBytes += len(q.Value)
				if r.wantProfile {
					cs.wireBytes += proto.EncodedQueryLen(*q)
				}
				if err := r.store.Set(q.Key, q.Value); err != nil {
					b.resps[lo+i] = proto.Response{Status: proto.StatusError}
					cs.setErrs++
				} else {
					b.resps[lo+i] = proto.Response{Status: proto.StatusOK}
				}
			case q.Op == proto.OpDelete && phase != phaseSets:
				cs.dels++
				cs.keyBytes += len(q.Key)
				if r.wantProfile {
					cs.wireBytes += proto.EncodedQueryLen(*q)
				}
				if r.store.Delete(q.Key) {
					b.resps[lo+i] = proto.Response{Status: proto.StatusOK}
				} else {
					b.resps[lo+i] = proto.Response{Status: proto.StatusNotFound}
				}
			}
		}
	})
	if !start.IsZero() && cs.sets+cs.dels > 0 {
		// Split the measured pass time between the two tasks by unit count,
		// exactly like the fused fixed-assignment pass.
		nanos := time.Since(start).Nanoseconds()
		cs.taskNanos[task.INInsert] = nanos * int64(cs.sets) / int64(cs.sets+cs.dels)
		cs.taskNanos[task.INDelete] = nanos * int64(cs.dels) / int64(cs.sets+cs.dels)
	}
	cs.taskUnits[task.INInsert] = int64(cs.sets)
	cs.taskUnits[task.INDelete] = int64(cs.dels)
	b.mergeChunk(&cs)
	return cs.sets + cs.dels
}

// chunkSearch probes each GET of frames [flo, fhi) into the query's fixed
// stride of the shared candidate arena: global offsets with no shared
// append, so concurrent chunks never contend and the read stage's
// candLo/candHi contract is unchanged.
func (r *LiveRunner) chunkSearch(b *liveBatch, flo, fhi int) int {
	start := r.taskStart()
	var cs chunkStats
	units := 0
	r.eachFrameRange(b, flo, fhi, func(fi int, f *LiveFrame) {
		lo := int(b.frameOff[fi])
		for i := range f.Queries {
			if f.Queries[i].Op != proto.OpGet {
				continue
			}
			q := lo + i
			base := q * cuckoo.MaxCandidates
			got := r.store.Search(f.Queries[i].Key, b.cands[base:base:base+cuckoo.MaxCandidates])
			n := len(got)
			if n > cuckoo.MaxCandidates {
				// An implementation that outgrew the stride reallocated; keep
				// what fits — dropped candidates only mean the read falls
				// back to its authoritative lookup (the stale-cands rule).
				n = cuckoo.MaxCandidates
			}
			if n > 0 {
				copy(b.cands[base:base+n], got[:n]) // no-op when appended in place
			}
			b.candLo[q], b.candHi[q] = int32(base), int32(base+n)
			units++
		}
	})
	if !start.IsZero() {
		cs.taskNanos[task.INSearch] = time.Since(start).Nanoseconds()
	}
	cs.taskUnits[task.INSearch] = int64(units)
	b.mergeChunk(&cs)
	return units
}

// chunkScalarReads is the chunk-granular scalar KC+RD over frames
// [flo, fhi), appending values into the chunk's own arena.
func (r *LiveRunner) chunkScalarReads(b *liveBatch, ci, flo, fhi int) int {
	start := r.taskStart()
	var cs chunkStats
	vals := b.chunkVals[ci][:0]
	vals = r.readFramesInto(b, vals, flo, fhi, &cs)
	b.chunkVals[ci] = vals
	if !start.IsZero() {
		cs.taskNanos[task.KC] = time.Since(start).Nanoseconds()
	}
	cs.taskUnits[task.KC] = int64(cs.gets)
	b.mergeChunk(&cs)
	return cs.gets
}

// readFramesInto runs the scalar fused KC+RD loop over frames [flo, fhi)
// appending values to vals; shared by the scalar chunk executor and the wide
// chunk's panic fallback. Growing vals keeps earlier backing arrays alive,
// so responses already built stay valid (same contract as b.vals).
func (r *LiveRunner) readFramesInto(b *liveBatch, vals []byte, flo, fhi int, cs *chunkStats) []byte {
	r.eachFrameRange(b, flo, fhi, func(fi int, f *LiveFrame) {
		lo := int(b.frameOff[fi])
		for i := range f.Queries {
			q := &f.Queries[i]
			if q.Op != proto.OpGet {
				continue
			}
			cs.gets++
			cs.keyBytes += len(q.Key)
			if r.wantProfile {
				cs.wireBytes += proto.EncodedQueryLen(*q)
			}
			var cands []cuckoo.Location
			if b.searched {
				cands = b.cands[b.candLo[lo+i]:b.candHi[lo+i]]
			}
			mark := len(vals)
			if out, ok := r.store.ReadCandidates(q.Key, cands, vals); ok {
				vals = out
				v := vals[mark:len(vals):len(vals)]
				b.resps[lo+i] = proto.Response{Status: proto.StatusOK, Value: v}
				cs.valBytes += len(v)
				cs.hits++
			} else {
				b.resps[lo+i] = proto.Response{Status: proto.StatusNotFound}
				cs.misses++
			}
		}
	})
	return vals
}

// chunkWideReads runs one batched store call over the chunk's slice of the
// gathered GET vector, scattering values and responses for exactly those
// gather entries (all index-disjoint across chunks). A panic inside the
// store call falls back to the scalar loop over the chunk's frames, which
// contains it per frame — the chunk-granular version of wideReads' rerun.
func (r *LiveRunner) chunkWideReads(b *liveBatch, ci int) int {
	start := r.taskStart()
	var cs chunkStats
	jlo, jhi := int(b.wchunkJ[ci]), int(b.wchunkJ[ci+1])
	keys := b.getKeys[jlo:jhi]
	vals := b.chunkVals[ci][:0]
	var hits int
	ok := func() (ok bool) {
		defer func() {
			if rec := recover(); rec != nil {
				ok = false
			}
		}()
		if b.searched {
			for j := jlo; j < jhi; j++ {
				q := b.getQ[j]
				b.glo[j], b.ghi[j] = b.candLo[q], b.candHi[q]
			}
			vals, hits = r.wide.ReadCandidatesBatch(keys, b.cands, b.glo[jlo:jhi], b.ghi[jlo:jhi], vals, b.vlo[jlo:jhi], b.vhi[jlo:jhi])
		} else {
			vals, hits = r.wide.GetBatch(keys, vals, b.vlo[jlo:jhi], b.vhi[jlo:jhi])
		}
		return true
	}()
	if !ok {
		vals = r.readFramesInto(b, vals[:0], int(b.wchunkF[ci]), int(b.wchunkF[ci+1]), &cs)
		b.chunkVals[ci] = vals
		if !start.IsZero() {
			cs.taskNanos[task.KC] = time.Since(start).Nanoseconds()
		}
		cs.taskUnits[task.KC] = int64(cs.gets)
		b.mergeChunk(&cs)
		return cs.gets
	}
	b.chunkVals[ci] = vals
	for j := jlo; j < jhi; j++ {
		q := b.getQ[j]
		cs.keyBytes += len(keys[j-jlo])
		if r.wantProfile {
			cs.wireBytes += proto.EncodedQueryLen(proto.Query{Op: proto.OpGet, Key: keys[j-jlo]})
		}
		if b.vlo[j] >= 0 {
			v := vals[b.vlo[j]:b.vhi[j]:b.vhi[j]]
			b.resps[q] = proto.Response{Status: proto.StatusOK, Value: v}
			cs.valBytes += len(v)
		} else {
			b.resps[q] = proto.Response{Status: proto.StatusNotFound}
		}
	}
	cs.gets = jhi - jlo
	cs.hits = hits
	cs.misses = (jhi - jlo) - hits
	if !start.IsZero() {
		cs.taskNanos[task.KC] = time.Since(start).Nanoseconds()
	}
	cs.taskUnits[task.KC] = int64(cs.gets)
	b.mergeChunk(&cs)
	return cs.gets
}

// sizeLoc sizes a Location arena to n entries (contents are overwritten by
// the per-query strides; unwritten strides are never referenced).
func sizeLoc(s []cuckoo.Location, n int) []cuckoo.Location {
	if cap(s) < n {
		return make([]cuckoo.Location, n)
	}
	return s[:n]
}

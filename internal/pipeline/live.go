package pipeline

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cuckoo"
	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/task"
)

// This file is the live (wall-clock) counterpart of runner.go: the same
// Batch / Config / ConfigProvider abstractions, executed against a real
// store on goroutine stage groups instead of the discrete-event engine.
// RV/PP happen at the submitter (the server's socket reader parses the frame
// before Submit); IN(Search), IN(Insert), IN(Delete), the fused KC+RD, and
// WR run on whichever stage group the batch's sealed Config maps them to;
// SD is the Done callback delivering each frame's responses.

// LiveStore is the store surface the live pipeline executes against, split
// along the paper's task boundaries so each piece can run in its own stage.
type LiveStore interface {
	// Search performs IN(Search): append candidate locations for key to dst.
	// Implementations without a task-granular index may return dst unchanged
	// and resolve the read entirely in ReadCandidates.
	Search(key []byte, dst []cuckoo.Location) []cuckoo.Location
	// ReadCandidates performs the fused KC+RD tasks: verify the candidates
	// against key and append the live value to dst. When every candidate is
	// stale (the batch's Search raced a writer) the implementation must fall
	// back to an authoritative lookup rather than reporting a miss.
	ReadCandidates(key []byte, cands []cuckoo.Location, dst []byte) ([]byte, bool)
	// Set performs the composite MM + IN(Insert) + IN(Delete) write.
	Set(key, value []byte) error
	// Delete performs IN(Delete) for an explicit DELETE query.
	Delete(key []byte) bool
}

// LiveScanner serves one batch's SCAN queries from a single MVCC snapshot
// capture: every scan in the batch merges over the same per-shard tree
// versions (the batched range merge). The slices passed to fn are reused
// between entries; the callback must copy what it keeps.
type LiveScanner interface {
	Scan(start, end []byte, limit int, fn func(key, value []byte) bool) int
}

// RangeScanner is an optional LiveStore extension: stores with an ordered
// index (store.Config.Ordered) expose MVCC range scans and the SC pipeline
// task executes against them. NewScanner must return nil when the ordered
// index is disabled — SCAN queries then answer StatusError, exactly like the
// per-frame path.
type RangeScanner interface {
	NewScanner() LiveScanner
}

// LiveStoreMetrics is an optional LiveStore extension supplying the workload
// counters the adaptation profile cannot measure per batch.
type LiveStoreMetrics interface {
	// LiveMetrics returns the live object count, cumulative evictions, and
	// the cumulative average cuckoo buckets probed per index insert.
	LiveMetrics() (liveObjects, evictions uint64, avgInsertBuckets float64)
}

// HotKeyStats is an optional LiveStore extension: stores with a hot-key fast
// path report its cumulative hit count so the profile can expose the measured
// HotHitPortion (the fraction of GETs skipping the index probe) to the
// planner — that is how -adapt sees the fast path's reduced search cost.
type HotKeyStats interface {
	HotStats() (hits uint64, enabled bool)
}

// BatchReadStore is an optional LiveStore extension: the wide, shard-grouped
// batched index path (the codebase's GPU-analog executor). When the store
// implements it and a batch carries at least WideMinGets GETs, the IN stage
// runs one SearchBatch over all the batch's GET keys and the KC+RD stage one
// ReadCandidatesBatch / GetBatch, instead of one scalar call per key — the
// batch-parallel execution the paper's IN stage gets from the GPU (§V).
// Value spans use offset pairs into the shared vals arena; vlo[i] = -1 marks
// a miss.
type BatchReadStore interface {
	// SearchBatch is the wide IN(Search): candidates for keys[i] are appended
	// to dst with their span recorded in lo[i]:hi[i].
	SearchBatch(keys [][]byte, dst []cuckoo.Location, lo, hi []int32) []cuckoo.Location
	// ReadCandidatesBatch is the wide fused KC+RD over previously collected
	// candidate spans; stale candidates must fall back to an authoritative
	// lookup, exactly like the scalar ReadCandidates.
	ReadCandidatesBatch(keys [][]byte, cands []cuckoo.Location, lo, hi []int32, vals []byte, vlo, vhi []int32) ([]byte, int)
	// GetBatch is the fused wide search+read used when IN(Search) and KC
	// share a stage (the batched counterpart of the search-skip fusion).
	GetBatch(keys [][]byte, vals []byte, vlo, vhi []int32) ([]byte, int)
}

// LiveFrame is one client frame travelling through the live pipeline. The
// submitter fills Queries, ParseNanos and Ctx; the WR stage fills Resps; the
// Done callback receives the frame after its batch's last stage.
type LiveFrame struct {
	// Queries must hold only valid ops (GET/SET/DELETE/SCAN — what the
	// server's parser admits): the response arena is recycled without clearing
	// on the strength of every valid op's response being written by its stage.
	Queries []proto.Query
	// Resps holds one response per query after the WR stage. Values alias
	// the batch's value arena and are only valid inside the Done callback.
	Resps []proto.Response
	// Err reports that this frame's execution died (a stage panicked on one
	// of its queries): Resps is empty and the client is answered by retry,
	// exactly like a poisoned frame on the per-frame path.
	Err bool
	// ParseNanos carries the submitter's measured RV+PP cost (socket read
	// and frame parse) so the profile's RV/SD unit costs are measured, not
	// assumed.
	ParseNanos int64
	// Ctx is the submitter's per-frame context, carried through untouched.
	Ctx any
}

// Defaults for LiveOptions zero fields.
const (
	DefaultLiveBatchInterval = 500 * time.Microsecond
	DefaultLiveMaxPending    = 4
	DefaultLiveMinBatch      = 64
	DefaultLiveMaxBatch      = 8192
	// DefaultWideMinGets is the GET count at which a batch switches from the
	// scalar per-key IN/KC+RD loops to the wide batched path: below it the
	// gather/scatter overhead outweighs the memory-parallelism win.
	DefaultWideMinGets = 32
)

// liveMetricsRefresh bounds how often buildProfile polls LiveStoreMetrics:
// the store's population count is an index scan, far too expensive per batch,
// and adaptation only reacts at workload-shift timescales anyway.
const liveMetricsRefresh = 20 * time.Millisecond

// DefaultLiveConfig is the pipeline shape the live runner starts with when
// the provider has no opinion yet: Mega-KV's static partitioning. On a
// CPU-only host the "GPU" stage is simply the middle worker group; what the
// config controls is which group runs which tasks.
func DefaultLiveConfig() Config { return MegaKV() }

// LiveOptions configures a LiveRunner.
type LiveOptions struct {
	// Provider chooses the (config, batch size) installed at each batch
	// boundary; in-flight batches keep the config they were sealed with.
	// Defaults to a StaticProvider running DefaultLiveConfig.
	Provider ConfigProvider
	// BatchInterval bounds how long a partially-filled batch may wait before
	// it is sealed anyway. Default DefaultLiveBatchInterval.
	BatchInterval time.Duration
	// MaxPending bounds sealed batches queued ahead of each stage; Submit
	// rejects new work (shed upstream) when stage 1's queue is full.
	// Default DefaultLiveMaxPending.
	MaxPending int
	// Workers sets the goroutine count per stage group; entries ≤ 0 mean 1.
	Workers [3]int
	// WideMinGets is the minimum number of GETs in a batch for the IN and
	// KC+RD stages to use the store's wide batched path (BatchReadStore).
	// 0 means DefaultWideMinGets; negative disables the wide path entirely.
	// Ignored when the store does not implement BatchReadStore.
	WideMinGets int
	// Steal enables chunk-granular work stealing across the stage groups
	// (livesteal.go): batches whose sealed Config has WorkStealing set run
	// their stealable stage phases as fixed-size chunks behind an atomic
	// claim index, and workers with no work of their own pull chunks from
	// the bottleneck stage. Off, WorkStealing configs execute exactly like
	// fixed assignment (the flag is advisory to the planner only).
	Steal bool
	// OnBatchDone, when set, observes every completed batch after its frames
	// were delivered. The *Batch is recycled after the callback returns;
	// copy what outlives it.
	OnBatchDone func(*Batch)
	// Done delivers each completed frame (the SD task). It runs on a stage
	// worker, so it must not block indefinitely.
	Done func(*LiveFrame)
	// DoneBatch, when set, replaces Done: it is called once per completed
	// batch with the batch's frames in submission order, letting the
	// consumer amortize per-frame delivery costs (e.g. one batched send
	// syscall for all response datagrams). The slice is reused by the
	// runner; the consumer must not retain it. One of Done / DoneBatch is
	// required.
	DoneBatch func(frames []*LiveFrame)
	// LogBatch, when set, is the durability tier's LG task: it runs once per
	// completed batch, after the WR stage and before frame delivery, and
	// group-commits the batch's write-ahead-log records. It returns the
	// record and byte counts it committed so the batch profile can expose
	// logging cost (LGRecordsPerQuery / LGSeqBytes / LGUnitNanos) to the
	// planner. A frame the callback poisons (via its Ctx) is still delivered
	// to DoneBatch, which decides not to ack it.
	LogBatch func(frames []*LiveFrame) (records, bytes int)
}

// liveBatch is a Batch in flight through the live stage groups, plus the
// arenas its frames share. Queries are never copied out of their frames: the
// stages iterate each frame's own slice, and b.b.Queries stays empty (the
// provider reads only Batch.Times and Batch.Profile).
type liveBatch struct {
	b      Batch
	frames []*LiveFrame
	// nq is the total query count across frames (the flattened length).
	nq int
	// frameOff[i] is the index of frames[i]'s first query in the shared
	// arenas (resps, candLo, candHi).
	frameOff []int32

	// cands is the IN(Search) result arena; query q's candidates live at
	// cands[candLo[q]:candHi[q]]. Valid only when searched is set: when the
	// config fuses IN(Search) into the KC stage the search is skipped and
	// the read resolves each key in a single authoritative pass.
	searched       bool
	cands          []cuckoo.Location
	candLo, candHi []int32
	// vals is the value arena the KC+RD stage appends into; resps holds one
	// response per query, partitioned to frames by the WR stage.
	vals  []byte
	resps []proto.Response

	// Wide-path gather arenas (reused): getKeys/getQ list every healthy
	// frame's GET keys and their query-arena indexes (filled once per batch
	// by gatherGets); glo/ghi and vlo/vhi are the per-GET candidate and
	// value spans the batched store calls populate.
	gathered bool
	getKeys  [][]byte
	getQ     []int32
	glo, ghi []int32
	vlo, vhi []int32

	// Chunked (work-stealing) execution state — see livesteal.go. chunkF
	// holds frame-index chunk boundaries shared by every frame-geometry
	// phase of the batch (built once); wchunkF/wchunkJ hold the frame- and
	// gather-index boundaries of the wide read phase's chunks. chunkVals is
	// one value arena per chunk so concurrent chunk executors never contend
	// on an append; statsMu serializes merging their accounting.
	chunkF        []int32
	wchunkF       []int32
	wchunkJ       []int32
	chunkVals     [][]byte
	statsMu       sync.Mutex
	stolenChunks  int
	stolenQueries int
	chunkedPhases int

	// lastStage is the last stage the sealed config maps work onto; the
	// batch completes there instead of traversing empty stages (stamped by
	// sealLocked).
	lastStage Stage

	firstAt  time.Time
	sealedAt time.Time
	// taskNanos/taskUnits accumulate measured per-task cost and unit counts.
	taskNanos [task.NumTasks]int64
	taskUnits [task.NumTasks]int64

	gets, sets, dels   int
	setErrs            int
	keyBytes, valBytes int
	wireBytes          int
	parseNanos         int64
	lgBytes            int64
	// SCAN accounting: query count, entries returned, and result-block bytes.
	// Kept apart from valBytes so the profile's ValueSize (a point-op average)
	// is not skewed by streaming range reads.
	scans, scanEntries, scanBytes int
}

func (b *liveBatch) reset() {
	b.b = Batch{}
	b.frames = b.frames[:0]
	b.nq = 0
	b.frameOff = b.frameOff[:0]
	b.searched = false
	b.cands = b.cands[:0]
	b.candLo = b.candLo[:0]
	b.candHi = b.candHi[:0]
	b.vals = b.vals[:0]
	b.resps = b.resps[:0]
	b.gathered = false
	b.getKeys = b.getKeys[:0]
	b.getQ = b.getQ[:0]
	b.glo, b.ghi = b.glo[:0], b.ghi[:0]
	b.vlo, b.vhi = b.vlo[:0], b.vhi[:0]
	b.chunkF = b.chunkF[:0]
	b.wchunkF, b.wchunkJ = b.wchunkF[:0], b.wchunkJ[:0]
	for i := range b.chunkVals {
		b.chunkVals[i] = b.chunkVals[i][:0]
	}
	b.stolenChunks, b.stolenQueries, b.chunkedPhases = 0, 0, 0
	b.firstAt, b.sealedAt = time.Time{}, time.Time{}
	b.taskNanos = [task.NumTasks]int64{}
	b.taskUnits = [task.NumTasks]int64{}
	b.gets, b.sets, b.dels, b.setErrs = 0, 0, 0, 0
	b.keyBytes, b.valBytes, b.wireBytes = 0, 0, 0
	b.parseNanos = 0
	b.lgBytes = 0
	b.scans, b.scanEntries, b.scanBytes = 0, 0, 0
}

// prepare sizes the response arena once the batch is sealed (run by the
// first stage worker, off the submitter's hot path). Reused entries are NOT
// cleared: every valid op's response is fully assigned by exactly one stage
// (runSets/runDeletes/runReads), and poisoned frames never deliver theirs —
// which is why LiveFrame.Queries must only hold parser-validated ops.
func (b *liveBatch) prepare() {
	n := b.nq
	if cap(b.resps) < n {
		b.resps = make([]proto.Response, n)
	} else {
		b.resps = b.resps[:n]
	}
}

func sizeI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// frameRange returns the half-open arena index range of frame fi.
func (b *liveBatch) frameRange(fi int) (int, int) {
	lo := int(b.frameOff[fi])
	hi := b.nq
	if fi+1 < len(b.frameOff) {
		hi = int(b.frameOff[fi+1])
	}
	return lo, hi
}

// LiveRunner executes the real serving path as DIDO's batched, staged
// pipeline: submitted frames accumulate into a pending batch; sealing stamps
// the currently-installed (Config, size) pair into the batch; three stage
// worker groups execute each batch's tasks under its own sealed config; and
// at every batch boundary the ConfigProvider may install a new pair for
// future batches — in-flight batches always complete under the scheme they
// started with (§III-B1).
//
// Submit must not be called concurrently with or after Close.
type LiveRunner struct {
	store LiveStore
	opts  LiveOptions
	// wantProfile is false when the provider declared (via ProfileConsumer)
	// that it never reads Batch.Profile; buildProfile is skipped then.
	wantProfile bool
	// wide is the store's batched path, nil when unsupported or disabled;
	// wideMin is the per-batch GET count that engages it.
	wide    BatchReadStore
	wideMin int

	mu      sync.Mutex // guards pending, cfg, target, seq, closed
	pending *liveBatch
	cfg     Config
	target  int
	seq     uint64
	closed  bool

	provMu sync.Mutex // serializes provider calls across stage-3 workers
	// LiveMetrics cache (under provMu): polling the store is O(index size)
	// — a population scan — so buildProfile refreshes it at most every
	// liveMetricsRefresh and reuses the cached values in between.
	lastEvic         uint64 // cumulative eviction count at the last poll
	metricsAt        time.Time
	setsSinceMetrics int
	cachedPop        uint64
	cachedEvicRate   float64
	cachedAvgIns     float64
	lastHotHits      uint64 // cumulative HotKeyStats hits at the last batch

	ch        [3]chan *liveBatch
	stageWG   [3]sync.WaitGroup
	flushStop chan struct{}
	flushDone chan struct{}
	drained   chan struct{}
	// stage1Inflight counts batches that have been sealed but have not yet
	// finished stage-1 execution. It is incremented inside sealLocked (under
	// mu) and decremented by the stage-1 worker only after the batch has left
	// the stage, so there is no instant at which a batch is neither queued
	// nor counted — the window the old two-part check (len(ch[0])==0 &&
	// busy==0) left open between a worker's channel receive and its busy
	// increment, during which Submit would seal degenerate one-frame batches.
	// Zero means stage 1 is genuinely starving and the pending batch should
	// seal now instead of waiting out the flush interval.
	stage1Inflight atomic.Int32

	// stealBoard publishes the currently chunk-shared stage run (livesteal.go);
	// stealWake nudges channel-blocked workers to come help it.
	stealBoard atomic.Pointer[stealRun]
	stealWake  chan struct{}

	// testStage1Dequeued, when set by a test, runs on the stage-1 worker
	// immediately after a batch is received from ch[0] — the exact point the
	// historical idle-detection race lived at (the busy flag was incremented
	// only after the receive returned). The regression test parks the worker
	// here and asserts concurrent Submits keep coalescing.
	testStage1Dequeued func()

	pool sync.Pool // *liveBatch

	batches      stats.Counter
	queries      stats.Counter
	panics       stats.Counter
	reconfigs    stats.Counter
	shedFull     stats.Counter
	wideBatches  stats.Counter
	stealBatches stats.Counter // batches that ran ≥1 phase chunk-shared
	stolenChunks stats.Counter // chunks executed by a non-owner worker
	stolenQs     stats.Counter // queries inside those chunks

	stageHist [3]*stats.Histogram             // per-batch stage wall time, µs
	taskHist  [task.NumTasks]*stats.Histogram // per-unit task cost, ns
}

// NewLiveRunner starts a live runner over s: its stage workers and batch
// flusher run from construction until Close.
func NewLiveRunner(s LiveStore, opts LiveOptions) *LiveRunner {
	if opts.Done == nil && opts.DoneBatch == nil {
		panic("pipeline: one of LiveOptions.Done / DoneBatch is required")
	}
	if opts.BatchInterval <= 0 {
		opts.BatchInterval = DefaultLiveBatchInterval
	}
	if opts.MaxPending <= 0 {
		opts.MaxPending = DefaultLiveMaxPending
	}
	if opts.Provider == nil {
		opts.Provider = &StaticProvider{
			Config:   DefaultLiveConfig(),
			Interval: opts.BatchInterval,
			MinBatch: DefaultLiveMinBatch,
			MaxBatch: DefaultLiveMaxBatch,
		}
	}
	for i := range opts.Workers {
		if opts.Workers[i] <= 0 {
			opts.Workers[i] = 1
		}
	}
	r := &LiveRunner{
		store:       s,
		opts:        opts,
		wantProfile: true,
		flushStop:   make(chan struct{}),
		flushDone:   make(chan struct{}),
		drained:     make(chan struct{}),
		// One wake token per worker: publishing a steal run nudges every
		// channel-blocked worker at most once (livesteal.go).
		stealWake: make(chan struct{}, opts.Workers[0]+opts.Workers[1]+opts.Workers[2]),
	}
	if pc, ok := opts.Provider.(ProfileConsumer); ok {
		r.wantProfile = pc.WantsProfile()
	}
	r.wideMin = opts.WideMinGets
	if r.wideMin == 0 {
		r.wideMin = DefaultWideMinGets
	}
	if r.wideMin > 0 {
		if bs, ok := s.(BatchReadStore); ok {
			r.wide = bs
		}
	}
	r.cfg, r.target = opts.Provider.NextConfig(nil)
	if r.target < 1 {
		r.target = 1
	}
	r.pool.New = func() any { return &liveBatch{} }
	for si := 0; si < 3; si++ {
		r.ch[si] = make(chan *liveBatch, opts.MaxPending)
		r.stageHist[si] = stats.NewHistogram(stats.LatencyBoundsMicros()...)
		r.stageWG[si].Add(opts.Workers[si])
		for w := 0; w < opts.Workers[si]; w++ {
			go r.stageWorker(si)
		}
	}
	for t := range r.taskHist {
		r.taskHist[t] = stats.NewHistogram(stats.UnitCostBoundsNanos()...)
	}
	go r.flusher()
	return r
}

// Submit hands a parsed frame to the pipeline. It reports false when the
// runner is closed or saturated (every stage-1 slot already holds a sealed
// batch); the caller sheds the frame upstream (StatusBusy), which keeps
// admission latency bounded exactly like the per-frame path's token pool.
func (r *LiveRunner) Submit(f *LiveFrame) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	if r.pending == nil {
		if len(r.ch[0]) == cap(r.ch[0]) {
			r.mu.Unlock()
			r.shedFull.Inc()
			return false
		}
		b := r.pool.Get().(*liveBatch)
		b.reset()
		r.pending = b
	}
	b := r.pending
	if len(b.frames) == 0 {
		b.firstAt = time.Now()
	}
	b.frameOff = append(b.frameOff, int32(b.nq))
	b.frames = append(b.frames, f)
	b.nq += len(f.Queries)
	b.parseNanos += f.ParseNanos
	var sealed *liveBatch
	// Seal at the size target — or immediately when stage 1 is starving
	// (no sealed batch queued or executing): batching only pays while the
	// pipeline is busy, and making an idle stage wait for the flush tick
	// would trade latency AND throughput for nothing (adaptive batching).
	// The timer below remains the bound for frames that arrive while stage 1
	// is busy. stage1Inflight covers a batch from seal to end of stage-1
	// execution, so "busy" here cannot miss a batch mid-handoff.
	if b.nq >= r.target || r.stage1Inflight.Load() == 0 {
		sealed = r.sealLocked()
	}
	r.mu.Unlock()
	if sealed != nil {
		r.dispatch(sealed)
	}
	return true
}

// sealLocked stamps the pending batch with the installed config and removes
// it from accumulation. The config travels with the batch from here on: a
// reconfiguration at a later batch boundary never touches it.
func (r *LiveRunner) sealLocked() *liveBatch {
	b := r.pending
	r.pending = nil
	b.b.Seq = r.seq
	r.seq++
	b.b.Config = r.cfg
	b.lastStage = lastLiveStage(r.cfg)
	b.sealedAt = time.Now()
	// Counted from this instant: the batch is stage-1 work whether it is
	// still awaiting dispatch, queued, or executing (see stage1Inflight).
	r.stage1Inflight.Add(1)
	return b
}

// lastLiveStage returns the last stage cfg maps any executable task onto.
// Later stages would be pure pass-through — two channel handoffs and two
// goroutine wakeups for nothing — so the runner completes the batch at this
// stage instead. SD (frame delivery) runs in complete wherever that is.
func lastLiveStage(c Config) Stage {
	if c.GPUDepth == 0 {
		return StageCPUPre // single CPU stage runs everything
	}
	if c.GPUDepth >= MaxGPUDepth {
		return StageGPU // WR moved to the GPU: CPU-post would be empty
	}
	return StageCPUPost
}

// dispatch may block when stage 1's queue is momentarily full; total work is
// bounded by the server's admission tokens, and Submit refuses to open a new
// batch while the queue is full, so the wait is short and deadlock-free
// (stage workers never call back into Submit).
func (r *LiveRunner) dispatch(b *liveBatch) { r.ch[0] <- b }

// trySealIdle seals the pending batch when stage 1 has gone idle (nothing
// queued, no worker executing). Called by stage-1 workers after handing off a
// batch: frames that arrived while the stage was busy start immediately
// instead of waiting for the next Submit or flush tick.
func (r *LiveRunner) trySealIdle() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.pending == nil || len(r.pending.frames) == 0 ||
		r.stage1Inflight.Load() != 0 {
		return
	}
	sealed := r.sealLocked()
	select {
	case r.ch[0] <- sealed:
	default:
		// Lost the queue slot to a concurrent dispatch (Submit or the
		// flusher, which send outside the lock). Revert the seal — stage 1
		// has work again, so the batch can keep accumulating. The revert
		// must undo everything sealLocked stamped: the seq (numbers stay
		// dense), the inflight count, and the config/stage/time stamps —
		// the eventual real seal restamps them, and Batch.Wall must be
		// measured from that final seal, not this aborted one.
		r.seq--
		r.stage1Inflight.Add(-1)
		sealed.b.Seq = 0
		sealed.b.Config = Config{}
		sealed.lastStage = 0
		sealed.sealedAt = time.Time{}
		r.pending = sealed
	}
}

// flusher seals partially-filled batches on a BatchInterval cadence, so a
// trickle of traffic is never parked waiting for a full batch.
func (r *LiveRunner) flusher() {
	defer close(r.flushDone)
	t := time.NewTicker(r.opts.BatchInterval)
	defer t.Stop()
	for {
		select {
		case <-r.flushStop:
			return
		case <-t.C:
			r.mu.Lock()
			var sealed *liveBatch
			if !r.closed && r.pending != nil && len(r.pending.frames) > 0 {
				sealed = r.sealLocked()
			}
			r.mu.Unlock()
			if sealed != nil {
				r.dispatch(sealed)
			}
		}
	}
}

func (r *LiveRunner) stageWorker(si int) {
	defer r.stageWG[si].Done()
	for {
		var b *liveBatch
		select {
		case nb, ok := <-r.ch[si]:
			if !ok {
				return
			}
			b = nb
		case <-r.stealWake:
			// A chunk-shared run was published while this worker sat idle:
			// go execute chunks until it drains or own work arrives.
			r.helpSteal(si)
			continue
		}
		if si == 0 && r.testStage1Dequeued != nil {
			r.testStage1Dequeued()
		}
		start := time.Now()
		r.runStage(b, Stage(si))
		d := time.Since(start)
		b.b.Times.Dur[si] = d
		if d > b.b.Times.Tmax {
			b.b.Times.Tmax = d
		}
		r.stageHist[si].Observe(float64(d) / float64(time.Microsecond))
		if si < 2 && Stage(si) < b.lastStage {
			r.ch[si+1] <- b
		} else {
			r.complete(b)
		}
		if si == 0 {
			// The batch has fully left stage 1: only now does it stop
			// counting as inflight (it was counted from its seal, closing
			// the historical dequeue-to-busy race window). If that starved
			// the stage, promote whatever accumulated meanwhile instead of
			// letting it wait out the flush tick with an idle worker.
			r.stage1Inflight.Add(-1)
			r.trySealIdle()
		}
		// Before blocking on the queue again, pull chunks from any published
		// steal run — "workers that finish their own stage's work help the
		// bottleneck stage" (§III-B3 brought to the live path).
		r.helpSteal(si)
	}
}

// runStage executes the tasks b's sealed config maps onto stage s, in
// pipeline order: Search, then index writes, then the fused KC+RD, then WR.
// The config invariants guarantee a batch's index writes execute before its
// reads and its searches no later than its reads, so within one batch a GET
// observes the batch's SETs (stale candidates fall back to the authoritative
// lookup) — see DESIGN.md §5.10 for the intra-batch ordering contract.
func (r *LiveRunner) runStage(b *liveBatch, s Stage) {
	cfg := b.b.Config
	if s == StageCPUPre {
		b.prepare()
		// RV/PP already happened at the submitter; book their measured cost.
		b.taskNanos[task.RV] += b.parseNanos
		b.taskUnits[task.RV] += int64(b.nq)
	}
	// When the config puts IN(Search) and KC on the same stage the separate
	// candidate collection would walk the index twice per GET for nothing:
	// skip it and let ReadCandidates' authoritative path resolve each key in
	// one pass (the fused-read counterpart of the KC+RD fusion).
	//
	// Each phase routes through its MaybeChunked wrapper: under a sealed
	// WorkStealing config (and LiveOptions.Steal) the phase executes as
	// claim-indexed chunks other workers can help with; otherwise the
	// wrappers fall straight through to the fixed-assignment loops. WR is
	// never chunked — it stays pinned to its (NIC-adjacent) group, the live
	// analog of stealableOn's WR rule.
	if cfg.StageOf(task.INSearch) == s && cfg.StageOf(task.KC) != s {
		r.runSearchMaybeChunked(b)
	}
	insHere := cfg.StageOf(task.INInsert) == s
	delHere := cfg.StageOf(task.INDelete) == s
	switch {
	case insHere && delHere:
		// Both write kinds on one stage (the common case): one fused pass
		// over the queries instead of two.
		r.runWritesMaybeChunked(b, phaseWrites)
	case insHere:
		r.runWritesMaybeChunked(b, phaseSets)
	case delHere:
		r.runWritesMaybeChunked(b, phaseDeletes)
	}
	if cfg.StageOf(task.KC) == s {
		r.runReadsMaybeChunked(b)
	}
	// SC runs after the batch's point reads on its assigned stage (CPU-pre or
	// GPU — never CPU-post, so lastLiveStage needs no SC case). It is never
	// chunked: all of a batch's scans share one snapshot capture, and the
	// N-way merge is sequential-bandwidth work with nothing for a helper to
	// claim mid-merge.
	if cfg.StageOf(task.SC) == s {
		r.runScans(b)
	}
	if cfg.StageOf(task.WR) == s {
		r.runRespond(b)
	}
}

// eachFrame applies fn to every healthy frame, containing panics per frame:
// a panicking frame is marked Err and skipped by later stages, so one
// poisoned query cannot take down its batchmates — the same blast radius as
// the per-frame path, just reached through the staged executor.
func (r *LiveRunner) eachFrame(b *liveBatch, fn func(fi int, f *LiveFrame)) {
	r.eachFrameRange(b, 0, len(b.frames), fn)
}

// eachFrameRange is eachFrame over frames [flo, fhi) — the chunked executors
// use it so a chunk's panic containment matches the scalar path's exactly.
// Chunks partition the batch on frame boundaries, so concurrent chunk
// executors never touch the same frame's Err flag.
func (r *LiveRunner) eachFrameRange(b *liveBatch, flo, fhi int, fn func(fi int, f *LiveFrame)) {
	for fi := flo; fi < fhi; fi++ {
		f := b.frames[fi]
		if f.Err {
			continue
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					f.Err = true
					r.panics.Inc()
				}
			}()
			fn(fi, f)
		}()
	}
}

// taskStart returns the start time for a per-task cost measurement, or the
// zero time when no provider consumes profiles — the clock reads and per-task
// bookkeeping are pure overhead then.
func (r *LiveRunner) taskStart() time.Time {
	if r.wantProfile {
		return time.Now()
	}
	return time.Time{}
}

// taskDone books a task's unit count and (when measuring) its elapsed cost.
func (b *liveBatch) taskDone(id task.ID, start time.Time, units int) {
	b.taskUnits[id] += int64(units)
	if !start.IsZero() {
		b.taskNanos[id] += time.Since(start).Nanoseconds()
	}
}

// gatherGets lists every healthy frame's GET keys (and their query-arena
// indexes) into the batch's gather arenas, once per batch. This is the
// scatter/gather step that turns the frame-structured batch into the flat key
// vector the wide store calls consume.
func (b *liveBatch) gatherGets() {
	if b.gathered {
		return
	}
	b.gathered = true
	for fi, f := range b.frames {
		if f.Err {
			continue
		}
		lo := int(b.frameOff[fi])
		for i := range f.Queries {
			if f.Queries[i].Op != proto.OpGet {
				continue
			}
			b.getKeys = append(b.getKeys, f.Queries[i].Key)
			b.getQ = append(b.getQ, int32(lo+i))
		}
	}
}

// wideEligible reports whether b should run its GETs through the store's
// batched path: the store supports it and the batch carries enough GETs to
// amortize the gather/scatter overhead.
func (r *LiveRunner) wideEligible(b *liveBatch) bool {
	if r.wide == nil || b.nq < r.wideMin {
		return false
	}
	b.gatherGets()
	return len(b.getQ) >= r.wideMin
}

// wideSearch runs one SearchBatch over the batch's gathered GET keys and
// scatters the candidate spans back to the per-query arena. A panic inside
// the store reports false so the caller can rerun the scalar per-frame path,
// which re-raises inside eachFrame and poisons only the offending frame.
func (r *LiveRunner) wideSearch(b *liveBatch) (ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			ok = false
		}
	}()
	ng := len(b.getQ)
	b.glo = sizeI32(b.glo, ng)
	b.ghi = sizeI32(b.ghi, ng)
	b.cands = r.wide.SearchBatch(b.getKeys, b.cands[:0], b.glo, b.ghi)
	for j, q := range b.getQ {
		b.candLo[q], b.candHi[q] = b.glo[j], b.ghi[j]
	}
	return true
}

// runSearch performs IN(Search) for every GET, collecting candidate
// locations into the batch's shared arena. Large batches run the wide,
// shard-grouped SearchBatch; small ones (and stores without the batched
// extension) take the scalar per-key loop.
func (r *LiveRunner) runSearch(b *liveBatch) {
	start := r.taskStart()
	b.searched = true
	b.candLo = sizeI32(b.candLo, b.nq)
	b.candHi = sizeI32(b.candHi, b.nq)
	if r.wideEligible(b) && r.wideSearch(b) {
		b.taskDone(task.INSearch, start, len(b.getQ))
		return
	}
	b.cands = b.cands[:0] // discard any partial wide results before the rerun
	units := 0
	r.eachFrame(b, func(fi int, f *LiveFrame) {
		lo := int(b.frameOff[fi])
		for i := range f.Queries {
			if f.Queries[i].Op != proto.OpGet {
				continue
			}
			m := int32(len(b.cands))
			b.cands = r.store.Search(f.Queries[i].Key, b.cands)
			b.candLo[lo+i], b.candHi[lo+i] = m, int32(len(b.cands))
			units++
		}
	})
	b.taskDone(task.INSearch, start, units)
}

// runSets performs the composite write (MM + IN.Insert + IN.Delete) for
// every SET in the batch.
// runWrites performs both write kinds (SET's composite MM + IN.Insert, and
// IN.Delete) in a single pass — the fusion of runSets and runDeletes used
// when the config maps both onto the same stage. Measured pass time is split
// between the two tasks by unit count.
func (r *LiveRunner) runWrites(b *liveBatch) {
	start := r.taskStart()
	sets, dels := 0, 0
	r.eachFrame(b, func(fi int, f *LiveFrame) {
		lo := int(b.frameOff[fi])
		for i := range f.Queries {
			q := &f.Queries[i]
			switch q.Op {
			case proto.OpSet:
				sets++
				b.keyBytes += len(q.Key)
				b.valBytes += len(q.Value)
				if r.wantProfile {
					b.wireBytes += proto.EncodedQueryLen(*q)
				}
				if err := r.store.Set(q.Key, q.Value); err != nil {
					b.resps[lo+i] = proto.Response{Status: proto.StatusError}
					b.setErrs++
				} else {
					b.resps[lo+i] = proto.Response{Status: proto.StatusOK}
				}
			case proto.OpDelete:
				dels++
				b.keyBytes += len(q.Key)
				if r.wantProfile {
					b.wireBytes += proto.EncodedQueryLen(*q)
				}
				if r.store.Delete(q.Key) {
					b.resps[lo+i] = proto.Response{Status: proto.StatusOK}
				} else {
					b.resps[lo+i] = proto.Response{Status: proto.StatusNotFound}
				}
			}
		}
	})
	b.sets += sets
	b.dels += dels
	if !start.IsZero() && sets+dels > 0 {
		nanos := time.Since(start).Nanoseconds()
		b.taskNanos[task.INInsert] += nanos * int64(sets) / int64(sets+dels)
		b.taskNanos[task.INDelete] += nanos * int64(dels) / int64(sets+dels)
	}
	b.taskUnits[task.INInsert] += int64(sets)
	b.taskUnits[task.INDelete] += int64(dels)
}

func (r *LiveRunner) runSets(b *liveBatch) {
	start := r.taskStart()
	units := 0
	r.eachFrame(b, func(fi int, f *LiveFrame) {
		lo := int(b.frameOff[fi])
		for i := range f.Queries {
			q := &f.Queries[i]
			if q.Op != proto.OpSet {
				continue
			}
			units++
			b.keyBytes += len(q.Key)
			b.valBytes += len(q.Value)
			if r.wantProfile {
				b.wireBytes += proto.EncodedQueryLen(*q)
			}
			if err := r.store.Set(q.Key, q.Value); err != nil {
				b.resps[lo+i] = proto.Response{Status: proto.StatusError}
				b.setErrs++
			} else {
				b.resps[lo+i] = proto.Response{Status: proto.StatusOK}
			}
		}
	})
	b.sets += units
	b.taskDone(task.INInsert, start, units)
}

// runDeletes performs IN(Delete) for every DELETE in the batch.
func (r *LiveRunner) runDeletes(b *liveBatch) {
	start := r.taskStart()
	units := 0
	r.eachFrame(b, func(fi int, f *LiveFrame) {
		lo := int(b.frameOff[fi])
		for i := range f.Queries {
			q := &f.Queries[i]
			if q.Op != proto.OpDelete {
				continue
			}
			units++
			b.keyBytes += len(q.Key)
			if r.wantProfile {
				b.wireBytes += proto.EncodedQueryLen(*q)
			}
			if r.store.Delete(q.Key) {
				b.resps[lo+i] = proto.Response{Status: proto.StatusOK}
			} else {
				b.resps[lo+i] = proto.Response{Status: proto.StatusNotFound}
			}
		}
	})
	b.dels += units
	b.taskDone(task.INDelete, start, units)
}

// wideReads runs the fused KC+RD over the batch's gathered GETs in one
// batched store call — ReadCandidatesBatch over the search stage's candidate
// spans, or the fully-fused GetBatch when the search was skipped — then
// scatters values, responses, and accounting back per query. All bookkeeping
// happens after the store call returns, so a store panic (reported as false;
// the scalar loop reruns and contains it per frame) cannot leave half-counted
// stats behind.
func (r *LiveRunner) wideReads(b *liveBatch) (ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			ok = false
		}
	}()
	ng := len(b.getQ)
	b.vlo = sizeI32(b.vlo, ng)
	b.vhi = sizeI32(b.vhi, ng)
	var hits int
	if b.searched {
		// Regather candidate spans from the per-query arena: the search stage
		// may have run either wide or scalar, candLo/candHi is the contract.
		b.glo = sizeI32(b.glo, ng)
		b.ghi = sizeI32(b.ghi, ng)
		for j, q := range b.getQ {
			b.glo[j], b.ghi[j] = b.candLo[q], b.candHi[q]
		}
		b.vals, hits = r.wide.ReadCandidatesBatch(b.getKeys, b.cands, b.glo, b.ghi, b.vals, b.vlo, b.vhi)
	} else {
		b.vals, hits = r.wide.GetBatch(b.getKeys, b.vals, b.vlo, b.vhi)
	}
	for j, q := range b.getQ {
		k := b.getKeys[j]
		b.keyBytes += len(k)
		if r.wantProfile {
			b.wireBytes += proto.EncodedQueryLen(proto.Query{Op: proto.OpGet, Key: k})
		}
		if b.vlo[j] >= 0 {
			v := b.vals[b.vlo[j]:b.vhi[j]:b.vhi[j]]
			b.resps[q] = proto.Response{Status: proto.StatusOK, Value: v}
			b.valBytes += len(v)
		} else {
			b.resps[q] = proto.Response{Status: proto.StatusNotFound}
		}
	}
	b.b.Hits += hits
	b.b.Misses += ng - hits
	r.wideBatches.Inc()
	return true
}

// runReads performs the fused KC+RD for every GET, appending values into the
// batch's arena. Growing the arena keeps earlier backing arrays alive, so
// responses already built remain valid for the batch's lifetime. Large
// batches take the wide batched path; the scalar per-frame loop is the
// fallback and the panic-containment path.
func (r *LiveRunner) runReads(b *liveBatch) {
	start := r.taskStart()
	if r.wideEligible(b) && r.wideReads(b) {
		b.gets += len(b.getQ)
		b.taskDone(task.KC, start, len(b.getQ))
		return
	}
	units := 0
	r.eachFrame(b, func(fi int, f *LiveFrame) {
		lo := int(b.frameOff[fi])
		for i := range f.Queries {
			q := &f.Queries[i]
			if q.Op != proto.OpGet {
				continue
			}
			units++
			b.keyBytes += len(q.Key)
			if r.wantProfile {
				b.wireBytes += proto.EncodedQueryLen(*q)
			}
			var cands []cuckoo.Location
			if b.searched {
				cands = b.cands[b.candLo[lo+i]:b.candHi[lo+i]]
			}
			mark := len(b.vals)
			if out, ok := r.store.ReadCandidates(q.Key, cands, b.vals); ok {
				b.vals = out
				v := b.vals[mark:len(b.vals):len(b.vals)]
				b.resps[lo+i] = proto.Response{Status: proto.StatusOK, Value: v}
				b.valBytes += len(v)
				b.b.Hits++
			} else {
				b.resps[lo+i] = proto.Response{Status: proto.StatusNotFound}
				b.b.Misses++
			}
		}
	})
	b.gets += units
	b.taskDone(task.KC, start, units)
}

// runScans performs SC for every SCAN in the batch as one batched range
// merge: the first scan captures a Scanner (one MVCC snapshot of every
// shard's ordered index) and every scan in the batch runs against it, so a
// batch observes a single key-set version. Result blocks are built directly
// in the value arena (same lifetime contract as the KC+RD values). Without a
// RangeScanner store — or with the ordered index disabled — every SCAN
// answers StatusError, keeping the never-cleared response arena sound.
func (r *LiveRunner) runScans(b *liveBatch) {
	start := r.taskStart()
	var sc LiveScanner
	scannerTried := false
	units := 0
	r.eachFrame(b, func(fi int, f *LiveFrame) {
		lo := int(b.frameOff[fi])
		for i := range f.Queries {
			q := &f.Queries[i]
			if q.Op != proto.OpScan {
				continue
			}
			units++
			b.keyBytes += len(q.Key)
			if r.wantProfile {
				b.wireBytes += proto.EncodedQueryLen(*q)
			}
			limit, end, err := proto.ParseScanArg(q.Value)
			if err != nil {
				b.resps[lo+i] = proto.Response{Status: proto.StatusError}
				continue
			}
			if !scannerTried {
				scannerTried = true
				if rs, ok := r.store.(RangeScanner); ok {
					sc = rs.NewScanner()
				}
			}
			if sc == nil {
				b.resps[lo+i] = proto.Response{Status: proto.StatusError}
				continue
			}
			blockStart := len(b.vals)
			dst, mark := proto.BeginScanResult(b.vals)
			entries := 0
			sc.Scan(q.Key, end, limit, func(k, v []byte) bool {
				dst = proto.AppendScanEntry(dst, k, v)
				entries++
				return len(dst)-blockStart < proto.MaxScanResultBytes
			})
			proto.FinishScanResult(dst, mark, entries)
			b.vals = dst
			block := b.vals[blockStart:len(b.vals):len(b.vals)]
			b.resps[lo+i] = proto.Response{Status: proto.StatusOK, Value: block}
			b.scanEntries += entries
			b.scanBytes += len(block)
		}
	})
	b.scans += units
	b.taskDone(task.SC, start, units)
}

// runRespond is WR: partition the response arena back to the frames.
func (r *LiveRunner) runRespond(b *liveBatch) {
	start := r.taskStart()
	r.eachFrame(b, func(fi int, f *LiveFrame) {
		lo, hi := b.frameRange(fi)
		f.Resps = b.resps[lo:hi:hi]
	})
	b.taskDone(task.WR, start, b.nq)
}

// complete delivers b's frames (the SD task), measures the batch profile,
// consults the provider, installs the returned (config, size) pair for
// future seals, and recycles the batch.
func (r *LiveRunner) complete(b *liveBatch) {
	if r.opts.LogBatch != nil {
		lgStart := r.taskStart()
		records, bytes := r.opts.LogBatch(b.frames)
		b.taskDone(task.LG, lgStart, records)
		b.lgBytes += int64(bytes)
	}
	sdStart := r.taskStart()
	if r.opts.DoneBatch != nil {
		r.opts.DoneBatch(b.frames)
	} else {
		for _, f := range b.frames {
			r.opts.Done(f)
		}
	}
	b.taskDone(task.SD, sdStart, len(b.frames))
	b.b.Wall = time.Since(b.sealedAt)

	r.batches.Inc()
	r.queries.Add(uint64(b.nq))
	if b.chunkedPhases > 0 {
		r.stealBatches.Inc()
		if b.stolenChunks > 0 {
			r.stolenChunks.Add(uint64(b.stolenChunks))
			r.stolenQs.Add(uint64(b.stolenQueries))
			// Live helpers are CPU workers: surface the realized rebalance
			// where the simulator's steal loop books it, so OnBatchDone
			// consumers (and the trace ring) see the same bookkeeping.
			b.b.Times.StolenByCPU += b.stolenQueries
		}
	}
	if r.wantProfile {
		for id := 0; id < task.NumTasks; id++ {
			if b.taskUnits[id] > 0 {
				r.taskHist[id].Observe(float64(b.taskNanos[id]) / float64(b.taskUnits[id]))
			}
		}
	}

	// The provider is consulted one batch at a time (it keeps state), and
	// the installed pair takes effect at the next seal — never on batches
	// already in flight.
	r.provMu.Lock()
	if r.wantProfile {
		r.buildProfile(b)
	}
	cfg, n := r.opts.Provider.NextConfig(&b.b)
	r.provMu.Unlock()
	if n < 1 {
		n = 1
	}
	r.mu.Lock()
	if cfg != r.cfg {
		r.reconfigs.Inc()
	}
	r.cfg, r.target = cfg, n
	r.mu.Unlock()

	if r.opts.OnBatchDone != nil {
		r.opts.OnBatchDone(&b.b)
	}
	for i := range b.frames {
		b.frames[i] = nil
	}
	for i := range b.getKeys {
		b.getKeys[i] = nil // key bytes belong to the delivered frames
	}
	r.pool.Put(b)
}

// buildProfile fills b.b.Profile with the workload characteristics measured
// while executing the batch — the live analogue of the simulated executor's
// runSemantics, feeding the same planner. Caller holds provMu (the eviction
// delta is stateful).
func (r *LiveRunner) buildProfile(b *liveBatch) {
	n := b.nq
	p := task.Profile{N: n, SearchProbes: cuckoo.SearchProbesTheoretical(2)}
	if n > 0 {
		p.GetRatio = float64(b.gets) / float64(n)
		p.ScanRatio = float64(b.scans) / float64(n)
	}
	if b.scans > 0 {
		p.ScanEntries = float64(b.scanEntries) / float64(b.scans)
	}
	if b.scanEntries > 0 {
		p.ScanEntryBytes = float64(b.scanBytes) / float64(b.scanEntries)
	}
	if ops := b.gets + b.sets + b.dels + b.scans; ops > 0 {
		p.KeySize = float64(b.keyBytes) / float64(ops)
	}
	if reads := b.b.Hits + b.sets; reads > 0 {
		p.ValueSize = float64(b.valBytes) / float64(reads)
	}
	// wireBytes was accumulated by the op loops (the queries live in frames
	// already recycled by the SD delivery above, so it cannot be recomputed
	// here); it covers only ops the stages visited, which is every query of
	// every healthy frame.
	if ops := b.gets + b.sets + b.dels + b.scans; ops > 0 {
		p.WireQueryBytes = float64(b.wireBytes) / float64(ops)
	}
	if b.taskUnits[task.RV] > 0 {
		p.RVUnitNanos = float64(b.taskNanos[task.RV]) / float64(b.taskUnits[task.RV])
	}
	if b.taskUnits[task.SD] > 0 && n > 0 {
		p.SDUnitNanos = float64(b.taskNanos[task.SD]) / float64(n)
	}
	if lg := b.taskUnits[task.LG]; lg > 0 && n > 0 {
		p.LGRecordsPerQuery = float64(lg) / float64(n)
		p.LGSeqBytes = float64(b.lgBytes) / float64(lg)
		p.LGUnitNanos = float64(b.taskNanos[task.LG]) / float64(lg)
	}
	if m, ok := r.store.(LiveStoreMetrics); ok {
		r.setsSinceMetrics += b.sets
		if r.metricsAt.IsZero() || time.Since(r.metricsAt) >= liveMetricsRefresh {
			live, evic, avgIns := m.LiveMetrics()
			r.cachedPop = live
			r.cachedAvgIns = avgIns
			if r.setsSinceMetrics > 0 && evic >= r.lastEvic {
				r.cachedEvicRate = float64(evic-r.lastEvic) / float64(r.setsSinceMetrics)
				if r.cachedEvicRate > 1 {
					r.cachedEvicRate = 1
				}
			}
			r.lastEvic = evic
			r.setsSinceMetrics = 0
			r.metricsAt = time.Now()
		}
		p.Population = r.cachedPop
		p.AvgInsertBuckets = r.cachedAvgIns
		p.EvictionRate = r.cachedEvicRate
	}
	if p.AvgInsertBuckets == 0 {
		p.AvgInsertBuckets = 2 // analytic floor before any insert was measured
	}
	if hk, ok := r.store.(HotKeyStats); ok {
		if hits, enabled := hk.HotStats(); enabled {
			// Batches overlap across stages, so the per-batch delta of the
			// cumulative counter is approximate; the profiler smooths it.
			delta := hits - r.lastHotHits
			r.lastHotHits = hits
			if b.gets > 0 {
				p.HotHitPortion = float64(delta) / float64(b.gets)
				if p.HotHitPortion > 1 {
					p.HotHitPortion = 1
				}
			}
		}
	}
	b.b.Profile = p
}

// Close seals whatever is pending, drains every in-flight batch through the
// stages (their frames are still delivered), and stops the workers. It must
// not race Submit: the server stops admitting and drains its frames first.
func (r *LiveRunner) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.drained
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.flushStop)
	<-r.flushDone
	r.mu.Lock()
	var sealed *liveBatch
	if r.pending != nil {
		if len(r.pending.frames) > 0 {
			sealed = r.sealLocked()
		} else {
			r.pool.Put(r.pending)
			r.pending = nil
		}
	}
	r.mu.Unlock()
	if sealed != nil {
		r.dispatch(sealed)
	}
	for si := 0; si < 3; si++ {
		close(r.ch[si])
		r.stageWG[si].Wait()
	}
	close(r.drained)
}

// LiveStats is a snapshot of the live runner's counters. Fields are each
// individually monotonic, not a consistent cut.
type LiveStats struct {
	// Batches and Queries count completed batches and the queries in them.
	Batches, Queries uint64
	// Panics counts frames poisoned inside a stage (contained per frame).
	Panics uint64
	// Reconfigs counts batch boundaries that installed a different config.
	Reconfigs uint64
	// SubmitShed counts frames rejected because every stage-1 slot was full.
	SubmitShed uint64
	// WideBatches counts KC+RD stage passes served by the wide batched path.
	WideBatches uint64
	// StealBatches counts batches that executed at least one phase as
	// claim-indexed chunks; StolenChunks/StolenQueries count the chunks (and
	// the queries inside them) actually executed by a non-owner worker.
	StealBatches, StolenChunks, StolenQueries uint64
	// Config and Target are the currently installed config and batch size.
	Config Config
	Target int
}

// Stats returns current counters.
func (r *LiveRunner) Stats() LiveStats {
	r.mu.Lock()
	cfg, target := r.cfg, r.target
	r.mu.Unlock()
	return LiveStats{
		Batches:       r.batches.Load(),
		Queries:       r.queries.Load(),
		Panics:        r.panics.Load(),
		Reconfigs:     r.reconfigs.Load(),
		SubmitShed:    r.shedFull.Load(),
		WideBatches:   r.wideBatches.Load(),
		StealBatches:  r.stealBatches.Load(),
		StolenChunks:  r.stolenChunks.Load(),
		StolenQueries: r.stolenQs.Load(),
		Config:        cfg,
		Target:        target,
	}
}

// WantsProfile reports whether the runner's provider consumes measured
// profiles; submitters may skip timing RV/PP (LiveFrame.ParseNanos) when it
// does not — two clock reads per frame nobody will read.
func (r *LiveRunner) WantsProfile() bool { return r.wantProfile }

// CurrentConfig returns the config that will be stamped into the next seal.
func (r *LiveRunner) CurrentConfig() Config {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg
}

// StageQuantiles returns, per stage, the given quantiles of per-batch wall
// time in microseconds (each stage's values from one consistent snapshot).
func (r *LiveRunner) StageQuantiles(qs ...float64) [3][]float64 {
	var out [3][]float64
	for si := 0; si < 3; si++ {
		out[si] = r.stageHist[si].Quantiles(qs...)
	}
	return out
}

// StageHistogram exposes the per-batch wall-time histogram of stage s (µs).
func (r *LiveRunner) StageHistogram(s Stage) *stats.Histogram { return r.stageHist[s] }

// TaskHistogram exposes the measured per-unit cost histogram of task id (ns
// per query for IN/KC/WR, ns per frame for SD).
func (r *LiveRunner) TaskHistogram(id task.ID) *stats.Histogram { return r.taskHist[id] }

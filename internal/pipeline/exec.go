package pipeline

import (
	"time"

	"repro/internal/apu"
	"repro/internal/cuckoo"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/store"
	"repro/internal/task"
)

// StageTimes is the priced execution of one batch under one configuration.
type StageTimes struct {
	// Dur is the execution time of each stage (zero for empty stages).
	Dur [3]time.Duration
	// Tmax is the longest stage, the pipeline's throughput bound (Eq 4).
	Tmax time.Duration
	// StolenByCPU / StolenByGPU count queries whose bottleneck-stage work was
	// executed by the other processor via work stealing.
	StolenByCPU, StolenByGPU int
	// CPUBusy / GPUBusy are the total busy times across stages per device
	// (used for utilization accounting).
	CPUBusy, GPUBusy time.Duration
}

// Batch is one unit of pipelined work. It carries its own Config so a
// reconfiguration never affects batches already in flight (§III-B1).
type Batch struct {
	Seq     uint64
	Queries []proto.Query
	Config  Config
	// Profile holds the workload characteristics measured while executing
	// this batch semantically.
	Profile task.Profile
	// Times holds the priced stage durations.
	Times StageTimes
	// Wall is the seal→completion wall latency measured by the live runner
	// (zero in the simulated path, which prices time instead of spending
	// it). Next to Times.Tmax it is what the reconfiguration trace reports
	// as "realized": Tmax is the bottleneck stage alone, Wall adds queueing
	// between stages and frame delivery.
	Wall time.Duration
	// Hits / Misses count GET outcomes (correctness accounting).
	Hits, Misses int
}

// Executor semantically executes batches against the real store and prices
// them on the APU timing model. It is the reproduction's ground truth — see
// DESIGN.md §2: DIDO's planner must NOT call this; it predicts with
// internal/costmodel instead.
type Executor struct {
	Model *apu.Model
	Store *store.Store
	Net   netsim.CostProfile
	// CPUCache simulates the CPU's last-level cache over key-value objects,
	// persisting across batches so skewed workloads keep their hot set
	// resident (§V-C "Impact of Key Popularity").
	CPUCache *apu.LRUCache
	// PCIe, when non-nil, models a discrete CPU-GPU architecture: every
	// batch with a GPU stage pays host→device (keys) and device→host
	// (locations) transfer time. Coupled architectures leave this nil —
	// eliminating exactly this cost is the APU's selling point (§I).
	PCIe *PCIeLink

	candBuf []cuckoo.Location
	valBuf  []byte
}

// PCIeLink models the discrete architecture's interconnect.
type PCIeLink struct {
	// Latency is the fixed per-transfer cost (DMA setup + doorbell).
	Latency time.Duration
	// BytesPerSec is the effective link bandwidth.
	BytesPerSec float64
}

// PCIeGen3x16 returns a typical PCIe 3.0 ×16 link as used by the Mega-KV
// testbed's GTX 780s.
func PCIeGen3x16() *PCIeLink {
	return &PCIeLink{Latency: 10 * time.Microsecond, BytesPerSec: 12e9}
}

// TransferTime returns the time to move the given payload across the link.
func (l *PCIeLink) TransferTime(bytes float64) time.Duration {
	if bytes <= 0 {
		return 0
	}
	return l.Latency + time.Duration(bytes/l.BytesPerSec*float64(time.Second))
}

// NewExecutor returns an executor over the given model, store and network
// cost profile.
func NewExecutor(m *apu.Model, s *store.Store, net netsim.CostProfile) *Executor {
	return &Executor{
		Model:    m,
		Store:    s,
		Net:      net,
		CPUCache: apu.NewLRUCache(m.Platform.CPU.CacheBytes),
	}
}

// ExecuteBatch runs b's queries against the store, fills in b.Profile from
// measured counters, and prices the stage times for b.Config.
func (e *Executor) ExecuteBatch(b *Batch) {
	e.runSemantics(b)
	e.price(b)
}

// runSemantics applies the batch to the real store, measuring the workload
// characteristics the demand model needs.
func (e *Executor) runSemantics(b *Batch) {
	cfg := b.Config
	objCacheOnCPU := cfg.StageOf(task.KC).Device() == apu.CPU ||
		cfg.StageOf(task.RD).Device() == apu.CPU
	e.CPUCache.ResetStats()

	var gets, sets, inserts, deletes, evictions int
	var scans, scanEntries, scanEntryBytes int
	var keyBytes, valBytes, wireBytes int
	before := e.Store.Index().StatsSnapshot()

	for _, q := range b.Queries {
		wireBytes += proto.EncodedQueryLen(q)
		keyBytes += len(q.Key)
		switch q.Op {
		case proto.OpGet:
			gets++
			// IN.Search → KC → RD, exactly the decomposed path.
			e.candBuf = e.Store.IndexSearch(q.Key, e.candBuf[:0])
			found := false
			for _, loc := range e.candBuf {
				if e.Store.KeyCompare(loc, q.Key) {
					// ReadValueInto copies under the slab seqlock into a
					// reusable buffer — the RD task's stable-copy contract.
					if v, ok := e.Store.ReadValueInto(loc, e.valBuf[:0]); ok {
						e.valBuf = v[:0]
						found = true
						valBytes += len(v)
						if objCacheOnCPU {
							e.CPUCache.Access(uint64(loc), int64(len(q.Key)+len(v)))
						}
					}
					break
				}
			}
			if found {
				b.Hits++
			} else {
				b.Misses++
			}
		case proto.OpSet:
			sets++
			valBytes += len(q.Value)
			ins, dels, err := e.Store.Set(q.Key, q.Value)
			if err != nil {
				continue
			}
			inserts += ins
			deletes += dels
			if dels > 0 {
				evictions += dels
			}
		case proto.OpDelete:
			deletes++
			e.Store.Delete(q.Key)
		case proto.OpScan:
			// SC: a batched range merge over the ordered index's MVCC
			// snapshot. Scans stream sequentially, so they bypass the
			// object-cache accounting the random-access point reads feed.
			scans++
			limit, end, err := proto.ParseScanArg(q.Value)
			if err != nil {
				continue
			}
			read := 0
			e.Store.Scan(q.Key, end, limit, func(k, v []byte) bool {
				scanEntries++
				read += len(k) + len(v)
				return read < proto.MaxScanResultBytes
			})
			scanEntryBytes += read
		}
	}

	after := e.Store.Index().StatsSnapshot()
	avgInsertBuckets := 2.0
	if dIns := after.Inserts - before.Inserts; dIns > 0 {
		// Derive the average accessed buckets for this batch's inserts from
		// the table's cumulative counters (§IV-B measures this online).
		totBefore := before.AvgInsertBuckets * float64(before.Inserts)
		totAfter := after.AvgInsertBuckets * float64(after.Inserts)
		avgInsertBuckets = (totAfter - totBefore) / float64(dIns)
	}

	n := len(b.Queries)
	p := task.Profile{
		N:                n,
		SearchProbes:     cuckoo.SearchProbesTheoretical(2),
		AvgInsertBuckets: avgInsertBuckets,
		RVInstr:          e.Net.InstrPerQueryRV,
		SDInstr:          e.Net.InstrPerQuerySD,
		RVUnitNanos:      float64(e.Net.RVPerQuery.Nanoseconds()),
		SDUnitNanos:      float64(e.Net.SDPerQuery.Nanoseconds()),
	}
	if n > 0 {
		p.GetRatio = float64(gets) / float64(n)
		p.ScanRatio = float64(scans) / float64(n)
		p.KeySize = float64(keyBytes) / float64(n)
		p.WireQueryBytes = float64(wireBytes) / float64(n)
	}
	if scans > 0 {
		p.ScanEntries = float64(scanEntries) / float64(scans)
	}
	if scanEntries > 0 {
		p.ScanEntryBytes = float64(scanEntryBytes) / float64(scanEntries)
	}
	if b.Hits+sets > 0 {
		// Misses carry no object; average over value-bearing queries.
		p.ValueSize = float64(valBytes) / float64(b.Hits+sets)
	}
	if sets > 0 {
		p.EvictionRate = float64(evictions) / float64(sets)
	}
	if objCacheOnCPU {
		p.CacheHitPortion = e.CPUCache.HitRate()
	}
	p.Population = uint64(e.Store.StatsSnapshot().LiveObjects)
	b.Profile = p
}

// price computes the stage times for b.Config given b.Profile, including
// CPU↔GPU interference (fixed point over shared-bandwidth demand) and work
// stealing.
func (e *Executor) price(b *Batch) {
	cfg := b.Config
	prof := b.Profile
	nCores := e.Model.Platform.CPU.Cores

	// Per-stage work items.
	type stageWork struct {
		works []apu.Work
		dev   apu.Kind
	}
	var stages [3]stageWork
	for s := StageCPUPre; s < numStages; s++ {
		sw := &stages[s]
		sw.dev = s.Device()
		for _, id := range cfg.Tasks(s) {
			d := task.ForTask(id, prof, cfg.Placement(id))
			if d.Queries == 0 {
				continue
			}
			w := apu.Work{
				N:                     d.Queries,
				InstrPerQuery:         d.Instr,
				MemAccessesPerQuery:   d.MemAccesses,
				CacheAccessesPerQuery: d.CacheAccesses,
				SeqBytesPerQuery:      d.SeqBytes,
				GPUSerialFrac:         d.GPUSerialFrac,
			}
			if sw.dev == apu.CPU {
				w.Parallelism = cfg.CoresFor(s, nCores)
			}
			sw.works = append(sw.works, w)
		}
	}

	// Interference fixed point (Eq 2's µ, busy-overlap weighted): each
	// device sees the other's *instantaneous* bandwidth — bytes over the
	// other's busy time, with GPU atomic/serialized traffic weighted extra
	// (AtomicInterferenceWeight) — scaled by the fraction of time the two
	// actually overlap in the pipelined steady state. This is what makes
	// GPU-resident update kernels poison co-running CPU stages (the paper's
	// §V-D1 observation behind flexible index assignment).
	var times StageTimes
	var base [3]time.Duration
	var intBytes [3]float64
	var gpuAtomics float64 // platform-atomic accesses issued by GPU stages
	for s := range stages {
		var sum time.Duration
		for _, w := range stages[s].works {
			sum += e.Model.TaskTime(stages[s].dev, w, 0)
			intBytes[s] += e.Model.BytesTouched(stages[s].dev, w)
			if stages[s].dev == apu.GPU && w.GPUSerialFrac > 0 {
				gpuAtomics += w.MemAccessesPerQuery * float64(w.N)
			}
		}
		base[s] = sum
		times.Dur[s] = sum
	}
	for iter := 0; iter < 3; iter++ {
		times.Tmax = maxDur(times.Dur[:])
		if times.Tmax <= 0 {
			break
		}
		gpuBusy := times.Dur[StageGPU]
		cpuBusy := times.Dur[StageCPUPre] + times.Dur[StageCPUPost]
		var gpuInstBW, cpuInstBW float64
		if gpuBusy > 0 {
			gpuInstBW = intBytes[StageGPU] / gpuBusy.Seconds()
		}
		if cpuBusy > 0 {
			cpuInstBW = (intBytes[StageCPUPre] + intBytes[StageCPUPost]) / cpuBusy.Seconds()
		}
		overlapOnCPU := clampFrac(float64(gpuBusy) / float64(times.Tmax))
		overlapOnGPU := clampFrac(float64(cpuBusy) / float64(times.Tmax))
		muCPU := 1 + (e.Model.Mu(apu.CPU, cpuInstBW, gpuInstBW)-1)*overlapOnCPU
		// hUMA platform atomics from GPU update kernels stall the CPU's
		// memory path via coherence transactions (§III-B2's atomics).
		muCPU += atomicDisruption(gpuAtomics, times.Tmax)
		muGPU := 1 + (e.Model.Mu(apu.GPU, gpuInstBW, cpuInstBW)-1)*overlapOnGPU
		times.Dur[StageCPUPre] = time.Duration(float64(base[StageCPUPre]) * muCPU)
		times.Dur[StageCPUPost] = time.Duration(float64(base[StageCPUPost]) * muCPU)
		times.Dur[StageGPU] = time.Duration(float64(base[StageGPU]) * muGPU)
	}

	// Discrete architectures pay PCIe transfers around the GPU stage: keys
	// and op codes go in, matched locations come back (Mega-KV's design).
	if e.PCIe != nil && times.Dur[StageGPU] > 0 {
		inBytes := float64(prof.N) * (prof.KeySize + 16)
		outBytes := float64(prof.N) * 8
		times.Dur[StageGPU] += e.PCIe.TransferTime(inBytes) + e.PCIe.TransferTime(outBytes)
	}

	if cfg.WorkStealing {
		e.steal(&times, cfg, prof)
	}

	times.Tmax = maxDur(times.Dur[:])
	times.CPUBusy = times.Dur[StageCPUPre] + times.Dur[StageCPUPost]
	times.GPUBusy = times.Dur[StageGPU]
	b.Times = times
}

// stealableOn reports whether task id's work can execute on helper device
// helperDev: NIC-bound tasks (RV, PP, SD) and memory management stay put;
// index ops and object reads can move either way (the paper's §III-B3
// mentions the GPU performing "tasks such as KC or RD on the stolen jobs");
// WR builds response packets in NIC-adjacent buffers and is only stealable
// by CPU helpers.
func stealableOn(id task.ID, helperDev apu.Kind) bool {
	switch id {
	case task.INSearch, task.INInsert, task.INDelete, task.KC, task.RD:
		return true
	case task.WR:
		return helperDev == apu.CPU
	default:
		return false
	}
}

// steal rebalances the bottleneck stage onto the other device at
// wavefront-chunk granularity (64 queries per claim, §III-B3), updating
// stage durations and stolen-query counts.
func (e *Executor) steal(times *StageTimes, cfg Config, prof task.Profile) {
	// Identify bottleneck stage and the helper device.
	bi := 0
	for s := 1; s < 3; s++ {
		if times.Dur[s] > times.Dur[bi] {
			bi = s
		}
	}
	bStage := Stage(bi)
	bDev := bStage.Device()
	helperDev := apu.CPU
	if bDev == apu.CPU {
		helperDev = apu.GPU
	}
	if cfg.GPUDepth == 0 {
		return // no GPU participation at all
	}

	// Helper readiness: the helper device is free after its own stages.
	var helperBusy time.Duration
	for s := StageCPUPre; s < numStages; s++ {
		if s.Device() == helperDev {
			helperBusy += times.Dur[s]
		}
	}
	if helperBusy >= times.Dur[bStage] {
		return // no idle time to exploit
	}

	// Split the bottleneck stage into stealable and pinned portions and
	// price the stealable tasks on both devices.
	var stealOwn, pinned time.Duration
	var stealHelper time.Duration
	var stealQueries int
	nCores := e.Model.Platform.CPU.Cores
	for _, id := range cfg.Tasks(bStage) {
		d := task.ForTask(id, prof, cfg.Placement(id))
		if d.Queries == 0 {
			continue
		}
		w := apu.Work{
			N:                     d.Queries,
			InstrPerQuery:         d.Instr,
			MemAccessesPerQuery:   d.MemAccesses,
			CacheAccessesPerQuery: d.CacheAccesses,
			SeqBytesPerQuery:      d.SeqBytes,
			GPUSerialFrac:         d.GPUSerialFrac,
		}
		if bDev == apu.CPU {
			w.Parallelism = cfg.CoresFor(bStage, nCores)
		}
		own := e.Model.TaskTime(bDev, w, 0)
		if !stealableOn(id, helperDev) {
			pinned += own
			continue
		}
		stealOwn += own
		wh := w
		if helperDev == apu.CPU {
			// The helper CPU stage's cores do the stealing.
			helperStage := StageCPUPost
			if times.Dur[StageCPUPre] < times.Dur[StageCPUPost] {
				helperStage = StageCPUPre
			}
			wh.Parallelism = cfg.CoresFor(helperStage, nCores)
		} else {
			wh.Parallelism = 0
		}
		stealHelper += e.Model.TaskTime(helperDev, wh, 0)
		// stealQueries is the stage's stealable query SPAN — the widest
		// task's query count — not a per-task sum. A stolen chunk is a
		// vertical slice: 64 query slots taking ALL the stage's stealable
		// task work for those slots with them (KC and RD cover the same
		// GETs; summing per task would double-count every shared query).
		// Eq 3's closed form prices exactly this divisible load: per-chunk
		// cost below is total stealable time / chunk count over the span,
		// and StolenBy* counts moved query slots, clamped to the span.
		if d.Queries > stealQueries {
			stealQueries = d.Queries
		}
	}
	if stealQueries == 0 || stealOwn <= 0 {
		return
	}

	// Chunk-granular co-processing: both devices claim 64-query chunks.
	chunks := (stealQueries + gpu.WavefrontWidth - 1) / gpu.WavefrontWidth
	perChunkOwn := stealOwn / time.Duration(chunks)
	perChunkHelper := stealHelper / time.Duration(chunks)
	tOwn := pinned // bottleneck device works through pinned tasks too
	tHelper := helperBusy
	ownChunks, helperChunks := 0, 0
	for c := 0; c < chunks; c++ {
		if tOwn+perChunkOwn <= tHelper+perChunkHelper {
			tOwn += perChunkOwn
			ownChunks++
		} else {
			tHelper += perChunkHelper
			helperChunks++
		}
	}
	newBottleneck := tOwn
	if helperChunks == 0 {
		return
	}
	stolen := helperChunks * gpu.WavefrontWidth
	if stolen > stealQueries {
		stolen = stealQueries
	}
	times.Dur[bStage] = newBottleneck
	// Helper's busiest stage absorbs the stolen time.
	for s := StageCPUPre; s < numStages; s++ {
		if s.Device() == helperDev {
			times.Dur[s] += tHelper - helperBusy
			break
		}
	}
	if helperDev == apu.CPU {
		times.StolenByCPU += stolen
	} else {
		times.StolenByGPU += stolen
	}
}

// AtomicDisruptionNanos is the CPU memory-path stall caused by one GPU
// platform atomic (the hUMA coherence transaction each compare-exchange
// triggers). GPU-resident Insert/Delete kernels therefore poison co-running
// CPU stages out of proportion to their bandwidth — the effect behind the
// paper's flexible index-operation assignment (§V-D1).
const AtomicDisruptionNanos = 150.0

// atomicDisruption converts a batch's GPU atomic count into the additive
// µ term for CPU stages, capped to keep the fixed point stable.
func atomicDisruption(atomics float64, tmax time.Duration) float64 {
	if atomics <= 0 || tmax <= 0 {
		return 0
	}
	rate := atomics / tmax.Seconds()
	// The GPU's own CAS serialization (~320ns per atomic) bounds how fast it
	// can issue platform atomics, which in turn bounds the damage to the CPU.
	const maxAtomicRate = 3.1e6
	if rate > maxAtomicRate {
		rate = maxAtomicRate
	}
	return rate * AtomicDisruptionNanos * 1e-9
}

func clampFrac(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxDur(ds []time.Duration) time.Duration {
	var m time.Duration
	for _, d := range ds {
		if d > m {
			m = d
		}
	}
	return m
}

package pipeline

import (
	"sync"
	"testing"
	"time"
)

// TestLiveIdleSealBusyWorkerCoalesces is the regression test for the stage-1
// idle-detection race: the old code marked the worker busy only after
// <-r.ch[0] returned, so between the dequeue and the busy-flag increment both
// Submit and trySealIdle observed len(ch[0])==0 && busy==0 and sealed
// degenerate one-frame batches while the worker was actually executing. The
// testStage1Dequeued hook parks the worker exactly in that historical window;
// with seal-time inflight accounting the frames submitted during the window
// must coalesce into ONE follow-up batch (2 batches total). Under the old
// dequeue-then-mark accounting this test fails with 3 batches, because the
// first frame submitted during the window seals alone.
func TestLiveIdleSealBusyWorkerCoalesces(t *testing.T) {
	st := newFakeLiveStore()
	st.m["k"] = []byte("v")
	done := make(chan *LiveFrame, 8)
	r := NewLiveRunner(st, LiveOptions{
		Provider:      &fixedProvider{cfg: MegaKV(), n: 1 << 20}, // size never seals
		BatchInterval: time.Hour,                                 // the tick never seals
		Done:          func(f *LiveFrame) { done <- f },
	})
	defer r.Close()

	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	// Set before any Submit: the worker reads the hook only after receiving a
	// batch, and the channel send/recv orders that read after this write.
	r.testStage1Dequeued = func() {
		entered <- struct{}{}
		<-release
	}

	f1 := getFrame("k")
	if !r.Submit(f1) {
		t.Fatal("Submit f1 rejected")
	}
	select {
	case <-entered: // worker dequeued f1's batch and is "busy" pre-mark
	case <-time.After(5 * time.Second):
		t.Fatal("stage-1 worker never dequeued the first batch")
	}

	// The race window: queue empty, worker busy but (in the old code) not yet
	// marked. These must accumulate, not seal as one-frame batches.
	f2, f3 := getFrame("k"), getFrame("k")
	if !r.Submit(f2) || !r.Submit(f3) {
		t.Fatal("Submit f2/f3 rejected")
	}
	close(release)

	collectFrames(t, done, 3)
	r.Close() // settle counters
	if s := r.Stats(); s.Batches != 2 {
		t.Fatalf("Batches = %d, want 2 ({f1} then coalesced {f2,f3}); "+
			"3 means the idle-detection race sealed a degenerate singleton", s.Batches)
	}
}

// TestLiveTrySealIdleRevertClearsStamps pins trySealIdle's revert path: when
// the sealed batch loses its queue slot, the revert must restore a batch
// indistinguishable from never-sealed — seq rolled back (numbers stay dense),
// inflight rolled back, and the Seq/Config/lastStage/sealedAt stamps cleared
// so the eventual real seal restamps them and Batch.Wall is measured from the
// FINAL seal, not the aborted one. Under seal-time inflight accounting the
// lost-slot condition cannot arise naturally (inflight==0 implies the queue
// is empty), so the test manufactures it white-box: two uncounted batches
// occupy the worker and the cap-1 queue while inflight reads zero.
func TestLiveTrySealIdleRevertClearsStamps(t *testing.T) {
	st := newFakeLiveStore()
	st.m["k"] = []byte("v")
	done := make(chan *LiveFrame, 8)
	var obMu sync.Mutex
	var obs []Batch
	r := NewLiveRunner(st, LiveOptions{
		Provider:      &fixedProvider{cfg: MegaKV(), n: 1 << 20},
		BatchInterval: time.Hour,
		MaxPending:    1, // cap-1 stage-1 queue: one injected batch fills it
		Done:          func(f *LiveFrame) { done <- f },
		OnBatchDone: func(b *Batch) {
			obMu.Lock()
			obs = append(obs, *b)
			obMu.Unlock()
		},
	})
	defer r.Close()

	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	r.testStage1Dequeued = func() {
		entered <- struct{}{}
		<-release
	}

	// Two dummy batches injected around sealLocked, so stage1Inflight stays 0
	// (the manufactured inconsistency): the first parks the worker in the
	// hook, the second keeps the queue full.
	inject := func(key string) {
		b := r.pool.Get().(*liveBatch)
		b.reset()
		f := getFrame(key)
		b.frameOff = append(b.frameOff, 0)
		b.frames = append(b.frames, f)
		b.nq = len(f.Queries)
		b.firstAt = time.Now()
		r.ch[0] <- b
	}
	inject("k")
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up the injected batch")
	}
	inject("k") // queue now full, worker busy, inflight still 0

	// Build the pending batch by hand (Submit would try to dispatch and block
	// on the full queue).
	r.mu.Lock()
	pb := r.pool.Get().(*liveBatch)
	pb.reset()
	pf := getFrame("k")
	pb.frameOff = append(pb.frameOff, 0)
	pb.frames = append(pb.frames, pf)
	pb.nq = len(pf.Queries)
	pb.firstAt = time.Now()
	r.pending = pb
	seq0 := r.seq
	r.mu.Unlock()

	r.trySealIdle() // seals, loses the slot to the full queue, must revert

	r.mu.Lock()
	if r.pending != pb {
		t.Fatal("revert did not restore the pending batch")
	}
	if r.seq != seq0 {
		t.Fatalf("seq = %d after revert, want %d (numbers stay dense)", r.seq, seq0)
	}
	if pb.b.Seq != 0 || pb.b.Config != (Config{}) || pb.lastStage != 0 || !pb.sealedAt.IsZero() {
		t.Fatalf("revert left stamps: Seq=%d Config=%v lastStage=%d sealedAt=%v",
			pb.b.Seq, pb.b.Config, pb.lastStage, pb.sealedAt)
	}
	if got := r.stage1Inflight.Load(); got != 0 {
		t.Fatalf("stage1Inflight = %d after revert, want 0", got)
	}
	r.mu.Unlock()

	// A real seal only happens after the dummies drain; if Wall were measured
	// from the aborted seal it would include this whole gap.
	const gap = 60 * time.Millisecond
	time.Sleep(gap)

	// Pre-compensate the two decrements the uncounted dummies will cause when
	// they leave stage 1, then let everything drain: the worker's post-batch
	// trySealIdle re-seals the reverted batch for real.
	r.stage1Inflight.Add(2)
	close(release)
	collectFrames(t, done, 3)

	// One more normal submit: its batch must take the next dense seq.
	f2 := getFrame("k")
	if !r.Submit(f2) {
		t.Fatal("Submit f2 rejected")
	}
	collectFrames(t, done, 1)
	r.Close()

	// The injected dummies were never sealed, so only properly sealed batches
	// carry a non-zero Config; their seq numbers must be dense from seq0.
	obMu.Lock()
	defer obMu.Unlock()
	var sealed []Batch
	for _, b := range obs {
		if b.Config != (Config{}) {
			sealed = append(sealed, b)
		}
	}
	if len(sealed) != 2 {
		t.Fatalf("sealed batches observed = %d, want 2", len(sealed))
	}
	for i, b := range sealed {
		if b.Seq != seq0+uint64(i) {
			t.Fatalf("sealed batch %d has Seq %d, want %d (dense after revert)", i, b.Seq, seq0+uint64(i))
		}
	}
	if sealed[0].Wall >= gap {
		t.Fatalf("Wall = %v, want < %v: Wall must be measured from the final seal, not the aborted one", sealed[0].Wall, gap)
	}
}

package pipeline

import (
	"sync"
	"testing"
	"time"

	"repro/internal/apu"
	"repro/internal/cuckoo"
	"repro/internal/proto"
)

// fakeLiveStore is a map-backed LiveStore for runner tests. Search returns no
// candidates (ReadCandidates resolves everything), which is exactly the
// degenerate contract the server uses for non-*Store backends. A key listed
// in panicOn panics on read; a non-nil gate blocks reads of gateKey until the
// gate closes, letting tests hold a batch in a stage.
type fakeLiveStore struct {
	mu      sync.Mutex
	m       map[string][]byte
	panicOn string
	gateKey string
	gate    chan struct{}
}

func newFakeLiveStore() *fakeLiveStore {
	return &fakeLiveStore{m: make(map[string][]byte)}
}

func (f *fakeLiveStore) Search(_ []byte, dst []cuckoo.Location) []cuckoo.Location { return dst }

func (f *fakeLiveStore) ReadCandidates(key []byte, _ []cuckoo.Location, dst []byte) ([]byte, bool) {
	if f.panicOn != "" && string(key) == f.panicOn {
		panic("poisoned key")
	}
	if f.gate != nil && string(key) == f.gateKey {
		<-f.gate
	}
	f.mu.Lock()
	v, ok := f.m[string(key)]
	f.mu.Unlock()
	if !ok {
		return dst, false
	}
	return append(dst, v...), true
}

func (f *fakeLiveStore) Set(key, value []byte) error {
	if f.gate != nil && string(key) == f.gateKey {
		<-f.gate
	}
	f.mu.Lock()
	f.m[string(key)] = append([]byte(nil), value...)
	f.mu.Unlock()
	return nil
}

func (f *fakeLiveStore) Delete(key []byte) bool {
	f.mu.Lock()
	_, ok := f.m[string(key)]
	delete(f.m, string(key))
	f.mu.Unlock()
	return ok
}

// fixedProvider always hands out the same (config, size) pair.
type fixedProvider struct {
	cfg Config
	n   int
}

func (p *fixedProvider) NextConfig(*Batch) (Config, int) { return p.cfg, p.n }

// flipProvider returns before until the first completed batch is observed,
// then after — a minimal online-reconfiguration script.
type flipProvider struct {
	before, after Config
	n             int
	flipped       bool
}

func (p *flipProvider) NextConfig(prev *Batch) (Config, int) {
	if prev != nil {
		p.flipped = true
	}
	if p.flipped {
		return p.after, p.n
	}
	return p.before, p.n
}

// cpuInsertMegaKV keeps Mega-KV's shape but assigns IN(Insert) to stage 1, so
// a gated SET (fakeLiveStore.gateKey) can hold the first stage busy while a
// test lines up the batches it wants.
func cpuInsertMegaKV() Config {
	c := MegaKV()
	c.InsertOn = apu.CPU
	return c
}

func setFrame(key, val string) *LiveFrame {
	return &LiveFrame{Queries: []proto.Query{
		{Op: proto.OpSet, Key: []byte(key), Value: []byte(val)},
	}}
}

func getFrame(keys ...string) *LiveFrame {
	f := &LiveFrame{}
	for _, k := range keys {
		f.Queries = append(f.Queries, proto.Query{Op: proto.OpGet, Key: []byte(k)})
	}
	return f
}

func collectFrames(t *testing.T, done chan *LiveFrame, n int) []*LiveFrame {
	t.Helper()
	out := make([]*LiveFrame, 0, n)
	for len(out) < n {
		select {
		case f := <-done:
			out = append(out, f)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for frame %d/%d", len(out)+1, n)
		}
	}
	return out
}

func TestLiveRunnerBasic(t *testing.T) {
	st := newFakeLiveStore()
	st.m["k1"] = []byte("v1")
	done := make(chan *LiveFrame, 16)
	r := NewLiveRunner(st, LiveOptions{
		Provider:      &fixedProvider{cfg: MegaKV(), n: 4},
		BatchInterval: time.Millisecond,
		Done:          func(f *LiveFrame) { done <- f },
	})
	defer r.Close()

	f1 := getFrame("k1", "absent")
	f2 := &LiveFrame{Queries: []proto.Query{
		{Op: proto.OpSet, Key: []byte("k2"), Value: []byte("v2")},
		{Op: proto.OpDelete, Key: []byte("nope")},
	}}
	if !r.Submit(f1) || !r.Submit(f2) {
		t.Fatal("Submit rejected while open")
	}
	collectFrames(t, done, 2)

	if f1.Err || f2.Err {
		t.Fatalf("unexpected frame errors: %v %v", f1.Err, f2.Err)
	}
	if got := f1.Resps[0]; got.Status != proto.StatusOK || string(got.Value) != "v1" {
		t.Fatalf("GET k1 = %+v, want OK v1", got)
	}
	if f1.Resps[1].Status != proto.StatusNotFound {
		t.Fatalf("GET absent = %+v, want NotFound", f1.Resps[1])
	}
	if f2.Resps[0].Status != proto.StatusOK {
		t.Fatalf("SET k2 = %+v, want OK", f2.Resps[0])
	}
	if f2.Resps[1].Status != proto.StatusNotFound {
		t.Fatalf("DELETE nope = %+v, want NotFound", f2.Resps[1])
	}
	if _, ok := st.m["k2"]; !ok {
		t.Fatal("SET k2 not applied to the store")
	}
	r.Close() // settle the counters: complete() increments after delivery
	s := r.Stats()
	// An idle pipeline seals each frame immediately (adaptive batching), so
	// the two frames execute as two batches.
	if s.Batches != 2 || s.Queries != 4 {
		t.Fatalf("Stats = %+v, want 2 batches / 4 queries", s)
	}
}

// TestLiveRunnerIdleSeal: a lone frame on an idle pipeline is sealed and
// executed immediately — batching only pays while the pipeline is busy, so
// neither the unreachable size target nor the (here: one hour) flush tick may
// delay it.
func TestLiveRunnerIdleSeal(t *testing.T) {
	st := newFakeLiveStore()
	st.m["k"] = []byte("v")
	done := make(chan *LiveFrame, 1)
	r := NewLiveRunner(st, LiveOptions{
		Provider:      &fixedProvider{cfg: MegaKV(), n: 1 << 20}, // never fills
		BatchInterval: time.Hour,                                 // the tick will not help
		Done:          func(f *LiveFrame) { done <- f },
	})
	defer r.Close()

	f := getFrame("k")
	if !r.Submit(f) {
		t.Fatal("Submit rejected")
	}
	collectFrames(t, done, 1)
	if f.Resps[0].Status != proto.StatusOK {
		t.Fatalf("GET = %+v, want OK", f.Resps[0])
	}
}

// TestLiveRunnerFlushInterval: with stage 1 held busy the idle-seal path is
// unavailable, so a sub-target pending batch must be sealed by the flush
// tick — observed as the next submitted frame opening a batch of its own.
func TestLiveRunnerFlushInterval(t *testing.T) {
	st := newFakeLiveStore()
	st.m["k"] = []byte("v")
	st.gateKey = "hold"
	st.gate = make(chan struct{})
	done := make(chan *LiveFrame, 4)
	r := NewLiveRunner(st, LiveOptions{
		Provider:      &fixedProvider{cfg: cpuInsertMegaKV(), n: 1 << 20},
		BatchInterval: 2 * time.Millisecond,
		Done:          func(f *LiveFrame) { done <- f },
	})
	defer r.Close()

	if !r.Submit(setFrame("hold", "x")) {
		t.Fatal("Submit hold rejected")
	}
	time.Sleep(time.Millisecond) // let the stage-1 worker park on the gate
	f := getFrame("k")
	if !r.Submit(f) { // stage 1 busy: f stays pending, only the tick seals it
		t.Fatal("Submit rejected")
	}
	time.Sleep(20 * time.Millisecond) // several ticks: the flusher seals f
	g := getFrame("k")
	if !r.Submit(g) {
		t.Fatal("Submit rejected")
	}
	close(st.gate)
	collectFrames(t, done, 3)
	if f.Resps[0].Status != proto.StatusOK || g.Resps[0].Status != proto.StatusOK {
		t.Fatalf("GETs = %+v / %+v, want OK", f.Resps[0], g.Resps[0])
	}
	r.Close()
	// hold, f and g each completed as their own batch: had the tick not
	// sealed f while the stage was busy, f and g would have shared one.
	if s := r.Stats(); s.Batches != 3 {
		t.Fatalf("Batches = %d, want 3", s.Batches)
	}
}

// TestLiveRunnerBatchBoundaryReconfig is the ISSUE's reconfiguration test: a
// new config installed at a batch boundary applies only to batches sealed
// afterwards — batches already in flight complete under the config they were
// sealed with (§III-B1).
func TestLiveRunnerBatchBoundaryReconfig(t *testing.T) {
	c0 := MegaKV()
	c1 := Config{GPUDepth: 0} // pure-CPU single stage: clearly distinct

	st := newFakeLiveStore()
	st.m["gated"] = []byte("g")
	st.m["plain"] = []byte("p")
	st.gateKey = "gated"
	st.gate = make(chan struct{})

	var mu sync.Mutex
	var seen []Config
	done := make(chan *LiveFrame, 16)
	r := NewLiveRunner(st, LiveOptions{
		Provider:      &flipProvider{before: c0, after: c1, n: 1},
		BatchInterval: time.Hour, // seal by size only: deterministic batches
		Done:          func(f *LiveFrame) { done <- f },
		OnBatchDone: func(b *Batch) {
			mu.Lock()
			seen = append(seen, b.Config)
			mu.Unlock()
		},
	})
	defer r.Close()

	// Batch A seals under c0 and parks in a stage on the gated read. Batch B
	// then seals, also under c0 — the flip to c1 only happens once A
	// completes, by which time B is already in flight.
	if !r.Submit(getFrame("gated")) {
		t.Fatal("Submit A rejected")
	}
	if !r.Submit(getFrame("plain")) {
		t.Fatal("Submit B rejected")
	}
	close(st.gate)
	collectFrames(t, done, 2)

	// Batch C seals after the flip and must carry c1.
	if !r.Submit(getFrame("plain")) {
		t.Fatal("Submit C rejected")
	}
	collectFrames(t, done, 1)
	r.Close() // settle OnBatchDone/counters: complete() runs after delivery

	mu.Lock()
	got := append([]Config(nil), seen...)
	mu.Unlock()
	want := []Config{c0, c0, c1}
	if len(got) != len(want) {
		t.Fatalf("completed %d batches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch %d completed under %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if s := r.Stats(); s.Reconfigs != 1 {
		t.Fatalf("Reconfigs = %d, want exactly 1", s.Reconfigs)
	}
	if cfg := r.CurrentConfig(); cfg != c1 {
		t.Fatalf("CurrentConfig = %v, want %v", cfg, c1)
	}
}

// TestLiveRunnerPanicContainment proves batching does not widen the blast
// radius of a poisoned query: the panicking frame is marked Err, its
// batchmates are answered normally.
func TestLiveRunnerPanicContainment(t *testing.T) {
	st := newFakeLiveStore()
	st.m["good"] = []byte("ok")
	st.panicOn = "boom"
	st.gateKey = "hold"
	st.gate = make(chan struct{})
	done := make(chan *LiveFrame, 4)
	r := NewLiveRunner(st, LiveOptions{
		Provider:      &fixedProvider{cfg: cpuInsertMegaKV(), n: 2},
		BatchInterval: time.Hour,
		Done:          func(f *LiveFrame) { done <- f },
	})
	defer r.Close()

	// Hold stage 1 on a gated SET so the two frames below are guaranteed to
	// accumulate into one shared batch (sealed at the size target of 2).
	if !r.Submit(setFrame("hold", "x")) {
		t.Fatal("Submit hold rejected")
	}
	time.Sleep(time.Millisecond) // let the stage-1 worker park on the gate
	bad := getFrame("boom")
	good := getFrame("good")
	if !r.Submit(bad) || !r.Submit(good) {
		t.Fatal("Submit rejected")
	}
	close(st.gate)
	collectFrames(t, done, 3)

	if !bad.Err {
		t.Fatal("poisoned frame not marked Err")
	}
	if good.Err {
		t.Fatal("healthy batchmate marked Err")
	}
	if good.Resps[0].Status != proto.StatusOK || string(good.Resps[0].Value) != "ok" {
		t.Fatalf("batchmate GET = %+v, want OK", good.Resps[0])
	}
	if s := r.Stats(); s.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", s.Panics)
	}
}

// TestLiveRunnerCloseDrains checks Close seals and executes the pending
// partial batch rather than dropping its frames.
func TestLiveRunnerCloseDrains(t *testing.T) {
	st := newFakeLiveStore()
	st.m["k"] = []byte("v")
	st.gateKey = "hold"
	st.gate = make(chan struct{})
	done := make(chan *LiveFrame, 4)
	r := NewLiveRunner(st, LiveOptions{
		Provider:      &fixedProvider{cfg: cpuInsertMegaKV(), n: 1 << 20},
		BatchInterval: time.Hour, // the flusher will not help; Close must
		Done:          func(f *LiveFrame) { done <- f },
	})
	// Park stage 1 on a gated SET so f below is still pending when Close
	// runs (an idle pipeline would seal it immediately).
	if !r.Submit(setFrame("hold", "x")) {
		t.Fatal("Submit hold rejected")
	}
	time.Sleep(time.Millisecond) // let the stage-1 worker park on the gate
	f := getFrame("k")
	if !r.Submit(f) {
		t.Fatal("Submit rejected")
	}
	time.AfterFunc(50*time.Millisecond, func() { close(st.gate) })
	r.Close()
	if got := len(done); got != 2 {
		t.Fatalf("Close returned with %d/2 frames delivered", got)
	}
	if f.Resps[0].Status != proto.StatusOK {
		t.Fatalf("GET after Close = %+v, want OK", f.Resps[0])
	}
	if r.Submit(getFrame("k")) {
		t.Fatal("Submit accepted after Close")
	}
}

// TestLiveRunnerProfileMeasured checks completed batches carry a measured
// workload profile (the adaptation loop's input).
func TestLiveRunnerProfileMeasured(t *testing.T) {
	st := newFakeLiveStore()
	st.m["aa"] = []byte("vvvv")
	var mu sync.Mutex
	var prof *Batch
	done := make(chan *LiveFrame, 4)
	r := NewLiveRunner(st, LiveOptions{
		Provider:      &fixedProvider{cfg: MegaKV(), n: 4},
		BatchInterval: time.Hour,
		Done:          func(f *LiveFrame) { done <- f },
		OnBatchDone: func(b *Batch) {
			mu.Lock()
			cp := *b
			prof = &cp
			mu.Unlock()
		},
	})
	defer r.Close()

	f := &LiveFrame{
		Queries: []proto.Query{
			{Op: proto.OpGet, Key: []byte("aa")},
			{Op: proto.OpGet, Key: []byte("aa")},
			{Op: proto.OpGet, Key: []byte("zz")},
			{Op: proto.OpSet, Key: []byte("bb"), Value: []byte("vvvv")},
		},
		ParseNanos: 1000,
	}
	if !r.Submit(f) {
		t.Fatal("Submit rejected")
	}
	collectFrames(t, done, 1)
	r.Close() // settle OnBatchDone: complete() runs it after delivery

	mu.Lock()
	defer mu.Unlock()
	if prof == nil {
		t.Fatal("OnBatchDone never ran")
	}
	p := prof.Profile
	if p.N != 4 {
		t.Fatalf("Profile.N = %d, want 4", p.N)
	}
	if p.GetRatio != 0.75 {
		t.Fatalf("Profile.GetRatio = %v, want 0.75", p.GetRatio)
	}
	if p.KeySize != 2 {
		t.Fatalf("Profile.KeySize = %v, want 2", p.KeySize)
	}
	if p.ValueSize != 4 {
		t.Fatalf("Profile.ValueSize = %v, want 4 (hits+sets averaged)", p.ValueSize)
	}
	if p.RVUnitNanos != 250 {
		t.Fatalf("Profile.RVUnitNanos = %v, want 1000ns/4 queries", p.RVUnitNanos)
	}
	if prof.Hits != 2 || prof.Misses != 1 {
		t.Fatalf("Hits/Misses = %d/%d, want 2/1", prof.Hits, prof.Misses)
	}
	if p.SDUnitNanos <= 0 {
		t.Fatalf("Profile.SDUnitNanos = %v, want measured > 0", p.SDUnitNanos)
	}
}

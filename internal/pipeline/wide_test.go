package pipeline

import (
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/cuckoo"
	"repro/internal/proto"
)

// fakeWideStore extends the map-backed fake with the BatchReadStore surface,
// counting which path served each operation so tests can assert the runner's
// wide/scalar routing decisions.
type fakeWideStore struct {
	*fakeLiveStore
	searchBatches  atomic.Int32
	readBatches    atomic.Int32
	getBatches     atomic.Int32
	scalarReads    atomic.Int32
	panicWideReads bool // batched read paths panic (tests the scalar rerun)
}

func newFakeWideStore() *fakeWideStore {
	return &fakeWideStore{fakeLiveStore: newFakeLiveStore()}
}

func (f *fakeWideStore) ReadCandidates(key []byte, cands []cuckoo.Location, dst []byte) ([]byte, bool) {
	f.scalarReads.Add(1)
	return f.fakeLiveStore.ReadCandidates(key, cands, dst)
}

// SearchBatch mirrors the scalar fake's degenerate Search: no candidates, the
// read stage resolves everything.
func (f *fakeWideStore) SearchBatch(keys [][]byte, dst []cuckoo.Location, lo, hi []int32) []cuckoo.Location {
	f.searchBatches.Add(1)
	for i := range keys {
		lo[i], hi[i] = int32(len(dst)), int32(len(dst))
	}
	return dst
}

func (f *fakeWideStore) lookupBatch(keys [][]byte, vals []byte, vlo, vhi []int32) ([]byte, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	hits := 0
	for i, k := range keys {
		v, ok := f.m[string(k)]
		if !ok {
			vlo[i], vhi[i] = -1, -1
			continue
		}
		vlo[i] = int32(len(vals))
		vals = append(vals, v...)
		vhi[i] = int32(len(vals))
		hits++
	}
	return vals, hits
}

func (f *fakeWideStore) ReadCandidatesBatch(keys [][]byte, _ []cuckoo.Location, _, _ []int32, vals []byte, vlo, vhi []int32) ([]byte, int) {
	if f.panicWideReads {
		panic("wide read poisoned")
	}
	f.readBatches.Add(1)
	return f.lookupBatch(keys, vals, vlo, vhi)
}

func (f *fakeWideStore) GetBatch(keys [][]byte, vals []byte, vlo, vhi []int32) ([]byte, int) {
	if f.panicWideReads {
		panic("wide read poisoned")
	}
	f.getBatches.Add(1)
	return f.lookupBatch(keys, vals, vlo, vhi)
}

// wideGetFrame builds one frame with n GET queries over the key space.
func wideGetFrame(n int) *LiveFrame {
	f := &LiveFrame{}
	for i := 0; i < n; i++ {
		f.Queries = append(f.Queries, proto.Query{Op: proto.OpGet, Key: []byte(fmt.Sprintf("k%03d", i%40))})
	}
	return f
}

func runWideBatch(t *testing.T, st LiveStore, cfg Config, wideMin, ngets int) (*LiveRunner, []*LiveFrame) {
	t.Helper()
	done := make(chan *LiveFrame, 8)
	r := NewLiveRunner(st, LiveOptions{
		Provider:    &fixedProvider{cfg: cfg, n: 1},
		WideMinGets: wideMin,
		Done:        func(f *LiveFrame) { done <- f },
	})
	r.Submit(wideGetFrame(ngets))
	frames := collectFrames(t, done, 1)
	r.Close()
	return r, frames
}

// TestLiveWideReadPath: with a separate search stage (MegaKV) the wide path
// must serve a large-enough batch through SearchBatch + ReadCandidatesBatch —
// zero scalar reads — and produce exactly the scalar path's responses.
func TestLiveWideReadPath(t *testing.T) {
	st := newFakeWideStore()
	for i := 0; i < 40; i += 2 { // even keys present, odd keys miss
		st.m[fmt.Sprintf("k%03d", i)] = []byte(fmt.Sprintf("v%03d", i))
	}
	r, frames := runWideBatch(t, st, MegaKV(), 1, 64)
	if st.searchBatches.Load() == 0 || st.readBatches.Load() == 0 {
		t.Fatalf("wide path not engaged: searchBatches=%d readBatches=%d",
			st.searchBatches.Load(), st.readBatches.Load())
	}
	if st.scalarReads.Load() != 0 {
		t.Fatalf("scalar reads = %d, want 0 (wide path should cover the batch)", st.scalarReads.Load())
	}
	if got := r.Stats().WideBatches; got == 0 {
		t.Fatalf("Stats().WideBatches = %d, want > 0", got)
	}
	f := frames[0]
	if len(f.Resps) != 64 {
		t.Fatalf("resps = %d, want 64", len(f.Resps))
	}
	for i, resp := range f.Resps {
		k := i % 40
		if k%2 == 0 {
			want := fmt.Sprintf("v%03d", k)
			if resp.Status != proto.StatusOK || string(resp.Value) != want {
				t.Fatalf("resp %d = %v %q, want OK %q", i, resp.Status, resp.Value, want)
			}
		} else if resp.Status != proto.StatusNotFound {
			t.Fatalf("resp %d = %v, want NotFound", i, resp.Status)
		}
	}
}

// TestLiveWideFusedGetBatch: a single-stage config fuses search into the read
// (search skip), so the wide path must use GetBatch, not SearchBatch.
func TestLiveWideFusedGetBatch(t *testing.T) {
	st := newFakeWideStore()
	st.m["k000"] = []byte("v0")
	_, frames := runWideBatch(t, st, Config{GPUDepth: 0}, 1, 48)
	if st.getBatches.Load() == 0 {
		t.Fatalf("GetBatch not engaged (getBatches=0)")
	}
	if st.searchBatches.Load() != 0 {
		t.Fatalf("searchBatches = %d, want 0 under the fused config", st.searchBatches.Load())
	}
	if frames[0].Resps[0].Status != proto.StatusOK || string(frames[0].Resps[0].Value) != "v0" {
		t.Fatalf("resp 0 = %v %q", frames[0].Resps[0].Status, frames[0].Resps[0].Value)
	}
}

// TestLiveWideDisabled: WideMinGets < 0 must keep every read on the scalar
// path even when the store implements BatchReadStore.
func TestLiveWideDisabled(t *testing.T) {
	st := newFakeWideStore()
	st.m["k000"] = []byte("v0")
	r, _ := runWideBatch(t, st, MegaKV(), -1, 64)
	if st.readBatches.Load() != 0 || st.getBatches.Load() != 0 {
		t.Fatalf("wide path ran while disabled: readBatches=%d getBatches=%d",
			st.readBatches.Load(), st.getBatches.Load())
	}
	if st.scalarReads.Load() == 0 {
		t.Fatal("scalar path served nothing")
	}
	if got := r.Stats().WideBatches; got != 0 {
		t.Fatalf("WideBatches = %d, want 0", got)
	}
}

// TestLiveWideBelowThreshold: batches smaller than WideMinGets stay scalar.
func TestLiveWideBelowThreshold(t *testing.T) {
	st := newFakeWideStore()
	st.m["k000"] = []byte("v0")
	_, _ = runWideBatch(t, st, MegaKV(), 1000, 16)
	if st.readBatches.Load() != 0 {
		t.Fatalf("wide path ran below threshold: readBatches=%d", st.readBatches.Load())
	}
	if st.scalarReads.Load() == 0 {
		t.Fatal("scalar path served nothing")
	}
}

// TestLiveWidePanicFallsBackScalar: a panic inside the batched store call must
// not poison frames — the runner falls back to the scalar loop, which serves
// the batch normally.
func TestLiveWidePanicFallsBackScalar(t *testing.T) {
	st := newFakeWideStore()
	st.panicWideReads = true
	st.m["k000"] = []byte("v0")
	_, frames := runWideBatch(t, st, MegaKV(), 1, 64)
	f := frames[0]
	if f.Err {
		t.Fatal("frame poisoned: a recovered wide panic must fall back, not fail the frame")
	}
	if st.scalarReads.Load() == 0 {
		t.Fatal("scalar fallback did not serve the batch")
	}
	if f.Resps[0].Status != proto.StatusOK || string(f.Resps[0].Value) != "v0" {
		t.Fatalf("resp 0 = %v %q", f.Resps[0].Status, f.Resps[0].Value)
	}
}

// TestLiveWideSeesSameBatchWrites: the intra-batch writes-before-reads
// contract must hold on the wide path too — a GET batched with a SET of the
// same key observes the new value.
func TestLiveWideSeesSameBatchWrites(t *testing.T) {
	st := newFakeWideStore()
	done := make(chan *LiveFrame, 8)
	r := NewLiveRunner(st, LiveOptions{
		Provider:    &fixedProvider{cfg: Config{GPUDepth: 0}, n: 100000},
		WideMinGets: 1,
		Done:        func(f *LiveFrame) { done <- f },
	})
	// One frame carrying the SET and 32 GETs of the same key: large enough for
	// the wide path, sealed as a single batch.
	f := &LiveFrame{Queries: []proto.Query{{Op: proto.OpSet, Key: []byte("x"), Value: []byte("new")}}}
	for i := 0; i < 32; i++ {
		f.Queries = append(f.Queries, proto.Query{Op: proto.OpGet, Key: []byte("x")})
	}
	r.Submit(f)
	frames := collectFrames(t, done, 1)
	r.Close()
	for i, resp := range frames[0].Resps[1:] {
		if resp.Status != proto.StatusOK || string(resp.Value) != "new" {
			t.Fatalf("get %d = %v %q, want the same-batch SET's value", i, resp.Status, resp.Value)
		}
	}
	if st.getBatches.Load() == 0 {
		t.Fatal("fused wide path not engaged")
	}
}

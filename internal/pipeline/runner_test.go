package pipeline

import (
	"testing"
	"time"

	"repro/internal/apu"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/workload"
)

func newRunner(t *testing.T, specName string) (*Runner, *workload.Generator) {
	t.Helper()
	st := store.New(store.Config{MemoryBytes: 16 << 20, IndexEntries: 200000, Seed: 7})
	model := apu.NewModel(apu.KaveriPlatform(), 0.02, 1)
	exec := NewExecutor(model, st, netsim.KernelNetworking())
	spec, ok := workload.SpecByName(specName)
	if !ok {
		t.Fatalf("unknown spec %s", specName)
	}
	gen := workload.NewGenerator(spec, 50000, 11)
	warm(exec, gen, 20000)
	return &Runner{Exec: exec}, gen
}

func TestRunnerProducesThroughput(t *testing.T) {
	r, gen := newRunner(t, "K16-G95-U")
	provider := &StaticProvider{Config: MegaKV(), Interval: 300 * time.Microsecond, MinBatch: 256, MaxBatch: 1 << 15}
	res := r.Run(gen, provider, 30)
	if res.Batches != 30 || res.Queries == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.ThroughputMOPS <= 0 {
		t.Fatal("no throughput")
	}
	if res.Elapsed <= 0 || res.AvgLatency <= 0 {
		t.Fatal("no timing")
	}
	if res.CPUUtilization <= 0 || res.CPUUtilization > 1 {
		t.Fatalf("CPU utilization = %v", res.CPUUtilization)
	}
	if res.GPUUtilization <= 0 || res.GPUUtilization > 1 {
		t.Fatalf("GPU utilization = %v", res.GPUUtilization)
	}
}

func TestFeedbackControllerConverges(t *testing.T) {
	r, gen := newRunner(t, "K16-G95-U")
	interval := 300 * time.Microsecond
	provider := &StaticProvider{Config: MegaKV(), Interval: interval, MinBatch: 64, MaxBatch: 1 << 16}
	res := r.Run(gen, provider, 40)
	// After convergence the mean bottleneck time per batch should sit near
	// the interval (periodic scheduling, §IV-A).
	mean := maxDur(res.StageMean[:])
	lo, hi := interval/2, 2*interval
	if mean < lo || mean > hi {
		t.Fatalf("converged Tmax %v not near interval %v", mean, interval)
	}
}

func TestMegaKVGPUUnderutilizedOnLargeKV(t *testing.T) {
	// Fig 5: Mega-KV's GPU utilization collapses for large key-value sizes.
	rSmall, genSmall := newRunner(t, "K8-G95-S")
	pSmall := &StaticProvider{Config: MegaKV(), Interval: 300 * time.Microsecond, MinBatch: 256, MaxBatch: 1 << 16}
	resSmall := rSmall.Run(genSmall, pSmall, 30)

	rBig, genBig := newRunner(t, "K128-G95-S")
	pBig := &StaticProvider{Config: MegaKV(), Interval: 300 * time.Microsecond, MinBatch: 256, MaxBatch: 1 << 16}
	resBig := rBig.Run(genBig, pBig, 30)

	if resBig.GPUUtilization >= resSmall.GPUUtilization {
		t.Fatalf("GPU utilization should drop with KV size: K8 %v vs K128 %v",
			resSmall.GPUUtilization, resBig.GPUUtilization)
	}
	if resBig.GPUUtilization > 0.4 {
		t.Fatalf("K128 GPU utilization = %v, expected severe underutilization", resBig.GPUUtilization)
	}
}

func TestTraceRecording(t *testing.T) {
	r, gen := newRunner(t, "K16-G95-U")
	r.TraceEvery = 500 * time.Microsecond
	provider := &StaticProvider{Config: MegaKV(), Interval: 300 * time.Microsecond, MinBatch: 256, MaxBatch: 1 << 15}
	res := r.Run(gen, provider, 40)
	if len(res.Trace) == 0 {
		t.Fatal("no trace points recorded")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].At <= res.Trace[i-1].At {
			t.Fatal("trace not monotonically timed")
		}
	}
}

func TestStaticProviderClamps(t *testing.T) {
	p := &StaticProvider{Config: MegaKV(), Interval: time.Millisecond, MinBatch: 100, MaxBatch: 200}
	cfg, n := p.NextConfig(nil)
	if n < 100 || n > 200 {
		t.Fatalf("initial batch %d outside clamps", n)
	}
	if cfg.GPUDepth != 1 {
		t.Fatal("config not passed through")
	}
	// A batch that took far too long must shrink the next one (but not
	// below MinBatch).
	prev := &Batch{Times: StageTimes{Tmax: 100 * time.Millisecond}}
	_, n2 := p.NextConfig(prev)
	if n2 > n || n2 < 100 {
		t.Fatalf("batch after overlong Tmax = %d (was %d)", n2, n)
	}
	// A fast batch must grow the next one (but not above MaxBatch).
	prev = &Batch{Times: StageTimes{Tmax: time.Microsecond}}
	_, n3 := p.NextConfig(prev)
	if n3 < n2 || n3 > 200 {
		t.Fatalf("batch after fast Tmax = %d", n3)
	}
}

func TestRunnerSingleStageCPUOnly(t *testing.T) {
	r, gen := newRunner(t, "K16-G50-U")
	provider := &StaticProvider{Config: Config{GPUDepth: 0}, Interval: 300 * time.Microsecond, MinBatch: 128, MaxBatch: 1 << 14}
	res := r.Run(gen, provider, 20)
	if res.GPUUtilization != 0 {
		t.Fatalf("CPU-only run has GPU utilization %v", res.GPUUtilization)
	}
	if res.ThroughputMOPS <= 0 {
		t.Fatal("no throughput")
	}
}

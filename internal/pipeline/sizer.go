package pipeline

import "time"

// BatchSizer is the multiplicative-feedback batch-size controller shared by
// the simulated runner (StaticProvider — Mega-KV's periodic scheduling) and
// the live serving pipeline: the batch grows until the bottleneck stage fills
// the scheduling interval (Tmax ≈ Interval), with the per-step growth ratio
// dampened to avoid oscillation and the result clamped to [Min, Max].
//
// BatchSizer is not safe for concurrent use; callers serialize it (the live
// runner consults its provider under a mutex).
type BatchSizer struct {
	// Interval is the target for the bottleneck stage time Tmax.
	Interval time.Duration
	// Min and Max clamp the size (0 disables the respective bound). A zero
	// Min leaves the initial size at DefaultInitialBatch.
	Min, Max int

	cur int
}

// DefaultInitialBatch seeds the controller when Min is unset.
const DefaultInitialBatch = 1024

// Current returns the size the controller currently recommends, initializing
// it on first use.
func (z *BatchSizer) Current() int {
	if z.cur == 0 {
		z.cur = z.Min
		if z.cur == 0 {
			z.cur = DefaultInitialBatch
		}
		z.cur = z.clamp(z.cur)
	}
	return z.cur
}

// Set overrides the current size (a planner solved for one); it is clamped.
func (z *BatchSizer) Set(n int) {
	if n <= 0 {
		return
	}
	z.cur = z.clamp(n)
}

// Observe feeds back the previously executed batch and returns the next
// size: the current size scaled by Interval/Tmax, dampened to [0.5, 2] per
// step so one noisy batch cannot swing the size wildly.
func (z *BatchSizer) Observe(prev *Batch) int {
	cur := z.Current()
	if prev != nil && prev.Times.Tmax > 0 && z.Interval > 0 {
		ratio := float64(z.Interval) / float64(prev.Times.Tmax)
		if ratio > 2 {
			ratio = 2
		}
		if ratio < 0.5 {
			ratio = 0.5
		}
		cur = z.clamp(int(float64(cur) * ratio))
		z.cur = cur
	}
	return cur
}

func (z *BatchSizer) clamp(n int) int {
	if z.Min > 0 && n < z.Min {
		n = z.Min
	}
	if z.Max > 0 && n > z.Max {
		n = z.Max
	}
	return n
}

package pipeline

import (
	"strings"
	"testing"

	"repro/internal/apu"
	"repro/internal/task"
)

func TestStageString(t *testing.T) {
	if StageCPUPre.String() != "CPU-pre" || StageGPU.String() != "GPU" || StageCPUPost.String() != "CPU-post" {
		t.Fatal("stage strings wrong")
	}
	if Stage(9).String() != "Stage(9)" {
		t.Fatal("unknown stage string")
	}
	if StageGPU.Device() != apu.GPU || StageCPUPre.Device() != apu.CPU {
		t.Fatal("stage devices wrong")
	}
}

func TestMegaKVConfig(t *testing.T) {
	c := MegaKV()
	if err := c.Validate(4); err != nil {
		t.Fatal(err)
	}
	// The paper's static pipeline: [RV,PP,MM]CPU → [IN]GPU → [KC,RD,WR,SD]CPU.
	for _, id := range []task.ID{task.RV, task.PP, task.MM} {
		if c.StageOf(id) != StageCPUPre {
			t.Fatalf("%v should be CPU-pre", id)
		}
	}
	for _, id := range []task.ID{task.INSearch, task.INInsert, task.INDelete} {
		if c.StageOf(id) != StageGPU {
			t.Fatalf("%v should be on the GPU", id)
		}
	}
	for _, id := range []task.ID{task.KC, task.RD, task.WR, task.SD} {
		if c.StageOf(id) != StageCPUPost {
			t.Fatalf("%v should be CPU-post", id)
		}
	}
	if c.Stages() != 3 {
		t.Fatalf("stages = %d", c.Stages())
	}
	s := c.String()
	if !strings.Contains(s, "GPU") || !strings.Contains(s, "IN.S") {
		t.Fatalf("string = %q", s)
	}
}

func TestPureCPUConfig(t *testing.T) {
	c := Config{GPUDepth: 0}
	if err := c.Validate(4); err != nil {
		t.Fatal(err)
	}
	for _, id := range task.All() {
		if c.StageOf(id) != StageCPUPre {
			t.Fatalf("%v not on the single CPU stage", id)
		}
	}
	if c.Stages() != 1 {
		t.Fatalf("stages = %d", c.Stages())
	}
	if got := c.CoresFor(StageCPUPre, 4); got != 4 {
		t.Fatalf("single stage cores = %d", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{GPUDepth: -1},
		{GPUDepth: 5},
		{GPUDepth: 0, InsertOn: apu.GPU},
		{GPUDepth: 0, DeleteOn: apu.GPU},
		{GPUDepth: 0, ScanOn: apu.GPU},
		{GPUDepth: 1, CPUCoresPre: 0},
		{GPUDepth: 1, CPUCoresPre: 4},
	}
	for i, c := range bad {
		if err := c.Validate(4); err == nil {
			t.Fatalf("config %d should be invalid: %+v", i, c)
		}
	}
}

func TestGPUDepthMovesChain(t *testing.T) {
	c := Config{GPUDepth: 3, InsertOn: apu.CPU, DeleteOn: apu.CPU, CPUCoresPre: 2}
	// Depth 3: IN.S, KC, RD on GPU; WR stays on CPU-post.
	if c.StageOf(task.INSearch) != StageGPU || c.StageOf(task.KC) != StageGPU || c.StageOf(task.RD) != StageGPU {
		t.Fatal("depth-3 chain not on GPU")
	}
	if c.StageOf(task.WR) != StageCPUPost {
		t.Fatal("WR should remain on CPU at depth 3")
	}
	// CPU-assigned index updates land in stage 1 (paper: Insert/Delete to
	// CPUs for 95% GET workloads).
	if c.StageOf(task.INInsert) != StageCPUPre || c.StageOf(task.INDelete) != StageCPUPre {
		t.Fatal("CPU index updates should run in stage 1")
	}
}

func TestPlacementAffinity(t *testing.T) {
	// KC and RD co-located on the GPU: RD gets its affinity flag.
	c := Config{GPUDepth: 3, InsertOn: apu.CPU, DeleteOn: apu.CPU, CPUCoresPre: 2}
	pl := c.Placement(task.RD)
	if !pl.WithAffinityPartner || pl.OnCPU {
		t.Fatalf("RD placement = %+v", pl)
	}
	// WR on CPU while RD on GPU: separated.
	plWR := c.Placement(task.WR)
	if plWR.WithAffinityPartner || !plWR.OnCPU {
		t.Fatalf("WR placement = %+v", plWR)
	}
	// Mega-KV: KC,RD,WR all CPU-post — both affinities hold.
	m := MegaKV()
	if !m.Placement(task.RD).WithAffinityPartner || !m.Placement(task.WR).WithAffinityPartner {
		t.Fatal("Mega-KV co-located chain should have affinity")
	}
}

func TestCoresForSplit(t *testing.T) {
	c := Config{GPUDepth: 1, CPUCoresPre: 3, InsertOn: apu.GPU, DeleteOn: apu.GPU}
	if c.CoresFor(StageCPUPre, 4) != 3 || c.CoresFor(StageCPUPost, 4) != 1 {
		t.Fatal("core split wrong")
	}
	if c.CoresFor(StageGPU, 4) != 0 {
		t.Fatal("GPU stage should get no CPU cores")
	}
}

func TestTasksPartition(t *testing.T) {
	// Every task appears in exactly one stage, for every enumerated config.
	for _, c := range Enumerate(4) {
		count := map[task.ID]int{}
		for s := StageCPUPre; s < numStages; s++ {
			for _, id := range c.Tasks(s) {
				count[id]++
			}
		}
		for _, id := range task.All() {
			if count[id] != 1 {
				t.Fatalf("config %v: task %v in %d stages", c, id, count[id])
			}
		}
	}
}

func TestEnumerate(t *testing.T) {
	configs := Enumerate(4)
	// 1 pure CPU + depth(4) × insert(2) × delete(2) × scan(2) × ws(2) × split(3).
	want := 1 + 4*2*2*2*2*3
	if len(configs) != want {
		t.Fatalf("enumerated %d configs, want %d", len(configs), want)
	}
	seen := map[string]bool{}
	for _, c := range configs {
		if err := c.Validate(4); err != nil {
			t.Fatalf("invalid enumerated config %+v: %v", c, err)
		}
		key := c.String()
		// String() omits the core split, so add it for uniqueness checking.
		key += string(rune('0' + c.CPUCoresPre))
		if seen[key] {
			t.Fatalf("duplicate config %v", key)
		}
		seen[key] = true
	}
	// Mega-KV's shape must be in the space.
	found := false
	m := MegaKV()
	for _, c := range configs {
		if c.GPUDepth == m.GPUDepth && c.InsertOn == m.InsertOn &&
			c.DeleteOn == m.DeleteOn && c.WorkStealing == m.WorkStealing &&
			c.CPUCoresPre == m.CPUCoresPre {
			found = true
		}
	}
	if !found {
		t.Fatal("Mega-KV config missing from enumeration")
	}
}

func TestScanPlacement(t *testing.T) {
	// CPU scans join stage 1; GPU scans the batch-parallel stage 2. The zero
	// value (apu.CPU) keeps every pre-SCAN config literal valid.
	cpu := Config{GPUDepth: 2, InsertOn: apu.CPU, DeleteOn: apu.CPU, CPUCoresPre: 2}
	if cpu.StageOf(task.SC) != StageCPUPre {
		t.Fatalf("CPU scan stage = %v", cpu.StageOf(task.SC))
	}
	gpu := cpu
	gpu.ScanOn = apu.GPU
	if gpu.StageOf(task.SC) != StageGPU {
		t.Fatalf("GPU scan stage = %v", gpu.StageOf(task.SC))
	}
	if (Config{GPUDepth: 0}).StageOf(task.SC) != StageCPUPre {
		t.Fatal("pure-CPU config must run SC on its single stage")
	}
	// The enumeration explores both placements, CPU first within each
	// otherwise-identical pair (scan-free ties keep pre-SCAN winners).
	var sawCPU, sawGPU bool
	for _, c := range Enumerate(4) {
		if c.GPUDepth == 0 {
			continue
		}
		if c.ScanOn == apu.GPU {
			sawGPU = true
			if !sawCPU {
				t.Fatal("GPU scan variant enumerated before any CPU variant")
			}
		} else {
			sawCPU = true
		}
	}
	if !sawCPU || !sawGPU {
		t.Fatal("enumeration must cover both scan placements")
	}
}

func TestDIDOPaperPipelines(t *testing.T) {
	// The two pipelines of Fig 20: [RV,PP,MM]CPU→[IN]GPU→[KC,RD,WR,SD]CPU
	// and [RV,PP,MM]CPU→[IN,KC,RD]GPU→[WR,SD]CPU must both be expressible.
	p1 := Config{GPUDepth: 1, InsertOn: apu.GPU, DeleteOn: apu.GPU, CPUCoresPre: 2}
	p2 := Config{GPUDepth: 3, InsertOn: apu.CPU, DeleteOn: apu.CPU, CPUCoresPre: 2}
	if p1.Validate(4) != nil || p2.Validate(4) != nil {
		t.Fatal("paper pipelines invalid")
	}
	if p2.StageOf(task.RD) != StageGPU || p2.StageOf(task.WR) != StageCPUPost {
		t.Fatal("pipeline 2 shape wrong")
	}
}

package pipeline

import (
	"testing"
	"time"
)

func TestBatchSizerDefaults(t *testing.T) {
	var z BatchSizer
	if got := z.Current(); got != DefaultInitialBatch {
		t.Fatalf("Current() = %d, want default %d", got, DefaultInitialBatch)
	}
	z2 := BatchSizer{Min: 32, Max: 256}
	if got := z2.Current(); got != 32 {
		t.Fatalf("Current() = %d, want Min 32", got)
	}
}

func TestBatchSizerSetClamps(t *testing.T) {
	z := BatchSizer{Min: 64, Max: 1024}
	z.Set(8)
	if got := z.Current(); got != 64 {
		t.Fatalf("Set(8) then Current() = %d, want clamped to 64", got)
	}
	z.Set(1 << 20)
	if got := z.Current(); got != 1024 {
		t.Fatalf("Set(big) then Current() = %d, want clamped to 1024", got)
	}
	z.Set(0) // ignored
	if got := z.Current(); got != 1024 {
		t.Fatalf("Set(0) must be ignored, Current() = %d", got)
	}
}

func TestBatchSizerFeedback(t *testing.T) {
	z := BatchSizer{Interval: time.Millisecond, Min: 16, Max: 1 << 16}
	z.Set(1024)

	// Batch finished in half the interval: size should grow toward the bound.
	fast := &Batch{}
	fast.Times.Tmax = 500 * time.Microsecond
	if got := z.Observe(fast); got <= 1024 {
		t.Fatalf("Observe(fast) = %d, want growth above 1024", got)
	}

	// Batch blew through the interval: size must shrink.
	z.Set(1024)
	slow := &Batch{}
	slow.Times.Tmax = 4 * time.Millisecond
	if got := z.Observe(slow); got >= 1024 {
		t.Fatalf("Observe(slow) = %d, want shrink below 1024", got)
	}

	// The per-step ratio is clamped to [0.5, 2] so one noisy batch cannot
	// swing the size by orders of magnitude.
	z.Set(1024)
	verySlow := &Batch{}
	verySlow.Times.Tmax = time.Second
	if got := z.Observe(verySlow); got != 512 {
		t.Fatalf("Observe(very slow) = %d, want half (ratio clamp)", got)
	}

	// No measurement: size unchanged.
	z.Set(1024)
	if got := z.Observe(&Batch{}); got != 1024 {
		t.Fatalf("Observe(no Tmax) = %d, want unchanged 1024", got)
	}
	if got := z.Observe(nil); got != 1024 {
		t.Fatalf("Observe(nil) = %d, want unchanged 1024", got)
	}
}

package pipeline

import (
	"testing"
	"time"

	"repro/internal/apu"
	"repro/internal/gpu"
	"repro/internal/netsim"
	"repro/internal/proto"
	"repro/internal/store"
	"repro/internal/workload"
)

func newTestExec(t *testing.T) (*Executor, *workload.Generator) {
	t.Helper()
	st := store.New(store.Config{MemoryBytes: 16 << 20, IndexEntries: 200000, Seed: 7})
	model := apu.NewModel(apu.KaveriPlatform(), 0, 1) // no noise for determinism
	exec := NewExecutor(model, st, netsim.KernelNetworking())
	spec, _ := workload.SpecByName("K16-G95-U")
	gen := workload.NewGenerator(spec, 50000, 11)
	return exec, gen
}

func warm(exec *Executor, gen *workload.Generator, n int) {
	for i := uint64(1); i <= uint64(n); i++ {
		key := gen.KeyAt(i, nil)
		exec.Store.Set(key, make([]byte, gen.Spec.ValueSize))
	}
}

func TestExecuteBatchMeasuresProfile(t *testing.T) {
	exec, gen := newTestExec(t)
	warm(exec, gen, 10000)
	b := &Batch{Queries: gen.Batch(5000), Config: MegaKV()}
	exec.ExecuteBatch(b)
	p := b.Profile
	if p.N != 5000 {
		t.Fatalf("profile N = %d", p.N)
	}
	if p.GetRatio < 0.92 || p.GetRatio > 0.98 {
		t.Fatalf("GET ratio = %v, want ~0.95", p.GetRatio)
	}
	if p.KeySize != 16 {
		t.Fatalf("key size = %v", p.KeySize)
	}
	if p.ValueSize < 55 || p.ValueSize > 65 {
		t.Fatalf("value size = %v, want ~64 (hit values + set values)", p.ValueSize)
	}
	if b.Hits == 0 {
		t.Fatal("warm store should produce GET hits")
	}
	if p.AvgInsertBuckets < 1 {
		t.Fatalf("avg insert buckets = %v", p.AvgInsertBuckets)
	}
}

func TestExecuteBatchStageTimes(t *testing.T) {
	exec, gen := newTestExec(t)
	warm(exec, gen, 10000)
	b := &Batch{Queries: gen.Batch(8000), Config: MegaKV()}
	exec.ExecuteBatch(b)
	if b.Times.Tmax <= 0 {
		t.Fatal("no stage time computed")
	}
	for s := 0; s < 3; s++ {
		if b.Times.Dur[s] <= 0 {
			t.Fatalf("stage %d has zero duration under Mega-KV config", s)
		}
		if b.Times.Dur[s] > b.Times.Tmax {
			t.Fatal("Tmax is not the max")
		}
	}
}

func TestFig4ShapeReadAndSendDominates(t *testing.T) {
	// Paper Fig 4: under Mega-KV on the coupled architecture, Read & Send
	// Value (CPU-post) dominates; Network Processing is light.
	exec, gen := newTestExec(t)
	warm(exec, gen, 10000)
	b := &Batch{Queries: gen.Batch(10000), Config: MegaKV()}
	exec.ExecuteBatch(b)
	post := b.Times.Dur[StageCPUPost]
	gpuStage := b.Times.Dur[StageGPU]
	if post <= gpuStage {
		t.Fatalf("CPU-post (%v) should dominate GPU index stage (%v) on K16", post, gpuStage)
	}
}

func TestDynamicPipelineBalances(t *testing.T) {
	// Moving KC+RD to the GPU must shrink the CPU-post stage (the paper's
	// pipeline 2 for small key-value read-heavy workloads).
	exec, gen := newTestExec(t)
	warm(exec, gen, 10000)
	queries := gen.Batch(10000)

	mega := &Batch{Queries: queries, Config: MegaKV()}
	exec.ExecuteBatch(mega)

	dido := &Batch{Queries: queries, Config: Config{
		GPUDepth: 3, InsertOn: apu.CPU, DeleteOn: apu.CPU, CPUCoresPre: 2,
	}}
	exec.ExecuteBatch(dido)

	if dido.Times.Dur[StageCPUPost] >= mega.Times.Dur[StageCPUPost] {
		t.Fatalf("moving KC,RD to GPU should shrink CPU-post: %v vs %v",
			dido.Times.Dur[StageCPUPost], mega.Times.Dur[StageCPUPost])
	}
}

func TestWorkStealingReducesBottleneck(t *testing.T) {
	exec, gen := newTestExec(t)
	warm(exec, gen, 10000)
	queries := gen.Batch(10000)

	base := Config{GPUDepth: 1, InsertOn: apu.CPU, DeleteOn: apu.CPU, CPUCoresPre: 2}
	noWS := &Batch{Queries: queries, Config: base}
	exec.ExecuteBatch(noWS)

	ws := base
	ws.WorkStealing = true
	withWS := &Batch{Queries: queries, Config: ws}
	exec.ExecuteBatch(withWS)

	if withWS.Times.Tmax > noWS.Times.Tmax {
		t.Fatalf("work stealing increased Tmax: %v vs %v", withWS.Times.Tmax, noWS.Times.Tmax)
	}
	stolen := withWS.Times.StolenByCPU + withWS.Times.StolenByGPU
	if stolen == 0 {
		t.Fatal("work stealing moved nothing on an imbalanced pipeline")
	}
	// StolenBy* bookkeeping: counts are moved query SLOTS over the stage's
	// stealable span (see steal's vertical-slice accounting) — whole 64-query
	// chunks except a possible clamped tail, and never more than the batch.
	if stolen > len(queries) {
		t.Fatalf("stolen %d > batch %d: stolen slots cannot exceed the span", stolen, len(queries))
	}
	// The span is the widest stealable task's query count; with GETs in the
	// majority that is the GET count (IN.Search/KC/RD all cover it).
	gets := 0
	for _, q := range queries {
		if q.Op == proto.OpGet {
			gets++
		}
	}
	if stolen%gpu.WavefrontWidth != 0 && stolen != gets && stolen != len(queries) {
		t.Fatalf("stolen = %d: must be whole %d-query chunks unless clamped to the span (%d gets / %d queries)",
			stolen, gpu.WavefrontWidth, gets, len(queries))
	}
	// Only one device can be the helper for one bottleneck stage.
	if withWS.Times.StolenByCPU > 0 && withWS.Times.StolenByGPU > 0 {
		t.Fatalf("both devices stole in one batch: CPU=%d GPU=%d", withWS.Times.StolenByCPU, withWS.Times.StolenByGPU)
	}
	// Rerunning the same batch without stealing must leave the counters at
	// zero — they are priced only when the sealed config asks for it.
	if noWS.Times.StolenByCPU+noWS.Times.StolenByGPU != 0 {
		t.Fatal("non-stealing run booked stolen queries")
	}
}

func TestCacheHitPortionOnlyOnCPU(t *testing.T) {
	// Skewed workload: KC/RD on the CPU should observe cache hits; with
	// KC/RD on the GPU the measured portion must be zero.
	st := store.New(store.Config{MemoryBytes: 16 << 20, IndexEntries: 200000, Seed: 7})
	model := apu.NewModel(apu.KaveriPlatform(), 0, 1)
	exec := NewExecutor(model, st, netsim.KernelNetworking())
	spec, _ := workload.SpecByName("K16-G95-S")
	gen := workload.NewGenerator(spec, 50000, 3)
	warm(exec, gen, 20000)

	cpu := &Batch{Queries: gen.Batch(8000), Config: MegaKV()} // KC,RD on CPU
	exec.ExecuteBatch(cpu)
	if cpu.Profile.CacheHitPortion <= 0.1 {
		t.Fatalf("skewed CPU-side cache-hit portion = %v, want > 0.1", cpu.Profile.CacheHitPortion)
	}

	gpuCfg := Config{GPUDepth: 4, InsertOn: apu.GPU, DeleteOn: apu.GPU, CPUCoresPre: 2}
	gpuB := &Batch{Queries: gen.Batch(8000), Config: gpuCfg}
	exec.ExecuteBatch(gpuB)
	if gpuB.Profile.CacheHitPortion != 0 {
		t.Fatalf("GPU-side cache-hit portion = %v, want 0", gpuB.Profile.CacheHitPortion)
	}
}

func TestEvictionRateMeasured(t *testing.T) {
	// A tiny arena at steady state evicts on ~every SET.
	st := store.New(store.Config{MemoryBytes: 2 << 20, IndexEntries: 50000, Seed: 9})
	model := apu.NewModel(apu.KaveriPlatform(), 0, 1)
	exec := NewExecutor(model, st, netsim.KernelNetworking())
	spec, _ := workload.SpecByName("K16-G50-U")
	gen := workload.NewGenerator(spec, 1<<20, 5) // population far beyond arena
	// Fill the arena well past capacity.
	for i := 0; i < 3; i++ {
		b := &Batch{Queries: gen.Batch(20000), Config: MegaKV()}
		exec.ExecuteBatch(b)
	}
	b := &Batch{Queries: gen.Batch(10000), Config: MegaKV()}
	exec.ExecuteBatch(b)
	if b.Profile.EvictionRate < 0.8 {
		t.Fatalf("steady-state eviction rate = %v, want ~1 (paper §II-C2)", b.Profile.EvictionRate)
	}
}

func TestEmptyBatch(t *testing.T) {
	exec, _ := newTestExec(t)
	b := &Batch{Config: MegaKV()}
	exec.ExecuteBatch(b)
	if b.Times.Tmax != 0 {
		t.Fatalf("empty batch Tmax = %v", b.Times.Tmax)
	}
}

func TestStealNoopOnBalancedOrCPUOnly(t *testing.T) {
	exec, gen := newTestExec(t)
	warm(exec, gen, 5000)
	// Pure CPU pipeline: stealing is structurally impossible.
	b := &Batch{Queries: gen.Batch(2000), Config: Config{GPUDepth: 0, WorkStealing: true}}
	exec.ExecuteBatch(b)
	if b.Times.StolenByCPU+b.Times.StolenByGPU != 0 {
		t.Fatal("stealing occurred on a CPU-only pipeline")
	}
	if b.Times.Dur[StageGPU] != 0 {
		t.Fatal("GPU stage time on CPU-only pipeline")
	}
}

func TestLargeValuesShiftBottleneckToPost(t *testing.T) {
	// K128: CPU-post grows heavier relative to the GPU index stage
	// (Fig 4's rightmost group).
	st := store.New(store.Config{MemoryBytes: 64 << 20, IndexEntries: 100000, Seed: 7})
	model := apu.NewModel(apu.KaveriPlatform(), 0, 1)
	exec := NewExecutor(model, st, netsim.KernelNetworking())
	spec, _ := workload.SpecByName("K128-G95-U")
	gen := workload.NewGenerator(spec, 30000, 13)
	for i := uint64(1); i <= 20000; i++ {
		exec.Store.Set(gen.KeyAt(i, nil), make([]byte, 1024))
	}
	b := &Batch{Queries: gen.Batch(4000), Config: MegaKV()}
	exec.ExecuteBatch(b)
	ratio := float64(b.Times.Dur[StageCPUPost]) / float64(b.Times.Dur[StageGPU])
	if ratio < 2 {
		t.Fatalf("K128 post/GPU ratio = %.2f, want > 2 (severe imbalance)", ratio)
	}
}

func TestInterferenceCouplesStages(t *testing.T) {
	// With noise off, pricing the same batch twice is deterministic.
	exec, gen := newTestExec(t)
	warm(exec, gen, 10000)
	// One throwaway batch warms the simulated CPU cache so the comparison
	// below is steady-state vs steady-state.
	exec.ExecuteBatch(&Batch{Queries: gen.Batch(8000), Config: MegaKV()})
	q := gen.Batch(8000)
	b1 := &Batch{Queries: q, Config: MegaKV()}
	exec.ExecuteBatch(b1)
	b2 := &Batch{Queries: q, Config: MegaKV()}
	exec.ExecuteBatch(b2)
	// Times differ slightly because store/cache state evolves, but stay close.
	r := float64(b2.Times.Tmax) / float64(b1.Times.Tmax)
	if r < 0.5 || r > 2.0 {
		t.Fatalf("pricing unstable across identical batches: %v vs %v", b1.Times.Tmax, b2.Times.Tmax)
	}
}

func TestPriceRespectsInterval(t *testing.T) {
	// Bigger batches take proportionally longer (sanity for the feedback
	// controller's assumption).
	exec, gen := newTestExec(t)
	warm(exec, gen, 10000)
	small := &Batch{Queries: gen.Batch(2000), Config: MegaKV()}
	exec.ExecuteBatch(small)
	big := &Batch{Queries: gen.Batch(8000), Config: MegaKV()}
	exec.ExecuteBatch(big)
	if big.Times.Tmax <= small.Times.Tmax {
		t.Fatal("4x batch should take longer")
	}
	if big.Times.Tmax > 10*small.Times.Tmax {
		t.Fatalf("scaling wildly superlinear: %v vs %v", big.Times.Tmax, small.Times.Tmax)
	}
	_ = time.Microsecond
}

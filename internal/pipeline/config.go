// Package pipeline implements DIDO's query-processing pipeline: pipeline
// configurations (which task runs on which processor, §III-B1), the
// per-batch ground-truth executor that prices a configuration on the APU
// timing model, work stealing (§III-B3), and the batch runner that drives
// the discrete-event simulation.
//
// A configuration has up to three stages, mirroring every scheme the paper
// discusses:
//
//	stage 1 (CPU): RV, PP, MM  (+ Insert/Delete index ops and SC range
//	               scans when CPU-assigned)
//	stage 2 (GPU): IN.Search, then optionally KC, RD, WR ("GPU depth"),
//	               plus SC when GPU-assigned
//	stage 3 (CPU): the rest of KC, RD, WR, then SD
//
// GPU depth 0 collapses everything onto a single CPU stage. The batch is the
// unit of configuration: each Batch carries its Config so that in-flight
// batches complete under the scheme they started with (§III-B1).
package pipeline

import (
	"fmt"
	"strings"

	"repro/internal/apu"
	"repro/internal/task"
)

// Stage identifies one pipeline stage.
type Stage int

// The three stages.
const (
	StageCPUPre Stage = iota
	StageGPU
	StageCPUPost
	numStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageCPUPre:
		return "CPU-pre"
	case StageGPU:
		return "GPU"
	case StageCPUPost:
		return "CPU-post"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Device returns which processor runs the stage.
func (s Stage) Device() apu.Kind {
	if s == StageGPU {
		return apu.GPU
	}
	return apu.CPU
}

// gpuChain is the orderable task segment that can move onto the GPU, in
// pipeline order. GPU depth d assigns gpuChain[:d].
var gpuChain = []task.ID{task.INSearch, task.KC, task.RD, task.WR}

// MaxGPUDepth is the longest GPU task segment.
const MaxGPUDepth = 4

// Config is one pipeline partitioning scheme plus index-operation assignment
// and work-stealing switch — everything the cost model searches over (§IV-B
// "finding the optimal pipeline configuration").
type Config struct {
	// GPUDepth is how many of [IN.S, KC, RD, WR] run on the GPU stage; 0
	// means a pure-CPU single-stage pipeline.
	GPUDepth int
	// InsertOn / DeleteOn assign the index update operations (§III-B2).
	// With GPUDepth 0 both are forced to the CPU.
	InsertOn, DeleteOn apu.Kind
	// ScanOn assigns the ordered-index range-scan task (SC). Scans are
	// sequential-bandwidth-bound (the opposite profile of the random-access
	// point probes), so the planner places them independently: on the CPU
	// they join stage 1, on the GPU the batch-parallel stage 2. With
	// GPUDepth 0 scans are forced to the CPU like the index ops.
	ScanOn apu.Kind
	// WorkStealing enables CPU↔GPU stealing on the bottleneck stage
	// (§III-B3).
	WorkStealing bool
	// CPUCoresPre is how many CPU cores stage 1 gets; the remainder go to
	// stage 3. Ignored for GPUDepth 0 (single stage uses all cores).
	CPUCoresPre int
}

// Validate reports whether the config is well-formed for a CPU with nCores.
func (c Config) Validate(nCores int) error {
	if c.GPUDepth < 0 || c.GPUDepth > MaxGPUDepth {
		return fmt.Errorf("pipeline: GPU depth %d out of [0,%d]", c.GPUDepth, MaxGPUDepth)
	}
	if c.GPUDepth == 0 {
		if c.InsertOn == apu.GPU || c.DeleteOn == apu.GPU {
			return fmt.Errorf("pipeline: index ops on GPU require a GPU stage")
		}
		if c.ScanOn == apu.GPU {
			return fmt.Errorf("pipeline: scans on GPU require a GPU stage")
		}
		return nil
	}
	if c.CPUCoresPre < 1 || c.CPUCoresPre >= nCores {
		return fmt.Errorf("pipeline: CPU core split %d out of [1,%d]", c.CPUCoresPre, nCores-1)
	}
	return nil
}

// StageOf returns the stage that runs task id under this config.
func (c Config) StageOf(id task.ID) Stage {
	if c.GPUDepth == 0 {
		return StageCPUPre
	}
	switch id {
	case task.RV, task.PP, task.MM:
		return StageCPUPre
	case task.INInsert:
		if c.InsertOn == apu.GPU {
			return StageGPU
		}
		return StageCPUPre
	case task.INDelete:
		if c.DeleteOn == apu.GPU {
			return StageGPU
		}
		return StageCPUPre
	case task.SC:
		if c.ScanOn == apu.GPU {
			return StageGPU
		}
		return StageCPUPre
	case task.LG, task.SD:
		// LG (WAL group commit) is CPU work with a disk dependency; it runs
		// after WR, in the post stage with SD, regardless of GPU depth.
		return StageCPUPost
	}
	for i, t := range gpuChain {
		if t == id {
			if i < c.GPUDepth {
				return StageGPU
			}
			return StageCPUPost
		}
	}
	return StageCPUPost
}

// Tasks returns the tasks of stage s in pipeline order.
func (c Config) Tasks(s Stage) []task.ID {
	var out []task.ID
	for _, id := range task.All() {
		if c.StageOf(id) == s {
			out = append(out, id)
		}
	}
	return out
}

// Stages returns the number of non-empty stages.
func (c Config) Stages() int {
	n := 0
	for s := StageCPUPre; s < numStages; s++ {
		if len(c.Tasks(s)) > 0 {
			n++
		}
	}
	return n
}

// Placement returns the demand-model placement flags for task id: whether its
// affinity partner shares the stage, and whether it runs on the CPU.
func (c Config) Placement(id task.ID) task.Placement {
	st := c.StageOf(id)
	pl := task.Placement{OnCPU: st.Device() == apu.CPU}
	if partner, ok := task.AffinityPartner(id); ok {
		pl.WithAffinityPartner = c.StageOf(partner) == st
	}
	return pl
}

// CoresFor returns how many CPU cores stage s may use, given nCores total.
func (c Config) CoresFor(s Stage, nCores int) int {
	if s == StageGPU {
		return 0
	}
	if c.GPUDepth == 0 {
		return nCores
	}
	if s == StageCPUPre {
		return c.CPUCoresPre
	}
	return nCores - c.CPUCoresPre
}

// String renders the paper's pipeline notation, e.g.
// "[RV,PP,MM]CPU→[IN.S,KC,RD]GPU→[WR,SD]CPU ws". Index update placement is
// implicit in the stage listings.
func (c Config) String() string {
	var parts []string
	for s := StageCPUPre; s < numStages; s++ {
		tasks := c.Tasks(s)
		if len(tasks) == 0 {
			continue
		}
		names := make([]string, len(tasks))
		for i, t := range tasks {
			names[i] = t.String()
		}
		dev := "CPU"
		if s == StageGPU {
			dev = "GPU"
		}
		parts = append(parts, "["+strings.Join(names, ",")+"]"+dev)
	}
	s := strings.Join(parts, "→")
	if c.WorkStealing {
		s += " ws"
	}
	return s
}

// MegaKV returns Mega-KV's static pipeline (§II-B, Fig 3): network processing
// on the CPU, all three index operations on the GPU, read-and-send on the
// CPU, no work stealing. The 4 Kaveri cores split 2/2 between receiver and
// sender threads.
func MegaKV() Config {
	return Config{
		GPUDepth:     1,
		InsertOn:     apu.GPU,
		DeleteOn:     apu.GPU,
		WorkStealing: false,
		CPUCoresPre:  2,
	}
}

// Enumerate returns every valid configuration for a CPU with nCores,
// including the pure-CPU pipeline. This is the space the cost model searches
// exhaustively (§IV-B: "we search the entire configuration space").
func Enumerate(nCores int) []Config {
	var out []Config
	out = append(out, Config{GPUDepth: 0}) // pure CPU
	kinds := []apu.Kind{apu.CPU, apu.GPU}
	for depth := 1; depth <= MaxGPUDepth; depth++ {
		for _, ins := range kinds {
			for _, del := range kinds {
				// CPU first: at ScanRatio 0 the scan placement prices
				// identically, and Best keeps the earlier-enumerated config,
				// so scan-free workloads keep their pre-SCAN winners.
				for _, scan := range kinds {
					for _, ws := range []bool{false, true} {
						for split := 1; split < nCores; split++ {
							out = append(out, Config{
								GPUDepth:     depth,
								InsertOn:     ins,
								DeleteOn:     del,
								ScanOn:       scan,
								WorkStealing: ws,
								CPUCoresPre:  split,
							})
						}
					}
				}
			}
		}
	}
	return out
}

package pipeline

import (
	"testing"
	"time"

	"repro/internal/apu"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/task"
	"repro/internal/workload"
)

func TestAtomicDisruptionBounds(t *testing.T) {
	if got := atomicDisruption(0, time.Millisecond); got != 0 {
		t.Fatalf("no atomics → %v", got)
	}
	if got := atomicDisruption(1000, 0); got != 0 {
		t.Fatalf("zero window → %v", got)
	}
	// 600 atomics at 150ns over 300µs = 2M/s x 150ns = 0.3 extra µ.
	got := atomicDisruption(600, 300*time.Microsecond)
	if got < 0.29 || got > 0.31 {
		t.Fatalf("disruption = %v, want ~0.3", got)
	}
	// The GPU's own CAS serialization caps the issue rate (3.1M/s), bounding
	// the added µ at ~0.465 no matter how many atomics a batch carries.
	capVal := atomicDisruption(1e9, time.Microsecond)
	if capVal < 0.46 || capVal > 0.47 {
		t.Fatalf("capped disruption = %v, want ~0.465", capVal)
	}
	if atomicDisruption(1e12, time.Microsecond) != capVal {
		t.Fatal("disruption not capped")
	}
}

func TestGPUUpdatesPoisonCPUStages(t *testing.T) {
	// The §V-D1 mechanism end-to-end in the executor: the same batch priced
	// with index updates on the GPU must show a slower CPU-post stage than
	// with updates on the CPU (hUMA atomic disruption), for a write-bearing
	// workload.
	st := store.New(store.Config{MemoryBytes: 16 << 20, IndexEntries: 200000, Seed: 3})
	model := apu.NewModel(apu.KaveriPlatform(), 0, 1)
	exec := NewExecutor(model, st, netsim.KernelNetworking())
	spec, _ := workload.SpecByName("K16-G95-U")
	gen := workload.NewGenerator(spec, 50000, 5)
	for i := uint64(1); i <= 30000; i++ {
		st.Set(gen.KeyAt(i, nil), make([]byte, 64))
	}
	queries := gen.Batch(8000)

	onGPU := &Batch{Queries: queries, Config: Config{
		GPUDepth: 1, InsertOn: apu.GPU, DeleteOn: apu.GPU, CPUCoresPre: 2}}
	exec.ExecuteBatch(onGPU)

	onCPU := &Batch{Queries: queries, Config: Config{
		GPUDepth: 1, InsertOn: apu.CPU, DeleteOn: apu.CPU, CPUCoresPre: 2}}
	exec.ExecuteBatch(onCPU)

	// CPU-post runs the same tasks in both configs; with updates on the GPU
	// it must be inflated by the atomic disruption.
	if onGPU.Times.Dur[StageCPUPost] <= onCPU.Times.Dur[StageCPUPost] {
		t.Fatalf("GPU-resident updates should inflate CPU-post: %v vs %v",
			onGPU.Times.Dur[StageCPUPost], onCPU.Times.Dur[StageCPUPost])
	}
}

func TestGPUSerialFracRaisesUpdateKernelCost(t *testing.T) {
	m := apu.NewModel(apu.KaveriPlatform(), 0, 1)
	base := apu.Work{N: 1000, InstrPerQuery: 140, MemAccessesPerQuery: 2}
	serial := base
	serial.GPUSerialFrac = 0.2
	tb := m.TaskTime(apu.GPU, base, 0)
	ts := m.TaskTime(apu.GPU, serial, 0)
	if ts <= tb {
		t.Fatalf("serialized kernel should cost more: %v vs %v", ts, tb)
	}
	// CPU pricing ignores the flag.
	if m.TaskTime(apu.CPU, serial, 0) != m.TaskTime(apu.CPU, base, 0) {
		t.Fatal("GPUSerialFrac must not affect CPU pricing")
	}
}

func TestFig6UpdateShareMagnitude(t *testing.T) {
	// 5% updates should eat a disproportionate share of GPU index time
	// (paper: 35-56%). Check the ground-truth pricing directly.
	m := apu.NewModel(apu.KaveriPlatform(), 0, 1)
	prof := task.Profile{
		N: 20000, GetRatio: 0.95, KeySize: 16, ValueSize: 64,
		EvictionRate: 1, AvgInsertBuckets: 2, SearchProbes: 1.5,
	}
	mk := func(id task.ID) time.Duration {
		d := task.ForTask(id, prof, task.Placement{})
		return m.TaskTime(apu.GPU, apu.Work{
			N:                     d.Queries,
			InstrPerQuery:         d.Instr,
			MemAccessesPerQuery:   d.MemAccesses,
			CacheAccessesPerQuery: d.CacheAccesses,
			SeqBytesPerQuery:      d.SeqBytes,
			GPUSerialFrac:         d.GPUSerialFrac,
		}, 0)
	}
	search := mk(task.INSearch)
	ins := mk(task.INInsert)
	del := mk(task.INDelete)
	share := (ins + del).Seconds() / (search + ins + del).Seconds()
	if share < 0.2 || share > 0.7 {
		t.Fatalf("update share = %.2f, want the paper's 0.35-0.56 band (±)", share)
	}
	// Per-op: updates are ~an order of magnitude costlier than searches.
	perOpSearch := search.Seconds() / float64(19000)
	perOpIns := ins.Seconds() / float64(1000)
	if perOpIns < 4*perOpSearch {
		t.Fatalf("per-op insert %.1fns should be >>4x per-op search %.1fns",
			perOpIns*1e9, perOpSearch*1e9)
	}
}

func TestPCIeTransferTime(t *testing.T) {
	l := PCIeGen3x16()
	if l.TransferTime(0) != 0 {
		t.Fatal("zero bytes should be free")
	}
	small := l.TransferTime(64)
	big := l.TransferTime(12e9) // one second worth
	if small < l.Latency {
		t.Fatal("transfer must include link latency")
	}
	if big < time.Second {
		t.Fatalf("bandwidth term missing: %v", big)
	}
}

func TestLatencyPercentilesPopulated(t *testing.T) {
	st := store.New(store.Config{MemoryBytes: 8 << 20, IndexEntries: 100000, Seed: 9})
	model := apu.NewModel(apu.KaveriPlatform(), 0.02, 1)
	exec := NewExecutor(model, st, netsim.KernelNetworking())
	spec, _ := workload.SpecByName("K16-G95-U")
	gen := workload.NewGenerator(spec, 20000, 5)
	for i := uint64(1); i <= 20000; i++ {
		st.Set(gen.KeyAt(i, nil), make([]byte, 64))
	}
	r := &Runner{Exec: exec}
	provider := &StaticProvider{Config: MegaKV(), Interval: 300 * time.Microsecond, MinBatch: 256, MaxBatch: 1 << 14}
	res := r.Run(gen, provider, 25)
	if res.P50Latency <= 0 || res.P99Latency < res.P50Latency {
		t.Fatalf("percentiles: p50=%v p99=%v", res.P50Latency, res.P99Latency)
	}
}

package pipeline

import (
	"time"

	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Source produces batches of queries on demand.
type Source interface {
	// Batch returns n queries.
	Batch(n int) []proto.Query
}

// ConfigProvider chooses the configuration and batch size for the next batch,
// given the profile measured on the previous one (zero-value profile for the
// first batch). DIDO's adaptation loop implements this; Mega-KV's provider
// returns a constant config.
type ConfigProvider interface {
	NextConfig(prev *Batch) (Config, int)
}

// ProfileConsumer is an optional ConfigProvider extension: a provider that
// returns false from WantsProfile never reads Batch.Profile, which lets the
// live runner skip the per-batch workload measurement (including the
// O(index-size) population poll) entirely.
type ProfileConsumer interface{ WantsProfile() bool }

// StaticProvider always returns the same config and uses a feedback batch
// sizer targeting the scheduling interval (the periodic scheduling of
// Mega-KV: the batch grows until the bottleneck stage fills the interval).
type StaticProvider struct {
	Config   Config
	Interval time.Duration
	// MinBatch/MaxBatch clamp the controller.
	MinBatch, MaxBatch int

	sizer *BatchSizer
}

// NextConfig implements ConfigProvider, delegating sizing to the shared
// BatchSizer (multiplicative feedback toward the interval).
func (p *StaticProvider) NextConfig(prev *Batch) (Config, int) {
	if p.sizer == nil {
		p.sizer = &BatchSizer{Interval: p.Interval, Min: p.MinBatch, Max: p.MaxBatch}
	}
	return p.Config, p.sizer.Observe(prev)
}

// WantsProfile reports that the static provider only reads batch timings
// (for the sizer), never the measured workload profile.
func (p *StaticProvider) WantsProfile() bool { return false }

// TracePoint is one sample of the throughput trace (Fig 20).
type TracePoint struct {
	At         time.Duration
	Throughput float64 // queries/sec over the sampling window
	Config     Config
}

// Result summarizes a pipeline run.
type Result struct {
	// Queries is the number completed; Elapsed the simulated time span.
	Queries uint64
	Elapsed time.Duration
	// ThroughputMOPS is Queries/Elapsed in millions of ops/sec (Eq 4).
	ThroughputMOPS float64
	// CPUUtilization / GPUUtilization are busy fractions over the run.
	CPUUtilization, GPUUtilization float64
	// AvgLatency is the mean batch latency (arrival → last stage done).
	AvgLatency time.Duration
	// P50Latency / P99Latency are batch-latency percentiles.
	P50Latency, P99Latency time.Duration
	// AvgBatch is the mean batch size.
	AvgBatch float64
	// StageMean is the mean duration per stage.
	StageMean [3]time.Duration
	// StolenByCPU / StolenByGPU total work-stealing volume in queries.
	StolenByCPU, StolenByGPU uint64
	// Hits and Misses aggregate GET outcomes.
	Hits, Misses uint64
	// Trace samples throughput over time when tracing was enabled.
	Trace []TracePoint
	// Batches is the number of batches executed.
	Batches uint64
}

// Runner drives batches through the three pipeline stages on a discrete-event
// engine, with per-stage resources providing pipelining and back-pressure.
type Runner struct {
	Exec *Executor
	// TraceEvery, when positive, records a throughput sample each window.
	TraceEvery time.Duration
}

// Run executes nBatches batches from src, choosing per-batch config and size
// via provider. It returns aggregate metrics; the simulated clock starts at
// zero for each call.
func (r *Runner) Run(src Source, provider ConfigProvider, nBatches int) Result {
	eng := sim.NewEngine()
	resCPUPre := sim.NewResource(eng)
	resGPU := sim.NewResource(eng)
	resCPUPost := sim.NewResource(eng)

	var res Result
	var latSum time.Duration
	var batchSum uint64
	var stageSum [3]time.Duration
	var lastDone time.Duration
	var prev *Batch
	nCores := r.Exec.Model.Platform.CPU.Cores
	var cpuCoreBusy float64 // core-weighted CPU busy time (core·seconds)
	latHist := stats.NewHistogram(stats.LatencyBoundsMicros()...)

	var windowOps uint64
	windowStart := time.Duration(0)

	for i := 0; i < nBatches; i++ {
		cfg, n := provider.NextConfig(prev)
		if n < 1 {
			n = 1
		}
		b := &Batch{Seq: uint64(i), Queries: src.Batch(n), Config: cfg}
		r.Exec.ExecuteBatch(b)

		arrival := eng.Now()
		// Stage 1 (CPU-pre) admits the batch when its resource frees.
		t1 := resCPUPre.Acquire(b.Times.Dur[StageCPUPre])
		t2 := t1
		if b.Times.Dur[StageGPU] > 0 {
			t2 = resGPU.AcquireAt(t1, b.Times.Dur[StageGPU])
		}
		t3 := t2
		if b.Times.Dur[StageCPUPost] > 0 {
			t3 = resCPUPost.AcquireAt(t2, b.Times.Dur[StageCPUPost])
		}
		done := t3
		if done > lastDone {
			lastDone = done
		}

		latSum += done - arrival
		latHist.Observe(float64(done-arrival) / float64(time.Microsecond))
		batchSum += uint64(len(b.Queries))
		for s := 0; s < 3; s++ {
			stageSum[s] += b.Times.Dur[s]
		}
		cpuCoreBusy += b.Times.Dur[StageCPUPre].Seconds()*float64(cfg.CoresFor(StageCPUPre, nCores)) +
			b.Times.Dur[StageCPUPost].Seconds()*float64(cfg.CoresFor(StageCPUPost, nCores))
		res.StolenByCPU += uint64(b.Times.StolenByCPU)
		res.StolenByGPU += uint64(b.Times.StolenByGPU)
		res.Hits += uint64(b.Hits)
		res.Misses += uint64(b.Misses)
		res.Queries += uint64(len(b.Queries))
		res.Batches++

		// Advance the clock to when stage 1 can admit the next batch
		// (back-pressure: the pipeline is saturated, not open-loop).
		eng.Run(resCPUPre.BusyUntil())

		if r.TraceEvery > 0 {
			windowOps += uint64(len(b.Queries))
			for eng.Now()-windowStart >= r.TraceEvery {
				// A batch can span several windows; emit a point only for
				// windows in which work completed.
				if windowOps > 0 {
					res.Trace = append(res.Trace, TracePoint{
						At:         windowStart + r.TraceEvery,
						Throughput: float64(windowOps) / r.TraceEvery.Seconds(),
						Config:     cfg,
					})
					windowOps = 0
				}
				windowStart += r.TraceEvery
			}
		}
		prev = b
	}

	res.Elapsed = lastDone
	if res.Elapsed > 0 {
		res.ThroughputMOPS = stats.MOPS(res.Queries, res.Elapsed)
		res.CPUUtilization = clamp01(cpuCoreBusy / (res.Elapsed.Seconds() * float64(nCores)))
		res.GPUUtilization = clamp01(float64(resGPU.BusyTotal()) / float64(res.Elapsed))
	}
	if res.Batches > 0 {
		res.AvgLatency = latSum / time.Duration(res.Batches)
		res.P50Latency = time.Duration(latHist.Quantile(0.5)) * time.Microsecond
		res.P99Latency = time.Duration(latHist.Quantile(0.99)) * time.Microsecond
		res.AvgBatch = float64(batchSum) / float64(res.Batches)
		for s := 0; s < 3; s++ {
			res.StageMean[s] = stageSum[s] / time.Duration(res.Batches)
		}
	}
	return res
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

package pipeline

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cuckoo"
	"repro/internal/proto"
)

// ---- helpers ------------------------------------------------------------

// runCoalesced submits frames so they coalesce into (at most) one big batch:
// a dummy frame seals first and its batch parks in the testStage1Dequeued
// hook, so everything submitted meanwhile accumulates behind the inflight
// count and seals together on release. Returns the completed batches and the
// runner's final stats. The dummy frame is excluded from the caller's view.
func runCoalesced(t *testing.T, st LiveStore, opts LiveOptions, frames []*LiveFrame) ([]Batch, LiveStats) {
	t.Helper()
	done := make(chan *LiveFrame, len(frames)+8)
	var obMu sync.Mutex
	var batches []Batch
	opts.Done = func(f *LiveFrame) { done <- f }
	opts.OnBatchDone = func(b *Batch) {
		obMu.Lock()
		batches = append(batches, *b)
		obMu.Unlock()
	}
	if opts.BatchInterval == 0 {
		opts.BatchInterval = time.Hour // only explicit seals
	}
	r := NewLiveRunner(st, opts)
	defer r.Close()
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var once sync.Once
	r.testStage1Dequeued = func() {
		once.Do(func() {
			entered <- struct{}{}
			<-release
		})
	}
	if !r.Submit(getFrame("warm")) {
		t.Fatal("Submit dummy rejected")
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("stage-1 worker never parked on the dummy batch")
	}
	for i, f := range frames {
		if !r.Submit(f) {
			t.Fatalf("Submit frame %d rejected", i)
		}
	}
	close(release)
	collectFrames(t, done, len(frames)+1)
	r.Close()
	obMu.Lock()
	defer obMu.Unlock()
	return batches, r.Stats()
}

// stealWorkload builds a deterministic mixed workload: per-frame keys are
// disjoint (cross-frame write order inside a batch is unspecified under
// chunking, exactly like concurrent clients on the wire), and every read has
// a single correct answer under the batch's writes-before-reads contract.
func stealWorkload(nframes, presets int) []*LiveFrame {
	frames := make([]*LiveFrame, nframes)
	for i := range frames {
		f := &LiveFrame{}
		add := func(q proto.Query) { f.Queries = append(f.Queries, q) }
		add(proto.Query{Op: proto.OpSet, Key: []byte(fmt.Sprintf("s%03d", i)), Value: []byte(fmt.Sprintf("sv%03d", i))})
		add(proto.Query{Op: proto.OpGet, Key: []byte(fmt.Sprintf("s%03d", i))})
		add(proto.Query{Op: proto.OpDelete, Key: []byte(fmt.Sprintf("d%03d", i))})
		add(proto.Query{Op: proto.OpGet, Key: []byte(fmt.Sprintf("d%03d", i))})
		add(proto.Query{Op: proto.OpGet, Key: []byte(fmt.Sprintf("absent%03d", i))})
		for j := 0; j < 11; j++ {
			add(proto.Query{Op: proto.OpGet, Key: []byte(fmt.Sprintf("p%03d", (i*11+j)%presets))})
		}
		frames[i] = f
	}
	return frames
}

// stealStore presets the keys stealWorkload expects.
func stealStore(nframes, presets int) *fakeLiveStore {
	st := newFakeLiveStore()
	for i := 0; i < presets; i++ {
		st.m[fmt.Sprintf("p%03d", i)] = []byte(fmt.Sprintf("pv%03d", i))
	}
	for i := 0; i < nframes; i++ {
		st.m[fmt.Sprintf("d%03d", i)] = []byte("doomed")
	}
	return st
}

// checkStealWorkload asserts every response of every frame against the
// workload's single correct answer — this is the exactly-once check: each
// query slot holds exactly the response its query must produce.
func checkStealWorkload(t *testing.T, frames []*LiveFrame, presets int) {
	t.Helper()
	for i, f := range frames {
		if f.Err {
			t.Fatalf("frame %d poisoned", i)
		}
		if len(f.Resps) != len(f.Queries) {
			t.Fatalf("frame %d: %d resps for %d queries", i, len(f.Resps), len(f.Queries))
		}
		expect := func(qi int, status proto.Status, val string) {
			got := f.Resps[qi]
			if got.Status != status || (val != "" && string(got.Value) != val) {
				t.Fatalf("frame %d query %d = %v %q, want %v %q", i, qi, got.Status, got.Value, status, val)
			}
		}
		expect(0, proto.StatusOK, "")                       // SET
		expect(1, proto.StatusOK, fmt.Sprintf("sv%03d", i)) // GET own SET
		expect(2, proto.StatusOK, "")                       // DELETE preset
		expect(3, proto.StatusNotFound, "")                 // GET deleted
		expect(4, proto.StatusNotFound, "")                 // GET absent
		for j := 0; j < 11; j++ {
			expect(5+j, proto.StatusOK, fmt.Sprintf("pv%03d", (i*11+j)%presets))
		}
	}
}

// ---- equivalence --------------------------------------------------------

// TestLiveStealEquivalence: with stealing on, a chunk-executed batch must
// answer every query exactly once with exactly the responses the
// fixed-assignment path produces — across a multi-stage config, the fused
// single-stage config, and the wide batched read path.
func TestLiveStealEquivalence(t *testing.T) {
	const nframes, presets = 24, 40
	ws := MegaKV()
	ws.WorkStealing = true
	fused := Config{GPUDepth: 0, WorkStealing: true}
	cases := []struct {
		name string
		cfg  Config
		wide bool
	}{
		{"multi-stage", ws, false},
		{"fused-single-stage", fused, false},
		{"wide-path", ws, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(steal bool) []*LiveFrame {
				var st LiveStore = stealStore(nframes, presets)
				wideMin := -1
				if tc.wide {
					st = &fakeWideStore{fakeLiveStore: stealStore(nframes, presets)}
					wideMin = 1
				}
				frames := stealWorkload(nframes, presets)
				_, stats := runCoalesced(t, st, LiveOptions{
					Provider:    &fixedProvider{cfg: tc.cfg, n: 1 << 20},
					Steal:       steal,
					WideMinGets: wideMin,
				}, frames)
				if steal && stats.StealBatches == 0 {
					t.Fatal("steal run never executed a chunked batch")
				}
				if !steal && stats.StealBatches != 0 {
					t.Fatalf("StealBatches = %d with stealing off", stats.StealBatches)
				}
				return frames
			}
			off := run(false)
			on := run(true)
			checkStealWorkload(t, on, presets)
			for i := range off {
				for qi := range off[i].Resps {
					a, b := off[i].Resps[qi], on[i].Resps[qi]
					if a.Status != b.Status || string(a.Value) != string(b.Value) {
						t.Fatalf("frame %d query %d: off=%v %q on=%v %q",
							i, qi, a.Status, a.Value, b.Status, b.Value)
					}
				}
			}
		})
	}
}

// TestLiveStealPanicContainment: a poisoned key inside a chunk must poison
// only its own frame — chunks partition on frame boundaries, so containment
// is identical to the fixed path's per-frame blast radius.
func TestLiveStealPanicContainment(t *testing.T) {
	const nframes, presets = 24, 40
	st := stealStore(nframes, presets)
	st.panicOn = "p007"
	ws := MegaKV()
	ws.WorkStealing = true
	frames := stealWorkload(nframes, presets)
	_, stats := runCoalesced(t, st, LiveOptions{
		Provider: &fixedProvider{cfg: ws, n: 1 << 20},
		Steal:    true,
	}, frames)
	if stats.StealBatches == 0 {
		t.Fatal("steal run never executed a chunked batch")
	}
	poisoned := 0
	for i, f := range frames {
		hasKey := false
		for _, q := range f.Queries {
			if q.Op == proto.OpGet && string(q.Key) == "p007" {
				hasKey = true
			}
		}
		if hasKey {
			poisoned++
			if !f.Err {
				t.Fatalf("frame %d read the poisoned key but is not marked Err", i)
			}
			continue
		}
		if f.Err {
			t.Fatalf("frame %d poisoned without touching the bad key", i)
		}
		if len(f.Resps) != len(f.Queries) {
			t.Fatalf("healthy frame %d: %d resps for %d queries", i, len(f.Resps), len(f.Queries))
		}
	}
	if poisoned == 0 {
		t.Fatal("workload never touched the poisoned key")
	}
}

// TestLiveStealWidePanicFallsBackPerChunk: a panicking batched store call
// under chunked wide reads must fall back to the scalar loop chunk-by-chunk
// and still serve every query.
func TestLiveStealWidePanicFallsBackPerChunk(t *testing.T) {
	const nframes, presets = 24, 40
	st := &fakeWideStore{fakeLiveStore: stealStore(nframes, presets)}
	st.panicWideReads = true
	ws := MegaKV()
	ws.WorkStealing = true
	frames := stealWorkload(nframes, presets)
	_, stats := runCoalesced(t, st, LiveOptions{
		Provider:    &fixedProvider{cfg: ws, n: 1 << 20},
		Steal:       true,
		WideMinGets: 1,
	}, frames)
	if stats.StealBatches == 0 {
		t.Fatal("steal run never executed a chunked batch")
	}
	if st.scalarReads.Load() == 0 {
		t.Fatal("scalar fallback did not serve the chunks")
	}
	checkStealWorkload(t, frames, presets)
}

// ---- gating -------------------------------------------------------------

// TestLiveStealGating: chunking engages only when the runner opts in AND the
// batch's sealed config asked for it AND the batch spans at least two chunks.
func TestLiveStealGating(t *testing.T) {
	ws := MegaKV()
	ws.WorkStealing = true
	const presets = 40
	big, small := 24, 4 // 16 queries per frame: 384 vs 64 queries
	cases := []struct {
		name    string
		steal   bool
		cfg     Config
		nframes int
		want    bool
	}{
		{"on", true, ws, big, true},
		{"runner-opt-out", false, ws, big, false},
		{"config-off", true, MegaKV(), big, false},
		{"batch-too-small", true, ws, small, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frames := stealWorkload(tc.nframes, presets)
			_, stats := runCoalesced(t, stealStore(tc.nframes, presets), LiveOptions{
				Provider: &fixedProvider{cfg: tc.cfg, n: 1 << 20},
				Steal:    tc.steal,
			}, frames)
			if got := stats.StealBatches > 0; got != tc.want {
				t.Fatalf("StealBatches = %d, want chunked=%v", stats.StealBatches, tc.want)
			}
			checkStealWorkload(t, frames, presets)
		})
	}
}

// ---- realized benefit ---------------------------------------------------

// sleepReadStore makes every scalar read cost a fixed wall duration, so the
// bottleneck stage's time is deterministic: sleeps overlap across workers
// even on GOMAXPROCS=1, which is what makes this assertable on any host.
type sleepReadStore struct {
	*fakeLiveStore
	d time.Duration
}

func (s *sleepReadStore) ReadCandidates(key []byte, cands []cuckoo.Location, dst []byte) ([]byte, bool) {
	time.Sleep(s.d)
	return s.fakeLiveStore.ReadCandidates(key, cands, dst)
}

// TestLiveStealReducesBottleneckStage is the live counterpart of the
// simulator's TestWorkStealingReducesBottleneck: with the read stage made the
// deterministic bottleneck, helpers from the other stage groups must claim
// chunks (StolenByCPU > 0) and cut the stage's wall time vs fixed
// assignment.
func TestLiveStealReducesBottleneckStage(t *testing.T) {
	const (
		nframes  = 16
		perFrame = 16
		sleep    = 200 * time.Microsecond
	)
	ws := MegaKV() // reads on their own stage; two other worker groups can help
	ws.WorkStealing = true
	mkFrames := func() []*LiveFrame {
		frames := make([]*LiveFrame, nframes)
		for i := range frames {
			f := &LiveFrame{}
			for j := 0; j < perFrame; j++ {
				f.Queries = append(f.Queries, proto.Query{Op: proto.OpGet, Key: []byte(fmt.Sprintf("p%03d", (i*perFrame+j)%40))})
			}
			frames[i] = f
		}
		return frames
	}
	run := func(steal bool) (time.Duration, Batch, LiveStats) {
		st := &sleepReadStore{fakeLiveStore: stealStore(0, 40), d: sleep}
		batches, stats := runCoalesced(t, st, LiveOptions{
			Provider: &fixedProvider{cfg: ws, n: 1 << 20},
			Steal:    steal,
		}, mkFrames())
		// The workload batch is the one whose bottleneck stage dwarfs the
		// dummy's single read.
		var best Batch
		for _, b := range batches {
			if b.Times.Tmax > best.Times.Tmax {
				best = b
			}
		}
		return best.Times.Tmax, best, stats
	}

	offTmax, _, _ := run(false)
	onTmax, onBatch, onStats := run(true)

	floor := time.Duration(nframes*perFrame) * sleep // 256 sequential sleeps
	if offTmax < floor {
		t.Fatalf("fixed-assignment Tmax = %v, below the %v sequential floor — bottleneck not where expected", offTmax, floor)
	}
	if onTmax >= offTmax*3/4 {
		t.Fatalf("steal Tmax = %v vs fixed %v: helpers did not reduce the bottleneck stage", onTmax, offTmax)
	}
	if onBatch.Times.StolenByCPU < StealChunkQueries {
		t.Fatalf("StolenByCPU = %d, want >= one chunk (%d)", onBatch.Times.StolenByCPU, StealChunkQueries)
	}
	if onStats.StolenChunks == 0 || onStats.StolenQueries != uint64(onBatch.Times.StolenByCPU) {
		t.Fatalf("stats stolen chunks=%d queries=%d, batch StolenByCPU=%d — bookkeeping out of sync",
			onStats.StolenChunks, onStats.StolenQueries, onBatch.Times.StolenByCPU)
	}
}

// TestLiveStealConcurrentWriters hammers a stealing runner with concurrent
// writer goroutines while readers stream GETs: every reader response must be
// one of the two legal answers for its key (unwritten yet, or the writers'
// only value), and the run must actually execute chunked batches. Run under
// -race this is the steal path's data-race probe.
func TestLiveStealConcurrentWriters(t *testing.T) {
	const presets = 16
	st := stealStore(0, presets)
	ws := MegaKV()
	ws.WorkStealing = true
	tracked := make(map[*LiveFrame]bool)
	var trMu sync.Mutex
	var failures []string
	done := make(chan *LiveFrame, 256)
	// Response values alias the batch arena and are only valid during
	// delivery (the server serializes inside Done), so the reader frames are
	// validated synchronously here, not after the fact.
	check := func(f *LiveFrame) {
		if f.Err {
			failures = append(failures, "reader frame poisoned")
			return
		}
		for qi, q := range f.Queries {
			got := f.Resps[qi]
			switch {
			case q.Key[0] == 'w' && got.Status == proto.StatusOK && string(got.Value) != "wv":
				failures = append(failures, fmt.Sprintf("writer key %q = %q, want \"wv\"", q.Key, got.Value))
			case q.Key[0] == 'w' && got.Status != proto.StatusOK && got.Status != proto.StatusNotFound:
				failures = append(failures, fmt.Sprintf("writer key %q status %v", q.Key, got.Status))
			case q.Key[0] == 'p' && got.Status != proto.StatusOK:
				failures = append(failures, fmt.Sprintf("preset key %q = %v, want OK", q.Key, got.Status))
			}
		}
	}
	r := NewLiveRunner(st, LiveOptions{
		Provider:      &fixedProvider{cfg: ws, n: 256},
		BatchInterval: time.Millisecond,
		Steal:         true,
		Done: func(f *LiveFrame) {
			trMu.Lock()
			ok := tracked[f]
			if ok {
				check(f)
			}
			trMu.Unlock()
			if ok {
				done <- f
			}
		},
	})
	defer r.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Submit(setFrame(fmt.Sprintf("w%02d", (w*7+i)%8), "wv"))
			}
		}(w)
	}

	deadline := time.Now().Add(10 * time.Second)
	var readerFrames []*LiveFrame
	for r.Stats().StealBatches < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no chunked batches executed under load")
		}
		f := &LiveFrame{}
		for j := 0; j < 16; j++ {
			if j%2 == 0 {
				f.Queries = append(f.Queries, proto.Query{Op: proto.OpGet, Key: []byte(fmt.Sprintf("w%02d", j%8))})
			} else {
				f.Queries = append(f.Queries, proto.Query{Op: proto.OpGet, Key: []byte(fmt.Sprintf("p%03d", j%presets))})
			}
		}
		trMu.Lock()
		tracked[f] = true
		trMu.Unlock()
		if r.Submit(f) {
			readerFrames = append(readerFrames, f)
			collectFrames(t, done, 1)
		}
	}
	close(stop)
	wg.Wait()
	r.Close()

	trMu.Lock()
	defer trMu.Unlock()
	if len(readerFrames) == 0 {
		t.Fatal("no reader frames were admitted")
	}
	if len(failures) > 0 {
		t.Fatalf("%d bad responses, first: %s", len(failures), failures[0])
	}
}

package megakv

import (
	"testing"

	"repro/internal/dido"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func opts() dido.Options {
	o := dido.DefaultOptions(16 << 20)
	o.Noise = 0
	o.IndexEntries = 200000
	return o
}

func TestCoupledIsStaticMegaKV(t *testing.T) {
	s := NewCoupled(opts())
	cfg := s.CurrentConfig()
	want := pipeline.MegaKV()
	if cfg != want {
		t.Fatalf("coupled config = %v, want %v", cfg, want)
	}
	if s.Exec.PCIe != nil {
		t.Fatal("coupled Mega-KV must not pay PCIe transfers")
	}
	spec, _ := workload.SpecByName("K16-G95-U")
	gen := workload.NewGenerator(spec, 30000, 5)
	s.Warm(gen.KeyAt, 20000, gen.Spec.ValueSize)
	res := s.Run(gen, 20)
	if res.ThroughputMOPS <= 0 {
		t.Fatal("no throughput")
	}
	if s.Replans() != 0 {
		t.Fatal("baseline must never adapt")
	}
}

func TestDiscreteUsesDiscretePlatformAndPCIe(t *testing.T) {
	s := NewDiscrete(opts())
	if s.Exec.PCIe == nil {
		t.Fatal("discrete Mega-KV must model PCIe")
	}
	if s.Exec.Model.Platform.CPU.Cores != 16 {
		t.Fatalf("discrete CPU cores = %d, want 16", s.Exec.Model.Platform.CPU.Cores)
	}
	if s.CurrentConfig().CPUCoresPre != 8 {
		t.Fatalf("discrete core split = %d", s.CurrentConfig().CPUCoresPre)
	}
}

func TestDiscreteOutperformsCoupledAbsolute(t *testing.T) {
	// Paper §V-E: Mega-KV (Discrete) crushes the APU systems on absolute
	// throughput (5.8-23.6x vs DIDO) thanks to vastly bigger hardware. With
	// DPDK-class networking our discrete baseline must at least clearly beat
	// the coupled one.
	spec, _ := workload.SpecByName("K8-G95-U")

	c := NewCoupled(opts())
	genC := workload.NewGenerator(spec, 50000, 5)
	c.Warm(genC.KeyAt, 30000, genC.Spec.ValueSize)
	resC := c.Run(genC, 25)

	oD := opts()
	oD.Net = netsim.DPDKNetworking()
	d := NewDiscrete(oD)
	genD := workload.NewGenerator(spec, 50000, 5)
	d.Warm(genD.KeyAt, 30000, genD.Spec.ValueSize)
	resD := d.Run(genD, 25)

	if resD.ThroughputMOPS <= resC.ThroughputMOPS*1.5 {
		t.Fatalf("discrete (%.2f MOPS) should clearly beat coupled (%.2f MOPS)",
			resD.ThroughputMOPS, resC.ThroughputMOPS)
	}
}

func TestPCIeCostVisible(t *testing.T) {
	// The same platform with and without PCIe: transfers must slow the GPU
	// stage.
	spec, _ := workload.SpecByName("K16-G95-U")

	a := NewCoupled(opts())
	genA := workload.NewGenerator(spec, 30000, 5)
	a.Warm(genA.KeyAt, 20000, genA.Spec.ValueSize)

	b := NewCoupled(opts())
	b.Exec.PCIe = pipeline.PCIeGen3x16()
	genB := workload.NewGenerator(spec, 30000, 5)
	b.Warm(genB.KeyAt, 20000, genB.Spec.ValueSize)

	resA := a.Run(genA, 20)
	resB := b.Run(genB, 20)
	if resB.StageMean[pipeline.StageGPU] <= resA.StageMean[pipeline.StageGPU] {
		t.Fatalf("PCIe should lengthen the GPU stage: %v vs %v",
			resB.StageMean[pipeline.StageGPU], resA.StageMean[pipeline.StageGPU])
	}
}

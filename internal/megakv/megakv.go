// Package megakv provides the Mega-KV baseline (Zhang et al., VLDB 2015 —
// reference [1] of the DIDO paper): the static three-stage pipeline
// [RV,PP,MM]CPU → [IN]GPU → [KC,RD,WR,SD]CPU with periodic GPU scheduling and
// all index operations on the GPU.
//
// Two variants:
//
//   - Coupled: Mega-KV ported to the APU (the paper's "Mega-KV (Coupled)"),
//     sharing memory with no PCIe transfers but keeping the static pipeline.
//   - Discrete: Mega-KV on its original discrete platform (2× E5-2650v2 +
//     2× GTX 780), paying PCIe transfers around the GPU stage.
//
// Both are the same engine as DIDO with adaptation disabled — so every
// DIDO-vs-Mega-KV comparison is apples-to-apples on identical substrate code.
package megakv

import (
	"repro/internal/apu"
	"repro/internal/dido"
	"repro/internal/pipeline"
)

// NewCoupled returns Mega-KV (Coupled): the static pipeline on the APU.
func NewCoupled(opts dido.Options) *dido.System {
	cfg := pipeline.MegaKV()
	opts.StaticConfig = &cfg
	if opts.Platform.CPU.Cores == 0 {
		opts.Platform = apu.KaveriPlatform()
	}
	return dido.New(opts)
}

// NewDiscrete returns Mega-KV (Discrete): the static pipeline on the
// dual-socket + dual-GPU platform, with PCIe transfer costs on the GPU
// stage.
func NewDiscrete(opts dido.Options) *dido.System {
	cfg := pipeline.MegaKV()
	opts.StaticConfig = &cfg
	opts.Platform = apu.DiscretePlatform()
	// The discrete CPUs have 16 cores; Mega-KV splits receivers/senders
	// roughly evenly.
	cfg.CPUCoresPre = 8
	opts.StaticConfig = &cfg
	sys := dido.New(opts)
	sys.Exec.PCIe = pipeline.PCIeGen3x16()
	return sys
}

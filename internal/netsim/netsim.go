// Package netsim models the network front-end of the key-value store for the
// simulated experiments: per-query receive/send unit costs (the RV and SD
// tasks, which the paper pins to the CPU and estimates with profiled unit
// costs, §IV-B), frame batching, and an in-memory loopback link used by
// integration tests.
//
// Two cost profiles mirror the paper's §V-E distinction between Linux-kernel
// networking (what DIDO uses; "which overhead is huge") and a DPDK-style
// user-space driver (what Mega-KV (Discrete) uses on 8-byte-key workloads).
// A third profile represents the no-network mode the paper uses for the
// larger-key Fig 16 comparisons ("read packets from local memory").
package netsim

import (
	"sync"
	"time"

	"repro/internal/proto"
)

// CostProfile gives the per-query CPU cost of the RV and SD tasks.
type CostProfile struct {
	Name string
	// RVPerQuery is the per-query cost of receiving+delivering a packet.
	RVPerQuery time.Duration
	// SDPerQuery is the per-query cost of handing a response to the NIC.
	SDPerQuery time.Duration
	// InstrPerQueryRV/SD approximate the instruction footprint, used by the
	// cost model's Eq 1 for these tasks.
	InstrPerQueryRV float64
	InstrPerQuerySD float64
}

// KernelNetworking models Linux-kernel UDP I/O (paper: DIDO's evaluation
// mode). Per-query cost is small despite syscall overhead because the
// evaluation batches queries "in an Ethernet frame as many as possible"
// (§V-A): a 64 KB datagram carries ~2000 small queries, amortizing the
// ~5 µs kernel path to a few ns per query — which is how Mega-KV's Network
// Processing stage measures only 25-42 µs per 300 µs batch (Fig 4).
func KernelNetworking() CostProfile {
	return CostProfile{
		Name:            "kernel",
		RVPerQuery:      4 * time.Nanosecond,
		SDPerQuery:      4 * time.Nanosecond,
		InstrPerQueryRV: 15,
		InstrPerQuerySD: 15,
	}
}

// DPDKNetworking models a user-space NIC driver (Mega-KV (Discrete)'s mode
// for 8-byte-key workloads): no syscalls, polled rings.
func DPDKNetworking() CostProfile {
	return CostProfile{
		Name:            "dpdk",
		RVPerQuery:      2 * time.Nanosecond,
		SDPerQuery:      2 * time.Nanosecond,
		InstrPerQueryRV: 5,
		InstrPerQuerySD: 5,
	}
}

// NoNetworking models reading packets from local memory (the mode both
// systems use for the larger-key Fig 16 comparisons).
func NoNetworking() CostProfile {
	return CostProfile{
		Name:            "none",
		RVPerQuery:      1 * time.Nanosecond,
		SDPerQuery:      1 * time.Nanosecond,
		InstrPerQueryRV: 2,
		InstrPerQuerySD: 2,
	}
}

// Batcher packs queries into frames of at most MaxFrameBytes, the way the
// evaluation batches queries into Ethernet frames (§V-A).
type Batcher struct {
	buf     []byte
	queries []proto.Query
	bytes   int
	frames  [][]byte
}

// Add appends q to the current frame, flushing to a new frame when the size
// limit would be exceeded.
func (b *Batcher) Add(q proto.Query) {
	qLen := proto.EncodedQueryLen(q)
	if b.bytes+qLen > proto.MaxFrameBytes-64 || len(b.queries) >= 0xFFFF {
		b.Flush()
	}
	b.queries = append(b.queries, q)
	b.bytes += qLen
}

// Flush finalizes the current frame, if any.
func (b *Batcher) Flush() {
	if len(b.queries) == 0 {
		return
	}
	frame := proto.EncodeFrame(nil, b.queries)
	b.frames = append(b.frames, frame)
	b.queries = b.queries[:0]
	b.bytes = 0
	b.buf = b.buf[:0]
}

// Frames returns and clears the accumulated frames.
func (b *Batcher) Frames() [][]byte {
	b.Flush()
	out := b.frames
	b.frames = nil
	return out
}

// Loopback is an in-memory bidirectional link with bounded queues, used by
// integration tests to drive a server pipeline without sockets.
type Loopback struct {
	mu       sync.Mutex
	toServer [][]byte
	toClient [][]byte
	dropped  uint64
	limit    int
}

// NewLoopback returns a loopback link with the given per-direction queue
// limit (0 means unbounded).
func NewLoopback(limit int) *Loopback {
	return &Loopback{limit: limit}
}

// ClientSend enqueues a frame toward the server; it reports false (drop) when
// the queue is full, as a real NIC ring would.
func (l *Loopback) ClientSend(frame []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.limit > 0 && len(l.toServer) >= l.limit {
		l.dropped++
		return false
	}
	l.toServer = append(l.toServer, frame)
	return true
}

// ServerRecv dequeues up to max frames destined to the server.
func (l *Loopback) ServerRecv(max int) [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.toServer)
	if max > 0 && n > max {
		n = max
	}
	out := l.toServer[:n:n]
	l.toServer = l.toServer[n:]
	return out
}

// ServerSend enqueues a response frame toward the client.
func (l *Loopback) ServerSend(frame []byte) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.limit > 0 && len(l.toClient) >= l.limit {
		l.dropped++
		return false
	}
	l.toClient = append(l.toClient, frame)
	return true
}

// ClientRecv dequeues up to max frames destined to the client.
func (l *Loopback) ClientRecv(max int) [][]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.toClient)
	if max > 0 && n > max {
		n = max
	}
	out := l.toClient[:n:n]
	l.toClient = l.toClient[n:]
	return out
}

// Dropped returns the number of frames dropped to full queues.
func (l *Loopback) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

package netsim

import (
	"fmt"
	"testing"

	"repro/internal/proto"
)

func TestCostProfiles(t *testing.T) {
	k, d, n := KernelNetworking(), DPDKNetworking(), NoNetworking()
	if k.RVPerQuery <= d.RVPerQuery {
		t.Fatal("kernel networking must cost more than DPDK (paper §V-E)")
	}
	if d.RVPerQuery <= n.RVPerQuery {
		t.Fatal("DPDK must cost more than local-memory reads")
	}
	for _, p := range []CostProfile{k, d, n} {
		if p.Name == "" || p.SDPerQuery <= 0 || p.InstrPerQueryRV <= 0 {
			t.Fatalf("incomplete profile %+v", p)
		}
	}
}

func TestBatcherSingleFrame(t *testing.T) {
	var b Batcher
	for i := 0; i < 100; i++ {
		b.Add(proto.Query{Op: proto.OpGet, Key: []byte(fmt.Sprintf("key-%d", i))})
	}
	frames := b.Frames()
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want 1", len(frames))
	}
	qs, err := proto.ParseFrame(frames[0], nil)
	if err != nil || len(qs) != 100 {
		t.Fatalf("parse: %d queries, err %v", len(qs), err)
	}
}

func TestBatcherSplitsOnSize(t *testing.T) {
	var b Batcher
	val := make([]byte, 8000)
	for i := 0; i < 20; i++ { // 20 × ~8KB > 64KB
		b.Add(proto.Query{Op: proto.OpSet, Key: []byte("k"), Value: val})
	}
	frames := b.Frames()
	if len(frames) < 2 {
		t.Fatalf("frames = %d, want >= 2", len(frames))
	}
	total := 0
	for _, f := range frames {
		if len(f) > proto.MaxFrameBytes {
			t.Fatalf("frame size %d exceeds max", len(f))
		}
		qs, err := proto.ParseFrame(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		total += len(qs)
	}
	if total != 20 {
		t.Fatalf("total queries = %d, want 20", total)
	}
}

func TestBatcherEmptyFlush(t *testing.T) {
	var b Batcher
	if frames := b.Frames(); len(frames) != 0 {
		t.Fatal("empty batcher produced frames")
	}
}

func TestLoopbackRoundTrip(t *testing.T) {
	l := NewLoopback(0)
	l.ClientSend([]byte("req1"))
	l.ClientSend([]byte("req2"))
	got := l.ServerRecv(0)
	if len(got) != 2 || string(got[0]) != "req1" {
		t.Fatalf("server recv = %v", got)
	}
	l.ServerSend([]byte("resp"))
	back := l.ClientRecv(0)
	if len(back) != 1 || string(back[0]) != "resp" {
		t.Fatalf("client recv = %v", back)
	}
	// Queues are drained.
	if len(l.ServerRecv(0)) != 0 || len(l.ClientRecv(0)) != 0 {
		t.Fatal("queues not drained")
	}
}

func TestLoopbackBoundedDrops(t *testing.T) {
	l := NewLoopback(2)
	if !l.ClientSend([]byte("a")) || !l.ClientSend([]byte("b")) {
		t.Fatal("sends under limit failed")
	}
	if l.ClientSend([]byte("c")) {
		t.Fatal("send over limit succeeded")
	}
	if l.Dropped() != 1 {
		t.Fatalf("dropped = %d", l.Dropped())
	}
	if !l.ServerSend([]byte("r1")) || !l.ServerSend([]byte("r2")) || l.ServerSend([]byte("r3")) {
		t.Fatal("server-side limit not enforced")
	}
}

func TestLoopbackRecvMax(t *testing.T) {
	l := NewLoopback(0)
	for i := 0; i < 5; i++ {
		l.ClientSend([]byte{byte(i)})
	}
	first := l.ServerRecv(2)
	if len(first) != 2 {
		t.Fatalf("recv(2) = %d frames", len(first))
	}
	rest := l.ServerRecv(0)
	if len(rest) != 3 {
		t.Fatalf("rest = %d frames", len(rest))
	}
}

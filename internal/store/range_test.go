package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRangeSeesAllLiveObjects populates a quiescent store and checks the walk
// returns exactly the live set.
func TestRangeSeesAllLiveObjects(t *testing.T) {
	s := New(Config{MemoryBytes: 8 << 20, IndexEntries: 1 << 12, Shards: 4})
	want := map[string]string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key-%04d", i)
		v := fmt.Sprintf("value-%04d", i)
		if _, _, err := s.Set([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	// Delete a slice of them; Range must not see deleted objects.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%04d", i)
		s.Delete([]byte(k))
		delete(want, k)
	}
	got := map[string]string{}
	s.Range(func(k, v []byte) bool {
		if _, dup := got[string(k)]; dup {
			t.Errorf("key %s visited twice", k)
		}
		got[string(k)] = string(v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("range saw %d objects, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s: range saw %q, want %q", k, got[k], v)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := New(Config{MemoryBytes: 8 << 20, IndexEntries: 1 << 12})
	for i := 0; i < 100; i++ {
		if _, _, err := s.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	s.Range(func(k, v []byte) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d objects", n)
	}
}

// TestRangeUnderChurn runs the walk concurrently with writers; under -race
// this pins the lock-free seqlock iteration. Every observed object must be
// internally consistent (value matches the key it was written with).
func TestRangeUnderChurn(t *testing.T) {
	s := New(Config{MemoryBytes: 8 << 20, IndexEntries: 1 << 12, Shards: 2})
	const keys = 256
	for i := 0; i < keys; i++ {
		if _, _, err := s.Set([]byte(fmt.Sprintf("ck%03d", i)), []byte(fmt.Sprintf("ck%03d-val-0", i))); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for gen := 1; !stop.Load(); gen++ {
				for i := w; i < keys; i += 3 {
					k := fmt.Sprintf("ck%03d", i)
					if gen%5 == 0 {
						s.Delete([]byte(k))
					} else if _, _, err := s.Set([]byte(k), []byte(fmt.Sprintf("%s-val-%d", k, gen))); err != nil {
						t.Errorf("set: %v", err)
						return
					}
				}
			}
		}(w)
	}
	for pass := 0; pass < 20; pass++ {
		s.Range(func(k, v []byte) bool {
			if len(k) < 5 || string(v[:len(k)]) != string(k) {
				t.Errorf("torn read: key %q value %q", k, v)
				return false
			}
			return true
		})
	}
	stop.Store(true)
	wg.Wait()
}

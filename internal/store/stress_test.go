package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/slab"
)

// TestConcurrentEvictionStress hammers a deliberately tiny arena so nearly
// every SET evicts while readers race the chunk reuse. Every value is a run
// of one repeated byte derived from its key, so a read that returns mixed
// bytes is a torn read — detectable even without the race detector. Run
// under -race (scripts/check.sh does) this also proves the seqlock read
// path is data-race-free.
func TestConcurrentEvictionStress(t *testing.T) {
	scfg := slab.Config{TotalBytes: 8 << 10, SlabBytes: 8 << 10, MinChunk: 256, MaxChunk: 256, Growth: 2}
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := New(Config{MemoryBytes: 8 << 10, IndexEntries: 1024, Seed: 5, Shards: shards, Slab: &scfg})
			const (
				workers = 8
				keys    = 128 // arena holds ~32 chunks: constant eviction
				iters   = 4000
			)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					dst := make([]byte, 0, 256)
					val := make([]byte, 100)
					for i := 0; i < iters; i++ {
						k := (w*31 + i*7) % keys
						key := []byte(fmt.Sprintf("stress-%03d", k))
						switch i % 4 {
						case 0, 1:
							v, ok := s.GetInto(key, dst[:0])
							if ok {
								fill := byte(k)
								for j, b := range v {
									if b != fill {
										t.Errorf("torn read key %d: byte %d = %#x, want %#x", k, j, b, fill)
										return
									}
								}
							}
							dst = v[:0]
						case 2:
							for j := range val {
								val[j] = byte(k)
							}
							if _, _, err := s.Set(key, val); err != nil {
								t.Errorf("set key %d: %v", k, err)
								return
							}
						case 3:
							s.Delete(key)
						}
					}
				}(w)
			}
			wg.Wait()
			// The store must still be coherent after the storm.
			if _, _, err := s.Set([]byte("post"), []byte{1, 2, 3}); err != nil {
				t.Fatalf("post-stress set: %v", err)
			}
			if v, ok := s.Get([]byte("post")); !ok || len(v) != 3 {
				t.Fatalf("post-stress get = %v/%v", v, ok)
			}
		})
	}
}

package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/slab"
)

func newTestStore() *Store {
	return New(Config{MemoryBytes: 4 << 20, IndexEntries: 10000, Seed: 42})
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero memory")
		}
	}()
	New(Config{})
}

func TestSetGetDelete(t *testing.T) {
	s := newTestStore()
	ins, dels, err := s.Set([]byte("alpha"), []byte("one"))
	if err != nil || ins != 1 || dels != 0 {
		t.Fatalf("set: ins=%d dels=%d err=%v", ins, dels, err)
	}
	v, ok := s.Get([]byte("alpha"))
	if !ok || string(v) != "one" {
		t.Fatalf("get = %q/%v", v, ok)
	}
	if _, ok := s.Get([]byte("beta")); ok {
		t.Fatal("missing key should miss")
	}
	if !s.Delete([]byte("alpha")) {
		t.Fatal("delete failed")
	}
	if s.Delete([]byte("alpha")) {
		t.Fatal("double delete should fail")
	}
	if _, ok := s.Get([]byte("alpha")); ok {
		t.Fatal("deleted key still readable")
	}
}

func TestOverwriteGeneratesDelete(t *testing.T) {
	s := newTestStore()
	s.Set([]byte("k"), []byte("v1"))
	ins, dels, err := s.Set([]byte("k"), []byte("v2-longer-value"))
	if err != nil || ins != 1 || dels != 1 {
		t.Fatalf("overwrite: ins=%d dels=%d err=%v", ins, dels, err)
	}
	v, ok := s.Get([]byte("k"))
	if !ok || string(v) != "v2-longer-value" {
		t.Fatalf("get after overwrite = %q", v)
	}
	st := s.StatsSnapshot()
	if st.LiveObjects != 1 {
		t.Fatalf("live objects = %d, want 1 (old object freed)", st.LiveObjects)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := newTestStore()
	s.Set([]byte("k"), []byte("value"))
	v, _ := s.Get([]byte("k"))
	v[0] = 'X'
	v2, _ := s.Get([]byte("k"))
	if string(v2) != "value" {
		t.Fatal("Get must return a copy")
	}
}

func TestEvictionCouplingInsertPlusDelete(t *testing.T) {
	// Small arena: one slab, single class. Filling it forces evictions, and
	// each evicting SET must report 1 insert + 1 delete (paper §II-C2).
	scfg := slab.Config{TotalBytes: 32 << 10, SlabBytes: 32 << 10, MinChunk: 512, MaxChunk: 512, Growth: 2}
	s := New(Config{MemoryBytes: 32 << 10, IndexEntries: 256, Seed: 1, Slab: &scfg})
	capacity := 64 // 32KB / 512B
	for i := 0; i < capacity; i++ {
		ins, dels, err := s.Set([]byte(fmt.Sprintf("key-%03d", i)), make([]byte, 300))
		if err != nil || ins != 1 || dels != 0 {
			t.Fatalf("warm set %d: ins=%d dels=%d err=%v", i, ins, dels, err)
		}
	}
	ins, dels, err := s.Set([]byte("overflow"), make([]byte, 300))
	if err != nil {
		t.Fatal(err)
	}
	if ins != 1 || dels != 1 {
		t.Fatalf("evicting SET: ins=%d dels=%d, want 1/1", ins, dels)
	}
	st := s.StatsSnapshot()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d", st.Evictions)
	}
	// The evicted key (key-000, LRU) must be gone; the new key present.
	if _, ok := s.Get([]byte("key-000")); ok {
		t.Fatal("evicted key still readable")
	}
	if _, ok := s.Get([]byte("overflow")); !ok {
		t.Fatal("new key missing")
	}
}

func TestTaskGranularGetPath(t *testing.T) {
	// Drive a GET through the decomposed tasks exactly as a pipeline would:
	// IN(Search) → KC → RD.
	s := newTestStore()
	s.Set([]byte("pipeline-key"), []byte("pipeline-value"))
	cands := s.IndexSearch([]byte("pipeline-key"), nil)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	var found bool
	for _, loc := range cands {
		if s.KeyCompare(loc, []byte("pipeline-key")) {
			v, ok := s.ReadValue(loc)
			if !ok || string(v) != "pipeline-value" {
				t.Fatalf("RD = %q/%v", v, ok)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("KC rejected the real object")
	}
}

func TestTaskGranularSetPath(t *testing.T) {
	// MM(alloc) → IN(Insert), with the eviction-delete obligation.
	s := newTestStore()
	h, ev, err := s.AllocForSet([]byte("k"), []byte("v"))
	if err != nil || ev != nil {
		t.Fatalf("alloc: %v %v", ev, err)
	}
	if !s.IndexInsert([]byte("k"), h) {
		t.Fatal("index insert failed")
	}
	v, ok := s.Get([]byte("k"))
	if !ok || string(v) != "v" {
		t.Fatalf("get = %q/%v", v, ok)
	}
	// IN(Delete) via task API.
	cands := s.IndexSearch([]byte("k"), nil)
	deleted := false
	for _, loc := range cands {
		if s.KeyCompare(loc, []byte("k")) && s.IndexDelete([]byte("k"), loc) {
			deleted = true
		}
	}
	if !deleted {
		t.Fatal("task-level delete failed")
	}
	if _, ok := s.Get([]byte("k")); ok {
		t.Fatal("key readable after task-level delete")
	}
}

func TestFreeHandleOnAbortedSet(t *testing.T) {
	s := newTestStore()
	h, _, err := s.AllocForSet([]byte("k"), []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	s.FreeHandle(h)
	if s.Arena().StatsSnapshot().LiveObjects != 0 {
		t.Fatal("aborted set leaked an object")
	}
}

func TestSampleIntervalCollection(t *testing.T) {
	s := newTestStore()
	for i := 0; i < 10; i++ {
		s.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
	}
	// Touch k0 three times, k1 once.
	s.Get([]byte("k0"))
	s.Get([]byte("k0"))
	s.Get([]byte("k0"))
	s.Get([]byte("k1"))
	counts := s.AdvanceSampleInterval(0)
	// All 10 sets stamped the interval, plus the touches bumped counts.
	var maxC uint32
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 4 { // k0: 1 (set) + 3 (gets)
		t.Fatalf("max access count = %d, want >= 4", maxC)
	}
	// New interval: old counts are not re-collected.
	counts2 := s.AdvanceSampleInterval(0)
	if len(counts2) != 0 {
		t.Fatalf("untouched interval returned %d counts", len(counts2))
	}
}

func TestStatsSnapshotCounters(t *testing.T) {
	s := newTestStore()
	s.Set([]byte("a"), []byte("1"))
	s.Get([]byte("a"))
	s.Get([]byte("zzz"))
	s.Delete([]byte("a"))
	st := s.StatsSnapshot()
	if st.Sets != 1 || st.Gets != 2 || st.Deletes != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	s := New(Config{MemoryBytes: 8 << 20, IndexEntries: 100000, Seed: 7})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				key := []byte(fmt.Sprintf("w%d-k%d", w, i%100))
				switch i % 4 {
				case 0, 1:
					if _, _, err := s.Set(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
						t.Errorf("set: %v", err)
						return
					}
				case 2:
					s.Get(key)
				case 3:
					s.Delete(key)
				}
			}
		}()
	}
	wg.Wait()
}

func TestSetGetPropertyModelCheck(t *testing.T) {
	// Property: the store agrees with a map model under sequential ops.
	type op struct {
		Kind byte
		K    uint8
		V    uint16
	}
	f := func(ops []op) bool {
		s := New(Config{MemoryBytes: 8 << 20, IndexEntries: 4096, Seed: 3})
		model := map[string]string{}
		for _, o := range ops {
			key := fmt.Sprintf("key-%d", o.K)
			switch o.Kind % 3 {
			case 0:
				val := fmt.Sprintf("val-%d", o.V)
				if _, _, err := s.Set([]byte(key), []byte(val)); err != nil {
					return false
				}
				model[key] = val
			case 1:
				got, ok := s.Get([]byte(key))
				want, wantOK := model[key]
				if ok != wantOK || (ok && string(got) != want) {
					return false
				}
			case 2:
				gotDel := s.Delete([]byte(key))
				_, wantOK := model[key]
				if gotDel != wantOK {
					return false
				}
				delete(model, key)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeValues(t *testing.T) {
	s := newTestStore()
	big := bytes.Repeat([]byte("x"), 10000)
	if _, _, err := s.Set([]byte("big"), big); err != nil {
		t.Fatal(err)
	}
	v, ok := s.Get([]byte("big"))
	if !ok || !bytes.Equal(v, big) {
		t.Fatal("big value corrupted")
	}
	// Beyond max chunk: error surfaces.
	if _, _, err := s.Set([]byte("huge"), bytes.Repeat([]byte("y"), 1<<20)); err == nil {
		t.Fatal("expected too-large error")
	}
}

package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/cuckoo"
)

func wideKey(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }

func newWideStore(shards int) *Store {
	return New(Config{MemoryBytes: 32 << 20, IndexEntries: 1 << 15, Seed: 11, Shards: shards})
}

// TestSearchBatchMatchesIndexSearch checks the shard-grouped wide search
// returns exactly the scalar per-key candidate lists, across shard counts and
// batch sizes, for present and absent keys alike.
func TestSearchBatchMatchesIndexSearch(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s := newWideStore(shards)
		for i := 0; i < 5000; i++ {
			if _, _, err := s.Set(wideKey(i), wideKey(i)); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range []int{1, 8, 64, 300} {
			keys := make([][]byte, n)
			for i := range keys {
				keys[i] = wideKey((i * 2711) % 7000) // hits and misses
			}
			lo := make([]int32, n)
			hi := make([]int32, n)
			cands := s.SearchBatch(keys, nil, lo, hi)
			for i, k := range keys {
				want := s.IndexSearch(k, nil)
				got := cands[lo[i]:hi[i]]
				if len(got) != len(want) {
					t.Fatalf("shards=%d n=%d key %d: %v != %v", shards, n, i, got, want)
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("shards=%d n=%d key %d: %v != %v", shards, n, i, got, want)
					}
				}
			}
		}
	}
}

// TestGetBatchMatchesGetInto checks the fused wide GET agrees with the scalar
// GetInto for every key of a mixed hit/miss batch, and that the hit count and
// miss convention (vlo = -1) are right.
func TestGetBatchMatchesGetInto(t *testing.T) {
	for _, shards := range []int{1, 4} {
		s := newWideStore(shards)
		for i := 0; i < 4000; i++ {
			if _, _, err := s.Set(wideKey(i), []byte(fmt.Sprintf("val-%06d", i))); err != nil {
				t.Fatal(err)
			}
		}
		n := 257
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = wideKey((i * 31) % 6000)
		}
		vlo := make([]int32, n)
		vhi := make([]int32, n)
		vals, hits := s.GetBatch(keys, nil, vlo, vhi)
		wantHits := 0
		for i, k := range keys {
			want, ok := s.GetInto(k, nil)
			if ok {
				wantHits++
				if vlo[i] < 0 || string(vals[vlo[i]:vhi[i]]) != string(want) {
					t.Fatalf("shards=%d key %d: batch %q (lo=%d) != scalar %q", shards, i, vals[vlo[i]:vhi[i]], vlo[i], want)
				}
			} else if vlo[i] != -1 {
				t.Fatalf("shards=%d key %d: batch hit %q but scalar missed", shards, i, vals[vlo[i]:vhi[i]])
			}
		}
		if hits != wantHits {
			t.Fatalf("shards=%d: hits = %d, want %d", shards, hits, wantHits)
		}
	}
}

// TestReadCandidatesBatchStaleFallsBack mirrors the scalar stale-candidate
// contract: candidates collected before an overwrite must still resolve the
// new value through the authoritative re-sweep, not report a miss.
func TestReadCandidatesBatchStaleFallsBack(t *testing.T) {
	s := newWideStore(4)
	keys := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	for _, k := range keys {
		if _, _, err := s.Set(k, append([]byte("old-"), k...)); err != nil {
			t.Fatal(err)
		}
	}
	lo := make([]int32, len(keys))
	hi := make([]int32, len(keys))
	cands := s.SearchBatch(keys, nil, lo, hi)
	// Overwrite beta (stale candidates) and delete gamma (genuine miss now).
	if _, _, err := s.Set([]byte("beta"), []byte("new-beta")); err != nil {
		t.Fatal(err)
	}
	s.Delete([]byte("gamma"))
	vlo := make([]int32, len(keys))
	vhi := make([]int32, len(keys))
	vals, hits := s.ReadCandidatesBatch(keys, cands, lo, hi, nil, vlo, vhi)
	if hits != 2 {
		t.Fatalf("hits = %d, want 2", hits)
	}
	if string(vals[vlo[0]:vhi[0]]) != "old-alpha" {
		t.Fatalf("alpha = %q", vals[vlo[0]:vhi[0]])
	}
	if string(vals[vlo[1]:vhi[1]]) != "new-beta" {
		t.Fatalf("beta = %q, want authoritative new-beta", vals[vlo[1]:vhi[1]])
	}
	if vlo[2] != -1 {
		t.Fatalf("gamma: vlo = %d, want -1 (deleted)", vlo[2])
	}
}

// TestReadCandidatesBatchEmptyFallsBack: keys with no candidates at all (a
// same-batch insert the search ran before) must resolve authoritatively.
func TestReadCandidatesBatchEmptyFallsBack(t *testing.T) {
	s := newWideStore(2)
	if _, _, err := s.Set([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	keys := [][]byte{[]byte("alpha"), []byte("missing")}
	lo := []int32{0, 0}
	hi := []int32{0, 0} // empty spans for both
	vlo := make([]int32, 2)
	vhi := make([]int32, 2)
	vals, hits := s.ReadCandidatesBatch(keys, nil, lo, hi, nil, vlo, vhi)
	if hits != 1 || string(vals[vlo[0]:vhi[0]]) != "one" {
		t.Fatalf("alpha = %q hits=%d, want one/1", vals[vlo[0]:vhi[0]], hits)
	}
	if vlo[1] != -1 {
		t.Fatalf("missing: vlo = %d, want -1", vlo[1])
	}
}

// TestReadCandidatesBatchForeignShardSkipped: candidates carrying another
// shard's id must be skipped (they cannot be this key's object), with the
// fallback still resolving the right value.
func TestReadCandidatesBatchForeignShardSkipped(t *testing.T) {
	s := New(Config{MemoryBytes: 8 << 20, IndexEntries: 4096, Seed: 3, Shards: 4})
	if _, _, err := s.Set([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Set([]byte("beta"), []byte("two")); err != nil {
		t.Fatal(err)
	}
	wrong := s.IndexSearch([]byte("beta"), nil)
	wrong = append(wrong, cuckoo.Location(0))
	keys := [][]byte{[]byte("alpha")}
	lo := []int32{0}
	hi := []int32{int32(len(wrong))}
	vlo := make([]int32, 1)
	vhi := make([]int32, 1)
	vals, hits := s.ReadCandidatesBatch(keys, wrong, lo, hi, nil, vlo, vhi)
	if hits != 1 || string(vals[vlo[0]:vhi[0]]) != "one" {
		t.Fatalf("alpha with foreign cands = %q hits=%d, want one/1", vals[vlo[0]:vhi[0]], hits)
	}
}

// TestGetBatchConcurrentChurn hammers GetBatch over a stable key population
// while writers churn a disjoint range: stable keys must never miss and must
// always read their exact value (the amortized version check may send them
// through the scalar fallback, never to a wrong answer).
func TestGetBatchConcurrentChurn(t *testing.T) {
	s := newWideStore(4)
	const stable = 512
	for i := 0; i < stable; i++ {
		if _, _, err := s.Set(wideKey(i), wideKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			j := 100000 + w*1000000
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Set(wideKey(j), wideKey(j))
				s.Delete(wideKey(j - 50))
				j++
			}
		}(w)
	}
	keys := make([][]byte, 128)
	for i := range keys {
		keys[i] = wideKey((i * 13) % stable)
	}
	vlo := make([]int32, len(keys))
	vhi := make([]int32, len(keys))
	var vals []byte
	for iter := 0; iter < 3000; iter++ {
		var hits int
		vals, hits = s.GetBatch(keys, vals[:0], vlo, vhi)
		if hits != len(keys) {
			t.Fatalf("iter %d: hits = %d, want %d", iter, hits, len(keys))
		}
		for i := range keys {
			if vlo[i] < 0 || string(vals[vlo[i]:vhi[i]]) != string(keys[i]) {
				t.Fatalf("iter %d key %d: got %q", iter, i, vals[vlo[i]:vhi[i]])
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestBatchPathZeroAllocs guards the pooled-scratch contract: with pre-sized
// caller arenas, steady-state GetBatch and SearchBatch allocate nothing.
func TestBatchPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted by race-detector instrumentation")
	}
	s := newWideStore(4)
	const n = 256
	for i := 0; i < 4000; i++ {
		if _, _, err := s.Set(wideKey(i), wideKey(i)); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = wideKey((i * 7) % 4000)
	}
	vlo := make([]int32, n)
	vhi := make([]int32, n)
	vals := make([]byte, 0, n*16)
	if avg := testing.AllocsPerRun(50, func() {
		vals, _ = s.GetBatch(keys, vals[:0], vlo, vhi)
	}); avg != 0 {
		t.Fatalf("GetBatch allocs/op = %v, want 0", avg)
	}
	lo := make([]int32, n)
	hi := make([]int32, n)
	cands := make([]cuckoo.Location, 0, n*2)
	if avg := testing.AllocsPerRun(50, func() {
		cands = s.SearchBatch(keys, cands[:0], lo, hi)
	}); avg != 0 {
		t.Fatalf("SearchBatch allocs/op = %v, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() {
		vals, _ = s.ReadCandidatesBatch(keys, cands, lo, hi, vals[:0], vlo, vhi)
	}); avg != 0 {
		t.Fatalf("ReadCandidatesBatch allocs/op = %v, want 0", avg)
	}
}

package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/slab"
)

func TestShardNormalization(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {16, 16}, {100, 16},
	}
	for _, c := range cases {
		if got := normalizeShards(c.in); got != c.want {
			t.Errorf("normalizeShards(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestShardedSetGetDelete(t *testing.T) {
	s := New(Config{MemoryBytes: 32 << 20, IndexEntries: 20000, Seed: 7, Shards: 8})
	if s.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", s.Shards())
	}
	const n = 5000
	key := func(i int) []byte { return []byte(fmt.Sprintf("shard-key-%05d", i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%05d-%05d", i, i*i)) }
	for i := 0; i < n; i++ {
		if _, _, err := s.Set(key(i), val(i)); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok := s.Get(key(i))
		if !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("get %d = %q/%v, want %q", i, v, ok, val(i))
		}
	}
	st := s.StatsSnapshot()
	if st.LiveObjects != n {
		t.Fatalf("live objects = %d, want %d", st.LiveObjects, n)
	}
	for i := 0; i < n; i += 2 {
		if !s.Delete(key(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := 0; i < n; i++ {
		_, ok := s.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("get %d after deletes = %v, want %v", i, ok, want)
		}
	}
}

func TestShardedTaskGranularRoundTrip(t *testing.T) {
	// Locations returned by IndexSearch must carry the shard id so the
	// task-granular ops resolve them without re-hashing the key.
	s := New(Config{MemoryBytes: 16 << 20, IndexEntries: 4096, Seed: 3, Shards: 4})
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("tg-%04d", i))
		if _, _, err := s.Set(k, []byte(fmt.Sprintf("tv-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("tg-%04d", i))
		var found bool
		for _, loc := range s.IndexSearch(k, nil) {
			if s.KeyCompare(loc, k) {
				v, ok := s.ReadValue(loc)
				if !ok || string(v) != fmt.Sprintf("tv-%04d", i) {
					t.Fatalf("ReadValue(%q) = %q/%v", k, v, ok)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("no matching candidate for %q", k)
		}
	}
}

func TestFailedOverwritePreservesOldValue(t *testing.T) {
	// A SET that fails (value too large for any class) must leave the
	// previous object intact: the allocation happens before the old entry
	// is touched. Regression for the old order that deleted first.
	scfg := slab.Config{TotalBytes: 32 << 10, SlabBytes: 32 << 10, MinChunk: 512, MaxChunk: 512, Growth: 2}
	s := New(Config{MemoryBytes: 32 << 10, IndexEntries: 256, Seed: 1, Slab: &scfg})
	if _, _, err := s.Set([]byte("k"), []byte("precious")); err != nil {
		t.Fatal(err)
	}
	_, _, err := s.Set([]byte("k"), make([]byte, 4096)) // exceeds the single 512B class
	if err != slab.ErrTooLarge {
		t.Fatalf("oversized overwrite err = %v, want ErrTooLarge", err)
	}
	v, ok := s.Get([]byte("k"))
	if !ok || string(v) != "precious" {
		t.Fatalf("old value lost after failed overwrite: %q/%v", v, ok)
	}
}

func TestOverwriteEvictingOwnOldObject(t *testing.T) {
	// One-chunk arena: overwriting the sole resident key forces the
	// allocator to evict that key's own old object. The store must notice
	// the victim aliases the object being overwritten (no double delete,
	// no free of the new object) and the new value must be readable.
	scfg := slab.Config{TotalBytes: 512, SlabBytes: 512, MinChunk: 512, MaxChunk: 512, Growth: 2}
	s := New(Config{MemoryBytes: 512, IndexEntries: 64, Seed: 1, Slab: &scfg})
	if _, _, err := s.Set([]byte("solo"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	ins, dels, err := s.Set([]byte("solo"), []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if ins != 1 || dels != 1 {
		t.Fatalf("self-evicting overwrite: ins=%d dels=%d, want 1/1", ins, dels)
	}
	v, ok := s.Get([]byte("solo"))
	if !ok || string(v) != "v2" {
		t.Fatalf("get after self-evicting overwrite = %q/%v", v, ok)
	}
	if st := s.StatsSnapshot(); st.LiveObjects != 1 {
		t.Fatalf("live objects = %d, want 1", st.LiveObjects)
	}
}

func TestOverwriteNoMissWindow(t *testing.T) {
	// Readers hammer a key that a writer continuously overwrites. Because
	// Set inserts the new entry before deleting the old one, a concurrent
	// Get must never miss and must observe one of the written values.
	s := New(Config{MemoryBytes: 4 << 20, IndexEntries: 4096, Seed: 9})
	key := []byte("hot")
	if _, _, err := s.Set(key, []byte("gen-0")); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]byte, 0, 64)
			for {
				select {
				case <-done:
					return
				default:
				}
				v, ok := s.GetInto(key, dst[:0])
				if !ok {
					t.Error("concurrent Get missed during overwrite")
					return
				}
				if !bytes.HasPrefix(v, []byte("gen-")) {
					t.Errorf("torn value %q", v)
					return
				}
			}
		}()
	}
	for i := 1; i <= 3000; i++ {
		if _, _, err := s.Set(key, []byte(fmt.Sprintf("gen-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

// BenchmarkStoreGetParallel measures the zero-alloc GET path under
// parallelism. The GetInto form must report 0 allocs/op, and Shards=8 should
// out-scale Shards=1 once writers contend.
func BenchmarkStoreGetParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New(Config{MemoryBytes: 64 << 20, IndexEntries: 1 << 16, Seed: 11, Shards: shards})
			const n = 4096
			keys := make([][]byte, n)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("bench-key-%06d", i))
				if _, _, err := s.Set(keys[i], bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				dst := make([]byte, 0, 256)
				i := 0
				for pb.Next() {
					v, ok := s.GetInto(keys[i&(n-1)], dst[:0])
					if !ok {
						b.Fatal("miss")
					}
					dst = v[:0]
					i++
				}
			})
		})
	}
}

// BenchmarkStoreSetParallel shows the sharding win: independent writers on
// one shard serialize on the slab lock; on 8 shards they mostly do not.
func BenchmarkStoreSetParallel(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s := New(Config{MemoryBytes: 64 << 20, IndexEntries: 1 << 16, Seed: 11, Shards: shards})
			const n = 4096
			keys := make([][]byte, n)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("bench-key-%06d", i))
			}
			val := bytes.Repeat([]byte{0xab}, 100)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, _, err := s.Set(keys[i&(n-1)], val); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// Package store assembles the cuckoo index and the slab arena into a
// key-value object store. It exposes two API levels:
//
//   - Composite operations (Get / GetInto / Set / Delete) for direct use —
//     this is what the real UDP server and the examples run on.
//
//   - Task-granular operations (IndexSearch, KeyCompare, ReadValue,
//     AllocForSet, IndexInsert, IndexDelete) matching the DIDO pipeline's
//     fine-grained task decomposition (paper §III-A: MM, IN, KC, RD), so the
//     pipeline engine can place each step on either processor independently.
//
// The store is sharded N-way by key hash (N a power of two, up to 16): each
// shard owns its own cuckoo table and slab arena with a 1/N budget, so
// writers on one shard never contend with readers or writers on another. A
// shard id is folded into bits 44..47 of every cuckoo Location (slab handles
// occupy bits 0..43), which keeps the task-granular API shard-oblivious:
// locations returned by IndexSearch are globally resolvable.
//
// Reads never take a lock on the data path: KeyCompare, ReadValue and the
// composite GET validate their copies against the slab's per-chunk seqlock
// versions, so a concurrent SET that evicts and reuses a chunk can never
// tear the bytes a reader returns.
//
// A SET under memory pressure evicts an existing object, producing one Insert
// and one Delete index operation (paper §II-C2); this coupling is preserved
// here and is what makes DIDO's flexible index-operation assignment matter.
package store

import (
	"fmt"
	"sync/atomic"

	"bytes"

	"repro/internal/cuckoo"
	"repro/internal/ordered"
	"repro/internal/slab"
	"repro/internal/stats"
)

// MaxShards is the largest supported shard count: locations carry the shard
// id in bits 44..47 (cuckoo locations are 48-bit).
const MaxShards = 16

const (
	shardShift = 44
	handleMask = 1<<shardShift - 1
)

// locOf folds shard si into a shard-local slab handle, yielding the global
// location stored in that shard's index.
func locOf(si int, h slab.Handle) cuckoo.Location {
	return cuckoo.Location(uint64(si)<<shardShift | uint64(h))
}

// handleOf strips the shard bits from a global location.
func handleOf(loc cuckoo.Location) slab.Handle {
	return slab.Handle(uint64(loc) & handleMask)
}

// shardOfLoc extracts the shard id from a global location.
func shardOfLoc(loc cuckoo.Location) int {
	return int(uint64(loc) >> shardShift)
}

// Config parameterizes a Store.
type Config struct {
	// MemoryBytes is the arena budget for key-value objects, divided evenly
	// across shards.
	MemoryBytes int64
	// IndexEntries is the expected object count, used to size the index
	// (divided evenly across shards).
	IndexEntries int
	// Seed makes hashing deterministic for reproducible experiments.
	Seed uint64
	// Shards is the number of independent shards (rounded up to a power of
	// two, clamped to [1, MaxShards]; 0 means 1). More shards reduce lock and
	// cache-line contention between concurrent writers at the cost of
	// fragmenting the arena budget N ways.
	Shards int
	// Slab optionally overrides the slab configuration; when non-nil its
	// TotalBytes is the whole-store budget and is divided across shards.
	Slab *slab.Config
	// HotKeys, when positive, enables the skew-aware hot-key fast path with a
	// side table of that many slots (rounded up to a power of two): sampled
	// hot GETs are served from a cache-resident table before the cuckoo
	// probe (see hotkeys.go). 0 disables the table entirely — the read paths
	// then run exactly as before.
	HotKeys int
	// Ordered maintains a per-shard copy-on-write ordered index (an LLRB over
	// key → location) beside the cuckoo table, enabling MVCC range scans (see
	// scan.go). Writes pay one tree upsert/delete; point reads are unaffected.
	Ordered bool
}

// shard is one independent index+arena pair, plus the optional ordered index
// the scan path merges over (nil unless Config.Ordered).
type shard struct {
	idx   *cuckoo.Table
	alloc *slab.Allocator
	tree  *ordered.Tree
}

// Store is a concurrent in-memory key-value store. All methods are safe for
// concurrent use.
type Store struct {
	shards    []*shard
	shardMask uint64
	seed      uint64
	stamp     atomic.Uint32 // current sampling-interval timestamp
	hot       *hotTable     // nil unless Config.HotKeys > 0

	gets      stats.Counter
	sets      stats.Counter
	dels      stats.Counter
	hits      stats.Counter
	misses    stats.Counter
	evictions stats.Counter

	scans         stats.Counter // range scans started
	scanEntries   stats.Counter // entries returned across all scans
	scanBytes     stats.Counter // key+value bytes returned across all scans
	scanFallbacks stats.Counter // snapshot locations resolved via point lookup
}

// normalizeShards rounds n up to a power of two in [1, MaxShards].
func normalizeShards(n int) int {
	if n <= 1 {
		return 1
	}
	if n > MaxShards {
		n = MaxShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// New returns a store for cfg.
func New(cfg Config) *Store {
	if cfg.MemoryBytes <= 0 {
		panic("store: MemoryBytes must be positive")
	}
	nShards := normalizeShards(cfg.Shards)
	if cfg.IndexEntries <= 0 {
		// The arena can hold at most MemoryBytes / MinChunk objects (64-byte
		// minimum slab class); size the index for that worst case so small
		// objects never jam the cuckoo table.
		cfg.IndexEntries = int(cfg.MemoryBytes / 64)
		if cfg.IndexEntries < 1024 {
			cfg.IndexEntries = 1024
		}
	}
	scfg := slab.DefaultConfig(cfg.MemoryBytes)
	if cfg.Slab != nil {
		scfg = *cfg.Slab
	}
	// Divide the budget; shrink the slab granularity when a shard's slice is
	// smaller than one slab so every shard can hold at least one.
	scfg.TotalBytes /= int64(nShards)
	if int64(scfg.SlabBytes) > scfg.TotalBytes {
		scfg.SlabBytes = int(scfg.TotalBytes) &^ 7
		if scfg.MaxChunk > scfg.SlabBytes {
			scfg.MaxChunk = scfg.SlabBytes
		}
	}
	perShardEntries := cfg.IndexEntries / nShards
	if perShardEntries < 64 {
		perShardEntries = 64
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x51ab1e5eed // tables reject nothing, but keep it non-zero
	}
	s := &Store{
		shards:    make([]*shard, nShards),
		shardMask: uint64(nShards - 1),
		seed:      cfg.Seed,
	}
	if cfg.HotKeys > 0 {
		s.hot = newHotTable(cfg.HotKeys)
	}
	// Every shard hashes with the same seed: a key is hashed once, shards are
	// routed on bits 40..43 of that hash (see routeShift), and the shard's
	// table reuses the hash for its bucket index and signature.
	for i := range s.shards {
		s.shards[i] = &shard{
			idx:   cuckoo.NewForCapacity(perShardEntries, 0.85, cfg.Seed),
			alloc: slab.NewAllocator(scfg),
		}
		if cfg.Ordered {
			s.shards[i].tree = ordered.New()
		}
	}
	if n := s.shards[0].alloc.Classes(); n > slab.MaxClasses {
		panic(fmt.Sprintf("store: %d slab classes exceed the location's class field", n))
	}
	s.stamp.Store(1)
	return s
}

// Shards returns the shard count.
func (s *Store) Shards() int { return len(s.shards) }

// routeShift positions the shard-routing bits inside the key hash: above any
// realistic bucket index (low bits), below the 16-bit signature (top bits).
const routeShift = 40

// shardFor routes key to its shard. The returned hash is reusable by the
// shard's table (same seed), so the hot read path hashes each key once.
func (s *Store) shardFor(key []byte) (int, *shard, uint64) {
	hv := cuckoo.Hash(key, s.seed)
	if s.shardMask == 0 {
		return 0, s.shards[0], hv
	}
	si := int((hv >> routeShift) & s.shardMask)
	return si, s.shards[si], hv
}

// ---- Composite operations ----

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	v, ok := s.GetInto(key, nil)
	if !ok {
		return nil, false
	}
	return v, true
}

// GetInto appends the value stored under key to dst and returns the extended
// slice. On a miss dst is returned unchanged. The read is lock-free and,
// given a dst with sufficient capacity, allocation-free: candidates from the
// shard's index are verified and copied under the slab's per-chunk seqlock,
// so a concurrent eviction reusing the chunk can never tear the result.
func (s *Store) GetInto(key, dst []byte) ([]byte, bool) {
	s.gets.Inc()
	si, sh, hv := s.shardFor(key)
	if s.hot != nil {
		if out, ok := s.hotServe(hv, key, dst); ok {
			s.hits.Inc()
			return out, true
		}
	}
	return s.readVerified(si, sh, hv, key, dst)
}

// readVerified is the version-validated search+read loop shared by GetInto
// and the staged read path's fallback (ReadCandidates): search the shard's
// index, verify-and-copy candidates under the slab seqlock, and reprobe when
// an index mutation raced the probe. It maintains the hit/miss counters.
func (s *Store) readVerified(si int, sh *shard, hv uint64, key, dst []byte) ([]byte, bool) {
	for attempt := 0; ; attempt++ {
		v1 := sh.idx.Version()
		var buf [cuckoo.MaxCandidates]cuckoo.Location
		n, _ := sh.idx.SearchBufHash(hv, &buf)
		for _, loc := range buf[:n] {
			h := handleOf(loc)
			if out, ok := sh.alloc.ReadIfMatch(h, key, dst); ok {
				s.hits.Inc()
				sh.alloc.Touch(h, s.stamp.Load())
				if s.hot != nil {
					s.maybePromote(si, sh, hv, key, out[len(dst):], h, v1)
				}
				return out, true
			}
		}
		// A concurrent overwrite (Insert new, Delete+Free old) can hide the
		// key from a probe that started before it: the probe collects the old
		// location, the writer retires it, validation fails. An unchanged
		// index version proves no such overwrite raced us — the miss is real.
		if attempt >= maxReadRetries || sh.idx.Version() == v1 {
			s.misses.Inc()
			return dst, false
		}
	}
}

// maxReadRetries bounds the reprobe loop for reads that race overwrites, so
// unrelated write churn on the shard cannot livelock a genuine miss.
const maxReadRetries = 8

// Set stores value under key, overwriting any existing object. It returns
// the number of index Insert and Delete operations the SET generated (for
// workload accounting) and an error from the allocator.
//
// Ordering matters for both durability and visibility: the new object is
// allocated and inserted into the index *before* the old object's entry is
// deleted, so (a) a SET that fails with ErrTooLarge/ErrNoMemory leaves the
// previous value intact, and (b) a concurrent GET of the same key never hits
// a window where neither version is indexed.
func (s *Store) Set(key, value []byte) (inserts, deletes int, err error) {
	s.sets.Inc()
	si, sh, hv := s.shardFor(key)
	oldLoc, hadOld := sh.lookupLoc(hv, key)
	h, ev, err := sh.alloc.Alloc(key, value, s.stamp.Load())
	if err != nil {
		return 0, 0, err
	}
	if ev != nil {
		// The eviction victim's index entry must go too (paper §II-C2).
		s.evictions.Inc()
		evLoc := locOf(si, ev.Handle)
		if sh.idx.Delete(ev.Key, evLoc) {
			deletes++
		}
		// Reconcile the victim's ordered-index binding — unless the victim is
		// this very key's old object, in which case the sync at the end of the
		// SET repoints it and the key never vanishes from concurrent
		// snapshots. (A racing overwrite of the victim key is safe either
		// way: syncOrdered re-reads the cuckoo state under the tree lock.)
		if sh.tree != nil && !bytes.Equal(ev.Key, key) {
			s.syncOrdered(sh, cuckoo.Hash(ev.Key, s.seed), ev.Key)
		}
		// The victim's chunk was reused for the new object, so a hot-table
		// entry for it is stale the moment Alloc returned; clear it now that
		// the index mutation is applied (writer-side ordering, hotkeys.go).
		if s.hot != nil {
			s.hot.invalidate(cuckoo.Hash(ev.Key, s.seed), ev.Key)
		}
		if hadOld && evLoc == oldLoc {
			hadOld = false // the victim was this key's own old object
		}
	}
	if !sh.idx.Insert(key, locOf(si, h)) {
		// Index full: undo the allocation and report no memory. The old
		// object (if any) is still indexed — the SET failed cleanly.
		sh.alloc.Free(h)
		return inserts, deletes, slab.ErrNoMemory
	}
	inserts++
	if hadOld {
		// Retire the overwritten object only now that the new one is live.
		if sh.idx.Delete(key, oldLoc) {
			sh.alloc.Free(handleOf(oldLoc))
			deletes++
		}
	}
	// Reconcile the ordered index after every cuckoo mutation of this key is
	// applied. A snapshot taken mid-SET holds the old location and self-heals
	// through the seqlock verify + point-lookup fallback on the scan read
	// path (scan.go); the key itself is never absent from either index
	// (insert-before-delete above).
	s.syncOrdered(sh, hv, key)
	// Hot-table invalidation is the LAST step: it must follow every index
	// mutation of this key so a racing promotion either lands before it (and
	// is cleared here) or rechecks against the fully-applied new state.
	s.hotInvalidate(hv, key)
	return inserts, deletes, nil
}

// syncOrdered reconciles key's ordered-index binding with the shard's cuckoo
// index: under the tree's writer lock it re-resolves the key's live location
// and upserts or removes the binding. Re-reading inside the lock (rather than
// pushing a value observed earlier) means racing writers can interleave in
// any order and the tree still converges to the cuckoo state — including the
// nasty cases where racing overwrites leave short-lived duplicate index
// entries. No-op on stores without Config.Ordered.
func (s *Store) syncOrdered(sh *shard, hv uint64, key []byte) {
	if sh.tree == nil {
		return
	}
	sh.tree.Update(key, func() (uint64, bool) {
		loc, ok := sh.lookupLoc(hv, key)
		return uint64(loc), ok
	})
}

// Delete removes key. It reports whether an object was removed.
func (s *Store) Delete(key []byte) bool {
	s.dels.Inc()
	_, sh, hv := s.shardFor(key)
	loc, ok := sh.lookupLoc(hv, key)
	if !ok {
		return false
	}
	if !sh.idx.Delete(key, loc) {
		return false
	}
	sh.alloc.Free(handleOf(loc))
	s.syncOrdered(sh, hv, key)
	s.hotInvalidate(hv, key)
	return true
}

// lookupLoc finds the live global location for key within this shard, with
// the same miss-reprobe discipline as GetInto. hv is the key's precomputed
// hash from shardFor.
func (sh *shard) lookupLoc(hv uint64, key []byte) (cuckoo.Location, bool) {
	for attempt := 0; ; attempt++ {
		v1 := sh.idx.Version()
		var buf [cuckoo.MaxCandidates]cuckoo.Location
		n, _ := sh.idx.SearchBufHash(hv, &buf)
		for _, loc := range buf[:n] {
			if sh.alloc.MatchKey(handleOf(loc), key) {
				return loc, true
			}
		}
		if attempt >= maxReadRetries || sh.idx.Version() == v1 {
			return 0, false
		}
	}
}

// ---- Task-granular operations (pipeline building blocks) ----

// IndexSearch performs the IN(Search) task: it returns candidate locations
// for key, appending to dst. Returned locations carry their shard id and can
// be passed to KeyCompare / ReadValue / IndexDelete directly.
func (s *Store) IndexSearch(key []byte, dst []cuckoo.Location) []cuckoo.Location {
	_, sh, _ := s.shardFor(key)
	cands, _ := sh.idx.Search(key, dst)
	return cands
}

// SearchServe is IndexSearch for the GET serving path: a key currently
// cached by the hot-key table skips the index probe entirely — the fused
// KC+RD stage (ReadCandidates) serves it from the table, and if the entry is
// invalidated in between, the empty candidate list falls back to the
// authoritative lookup there. With no hot table it is exactly IndexSearch.
// Only GET pipelines may use it; the task-granular IndexSearch keeps its
// always-probe contract for callers that need real candidates (simulator,
// write paths).
func (s *Store) SearchServe(key []byte, dst []cuckoo.Location) []cuckoo.Location {
	_, sh, hv := s.shardFor(key)
	if s.hot != nil && s.hot.lookup(hv, key) != nil {
		return dst
	}
	cands, _ := sh.idx.Search(key, dst)
	return cands
}

// KeyCompare performs the KC task: it reports whether the object at loc is
// live and stores exactly key. The compare is lock-free and seqlock-safe.
func (s *Store) KeyCompare(loc cuckoo.Location, key []byte) bool {
	si := shardOfLoc(loc)
	if si >= len(s.shards) {
		return false
	}
	return s.shards[si].alloc.MatchKey(handleOf(loc), key)
}

// ReadValue performs the RD task: it returns a copy of the value bytes at
// loc and touches the object for LRU/sampling. Unlike earlier revisions the
// returned slice never aliases the arena — it stays valid after eviction.
func (s *Store) ReadValue(loc cuckoo.Location) ([]byte, bool) {
	v, ok := s.ReadValueInto(loc, nil)
	if !ok {
		return nil, false
	}
	return v, true
}

// ReadValueInto is ReadValue appending into dst (the allocation-free form).
// On a miss dst is returned unchanged.
func (s *Store) ReadValueInto(loc cuckoo.Location, dst []byte) ([]byte, bool) {
	si := shardOfLoc(loc)
	if si >= len(s.shards) {
		return dst, false
	}
	sh := s.shards[si]
	h := handleOf(loc)
	out, ok := sh.alloc.ReadInto(h, dst)
	if !ok {
		return dst, false
	}
	sh.alloc.Touch(h, s.stamp.Load())
	return out, true
}

// AllocForSet performs the MM task for a SET: allocate and fill a chunk in
// the key's shard. The returned handle and any Evicted.Handle carry the
// shard id (pass them to IndexInsert / IndexDelete / FreeHandle as-is). A
// non-nil evicted descriptor obliges the caller to issue an IndexDelete for
// the victim.
func (s *Store) AllocForSet(key, value []byte) (slab.Handle, *slab.Evicted, error) {
	si, sh, _ := s.shardFor(key)
	h, ev, err := sh.alloc.Alloc(key, value, s.stamp.Load())
	if err != nil {
		return slab.NoHandle, nil, err
	}
	if ev != nil {
		ev.Handle = slab.Handle(locOf(si, ev.Handle))
	}
	return slab.Handle(locOf(si, h)), ev, nil
}

// IndexInsert performs the IN(Insert) task. h must come from AllocForSet.
func (s *Store) IndexInsert(key []byte, h slab.Handle) bool {
	_, sh, hv := s.shardFor(key)
	ok := sh.idx.Insert(key, cuckoo.Location(h))
	if ok {
		s.syncOrdered(sh, hv, key)
		// A new binding supersedes any cached value (writer-side ordering:
		// invalidate after the index mutation, hotkeys.go).
		s.hotInvalidate(hv, key)
	}
	return ok
}

// IndexDelete performs the IN(Delete) task.
func (s *Store) IndexDelete(key []byte, loc cuckoo.Location) bool {
	si := shardOfLoc(loc)
	if si >= len(s.shards) {
		return false
	}
	sh := s.shards[si]
	if !sh.idx.Delete(key, loc) {
		return false
	}
	sh.alloc.Free(handleOf(loc))
	hv := cuckoo.Hash(key, s.seed)
	s.syncOrdered(sh, hv, key)
	if s.hot != nil {
		s.hot.invalidate(hv, key)
	}
	return true
}

// FreeHandle releases an allocation that never made it into the index.
func (s *Store) FreeHandle(h slab.Handle) {
	loc := cuckoo.Location(h)
	si := shardOfLoc(loc)
	if si >= len(s.shards) {
		return
	}
	s.shards[si].alloc.Free(handleOf(loc))
}

// ---- Profiling hooks ----

// AdvanceSampleInterval begins a new skewness-sampling interval and returns
// the access counters collected during the one that just ended (paper §IV-B),
// gathered across all shards.
func (s *Store) AdvanceSampleInterval(limit int) []uint32 {
	old := s.stamp.Load()
	var counts []uint32
	for _, sh := range s.shards {
		rem := 0
		if limit > 0 {
			rem = limit - len(counts)
			if rem <= 0 {
				break
			}
		}
		counts = append(counts, sh.alloc.CollectAccessCounts(old, rem)...)
	}
	s.stamp.Store(old + 1)
	return counts
}

// Index exposes the first shard's cuckoo table (read-mostly: stats,
// capacity). With the default single shard this is the whole index.
func (s *Store) Index() *cuckoo.Table { return s.shards[0].idx }

// Arena exposes the first shard's allocator (stats). With the default single
// shard this is the whole arena.
func (s *Store) Arena() *slab.Allocator { return s.shards[0].alloc }

// Stats is a snapshot of store-level counters.
type Stats struct {
	Gets, Sets, Deletes    uint64
	Hits, Misses           uint64
	Evictions              uint64
	HotHits                uint64 // GETs served by the hot-key fast path
	Scans                  uint64 // range scans started
	ScanEntries            uint64 // entries returned across all scans
	ScanBytes              uint64 // key+value bytes returned across all scans
	ScanFallbacks          uint64 // stale snapshot locations re-resolved live
	OrderedKeys            int    // live keys in the ordered index (0 if disabled)
	LiveObjects            int
	IndexLoadFactor        float64
	AvgInsertBucketsProbed float64
}

// Range iterates every live object across all shards, calling fn(key, value)
// for each until fn returns false. It is lock-free (per-chunk seqlock reads
// in the slab arena) and safe to run concurrently with the serving path —
// the durability tier's snapshotter walks the store this way while writes
// continue. The slices passed to fn are reused; fn must copy what it keeps.
func (s *Store) Range(fn func(key, value []byte) bool) {
	for _, sh := range s.shards {
		if !sh.alloc.Range(fn) {
			return
		}
	}
}

// StatsSnapshot returns current counters, aggregated across shards.
func (s *Store) StatsSnapshot() Stats {
	st := Stats{
		Gets:          s.gets.Load(),
		Sets:          s.sets.Load(),
		Deletes:       s.dels.Load(),
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Evictions:     s.evictions.Load(),
		Scans:         s.scans.Load(),
		ScanEntries:   s.scanEntries.Load(),
		ScanBytes:     s.scanBytes.Load(),
		ScanFallbacks: s.scanFallbacks.Load(),
	}
	if s.hot != nil {
		st.HotHits = s.hot.hits.Load()
	}
	var inserts, insertBuckets float64
	var loadSum float64
	for _, sh := range s.shards {
		is := sh.idx.StatsSnapshot()
		as := sh.alloc.StatsSnapshot()
		st.LiveObjects += as.LiveObjects
		if sh.tree != nil {
			st.OrderedKeys += sh.tree.Len()
		}
		loadSum += sh.idx.LoadFactor()
		inserts += float64(is.Inserts)
		insertBuckets += is.AvgInsertBuckets * float64(is.Inserts)
	}
	st.IndexLoadFactor = loadSum / float64(len(s.shards))
	if inserts > 0 {
		st.AvgInsertBucketsProbed = insertBuckets / inserts
	}
	return st
}

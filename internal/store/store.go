// Package store assembles the cuckoo index and the slab arena into a
// key-value object store. It exposes two API levels:
//
//   - Composite operations (Get / Set / Delete) for direct use — this is
//     what the real UDP server and the examples run on.
//
//   - Task-granular operations (IndexSearch, KeyCompare, ReadValue,
//     AllocForSet, IndexInsert, IndexDelete) matching the DIDO pipeline's
//     fine-grained task decomposition (paper §III-A: MM, IN, KC, RD), so the
//     pipeline engine can place each step on either processor independently.
//
// A SET under memory pressure evicts an existing object, producing one Insert
// and one Delete index operation (paper §II-C2); this coupling is preserved
// here and is what makes DIDO's flexible index-operation assignment matter.
package store

import (
	"bytes"
	"sync/atomic"

	"repro/internal/cuckoo"
	"repro/internal/slab"
	"repro/internal/stats"
)

// Config parameterizes a Store.
type Config struct {
	// MemoryBytes is the arena budget for key-value objects.
	MemoryBytes int64
	// IndexEntries is the expected object count, used to size the index.
	IndexEntries int
	// Seed makes hashing deterministic for reproducible experiments.
	Seed uint64
	// Slab optionally overrides the slab configuration; when nil a default
	// derived from MemoryBytes is used.
	Slab *slab.Config
}

// Store is a concurrent in-memory key-value store. All methods are safe for
// concurrent use.
type Store struct {
	idx   *cuckoo.Table
	alloc *slab.Allocator
	stamp atomic.Uint32 // current sampling-interval timestamp

	gets      stats.Counter
	sets      stats.Counter
	dels      stats.Counter
	hits      stats.Counter
	misses    stats.Counter
	evictions stats.Counter
}

// New returns a store for cfg.
func New(cfg Config) *Store {
	if cfg.MemoryBytes <= 0 {
		panic("store: MemoryBytes must be positive")
	}
	if cfg.IndexEntries <= 0 {
		// The arena can hold at most MemoryBytes / MinChunk objects (64-byte
		// minimum slab class); size the index for that worst case so small
		// objects never jam the cuckoo table.
		cfg.IndexEntries = int(cfg.MemoryBytes / 64)
		if cfg.IndexEntries < 1024 {
			cfg.IndexEntries = 1024
		}
	}
	scfg := slab.DefaultConfig(cfg.MemoryBytes)
	if cfg.Slab != nil {
		scfg = *cfg.Slab
	}
	s := &Store{
		idx:   cuckoo.NewForCapacity(cfg.IndexEntries, 0.85, cfg.Seed),
		alloc: slab.NewAllocator(scfg),
	}
	s.stamp.Store(1)
	return s
}

// ---- Composite operations ----

// Get returns a copy of the value stored under key.
func (s *Store) Get(key []byte) ([]byte, bool) {
	s.gets.Inc()
	loc, val, ok := s.lookup(key)
	if !ok {
		s.misses.Inc()
		return nil, false
	}
	s.hits.Inc()
	s.alloc.Touch(slab.Handle(loc), s.stamp.Load())
	out := make([]byte, len(val))
	copy(out, val)
	return out, true
}

// Set stores value under key, overwriting any existing object. It returns
// the number of index Insert and Delete operations the SET generated (for
// workload accounting) and an error from the allocator.
func (s *Store) Set(key, value []byte) (inserts, deletes int, err error) {
	s.sets.Inc()
	// Remove any existing object for this key first (overwrite semantics).
	if loc, _, ok := s.lookup(key); ok {
		if s.idx.Delete(key, loc) {
			s.alloc.Free(slab.Handle(loc))
			deletes++
		}
	}
	h, ev, err := s.alloc.Alloc(key, value, s.stamp.Load())
	if err != nil {
		return inserts, deletes, err
	}
	if ev != nil {
		// The eviction victim's index entry must go too (paper §II-C2).
		s.evictions.Inc()
		if s.idx.Delete(ev.Key, cuckoo.Location(ev.Handle)) {
			deletes++
		}
	}
	if !s.idx.Insert(key, cuckoo.Location(h)) {
		// Index full: undo the allocation and report no memory.
		s.alloc.Free(h)
		return inserts, deletes, slab.ErrNoMemory
	}
	inserts++
	return inserts, deletes, nil
}

// Delete removes key. It reports whether an object was removed.
func (s *Store) Delete(key []byte) bool {
	s.dels.Inc()
	loc, _, ok := s.lookup(key)
	if !ok {
		return false
	}
	if !s.idx.Delete(key, loc) {
		return false
	}
	s.alloc.Free(slab.Handle(loc))
	return true
}

// lookup finds the live location and value for key (no copy, no touch).
func (s *Store) lookup(key []byte) (cuckoo.Location, []byte, bool) {
	var buf [4]cuckoo.Location
	cands, _ := s.idx.Search(key, buf[:0])
	for _, loc := range cands {
		k, v, ok := s.alloc.Object(slab.Handle(loc))
		if ok && bytes.Equal(k, key) {
			return loc, v, true
		}
	}
	return 0, nil, false
}

// ---- Task-granular operations (pipeline building blocks) ----

// IndexSearch performs the IN(Search) task: it returns candidate locations
// for key, appending to dst.
func (s *Store) IndexSearch(key []byte, dst []cuckoo.Location) []cuckoo.Location {
	cands, _ := s.idx.Search(key, dst)
	return cands
}

// KeyCompare performs the KC task: it reports whether the object at loc is
// live and stores exactly key.
func (s *Store) KeyCompare(loc cuckoo.Location, key []byte) bool {
	k, _, ok := s.alloc.Object(slab.Handle(loc))
	return ok && bytes.Equal(k, key)
}

// ReadValue performs the RD task: it returns the value bytes at loc (aliasing
// the arena; valid until eviction) and touches the object for LRU/sampling.
func (s *Store) ReadValue(loc cuckoo.Location) ([]byte, bool) {
	_, v, ok := s.alloc.Object(slab.Handle(loc))
	if !ok {
		return nil, false
	}
	s.alloc.Touch(slab.Handle(loc), s.stamp.Load())
	return v, true
}

// AllocForSet performs the MM task for a SET: allocate and fill a chunk. The
// returned evicted descriptor, when non-nil, obliges the caller to issue an
// IndexDelete for the victim.
func (s *Store) AllocForSet(key, value []byte) (slab.Handle, *slab.Evicted, error) {
	return s.alloc.Alloc(key, value, s.stamp.Load())
}

// IndexInsert performs the IN(Insert) task.
func (s *Store) IndexInsert(key []byte, h slab.Handle) bool {
	return s.idx.Insert(key, cuckoo.Location(h))
}

// IndexDelete performs the IN(Delete) task.
func (s *Store) IndexDelete(key []byte, loc cuckoo.Location) bool {
	if !s.idx.Delete(key, loc) {
		return false
	}
	s.alloc.Free(slab.Handle(loc))
	return true
}

// FreeHandle releases an allocation that never made it into the index.
func (s *Store) FreeHandle(h slab.Handle) { s.alloc.Free(h) }

// ---- Profiling hooks ----

// AdvanceSampleInterval begins a new skewness-sampling interval and returns
// the access counters collected during the one that just ended (paper §IV-B).
func (s *Store) AdvanceSampleInterval(limit int) []uint32 {
	old := s.stamp.Load()
	counts := s.alloc.CollectAccessCounts(old, limit)
	s.stamp.Store(old + 1)
	return counts
}

// Index exposes the underlying cuckoo table (read-mostly: stats, capacity).
func (s *Store) Index() *cuckoo.Table { return s.idx }

// Arena exposes the underlying allocator (stats).
func (s *Store) Arena() *slab.Allocator { return s.alloc }

// Stats is a snapshot of store-level counters.
type Stats struct {
	Gets, Sets, Deletes    uint64
	Hits, Misses           uint64
	Evictions              uint64
	LiveObjects            int
	IndexLoadFactor        float64
	AvgInsertBucketsProbed float64
}

// StatsSnapshot returns current counters.
func (s *Store) StatsSnapshot() Stats {
	is := s.idx.StatsSnapshot()
	as := s.alloc.StatsSnapshot()
	return Stats{
		Gets:                   s.gets.Load(),
		Sets:                   s.sets.Load(),
		Deletes:                s.dels.Load(),
		Hits:                   s.hits.Load(),
		Misses:                 s.misses.Load(),
		Evictions:              s.evictions.Load(),
		LiveObjects:            as.LiveObjects,
		IndexLoadFactor:        s.idx.LoadFactor(),
		AvgInsertBucketsProbed: is.AvgInsertBuckets,
	}
}

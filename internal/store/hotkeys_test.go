package store

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/cuckoo"
)

func newHotStore(t *testing.T) *Store {
	t.Helper()
	return New(Config{MemoryBytes: 1 << 20, IndexEntries: 4096, HotKeys: 64})
}

// heat GETs key enough times that the sampled promotion must have fired
// (every hit ticks the sample counter), and asserts the key went hot.
func heat(t *testing.T, s *Store, key, want []byte) {
	t.Helper()
	for i := 0; i < 4*hotSampleInterval; i++ {
		v, ok := s.Get(key)
		if !ok || !bytes.Equal(v, want) {
			t.Fatalf("Get(%q) = %q,%v during warm-up, want %q", key, v, ok, want)
		}
		if _, hot := s.hotProbe(key); hot {
			return
		}
	}
	t.Fatalf("key %q never promoted after %d hits", key, 4*hotSampleInterval)
}

func TestHotKeyPromoteAndServe(t *testing.T) {
	s := newHotStore(t)
	if _, _, err := s.Set([]byte("hot"), []byte("value-1")); err != nil {
		t.Fatal(err)
	}
	heat(t, s, []byte("hot"), []byte("value-1"))
	cached, _ := s.hotProbe([]byte("hot"))
	if !bytes.Equal(cached, []byte("value-1")) {
		t.Fatalf("cached value = %q, want value-1", cached)
	}
	before, enabled := s.HotStats()
	if !enabled {
		t.Fatal("HotStats reports disabled on a hot-enabled store")
	}
	if v, ok := s.Get([]byte("hot")); !ok || !bytes.Equal(v, []byte("value-1")) {
		t.Fatalf("hot Get = %q,%v", v, ok)
	}
	if after, _ := s.HotStats(); after != before+1 {
		t.Fatalf("hot hits %d -> %d, want +1 (the Get must be served hot)", before, after)
	}
}

func TestHotKeyDisabledByDefault(t *testing.T) {
	s := New(Config{MemoryBytes: 1 << 20})
	if _, _, err := s.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*hotSampleInterval; i++ {
		s.Get([]byte("k"))
	}
	if hits, enabled := s.HotStats(); enabled || hits != 0 {
		t.Fatalf("HotStats = %d,%v on a disabled store", hits, enabled)
	}
}

func TestHotKeyInvalidatedBySet(t *testing.T) {
	s := newHotStore(t)
	s.Set([]byte("hot"), []byte("old"))
	heat(t, s, []byte("hot"), []byte("old"))
	s.Set([]byte("hot"), []byte("new"))
	if cached, hot := s.hotProbe([]byte("hot")); hot {
		t.Fatalf("entry survived overwrite (cached %q)", cached)
	}
	if v, _ := s.Get([]byte("hot")); !bytes.Equal(v, []byte("new")) {
		t.Fatalf("Get after overwrite = %q, want new", v)
	}
}

func TestHotKeyInvalidatedByDelete(t *testing.T) {
	s := newHotStore(t)
	s.Set([]byte("hot"), []byte("v"))
	heat(t, s, []byte("hot"), []byte("v"))
	if !s.Delete([]byte("hot")) {
		t.Fatal("Delete failed")
	}
	if _, hot := s.hotProbe([]byte("hot")); hot {
		t.Fatal("entry survived Delete")
	}
	if _, ok := s.Get([]byte("hot")); ok {
		t.Fatal("Get after Delete still hits")
	}
}

// TestHotKeyInvalidatedByIndexOps covers the task-granular write path the
// pipeline uses: AllocForSet + IndexInsert must retire the cached old value,
// IndexDelete must retire the entry outright.
func TestHotKeyInvalidatedByIndexOps(t *testing.T) {
	s := newHotStore(t)
	s.Set([]byte("hot"), []byte("old"))
	heat(t, s, []byte("hot"), []byte("old"))

	// Decomposed SET, the pipeline's MM + IN(Insert) + IN(Delete) sequence:
	// find the old binding, insert the new one, retire the old one.
	var oldLoc cuckoo.Location
	foundOld := false
	for _, loc := range s.IndexSearch([]byte("hot"), nil) {
		if s.KeyCompare(loc, []byte("hot")) {
			oldLoc, foundOld = loc, true
			break
		}
	}
	if !foundOld {
		t.Fatal("old binding not found")
	}
	h, ev, err := s.AllocForSet([]byte("hot"), []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if ev != nil {
		t.Fatalf("unexpected eviction in a roomy arena: %+v", ev)
	}
	if !s.IndexInsert([]byte("hot"), h) {
		t.Fatal("IndexInsert failed")
	}
	if _, hot := s.hotProbe([]byte("hot")); hot {
		t.Fatal("entry survived IndexInsert of a new binding")
	}
	if !s.IndexDelete([]byte("hot"), oldLoc) {
		t.Fatal("IndexDelete of the old binding failed")
	}
	if v, _ := s.Get([]byte("hot")); !bytes.Equal(v, []byte("new")) {
		t.Fatalf("Get after decomposed SET = %q, want new", v)
	}

	heat(t, s, []byte("hot"), []byte("new"))
	cands := s.IndexSearch([]byte("hot"), nil)
	deleted := false
	for _, loc := range cands {
		if s.KeyCompare(loc, []byte("hot")) && s.IndexDelete([]byte("hot"), loc) {
			deleted = true
			break
		}
	}
	if !deleted {
		t.Fatal("IndexDelete never fired")
	}
	if _, hot := s.hotProbe([]byte("hot")); hot {
		t.Fatal("entry survived IndexDelete")
	}
}

func TestHotKeyLargeValuesNotPromoted(t *testing.T) {
	s := New(Config{MemoryBytes: 1 << 22, IndexEntries: 4096, HotKeys: 64})
	big := bytes.Repeat([]byte("x"), hotMaxValue+1)
	s.Set([]byte("big"), big)
	for i := 0; i < 4*hotSampleInterval; i++ {
		if v, ok := s.Get([]byte("big")); !ok || !bytes.Equal(v, big) {
			t.Fatalf("Get(big) wrong at iter %d", i)
		}
	}
	if _, hot := s.hotProbe([]byte("big")); hot {
		t.Fatalf("value of %d bytes was promoted past the %d cap", len(big), hotMaxValue)
	}
}

// TestHotKeySearchServeSkipsProbe pins the staged serving contract: a hot
// key's SearchServe returns no candidates, and ReadCandidates serves it from
// the table; once invalidated, the empty candidate list falls back to the
// authoritative lookup instead of manufacturing a miss.
func TestHotKeySearchServeSkipsProbe(t *testing.T) {
	s := newHotStore(t)
	s.Set([]byte("hot"), []byte("v1"))
	heat(t, s, []byte("hot"), []byte("v1"))

	cands := s.SearchServe([]byte("hot"), nil)
	if len(cands) != 0 {
		t.Fatalf("SearchServe returned %d candidates for a hot key, want 0", len(cands))
	}
	if v, ok := s.ReadCandidates([]byte("hot"), cands, nil); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("ReadCandidates hot = %q,%v, want v1", v, ok)
	}

	// Invalidate between the (skipped) search and the read: the staged read
	// must still resolve authoritatively.
	s.Set([]byte("hot"), []byte("v2"))
	if v, ok := s.ReadCandidates([]byte("hot"), cands, nil); !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("ReadCandidates after invalidation = %q,%v, want v2", v, ok)
	}

	// A cold store's SearchServe is plain IndexSearch.
	cold := New(Config{MemoryBytes: 1 << 20})
	cold.Set([]byte("k"), []byte("v"))
	if got := cold.SearchServe([]byte("k"), nil); len(got) == 0 {
		t.Fatal("SearchServe on a hot-disabled store returned no candidates")
	}
}

// TestHotKeyWidePaths drives the three wide entry points over a mix of hot,
// cold and absent keys.
func TestHotKeyWidePaths(t *testing.T) {
	s := newHotStore(t)
	s.Set([]byte("hot"), []byte("hv"))
	s.Set([]byte("cold"), []byte("cv"))
	heat(t, s, []byte("hot"), []byte("hv"))

	keys := [][]byte{[]byte("hot"), []byte("cold"), []byte("absent"), []byte("hot")}
	want := []string{"hv", "cv", "", "hv"}

	checkSpans := func(t *testing.T, vals []byte, vlo, vhi []int32) {
		t.Helper()
		for i, w := range want {
			if w == "" {
				if vlo[i] != -1 {
					t.Fatalf("key %d: want miss, got span %d:%d", i, vlo[i], vhi[i])
				}
				continue
			}
			if vlo[i] < 0 || string(vals[vlo[i]:vhi[i]]) != w {
				t.Fatalf("key %d: got %q, want %q", i, vals[vlo[i]:vhi[i]], w)
			}
		}
	}

	t.Run("GetBatch", func(t *testing.T) {
		vlo, vhi := make([]int32, len(keys)), make([]int32, len(keys))
		vals, hits := s.GetBatch(keys, nil, vlo, vhi)
		if hits != 3 {
			t.Fatalf("hits = %d, want 3", hits)
		}
		checkSpans(t, vals, vlo, vhi)
	})

	t.Run("SearchThenRead", func(t *testing.T) {
		lo, hi := make([]int32, len(keys)), make([]int32, len(keys))
		cands := s.SearchBatch(keys, nil, lo, hi)
		if hi[0] != lo[0] || hi[3] != lo[3] {
			t.Fatalf("hot key got candidates (%d:%d, %d:%d), want empty spans",
				lo[0], hi[0], lo[3], hi[3])
		}
		if hi[1] == lo[1] {
			t.Fatal("cold key got no candidates")
		}
		vlo, vhi := make([]int32, len(keys)), make([]int32, len(keys))
		vals, hits := s.ReadCandidatesBatch(keys, cands, lo, hi, nil, vlo, vhi)
		if hits != 3 {
			t.Fatalf("hits = %d, want 3", hits)
		}
		checkSpans(t, vals, vlo, vhi)
	})

	t.Run("InvalidateBetweenStages", func(t *testing.T) {
		lo, hi := make([]int32, len(keys)), make([]int32, len(keys))
		cands := s.SearchBatch(keys, nil, lo, hi)
		s.Set([]byte("hot"), []byte("hv2")) // invalidates between stages
		want[0], want[3] = "hv2", "hv2"
		defer func() { want[0], want[3] = "hv", "hv" }()
		vlo, vhi := make([]int32, len(keys)), make([]int32, len(keys))
		vals, _ := s.ReadCandidatesBatch(keys, cands, lo, hi, nil, vlo, vhi)
		checkSpans(t, vals, vlo, vhi)
		s.Set([]byte("hot"), []byte("hv"))
	})
}

// TestHotKeyNeverServesStale is the linearizability hammer: one writer
// overwrites a single key with increasing versions while readers pound GETs
// hot enough to keep promoting it. Any GET must observe at least the version
// that had completed before the GET began — a stale hot entry would serve an
// older one.
func TestHotKeyNeverServesStale(t *testing.T) {
	s := newHotStore(t)
	key := []byte("contended")
	val := func(v uint64) []byte { return []byte(fmt.Sprintf("v%08d", v)) }
	s.Set(key, val(0))

	var completed atomic.Uint64
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for v := uint64(1); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, _, err := s.Set(key, val(v)); err != nil {
				t.Errorf("Set: %v", err)
				return
			}
			completed.Store(v)
		}
	}()

	const readers = 4
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for i := 0; i < 20000; i++ {
				floor := completed.Load()
				got, ok := s.Get(key)
				if !ok {
					t.Errorf("Get lost the key")
					return
				}
				var v uint64
				if _, err := fmt.Sscanf(string(got), "v%08d", &v); err != nil {
					t.Errorf("unparseable value %q", got)
					return
				}
				if v < floor {
					t.Errorf("stale read: got version %d, but %d had completed before the Get", v, floor)
					return
				}
			}
		}()
	}
	// The readers bound the test; stop the writer once they finish.
	rg.Wait()
	close(stop)
	writer.Wait()
}

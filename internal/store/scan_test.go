package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func orderedStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	cfg.Ordered = true
	return New(cfg)
}

// TestScanMatchesModelQuiescent pins the basic contract on a quiet store:
// ascending order, [start,end) bounds, limit, and pagination via
// last-key+\x00 cursors — against a sorted reference model.
func TestScanMatchesModelQuiescent(t *testing.T) {
	s := orderedStore(t, Config{MemoryBytes: 8 << 20, IndexEntries: 1 << 12, Shards: 4})
	model := map[string]string{}
	for i := 0; i < 400; i++ {
		k, v := fmt.Sprintf("key-%04d", i), fmt.Sprintf("val-%04d", i)
		if _, _, err := s.Set([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		model[k] = v
	}
	for i := 0; i < 80; i++ {
		k := fmt.Sprintf("key-%04d", i*5)
		s.Delete([]byte(k))
		delete(model, k)
	}
	sorted := make([]string, 0, len(model))
	for k := range model {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	// Full scan == full model, in order.
	var got []string
	n, ok := s.Scan(nil, nil, 0, func(k, v []byte) bool {
		got = append(got, string(k))
		if model[string(k)] != string(v) {
			t.Fatalf("key %s: scan saw %q, want %q", k, v, model[string(k)])
		}
		return true
	})
	if !ok || n != len(sorted) {
		t.Fatalf("full scan: n=%d ok=%v, want %d", n, ok, len(sorted))
	}
	for i, k := range got {
		if k != sorted[i] {
			t.Fatalf("order broken at %d: %q vs %q", i, k, sorted[i])
		}
	}

	// Bounded scan matches the model slice.
	lo, hi := "key-0100", "key-0300"
	want := 0
	for _, k := range sorted {
		if k >= lo && k < hi {
			want++
		}
	}
	if n, _ := s.Scan([]byte(lo), []byte(hi), 0, func(k, v []byte) bool { return true }); n != want {
		t.Fatalf("bounded scan n=%d want %d", n, want)
	}

	// Paginate with limit 7 using last-key+\x00 cursors; the concatenation
	// must equal one unlimited scan.
	var paged []string
	start := []byte(nil)
	for {
		var last []byte
		n, _ := s.Scan(start, nil, 7, func(k, v []byte) bool {
			paged = append(paged, string(k))
			last = append(last[:0], k...)
			return true
		})
		if n == 0 {
			break
		}
		start = append(last, 0)
	}
	if len(paged) != len(sorted) {
		t.Fatalf("pagination saw %d keys, want %d", len(paged), len(sorted))
	}
	for i, k := range paged {
		if k != sorted[i] {
			t.Fatalf("pagination order broken at %d: %q vs %q", i, k, sorted[i])
		}
	}
}

// TestScanDisabled: a store without Config.Ordered refuses scans cleanly.
func TestScanDisabled(t *testing.T) {
	s := New(Config{MemoryBytes: 1 << 20})
	if s.Ordered() {
		t.Fatal("plain store reports ordered")
	}
	if sc := s.NewScanner(); sc != nil {
		t.Fatal("plain store built a scanner")
	}
	if n, ok := s.Scan(nil, nil, 0, func(k, v []byte) bool { return true }); ok || n != 0 {
		t.Fatalf("scan on plain store: n=%d ok=%v", n, ok)
	}
	if st := s.StatsSnapshot(); st.OrderedKeys != 0 {
		t.Fatalf("OrderedKeys = %d on plain store", st.OrderedKeys)
	}
}

// TestScanSnapshotIsolation is the MVCC pin: a Scanner captured before a wave
// of writes keeps serving the captured KEY SET — keys inserted later never
// appear, keys deleted later are skipped (not replaced by garbage), and
// surviving keys read fresh values. This fails on any implementation that
// scans the live tree instead of a snapshot.
func TestScanSnapshotIsolation(t *testing.T) {
	s := orderedStore(t, Config{MemoryBytes: 8 << 20, IndexEntries: 1 << 12, Shards: 2})
	const n = 300
	for i := 0; i < n; i++ {
		if _, _, err := s.Set([]byte(fmt.Sprintf("old-%04d", i)), []byte("v0")); err != nil {
			t.Fatal(err)
		}
	}
	sc := s.NewScanner()

	// After the snapshot: delete a third, overwrite a third, and insert a
	// fresh disjoint key range.
	for i := 0; i < n; i += 3 {
		s.Delete([]byte(fmt.Sprintf("old-%04d", i)))
	}
	for i := 1; i < n; i += 3 {
		if _, _, err := s.Set([]byte(fmt.Sprintf("old-%04d", i)), []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if _, _, err := s.Set([]byte(fmt.Sprintf("new-%04d", i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}

	seen := map[string]string{}
	sc.Scan(nil, nil, 0, func(k, v []byte) bool {
		seen[string(k)] = string(v)
		return true
	})
	for k, v := range seen {
		if !bytes.HasPrefix([]byte(k), []byte("old-")) {
			t.Fatalf("snapshot scan leaked post-snapshot key %q", k)
		}
		var i int
		fmt.Sscanf(k, "old-%04d", &i)
		switch i % 3 {
		case 0:
			t.Fatalf("deleted key %q still scanned (value %q)", k, v)
		case 1:
			if v != "v1" {
				t.Fatalf("overwritten key %q: scan saw %q, want fresh v1", k, v)
			}
		case 2:
			if v != "v0" {
				t.Fatalf("untouched key %q: scan saw %q", k, v)
			}
		}
	}
	wantSurvivors := n - (n+2)/3
	if len(seen) != wantSurvivors {
		t.Fatalf("snapshot scan saw %d keys, want %d survivors", len(seen), wantSurvivors)
	}

	// A fresh scan sees the new world.
	fresh := 0
	s.Scan([]byte("new-"), []byte("new-\xff"), 0, func(k, v []byte) bool { fresh++; return true })
	if fresh != n {
		t.Fatalf("fresh scan saw %d new keys, want %d", fresh, n)
	}
}

// TestScanEquivalenceUnderChurn is the equivalence/linearizability suite: a
// stable keyspace region coexists with a churned one (SET/DEL overwrite storm
// from several writers). Every scan, concurrent with the storm, must return
// a sorted, duplicate-free key sequence; must always contain every stable key
// with its exact value; and every churned value observed must be one some
// writer actually wrote for that key (seqlock: never torn, never foreign).
func TestScanEquivalenceUnderChurn(t *testing.T) {
	s := orderedStore(t, Config{MemoryBytes: 16 << 20, IndexEntries: 1 << 13, Shards: 4})
	const stable, churn = 200, 200
	stableVals := map[string]string{}
	for i := 0; i < stable; i++ {
		k, v := fmt.Sprintf("s%04d", i), fmt.Sprintf("stable-%04d", i)
		if _, _, err := s.Set([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		stableVals[k] = v
	}
	for i := 0; i < churn; i++ {
		if _, _, err := s.Set([]byte(fmt.Sprintf("c%04d", i)), []byte(fmt.Sprintf("c%04d-gen-0", i))); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for gen := 1; !stop.Load(); gen++ {
				i := rng.Intn(churn)
				k := fmt.Sprintf("c%04d", i)
				if gen%7 == 0 {
					s.Delete([]byte(k))
				} else if _, _, err := s.Set([]byte(k), []byte(fmt.Sprintf("%s-gen-%d", k, gen))); err != nil {
					t.Errorf("set: %v", err)
					return
				}
			}
		}(w)
	}

	for pass := 0; pass < 30; pass++ {
		var prev []byte
		seenStable := 0
		s.Scan(nil, nil, 0, func(k, v []byte) bool {
			if prev != nil && bytes.Compare(prev, k) >= 0 {
				t.Errorf("pass %d: order violation %q >= %q", pass, prev, k)
				return false
			}
			prev = append(prev[:0], k...)
			switch k[0] {
			case 's':
				seenStable++
				if stableVals[string(k)] != string(v) {
					t.Errorf("stable key %q: scan saw %q", k, v)
					return false
				}
			case 'c':
				// Value must be an intact generation write for THIS key.
				if !bytes.HasPrefix(v, k) || !bytes.Contains(v, []byte("-gen-")) {
					t.Errorf("churn key %q: torn/foreign value %q", k, v)
					return false
				}
			default:
				t.Errorf("unknown key %q", k)
				return false
			}
			return true
		})
		if seenStable != stable {
			t.Errorf("pass %d: saw %d stable keys, want %d", pass, seenStable, stable)
			break
		}
	}
	stop.Store(true)
	writers.Wait()
}

// TestScanUniformValuesNeverTorn attacks the seqlock-slab interaction head
// on: every write of a key stores a value of one repeated byte, with writers
// flipping the byte as fast as they can on the same small key set. A torn
// read (half old bytes, half new) is a mixed-byte value — scans must never
// produce one.
func TestScanUniformValuesNeverTorn(t *testing.T) {
	s := orderedStore(t, Config{MemoryBytes: 8 << 20, IndexEntries: 1 << 12, Shards: 2})
	const keys = 32
	const valLen = 512
	for i := 0; i < keys; i++ {
		if _, _, err := s.Set([]byte(fmt.Sprintf("u%02d", i)), bytes.Repeat([]byte{'a'}, valLen)); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for gen := 0; !stop.Load(); gen++ {
				b := byte('a' + (gen % 26))
				k := fmt.Sprintf("u%02d", (w*7+gen)%keys)
				if _, _, err := s.Set([]byte(k), bytes.Repeat([]byte{b}, valLen)); err != nil {
					t.Errorf("set: %v", err)
					return
				}
			}
		}(w)
	}
	for pass := 0; pass < 50; pass++ {
		s.Scan(nil, nil, 0, func(k, v []byte) bool {
			if len(v) != valLen {
				t.Errorf("key %q: truncated value (%d bytes)", k, len(v))
				return false
			}
			for _, b := range v {
				if b != v[0] {
					t.Errorf("key %q: TORN value (mixed %q and %q)", k, v[0], b)
					return false
				}
			}
			return true
		})
	}
	stop.Store(true)
	writers.Wait()
}

// TestScanEvictionSafety runs scans against a store small enough that every
// writer SET evicts something: snapshot locations go stale constantly and
// chunks are recycled under the scanner's feet. Values embed their key, so a
// scan reading reclaimed-and-reused memory would surface a mismatched
// prefix. Exercises the ReadIfMatch → point-lookup fallback path.
func TestScanEvictionSafety(t *testing.T) {
	s := orderedStore(t, Config{MemoryBytes: 256 << 10, IndexEntries: 1 << 10, Shards: 2})
	// Pre-fill far past the arena budget so eviction pressure exists from the
	// first concurrent pass (4096 keys × ~210 B ≫ 256 KiB).
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("ev-%05d", i)
		v := fmt.Sprintf("%s|%s", k, bytes.Repeat([]byte{'p'}, 200))
		if _, _, err := s.Set([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if s.StatsSnapshot().Evictions == 0 {
		t.Fatal("pre-fill produced no evictions — shrink the arena")
	}
	var stop atomic.Bool
	var writers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for !stop.Load() {
				k := fmt.Sprintf("ev-%05d", rng.Intn(4096))
				v := fmt.Sprintf("%s|%s", k, bytes.Repeat([]byte{'p'}, 200))
				if _, _, err := s.Set([]byte(k), []byte(v)); err != nil {
					t.Errorf("set: %v", err)
					return
				}
			}
		}(w)
	}
	for pass := 0; pass < 40; pass++ {
		s.Scan(nil, nil, 0, func(k, v []byte) bool {
			if !bytes.HasPrefix(v, k) {
				t.Errorf("key %q resolved foreign value %q...", k, v[:min(len(v), 16)])
				return false
			}
			return true
		})
	}
	stop.Store(true)
	writers.Wait()
	st := s.StatsSnapshot()
	if st.Scans == 0 || st.ScanEntries == 0 || st.ScanBytes == 0 {
		t.Fatalf("scan counters dead: %+v", st)
	}
	// Once quiescent, the ordered index must hold exactly the distinct live
	// keys (eviction victims were retired from both indexes). Distinct, not
	// object count: racing overwrites of one key can strand a duplicate arena
	// object, which the point-read path already tolerates.
	distinct := map[string]bool{}
	s.Range(func(k, v []byte) bool { distinct[string(k)] = true; return true })
	if st2 := s.StatsSnapshot(); st2.OrderedKeys != len(distinct) {
		t.Fatalf("ordered index has %d keys, arena has %d distinct live keys", st2.OrderedKeys, len(distinct))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package store

// Wide batched GET path — the store-level half of the GPU-analog IN stage.
//
// The scalar path resolves one key at a time: hash → shard → index probe →
// seqlock verify, a chain of dependent cache misses per key. The batched
// path restructures a whole batch into shard-grouped waves, mirroring how a
// GPU kernel would partition the work across compute units:
//
//	wave 0: hash every key, route it to its shard (pure arithmetic)
//	group:  counting-sort the key indices by shard — each shard's keys
//	        become one contiguous sub-batch
//	per shard:
//	  wave 1-3: cuckoo.SearchBatch (split / primary / alternate waves)
//	  verify:   fused KC+RD — seqlock-verify candidates and copy values
//
// Shard grouping matters twice: the sub-batch walks one table's buckets
// (better locality, no shard pointer chasing inside the wave), and the
// genuine-miss proof amortizes to ONE index Version() check per shard sweep
// instead of one per key — only when a mutation raced the sweep do the
// provisionally-missing keys fall back to the scalar version-validated
// lookup (readVerified), the same staleness contract the scalar GET obeys.
//
// All working memory comes from a pooled scratch, so the batched GET is
// allocation-free at steady state (guarded by TestBatchPathZeroAllocs).

import (
	"sync"

	"repro/internal/cuckoo"
)

// batchScratch holds every working array of the wide batch path. One scratch
// serves one batch at a time; a sync.Pool recycles them across batches and
// goroutines.
type batchScratch struct {
	hv     []uint64          // per-key hash (wave 0)
	si     []uint8           // per-key shard id (wave 0)
	idx    []int32           // input key-index list (identity, or the stale subset)
	order  []int32           // key indices grouped by shard (counting sort of idx)
	subH   []uint64          // hashes in grouped order, per-shard contiguous
	counts []int32           // per grouped key: candidate count from SearchBatch
	miss   []int32           // per sweep: provisionally-missing key indices
	cands  []cuckoo.Location // fixed-stride candidate arena (MaxCandidates per key)
	start  [MaxShards + 1]int32
	sc     cuckoo.SearchScratch
}

// grow sizes the arrays for n keys.
func (sc *batchScratch) grow(n int) {
	if cap(sc.hv) < n {
		sc.hv = make([]uint64, n)
		sc.si = make([]uint8, n)
		sc.idx = make([]int32, n)
		sc.order = make([]int32, n)
		sc.subH = make([]uint64, n)
		sc.counts = make([]int32, n)
		sc.miss = make([]int32, n)
		sc.cands = make([]cuckoo.Location, n*cuckoo.MaxCandidates)
	}
	sc.hv = sc.hv[:n]
	sc.si = sc.si[:n]
	sc.idx = sc.idx[:n]
	sc.order = sc.order[:n]
	sc.subH = sc.subH[:n]
	sc.counts = sc.counts[:n]
	sc.miss = sc.miss[:n]
	sc.cands = sc.cands[:n*cuckoo.MaxCandidates]
}

var scratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

// hashAll is wave 0: hash every key once (the same hash the shard's table
// reuses for bucket index and signature) and route it to its shard.
func (s *Store) hashAll(keys [][]byte, sc *batchScratch) {
	mask := s.shardMask
	for i, k := range keys {
		hv := cuckoo.Hash(k, s.seed)
		sc.hv[i] = hv
		sc.si[i] = uint8((hv >> routeShift) & mask)
	}
}

// groupByShard counting-sorts the key indices in idxs into sc.order so each
// shard's keys are contiguous (span sc.start[si] .. sc.start[si+1]), and
// gathers their hashes into sc.subH in the same order. m is the number of
// grouped keys (len(idxs)).
func (s *Store) groupByShard(idxs []int32, sc *batchScratch) {
	var cnt [MaxShards]int32
	for _, i := range idxs {
		cnt[sc.si[i]]++
	}
	n := len(s.shards)
	sc.start[0] = 0
	for si := 0; si < n; si++ {
		sc.start[si+1] = sc.start[si] + cnt[si]
	}
	var pos [MaxShards]int32
	copy(pos[:], sc.start[:n])
	for _, i := range idxs {
		p := pos[sc.si[i]]
		sc.order[p] = i
		sc.subH[p] = sc.hv[i]
		pos[sc.si[i]]++
	}
}

// SearchBatch performs the wide IN(Search) task for a batch of keys: hash
// all keys up front, group them by shard, and run each shard's sub-batch
// through the cuckoo table's software-pipelined wave search. Key i's
// candidate locations are appended to dst with their span recorded in
// lo[i]:hi[i] (spans are per key, not ordered within dst). lo and hi must
// have length ≥ len(keys). Like IndexSearch, the returned locations carry
// their shard id and may be stale by the time they are verified; the read
// stage owns the staleness contract.
func (s *Store) SearchBatch(keys [][]byte, dst []cuckoo.Location, lo, hi []int32) []cuckoo.Location {
	n := len(keys)
	if n == 0 {
		return dst
	}
	sc := scratchPool.Get().(*batchScratch)
	sc.grow(n)
	s.hashAll(keys, sc)
	// Hot keys skip the probe entirely (empty candidate span): the read
	// stage serves them from the side table, or falls back to the
	// authoritative lookup if the entry is invalidated in between — the same
	// contract SearchServe gives the scalar path.
	m := 0
	for i := 0; i < n; i++ {
		if s.hot != nil && s.hot.lookup(sc.hv[i], keys[i]) != nil {
			lo[i], hi[i] = int32(len(dst)), int32(len(dst))
			continue
		}
		sc.idx[m] = int32(i)
		m++
	}
	s.groupByShard(sc.idx[:m], sc)
	for si := range s.shards {
		glo, ghi := sc.start[si], sc.start[si+1]
		if glo == ghi {
			continue
		}
		s.shards[si].idx.SearchBatch(sc.subH[glo:ghi], &sc.sc,
			sc.cands[int(glo)*cuckoo.MaxCandidates:int(ghi)*cuckoo.MaxCandidates],
			sc.counts[glo:ghi])
	}
	for j := 0; j < m; j++ {
		i := sc.order[j]
		base := j * cuckoo.MaxCandidates
		lo[i] = int32(len(dst))
		dst = append(dst, sc.cands[base:base+int(sc.counts[j])]...)
		hi[i] = int32(len(dst))
	}
	scratchPool.Put(sc)
	return dst
}

// sweepShard runs the authoritative wide search + fused KC+RD verify for one
// shard's grouped keys (positions glo..ghi of sc.order): one Version() read,
// the three search waves, then a verify wave that seqlock-reads each key's
// candidates into vals. Keys that miss every candidate are genuine misses if
// the shard's index version did not move during the sweep — one amortized
// check for the whole sub-batch; otherwise only they retry through the
// scalar version-validated lookup. Hit values are appended to vals with
// spans in vlo/vhi; vlo[i] = -1 marks a miss. Returns the grown vals and the
// shard's hit count. Counters: hits/misses are maintained here (the caller
// counts gets).
func (s *Store) sweepShard(si int, glo, ghi int32, keys [][]byte, sc *batchScratch, vals []byte, vlo, vhi []int32) ([]byte, int) {
	m := int(ghi - glo)
	if m == 0 {
		return vals, 0
	}
	sh := s.shards[si]
	stamp := s.stamp.Load()
	hits := 0
	v1 := sh.idx.Version()
	sh.idx.SearchBatch(sc.subH[glo:ghi], &sc.sc,
		sc.cands[int(glo)*cuckoo.MaxCandidates:int(ghi)*cuckoo.MaxCandidates],
		sc.counts[glo:ghi])
	nmiss := 0
	for j := 0; j < m; j++ {
		i := sc.order[int(glo)+j]
		base := (int(glo) + j) * cuckoo.MaxCandidates
		mark := int32(len(vals))
		hit := false
		for c := 0; c < int(sc.counts[int(glo)+j]); c++ {
			h := handleOf(sc.cands[base+c])
			if out, ok := sh.alloc.ReadIfMatch(h, keys[i], vals); ok {
				vals = out
				vlo[i], vhi[i] = mark, int32(len(vals))
				sh.alloc.Touch(h, stamp)
				if s.hot != nil {
					s.maybePromote(si, sh, sc.hv[i], keys[i], vals[mark:], h, v1)
				}
				hits++
				hit = true
				break
			}
		}
		if !hit {
			sc.miss[nmiss] = i
			nmiss++
		}
	}
	s.hits.Add(uint64(hits))
	if nmiss == 0 {
		return vals, hits
	}
	if sh.idx.Version() == v1 {
		// No index mutation raced the sweep: every provisional miss is
		// genuine, proven by one version check instead of one per key.
		for _, i := range sc.miss[:nmiss] {
			vlo[i], vhi[i] = -1, -1
		}
		s.misses.Add(uint64(nmiss))
		return vals, hits
	}
	// A writer raced the sweep; only the provisionally-missing keys pay the
	// scalar reprobe (readVerified maintains hit/miss counters itself).
	for _, i := range sc.miss[:nmiss] {
		mark := int32(len(vals))
		if out, ok := s.readVerified(si, sh, sc.hv[i], keys[i], vals); ok {
			vals = out
			vlo[i], vhi[i] = mark, int32(len(vals))
			hits++
		} else {
			vlo[i], vhi[i] = -1, -1
		}
	}
	return vals, hits
}

// GetBatch performs a whole batched GET — the fused wide IN(Search) + KC+RD
// pass the pipeline runs when search and read share a stage. Hit values are
// appended to vals (which grows like GetInto's dst; spans stay valid across
// growth because they are offsets); vlo[i]:vhi[i] is key i's value span,
// with vlo[i] = -1 marking a miss. vlo and vhi must have length ≥ len(keys).
// It returns the grown vals and the number of hits. With pre-sized arenas
// the path performs no allocations.
func (s *Store) GetBatch(keys [][]byte, vals []byte, vlo, vhi []int32) ([]byte, int) {
	n := len(keys)
	if n == 0 {
		return vals, 0
	}
	s.gets.Add(uint64(n))
	sc := scratchPool.Get().(*batchScratch)
	sc.grow(n)
	s.hashAll(keys, sc)
	// Hot pre-pass: keys the side table caches are served without entering
	// the sweep at all (no probe, no verify); the rest form the sweep subset.
	hits := 0
	m := 0
	for i := 0; i < n; i++ {
		if s.hot != nil {
			mark := int32(len(vals))
			if out, ok := s.hotServe(sc.hv[i], keys[i], vals); ok {
				vals = out
				vlo[i], vhi[i] = mark, int32(len(vals))
				hits++
				continue
			}
		}
		sc.idx[m] = int32(i)
		m++
	}
	if hits > 0 {
		s.hits.Add(uint64(hits)) // sweepShard counts only its own hits
	}
	s.groupByShard(sc.idx[:m], sc)
	for si := range s.shards {
		var h int
		vals, h = s.sweepShard(si, sc.start[si], sc.start[si+1], keys, sc, vals, vlo, vhi)
		hits += h
	}
	scratchPool.Put(sc)
	return vals, hits
}

// ReadCandidatesBatch performs the wide fused KC+RD task over candidates a
// previous SearchBatch (possibly an earlier pipeline stage) collected: key
// i's candidates are cands[lo[i]:hi[i]]. Verified values are appended to
// vals with spans in vlo/vhi (vlo[i] = -1 marks a miss); it returns the
// grown vals and the hit count.
//
// Like the scalar ReadCandidates, stale candidates must not manufacture a
// miss: every key whose candidates all fail verification is re-resolved
// through the authoritative wide sweep (fresh search + verify under an
// amortized version check), which also covers keys with no candidates at
// all.
func (s *Store) ReadCandidatesBatch(keys [][]byte, cands []cuckoo.Location, lo, hi []int32, vals []byte, vlo, vhi []int32) ([]byte, int) {
	n := len(keys)
	if n == 0 {
		return vals, 0
	}
	s.gets.Add(uint64(n))
	sc := scratchPool.Get().(*batchScratch)
	sc.grow(n)
	s.hashAll(keys, sc)
	stamp := s.stamp.Load()
	hits := 0
	stale := 0
	for i := 0; i < n; i++ {
		si := int(sc.si[i])
		sh := s.shards[si]
		mark := int32(len(vals))
		var v1 uint64
		if s.hot != nil {
			if out, ok := s.hotServe(sc.hv[i], keys[i], vals); ok {
				vals = out
				vlo[i], vhi[i] = mark, int32(len(vals))
				hits++
				continue
			}
			v1 = sh.idx.Version() // promotion protocol: capture before the copy
		}
		hit := false
		for _, loc := range cands[lo[i]:hi[i]] {
			if shardOfLoc(loc) != si {
				continue // foreign-shard candidate: cannot be key i's object
			}
			h := handleOf(loc)
			if out, ok := sh.alloc.ReadIfMatch(h, keys[i], vals); ok {
				vals = out
				vlo[i], vhi[i] = mark, int32(len(vals))
				sh.alloc.Touch(h, stamp)
				if s.hot != nil {
					s.maybePromote(si, sh, sc.hv[i], keys[i], vals[mark:], h, v1)
				}
				hits++
				hit = true
				break
			}
		}
		if !hit {
			sc.idx[stale] = int32(i)
			stale++
		}
	}
	s.hits.Add(uint64(hits))
	if stale > 0 {
		// Re-resolve the candidate-stale keys wide: group the subset by
		// shard and run the authoritative sweep over it.
		s.groupByShard(sc.idx[:stale], sc)
		for si := range s.shards {
			var h int
			vals, h = s.sweepShard(si, sc.start[si], sc.start[si+1], keys, sc, vals, vlo, vhi)
			hits += h
		}
	}
	scratchPool.Put(sc)
	return vals, hits
}

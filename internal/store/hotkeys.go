package store

// Skew-aware hot-key fast path (paper §IV-B: key-popularity skew means a
// handful of keys absorb most GETs under Zipf workloads).
//
// A hotTable is a small, cache-resident, direct-mapped side table of sampled
// hot keys. A GET checks it before the cuckoo probe: a hit serves the value
// with zero index memory traffic — no bucket walk, no candidate verify — which
// is exactly the IN(Search) saving the cost model prices as HotHitPortion
// (task.ForTask). The table is strictly an accelerator: every entry is a
// redundant copy of an object that is also live in the arena, and losing an
// entry (collision, invalidation, race) only means the GET takes the normal
// probe path.
//
// Correctness protocol. Entries are immutable snapshots {hv, key, val,
// handle}; the slot array holds atomic pointers. Two rules keep a stale value
// from ever being served:
//
//   - Writers invalidate AFTER mutating the index. Every path that changes a
//     key's binding — Set (own key and the eviction victim), Delete,
//     IndexInsert, IndexDelete — first applies the index mutation (which
//     bumps the shard's index version) and then clears the key's slot.
//
//   - Readers promote with publish-then-recheck. A sampled hit publishes its
//     entry, then proves no writer raced the promotion: the shard's index
//     version must equal the version captured before the verified copy, AND
//     the key must still resolve to the same slab handle. Either check
//     failing, the reader clears its own entry.
//
// Why both recheck halves are needed: a promotion that raced a writer either
// published before the writer's invalidate (the writer clears it) or after
// (the writer's index mutation is then visible to the recheck). The handle
// re-lookup catches values copied from stale candidates collected by an
// earlier pipeline stage (the overwrite predates the version capture); the
// version check catches handle reuse — free + realloc + reinsert of the same
// handle for the same key cannot happen without an index mutation in the
// recheck window. Values in the arena are written once per allocation, so
// "key still maps to handle h" plus "val is a validated copy of h" proves val
// is current.
//
// The recheck costs one index probe, paid only on sampled promotions
// (1 in hotSampleInterval hits), never on the serving fast path.

import (
	"bytes"
	"sync/atomic"

	"repro/internal/cuckoo"
	"repro/internal/slab"
	"repro/internal/stats"
)

// hotSampleInterval is the hit-sampling rate for promotion: one verified GET
// hit in every hotSampleInterval attempts a promotion. Sampling keeps the
// promotion recheck (an extra index probe) and the slot-write cache traffic
// off the common path while still converging on the true hot set within a few
// thousand requests — genuinely hot keys recur often enough that a 1/64
// sample catches them almost immediately, and one-off keys usually never hit
// a sample tick.
const hotSampleInterval = 64

// hotMaxValue bounds promoted value sizes: the table's win is serving from
// cache, so entries larger than a few cache lines would evict the very
// residency the fast path depends on. Large objects stay on the probe path
// (where the CPU's prefetcher already does well, §V-C).
const hotMaxValue = 1024

// hotEntry is an immutable hot-key snapshot. key and val are private copies;
// h is the slab handle the value was copied from, kept so hot hits can still
// Touch the object — otherwise serving from the side table would starve the
// object's LRU access counts and the allocator would evict the hottest
// objects as cold.
type hotEntry struct {
	hv  uint64
	h   slab.Handle
	si  int
	key []byte
	val []byte
}

// hotTable is the direct-mapped slot array. Slots is a power of two; a key
// hashes to slot hv&mask. Collisions simply overwrite (direct-mapped): under
// Zipf the few genuinely hot keys win the slots by recurrence.
type hotTable struct {
	mask  uint64
	slots []atomic.Pointer[hotEntry]
	tick  atomic.Uint64 // promotion sampling counter
	hits  stats.Counter // GETs served from the table
}

func newHotTable(slots int) *hotTable {
	n := 1
	for n < slots {
		n <<= 1
	}
	return &hotTable{
		mask:  uint64(n - 1),
		slots: make([]atomic.Pointer[hotEntry], n),
	}
}

// lookup returns the entry for key, or nil. One load, one hash compare, one
// key compare — this is the per-GET fast-path cost.
func (t *hotTable) lookup(hv uint64, key []byte) *hotEntry {
	e := t.slots[hv&t.mask].Load()
	if e == nil || e.hv != hv || !bytes.Equal(e.key, key) {
		return nil
	}
	return e
}

// invalidate clears key's slot if it currently caches key. The CAS only
// removes the loaded entry: a concurrent re-promotion that replaced it is
// protected by its own publish-then-recheck, which runs after this caller's
// index mutation and therefore observes it.
func (t *hotTable) invalidate(hv uint64, key []byte) {
	slot := &t.slots[hv&t.mask]
	if e := slot.Load(); e != nil && e.hv == hv && bytes.Equal(e.key, key) {
		slot.CompareAndSwap(e, nil)
	}
}

// sample reports whether this hit should attempt a promotion.
func (t *hotTable) sample() bool {
	return t.tick.Add(1)%hotSampleInterval == 0
}

// ---- Store-side integration ----

// hotServe checks the fast path for key. On a hit the cached value is
// appended to dst and the object is touched for LRU accounting. The caller
// owns the get/hit counters (the batch paths add hits in bulk).
func (s *Store) hotServe(hv uint64, key, dst []byte) ([]byte, bool) {
	e := s.hot.lookup(hv, key)
	if e == nil {
		return dst, false
	}
	s.hot.hits.Inc()
	// Touching a handle that was concurrently freed is harmless (it bumps a
	// recycled access counter at worst), and the entry is invalidated on the
	// very mutation that freed it.
	s.shards[e.si].alloc.Touch(e.h, s.stamp.Load())
	return append(dst, e.val...), true
}

// maybePromote runs the sampled publish-then-recheck promotion for a verified
// GET hit: val was copied from handle h under the slab seqlock, v1 is the
// shard's index version captured before the search/verify that produced it.
// See the protocol comment at the top of this file.
func (s *Store) maybePromote(si int, sh *shard, hv uint64, key, val []byte, h slab.Handle, v1 uint64) {
	if len(val) > hotMaxValue || !s.hot.sample() {
		return
	}
	e := &hotEntry{
		hv:  hv,
		h:   h,
		si:  si,
		key: append([]byte(nil), key...),
		val: append([]byte(nil), val...),
	}
	slot := &s.hot.slots[hv&s.hot.mask]
	slot.Store(e)
	if sh.idx.Version() != v1 {
		slot.CompareAndSwap(e, nil)
		return
	}
	if loc, ok := sh.lookupLoc(hv, key); !ok || handleOf(loc) != h {
		slot.CompareAndSwap(e, nil)
	}
}

// hotInvalidate is the writer-side hook: clear key's entry after the index
// mutation. hv must be key's shardFor hash.
func (s *Store) hotInvalidate(hv uint64, key []byte) {
	if s.hot != nil {
		s.hot.invalidate(hv, key)
	}
}

// HotStats reports the hot-key fast path's cumulative hit count and whether
// the table is enabled. The live pipeline measures HotHitPortion from the
// hit delta per batch (pipeline.HotKeyStore).
func (s *Store) HotStats() (hits uint64, enabled bool) {
	if s.hot == nil {
		return 0, false
	}
	return s.hot.hits.Load(), true
}

// hotProbe is a test hook: it reports whether key is currently cached hot and
// returns the cached value.
func (s *Store) hotProbe(key []byte) ([]byte, bool) {
	if s.hot == nil {
		return nil, false
	}
	hv := cuckoo.Hash(key, s.seed)
	e := s.hot.lookup(hv, key)
	if e == nil {
		return nil, false
	}
	return e.val, true
}

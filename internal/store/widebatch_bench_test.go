package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/zipf"
)

// Shared benchmark fixture: one populated store serves every BenchmarkSearchBatch
// sub-benchmark (the measured operations are overwrites and reads of a fixed
// key population, so the store state stays equivalent across variants). The
// population is large enough (2^20 keys, ~100 MB of objects) that the zipf
// tail misses cache — the regime the wide batched search is for.
const (
	benchPop     = 1 << 20
	benchValSize = 64
	benchRing    = 1 << 16
)

var (
	benchOnce sync.Once
	benchSt   *Store
	benchKeys [][]byte
	benchIdx  []uint32
)

func benchFixture(b *testing.B) (*Store, [][]byte, []uint32) {
	b.Helper()
	benchOnce.Do(func() {
		benchSt = New(Config{MemoryBytes: 256 << 20, IndexEntries: 1 << 21, Seed: 11, Shards: 8})
		benchKeys = make([][]byte, benchPop)
		val := bytes.Repeat([]byte{0xcd}, benchValSize)
		for i := range benchKeys {
			benchKeys[i] = []byte(fmt.Sprintf("bench-key-%08d", i))
			if _, _, err := benchSt.Set(benchKeys[i], val); err != nil {
				panic(err)
			}
		}
		g := zipf.NewGenerator(benchPop, 0.99, 7)
		benchIdx = make([]uint32, benchRing)
		for i := range benchIdx {
			benchIdx[i] = uint32(g.Next())
		}
	})
	return benchSt, benchKeys, benchIdx
}

// BenchmarkSearchBatch compares the wide, shard-grouped batched GET path
// (GetBatch: SearchBatch waves + fused verify) against the scalar per-key
// path (GetInto, what the per-frame pipeline stages run) on the paper's
// serving workload: 95% GET / 5% SET with zipf(0.99)-skewed keys. Both
// sub-benchmarks process the identical operation stream in batches of the
// given size; ns/op is per query. The index is sized to a low load factor so
// the 5% overwrite SETs stay on the cuckoo fast path in both variants.
func BenchmarkSearchBatch(b *testing.B) {
	val := bytes.Repeat([]byte{0xcd}, benchValSize)
	for _, n := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("wide/batch=%d", n), func(b *testing.B) {
			s, keys, ringIdx := benchFixture(b)
			batchKeys := make([][]byte, 0, n)
			vlo := make([]int32, n)
			vhi := make([]int32, n)
			vals := make([]byte, 0, n*(benchValSize+8))
			b.ReportAllocs()
			b.ResetTimer()
			pos := 0
			for i := 0; i < b.N; i += n {
				batchKeys = batchKeys[:0]
				for j := 0; j < n; j++ {
					k := keys[ringIdx[(pos+j)&(benchRing-1)]]
					if j%20 == 19 { // the workload's 5% SETs, scalar in both variants
						if _, _, err := s.Set(k, val); err != nil {
							b.Fatal(err)
						}
					} else {
						batchKeys = append(batchKeys, k)
					}
				}
				out, _ := s.GetBatch(batchKeys, vals[:0], vlo[:len(batchKeys)], vhi[:len(batchKeys)])
				vals = out
				pos += n
			}
		})
		b.Run(fmt.Sprintf("scalar/batch=%d", n), func(b *testing.B) {
			s, keys, ringIdx := benchFixture(b)
			dst := make([]byte, 0, benchValSize+8)
			b.ReportAllocs()
			b.ResetTimer()
			pos := 0
			for i := 0; i < b.N; i += n {
				for j := 0; j < n; j++ {
					k := keys[ringIdx[(pos+j)&(benchRing-1)]]
					if j%20 == 19 {
						if _, _, err := s.Set(k, val); err != nil {
							b.Fatal(err)
						}
					} else {
						v, _ := s.GetInto(k, dst[:0])
						dst = v
					}
				}
				pos += n
			}
		})
	}
}

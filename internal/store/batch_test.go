package store

import (
	"testing"

	"repro/internal/cuckoo"
)

func TestReadCandidatesHit(t *testing.T) {
	s := newTestStore()
	if _, _, err := s.Set([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	cands := s.IndexSearch([]byte("alpha"), nil)
	if len(cands) == 0 {
		t.Fatal("IndexSearch found no candidates for a present key")
	}
	out, ok := s.ReadCandidates([]byte("alpha"), cands, nil)
	if !ok || string(out) != "one" {
		t.Fatalf("ReadCandidates = %q/%v, want one/true", out, ok)
	}
	// Appends to dst like GetInto.
	out2, ok := s.ReadCandidates([]byte("alpha"), cands, []byte("x"))
	if !ok || string(out2) != "xone" {
		t.Fatalf("ReadCandidates append = %q/%v, want xone/true", out2, ok)
	}
}

func TestReadCandidatesStaleFallsBack(t *testing.T) {
	s := newTestStore()
	if _, _, err := s.Set([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	stale := s.IndexSearch([]byte("alpha"), nil)
	// Overwrite (retires the old slab handle) after the search collected its
	// candidates — the pipelined window a concurrent SET can land in.
	if _, _, err := s.Set([]byte("alpha"), []byte("two")); err != nil {
		t.Fatal(err)
	}
	out, ok := s.ReadCandidates([]byte("alpha"), stale, nil)
	if !ok || string(out) != "two" {
		t.Fatalf("ReadCandidates with stale cands = %q/%v, want authoritative two/true", out, ok)
	}
}

func TestReadCandidatesEmptyFallsBack(t *testing.T) {
	s := newTestStore()
	if _, _, err := s.Set([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	// No candidates at all (a same-batch insert the search ran before):
	// must still resolve via the authoritative read, not report a miss.
	out, ok := s.ReadCandidates([]byte("alpha"), nil, nil)
	if !ok || string(out) != "one" {
		t.Fatalf("ReadCandidates(nil cands) = %q/%v, want one/true", out, ok)
	}
}

func TestReadCandidatesMiss(t *testing.T) {
	s := newTestStore()
	if _, _, err := s.Set([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	// A deleted key with its (now stale) candidates must miss, and the dst
	// prefix must come back untouched.
	cands := s.IndexSearch([]byte("alpha"), nil)
	s.Delete([]byte("alpha"))
	out, ok := s.ReadCandidates([]byte("alpha"), cands, []byte("pfx"))
	if ok || string(out) != "pfx" {
		t.Fatalf("ReadCandidates after delete = %q/%v, want pfx/false", out, ok)
	}
}

func TestReadCandidatesForeignShardSkipped(t *testing.T) {
	s := New(Config{MemoryBytes: 8 << 20, IndexEntries: 4096, Seed: 3, Shards: 4})
	if _, _, err := s.Set([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Set([]byte("beta"), []byte("two")); err != nil {
		t.Fatal(err)
	}
	// Hand alpha's read the candidates of a key from (likely) another shard
	// mixed with garbage: only same-shard candidates may be considered, and
	// the verified fallback still resolves the right value.
	wrong := s.IndexSearch([]byte("beta"), nil)
	wrong = append(wrong, cuckoo.Location(0))
	out, ok := s.ReadCandidates([]byte("alpha"), wrong, nil)
	if !ok || string(out) != "one" {
		t.Fatalf("ReadCandidates with foreign cands = %q/%v, want one/true", out, ok)
	}
}

// scan.go implements the MVCC ordered index beside the cuckoo table and the
// range-scan read path on top of it.
//
// Each shard optionally carries a copy-on-write LLRB (internal/ordered) that
// the write path keeps in sync with the cuckoo index: a SET upserts the key
// with its global location, a DELETE (and an eviction victim's retirement)
// removes it. The tree stores locations, not values, so it costs ~one node
// per live object regardless of value size and never pins value memory.
//
// Scans are MVCC: a Scanner captures every shard's tree snapshot once (one
// atomic load per shard) and merges them in key order. Writers never block —
// they publish new tree roots while the scan walks the old ones. The
// consistency contract is:
//
//   - The KEY SET a scan iterates is a point-in-time snapshot per shard
//     (cross-shard atomicity is not promised — a scan spanning shards may see
//     shard A slightly older than shard B, like any sharded store).
//
//   - VALUES are read live through the slab's per-chunk seqlock, so a scan
//     never returns torn bytes and never touches reclaimed memory. If the
//     snapshot's location was recycled by an eviction or overwrite, the scan
//     falls back to an authoritative point lookup; a key deleted since the
//     snapshot is skipped. A scan may therefore observe a value NEWER than
//     its snapshot, but never an older, torn, or foreign one.
package store

import (
	"bytes"

	"repro/internal/cuckoo"
	"repro/internal/ordered"
)

// Ordered reports whether the store maintains the ordered index (and hence
// supports Scan).
func (s *Store) Ordered() bool { return s.shards[0].tree != nil }

// scanHead is one shard's cursor in the N-way merge.
type scanHead struct {
	it  ordered.Iter
	key []byte
	loc uint64
}

// Scanner pins one MVCC snapshot of every shard's ordered index and serves
// any number of range scans from it — the pipeline's batched range merge
// creates one Scanner per batch so every SCAN in the batch reads the same
// key-set version. A Scanner is cheap (N atomic loads); it is not safe for
// concurrent use. Scratch buffers are reused across calls.
type Scanner struct {
	s      *Store
	snaps  []ordered.Snapshot
	heads  []scanHead
	valBuf []byte
}

// NewScanner captures a snapshot of every shard's ordered index. It returns
// nil when the store was built without Config.Ordered.
func (s *Store) NewScanner() *Scanner {
	if !s.Ordered() {
		return nil
	}
	sc := &Scanner{s: s, snaps: make([]ordered.Snapshot, len(s.shards))}
	for i, sh := range s.shards {
		sc.snaps[i] = sh.tree.Snapshot()
	}
	return sc
}

// Scan iterates live objects with key in [start, end) in ascending key order,
// calling fn(key, value) for each until limit entries have been visited, the
// range is exhausted, or fn returns false. A nil/empty start means the
// smallest key; a nil/empty end means unbounded; limit <= 0 means unlimited.
// It returns the number of entries visited. The slices passed to fn are
// reused; fn must copy what it keeps.
func (sc *Scanner) Scan(start, end []byte, limit int, fn func(key, value []byte) bool) int {
	s := sc.s
	s.scans.Inc()
	if limit <= 0 {
		limit = int(^uint(0) >> 1)
	}
	// Prime one cursor per shard. Keys are unique across shards (a key hashes
	// to exactly one), so the merge needs no deduplication.
	sc.heads = sc.heads[:0]
	for _, snap := range sc.snaps {
		it := snap.Iter(start, end)
		if k, v, ok := it.Next(); ok {
			sc.heads = append(sc.heads, scanHead{it: it, key: k, loc: v})
		}
	}
	n := 0
	for n < limit && len(sc.heads) > 0 {
		// Linear min over at most MaxShards heads.
		m := 0
		for i := 1; i < len(sc.heads); i++ {
			if bytes.Compare(sc.heads[i].key, sc.heads[m].key) < 0 {
				m = i
			}
		}
		key, loc := sc.heads[m].key, sc.heads[m].loc
		if k, v, ok := sc.heads[m].it.Next(); ok {
			sc.heads[m].key, sc.heads[m].loc = k, v
		} else {
			sc.heads[m] = sc.heads[len(sc.heads)-1]
			sc.heads = sc.heads[:len(sc.heads)-1]
		}
		val, ok := sc.readScanValue(key, loc)
		if !ok {
			continue // deleted since the snapshot
		}
		n++
		s.scanEntries.Inc()
		s.scanBytes.Add(uint64(len(key) + len(val)))
		if !fn(key, val) {
			break
		}
	}
	return n
}

// readScanValue reads the value for a snapshot entry: first through the
// snapshot's own location (seqlock-verified — the common case, one chunk
// read), then, if that chunk was since reclaimed or rewritten, through an
// authoritative point lookup. ok is false when the key no longer exists.
func (sc *Scanner) readScanValue(key []byte, loc uint64) ([]byte, bool) {
	s := sc.s
	gloc := cuckoo.Location(loc)
	si := shardOfLoc(gloc)
	if si < len(s.shards) {
		sh := s.shards[si]
		if out, ok := sh.alloc.ReadIfMatch(handleOf(gloc), key, sc.valBuf[:0]); ok {
			sc.valBuf = out
			return out, true
		}
	}
	// Snapshot location stale: the object moved (overwrite) or died (delete /
	// eviction). Resolve through the index without touching the point-GET
	// hit/miss counters — scans have their own.
	s.scanFallbacks.Inc()
	_, sh, hv := s.shardFor(key)
	if liveLoc, ok := sh.lookupLoc(hv, key); ok {
		if out, ok := sh.alloc.ReadIfMatch(handleOf(liveLoc), key, sc.valBuf[:0]); ok {
			sc.valBuf = out
			return out, true
		}
	}
	return nil, false
}

// Scan is the one-shot form of Scanner.Scan: it captures a fresh snapshot,
// runs a single range merge, and reports whether the store is ordered.
func (s *Store) Scan(start, end []byte, limit int, fn func(key, value []byte) bool) (int, bool) {
	sc := s.NewScanner()
	if sc == nil {
		return 0, false
	}
	return sc.Scan(start, end, limit, fn), true
}

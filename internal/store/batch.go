package store

import "repro/internal/cuckoo"

// ReadCandidates performs the fused KC+RD tasks of the staged serving path:
// verify cands (previously collected by IndexSearch for key, possibly in an
// earlier pipeline stage) and append the live value to dst, returning the
// extended slice. Like GetInto it is lock-free and, with sufficient dst
// capacity, allocation-free.
//
// KC and RD are fused here rather than separately staged because the slab's
// seqlock read contract couples them: a key compare that succeeds is only
// meaningful together with the value copy validated under the same chunk
// version (see DESIGN.md §5.9) — splitting them would reopen the torn-read
// window the seqlock closes.
//
// The hot-key fast path is checked before the candidate walk: a key the side
// table caches is served with no memory traffic at all (its search stage
// already skipped the probe via SearchServe, so its cands are empty).
//
// Candidates can be stale by the time this runs: a concurrent SET may have
// retired the location IndexSearch returned. Stale candidates must not
// manufacture a miss, so when none verifies the read falls back to the
// authoritative version-validated lookup, which also covers the empty-cands
// case (no index search ran, the search raced an insert, or a hot entry was
// invalidated between the search and read stages).
func (s *Store) ReadCandidates(key []byte, cands []cuckoo.Location, dst []byte) ([]byte, bool) {
	s.gets.Inc()
	si, sh, hv := s.shardFor(key)
	var v1 uint64
	if s.hot != nil {
		if out, ok := s.hotServe(hv, key, dst); ok {
			s.hits.Inc()
			return out, true
		}
		v1 = sh.idx.Version() // promotion protocol: capture before the copy
	}
	for _, loc := range cands {
		if shardOfLoc(loc) != si {
			continue // foreign-shard candidate: cannot be key's object
		}
		h := handleOf(loc)
		if out, ok := sh.alloc.ReadIfMatch(h, key, dst); ok {
			s.hits.Inc()
			sh.alloc.Touch(h, s.stamp.Load())
			if s.hot != nil {
				s.maybePromote(si, sh, hv, key, out[len(dst):], h, v1)
			}
			return out, true
		}
	}
	return s.readVerified(si, sh, hv, key, dst)
}

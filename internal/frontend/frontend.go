// Package frontend is the server's transport layer: each Frontend owns one
// listening socket, its wire framing, and response delivery, and feeds parsed
// frames to a protocol-independent Core that owns admission, at-most-once
// dedupe, durability commit-before-ack, and per-frame vs pipelined execution.
//
// The split follows the paper's reading of RV/PP (receive/parse) as pipeline
// tasks rather than server plumbing: a frontend is exactly the RV/PP producer
// plus the SD (send) consumer for one protocol, and everything between those
// tasks is shared. The UDP binary protocol, the RESP2 TCP protocol and the
// memcached text protocol are three implementations over one core instead of
// three servers.
//
// Contract (DESIGN.md §5.15): for every Frame a frontend hands to
// Core.Admit/Submit, the core calls exactly one terminal delivery on the
// frame's Responder — Deliver (success), Busy (shed) or Fail (poisoned or
// durability-dropped) — followed by exactly one Release. Stream frontends
// rely on that accounting to keep per-connection reply ordering and buffer
// lifetimes correct; the core relies on Deliver running only after the
// durability tier committed the frame's records (commit-before-ack).
package frontend

import (
	"net"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/stats"
)

// Frame is one parsed request travelling between a frontend and the core: a
// batch of queries plus the identity the core needs for dedupe and durability.
// Frames are pooled by their owning frontend; the core must not retain one
// past Release.
type Frame struct {
	// Queries is the parsed query batch. It aliases frontend-owned buffers
	// and is valid until Release.
	Queries []proto.Query
	// ReqID is the client's retry-stable request ID (0 = none; the frame is
	// then not deduplicated).
	ReqID uint64
	// AKey is the client's memoized address key for the reply cache. Empty
	// disables dedupe for the frame (stream transports get at-most-once from
	// the connection itself).
	AKey string
	// Tracked is set by the core when the frame holds an in-flight marker in
	// the reply cache (Admit outcome); the core clears it on finish/abort.
	Tracked bool
	// Start is the admission timestamp when the core has a slow-query log
	// attached (zero otherwise).
	Start time.Time
	// ParseNanos is the frontend's measured RV/PP cost, feeding the pipeline's
	// adaptation profile when the core asked for measurement.
	ParseNanos int64
	// Units holds the encoded response units once Encode ran (the pipelined
	// path encodes before batched delivery; the reply cache retains them, so
	// they are freshly allocated and never pooled).
	Units [][]byte
	// R is the responder that delivers this frame's outcome — always the
	// frame's owning frontend.
	R Responder
	// Ctx is the frontend's private per-frame state.
	Ctx any
}

// reset clears the core-facing fields before a frame returns to its pool.
// Frontend-private state (Ctx, R) survives across reuses.
func (f *Frame) reset() {
	f.Queries = nil
	f.ReqID = 0
	f.AKey = ""
	f.Tracked = false
	f.Start = time.Time{}
	f.ParseNanos = 0
	f.Units = nil
}

// Responder is the delivery half of a frontend: how the core answers a frame.
// Exactly one of Deliver, Busy or Fail runs per frame, then exactly one
// Release. All methods must be safe for concurrent use across frames (the
// per-frame path answers from many goroutines, the pipelined path from
// concurrent batch completions).
type Responder interface {
	// Encode renders resps into the frame's wire units. The returned slices
	// are freshly allocated: the core's reply cache and WAL REPLY records
	// retain them past Release.
	Encode(f *Frame, resps []proto.Response) [][]byte
	// Deliver sends encoded units for one frame. The returned ok gates the
	// per-frame path's reply-cache fill (a failed send must not cache a reply
	// the client never saw).
	Deliver(f *Frame, units [][]byte) bool
	// DeliverBatch sends one completed pipeline batch's frames (each with
	// f.Units already encoded) in as few kernel crossings as the transport
	// allows — sendmmsg for UDP, one coalesced write per connection for TCP.
	DeliverBatch(fs []*Frame)
	// Busy answers a shed frame with per-query busy errors so the client
	// backs off instead of timing out. Never cached by the core.
	Busy(f *Frame)
	// Fail answers a frame whose execution produced no usable response set
	// (poisoned batch, failed WAL commit). Datagram transports send nothing —
	// the client times out and retries; stream transports must emit
	// per-command errors to keep the connection's ordered reply stream in
	// sync.
	Fail(f *Frame, reason string)
	// Release returns the frame and its buffers to the frontend. Runs exactly
	// once per frame, after its terminal delivery (and after the core is done
	// reading Queries — WAL records and the slow-query log alias them).
	Release(f *Frame)
}

// Core is the protocol-independent server surface a frontend feeds.
// *dido.Server implements it.
type Core interface {
	// Admit runs pre-parse admission on a frame (reply-cache dedupe via
	// AKey/ReqID, then the in-flight token gate). It returns true when the
	// caller should parse and Submit the frame; false when the core already
	// answered and released it (replayed, duplicate-dropped, or shed).
	Admit(f *Frame) bool
	// Submit executes an admitted, parsed frame on the configured serving
	// path. The core releases the frame when done.
	Submit(f *Frame)
	// Cancel aborts an admitted frame whose payload failed to parse: the core
	// counts the malformed drop, returns the admission slot, and releases the
	// frame. No delivery runs — datagram-only (a stream frontend must turn
	// parse errors into in-band error replies instead).
	Cancel(f *Frame)
	// Malformed counts a frame dropped before admission (bad header).
	Malformed()
	// Draining reports whether the core is shutting down; frontends exit
	// their read loops on it.
	Draining() bool
}

// FrameSource is the lifecycle half of a frontend. The owning server calls
// Listen, then Run on a dedicated goroutine; on shutdown it calls Interrupt
// on every frontend (stopping frame production), drains the core, and only
// then Shutdown (tearing sockets down so late responses still go out).
type FrameSource interface {
	// Listen binds the transport; Addr is valid afterwards.
	Listen(addr string) error
	// Run reads, parses and submits frames until Interrupt or a fatal socket
	// error. Blocks.
	Run(core Core) error
	// Interrupt stops frame production and returns only once no further
	// Admit/Submit call can happen (read loops exited). The transport stays
	// up for response delivery.
	Interrupt()
	// Shutdown tears the transport down. Called after the core drained.
	Shutdown()
	// Addr is the bound address (nil before Listen).
	Addr() net.Addr
}

// Stats is a per-frontend counter snapshot for the observability surface.
type Stats struct {
	// Frames counts frames submitted to the core; Malformed counts framing
	// and parse rejections at this frontend.
	Frames, Malformed uint64
	// BytesIn and BytesOut count transport payload bytes.
	BytesIn, BytesOut uint64
	// ConnsAccepted and ConnsShed count stream connections admitted and
	// rejected over the connection budget; ConnsActive is the current count.
	// All zero for datagram transports.
	ConnsAccepted, ConnsShed uint64
	ConnsActive              int
	// SendErrs counts failed reply writes (datagram sends that errored,
	// stream flushes that tore their connection down). The affected frames
	// were dropped; datagram clients recover by retrying.
	SendErrs uint64
}

// QueueStats is one ingestion queue's counter snapshot: a REUSEPORT socket
// for the UDP frontend, an accept listener for stream frontends. The A/B
// benches and the multi-queue tests read these to prove the kernel actually
// spread flows across queues.
type QueueStats struct {
	// Frames counts frames submitted to the core from this queue.
	Frames uint64
	// BytesIn and BytesOut count transport payload bytes through this
	// queue's socket(s).
	BytesIn, BytesOut uint64
	// SendErrs counts failed reply writes on this queue.
	SendErrs uint64
	// Conns counts connections accepted on this queue (stream frontends;
	// zero for datagram queues).
	Conns uint64
}

// QueueStatsSource is implemented by frontends that shard ingestion across
// multiple REUSEPORT queues. A single-queue frontend reports one entry.
type QueueStatsSource interface {
	QueueStats() []QueueStats
}

// StatsSource is implemented by every frontend (and the text server) so the
// server can render per-frontend metrics with a frontend="<name>" label.
type StatsSource interface {
	Name() string
	FrontendStats() Stats
}

// Frontend is a full transport implementation: lifecycle, delivery and stats.
type Frontend interface {
	FrameSource
	Responder
	StatsSource
}

// Gate is the connection-scale admission shared by the server's stream
// frontends (RESP, memcached text): a bounded budget of concurrently open
// connections, shedding beyond it. One Gate serves several frontends so a
// flood on one protocol sheds globally, and its counters surface in
// ServerStats alongside the frame-level shed accounting.
type Gate struct {
	max      int64
	active   atomic.Int64
	accepted stats.Counter
	shed     stats.Counter
}

// NewGate returns a connection gate admitting at most max concurrent
// connections; max <= 0 means unlimited.
func NewGate(max int) *Gate {
	return &Gate{max: int64(max)}
}

// Acquire claims a connection slot, reporting false (and counting the shed)
// when the budget is exhausted.
func (g *Gate) Acquire() bool {
	if n := g.active.Add(1); g.max > 0 && n > g.max {
		g.active.Add(-1)
		g.shed.Inc()
		return false
	}
	g.accepted.Inc()
	return true
}

// Release returns a slot claimed by Acquire.
func (g *Gate) Release() { g.active.Add(-1) }

// Active is the number of currently held slots.
func (g *Gate) Active() int { return int(g.active.Load()) }

// Accepted is the total connections admitted.
func (g *Gate) Accepted() uint64 { return g.accepted.Load() }

// Shed is the total connections rejected over the budget.
func (g *Gate) Shed() uint64 { return g.shed.Load() }

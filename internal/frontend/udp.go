package frontend

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/udpbatch"
)

// UDPOptions configures the binary-protocol UDP frontend.
type UDPOptions struct {
	// WrapConn wraps each listening socket before serving — the fault
	// injector's hook. With multiple queues it runs once per queue socket.
	WrapConn func(net.PacketConn) net.PacketConn
	// Batched drains bursts of datagrams per kernel crossing (recvmmsg where
	// available); set when the core serves the pipelined path, mirroring the
	// batched response sends.
	Batched bool
	// Dedupe computes the frame's reply-cache address key (v2 frames with a
	// request ID); set when the core has a reply cache.
	Dedupe bool
	// MeasureParse times RV/PP per frame for the adaptation profile.
	MeasureParse bool
	// StampStart records the admission time per frame (slow-query log).
	StampStart bool
	// Queues is how many SO_REUSEPORT sockets to shard ingestion across:
	// each queue gets its own socket, reader goroutine (RV+PP), batched
	// sender and address cache, so neither the receive loop, the reply
	// sends nor the addr-key memoization serialize across queues. The
	// kernel hashes client 4-tuples over the sockets, so same-source
	// retries stay on one queue while distinct clients spread. ≤ 1 — and
	// any value on a platform without SO_REUSEPORT — keeps the
	// single-socket layout.
	Queues int
}

// UDP is the batched binary protocol over one or more UDP sockets bound to
// one address: one datagram per request frame, one or more per response.
// With Queues > 1 the kernel (SO_REUSEPORT) shards incoming flows across
// per-queue sockets, each drained by its own reader — the RV/PP tier
// partitioned the way the paper partitions every other pipeline task.
type UDP struct {
	opts UDPOptions

	mu     sync.Mutex
	queues []*udpQueue // set by Listen, sockets closed (slice kept) by Shutdown

	started atomic.Bool
	failed  atomic.Bool // a reader hit a hard socket error; peers drain out
	runDone chan struct{}

	bufs   sync.Pool // []byte of proto.MaxFrameBytes
	frames sync.Pool // *udpFrame

	malformed stats.Counter // shared: the reject path is rare enough not to shard
}

// udpQueue is one ingestion queue: a REUSEPORT socket, the state its single
// reader owns, and its own batched sender so replies leave through the
// socket their request arrived on without crossing a shared lock.
type udpQueue struct {
	pc     net.PacketConn
	sender *udpbatch.Sender
	// addrs is touched only by this queue's reader goroutine (keyFor runs
	// on the datagram path, before Admit), so it needs no lock.
	addrs addrCache

	nframes  stats.Counter
	bytesIn  stats.Counter
	bytesOut stats.Counter
	sendErrs stats.Counter
}

// udpFrame is the UDP-private context of one frame: the receive buffer the
// queries alias, the peer address, the arrival queue (replies go back out
// through it), and the v2 framing bits the encoder needs.
type udpFrame struct {
	f       Frame
	buf     []byte
	raddr   net.Addr
	q       *udpQueue
	v2      bool
	count   int
	queries []proto.Query
}

// NewUDP returns an unbound UDP frontend.
func NewUDP(opts UDPOptions) *UDP {
	u := &UDP{opts: opts, runDone: make(chan struct{})}
	u.bufs.New = func() any { return make([]byte, proto.MaxFrameBytes) }
	u.frames.New = func() any {
		uf := &udpFrame{}
		uf.f.R = u
		uf.f.Ctx = uf
		return uf
	}
	return u
}

func (u *UDP) Name() string { return "udp" }

// Listen binds the queue sockets (each wrapped when configured). Addr is
// valid after. The effective queue count is fixed here: the kernel keeps
// hashing datagrams to every REUSEPORT socket whether or not anyone reads
// it, so queues cannot be parked later without stranding their flows.
func (u *UDP) Listen(addr string) error {
	conns, err := udpbatch.ListenUDPQueues(addr, u.opts.Queues)
	if err != nil {
		return err
	}
	qs := make([]*udpQueue, len(conns))
	for i, c := range conns {
		var pc net.PacketConn = c
		if u.opts.WrapConn != nil {
			pc = u.opts.WrapConn(pc)
		}
		qs[i] = &udpQueue{pc: pc, sender: udpbatch.NewSender(pc)}
	}
	u.mu.Lock()
	u.queues = qs
	u.mu.Unlock()
	return nil
}

// Addr returns the bound address, or nil before Listen.
func (u *UDP) Addr() net.Addr {
	u.mu.Lock()
	defer u.mu.Unlock()
	if len(u.queues) == 0 {
		return nil
	}
	return u.queues[0].pc.LocalAddr()
}

// snapshot returns the queue slice (immutable once Listen set it).
func (u *UDP) snapshot() []*udpQueue {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.queues
}

// Run starts one reader per queue — queue 0 on the calling goroutine,
// keeping the blocking contract — and returns once all of them exited. Each
// reader exits nil once core.Draining and its socket read unblocks
// (Interrupt sets read deadlines); the sockets stay up so draining frames
// still answer, until Shutdown. A hard socket error on one queue flags the
// others out of their loops so Run can report it.
func (u *UDP) Run(core Core) error {
	qs := u.snapshot()
	u.started.Store(true)
	defer close(u.runDone)
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i := 1; i < len(qs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = u.runQueue(core, qs[i])
		}(i)
	}
	errs[0] = u.runQueue(core, qs[0])
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runQueue is one queue's read/admit/dispatch loop.
func (u *UDP) runQueue(core Core, q *udpQueue) error {
	var err error
	if u.opts.Batched {
		err = u.runQueueBatched(core, q)
	} else {
		err = u.runQueueLoop(core, q)
	}
	if err != nil {
		u.failed.Store(true)
		u.kick() // unblock sibling readers so Run can return the error
	}
	return err
}

func (u *UDP) runQueueLoop(core Core, q *udpQueue) error {
	for {
		buf := u.bufs.Get().([]byte)
		n, raddr, err := q.pc.ReadFrom(buf)
		if err != nil {
			u.bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
			if done, serr := u.readErr(core, err); done {
				return serr
			}
			continue
		}
		u.handleDatagram(core, q, buf, n, raddr)
	}
}

// runQueueBatched is the pipelined-path variant: it drains bursts of
// datagrams per kernel crossing (recvmmsg where available) before running
// the same per-datagram admission — per-reader frame batching.
func (u *UDP) runQueueBatched(core Core, q *udpQueue) error {
	rcv := udpbatch.NewReceiver(q.pc)
	const burst = 16
	bufs := make([][]byte, burst)
	addrs := make([]net.Addr, burst)
	sizes := make([]int, burst)
	for {
		for i := range bufs {
			if bufs[i] == nil {
				bufs[i] = u.bufs.Get().([]byte)
			}
		}
		got, err := rcv.Recv(bufs, addrs, sizes)
		if err != nil {
			if done, serr := u.readErr(core, err); done {
				for _, buf := range bufs {
					if buf != nil {
						u.bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
					}
				}
				return serr
			}
			continue
		}
		for i := 0; i < got; i++ {
			buf := bufs[i]
			bufs[i] = nil // ownership moves to the frame
			u.handleDatagram(core, q, buf, sizes[i], addrs[i])
		}
	}
}

// readErr classifies a receive error: exit cleanly when draining (or when a
// sibling reader already failed the frontend), ride out transient timeouts,
// fail on anything else.
func (u *UDP) readErr(core Core, err error) (done bool, _ error) {
	if core.Draining() || u.failed.Load() {
		return true, nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false, nil
	}
	return true, err
}

// handleDatagram runs one datagram through header check, core admission,
// parse, and submission. It takes ownership of buf. Only q's reader
// goroutine calls it for a given q.
func (u *UDP) handleDatagram(core Core, q *udpQueue, buf []byte, n int, raddr net.Addr) {
	q.bytesIn.Add(uint64(n))
	count, reqID, v2, herr := proto.FrameHeader(buf[:n])
	if herr != nil {
		// Malformed or corrupted frame: drop, as a UDP service must.
		u.malformed.Inc()
		core.Malformed()
		u.bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
		return
	}
	uf := u.frames.Get().(*udpFrame)
	uf.buf, uf.raddr, uf.q, uf.v2, uf.count = buf, raddr, q, v2, count
	f := &uf.f
	f.ReqID = reqID
	if u.opts.Dedupe && v2 && reqID != 0 {
		// Address keys are plain strings, equal across queues for one peer,
		// so the reply cache dedupes retries even when the kernel hashes a
		// retry (new source port after a client reconnect) to another queue.
		f.AKey = q.addrs.keyFor(raddr)
	}
	if u.opts.StampStart {
		f.Start = time.Now()
	}
	if !core.Admit(f) {
		return // replayed, duplicate-dropped or shed: core answered and released
	}
	var parseStart time.Time
	if u.opts.MeasureParse {
		parseStart = time.Now()
	}
	queries, _, perr := proto.ParseFrameID(buf[:n], uf.queries[:0])
	if u.opts.MeasureParse {
		f.ParseNanos = time.Since(parseStart).Nanoseconds()
	}
	if perr != nil {
		u.malformed.Inc()
		core.Cancel(f)
		return
	}
	uf.queries = queries
	f.Queries = queries
	q.nframes.Inc()
	core.Submit(f)
}

// kick unblocks every queue's read with an expired deadline.
func (u *UDP) kick() {
	for _, q := range u.snapshot() {
		q.pc.SetReadDeadline(time.Now()) //nolint:errcheck
	}
}

// Interrupt unblocks all read loops via read deadlines and waits for them to
// exit, so no further frame can reach the core.
func (u *UDP) Interrupt() {
	u.kick()
	if u.started.Load() {
		<-u.runDone
	}
}

// Shutdown closes the queue sockets. Called after the core drained so every
// in-flight frame got its response first. The queue slice survives so stats
// remain readable.
func (u *UDP) Shutdown() {
	for _, q := range u.snapshot() {
		q.pc.Close()
	}
}

// maxResponsePayload keeps each response frame within a safe UDP datagram.
const maxResponsePayload = 60 << 10

// AppendResponseFrames encodes resps split across as many datagrams as needed
// (the client reassembles by offset), appending each encoded frame to dst.
// The returned frames are freshly allocated: the reply cache retains them
// across retries.
func AppendResponseFrames(dst [][]byte, reqID uint64, v2 bool, resps []proto.Response) [][]byte {
	start := 0
	for {
		end := start
		bytes := 0
		for end < len(resps) {
			rlen := 5 + len(resps[end].Value)
			if end > start && bytes+rlen > maxResponsePayload {
				break
			}
			bytes += rlen
			end++
		}
		if v2 {
			dst = append(dst, proto.EncodeResponseFrameV2(nil, reqID, start, resps[start:end]))
		} else {
			dst = append(dst, proto.EncodeResponseFrame(nil, resps[start:end]))
		}
		start = end
		if start >= len(resps) {
			return dst
		}
	}
}

// Encode renders resps as v1/v2 response datagrams.
func (u *UDP) Encode(f *Frame, resps []proto.Response) [][]byte {
	uf := f.Ctx.(*udpFrame)
	return AppendResponseFrames(nil, f.ReqID, uf.v2, resps)
}

// Deliver writes each unit to the frame's peer through its arrival queue;
// ok is false on the first write error (oversized single value or transient
// failure: rest dropped, error counted on the queue).
func (u *UDP) Deliver(f *Frame, units [][]byte) bool {
	uf := f.Ctx.(*udpFrame)
	q := uf.q
	for _, out := range units {
		if _, err := q.pc.WriteTo(out, uf.raddr); err != nil {
			q.sendErrs.Inc()
			return false
		}
		q.bytesOut.Add(uint64(len(out)))
	}
	return true
}

// DeliverBatch transmits one completed batch's datagrams in as few batched
// sends as the frames' arrival queues allow (Linux sendmmsg — the WR/SD
// counterpart of batching queries into frames). Each reply leaves through
// its own queue's sender: per-queue sendmmsg, no cross-queue lock. Frames
// from one queue keep their order.
func (u *UDP) DeliverBatch(fs []*Frame) {
	rem := fs
	for len(rem) > 0 {
		q := rem[0].Ctx.(*udpFrame).q
		msgs := make([]udpbatch.Message, 0, len(rem))
		total := 0
		rest := rem[:0]
		for _, f := range rem {
			uf := f.Ctx.(*udpFrame)
			if uf.q != q {
				rest = append(rest, f)
				continue
			}
			for _, out := range f.Units {
				msgs = append(msgs, udpbatch.Message{Buf: out, Addr: uf.raddr})
				total += len(out)
			}
		}
		if len(msgs) > 0 {
			q.sender.Send(msgs)
			q.bytesOut.Add(uint64(total))
		}
		rem = rest
	}
}

// Busy answers a shed frame with one StatusBusy response per query so the
// client learns about the overload immediately instead of timing out.
func (u *UDP) Busy(f *Frame) {
	uf := f.Ctx.(*udpFrame)
	resps := make([]proto.Response, uf.count)
	for i := range resps {
		resps[i].Status = proto.StatusBusy
	}
	u.Deliver(f, u.Encode(f, resps))
}

// Fail sends nothing: a datagram client times out and retries, and the
// cleared in-flight marker re-admits the retry.
func (u *UDP) Fail(f *Frame, reason string) {}

// Release returns the frame's receive buffer and pooled state.
func (u *UDP) Release(f *Frame) {
	uf := f.Ctx.(*udpFrame)
	u.bufs.Put(uf.buf) //nolint:staticcheck // fixed-size buffer
	uf.buf = nil
	uf.raddr = nil
	uf.q = nil
	uf.v2 = false
	uf.count = 0
	if len(uf.queries) > 0 {
		uf.queries = uf.queries[:0]
	}
	f.reset()
	u.frames.Put(uf)
}

// FrontendStats snapshots the frontend's counters, summed over its queues.
func (u *UDP) FrontendStats() Stats {
	st := Stats{Malformed: u.malformed.Load()}
	for _, q := range u.snapshot() {
		st.Frames += q.nframes.Load()
		st.BytesIn += q.bytesIn.Load()
		st.BytesOut += q.bytesOut.Load()
		st.SendErrs += q.sendErrs.Load()
	}
	return st
}

// QueueStats snapshots each ingestion queue's counters.
func (u *UDP) QueueStats() []QueueStats {
	qs := u.snapshot()
	out := make([]QueueStats, len(qs))
	for i, q := range qs {
		out[i] = QueueStats{
			Frames:   q.nframes.Load(),
			BytesIn:  q.bytesIn.Load(),
			BytesOut: q.bytesOut.Load(),
			SendErrs: q.sendErrs.Load(),
		}
	}
	return out
}

// addrCache memoizes net.Addr → string conversions so the reply-cache path
// does not allocate a fresh address string per datagram. UDP addresses are
// keyed by their comparable netip.AddrPort form; other address types fall
// back to String(). Each ingestion queue owns one, touched only by that
// queue's single reader goroutine, so it is unlocked — the per-queue split
// exists exactly so this memoization stops serializing readers.
type addrCache struct {
	m map[netip.AddrPort]string
}

// addrCacheMax bounds the memoized address set; beyond it the map is reset
// (a full rebuild is cheaper than tracking recency for a niche overflow).
const addrCacheMax = 4096

func (ac *addrCache) keyFor(a net.Addr) string {
	ua, ok := a.(*net.UDPAddr)
	if !ok {
		return a.String()
	}
	ap := ua.AddrPort()
	if s, ok := ac.m[ap]; ok {
		return s
	}
	s := a.String()
	if ac.m == nil || len(ac.m) >= addrCacheMax {
		ac.m = make(map[netip.AddrPort]string, 64)
	}
	ac.m[ap] = s
	return s
}

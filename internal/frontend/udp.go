package frontend

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/udpbatch"
)

// UDPOptions configures the binary-protocol UDP frontend.
type UDPOptions struct {
	// WrapConn wraps the listening socket before serving — the fault
	// injector's hook.
	WrapConn func(net.PacketConn) net.PacketConn
	// Batched drains bursts of datagrams per kernel crossing (recvmmsg where
	// available); set when the core serves the pipelined path, mirroring the
	// batched response sends.
	Batched bool
	// Dedupe computes the frame's reply-cache address key (v2 frames with a
	// request ID); set when the core has a reply cache.
	Dedupe bool
	// MeasureParse times RV/PP per frame for the adaptation profile.
	MeasureParse bool
	// StampStart records the admission time per frame (slow-query log).
	StampStart bool
}

// UDP is the batched binary protocol over a UDP socket: one datagram per
// request frame, one or more per response. This is the serve loop that used
// to live inside dido.Server, behind the Frontend interface.
type UDP struct {
	opts UDPOptions

	mu sync.Mutex
	pc net.PacketConn

	started atomic.Bool
	runDone chan struct{}

	bufs   sync.Pool // []byte of proto.MaxFrameBytes
	frames sync.Pool // *udpFrame
	addrs  addrCache
	sender *udpbatch.Sender

	nframes   stats.Counter
	malformed stats.Counter
	bytesIn   stats.Counter
	bytesOut  stats.Counter
}

// udpFrame is the UDP-private context of one frame: the receive buffer the
// queries alias, the peer address, and the v2 framing bits the encoder needs.
type udpFrame struct {
	f       Frame
	buf     []byte
	raddr   net.Addr
	v2      bool
	count   int
	queries []proto.Query
}

// NewUDP returns an unbound UDP frontend.
func NewUDP(opts UDPOptions) *UDP {
	u := &UDP{opts: opts, runDone: make(chan struct{})}
	u.bufs.New = func() any { return make([]byte, proto.MaxFrameBytes) }
	u.frames.New = func() any {
		uf := &udpFrame{}
		uf.f.R = u
		uf.f.Ctx = uf
		return uf
	}
	return u
}

func (u *UDP) Name() string { return "udp" }

// Listen binds the socket (wrapped when configured). Addr is valid after.
func (u *UDP) Listen(addr string) error {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	var pc net.PacketConn = conn
	if u.opts.WrapConn != nil {
		pc = u.opts.WrapConn(pc)
	}
	u.mu.Lock()
	u.pc = pc
	u.sender = udpbatch.NewSender(pc)
	u.mu.Unlock()
	return nil
}

// Addr returns the bound address, or nil before Listen.
func (u *UDP) Addr() net.Addr {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.pc == nil {
		return nil
	}
	return u.pc.LocalAddr()
}

// Run is the read/admit/dispatch loop. It exits nil once core.Draining and
// the socket read unblocks (Interrupt sets a read deadline); the socket stays
// up so draining frames still answer, until Shutdown.
func (u *UDP) Run(core Core) error {
	u.started.Store(true)
	defer close(u.runDone)
	if u.opts.Batched {
		return u.runBatched(core)
	}
	for {
		buf := u.bufs.Get().([]byte)
		n, raddr, err := u.pc.ReadFrom(buf)
		if err != nil {
			u.bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
			if done, serr := u.readErr(core, err); done {
				return serr
			}
			continue
		}
		u.handleDatagram(core, buf, n, raddr)
	}
}

// runBatched is the pipelined-path variant of Run: it drains bursts of
// datagrams per kernel crossing (recvmmsg where available) before running the
// same per-datagram admission.
func (u *UDP) runBatched(core Core) error {
	rcv := udpbatch.NewReceiver(u.pc)
	const burst = 16
	bufs := make([][]byte, burst)
	addrs := make([]net.Addr, burst)
	sizes := make([]int, burst)
	for {
		for i := range bufs {
			if bufs[i] == nil {
				bufs[i] = u.bufs.Get().([]byte)
			}
		}
		got, err := rcv.Recv(bufs, addrs, sizes)
		if err != nil {
			if done, serr := u.readErr(core, err); done {
				for _, buf := range bufs {
					if buf != nil {
						u.bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
					}
				}
				return serr
			}
			continue
		}
		for i := 0; i < got; i++ {
			buf := bufs[i]
			bufs[i] = nil // ownership moves to the frame
			u.handleDatagram(core, buf, sizes[i], addrs[i])
		}
	}
}

// readErr classifies a receive error: exit cleanly when draining, ride out
// transient timeouts, fail on anything else.
func (u *UDP) readErr(core Core, err error) (done bool, _ error) {
	if core.Draining() {
		return true, nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return false, nil
	}
	return true, err
}

// handleDatagram runs one datagram through header check, core admission,
// parse, and submission. It takes ownership of buf.
func (u *UDP) handleDatagram(core Core, buf []byte, n int, raddr net.Addr) {
	u.bytesIn.Add(uint64(n))
	count, reqID, v2, herr := proto.FrameHeader(buf[:n])
	if herr != nil {
		// Malformed or corrupted frame: drop, as a UDP service must.
		u.malformed.Inc()
		core.Malformed()
		u.bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
		return
	}
	uf := u.frames.Get().(*udpFrame)
	uf.buf, uf.raddr, uf.v2, uf.count = buf, raddr, v2, count
	f := &uf.f
	f.ReqID = reqID
	if u.opts.Dedupe && v2 && reqID != 0 {
		f.AKey = u.addrs.keyFor(raddr)
	}
	if u.opts.StampStart {
		f.Start = time.Now()
	}
	if !core.Admit(f) {
		return // replayed, duplicate-dropped or shed: core answered and released
	}
	var parseStart time.Time
	if u.opts.MeasureParse {
		parseStart = time.Now()
	}
	queries, _, perr := proto.ParseFrameID(buf[:n], uf.queries[:0])
	if u.opts.MeasureParse {
		f.ParseNanos = time.Since(parseStart).Nanoseconds()
	}
	if perr != nil {
		u.malformed.Inc()
		core.Cancel(f)
		return
	}
	uf.queries = queries
	f.Queries = queries
	u.nframes.Inc()
	core.Submit(f)
}

// Interrupt unblocks the read loop via a read deadline and waits for it to
// exit, so no further frame can reach the core.
func (u *UDP) Interrupt() {
	u.mu.Lock()
	pc := u.pc
	u.mu.Unlock()
	if pc != nil {
		pc.SetReadDeadline(time.Now()) //nolint:errcheck
	}
	if u.started.Load() {
		<-u.runDone
	}
}

// Shutdown closes the socket. Called after the core drained so every
// in-flight frame got its response first.
func (u *UDP) Shutdown() {
	u.mu.Lock()
	pc := u.pc
	u.pc = nil
	u.mu.Unlock()
	if pc != nil {
		pc.Close()
	}
}

// maxResponsePayload keeps each response frame within a safe UDP datagram.
const maxResponsePayload = 60 << 10

// AppendResponseFrames encodes resps split across as many datagrams as needed
// (the client reassembles by offset), appending each encoded frame to dst.
// The returned frames are freshly allocated: the reply cache retains them
// across retries.
func AppendResponseFrames(dst [][]byte, reqID uint64, v2 bool, resps []proto.Response) [][]byte {
	start := 0
	for {
		end := start
		bytes := 0
		for end < len(resps) {
			rlen := 5 + len(resps[end].Value)
			if end > start && bytes+rlen > maxResponsePayload {
				break
			}
			bytes += rlen
			end++
		}
		if v2 {
			dst = append(dst, proto.EncodeResponseFrameV2(nil, reqID, start, resps[start:end]))
		} else {
			dst = append(dst, proto.EncodeResponseFrame(nil, resps[start:end]))
		}
		start = end
		if start >= len(resps) {
			return dst
		}
	}
}

// Encode renders resps as v1/v2 response datagrams.
func (u *UDP) Encode(f *Frame, resps []proto.Response) [][]byte {
	uf := f.Ctx.(*udpFrame)
	return AppendResponseFrames(nil, f.ReqID, uf.v2, resps)
}

// Deliver writes each unit to the frame's peer; ok is false on the first
// write error (oversized single value or transient failure: rest dropped).
func (u *UDP) Deliver(f *Frame, units [][]byte) bool {
	uf := f.Ctx.(*udpFrame)
	for _, out := range units {
		if _, err := u.pc.WriteTo(out, uf.raddr); err != nil {
			return false
		}
		u.bytesOut.Add(uint64(len(out)))
	}
	return true
}

// DeliverBatch transmits one completed batch's datagrams in one batched send
// (Linux sendmmsg — the WR/SD counterpart of batching queries into frames).
func (u *UDP) DeliverBatch(fs []*Frame) {
	msgs := make([]udpbatch.Message, 0, len(fs))
	total := 0
	for _, f := range fs {
		uf := f.Ctx.(*udpFrame)
		for _, out := range f.Units {
			msgs = append(msgs, udpbatch.Message{Buf: out, Addr: uf.raddr})
			total += len(out)
		}
	}
	if len(msgs) > 0 {
		u.sender.Send(msgs)
		u.bytesOut.Add(uint64(total))
	}
}

// Busy answers a shed frame with one StatusBusy response per query so the
// client learns about the overload immediately instead of timing out.
func (u *UDP) Busy(f *Frame) {
	uf := f.Ctx.(*udpFrame)
	resps := make([]proto.Response, uf.count)
	for i := range resps {
		resps[i].Status = proto.StatusBusy
	}
	u.Deliver(f, u.Encode(f, resps))
}

// Fail sends nothing: a datagram client times out and retries, and the
// cleared in-flight marker re-admits the retry.
func (u *UDP) Fail(f *Frame, reason string) {}

// Release returns the frame's receive buffer and pooled state.
func (u *UDP) Release(f *Frame) {
	uf := f.Ctx.(*udpFrame)
	u.bufs.Put(uf.buf) //nolint:staticcheck // fixed-size buffer
	uf.buf = nil
	uf.raddr = nil
	uf.v2 = false
	uf.count = 0
	if len(uf.queries) > 0 {
		uf.queries = uf.queries[:0]
	}
	f.reset()
	u.frames.Put(uf)
}

// FrontendStats snapshots the frontend's counters.
func (u *UDP) FrontendStats() Stats {
	return Stats{
		Frames:    u.nframes.Load(),
		Malformed: u.malformed.Load(),
		BytesIn:   u.bytesIn.Load(),
		BytesOut:  u.bytesOut.Load(),
	}
}

// addrCache memoizes net.Addr → string conversions so the reply-cache path
// does not allocate a fresh address string per datagram. UDP addresses are
// keyed by their comparable netip.AddrPort form; other address types fall
// back to String().
type addrCache struct {
	mu sync.Mutex
	m  map[netip.AddrPort]string
}

// addrCacheMax bounds the memoized address set; beyond it the map is reset
// (a full rebuild is cheaper than tracking recency for a niche overflow).
const addrCacheMax = 4096

func (ac *addrCache) keyFor(a net.Addr) string {
	ua, ok := a.(*net.UDPAddr)
	if !ok {
		return a.String()
	}
	ap := ua.AddrPort()
	ac.mu.Lock()
	if s, ok := ac.m[ap]; ok {
		ac.mu.Unlock()
		return s
	}
	ac.mu.Unlock()
	s := a.String()
	ac.mu.Lock()
	if ac.m == nil || len(ac.m) >= addrCacheMax {
		ac.m = make(map[netip.AddrPort]string, 64)
	}
	ac.m[ap] = s
	ac.mu.Unlock()
	return s
}

package frontend

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/proto"
	"repro/internal/stats"
	"repro/internal/udpbatch"
)

// RESP frontend: RESP2 over TCP. Reads are readiness-driven — one kernel read
// drains whatever the client pipelined, and every complete command already
// buffered coalesces into a core frame (the RESP analogue of the UDP
// protocol's client-side query batching), so a pipelining client feeds the
// LiveRunner real batches instead of single-query frames.
//
// Unlike the UDP protocol, RESP promises redis's pipelining semantics:
// commands on one connection behave as if executed sequentially. The batch
// pipeline applies a batch's writes before its reads, so a frame never mixes
// the two — coalescing seals a frame at every read↔write boundary (a "command
// run") — and a connection's frames are dispatched to the core one at a time,
// in order. Parsing still runs ahead of execution (up to MaxConnInFlight
// frames queue per connection, beyond which the frontend sheds with -BUSY),
// and different connections execute concurrently. Replies are staged per
// connection in command order and flushed with one write per completed frame
// or batch.

// Defaults for RESPOptions zero values.
const (
	defaultMaxConnInFlight = 16
	defaultMaxCmdsPerFrame = 256
	defaultWriteTimeout    = 5 * time.Second
	respReadBufSize        = 64 << 10
)

// RESPOptions configures the TCP/RESP2 frontend.
type RESPOptions struct {
	// Gate is the shared connection-scale admission (nil = unlimited). One
	// gate can serve several stream frontends.
	Gate *Gate
	// MaxConnInFlight caps frames in flight per connection (one executing,
	// the rest parsed ahead and queued); beyond it the frontend sheds with
	// -BUSY without consuming core admission tokens. 0 = default (16),
	// negative = unlimited.
	MaxConnInFlight int
	// MaxCmdsPerFrame caps how many pipelined commands coalesce into one core
	// frame. 0 = default (256).
	MaxCmdsPerFrame int
	// WriteTimeout bounds one reply flush; a connection that stalls its
	// receive window longer (slowloris) is torn down. 0 = default (5s).
	WriteTimeout time.Duration
	// WrapConn wraps each accepted connection — the stream fault injector's
	// hook.
	WrapConn func(net.Conn) net.Conn
	// MeasureParse times RV/PP per frame for the adaptation profile.
	MeasureParse bool
	// StampStart records the admission time per frame (slow-query log).
	StampStart bool
	// Listeners is how many SO_REUSEPORT accept sockets to open on the one
	// address: the kernel shards connection readiness across them, and each
	// runs its own accept loop feeding the shared Gate, so a busy accept
	// queue on one listener does not serialize the others. ≤ 1 — and any
	// value on a platform without SO_REUSEPORT — keeps one listener.
	Listeners int
}

// RESP is the TCP/RESP2 frontend, served from one or more REUSEPORT
// listeners bound to one address.
type RESP struct {
	opts            RESPOptions
	maxConnInFlight int
	maxCmdsPerFrame int
	writeTimeout    time.Duration

	mu    sync.Mutex
	lns   []*respListener // set by Listen, sockets closed (slice kept) by Shutdown
	conns map[*respConn]struct{}

	started  atomic.Bool
	stopping atomic.Bool
	runDone  chan struct{}
	readers  sync.WaitGroup

	frames sync.Pool // *respFrame
	rbufs  sync.Pool // *rbuf of respReadBufSize

	malformed stats.Counter // shared: the reject path is rare enough not to shard
	active    stats.Gauge   // shared: the Gate already owns the scale decision
}

// respListener is one accept queue: a REUSEPORT listener plus the counters
// for the connections the kernel hashed to it.
type respListener struct {
	ln net.Listener

	accepted stats.Counter
	shed     stats.Counter
	frames   stats.Counter
	bytesIn  stats.Counter
	bytesOut stats.Counter
	sendErrs stats.Counter
}

// NewRESP returns an unbound RESP frontend.
func NewRESP(opts RESPOptions) *RESP {
	r := &RESP{
		opts:            opts,
		maxConnInFlight: opts.MaxConnInFlight,
		maxCmdsPerFrame: opts.MaxCmdsPerFrame,
		writeTimeout:    opts.WriteTimeout,
		conns:           make(map[*respConn]struct{}),
		runDone:         make(chan struct{}),
	}
	if r.maxConnInFlight == 0 {
		r.maxConnInFlight = defaultMaxConnInFlight
	}
	if r.maxCmdsPerFrame <= 0 {
		r.maxCmdsPerFrame = defaultMaxCmdsPerFrame
	}
	if r.writeTimeout <= 0 {
		r.writeTimeout = defaultWriteTimeout
	}
	r.frames.New = func() any {
		rf := &respFrame{fe: r}
		rf.f.R = r
		rf.f.Ctx = rf
		return rf
	}
	r.rbufs.New = func() any { return &rbuf{b: make([]byte, respReadBufSize)} }
	return r
}

func (r *RESP) Name() string { return "resp" }

// Listen binds the accept socket(s).
func (r *RESP) Listen(addr string) error {
	lns, err := udpbatch.ListenTCPQueues(addr, r.opts.Listeners)
	if err != nil {
		return err
	}
	qs := make([]*respListener, len(lns))
	for i, ln := range lns {
		qs[i] = &respListener{ln: ln}
	}
	r.mu.Lock()
	r.lns = qs
	r.mu.Unlock()
	return nil
}

// Addr returns the bound address, or nil before Listen.
func (r *RESP) Addr() net.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.lns) == 0 {
		return nil
	}
	return r.lns[0].ln.Addr()
}

// listeners returns the listener slice (immutable once Listen set it).
func (r *RESP) listeners() []*respListener {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lns
}

// Run accepts connections on every listener until Interrupt — listener 0 on
// the calling goroutine, keeping the blocking contract. Each accepted
// connection gets a reader goroutine; over-budget connections are told why
// and closed. All listeners share the one Gate, so the connection budget
// stays global. A hard accept error on one listener closes the others so
// Run can report it.
func (r *RESP) Run(core Core) error {
	qs := r.listeners()
	r.started.Store(true)
	defer close(r.runDone)
	errs := make([]error, len(qs))
	var wg sync.WaitGroup
	for i := 1; i < len(qs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.acceptLoop(core, qs[i])
		}(i)
	}
	errs[0] = r.acceptLoop(core, qs[0])
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// acceptLoop is one listener's accept loop.
func (r *RESP) acceptLoop(core Core, q *respListener) error {
	for {
		nc, err := q.ln.Accept()
		if err != nil {
			if core.Draining() || r.stopping.Load() {
				return nil
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			// Hard accept error: stop the sibling loops so Run returns it.
			r.stopping.Store(true)
			r.closeListeners()
			return err
		}
		if g := r.opts.Gate; g != nil && !g.Acquire() {
			q.shed.Inc()
			nc.SetWriteDeadline(time.Now().Add(r.writeTimeout)) //nolint:errcheck
			nc.Write([]byte("-ERR max number of clients reached\r\n"))
			nc.Close()
			continue
		}
		q.accepted.Inc()
		r.active.Add(1)
		if r.opts.WrapConn != nil {
			nc = r.opts.WrapConn(nc)
		}
		c := &respConn{fe: r, q: q, nc: nc, core: core, rb: r.getRbuf(respReadBufSize), closeSeq: ^uint64(0)}
		r.mu.Lock()
		r.conns[c] = struct{}{}
		r.mu.Unlock()
		if r.stopping.Load() {
			// Interrupt raced the accept: make sure this reader cannot block.
			nc.SetReadDeadline(time.Now()) //nolint:errcheck
		}
		r.readers.Add(1)
		go c.readLoop(core)
	}
}

// closeListeners closes every accept socket (idempotent: double Close on a
// net.Listener just returns an error).
func (r *RESP) closeListeners() {
	for _, q := range r.listeners() {
		q.ln.Close()
	}
}

// Interrupt stops the accept loops and every connection reader, returning
// once no further frame can reach the core. Connections stay open so
// in-flight replies still flush.
func (r *RESP) Interrupt() {
	r.stopping.Store(true)
	r.closeListeners()
	if r.started.Load() {
		<-r.runDone
	}
	r.mu.Lock()
	for c := range r.conns {
		c.nc.SetReadDeadline(time.Now()) //nolint:errcheck
	}
	r.mu.Unlock()
	r.readers.Wait()
}

// Shutdown tears down every remaining connection. The listener slice
// survives so stats remain readable.
func (r *RESP) Shutdown() {
	r.closeListeners()
	r.mu.Lock()
	conns := make([]*respConn, 0, len(r.conns))
	for c := range r.conns {
		conns = append(conns, c)
	}
	r.mu.Unlock()
	for _, c := range conns {
		c.teardown()
	}
}

func (r *RESP) removeConn(c *respConn) {
	r.mu.Lock()
	_, ok := r.conns[c]
	delete(r.conns, c)
	r.mu.Unlock()
	if ok {
		r.active.Add(-1)
		if g := r.opts.Gate; g != nil {
			g.Release()
		}
	}
}

// FrontendStats snapshots the frontend's counters, summed over its
// listeners.
func (r *RESP) FrontendStats() Stats {
	st := Stats{
		Malformed:   r.malformed.Load(),
		ConnsActive: int(r.active.Load()),
	}
	for _, q := range r.listeners() {
		st.Frames += q.frames.Load()
		st.BytesIn += q.bytesIn.Load()
		st.BytesOut += q.bytesOut.Load()
		st.ConnsAccepted += q.accepted.Load()
		st.ConnsShed += q.shed.Load()
		st.SendErrs += q.sendErrs.Load()
	}
	return st
}

// QueueStats snapshots each accept queue's counters.
func (r *RESP) QueueStats() []QueueStats {
	qs := r.listeners()
	out := make([]QueueStats, len(qs))
	for i, q := range qs {
		out[i] = QueueStats{
			Frames:   q.frames.Load(),
			BytesIn:  q.bytesIn.Load(),
			BytesOut: q.bytesOut.Load(),
			SendErrs: q.sendErrs.Load(),
			Conns:    q.accepted.Load(),
		}
	}
	return out
}

// --- read buffers ---

// rbuf is a refcounted read buffer: the connection reader holds one
// reference, and every submitted frame whose queries alias it holds another,
// so the buffer outlives out-of-order pipeline completion without copying
// keys and values on the hot path.
type rbuf struct {
	b    []byte
	refs atomic.Int32
}

func (r *RESP) getRbuf(size int) *rbuf {
	var rb *rbuf
	if size == respReadBufSize {
		rb = r.rbufs.Get().(*rbuf)
	} else {
		rb = &rbuf{b: make([]byte, size)}
	}
	rb.refs.Store(1)
	return rb
}

func (rb *rbuf) retain() { rb.refs.Add(1) }

func (r *RESP) putRbuf(rb *rbuf) {
	if rb.refs.Add(-1) == 0 && len(rb.b) == respReadBufSize {
		r.rbufs.Put(rb)
	}
}

// --- frames ---

// respFrame is the RESP-private context of one frame: the commands it holds,
// the buffer its args alias, and its position in the connection's reply order.
type respFrame struct {
	f          Frame
	fe         *RESP
	c          *respConn
	rb         *rbuf
	seq        uint64
	closeAfter bool
	cmds       []respCmd
	queries    []proto.Query
	args       [][]byte // parser scratch
}

// Release returns the frame and drops its read-buffer reference.
func (r *RESP) Release(f *Frame) {
	rf := f.Ctx.(*respFrame)
	if rf.rb != nil {
		r.putRbuf(rf.rb)
		rf.rb = nil
	}
	rf.c = nil
	rf.seq = 0
	rf.closeAfter = false
	rf.cmds = rf.cmds[:0]
	rf.queries = rf.queries[:0]
	f.reset()
	r.frames.Put(rf)
}

// Encode renders resps as one contiguous RESP reply run for the frame's
// commands. Freshly allocated per the Responder contract.
func (r *RESP) Encode(f *Frame, resps []proto.Response) [][]byte {
	rf := f.Ctx.(*respFrame)
	return [][]byte{appendRESPReplies(nil, rf.cmds, resps)}
}

// Deliver stages the frame's reply in connection order, dispatches the
// connection's next queued frame, and flushes. The flush is synchronous
// because the result gates the caller's reply-cache settlement, but it runs
// after dispatch and outside the connection lock, so a stalled client pins
// only this goroutine, not the connection's pipeline.
func (r *RESP) Deliver(f *Frame, units [][]byte) bool {
	rf := f.Ctx.(*respFrame)
	c := rf.c
	r.stage(rf, flattenUnits(units))
	r.dispatchNext(c)
	return r.flushConn(c)
}

// DeliverBatch stages every frame, dispatches each touched connection's next
// frame, then hands each connection's flush to its own goroutine: the
// pipeline's batch-done callback must not block behind one stalled
// (slowloris) client's socket for up to WriteTimeout, and per-connection
// write serialization (flushConn's writing flag) bounds the goroutines to
// one blocked writer per connection.
func (r *RESP) DeliverBatch(fs []*Frame) {
	var touched []*respConn
	for _, f := range fs {
		rf := f.Ctx.(*respFrame)
		r.stage(rf, flattenUnits(f.Units))
		seen := false
		for _, c := range touched {
			if c == rf.c {
				seen = true
				break
			}
		}
		if !seen {
			touched = append(touched, rf.c)
		}
	}
	for _, c := range touched {
		r.dispatchNext(c)
		go r.flushConn(c)
	}
}

// Busy answers every command in a shed frame with -BUSY.
func (r *RESP) Busy(f *Frame) {
	rf := f.Ctx.(*respFrame)
	c := rf.c
	r.stage(rf, appendRESPBusy(nil, rf.cmds))
	r.dispatchNext(c)
	// No caller consumes a delivery result for sheds, so the flush need not
	// block this goroutine (often the conn reader, via Admit→Busy).
	go r.flushConn(c)
}

// Fail answers every command with -ERR <reason>: a stream frontend must emit
// one reply per command even when execution produced nothing, or the
// connection's reply stream would desynchronise from its command stream.
func (r *RESP) Fail(f *Frame, reason string) {
	rf := f.Ctx.(*respFrame)
	c := rf.c
	r.stage(rf, appendRESPFail(nil, rf.cmds, reason))
	r.dispatchNext(c)
	go r.flushConn(c)
}

// dispatchNext hands the connection's next queued frame to the core once no
// frame is running, preserving per-connection execution order. The loop is
// reentrancy-guarded: a synchronous shed inside Admit (which calls Busy →
// dispatchNext on this same goroutine) returns immediately and the outer loop
// moves on to the following frame, so a run of sheds cannot recurse.
func (r *RESP) dispatchNext(c *respConn) {
	c.mu.Lock()
	if c.dispatching {
		c.mu.Unlock()
		return
	}
	c.dispatching = true
	for {
		if c.running != nil || c.tornDown || len(c.pending) == 0 {
			break
		}
		rf := c.pending[0]
		c.pending = c.pending[1:]
		c.running = rf
		c.mu.Unlock()
		if c.core.Admit(&rf.f) {
			c.core.Submit(&rf.f)
		}
		// On shed, Admit already answered (-BUSY) and released the frame,
		// clearing c.running via stage; loop to try the next one.
		c.mu.Lock()
	}
	c.dispatching = false
	c.mu.Unlock()
}

func flattenUnits(units [][]byte) []byte {
	if len(units) == 1 {
		return units[0]
	}
	var out []byte
	for _, u := range units {
		out = append(out, u...)
	}
	return out
}

// stage slots one frame's rendered reply into the connection's in-order write
// buffer: consecutive-from-wnext replies append directly, out-of-order ones
// are held until their predecessors complete.
func (r *RESP) stage(rf *respFrame, payload []byte) {
	c := rf.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inflight--
	if c.running == rf {
		// Terminal delivery of the dispatched frame: its store effects are
		// complete, so the next queued frame may execute.
		c.running = nil
	}
	if c.tornDown {
		return
	}
	if rf.closeAfter && rf.seq < c.closeSeq {
		c.closeSeq = rf.seq
	}
	if rf.seq != c.wnext {
		if c.held == nil {
			c.held = make(map[uint64][]byte)
		}
		c.held[rf.seq] = payload
		return
	}
	c.wbuf = append(c.wbuf, payload...)
	c.wnext++
	for {
		p, ok := c.held[c.wnext]
		if !ok {
			break
		}
		delete(c.held, c.wnext)
		c.wbuf = append(c.wbuf, p...)
		c.wnext++
	}
}

// flushConn writes the connection's staged replies, tearing the connection
// down on write error/stall or once its close-marked reply has flushed.
// Returns false when the connection is (now) gone.
//
// The socket write runs outside c.mu: the caller swaps the staged buffer out
// under the lock, marks itself the active writer (c.writing) and writes
// unlocked, so concurrent stage() calls — other frames completing for this
// connection — never block behind a stalled (slowloris) client for up to
// WriteTimeout. At most one writer is active per connection; a flush that
// finds one already active returns immediately and the active writer's loop
// picks up whatever was staged meanwhile.
func (r *RESP) flushConn(c *respConn) bool {
	c.mu.Lock()
	for {
		if c.tornDown {
			c.mu.Unlock()
			return false
		}
		if c.writing || len(c.wbuf) == 0 {
			// Nothing for this caller to write: either the active writer will
			// drain what we staged (and re-check close conditions after), or
			// the buffer is empty and only the close check remains.
			closeNow := !c.writing &&
				((c.closeSeq != ^uint64(0) && c.wnext > c.closeSeq) ||
					(c.readerDone && c.inflight == 0))
			c.mu.Unlock()
			if closeNow {
				c.teardown()
				return false
			}
			return true
		}
		buf := c.wbuf
		c.wbuf = nil
		c.writing = true
		c.mu.Unlock()

		c.nc.SetWriteDeadline(time.Now().Add(r.writeTimeout)) //nolint:errcheck
		n, err := c.nc.Write(buf)
		c.q.bytesOut.Add(uint64(n))

		c.mu.Lock()
		c.writing = false
		if err != nil {
			c.mu.Unlock()
			c.q.sendErrs.Inc()
			c.teardown()
			return false
		}
		if !c.tornDown && len(c.wbuf) == 0 {
			c.wbuf = buf[:0] // recycle the detached buffer's capacity
		}
		// Loop: drain anything staged during the write, then settle close.
	}
}

// --- connections ---

// respConn is one client connection: reader-owned parse state plus the
// mu-guarded reply-ordering state shared with deliveries.
type respConn struct {
	fe *RESP
	q  *respListener // the accept queue that produced this connection
	nc net.Conn

	// Reader-only.
	rb      *rbuf
	pos     int
	fill    int
	nextSeq uint64

	core Core

	mu          sync.Mutex
	wnext       uint64            // next seq to write
	held        map[uint64][]byte // completed out-of-order replies
	wbuf        []byte            // staged, unflushed reply bytes
	inflight    int               // frames queued or submitted, not yet staged
	pending     []*respFrame      // parsed frames awaiting their dispatch turn
	running     *respFrame        // the frame currently at the core, if any
	dispatching bool              // a dispatchNext loop is active on this conn
	writing     bool              // a flushConn writer holds the socket
	closeSeq    uint64            // seq whose flush closes the conn (^0 = none)
	readerDone  bool
	tornDown    bool
}

// teardown closes the connection and releases its gate slot, exactly once.
// Queued frames that never reached the core are released here.
func (c *respConn) teardown() {
	c.mu.Lock()
	if c.tornDown {
		c.mu.Unlock()
		return
	}
	c.tornDown = true
	c.held = nil
	c.wbuf = nil
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, rf := range pending {
		c.fe.Release(&rf.f)
	}
	c.nc.Close()
	c.fe.removeConn(c)
}

// readLoop reads, parses, coalesces and submits frames until EOF, error, a
// close-marked command, or drain.
func (c *respConn) readLoop(core Core) {
	fe := c.fe
	defer func() {
		fe.putRbuf(c.rb)
		c.mu.Lock()
		c.readerDone = true
		// An active writer owns the conn's last reply; its flush loop settles
		// the readerDone close itself (flushConn) — don't yank the socket.
		idle := c.inflight == 0 && len(c.wbuf) == 0 && !c.writing
		c.mu.Unlock()
		if idle {
			c.teardown()
		}
		fe.readers.Done()
	}()
	for {
		if core.Draining() {
			return
		}
		c.ensureSpace()
		if c.fill == len(c.rb.b) {
			// Defensive: ensureSpace caps the buffer above any single command
			// the parser accepts, so a full buffer holding one incomplete
			// command means the parser failed to bound it. Close rather than
			// spin on zero-length reads.
			fe.malformed.Inc()
			core.Malformed()
			return
		}
		n, err := c.nc.Read(c.rb.b[c.fill:])
		if n > 0 {
			c.fill += n
			c.q.bytesIn.Add(uint64(n))
			if !c.consume(core) {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// ensureSpace guarantees room for the next read: reset when drained, compact
// or reallocate when the tail of a partial command fills the buffer. The
// buffer is only moved or replaced when no in-flight frame references it
// (refs==1) or by copying the tail into a fresh buffer — submitted frames'
// query slices stay valid either way.
func (c *respConn) ensureSpace() {
	if c.pos == c.fill {
		if c.rb.refs.Load() == 1 {
			c.pos, c.fill = 0, 0
			return
		}
		// Frames still alias this buffer: swap to a fresh one.
		c.fe.putRbuf(c.rb)
		c.rb = c.fe.getRbuf(respReadBufSize)
		c.pos, c.fill = 0, 0
		return
	}
	if c.fill < len(c.rb.b) {
		return
	}
	tail := c.fill - c.pos
	size := len(c.rb.b)
	if tail > size/2 {
		size *= 2
		if max := maxRESPCommandBytes + respReadBufSize; size > max {
			size = max
		}
	}
	if c.pos > 0 && size == len(c.rb.b) && c.rb.refs.Load() == 1 {
		copy(c.rb.b, c.rb.b[c.pos:c.fill])
		c.pos, c.fill = 0, tail
		return
	}
	old := c.rb
	c.rb = c.fe.getRbuf(size)
	copy(c.rb.b, old.b[c.pos:c.fill])
	c.fe.putRbuf(old)
	c.pos, c.fill = 0, tail
}

// respCmdClass partitions commands into read and write runs for frame
// sealing: the batch pipeline applies a batch's writes before its reads, so
// sequential (redis) semantics hold only for frames of a single class.
func respCmdClass(name []byte) int {
	switch {
	case upperEq(name, "GET"), upperEq(name, "MGET"), upperEq(name, "SCAN"):
		return 1
	case upperEq(name, "SET"), upperEq(name, "DEL"):
		return 2
	}
	return 0 // classless: PING/ECHO/QUIT/COMMAND ride in any frame
}

// consume turns every complete command already buffered into frames and
// submits them. A frame is one command run: it seals at MaxCmdsPerFrame and
// at every read↔write boundary. Returns false when the reader must stop
// (QUIT, protocol error).
func (c *respConn) consume(core Core) bool {
	fe := c.fe
	rf := fe.frames.Get().(*respFrame)
	var parseStart time.Time
	if fe.opts.MeasureParse {
		parseStart = time.Now()
	}
	frameClass := 0
	stop := false
	seal := func() {
		if fe.opts.MeasureParse {
			rf.f.ParseNanos = time.Since(parseStart).Nanoseconds()
			parseStart = time.Now()
		}
		c.submitFrame(rf)
		rf = fe.frames.Get().(*respFrame)
		frameClass = 0
	}
	for !stop {
		args, n, err := parseRESPCommand(c.rb.b[c.pos:c.fill], rf.args[:0])
		rf.args = args[:0]
		if err != nil {
			if errors.Is(err, errRESPIncomplete) {
				break
			}
			// Protocol violation: reply in-band, then close. Nothing after
			// this point in the stream can be framed reliably.
			fe.malformed.Inc()
			core.Malformed()
			c.pos = c.fill
			rf.cmds = append(rf.cmds, respCmd{kind: rcErr,
				errMsg: "ERR " + err.Error()})
			rf.closeAfter = true
			stop = true
			break
		}
		c.pos += n
		if len(args) == 0 {
			continue // empty inline line
		}
		cl := respCmdClass(args[0])
		if len(rf.cmds) > 0 &&
			(len(rf.cmds) >= fe.maxCmdsPerFrame ||
				(cl != 0 && frameClass != 0 && cl != frameClass)) {
			seal()
		}
		if cl != 0 && frameClass == 0 {
			frameClass = cl
		}
		cmd, qs := buildRESPCommand(args, rf.queries)
		rf.queries = qs
		rf.cmds = append(rf.cmds, cmd)
		if cmd.kind == rcQuit || cmd.kind == rcErr {
			rf.closeAfter = true
			stop = true
		}
	}
	if len(rf.cmds) == 0 {
		fe.frames.Put(rf)
	} else {
		if fe.opts.MeasureParse {
			rf.f.ParseNanos = time.Since(parseStart).Nanoseconds()
		}
		c.submitFrame(rf)
	}
	return !stop
}

// submitFrame queues one coalesced frame for in-order dispatch, shedding with
// -BUSY when the connection is over its in-flight cap (without consuming core
// admission tokens).
func (c *respConn) submitFrame(rf *respFrame) {
	fe := c.fe
	rf.c = c
	rf.rb = c.rb
	c.rb.retain()
	rf.seq = c.nextSeq
	c.nextSeq++
	f := &rf.f
	f.Queries = rf.queries
	if fe.opts.StampStart {
		f.Start = time.Now()
	}
	c.q.frames.Inc()

	c.mu.Lock()
	over := fe.maxConnInFlight > 0 && c.inflight >= fe.maxConnInFlight
	c.inflight++
	if !over {
		c.pending = append(c.pending, rf)
	}
	c.mu.Unlock()
	if over {
		fe.Busy(f)
		fe.Release(f)
		return
	}
	fe.dispatchNext(c)
}

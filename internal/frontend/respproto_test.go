package frontend

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/proto"
)

func TestParseRESPCommandArrays(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string
		n    int
	}{
		{"get", "*2\r\n$3\r\nGET\r\n$1\r\nk\r\n", []string{"GET", "k"}, 20},
		{"set", "*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nvv\r\n", []string{"SET", "k", "vv"}, 28},
		{"empty array", "*0\r\n", nil, 4},
		{"empty bulk", "*1\r\n$0\r\n\r\n", []string{""}, 10},
		{"binary value", "*2\r\n$3\r\nGET\r\n$3\r\n\x00\r\x01\r\n", []string{"GET", "\x00\r\x01"}, 22},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args, n, err := parseRESPCommand([]byte(tc.in), nil)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if n != tc.n {
				t.Fatalf("consumed %d bytes, want %d", n, tc.n)
			}
			if len(args) != len(tc.want) {
				t.Fatalf("got %d args, want %d", len(args), len(tc.want))
			}
			for i, a := range args {
				if string(a) != tc.want[i] {
					t.Fatalf("arg %d = %q, want %q", i, a, tc.want[i])
				}
			}
		})
	}
}

func TestParseRESPCommandInline(t *testing.T) {
	args, n, err := parseRESPCommand([]byte("GET  key1\t extra\r\nrest"), nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if n != 18 {
		t.Fatalf("consumed %d, want 18", n)
	}
	want := []string{"GET", "key1", "extra"}
	for i, a := range args {
		if string(a) != want[i] {
			t.Fatalf("arg %d = %q, want %q", i, a, want[i])
		}
	}
	// Bare-\n termination (telnet without CRLF) also works.
	if _, n, err = parseRESPCommand([]byte("PING\n"), nil); err != nil || n != 5 {
		t.Fatalf("bare newline: n=%d err=%v", n, err)
	}
}

// TestParseRESPCommandTorn feeds every prefix of valid commands: each must
// report errRESPIncomplete without consuming anything, and the full buffer
// must then parse.
func TestParseRESPCommandTorn(t *testing.T) {
	for _, full := range []string{
		"*2\r\n$3\r\nGET\r\n$5\r\nhello\r\n",
		"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$3\r\nabc\r\n",
		"*4\r\n$4\r\nMGET\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n",
		"PING hello\r\n",
	} {
		for cut := 0; cut < len(full); cut++ {
			args, n, err := parseRESPCommand([]byte(full[:cut]), nil)
			if !errors.Is(err, errRESPIncomplete) {
				// An inline prefix of an array command is fine to reject later,
				// but these prefixes are all incomplete, never malformed.
				t.Fatalf("prefix %q: got args=%v n=%d err=%v, want incomplete", full[:cut], args, n, err)
			}
			if n != 0 {
				t.Fatalf("prefix %q consumed %d bytes on incomplete", full[:cut], n)
			}
		}
		if _, _, err := parseRESPCommand([]byte(full), nil); err != nil {
			t.Fatalf("full %q: %v", full, err)
		}
	}
}

func TestParseRESPCommandMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"negative multibulk", "*-2\r\nx"},
		{"huge multibulk", fmt.Sprintf("*%d\r\n", maxRESPArgs+1)},
		{"non-numeric multibulk", "*abc\r\n"},
		{"missing dollar", "*1\r\n:3\r\nfoo\r\n"},
		{"negative bulk len", "*1\r\n$-1\r\n"},
		{"huge bulk len", fmt.Sprintf("*1\r\n$%d\r\n", maxRESPBulk+1)},
		{"bulk missing CRLF", "*1\r\n$3\r\nfooXY"},
		{"oversized inline", strings.Repeat("a", maxRESPInline+2) + "\r\n"},
		{"unterminated oversized", strings.Repeat("b", maxRESPInline+2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := parseRESPCommand([]byte(tc.in), nil)
			var pe *respProtoError
			if !errors.As(err, &pe) {
				t.Fatalf("got err=%v, want *respProtoError", err)
			}
		})
	}
	// A valid-but-incomplete command larger than the command budget is
	// rejected rather than buffered forever — on EVERY incomplete shape, not
	// just mid-bulk-body. The arg-boundary and mid-'$'-header shapes below
	// regression-test an infinite zero-length-read spin: they used to report
	// incomplete forever while the reader's buffer was already at its cap.
	// 2048-byte args cross the command cap after ~550 of the declared 1024
	// args, so the buffer ends at an arg boundary with the command still
	// incomplete.
	atBoundary := []byte(fmt.Sprintf("*%d\r\n", maxRESPArgs))
	arg := []byte("$2048\r\n" + strings.Repeat("k", 2048) + "\r\n")
	for len(atBoundary) <= maxRESPCommandBytes {
		atBoundary = append(atBoundary, arg...)
	}
	midHeader := append(append([]byte{}, atBoundary...), '$')
	midBody := []byte("*2\r\n$3\r\nSET\r\n$999999\r\n")
	midBody = append(midBody, bytes.Repeat([]byte("v"), maxRESPCommandBytes)...)
	for _, tc := range []struct {
		name string
		in   []byte
	}{
		{"ends at arg boundary", atBoundary},
		{"ends mid bulk header", midHeader},
		{"ends mid bulk body", midBody},
	} {
		t.Run("oversized incomplete "+tc.name, func(t *testing.T) {
			_, _, err := parseRESPCommand(tc.in, nil)
			var pe *respProtoError
			if !errors.As(err, &pe) {
				t.Fatalf("got %v, want protocol error", err)
			}
		})
	}
}

func TestBuildRESPCommandMapping(t *testing.T) {
	build := func(args ...string) (respCmd, []proto.Query) {
		b := make([][]byte, len(args))
		for i, a := range args {
			b[i] = []byte(a)
		}
		return buildRESPCommand(b, nil)
	}
	if c, qs := build("get", "k"); c.kind != rcGet || len(qs) != 1 || qs[0].Op != proto.OpGet {
		t.Fatalf("GET: %+v %+v", c, qs)
	}
	if c, qs := build("SeT", "k", "v"); c.kind != rcSet || len(qs) != 1 || string(qs[0].Value) != "v" {
		t.Fatalf("SET: %+v %+v", c, qs)
	}
	if c, qs := build("DEL", "a", "b"); c.kind != rcDel || c.nq != 2 || len(qs) != 2 || qs[1].Op != proto.OpDelete {
		t.Fatalf("DEL: %+v %+v", c, qs)
	}
	if c, qs := build("MGET", "a", "b", "c"); c.kind != rcMGet || c.nq != 3 || len(qs) != 3 {
		t.Fatalf("MGET: %+v %+v", c, qs)
	}
	if c, qs := build("PING"); c.kind != rcPing || len(qs) != 0 {
		t.Fatalf("PING: %+v %+v", c, qs)
	}
	if c, _ := build("GET"); c.kind != rcErr || !strings.Contains(c.errMsg, "wrong number of arguments") {
		t.Fatalf("GET arity: %+v", c)
	}
	if c, _ := build("FLUSHALL"); c.kind != rcErr || !strings.Contains(c.errMsg, "unknown command") {
		t.Fatalf("unknown: %+v", c)
	}
}

func TestAppendRESPReplies(t *testing.T) {
	cmds := []respCmd{
		{kind: rcSet, nq: 1},
		{kind: rcGet, nq: 1},
		{kind: rcGet, nq: 1},
		{kind: rcDel, nq: 2},
		{kind: rcMGet, nq: 2},
		{kind: rcPing},
	}
	resps := []proto.Response{
		{Status: proto.StatusOK},                                 // SET
		{Status: proto.StatusOK, Value: []byte("val")},           // GET hit
		{Status: proto.StatusNotFound},                           // GET miss
		{Status: proto.StatusOK}, {Status: proto.StatusNotFound}, // DEL a b
		{Status: proto.StatusOK, Value: []byte("x")}, {Status: proto.StatusNotFound}, // MGET
	}
	got := string(appendRESPReplies(nil, cmds, resps))
	want := "+OK\r\n$3\r\nval\r\n$-1\r\n:1\r\n*2\r\n$1\r\nx\r\n$-1\r\n+PONG\r\n"
	if got != want {
		t.Fatalf("replies:\n got %q\nwant %q", got, want)
	}
	busy := string(appendRESPBusy(nil, cmds[:2]))
	if busy != "-BUSY server overloaded, retry later\r\n-BUSY server overloaded, retry later\r\n" {
		t.Fatalf("busy: %q", busy)
	}
	fail := string(appendRESPFail(nil, cmds[:1], "wal commit failed"))
	if fail != "-ERR wal commit failed\r\n" {
		t.Fatalf("fail: %q", fail)
	}
}

// FuzzRESPParse pins the parser's safety contract on arbitrary bytes: it
// never panics, never reports consuming more bytes than it was given, never
// consumes anything alongside an error, and returned args always alias the
// input buffer (no out-of-range reads materialized as slices).
func FuzzRESPParse(f *testing.F) {
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n"))
	f.Add([]byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$2\r\nvv\r\n"))
	f.Add([]byte("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n*2\r\n$3\r\nGET")) // torn second command
	f.Add([]byte("GET key\r\nPING\r\n"))
	f.Add([]byte("*1000000000\r\n"))
	f.Add([]byte("*1\r\n$1000000000\r\n"))
	f.Add([]byte("*-1\r\n"))
	f.Add([]byte("$5\r\nhello\r\n"))
	f.Add([]byte("\r\n\r\n\r\n"))
	f.Add(bytes.Repeat([]byte("a"), maxRESPInline+10))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Walk the buffer the way the conn reader does, parsing command after
		// command until the input is exhausted or rejected.
		pos := 0
		for pos <= len(data) {
			args, n, err := parseRESPCommand(data[pos:], nil)
			if n < 0 || n > len(data)-pos {
				t.Fatalf("consumed %d of %d available", n, len(data)-pos)
			}
			if err != nil {
				if n != 0 {
					t.Fatalf("err %v but consumed %d", err, n)
				}
				var pe *respProtoError
				if !errors.Is(err, errRESPIncomplete) && !errors.As(err, &pe) {
					t.Fatalf("unexpected error type %T: %v", err, err)
				}
				break
			}
			if len(args) > maxRESPArgs {
				t.Fatalf("returned %d args over the cap", len(args))
			}
			for _, a := range args {
				// Each arg must alias data; reading it must be in-bounds.
				for i := range a {
					_ = a[i]
				}
				if len(a) > maxRESPBulk && len(a) > maxRESPInline {
					t.Fatalf("arg of %d bytes exceeds every cap", len(a))
				}
			}
			if len(args) > 0 {
				cmd, qs := buildRESPCommand(args, nil)
				out := appendRESPReplies(nil, []respCmd{cmd}, make([]proto.Response, len(qs)))
				if len(out) == 0 {
					t.Fatal("command rendered an empty reply")
				}
			}
			if n == 0 {
				break // empty consumed line contract gives n>0; guard anyway
			}
			pos += n
		}
	})
}

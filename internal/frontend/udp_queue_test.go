package frontend

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/udpbatch"
)

// dedupeCore is a minimal Core with the server's reply-cache shape: replayed
// (AKey, ReqID) pairs are answered from cache without re-executing, so the
// tests can observe at-most-once behavior across queues.
type dedupeCore struct {
	mu       sync.Mutex
	cache    map[string][][]byte // AKey+reqID → delivered units
	execs    atomic.Int64
	replays  atomic.Int64
	draining atomic.Bool
}

func newDedupeCore() *dedupeCore {
	return &dedupeCore{cache: make(map[string][][]byte)}
}

func (c *dedupeCore) key(f *Frame) string {
	return f.AKey + "#" + string(rune(f.ReqID))
}

func (c *dedupeCore) Admit(f *Frame) bool {
	if f.AKey == "" || f.ReqID == 0 {
		return true
	}
	c.mu.Lock()
	units, ok := c.cache[c.key(f)]
	c.mu.Unlock()
	if ok {
		c.replays.Add(1)
		f.R.Deliver(f, units)
		f.R.Release(f)
		return false
	}
	return true
}

func (c *dedupeCore) Submit(f *Frame) {
	c.execs.Add(1)
	resps := make([]proto.Response, len(f.Queries))
	for i := range resps {
		resps[i].Status = proto.StatusOK
	}
	units := f.R.Encode(f, resps)
	if f.AKey != "" && f.ReqID != 0 {
		c.mu.Lock()
		c.cache[c.key(f)] = units
		c.mu.Unlock()
	}
	f.R.Deliver(f, units)
	f.R.Release(f)
}

func (c *dedupeCore) Cancel(f *Frame) { f.R.Release(f) }
func (c *dedupeCore) Malformed()      {}
func (c *dedupeCore) Draining() bool  { return c.draining.Load() }

// TestUDPMultiQueueSpread drives a 4-queue UDP frontend from many distinct
// source sockets and asserts (a) every request is answered, (b) the kernel
// actually spread flows across at least two queues, and (c) per-queue and
// summed stats agree.
func TestUDPMultiQueueSpread(t *testing.T) {
	u := NewUDP(UDPOptions{Dedupe: true, Queues: 4})
	if err := u.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	core := newDedupeCore()
	runErr := make(chan error, 1)
	go func() { runErr <- u.Run(core) }()
	defer func() {
		core.draining.Store(true)
		u.Interrupt()
		u.Shutdown()
		if err := <-runErr; err != nil {
			t.Errorf("Run: %v", err)
		}
	}()

	addr := u.Addr().String()
	const clients = 48
	var wg sync.WaitGroup
	var answered atomic.Int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("udp", addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer conn.Close()
			req := proto.EncodeFrameV2(nil, uint64(i+1), []proto.Query{
				{Op: proto.OpSet, Key: []byte("k"), Value: []byte("v")},
			})
			buf := make([]byte, proto.MaxFrameBytes)
			for attempt := 0; attempt < 20; attempt++ {
				if _, err := conn.Write(req); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
				if _, err := conn.Read(buf); err == nil {
					answered.Add(1)
					return
				}
			}
			t.Errorf("client %d: no reply after retries", i)
		}(i)
	}
	wg.Wait()
	if got := answered.Load(); got != clients {
		t.Fatalf("answered %d/%d clients", got, clients)
	}

	qs := u.QueueStats()
	if want := udpbatch.MaxQueues(4); len(qs) != want {
		t.Fatalf("QueueStats reports %d queues, want %d", len(qs), want)
	}
	var sumFrames uint64
	active := 0
	for _, q := range qs {
		sumFrames += q.Frames
		if q.Frames > 0 {
			active++
		}
	}
	if st := u.FrontendStats(); st.Frames != sumFrames {
		t.Fatalf("summed stats disagree: FrontendStats.Frames=%d, Σqueues=%d", st.Frames, sumFrames)
	}
	if len(qs) > 1 && active < 2 {
		t.Fatalf("kernel did not spread flows: per-queue frames %+v", qs)
	}
}

// TestUDPCrossQueueRetrySameAKey pins the dedupe invariant the multi-queue
// tier depends on: the same peer's address key is an equal string no matter
// which queue computed it (each queue has its own unlocked addrCache), so a
// retry that the kernel hashes to a different queue still replays from the
// reply cache instead of re-executing.
func TestUDPCrossQueueRetrySameAKey(t *testing.T) {
	u := NewUDP(UDPOptions{Dedupe: true, Queues: 4})
	if err := u.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer u.Shutdown()
	qs := u.snapshot()
	if len(qs) < 2 {
		t.Skip("no SO_REUSEPORT on this platform")
	}
	core := newDedupeCore()
	raddr := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 54321}
	frame := proto.EncodeFrameV2(nil, 7, []proto.Query{
		{Op: proto.OpSet, Key: []byte("k"), Value: []byte("v")},
	})
	deliver := func(q *udpQueue) {
		buf := u.bufs.Get().([]byte)
		n := copy(buf, frame)
		u.handleDatagram(core, q, buf, n, raddr)
	}
	deliver(qs[0]) // original lands on queue 0
	deliver(qs[1]) // retry hashes to queue 1
	if got := core.execs.Load(); got != 1 {
		t.Fatalf("executed %d times across queues, want exactly 1", got)
	}
	if got := core.replays.Load(); got != 1 {
		t.Fatalf("replayed %d times, want 1", got)
	}
	if k0, k1 := qs[0].addrs.keyFor(raddr), qs[1].addrs.keyFor(raddr); k0 != k1 {
		t.Fatalf("per-queue addr keys differ: %q vs %q", k0, k1)
	}
}

// TestUDPSingleQueueFallback pins that Queues ≤ 1 (or an unsupported
// platform) behaves exactly like the historical single-socket frontend.
func TestUDPSingleQueueFallback(t *testing.T) {
	u := NewUDP(UDPOptions{Queues: 1})
	if err := u.Listen("127.0.0.1:0"); err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer u.Shutdown()
	if got := len(u.QueueStats()); got != 1 {
		t.Fatalf("single-queue frontend reports %d queues, want 1", got)
	}
	if u.Addr() == nil {
		t.Fatal("Addr nil after Listen")
	}
}

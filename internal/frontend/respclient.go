package frontend

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/proto"
)

// RESPClient is a minimal RESP2 client for the in-repo load generator, e2e
// tests and benchmarks (redis-cli works too; this avoids the dependency). It
// pipelines one command per query and reads replies in order, so one Do call
// round-trips a whole batch on one write.
//
// Not safe for concurrent use; open one client per goroutine.
type RESPClient struct {
	nc      net.Conn
	br      *bufio.Reader
	wbuf    []byte
	timeout time.Duration
}

// DialRESP connects to a RESP server. timeout bounds the dial and each Do
// round trip (0 = 2s).
func DialRESP(addr string, timeout time.Duration) (*RESPClient, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true) //nolint:errcheck
	}
	return &RESPClient{nc: nc, br: bufio.NewReaderSize(nc, 64<<10), timeout: timeout}, nil
}

// Close closes the connection.
func (c *RESPClient) Close() error { return c.nc.Close() }

// Do pipelines one RESP command per query (GET/SET/DEL) in a single write and
// maps the in-order replies back onto proto responses: +OK/:n → StatusOK,
// $-1 → StatusNotFound, -BUSY → StatusBusy, other errors → StatusError.
func (c *RESPClient) Do(queries []proto.Query) ([]proto.Response, error) {
	c.wbuf = c.wbuf[:0]
	for _, q := range queries {
		switch q.Op {
		case proto.OpGet:
			c.wbuf = appendRESPCommand(c.wbuf, [][]byte{[]byte("GET"), q.Key})
		case proto.OpSet:
			c.wbuf = appendRESPCommand(c.wbuf, [][]byte{[]byte("SET"), q.Key, q.Value})
		case proto.OpDelete:
			c.wbuf = appendRESPCommand(c.wbuf, [][]byte{[]byte("DEL"), q.Key})
		case proto.OpScan:
			limit, end, err := proto.ParseScanArg(q.Value)
			if err != nil {
				return nil, fmt.Errorf("resp client: bad scan arg: %w", err)
			}
			c.wbuf = appendRESPCommand(c.wbuf, [][]byte{
				[]byte("SCAN"), q.Key, end, appendRESPIntBytes(nil, int64(limit))})
		default:
			return nil, fmt.Errorf("resp client: unsupported op %v", q.Op)
		}
	}
	if err := c.write(c.wbuf); err != nil {
		return nil, err
	}
	c.nc.SetReadDeadline(time.Now().Add(c.timeout)) //nolint:errcheck
	resps := make([]proto.Response, len(queries))
	for i := range queries {
		v, err := c.readReply()
		if err != nil {
			return nil, err
		}
		if queries[i].Op == proto.OpScan {
			resps[i] = v.toScanResponse()
		} else {
			resps[i] = v.toResponse()
		}
	}
	return resps, nil
}

// Scan issues one SCAN start end limit and decodes the array reply.
func (c *RESPClient) Scan(start, end []byte, limit int) ([]proto.ScanEntry, error) {
	if limit < 0 {
		limit = 0
	}
	v, err := c.Cmd([]byte("SCAN"), start, end, appendRESPIntBytes(nil, int64(limit)))
	if err != nil {
		return nil, err
	}
	r := v.toScanResponse()
	if r.Status != proto.StatusOK {
		return nil, fmt.Errorf("resp client: SCAN error: %s", v.str)
	}
	return proto.ParseScanResult(r.Value)
}

// MGet issues one MGET for keys and maps the array reply ($-1 → NotFound).
func (c *RESPClient) MGet(keys ...[]byte) ([]proto.Response, error) {
	args := make([][]byte, 0, len(keys)+1)
	args = append(args, []byte("MGET"))
	args = append(args, keys...)
	v, err := c.Cmd(args...)
	if err != nil {
		return nil, err
	}
	if v.typ == '-' {
		return nil, fmt.Errorf("resp client: MGET error: %s", v.str)
	}
	if v.typ != '*' {
		return nil, fmt.Errorf("resp client: MGET: unexpected reply type %q", v.typ)
	}
	resps := make([]proto.Response, len(v.arr))
	for i, e := range v.arr {
		resps[i] = e.toResponse()
	}
	return resps, nil
}

// Ping round-trips a PING.
func (c *RESPClient) Ping() error {
	v, err := c.Cmd([]byte("PING"))
	if err != nil {
		return err
	}
	if v.typ != '+' || string(v.str) != "PONG" {
		return fmt.Errorf("resp client: unexpected PING reply %q %q", v.typ, v.str)
	}
	return nil
}

// Cmd sends one raw command and returns its reply value.
func (c *RESPClient) Cmd(args ...[]byte) (respValue, error) {
	if err := c.write(appendRESPCommand(c.wbuf[:0], args)); err != nil {
		return respValue{}, err
	}
	c.nc.SetReadDeadline(time.Now().Add(c.timeout)) //nolint:errcheck
	return c.readReply()
}

func (c *RESPClient) write(buf []byte) error {
	c.nc.SetWriteDeadline(time.Now().Add(c.timeout)) //nolint:errcheck
	_, err := c.nc.Write(buf)
	return err
}

// appendRESPCommand encodes one command as an array of bulk strings.
func appendRESPCommand(dst []byte, args [][]byte) []byte {
	dst = append(dst, '*')
	dst = appendRESPIntBytes(dst, int64(len(args)))
	dst = append(dst, '\r', '\n')
	for _, a := range args {
		dst = appendRESPBulk(dst, a)
	}
	return dst
}

// respValue is one decoded RESP reply.
type respValue struct {
	typ byte        // '+', '-', ':', '$', '*'
	str []byte      // simple/error/bulk payload (nil for null bulk)
	n   int64       // integer value
	arr []respValue // array elements
}

// Type returns the reply's RESP type byte ('+', '-', ':', '$', '*').
func (v respValue) Type() byte { return v.typ }

// Err returns the error text of a '-' reply, nil for any other type.
func (v respValue) Err() []byte {
	if v.typ != '-' {
		return nil
	}
	return v.str
}

// toResponse maps a reply onto the binary protocol's response space.
func (v respValue) toResponse() proto.Response {
	switch v.typ {
	case '+', ':':
		return proto.Response{Status: proto.StatusOK}
	case '$':
		if v.str == nil {
			return proto.Response{Status: proto.StatusNotFound}
		}
		return proto.Response{Status: proto.StatusOK, Value: v.str}
	case '-':
		if bytes.HasPrefix(v.str, []byte("BUSY")) {
			return proto.Response{Status: proto.StatusBusy}
		}
		return proto.Response{Status: proto.StatusError, Value: v.str}
	default:
		return proto.Response{Status: proto.StatusError}
	}
}

// toScanResponse maps a SCAN array reply onto the binary protocol's response
// space, re-encoding the alternating key/value bulks as a DKV2 scan result
// block — both front ends then hand callers byte-identical SCAN responses,
// which the cross-path equivalence tests lean on.
func (v respValue) toScanResponse() proto.Response {
	if v.typ == '-' {
		if bytes.HasPrefix(v.str, []byte("BUSY")) {
			return proto.Response{Status: proto.StatusBusy}
		}
		return proto.Response{Status: proto.StatusError, Value: v.str}
	}
	if v.typ != '*' || len(v.arr)%2 != 0 {
		return proto.Response{Status: proto.StatusError}
	}
	dst, mark := proto.BeginScanResult(nil)
	n := 0
	for i := 0; i+1 < len(v.arr); i += 2 {
		dst = proto.AppendScanEntry(dst, v.arr[i].str, v.arr[i+1].str)
		n++
	}
	proto.FinishScanResult(dst, mark, n)
	return proto.Response{Status: proto.StatusOK, Value: dst}
}

func (c *RESPClient) readReply() (respValue, error) {
	line, err := c.readLine()
	if err != nil {
		return respValue{}, err
	}
	if len(line) == 0 {
		return respValue{}, fmt.Errorf("resp client: empty reply line")
	}
	typ, rest := line[0], line[1:]
	switch typ {
	case '+', '-':
		return respValue{typ: typ, str: append([]byte(nil), rest...)}, nil
	case ':':
		n, ok := respInt(rest)
		if !ok {
			return respValue{}, fmt.Errorf("resp client: bad integer %q", rest)
		}
		return respValue{typ: typ, n: n}, nil
	case '$':
		blen, ok := respInt(rest)
		if !ok || blen > maxRESPBulk {
			return respValue{}, fmt.Errorf("resp client: bad bulk length %q", rest)
		}
		if blen < 0 {
			return respValue{typ: typ}, nil // null bulk
		}
		buf := make([]byte, blen+2)
		if _, err := io.ReadFull(c.br, buf); err != nil {
			return respValue{}, err
		}
		if buf[blen] != '\r' || buf[blen+1] != '\n' {
			return respValue{}, fmt.Errorf("resp client: bulk missing CRLF")
		}
		return respValue{typ: typ, str: buf[:blen]}, nil
	case '*':
		alen, ok := respInt(rest)
		if !ok || alen > maxRESPArgs {
			return respValue{}, fmt.Errorf("resp client: bad array length %q", rest)
		}
		if alen < 0 {
			return respValue{typ: typ}, nil
		}
		arr := make([]respValue, alen)
		for i := range arr {
			e, err := c.readReply()
			if err != nil {
				return respValue{}, err
			}
			arr[i] = e
		}
		return respValue{typ: typ, arr: arr}, nil
	default:
		return respValue{}, fmt.Errorf("resp client: unknown reply type %q", typ)
	}
}

func (c *RESPClient) readLine() ([]byte, error) {
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		return nil, err
	}
	line = line[:len(line)-1]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, nil
}

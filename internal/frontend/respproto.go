package frontend

import (
	"errors"
	"fmt"

	"repro/internal/proto"
)

// RESP2 wire protocol (the Redis serialization protocol, client side):
// commands arrive as arrays of bulk strings ("*2\r\n$3\r\nGET\r\n$1\r\nk\r\n")
// or as inline space-separated lines; replies are simple strings, errors,
// integers, bulk strings and arrays. This file is the pure byte layer — no
// sockets — so the fuzz target can hammer it directly.

// Parser bounds. A client exceeding them gets a protocol error and its
// connection closed (RESP has no way to resynchronise mid-stream after a
// rejected length prefix).
const (
	// maxRESPArgs bounds elements per command array (a DEL/MGET key list).
	maxRESPArgs = 1024
	// maxRESPBulk bounds one bulk-string payload (key or value).
	maxRESPBulk = 1 << 20
	// maxRESPInline bounds one inline command line.
	maxRESPInline = 64 << 10
	// maxRESPCommandBytes bounds one whole encoded command; incomplete input
	// longer than this is rejected rather than buffered forever.
	maxRESPCommandBytes = maxRESPBulk + maxRESPInline
)

// errRESPIncomplete reports that buf holds a prefix of a valid command; the
// caller should read more bytes and retry.
var errRESPIncomplete = errors.New("resp: incomplete command")

// respProtoError is a client-visible protocol violation: the reader answers
// with "-ERR Protocol error: ..." and closes the connection after.
type respProtoError struct{ msg string }

func (e *respProtoError) Error() string { return e.msg }

func respErrf(format string, args ...any) error {
	return &respProtoError{msg: fmt.Sprintf(format, args...)}
}

// parseRESPCommand parses one command from buf into args (appended, aliasing
// buf — valid only while buf's backing array is retained). It returns the
// args, the number of bytes consumed, and an error: errRESPIncomplete when
// buf ends mid-command, a *respProtoError on a protocol violation, nil on
// success. A consumed empty line (or "*0") yields zero args and nil error.
//
// The incomplete verdict is bounded: when buf ends mid-command, buf is by
// definition a single command's prefix, so a prefix already past
// maxRESPCommandBytes can never complete within budget and is rejected
// outright. Without this, a prefix that happens to end at an arg boundary
// (or mid-'$' header) would report incomplete forever while the reader's
// buffer is capped — a zero-length-read spin.
func parseRESPCommand(buf []byte, args [][]byte) ([][]byte, int, error) {
	args, n, err := parseRESPCommandRaw(buf, args)
	if errors.Is(err, errRESPIncomplete) && len(buf) > maxRESPCommandBytes {
		return args, 0, respErrf("Protocol error: command too large")
	}
	return args, n, err
}

func parseRESPCommandRaw(buf []byte, args [][]byte) ([][]byte, int, error) {
	if len(buf) == 0 {
		return args, 0, errRESPIncomplete
	}
	if buf[0] != '*' {
		return parseRESPInline(buf, args)
	}
	line, pos, err := respLine(buf, 1)
	if err != nil {
		return args, 0, err
	}
	n, ok := respInt(line)
	if !ok || n < 0 {
		return args, 0, respErrf("Protocol error: invalid multibulk length")
	}
	if n > maxRESPArgs {
		return args, 0, respErrf("Protocol error: invalid multibulk length")
	}
	for i := int64(0); i < n; i++ {
		if pos >= len(buf) {
			return args, 0, errRESPIncomplete
		}
		if buf[pos] != '$' {
			return args, 0, respErrf("Protocol error: expected '$', got '%c'", buf[pos])
		}
		line, next, err := respLine(buf, pos+1)
		if err != nil {
			return args, 0, err
		}
		blen, ok := respInt(line)
		if !ok || blen < 0 || blen > maxRESPBulk {
			return args, 0, respErrf("Protocol error: invalid bulk length")
		}
		end := next + int(blen)
		if end+2 > len(buf) {
			return args, 0, errRESPIncomplete
		}
		if buf[end] != '\r' || buf[end+1] != '\n' {
			return args, 0, respErrf("Protocol error: bulk string missing CRLF")
		}
		args = append(args, buf[next:end])
		pos = end + 2
	}
	return args, pos, nil
}

// parseRESPInline parses a space-separated inline command line (the telnet
// form redis also accepts). No quoting — this exists for hand-driven
// debugging, not real clients.
func parseRESPInline(buf []byte, args [][]byte) ([][]byte, int, error) {
	line, pos, err := respLine(buf, 0)
	if err != nil {
		if errors.Is(err, errRESPIncomplete) && len(buf) > maxRESPInline {
			return args, 0, respErrf("Protocol error: too big inline request")
		}
		return args, 0, err
	}
	if len(line) > maxRESPInline {
		return args, 0, respErrf("Protocol error: too big inline request")
	}
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' {
			i++
		}
		if i > start {
			args = append(args, line[start:i])
		}
	}
	return args, pos, nil
}

// respLine returns the line starting at off up to (not including) its "\r\n"
// or bare "\n" terminator, plus the offset just past the terminator.
func respLine(buf []byte, off int) (line []byte, next int, err error) {
	for i := off; i < len(buf); i++ {
		if buf[i] == '\n' {
			end := i
			if end > off && buf[end-1] == '\r' {
				end--
			}
			return buf[off:end], i + 1, nil
		}
	}
	if len(buf)-off > maxRESPInline {
		return nil, 0, respErrf("Protocol error: unterminated line")
	}
	return nil, 0, errRESPIncomplete
}

// respInt parses a decimal integer (optional leading '-') without allocating.
func respInt(b []byte) (int64, bool) {
	if len(b) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i++
		if i == len(b) {
			return 0, false
		}
	}
	var v int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int64(c-'0')
		if v > 1<<40 { // far beyond any legal length; avoid overflow games
			return 0, false
		}
	}
	if neg {
		v = -v
	}
	return v, true
}

// respCmdKind identifies the supported RESP commands plus the in-band error
// pseudo-command.
type respCmdKind uint8

const (
	rcGet respCmdKind = iota + 1
	rcSet
	rcDel
	rcMGet
	rcScan
	rcPing
	rcEcho
	rcQuit
	rcCommand // redis-cli handshake noise; replied with an empty array
	rcErr     // carries errMsg; the connection closes after replying
)

// respCmd is one parsed command: its kind, how many core queries it
// contributed to the frame, and any immediate payload.
type respCmd struct {
	kind respCmdKind
	// nq is the number of consecutive frame queries owned by this command
	// (0 for PING/ECHO/QUIT/COMMAND/rcErr, n for DEL/MGET key lists).
	nq int
	// arg is the PING/ECHO payload; aliases the read buffer.
	arg []byte
	// errMsg is the rcErr reply text (without the leading "-").
	errMsg string
}

// upperEq reports whether b equals the upper-case ASCII word s,
// case-insensitively, without allocating.
func upperEq(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c >= 'a' && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != s[i] {
			return false
		}
	}
	return true
}

// buildRESPCommand maps one parsed arg vector onto a command and appends its
// core queries. Unknown commands and arity errors become rcErr commands — the
// reply keeps the stream in sync, then the connection closes.
func buildRESPCommand(args [][]byte, queries []proto.Query) (respCmd, []proto.Query) {
	name := args[0]
	switch {
	case upperEq(name, "GET"):
		if len(args) != 2 {
			return respArityErr("get"), queries
		}
		queries = append(queries, proto.Query{Op: proto.OpGet, Key: args[1]})
		return respCmd{kind: rcGet, nq: 1}, queries
	case upperEq(name, "SET"):
		if len(args) != 3 {
			return respArityErr("set"), queries
		}
		queries = append(queries, proto.Query{Op: proto.OpSet, Key: args[1], Value: args[2]})
		return respCmd{kind: rcSet, nq: 1}, queries
	case upperEq(name, "DEL"):
		if len(args) < 2 {
			return respArityErr("del"), queries
		}
		for _, k := range args[1:] {
			queries = append(queries, proto.Query{Op: proto.OpDelete, Key: k})
		}
		return respCmd{kind: rcDel, nq: len(args) - 1}, queries
	case upperEq(name, "MGET"):
		if len(args) < 2 {
			return respArityErr("mget"), queries
		}
		for _, k := range args[1:] {
			queries = append(queries, proto.Query{Op: proto.OpGet, Key: k})
		}
		return respCmd{kind: rcMGet, nq: len(args) - 1}, queries
	case upperEq(name, "SCAN"):
		// SCAN start end [limit]: range scan over [start, end) — not redis's
		// cursor SCAN. Empty start means the smallest key; empty end means
		// unbounded; limit 0/omitted means the server default. Paginate by
		// re-issuing with start = last key + "\x00".
		if len(args) != 3 && len(args) != 4 {
			return respArityErr("scan"), queries
		}
		limit := int64(0)
		if len(args) == 4 {
			var ok bool
			limit, ok = respInt(args[3])
			if !ok || limit < 0 {
				return respCmd{kind: rcErr,
					errMsg: "ERR value is not an integer or out of range"}, queries
			}
		}
		queries = append(queries, proto.ScanQuery(args[1], args[2], int(limit)))
		return respCmd{kind: rcScan, nq: 1}, queries
	case upperEq(name, "PING"):
		if len(args) > 2 {
			return respArityErr("ping"), queries
		}
		var msg []byte
		if len(args) == 2 {
			msg = args[1]
		}
		return respCmd{kind: rcPing, arg: msg}, queries
	case upperEq(name, "ECHO"):
		if len(args) != 2 {
			return respArityErr("echo"), queries
		}
		return respCmd{kind: rcEcho, arg: args[1]}, queries
	case upperEq(name, "QUIT"):
		return respCmd{kind: rcQuit}, queries
	case upperEq(name, "COMMAND"):
		return respCmd{kind: rcCommand}, queries
	default:
		// Truncate pathological names so the error reply stays bounded.
		n := name
		if len(n) > 128 {
			n = n[:128]
		}
		return respCmd{kind: rcErr,
			errMsg: fmt.Sprintf("ERR unknown command '%s'", n)}, queries
	}
}

func respArityErr(name string) respCmd {
	return respCmd{kind: rcErr,
		errMsg: fmt.Sprintf("ERR wrong number of arguments for '%s' command", name)}
}

// --- reply encoding ---

func appendRESPBulk(dst, v []byte) []byte {
	dst = append(dst, '$')
	dst = appendRESPIntBytes(dst, int64(len(v)))
	dst = append(dst, '\r', '\n')
	dst = append(dst, v...)
	return append(dst, '\r', '\n')
}

func appendRESPIntBytes(dst []byte, v int64) []byte {
	var tmp [20]byte
	i := len(tmp)
	neg := v < 0
	if neg {
		v = -v
	}
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	if neg {
		i--
		tmp[i] = '-'
	}
	return append(dst, tmp[i:]...)
}

func appendRESPInt(dst []byte, v int64) []byte {
	dst = append(dst, ':')
	dst = appendRESPIntBytes(dst, v)
	return append(dst, '\r', '\n')
}

var respNilBulk = []byte("$-1\r\n")

// appendRESPStatusErr renders a non-OK per-query status as an error reply.
func appendRESPStatusErr(dst []byte, st proto.Status) []byte {
	switch st {
	case proto.StatusBusy:
		return append(dst, "-BUSY server overloaded, retry later\r\n"...)
	case proto.StatusNotFound:
		return append(dst, "-ERR not found\r\n"...)
	default:
		return append(dst, "-ERR internal error\r\n"...)
	}
}

// appendRESPReplies renders one frame's replies: each command consumes its nq
// responses from resps, in order. resps may be shorter than the frame's query
// count only if the core poisoned the frame — callers use appendRESPFail then.
func appendRESPReplies(dst []byte, cmds []respCmd, resps []proto.Response) []byte {
	qi := 0
	for _, c := range cmds {
		switch c.kind {
		case rcGet:
			r := resps[qi]
			switch r.Status {
			case proto.StatusOK:
				dst = appendRESPBulk(dst, r.Value)
			case proto.StatusNotFound:
				dst = append(dst, respNilBulk...)
			default:
				dst = appendRESPStatusErr(dst, r.Status)
			}
		case rcSet:
			r := resps[qi]
			if r.Status == proto.StatusOK {
				dst = append(dst, "+OK\r\n"...)
			} else {
				dst = appendRESPStatusErr(dst, r.Status)
			}
		case rcDel:
			n := int64(0)
			for i := 0; i < c.nq; i++ {
				if resps[qi+i].Status == proto.StatusOK {
					n++
				}
			}
			dst = appendRESPInt(dst, n)
		case rcMGet:
			dst = append(dst, '*')
			dst = appendRESPIntBytes(dst, int64(c.nq))
			dst = append(dst, '\r', '\n')
			for i := 0; i < c.nq; i++ {
				r := resps[qi+i]
				if r.Status == proto.StatusOK {
					dst = appendRESPBulk(dst, r.Value)
				} else {
					dst = append(dst, respNilBulk...)
				}
			}
		case rcScan:
			r := resps[qi]
			if r.Status != proto.StatusOK {
				dst = appendRESPStatusErr(dst, r.Status)
				break
			}
			// Flat array of alternating key/value bulks. First pass counts
			// (and validates) the block; second renders it.
			n, err := proto.DecodeScanResult(r.Value, func(_, _ []byte) bool { return true })
			if err != nil {
				dst = append(dst, "-ERR internal error\r\n"...)
				break
			}
			dst = append(dst, '*')
			dst = appendRESPIntBytes(dst, int64(2*n))
			dst = append(dst, '\r', '\n')
			proto.DecodeScanResult(r.Value, func(k, v []byte) bool {
				dst = appendRESPBulk(dst, k)
				dst = appendRESPBulk(dst, v)
				return true
			})
		case rcPing:
			if c.arg == nil {
				dst = append(dst, "+PONG\r\n"...)
			} else {
				dst = appendRESPBulk(dst, c.arg)
			}
		case rcEcho:
			dst = appendRESPBulk(dst, c.arg)
		case rcQuit:
			dst = append(dst, "+OK\r\n"...)
		case rcCommand:
			dst = append(dst, "*0\r\n"...)
		case rcErr:
			dst = append(dst, '-')
			dst = append(dst, c.errMsg...)
			dst = append(dst, '\r', '\n')
		}
		qi += c.nq
	}
	return dst
}

// appendRESPBusy answers every command in a shed frame with -BUSY (rcErr
// keeps its own message so the protocol-error reply still reaches the client).
func appendRESPBusy(dst []byte, cmds []respCmd) []byte {
	for _, c := range cmds {
		if c.kind == rcErr {
			dst = append(dst, '-')
			dst = append(dst, c.errMsg...)
			dst = append(dst, '\r', '\n')
			continue
		}
		dst = append(dst, "-BUSY server overloaded, retry later\r\n"...)
	}
	return dst
}

// appendRESPFail answers every command in a frame whose execution produced no
// responses (poisoned batch, WAL commit failure) with -ERR <reason>, keeping
// the connection's reply stream aligned with its command stream.
func appendRESPFail(dst []byte, cmds []respCmd, reason string) []byte {
	for _, c := range cmds {
		if c.kind == rcErr {
			dst = append(dst, '-')
			dst = append(dst, c.errMsg...)
			dst = append(dst, '\r', '\n')
			continue
		}
		dst = append(dst, "-ERR "...)
		dst = append(dst, reason...)
		dst = append(dst, '\r', '\n')
	}
	return dst
}

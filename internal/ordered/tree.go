// Package ordered is the store's MVCC ordered index: a left-leaning
// red-black tree (Sedgewick's 2-3 variant) mapping binary keys to uint64
// payloads, written through path-copying so that every mutation publishes a
// brand-new immutable root. Readers take a Snapshot — one atomic pointer
// load — and iterate it without locks, without retries, and without ever
// blocking a writer; writers serialize among themselves on a mutex and
// never touch a node reachable from a published root.
//
// The tree deliberately stores only a fixed-size payload (the store keeps a
// slab location there, see internal/store), so a snapshot pins O(live keys)
// node memory but zero value bytes: value reads go through the seqlock slab
// at scan time and stay current, while the *key set* a scan walks is one
// frozen version.
package ordered

import (
	"bytes"
	"sync"
	"sync/atomic"
)

// node is one immutable tree node. Once a node is reachable from a root
// published by Tree.state it is never mutated again: writers clone every
// node on the root-to-leaf path they change (and any node a rotation or
// color flip touches) before writing to it.
type node struct {
	key         []byte
	val         uint64
	red         bool
	left, right *node
}

func clone(n *node) *node {
	c := *n
	return &c
}

func isRed(n *node) bool { return n != nil && n.red }

// treeState is one published version: root, size and a monotonically
// increasing version number, swapped in as a unit so a Snapshot's three
// facts are always mutually consistent.
type treeState struct {
	root *node
	len  int
	ver  uint64
}

var emptyState = &treeState{}

// Tree is the concurrent MVCC ordered index. The zero value is NOT ready;
// use New.
type Tree struct {
	mu    sync.Mutex // serializes writers
	state atomic.Pointer[treeState]
}

// New returns an empty tree.
func New() *Tree {
	t := &Tree{}
	t.state.Store(emptyState)
	return t
}

// Len returns the current number of keys.
func (t *Tree) Len() int { return t.state.Load().len }

// Version returns the current version number; it increments on every
// successful mutation (an overwriting Set increments it too).
func (t *Tree) Version() uint64 { return t.state.Load().ver }

// Get returns the payload stored under key in the current version.
func (t *Tree) Get(key []byte) (uint64, bool) {
	return Snapshot{t.state.Load()}.Get(key)
}

// Set inserts or overwrites key's payload. The key bytes are copied on
// first insert; the caller may reuse its buffer.
func (t *Tree) Set(key []byte, val uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.setLocked(key, val)
}

// Delete removes key; it reports whether the key was present.
func (t *Tree) Delete(key []byte) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.deleteLocked(key)
}

// DeleteIf removes key only if its current payload equals val, atomically
// with respect to other writers. It reports whether a removal happened. This
// is the tool for retiring a stale binding (e.g. an eviction victim's
// location) without erasing a newer one a concurrent overwrite installed.
func (t *Tree) DeleteIf(key []byte, val uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := (Snapshot{t.state.Load()}).Get(key); !ok || cur != val {
		return false
	}
	return t.deleteLocked(key)
}

// Update reconciles key's binding against an authoritative source: resolve is
// called UNDER the writer lock and must return the key's current payload
// (ok=true) or report the key gone (ok=false); the tree then upserts or
// removes accordingly. Because resolve reads its source inside the lock,
// concurrent Updates of one key serialize and the last one to run wins with
// the freshest source state — callers that invoke Update after every source
// mutation get eventual exact agreement, with no lost-update window that
// separate read-then-Set/Delete calls would leave. resolve must not call back
// into the tree's write API.
func (t *Tree) Update(key []byte, resolve func() (uint64, bool)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if val, ok := resolve(); ok {
		t.setLocked(key, val)
	} else {
		t.deleteLocked(key)
	}
}

// setLocked is Set's body; the caller holds t.mu.
func (t *Tree) setLocked(key []byte, val uint64) {
	st := t.state.Load()
	root, added := insert(st.root, key, val)
	root.red = false
	n := st.len
	if added {
		n++
	}
	t.state.Store(&treeState{root: root, len: n, ver: st.ver + 1})
}

// deleteLocked is Delete's body; the caller holds t.mu.
func (t *Tree) deleteLocked(key []byte) bool {
	st := t.state.Load()
	if _, ok := (Snapshot{st}).Get(key); !ok {
		return false
	}
	h := clone(st.root)
	if !isRed(h.left) && !isRed(h.right) {
		h.red = true
	}
	h = del(h, key)
	if h != nil {
		h.red = false
	}
	t.state.Store(&treeState{root: h, len: st.len - 1, ver: st.ver + 1})
	return true
}

// Snapshot returns an immutable view of the tree's current version. Taking
// one is a single atomic load; holding one pins that version's nodes (not
// any value bytes) until the last reference is dropped.
func (t *Tree) Snapshot() Snapshot { return Snapshot{t.state.Load()} }

// Snapshot is one frozen tree version. The zero value behaves as an empty
// tree.
type Snapshot struct{ st *treeState }

// Len returns the snapshot's key count.
func (s Snapshot) Len() int {
	if s.st == nil {
		return 0
	}
	return s.st.len
}

// Version returns the snapshot's version number.
func (s Snapshot) Version() uint64 {
	if s.st == nil {
		return 0
	}
	return s.st.ver
}

// Get returns the payload stored under key in this version.
func (s Snapshot) Get(key []byte) (uint64, bool) {
	if s.st == nil {
		return 0, false
	}
	n := s.st.root
	for n != nil {
		switch cmp := bytes.Compare(key, n.key); {
		case cmp < 0:
			n = n.left
		case cmp > 0:
			n = n.right
		default:
			return n.val, true
		}
	}
	return 0, false
}

// Ascend calls fn for every key in [start, end) in ascending order, stopping
// early when fn returns false. A nil/empty start means the smallest key; a
// nil/empty end means no upper bound. The key slice passed to fn aliases the
// node's own copy and must not be mutated.
func (s Snapshot) Ascend(start, end []byte, fn func(key []byte, val uint64) bool) {
	if s.st == nil {
		return
	}
	if len(start) == 0 {
		start = nil
	}
	if len(end) == 0 {
		end = nil
	}
	ascend(s.st.root, start, end, fn)
}

func ascend(n *node, start, end []byte, fn func([]byte, uint64) bool) bool {
	if n == nil {
		return true
	}
	if start != nil && bytes.Compare(n.key, start) < 0 {
		// n and its whole left subtree sort below start.
		return ascend(n.right, start, end, fn)
	}
	if end != nil && bytes.Compare(n.key, end) >= 0 {
		// n and its whole right subtree sort at or above end.
		return ascend(n.left, start, end, fn)
	}
	if !ascend(n.left, start, end, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, start, end, fn)
}

// Iter is an explicit-stack in-order iterator over one snapshot, used by the
// store's N-way shard merge (a callback can't be paused; this can). Not safe
// for concurrent use; cheap to create per scan.
type Iter struct {
	stack []*node
	end   []byte
}

// Iter returns an iterator positioned at the smallest key ≥ start,
// yielding keys strictly below end (empty end = unbounded).
func (s Snapshot) Iter(start, end []byte) Iter {
	it := Iter{}
	if len(end) > 0 {
		it.end = end
	}
	if s.st == nil {
		return it
	}
	if len(start) == 0 {
		start = nil
	}
	n := s.st.root
	for n != nil {
		if start != nil && bytes.Compare(n.key, start) < 0 {
			n = n.right
		} else {
			it.stack = append(it.stack, n)
			n = n.left
		}
	}
	return it
}

// Next returns the next key and payload, or ok=false when the range is
// exhausted. The key slice aliases the snapshot's node and must not be
// mutated.
func (it *Iter) Next() (key []byte, val uint64, ok bool) {
	if len(it.stack) == 0 {
		return nil, 0, false
	}
	n := it.stack[len(it.stack)-1]
	it.stack = it.stack[:len(it.stack)-1]
	if it.end != nil && bytes.Compare(n.key, it.end) >= 0 {
		// Everything still stacked is an in-order successor of n, hence
		// also ≥ end: the iteration is over.
		it.stack = it.stack[:0]
		return nil, 0, false
	}
	for c := n.right; c != nil; c = c.left {
		it.stack = append(it.stack, c)
	}
	return n.key, n.val, true
}

// ---- path-copying LLRB internals ----
//
// Ownership convention: every function below that mutates a node receives it
// already cloned ("owned" by the in-progress write) — insert/del clone on
// the way down, and rotations/color flips clone the children they touch.
// Over-cloning an already-owned node is harmless, so helpers err on the side
// of cloning.

// insert returns the owned root of the subtree with key set, and whether the
// key was newly added.
func insert(h *node, key []byte, val uint64) (*node, bool) {
	if h == nil {
		return &node{key: append([]byte(nil), key...), val: val, red: true}, true
	}
	h = clone(h)
	var added bool
	switch cmp := bytes.Compare(key, h.key); {
	case cmp < 0:
		h.left, added = insert(h.left, key, val)
	case cmp > 0:
		h.right, added = insert(h.right, key, val)
	default:
		h.val = val
	}
	return fixUp(h), added
}

// del removes key from the subtree rooted at owned node h. The caller has
// verified the key is present.
func del(h *node, key []byte) *node {
	if bytes.Compare(key, h.key) < 0 {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = del(clone(h.left), key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if bytes.Equal(key, h.key) && h.right == nil {
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if bytes.Equal(key, h.key) {
			m := h.right
			for m.left != nil {
				m = m.left
			}
			// The successor's key slice is immutable and may be shared.
			h.key, h.val = m.key, m.val
			h.right = deleteMin(clone(h.right))
		} else {
			h.right = del(clone(h.right), key)
		}
	}
	return fixUp(h)
}

// deleteMin removes the smallest key of the subtree rooted at owned node h.
func deleteMin(h *node) *node {
	if h.left == nil {
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = deleteMin(clone(h.left))
	return fixUp(h)
}

func rotateLeft(h *node) *node {
	x := clone(h.right)
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight(h *node) *node {
	x := clone(h.left)
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors(h *node) {
	h.red = !h.red
	if h.left != nil {
		h.left = clone(h.left)
		h.left.red = !h.left.red
	}
	if h.right != nil {
		h.right = clone(h.right)
		h.right.red = !h.right.red
	}
}

func moveRedLeft(h *node) *node {
	flipColors(h)
	if h.right != nil && isRed(h.right.left) {
		h.right = rotateRight(clone(h.right))
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight(h *node) *node {
	flipColors(h)
	if h.left != nil && isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func fixUp(h *node) *node {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

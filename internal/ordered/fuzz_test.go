package ordered

import (
	"bytes"
	"sort"
	"testing"
)

// FuzzOrderedTree drives the COW LLRB with an arbitrary op tape and
// cross-checks every observable — membership, length, full iteration order,
// bounded iteration, and the explicit-stack iterator — against a sorted-slice
// oracle, then re-verifies a snapshot taken mid-tape after the remaining ops
// ran (the MVCC half of the contract).
func FuzzOrderedTree(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 'a', 0x01, 'b', 0x81, 'a'})
	f.Add([]byte{0x03, 'a', 'b', 'c', 0x83, 'a', 'b', 'c', 0x03, 'a', 'b', 'c'})
	f.Add(bytes.Repeat([]byte{0x02, 'x', 'y'}, 40))

	type kv struct {
		k string
		v uint64
	}
	f.Fuzz(func(t *testing.T, tape []byte) {
		tr := New()
		var oracle []kv
		find := func(k string) int {
			return sort.Search(len(oracle), func(i int) bool { return oracle[i].k >= k })
		}
		oracleSet := func(k string, v uint64) {
			i := find(k)
			if i < len(oracle) && oracle[i].k == k {
				oracle[i].v = v
				return
			}
			oracle = append(oracle, kv{})
			copy(oracle[i+1:], oracle[i:])
			oracle[i] = kv{k, v}
		}
		oracleDel := func(k string) bool {
			i := find(k)
			if i == len(oracle) || oracle[i].k != k {
				return false
			}
			oracle = append(oracle[:i], oracle[i+1:]...)
			return true
		}
		check := func() {
			if tr.Len() != len(oracle) {
				t.Fatalf("len=%d oracle=%d", tr.Len(), len(oracle))
			}
			i := 0
			tr.Snapshot().Ascend(nil, nil, func(k []byte, v uint64) bool {
				if i >= len(oracle) {
					t.Fatalf("iteration yielded extra key %q", k)
				}
				if string(k) != oracle[i].k || v != oracle[i].v {
					t.Fatalf("entry %d: got %q/%d want %q/%d", i, k, v, oracle[i].k, oracle[i].v)
				}
				i++
				return true
			})
			if i != len(oracle) {
				t.Fatalf("iteration stopped at %d of %d", i, len(oracle))
			}
		}

		var midSnap Snapshot
		var midOracle []kv
		seenOps := 0
		for len(tape) > 0 {
			op := tape[0]
			tape = tape[1:]
			kl := int(op & 0x3f)
			if kl > len(tape) {
				kl = len(tape)
			}
			key := tape[:kl]
			tape = tape[kl:]
			if len(key) == 0 {
				continue
			}
			seenOps++
			switch {
			case op&0x80 != 0:
				got := tr.Delete(key)
				want := oracleDel(string(key))
				if got != want {
					t.Fatalf("Delete(%q)=%v oracle=%v", key, got, want)
				}
			default:
				v := uint64(seenOps)
				tr.Set(key, v)
				oracleSet(string(key), v)
			}
			if seenOps == 8 { // freeze a mid-tape version
				midSnap = tr.Snapshot()
				midOracle = append([]kv(nil), oracle...)
			}
			if seenOps%16 == 0 {
				check()
			}
		}
		check()

		// Bounded iteration + Iter must agree with the oracle slice.
		if len(oracle) > 1 {
			start, end := []byte(oracle[len(oracle)/4].k), []byte(oracle[3*len(oracle)/4].k)
			lo, hi := find(string(start)), find(string(end))
			j := lo
			tr.Snapshot().Ascend(start, end, func(k []byte, v uint64) bool {
				if j >= hi || string(k) != oracle[j].k {
					t.Fatalf("bounded scan mismatch at %d: %q", j, k)
				}
				j++
				return true
			})
			if j != hi {
				t.Fatalf("bounded scan covered %d..%d, want %d..%d", lo, j, lo, hi)
			}
			it := tr.Snapshot().Iter(start, end)
			for j = lo; ; j++ {
				k, v, ok := it.Next()
				if !ok {
					break
				}
				if j >= hi || string(k) != oracle[j].k || v != oracle[j].v {
					t.Fatalf("Iter mismatch at %d: %q/%d", j, k, v)
				}
			}
			if j != hi {
				t.Fatalf("Iter covered up to %d, want %d", j, hi)
			}
		}

		// The mid-tape snapshot must still read exactly as it did when taken.
		if midSnap.st != nil {
			i := 0
			midSnap.Ascend(nil, nil, func(k []byte, v uint64) bool {
				if i >= len(midOracle) || string(k) != midOracle[i].k || v != midOracle[i].v {
					t.Fatalf("mid snapshot drifted at %d: %q/%d", i, k, v)
				}
				i++
				return true
			})
			if i != len(midOracle) {
				t.Fatalf("mid snapshot lost entries: %d of %d", i, len(midOracle))
			}
		}
	})
}

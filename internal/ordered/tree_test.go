package ordered

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// checkInvariants verifies the LLRB shape: BST order, no red right links, no
// two consecutive red left links, uniform black height, black root.
func checkInvariants(t *testing.T, s Snapshot) {
	t.Helper()
	if s.st == nil || s.st.root == nil {
		return
	}
	if s.st.root.red {
		t.Fatalf("root is red")
	}
	var prev []byte
	first := true
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 1
		}
		if isRed(n.right) {
			t.Fatalf("red right link at %q", n.key)
		}
		if isRed(n) && isRed(n.left) {
			t.Fatalf("two consecutive red links at %q", n.key)
		}
		lh := walk(n.left)
		if !first && bytes.Compare(prev, n.key) >= 0 {
			t.Fatalf("BST order violated: %q then %q", prev, n.key)
		}
		prev, first = n.key, false
		rh := walk(n.right)
		if lh != rh {
			t.Fatalf("black height mismatch at %q: %d vs %d", n.key, lh, rh)
		}
		if n.red {
			return lh
		}
		return lh + 1
	}
	walk(s.st.root)
}

func collect(s Snapshot, start, end []byte) (keys []string, vals []uint64) {
	s.Ascend(start, end, func(k []byte, v uint64) bool {
		keys = append(keys, string(k))
		vals = append(vals, v)
		return true
	})
	return
}

func TestTreeBasic(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.Version() != 0 {
		t.Fatalf("fresh tree: len=%d ver=%d", tr.Len(), tr.Version())
	}
	tr.Set([]byte("b"), 2)
	tr.Set([]byte("a"), 1)
	tr.Set([]byte("c"), 3)
	if tr.Len() != 3 {
		t.Fatalf("len=%d want 3", tr.Len())
	}
	if v, ok := tr.Get([]byte("b")); !ok || v != 2 {
		t.Fatalf("Get(b)=%d,%v", v, ok)
	}
	tr.Set([]byte("b"), 22) // overwrite: len stable, version bumps
	if tr.Len() != 3 {
		t.Fatalf("len after overwrite=%d", tr.Len())
	}
	if v, _ := tr.Get([]byte("b")); v != 22 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if !tr.Delete([]byte("a")) {
		t.Fatalf("Delete(a) reported absent")
	}
	if tr.Delete([]byte("zzz")) {
		t.Fatalf("Delete of absent key reported present")
	}
	if _, ok := tr.Get([]byte("a")); ok {
		t.Fatalf("deleted key still present")
	}
	keys, vals := collect(tr.Snapshot(), nil, nil)
	if fmt.Sprint(keys) != "[b c]" || fmt.Sprint(vals) != "[22 3]" {
		t.Fatalf("iteration got %v / %v", keys, vals)
	}
	checkInvariants(t, tr.Snapshot())
}

func TestTreeDeleteIf(t *testing.T) {
	tr := New()
	tr.Set([]byte("k"), 7)
	if tr.DeleteIf([]byte("k"), 8) {
		t.Fatal("DeleteIf removed a key whose payload differs")
	}
	if v, ok := tr.Get([]byte("k")); !ok || v != 7 {
		t.Fatalf("mismatched DeleteIf mutated the tree: %d,%v", v, ok)
	}
	if tr.DeleteIf([]byte("absent"), 7) {
		t.Fatal("DeleteIf removed an absent key")
	}
	if !tr.DeleteIf([]byte("k"), 7) {
		t.Fatal("matching DeleteIf failed")
	}
	if _, ok := tr.Get([]byte("k")); ok || tr.Len() != 0 {
		t.Fatal("matching DeleteIf left the key behind")
	}
	checkInvariants(t, tr.Snapshot())
}

func TestTreeKeyBufferReuse(t *testing.T) {
	// Set must copy the key: the caller reuses its buffer.
	tr := New()
	buf := make([]byte, 4)
	for i := 0; i < 10; i++ {
		copy(buf, fmt.Sprintf("k%03d", i))
		tr.Set(buf, uint64(i))
	}
	if tr.Len() != 10 {
		t.Fatalf("len=%d want 10", tr.Len())
	}
	keys, _ := collect(tr.Snapshot(), nil, nil)
	for i, k := range keys {
		if want := fmt.Sprintf("k%03d", i); k != want {
			t.Fatalf("key %d = %q want %q (aliased caller buffer?)", i, k, want)
		}
	}
}

func TestTreeRandomOpsVsOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := New()
	oracle := map[string]uint64{}
	for op := 0; op < 20000; op++ {
		k := []byte(fmt.Sprintf("key-%04d", rng.Intn(3000)))
		if rng.Intn(3) == 0 {
			delete(oracle, string(k))
			tr.Delete(k)
		} else {
			v := rng.Uint64()
			oracle[string(k)] = v
			tr.Set(k, v)
		}
		if op%997 == 0 {
			checkInvariants(t, tr.Snapshot())
		}
	}
	checkInvariants(t, tr.Snapshot())
	if tr.Len() != len(oracle) {
		t.Fatalf("len=%d oracle=%d", tr.Len(), len(oracle))
	}
	want := make([]string, 0, len(oracle))
	for k := range oracle {
		want = append(want, k)
	}
	sort.Strings(want)
	keys, vals := collect(tr.Snapshot(), nil, nil)
	if len(keys) != len(want) {
		t.Fatalf("iterated %d keys, oracle has %d", len(keys), len(want))
	}
	for i, k := range keys {
		if k != want[i] {
			t.Fatalf("key %d = %q want %q", i, k, want[i])
		}
		if vals[i] != oracle[k] {
			t.Fatalf("val[%q] = %d want %d", k, vals[i], oracle[k])
		}
	}
}

func TestAscendBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Set([]byte(fmt.Sprintf("k%02d", i)), uint64(i))
	}
	s := tr.Snapshot()
	keys, _ := collect(s, []byte("k10"), []byte("k20"))
	if len(keys) != 10 || keys[0] != "k10" || keys[9] != "k19" {
		t.Fatalf("bounded scan got %v", keys)
	}
	// start inclusive, end exclusive, empty bounds unbounded
	if keys, _ := collect(s, nil, []byte("k03")); fmt.Sprint(keys) != "[k00 k01 k02]" {
		t.Fatalf("end-bounded scan got %v", keys)
	}
	if keys, _ := collect(s, []byte("k97"), nil); fmt.Sprint(keys) != "[k97 k98 k99]" {
		t.Fatalf("start-bounded scan got %v", keys)
	}
	// start between keys: begins at the next key up
	if keys, _ := collect(s, []byte("k10a"), []byte("k13")); fmt.Sprint(keys) != "[k11 k12]" {
		t.Fatalf("between-keys start got %v", keys)
	}
	// early stop via callback
	n := 0
	s.Ascend(nil, nil, func(k []byte, v uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	// empty range
	if keys, _ := collect(s, []byte("k50"), []byte("k50")); len(keys) != 0 {
		t.Fatalf("empty range got %v", keys)
	}
}

func TestIterMatchesAscend(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := New()
	for i := 0; i < 500; i++ {
		tr.Set([]byte(fmt.Sprintf("%05d", rng.Intn(2000))), uint64(i))
	}
	s := tr.Snapshot()
	bounds := [][2][]byte{
		{nil, nil},
		{[]byte("00500"), []byte("01500")},
		{[]byte("01999"), nil},
		{nil, []byte("00001")},
		{[]byte("abc"), nil}, // past every key
	}
	for _, b := range bounds {
		wantK, wantV := collect(s, b[0], b[1])
		it := s.Iter(b[0], b[1])
		var gotK []string
		var gotV []uint64
		for {
			k, v, ok := it.Next()
			if !ok {
				break
			}
			gotK = append(gotK, string(k))
			gotV = append(gotV, v)
		}
		if fmt.Sprint(gotK) != fmt.Sprint(wantK) || fmt.Sprint(gotV) != fmt.Sprint(wantV) {
			t.Fatalf("Iter(%q,%q) = %v, Ascend = %v", b[0], b[1], gotK, wantK)
		}
	}
}

// TestSnapshotIsolation pins the MVCC contract this package exists for: a
// snapshot is ONE frozen version. Iterating it during and after heavy
// concurrent churn — including deleting every key it contains — must yield
// byte-identical results every pass. An in-place (non-COW) tree fails this
// immediately: concurrent rotations tear the in-order walk.
func TestSnapshotIsolation(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Set([]byte(fmt.Sprintf("k%05d", i)), uint64(i))
	}
	snap := tr.Snapshot()
	wantVer := snap.Version()
	k0, v0 := collect(snap, nil, nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // churn: overwrite, insert, and delete every original key
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < n; i++ {
			// Overwrite only keys not yet deleted (index ≥ i), so the final
			// live state is exactly the "new" keys.
			tr.Set([]byte(fmt.Sprintf("k%05d", i+rng.Intn(n-i))), rng.Uint64())
			tr.Set([]byte(fmt.Sprintf("new%05d", i)), uint64(i))
			tr.Delete([]byte(fmt.Sprintf("k%05d", i)))
		}
		close(stop)
	}()

	for pass := 0; ; pass++ {
		k, v := collect(snap, nil, nil)
		if len(k) != n {
			t.Errorf("pass %d: snapshot shrank to %d keys", pass, len(k))
			break
		}
		for i := range k {
			if k[i] != k0[i] || v[i] != v0[i] {
				t.Errorf("pass %d: entry %d changed: %q/%d vs %q/%d",
					pass, i, k[i], v[i], k0[i], v0[i])
				break
			}
		}
		if snap.Version() != wantVer {
			t.Errorf("snapshot version moved: %d -> %d", wantVer, snap.Version())
		}
		select {
		case <-stop:
			wg.Wait()
			// One final pass after all churn: every original key still there.
			k, _ := collect(snap, nil, nil)
			if len(k) != n {
				t.Fatalf("final pass: %d keys, want %d", len(k), n)
			}
			// And the live tree moved on: the original keys are gone.
			if tr.Len() != n {
				t.Fatalf("live len=%d want %d (new keys only)", tr.Len(), n)
			}
			if _, ok := tr.Get([]byte("k00000")); ok {
				t.Fatalf("live tree still has deleted key")
			}
			checkInvariants(t, tr.Snapshot())
			return
		default:
		}
	}
	wg.Wait()
}

// TestConcurrentReadersWriters hammers the tree from several writers and
// snapshot readers at once (run under -race): readers must always observe a
// sorted, duplicate-free key sequence whose payloads obey the per-key
// monotonic write protocol.
func TestConcurrentReadersWriters(t *testing.T) {
	tr := New()
	const keys = 512
	var stop atomic.Bool
	var writers, readers sync.WaitGroup
	for w := 0; w < 3; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			var gen uint64
			for !stop.Load() {
				k := []byte(fmt.Sprintf("k%04d", rng.Intn(keys)))
				switch rng.Intn(4) {
				case 0:
					tr.Delete(k)
				default:
					gen++
					tr.Set(k, gen)
				}
			}
		}(int64(w + 1))
	}
	for rdr := 0; rdr < 3; rdr++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				s := tr.Snapshot()
				var prev []byte
				cnt := 0
				s.Ascend(nil, nil, func(k []byte, v uint64) bool {
					if prev != nil && bytes.Compare(prev, k) >= 0 {
						t.Errorf("unsorted/dup key under churn: %q after %q", k, prev)
						return false
					}
					prev = append(prev[:0], k...)
					cnt++
					return true
				})
				if cnt != s.Len() {
					t.Errorf("snapshot len %d but iterated %d", s.Len(), cnt)
				}
			}
		}()
	}
	readers.Wait()
	stop.Store(true)
	writers.Wait()
	checkInvariants(t, tr.Snapshot())
}

func BenchmarkTreeSet(b *testing.B) {
	tr := New()
	keys := make([][]byte, 4096)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%08d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Set(keys[i%len(keys)], uint64(i))
	}
}

func BenchmarkSnapshotAscend(b *testing.B) {
	tr := New()
	for i := 0; i < 65536; i++ {
		tr.Set([]byte(fmt.Sprintf("key-%08d", i)), uint64(i))
	}
	s := tr.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		s.Ascend([]byte("key-00030000"), nil, func(k []byte, v uint64) bool {
			n++
			return n < 100
		})
	}
}
